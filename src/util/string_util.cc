#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace pdtstore {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
  if (n > 0) vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  va_end(ap2);
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  return StringPrintf("%.1f %s", v, units[u]);
}

}  // namespace pdtstore

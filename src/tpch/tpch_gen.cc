#include "tpch/tpch_gen.h"

#include <algorithm>

namespace pdtstore {
namespace tpch {

namespace {

const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kShipmodes[] = {"REG AIR", "AIR",  "RAIL", "SHIP",
                            "TRUCK",   "MAIL", "FOB"};
const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                           "MACHINERY", "HOUSEHOLD"};
const char* kTypes1[] = {"STANDARD", "SMALL", "MEDIUM", "LARGE",
                         "ECONOMY", "PROMO"};
const char* kTypes2[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                         "BRUSHED"};
const char* kTypes3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
const char* kContainers1[] = {"SM", "LG", "MED", "JUMBO", "WRAP"};
const char* kContainers2[] = {"CASE", "BOX", "BAG", "JAR", "PKG", "PACK",
                              "CAN", "DRUM"};
const char* kNames[] = {"almond", "antique", "aquamarine", "azure",
                        "beige",  "bisque",  "black",      "blanched",
                        "blue",   "blush",   "brown",      "burlywood",
                        "green",  "forest",  "chiffon",    "chocolate"};
const char* kNations[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL",  "CANADA",     "EGYPT",
    "ETHIOPIA", "FRANCE",   "GERMANY", "INDIA",      "INDONESIA",
    "IRAN",     "IRAQ",     "JAPAN",   "JORDAN",     "KENYA",
    "MOROCCO",  "MOZAMBIQUE", "PERU",  "CHINA",      "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES"};

int64_t CustomerCount(double sf) {
  return std::max<int64_t>(100, static_cast<int64_t>(150000 * sf));
}
int64_t PartCount(double sf) {
  return std::max<int64_t>(200, static_cast<int64_t>(200000 * sf));
}
int64_t SupplierCount(double sf) {
  return std::max<int64_t>(25, static_cast<int64_t>(10000 * sf));
}

}  // namespace

int64_t OrderCountFor(const GenOptions& gen) {
  return std::max<int64_t>(64,
                           static_cast<int64_t>(1500000 * gen.scale_factor));
}

GeneratedOrder MakeOrder(int64_t orderkey, Random* rng,
                         double scale_factor) {
  GeneratedOrder out;
  int64_t odate = rng->UniformRange(kMinDate, kMaxDate - 151);
  int64_t custkey = rng->UniformRange(1, CustomerCount(scale_factor));
  int nlines = static_cast<int>(rng->UniformRange(1, 7));
  double total = 0;
  for (int ln = 1; ln <= nlines; ++ln) {
    int64_t partkey = rng->UniformRange(1, PartCount(scale_factor));
    int64_t suppkey = rng->UniformRange(1, SupplierCount(scale_factor));
    double qty = static_cast<double>(rng->UniformRange(1, 50));
    double price = qty * (900.0 + static_cast<double>(partkey % 1000));
    double discount = static_cast<double>(rng->UniformRange(0, 10)) / 100.0;
    double tax = static_cast<double>(rng->UniformRange(0, 8)) / 100.0;
    int64_t shipdate = odate + rng->UniformRange(1, 121);
    int64_t commitdate = odate + rng->UniformRange(30, 90);
    int64_t receiptdate = shipdate + rng->UniformRange(1, 30);
    // Return flag / line status per the TPC-H rules' spirit: old receipts
    // returned or accepted, recent lines still open.
    std::string rflag = receiptdate <= DayNumber(1995, 6, 17)
                            ? (rng->Bernoulli(0.5) ? "R" : "A")
                            : "N";
    std::string lstatus =
        shipdate > DayNumber(1995, 6, 17) ? "O" : "F";
    std::string shipmode = kShipmodes[rng->Uniform(7)];
    total += price * (1.0 - discount) * (1.0 + tax);
    out.lineitems.push_back({orderkey, partkey, suppkey, int64_t{ln}, qty,
                             price, discount, tax, rflag, lstatus, shipdate,
                             commitdate, receiptdate, shipmode});
  }
  std::string status = rng->Bernoulli(0.5) ? "F" : "O";
  out.order = {odate,
               orderkey,
               custkey,
               status,
               total,
               std::string(kPriorities[rng->Uniform(5)]),
               rng->UniformRange(0, 1)};
  return out;
}

StatusOr<TpchTables> GenerateInto(Database* db, const GenOptions& gen,
                                  const TableOptions& table_options) {
  Random rng(gen.seed);
  TpchTables tables;
  PDT_ASSIGN_OR_RETURN(
      tables.lineitem,
      db->CreateTable("lineitem", LineitemSchema(), table_options));
  PDT_ASSIGN_OR_RETURN(
      tables.orders, db->CreateTable("orders", OrdersSchema(), table_options));
  PDT_ASSIGN_OR_RETURN(
      tables.customer,
      db->CreateTable("customer", CustomerSchema(), table_options));
  PDT_ASSIGN_OR_RETURN(
      tables.part, db->CreateTable("part", PartSchema(), table_options));
  PDT_ASSIGN_OR_RETURN(
      tables.supplier,
      db->CreateTable("supplier", SupplierSchema(), table_options));
  PDT_ASSIGN_OR_RETURN(
      tables.nation, db->CreateTable("nation", NationSchema(), table_options));

  // Orders + lineitems. The key space is left with holes so refresh
  // inserts (UpdateStream) scatter through the clustered tables.
  const int64_t order_count = OrderCountFor(gen);
  const int keys_per_32 =
      std::clamp(static_cast<int>(32 * (1.0 - gen.hole_fraction)), 1, 32);
  std::vector<GeneratedOrder> orders;
  orders.reserve(order_count);
  int64_t key = 0;
  while (static_cast<int64_t>(orders.size()) < order_count) {
    ++key;
    if ((key % 32) >= keys_per_32) continue;  // hole for refresh inserts
    // Per-order RNG keyed by orderkey: any order (incl. refresh-stream
    // deletions) can be regenerated independently and deterministically.
    Random order_rng(gen.seed * 0x9e3779b97f4a7c15ULL + key);
    orders.push_back(MakeOrder(key, &order_rng, gen.scale_factor));
  }
  // orders clustered by (o_orderdate, o_orderkey).
  {
    std::vector<Tuple> rows;
    rows.reserve(orders.size());
    for (const auto& o : orders) rows.push_back(o.order);
    std::sort(rows.begin(), rows.end(), [](const Tuple& a, const Tuple& b) {
      if (a[kOOrderdate].AsInt64() != b[kOOrderdate].AsInt64()) {
        return a[kOOrderdate].AsInt64() < b[kOOrderdate].AsInt64();
      }
      return a[kOOrderkey].AsInt64() < b[kOOrderkey].AsInt64();
    });
    PDT_RETURN_NOT_OK(tables.orders->Load(rows));
  }
  // lineitem clustered by (l_orderkey, l_linenumber): generation order is
  // already ascending in orderkey.
  {
    std::vector<Tuple> rows;
    for (const auto& o : orders) {
      for (const auto& l : o.lineitems) rows.push_back(l);
    }
    PDT_RETURN_NOT_OK(tables.lineitem->Load(rows));
  }
  // Dimensions.
  {
    std::vector<Tuple> rows;
    int64_t n = CustomerCount(gen.scale_factor);
    for (int64_t i = 1; i <= n; ++i) {
      rows.push_back({i, "Customer#" + std::to_string(i),
                      rng.UniformRange(0, 24),
                      static_cast<double>(rng.UniformRange(-999, 9999)),
                      std::string(kSegments[rng.Uniform(5)])});
    }
    PDT_RETURN_NOT_OK(tables.customer->Load(rows));
  }
  {
    std::vector<Tuple> rows;
    int64_t n = PartCount(gen.scale_factor);
    for (int64_t i = 1; i <= n; ++i) {
      std::string name = std::string(kNames[rng.Uniform(16)]) + " " +
                         kNames[rng.Uniform(16)];
      std::string brand = "Brand#" + std::to_string(rng.UniformRange(1, 5)) +
                          std::to_string(rng.UniformRange(1, 5));
      std::string type = std::string(kTypes1[rng.Uniform(6)]) + " " +
                         kTypes2[rng.Uniform(5)] + " " +
                         kTypes3[rng.Uniform(5)];
      std::string container = std::string(kContainers1[rng.Uniform(5)]) +
                              " " + kContainers2[rng.Uniform(8)];
      rows.push_back({i, name, brand, type, rng.UniformRange(1, 50),
                      container,
                      900.0 + static_cast<double>(i % 1000)});
    }
    PDT_RETURN_NOT_OK(tables.part->Load(rows));
  }
  {
    std::vector<Tuple> rows;
    int64_t n = SupplierCount(gen.scale_factor);
    for (int64_t i = 1; i <= n; ++i) {
      rows.push_back({i, "Supplier#" + std::to_string(i),
                      rng.UniformRange(0, 24),
                      static_cast<double>(rng.UniformRange(-999, 9999))});
    }
    PDT_RETURN_NOT_OK(tables.supplier->Load(rows));
  }
  {
    std::vector<Tuple> rows;
    for (int64_t i = 0; i < 25; ++i) {
      rows.push_back({i, std::string(kNations[i]), i % 5});
    }
    PDT_RETURN_NOT_OK(tables.nation->Load(rows));
  }
  return tables;
}

}  // namespace tpch
}  // namespace pdtstore

#include "vdt/vdt.h"

namespace pdtstore {

Status Vdt::AddInsert(const Tuple& tuple) {
  PDT_RETURN_NOT_OK(schema_->ValidateTuple(tuple));
  std::vector<Value> sk = schema_->ExtractSortKey(tuple);
  auto [it, inserted] = ins_.emplace(std::move(sk), tuple);
  if (!inserted) {
    return Status::AlreadyExists("VDT insert: key already in insert table");
  }
  return Status::OK();
}

Status Vdt::AddDelete(const std::vector<Value>& sk, bool was_stable) {
  ins_.erase(sk);
  if (was_stable) del_[sk] = true;
  return Status::OK();
}

Status Vdt::AddModify(const Tuple& new_tuple, bool was_stable) {
  PDT_RETURN_NOT_OK(schema_->ValidateTuple(new_tuple));
  std::vector<Value> sk = schema_->ExtractSortKey(new_tuple);
  ins_[sk] = new_tuple;
  if (was_stable) del_[sk] = true;
  return Status::OK();
}

const Tuple* Vdt::FindInsert(const std::vector<Value>& sk) const {
  auto it = ins_.find(sk);
  return it == ins_.end() ? nullptr : &it->second;
}

bool Vdt::IsDeleted(const std::vector<Value>& sk) const {
  return del_.count(sk) > 0;
}

size_t Vdt::MemoryBytes() const {
  size_t total = 0;
  for (const auto& [k, t] : ins_) {
    for (const auto& v : k) total += v.ByteSize();
    for (const auto& v : t) total += v.ByteSize();
    total += 64;  // node overhead
  }
  for (const auto& [k, unused] : del_) {
    for (const auto& v : k) total += v.ByteSize();
    total += 64;
  }
  return total;
}

}  // namespace pdtstore

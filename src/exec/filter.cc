#include "exec/filter.h"

namespace pdtstore {

void EvalConjunction(const std::vector<VecPredicate>& preds, const Batch& b,
                     KeepBitmap* keep, KeepBitmap* tmp) {
  const size_t n = b.num_rows();
  if (preds.empty()) {
    // The identity element of conjunction: an empty AND keeps all rows.
    keep->ResetAllSet(n);
    return;
  }
  keep->Reset(n);
  preds[0](b, keep);
  for (size_t p = 1; p < preds.size(); ++p) {
    if (keep->None()) return;  // conjunction already empty
    tmp->Reset(n);
    preds[p](b, tmp);
    keep->And(*tmp);
  }
}

StatusOr<bool> FilterNode::Next(Batch* out, size_t max_rows) {
  while (true) {
    PDT_ASSIGN_OR_RETURN(bool more, input_->Next(&in_, max_rows));
    if (!more) return false;
    EvalConjunction(predicates_, in_, &keep_, &tmp_);
    if (keep_.None()) continue;  // entirely filtered out: pull again
    if (keep_.All()) {
      // Everything survives: hand the input batch over without the
      // expand + gather pass (the all-ones word fast path's big win).
      std::swap(*out, in_);
      return true;
    }
    // Compact survivors column-wise: one typed kernel per column rather
    // than a type dispatch per surviving value.
    out->ResetLike(in_);
    out->set_start_rid(in_.start_rid());
    out->AppendFiltered(in_, keep_);
    return true;
  }
}

VecPredicate Int64Between(size_t idx, int64_t lo, int64_t hi) {
  return [idx, lo, hi](const Batch& b, KeepBitmap* keep) {
    const int64_t* v = b.column(idx).ints().data();
    keep->FillFrom([&](size_t i) { return v[i] >= lo && v[i] <= hi; });
  };
}

VecPredicate DoubleInRange(size_t idx, double lo, double hi) {
  return [idx, lo, hi](const Batch& b, KeepBitmap* keep) {
    const double* v = b.column(idx).doubles().data();
    keep->FillFrom([&](size_t i) { return v[i] >= lo && v[i] < hi; });
  };
}

VecPredicate StringEquals(size_t idx, std::string s) {
  return [idx, s = std::move(s)](const Batch& b, KeepBitmap* keep) {
    const std::string* v = b.column(idx).strings().data();
    keep->FillFrom([&](size_t i) { return v[i] == s; });
  };
}

// The combinator closures are shared read-only across pipeline workers
// (one FilterOp, many threads), so the fold scratch must be call-local
// — no mutable captured state.

VecPredicate And(std::vector<VecPredicate> preds) {
  return [preds = std::move(preds)](const Batch& b, KeepBitmap* keep) {
    KeepBitmap tmp;
    EvalConjunction(preds, b, keep, &tmp);
  };
}

VecPredicate Or(std::vector<VecPredicate> preds) {
  return [preds = std::move(preds)](const Batch& b, KeepBitmap* keep) {
    const size_t n = b.num_rows();
    if (preds.empty()) return;
    preds[0](b, keep);
    KeepBitmap tmp;
    for (size_t p = 1; p < preds.size(); ++p) {
      if (keep->All()) return;  // disjunction already saturated
      tmp.Reset(n);
      preds[p](b, &tmp);
      keep->Or(tmp);
    }
  };
}

}  // namespace pdtstore

// Figure 19 reproduction: TPC-H under an update load — no-updates vs
// VDT-based vs PDT-based query processing.
//
// The paper runs the 22 TPC-H queries on (a) a clean bulk-loaded database
// and (b) a database updated by the two official refresh streams
// (~0.1% of lineitem and orders), with value-based (VDT) and positional
// (PDT) difference merging, on two platforms:
//   plots 1-2: server,      compressed storage, cold: time + I/O volume
//   plots 3-5: workstation, uncompressed,      cold + hot time + I/O.
//
// Substitutions (DESIGN.md): SF is laptop-scale; "cold" I/O is simulated
// by evicting the decoded-chunk cache and counting encoded bytes read,
// charged at a configurable disk bandwidth; "hot" runs reuse the cache.
// The claims that must reproduce: VDT reads more (it must scan the sort
// key columns), VDT adds visible merge CPU, and PDT stays within noise
// of the no-updates runs.
//
// In addition, a parallel-pipeline sweep (--threads) runs the 22 queries
// hot on the updated PDT scenario at several worker-thread counts — the
// query fragments (filter / project / join probe / partial agg) execute
// inside the morsel workers (exec/pipeline.h) — and records per-thread
// total time, approximate scan throughput, the auto-tuned morsel size
// and hardware_threads under `tpch_pipeline` in the JSON output.
//
// Usage: bench_fig19_tpch [--sf=0.05] [--config=both|compressed|uncompressed]
//                         [--fraction=0.001] [--bandwidth-mb=150]
//                         [--threads=1,2,4] [--json=BENCH_fig19.json]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "db/database.h"
#include "exec/parallel_scan.h"
#include "exec/pipeline.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_schema.h"
#include "tpch/update_stream.h"
#include "util/thread_pool.h"

namespace pdtstore {
namespace bench {
namespace {

using tpch::GenOptions;
using tpch::QueryResult;
using tpch::RunTpchQuery;
using tpch::TpchTables;

struct Scenario {
  const char* name;
  std::unique_ptr<Database> db;
  TpchTables tables;
};

struct QueryMeasurement {
  double cold_cpu_ms = 0;
  double cold_total_ms = 0;  // cpu + simulated I/O transfer time
  double hot_ms = 0;
  double io_mb = 0;
  QueryResult result;
};

Scenario BuildScenario(const char* name, const GenOptions& gen,
                       DeltaBackend backend, bool compression,
                       const std::vector<tpch::UpdateStream>* streams) {
  Scenario s;
  s.name = name;
  s.db = std::make_unique<Database>();
  TableOptions opts;
  opts.backend = backend;
  opts.store.compression = compression;
  auto tables = tpch::GenerateInto(s.db.get(), gen, opts);
  if (!tables.ok()) {
    std::fprintf(stderr, "generate failed: %s\n",
                 tables.status().ToString().c_str());
    std::abort();
  }
  s.tables = *tables;
  if (streams != nullptr) {
    for (const auto& stream : *streams) {
      Status st = tpch::ApplyUpdateStream(stream, &s.tables);
      if (!st.ok()) {
        std::fprintf(stderr, "update stream failed: %s\n",
                     st.ToString().c_str());
        std::abort();
      }
    }
  }
  return s;
}

QueryMeasurement MeasureQuery(Scenario* s, int q, double bandwidth_mb) {
  QueryMeasurement m;
  // Cold: empty decoded cache, count bytes pulled from the chunk store.
  s->db->DropCaches();
  s->db->ResetIoStats();
  Stopwatch sw;
  auto cold = RunTpchQuery(q, s->tables);
  m.cold_cpu_ms = sw.ElapsedMillis();
  if (!cold.ok()) {
    std::fprintf(stderr, "q%d failed: %s\n", q,
                 cold.status().ToString().c_str());
    std::abort();
  }
  m.result = *cold;
  m.io_mb = static_cast<double>(s->db->io_stats().bytes_read) / 1e6;
  m.cold_total_ms = m.cold_cpu_ms + m.io_mb / bandwidth_mb * 1e3;
  // Hot: run again against the warm cache.
  sw.Reset();
  auto hot = RunTpchQuery(q, s->tables);
  m.hot_ms = sw.ElapsedMillis();
  (void)hot;
  return m;
}

void RunConfig(const char* label, bool compression, const GenOptions& gen,
               double fraction, double bandwidth_mb) {
  std::printf("=== Fig. 19 [%s storage] SF=%.3f, %s ===\n", label,
              gen.scale_factor,
              compression ? "plots 1-2 analogue" : "plots 3-5 analogue");
  auto streams_or = tpch::MakeUpdateStreams(gen, 2, fraction);
  if (!streams_or.ok()) {
    std::fprintf(stderr, "streams failed\n");
    std::abort();
  }
  Scenario clean = BuildScenario("no-updates", gen, DeltaBackend::kPdt,
                                 compression, nullptr);
  Scenario vdt = BuildScenario("VDT", gen, DeltaBackend::kVdt, compression,
                               &*streams_or);
  Scenario pdt = BuildScenario("PDT", gen, DeltaBackend::kPdt, compression,
                               &*streams_or);
  std::printf(
      "%-4s | %9s %9s %9s | %8s %8s %8s | %8s %8s %8s | %7s %7s %7s | %s\n",
      "q", "cold_clean", "cold_vdt", "cold_pdt", "hot_cln", "hot_vdt",
      "hot_pdt", "io_clean", "io_vdt", "io_pdt", "nCold", "nHot", "nIO",
      "check");
  std::printf("%-4s | %9s %9s %9s (ms, incl. simulated disk) | (ms) | (MB) "
              "| (normalized to VDT)\n",
              "", "", "", "");
  double sum_ratio_cold = 0, sum_ratio_io = 0;
  int counted = 0;
  for (int q = 1; q <= 22; ++q) {
    QueryMeasurement mc = MeasureQuery(&clean, q, bandwidth_mb);
    QueryMeasurement mv = MeasureQuery(&vdt, q, bandwidth_mb);
    QueryMeasurement mp = MeasureQuery(&pdt, q, bandwidth_mb);
    bool agree =
        mv.result.rows == mp.result.rows &&
        std::abs(mv.result.checksum - mp.result.checksum) <=
            1e-6 * (1.0 + std::abs(mv.result.checksum));
    std::printf(
        "%-4d | %9.2f %9.2f %9.2f | %8.2f %8.2f %8.2f | %8.2f %8.2f %8.2f "
        "| %7.2f %7.2f %7.2f | %s\n",
        q, mc.cold_total_ms, mv.cold_total_ms, mp.cold_total_ms, mc.hot_ms,
        mv.hot_ms, mp.hot_ms, mc.io_mb, mv.io_mb, mp.io_mb,
        mv.cold_total_ms > 0 ? mp.cold_total_ms / mv.cold_total_ms : 0,
        mv.hot_ms > 0 ? mp.hot_ms / mv.hot_ms : 0,
        mv.io_mb > 0 ? mp.io_mb / mv.io_mb : 0,
        agree ? "ok" : "MISMATCH");
    if (tpch::QueryTouchesUpdatedTables(q) && mv.cold_total_ms > 0 &&
        mv.io_mb > 0) {
      sum_ratio_cold += mp.cold_total_ms / mv.cold_total_ms;
      sum_ratio_io += mp.io_mb / mv.io_mb;
      ++counted;
    }
  }
  if (counted > 0) {
    std::printf(
        "mean over updated-table queries: PDT/VDT cold time %.2f, "
        "PDT/VDT I/O %.2f (both expected < 1)\n\n",
        sum_ratio_cold / counted, sum_ratio_io / counted);
  }
}

std::vector<int> ParseIntList(const std::string& s) {
  std::vector<int> out;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::atoi(s.substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }
  return out;
}

// Parallel-pipeline sweep: all 22 queries, hot, on the updated PDT
// scenario, at each worker-thread count. Results are checked against the
// single-thread run (relative 1e-6: parallel partial-agg merges change
// floating-point summation order, not the result multiset).
void RunThreadSweep(const GenOptions& gen, double fraction,
                    const std::vector<int>& threads,
                    JsonResultWriter* json) {
  std::printf("=== parallel-pipeline sweep (PDT, uncompressed, hot) ===\n");
  auto streams_or = tpch::MakeUpdateStreams(gen, 2, fraction);
  if (!streams_or.ok()) {
    std::fprintf(stderr, "streams failed\n");
    std::abort();
  }
  Scenario pdt = BuildScenario("PDT", gen, DeltaBackend::kPdt,
                               /*compression=*/false, &*streams_or);
  const double lineitem_rows =
      static_cast<double>(pdt.tables.lineitem->RowCount());
  const double orders_rows =
      static_cast<double>(pdt.tables.orders->RowCount());
  std::printf("%-8s %-12s %-14s %-12s %-8s\n", "threads", "total_ms",
              "approx_mrps", "morsel_rows", "check");
  std::vector<QueryResult> reference(23);
  double base_ms = 0;
  for (int t : threads) {
    tpch::QueryOptions qopts;
    qopts.num_threads = t;
    // Warm the caches once per thread count (results are compared hot).
    for (int q = 1; q <= 22; ++q) (void)RunTpchQuery(q, pdt.tables, qopts);
    Stopwatch sw;
    bool agree = true;
    for (int q = 1; q <= 22; ++q) {
      auto r = RunTpchQuery(q, pdt.tables, qopts);
      if (!r.ok()) {
        std::fprintf(stderr, "q%d (%d threads) failed: %s\n", q, t,
                     r.status().ToString().c_str());
        std::abort();
      }
      if (t == threads.front()) {
        reference[q] = *r;
      } else {
        agree = agree && r->rows == reference[q].rows &&
                std::abs(r->checksum - reference[q].checksum) <=
                    1e-6 * (1.0 + std::abs(reference[q].checksum));
      }
    }
    double total_ms = sw.ElapsedMillis();
    // Approximate scan throughput: nearly every query scans the two
    // updated tables once.
    double mrps = 22.0 * (lineitem_rows + orders_rows) / total_ms / 1e3;
    size_t morsel_rows = AutoMorselRows(
        pdt.tables.lineitem->store().options().chunk_rows,
        pdt.tables.lineitem->store().num_rows(),
        pdt.tables.lineitem->pdt()->EntryCount(), t);
    std::printf("%-8d %-12.1f %-14.2f %-12zu %s\n", t, total_ms, mrps,
                morsel_rows, agree ? "ok" : "MISMATCH");
    if (t == 1) base_ms = total_ms;
    if (json != nullptr) {
      char key[48];
      std::snprintf(key, sizeof(key), "t%d_total_ms", t);
      json->Metric("tpch_pipeline", key, total_ms);
      std::snprintf(key, sizeof(key), "t%d_approx_mrps", t);
      json->Metric("tpch_pipeline", key, mrps);
      std::snprintf(key, sizeof(key), "t%d_morsel_rows", t);
      json->Metric("tpch_pipeline", key, static_cast<double>(morsel_rows));
      std::snprintf(key, sizeof(key), "t%d_agree", t);
      json->Metric("tpch_pipeline", key, agree ? 1.0 : 0.0);
      if (t > 1 && base_ms > 0) {
        std::snprintf(key, sizeof(key), "t%d_speedup", t);
        json->Metric("tpch_pipeline", key, base_ms / total_ms);
      }
    }
  }
  if (json != nullptr) {
    json->Metric("tpch_pipeline", "lineitem_rows", lineitem_rows);
    json->Metric("tpch_pipeline", "orders_rows", orders_rows);
    json->Metric("tpch_pipeline", "hardware_threads",
                 static_cast<double>(ThreadPool::DefaultThreads()));
  }
  std::printf("\n");
}

// Row count + checksum digest of a drained source (the Summarize
// analogue for the micro-sweeps below).
struct DrainDigest {
  size_t rows = 0;
  double checksum = 0;
};

DrainDigest Drain(BatchSource* src) {
  DrainDigest d;
  Batch batch;
  while (true) {
    auto more = src->Next(&batch, kDefaultBatchSize);
    if (!more.ok()) {
      std::fprintf(stderr, "drain failed: %s\n",
                   more.status().ToString().c_str());
      std::abort();
    }
    if (!*more) break;
    d.rows += batch.num_rows();
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      const ColumnVector& col = batch.column(c);
      if (col.type() == TypeId::kInt64) {
        for (int64_t v : col.ints()) d.checksum += static_cast<double>(v);
      } else if (col.type() == TypeId::kDouble) {
        for (double v : col.doubles()) d.checksum += v;
      }
    }
  }
  return d;
}

bool DigestsAgree(const DrainDigest& a, const DrainDigest& b) {
  return a.rows == b.rows &&
         std::abs(a.checksum - b.checksum) <=
             1e-6 * (1.0 + std::abs(a.checksum));
}

// Dedicated thread sweep over the two new breakers: a full ORDER BY of
// lineitem through IntoSortBuild (per-worker runs + loser-tree merge)
// and a partitioned orders-build / lineitem-probe join. t == 1 runs the
// serial tree (SortNode / single-partition build) and is the agreement
// reference for every other thread count.
void RunSortJoinSweep(const GenOptions& gen, double fraction,
                      const std::vector<int>& threads,
                      JsonResultWriter* json) {
  std::printf(
      "=== sort / join-build sweep (PDT, uncompressed, hot) ===\n");
  auto streams_or = tpch::MakeUpdateStreams(gen, 2, fraction);
  if (!streams_or.ok()) {
    std::fprintf(stderr, "streams failed\n");
    std::abort();
  }
  Scenario pdt = BuildScenario("PDT", gen, DeltaBackend::kPdt,
                               /*compression=*/false, &*streams_or);
  Table* line = pdt.tables.lineitem;
  Table* ord = pdt.tables.orders;
  const std::vector<ColumnId> sort_cols{tpch::kLOrderkey, tpch::kLShipdate,
                                        tpch::kLExtendedprice};
  const std::vector<ColumnId> probe_cols{tpch::kLOrderkey,
                                         tpch::kLExtendedprice};
  const std::vector<ColumnId> build_cols{tpch::kOOrderkey,
                                         tpch::kOTotalprice};
  auto run_sort = [&](int t) {
    ScanOptions so;
    so.num_threads = t;
    so.ordered = false;
    Pipeline pipe(line->PlanMorsels(sort_cols, nullptr, so));
    auto src = std::move(pipe).IntoSortBuild({{1, false}, {0, false}});
    return Drain(src.get());
  };
  auto run_join = [&](int t) {
    ScanOptions so;
    so.num_threads = t;
    so.ordered = false;
    auto bpipe =
        std::make_unique<Pipeline>(ord->PlanMorsels(build_cols, nullptr,
                                                    so));
    auto handle = Pipeline::IntoJoinBuild(std::move(bpipe), {0});
    Pipeline probe(line->PlanMorsels(probe_cols, nullptr, so));
    probe.Probe(handle, {0});
    auto src = std::move(probe).Exchange();
    return Drain(src.get());
  };
  // Warm the chunk caches so the sweep measures CPU, not decode — and
  // keep these serial-tree digests as the agreement reference for
  // every thread count (independent of which counts --threads lists).
  const DrainDigest sort_ref = run_sort(1);
  const DrainDigest join_ref = run_join(1);
  std::printf("%-8s %-12s %-12s %-10s %-10s\n", "threads", "sort_ms",
              "join_ms", "sort_rows", "check");
  for (int t : threads) {
    Stopwatch sw;
    DrainDigest s = run_sort(t);
    double sort_ms = sw.ElapsedMillis();
    sw.Reset();
    DrainDigest j = run_join(t);
    double join_ms = sw.ElapsedMillis();
    const bool agree =
        DigestsAgree(s, sort_ref) && DigestsAgree(j, join_ref);
    std::printf("%-8d %-12.1f %-12.1f %-10zu %s\n", t, sort_ms, join_ms,
                s.rows, agree ? "ok" : "MISMATCH");
    if (json != nullptr) {
      char key[48];
      std::snprintf(key, sizeof(key), "t%d_sort_ms", t);
      json->Metric("sort_join_build", key, sort_ms);
      std::snprintf(key, sizeof(key), "t%d_join_build_ms", t);
      json->Metric("sort_join_build", key, join_ms);
      std::snprintf(key, sizeof(key), "t%d_agree", t);
      json->Metric("sort_join_build", key, agree ? 1.0 : 0.0);
    }
  }
  if (json != nullptr) {
    json->Metric("sort_join_build", "sort_rows",
                 static_cast<double>(sort_ref.rows));
    json->Metric("sort_join_build", "join_rows",
                 static_cast<double>(join_ref.rows));
  }
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace pdtstore

int main(int argc, char** argv) {
  using namespace pdtstore::bench;
  pdtstore::tpch::GenOptions gen;
  gen.scale_factor =
      std::strtod(FlagValue(argc, argv, "sf", "0.05").c_str(), nullptr);
  double fraction = std::strtod(
      FlagValue(argc, argv, "fraction", "0.001").c_str(), nullptr);
  double bandwidth = std::strtod(
      FlagValue(argc, argv, "bandwidth-mb", "150").c_str(), nullptr);
  std::string config = FlagValue(argc, argv, "config", "both");
  auto threads = ParseIntList(FlagValue(argc, argv, "threads", "1,2,4,8"));
  const std::string json_path =
      FlagValue(argc, argv, "json", "BENCH_fig19.json");
  std::printf(
      "=== Figure 19: TPC-H with updates — no-updates vs VDT vs PDT ===\n"
      "(update streams: 2 x %.2f%% of orders+lineitem; disk model "
      "%.0f MB/s)\n\n",
      fraction * 100, bandwidth);
  JsonResultWriter json;
  if (config == "both" || config == "uncompressed") {
    RunConfig("uncompressed/workstation", false, gen, fraction, bandwidth);
  }
  if (config == "both" || config == "compressed") {
    RunConfig("compressed/server", true, gen, fraction, bandwidth);
  }
  if (!threads.empty()) {
    RunThreadSweep(gen, fraction, threads, &json);
    RunSortJoinSweep(gen, fraction, threads, &json);
  }
  std::printf(
      "Expectation (paper): io_vdt > io_pdt ~= io_clean (VDT must read "
      "sort-key columns; gap larger uncompressed); hot_vdt suffers merge "
      "CPU; PDT within noise of no-updates. Queries 2, 11, 16 touch no "
      "updated table.\n");
  if (!json_path.empty() && !json.WriteFile(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}

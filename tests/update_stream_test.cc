// Update-stream commit-path tests: the disjointness contract of
// MakeUpdateStreams (including the overrun case that used to alias
// delete keys by clamping), NotFound-delete idempotence through the
// multi-table refresh API, and the two-table ApplyUpdateStreamTxn
// failure path — a commit failing on one table of the pair must leave
// no abandoned published record on either manager's chain.
#include "tpch/update_stream.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>

#include "db/database.h"
#include "txn/txn_manager.h"
#include "util/file.h"

namespace pdtstore {
namespace {

tpch::GenOptions SmallGen() {
  tpch::GenOptions gen;
  gen.scale_factor = 0.002;  // 3000 orders
  return gen;
}

std::string FreshDir(const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(path);
  std::filesystem::create_directories(path);
  return path;
}

TEST(UpdateStreamDisjointnessTest, OverrunReturnsInvalidArgument) {
  // 3 streams x 40% of 3000 orders = 3600 delete keys from a 3000-key
  // space: disjointness is impossible. The old code clamped the stride
  // walk at the last key, silently aliasing the tail across streams.
  auto streams = tpch::MakeUpdateStreams(SmallGen(), 3, 0.4);
  ASSERT_FALSE(streams.ok());
  EXPECT_EQ(streams.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(streams.status().ToString().find("disjoint"),
            std::string::npos)
      << streams.status().ToString();
}

TEST(UpdateStreamDisjointnessTest, DeleteKeysStayDisjointNearCapacity) {
  // 4 streams x 24% fills 96% of the key space (stride 1): every delete
  // key must still be distinct, across streams as well as within them.
  auto streams = tpch::MakeUpdateStreams(SmallGen(), 4, 0.24);
  ASSERT_TRUE(streams.ok()) << streams.status().ToString();
  std::set<int64_t> delete_keys;
  std::set<int64_t> insert_keys;
  size_t total = 0;
  for (const auto& s : *streams) {
    for (const auto& o : s.deletes) {
      delete_keys.insert(o.order[tpch::kOOrderkey].AsInt64());
      ++total;
    }
    for (const auto& o : s.inserts) {
      insert_keys.insert(o.order[tpch::kOOrderkey].AsInt64());
    }
  }
  EXPECT_EQ(delete_keys.size(), total) << "delete keys collide";
  EXPECT_EQ(insert_keys.size(), total) << "insert keys collide";
  // Inserts fill holes, deletes sample used keys: never the same key.
  for (int64_t k : insert_keys) {
    EXPECT_EQ(delete_keys.count(k), 0u) << "key " << k << " on both sides";
  }
}

TEST(UpdateStreamMultiTxnTest, DeletesAreIdempotentAcrossReapplies) {
  Database db;
  auto gen = SmallGen();
  auto tables = tpch::GenerateInto(&db, gen, TableOptions{});
  ASSERT_TRUE(tables.ok());
  auto streams = tpch::MakeUpdateStreams(gen, 1, 0.01);
  ASSERT_TRUE(streams.ok());
  MultiTxnManager mgr({tables->orders, tables->lineitem}, nullptr);

  tpch::MultiTxnApplyOptions opts;
  opts.orders_per_txn = 4;
  auto delete_groups = [&] {
    std::vector<tpch::RefreshGroup> out;
    for (const auto& g :
         tpch::PlanRefreshGroups((*streams)[0], opts.orders_per_txn)) {
      if (!g.inserts) out.push_back(g);
    }
    return out;
  }();
  ASSERT_FALSE(delete_groups.empty());

  tpch::MultiTxnApplyStats first;
  for (const auto& g : delete_groups) {
    ASSERT_TRUE(
        tpch::ApplyRefreshGroupMultiTxn((*streams)[0], g, &mgr, opts,
                                        &first)
            .ok());
  }
  EXPECT_EQ(first.groups_committed, delete_groups.size());
  EXPECT_GT(first.rows_deleted, 0u);
  const uint64_t orders_after = [&] {
    auto txn = mgr.Begin();
    auto n = txn->RowCount("orders");
    EXPECT_TRUE(n.ok());
    return n.ok() ? *n : 0;
  }();

  // Re-applying the same deletes finds every key already gone: each
  // group sees only NotFound, commits nothing, and succeeds.
  tpch::MultiTxnApplyStats second;
  for (const auto& g : delete_groups) {
    ASSERT_TRUE(
        tpch::ApplyRefreshGroupMultiTxn((*streams)[0], g, &mgr, opts,
                                        &second)
            .ok());
  }
  EXPECT_EQ(second.groups_committed, 0u);
  EXPECT_EQ(second.rows_deleted, 0u);
  auto txn = mgr.Begin();
  auto n = txn->RowCount("orders");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, orders_after);
  EXPECT_EQ(mgr.GetStats().pending_deltas, 0u);
}

// Regression for the abandoned-transaction bug: ApplyUpdateStreamTxn
// used to return as soon as the orders-side AwaitCommit failed, leaving
// the already-published lineitem transaction dangling on its manager's
// delta chain. A poisoned WAL fails BOTH commits of the pair; the
// helper must resolve both before reporting, so neither chain retains
// a published record.
TEST(UpdateStreamTxnTest, WalFailureResolvesBothTablesOfThePair) {
  Database db;
  auto gen = SmallGen();
  auto tables = tpch::GenerateInto(&db, gen, TableOptions{});
  ASSERT_TRUE(tables.ok());
  auto streams = tpch::MakeUpdateStreams(gen, 1, 0.01);
  ASSERT_TRUE(streams.ok());

  const std::string dir = FreshDir("upd_stream_walfail");
  FaultInjectingFs fs(FileSystem::Default());
  auto writer = WalWriter::Open(&fs, dir + "/wal", true);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();

  Wal wal;
  TxnManagerOptions topts;
  topts.group_commit = true;
  TxnManager orders_mgr(tables->orders, &wal, topts);
  TxnManager lineitem_mgr(tables->lineitem, &wal, topts);
  orders_mgr.SetWalWriter(writer->get());
  lineitem_mgr.SetWalWriter(writer->get());

  const uint64_t orders_before = tables->orders->RowCount();
  fs.FailNextSync();  // first group fsync fails; the error is sticky
  Status st = tpch::ApplyUpdateStreamTxn((*streams)[0], &orders_mgr,
                                         &lineitem_mgr, 4);
  ASSERT_FALSE(st.ok());
  EXPECT_FALSE(orders_mgr.wal_status().ok());

  // The heart of the regression: no published record may be left
  // undecided on either chain, and no transaction may still be active.
  TxnManagerStats os = orders_mgr.GetStats();
  TxnManagerStats ls = lineitem_mgr.GetStats();
  EXPECT_EQ(os.pending_deltas, 0u);
  EXPECT_EQ(ls.pending_deltas, 0u);
  EXPECT_EQ(os.active, 0u);
  EXPECT_EQ(ls.active, 0u);

  // A failed group commit means the in-memory state may include the
  // unacknowledged group (ack-loss semantics), but never a torn one:
  // each applied insert group moved orders and lineitem together.
  auto snap = orders_mgr.Begin();
  uint64_t now = snap->RowCount();
  snap->Abort();
  EXPECT_GE(now, orders_before);
}

}  // namespace
}  // namespace pdtstore

#include "columnstore/types.h"

namespace pdtstore {

const char* TypeIdToString(TypeId t) {
  switch (t) {
    case TypeId::kInt64:
      return "INT64";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

size_t TypeFixedWidth(TypeId t) {
  switch (t) {
    case TypeId::kInt64:
      return 8;
    case TypeId::kDouble:
      return 8;
    case TypeId::kString:
      return 16;  // average payload estimate for accounting only
  }
  return 8;
}

}  // namespace pdtstore

// The Positional Delta Tree (PDT) — the paper's core contribution.
//
// A counted-B+-tree-like structure whose leaves hold differential updates
// (INS/DEL/modify triplets referencing a ValueSpace), keyed by the two
// non-unique but jointly-unique monotonically increasing keys SID and RID
// (Theorem 1). Internal nodes store, per child, the minimum SID of the
// child's subtree and the subtree's `delta` (= #inserts - #deletes), so
// that summing deltas on a root-to-leaf path converts between SIDs
// (positions in the underlying/stable image) and RIDs (positions in the
// current image) in O(log n).
//
// Deviations from the paper's sketch, documented here and in DESIGN.md:
//  * Fan-out is a runtime option (default 8 as in Sec. 3.1, max 32) so the
//    ablation benchmark can sweep it.
//  * Leaves are doubly linked; algorithms operate on a bidirectional
//    cursor, which makes the "jump to successor leaf" details the paper
//    omits explicit (and handles update chains spanning leaf boundaries).
//  * Under-full leaves are not rebalanced; a leaf that becomes empty
//    (delete-of-insert) is unlinked immediately. PDTs are short-lived
//    (bounded by Propagate/checkpoint), so rebalancing buys nothing.
//  * AddModify of a column whose tuple already has a *different* column's
//    modify entry appends a separate entry (one entry per modified
//    column), matching Merge (Alg. 2 lines 15-18).
//  * SerializeAgainst flattens, transforms and rebuilds rather than
//    mutating separator keys in place; same O(n) commit-time cost, far
//    simpler to reason about.
#ifndef PDTSTORE_PDT_PDT_H_
#define PDTSTORE_PDT_PDT_H_

#include <memory>
#include <string>
#include <vector>

#include "pdt/update_entry.h"
#include "pdt/value_space.h"
#include "util/status.h"

namespace pdtstore {

/// Hard upper bound on the runtime-configurable fan-out.
constexpr int kMaxFanout = 32;

/// PDT tuning knobs.
struct PdtOptions {
  /// Entries per leaf / children per internal node. The paper picks 8 so a
  /// leaf spans two cache lines. Must be in [4, kMaxFanout].
  int fanout = 8;
};

/// A single PDT layer. Thread-compatible (external synchronization; the
/// transaction manager clones PDTs for snapshot isolation instead of
/// locking them).
class Pdt {
 private:
  struct LeafNode;
  struct InternNode;
  struct NodeHeader;

 public:
  explicit Pdt(std::shared_ptr<const Schema> schema, PdtOptions options = {});
  ~Pdt();

  Pdt(const Pdt&) = delete;
  Pdt& operator=(const Pdt&) = delete;

  /// Deep copy (tree + value space). Used to snapshot the Write-PDT at
  /// transaction start (Sec. 3.3).
  std::unique_ptr<Pdt> Clone() const;

  const Schema& schema() const { return value_space_.schema(); }
  const ValueSpace& value_space() const { return value_space_; }
  ValueSpace& value_space() { return value_space_; }
  const PdtOptions& options() const { return options_; }

  // ----------------------------------------------------------------
  // Update operations (Sec. 3.2). Positions are in *this* PDT's RID
  // domain; `sid` of AddInsert is in its SID domain (obtained via
  // SKRidToSid so inserts respect ghost order).
  // ----------------------------------------------------------------

  /// Algorithm 3: records the insertion of `tuple` at position `rid`;
  /// `sid` determines its order relative to ghost tuples.
  Status AddInsert(Sid sid, Rid rid, const Tuple& tuple);

  /// Algorithm 4: records setting column `col` of the tuple currently at
  /// `rid` to `v`. In-place if that tuple is a PDT insert or already has a
  /// modify entry for `col`.
  Status AddModify(Rid rid, ColumnId col, const Value& v);

  /// Algorithm 5: records the deletion of the tuple currently at `rid`;
  /// `sk_values` (the tuple's sort key) populate the ghost entry. Deleting
  /// a PDT insert erases it; deleting a modified stable tuple collapses
  /// its modify entries into one DEL.
  Status AddDelete(Rid rid, const std::vector<Value>& sk_values);

  /// Algorithm 6: maps (`sk`, `rid`) to the SID where an insert should go,
  /// placing it correctly among ghost tuples by comparing sort keys.
  Sid SKRidToSid(const std::vector<Value>& sk, Rid rid) const;

  // ----------------------------------------------------------------
  // Lookup.
  // ----------------------------------------------------------------

  /// What occupies position `rid` of the merged image.
  struct RidLookup {
    bool is_insert = false;  ///< true: a PDT-inserted tuple
    uint64_t insert_offset = 0;
    Sid sid = 0;  ///< stable SID when !is_insert
    /// (column, modify-space offset) entries applying to the stable tuple.
    std::vector<std::pair<ColumnId, uint64_t>> mods;
  };
  RidLookup LookupRid(Rid rid) const;

  /// Where stable tuple `sid` sits in the merged image (the inverse of
  /// LookupRid's stable branch). `deleted` marks ghosts, whose `rid` is
  /// that of the following visible tuple. This is the ∆ mapping applied
  /// in the SID→RID direction, the primitive join-index maintenance
  /// builds on (Sec. 6 future work).
  struct SidLookup {
    Rid rid = 0;
    bool deleted = false;
  };
  SidLookup SidToRid(Sid sid) const;

  /// Net RID shift of all updates (#inserts - #deletes).
  int64_t TotalDelta() const {
    return static_cast<int64_t>(insert_count_) -
           static_cast<int64_t>(delete_count_);
  }

  size_t EntryCount() const { return entry_count_; }
  size_t InsertCount() const { return insert_count_; }
  size_t DeleteCount() const { return delete_count_; }
  size_t ModifyCount() const {
    return entry_count_ - insert_count_ - delete_count_;
  }
  bool Empty() const { return entry_count_ == 0; }

  /// Heap footprint of tree nodes + value space.
  size_t MemoryBytes() const;

  // ----------------------------------------------------------------
  // Iteration. A Cursor walks entries in (SID, RID) order and knows the
  // running delta, hence each entry's RID. An exhausted cursor parks at
  // (last leaf, count): !Valid(), but still a usable insertion point.
  // ----------------------------------------------------------------

  class Cursor {
   public:
    Cursor() = default;
    bool Valid() const;
    void Next();
    Sid sid() const;
    Rid rid() const { return sid() + static_cast<Rid>(delta_before_); }
    uint16_t type() const;
    uint64_t value() const;
    /// Sum of deltas of all entries strictly before this one.
    int64_t delta_before() const { return delta_before_; }
    UpdateEntry entry() const { return {sid(), type(), value()}; }

   private:
    friend class Pdt;
    LeafNode* leaf_ = nullptr;
    int pos_ = 0;
    int64_t delta_before_ = 0;
  };

  /// Cursor at the first entry (!Valid() if empty).
  Cursor Begin() const;

  /// Cursor at the first entry with entry.sid >= `sid` (!Valid() if none).
  /// Used by MergeScan range scans.
  Cursor SeekSid(Sid sid) const;

  /// All entries in order. O(n); for tests, Serialize and rebuilds.
  std::vector<UpdateEntry> Flatten() const;

  /// Bulk-builds from (SID,RID)-ordered entries into an empty PDT. The
  /// value space is not touched: entries must already reference it.
  Status BuildFromSorted(const std::vector<UpdateEntry>& entries);

  /// Drops all entries and the value space.
  void Clear();

  /// Verifies structural invariants (delta sums, min-SID separators,
  /// (SID,RID) ordering & uniqueness (Thm. 1), chain shapes (Cor. 3-4),
  /// leaf-chain consistency). Test-only; O(n).
  Status CheckInvariants() const;

  /// Debug dump of the tree.
  std::string DebugString() const;

  // Implemented in propagate.cc / serialize.cc:

  /// Algorithm 7: folds consecutive PDT `w` (whose SID domain equals this
  /// PDT's RID domain) into this PDT.
  Status Propagate(const Pdt& w);

  /// Incremental Algorithm 7: folds up to `max_entries` of `w` into this
  /// PDT, resuming from `*cursor` (pass `w.Begin()` to start) and
  /// leaving the cursor at the first unapplied entry. Sets `*done` when
  /// `w` is exhausted. Left-to-right prefixes of a Propagate are
  /// themselves valid states (the RID domain evolves entry by entry), so
  /// a background merge can interleave chunks with other work as long as
  /// `w` and this PDT stay otherwise unmodified between steps.
  Status PropagateStep(const Pdt& w, Cursor* cursor, size_t max_entries,
                       bool* done);

  /// Algorithm 8: makes this (newer, aligned) PDT consecutive to `ty` by
  /// converting its SIDs into ty's RID domain. Returns Status::Conflict
  /// on a write-write conflict (caller aborts the transaction).
  Status SerializeAgainst(const Pdt& ty);

 private:
  // --- navigation ---
  // All Descend* return a cursor at position 0 of the located leaf with
  // delta_before set to the delta of everything left of that leaf.
  Cursor DescendRightmostByRid(Rid rid) const;
  Cursor DescendRightmostBySidRid(Sid sid, Rid rid) const;
  Cursor DescendLeftmostBySid(Sid sid) const;

  // Steps the cursor back one entry; false at the beginning.
  static bool PrevCursor(Cursor* c);

  // --- structural editing ---
  void InsertEntryAt(Cursor* c, Sid sid, uint16_t type, uint64_t value);
  // Removes the entry under the cursor, re-pointing the cursor at the
  // following entry (delta_before unchanged for MOD removals only if the
  // removed entry contributed 0; callers re-derive deltas as needed).
  void RemoveEntryAt(Cursor* c);
  void AddNodeDeltas(LeafNode* leaf, int64_t val);
  void UpdateMinSidUpward(NodeHeader* node);
  LeafNode* SplitLeaf(LeafNode* leaf);
  InternNode* SplitIntern(InternNode* node);
  void LinkSibling(NodeHeader* left, NodeHeader* right, Sid right_min,
                   int64_t right_delta);
  void RemoveFromParent(NodeHeader* node);
  void FreeSubtree(NodeHeader* node);
  void ClearTree();
  int64_t SubtreeDelta(const NodeHeader* node) const;
  Sid SubtreeMinSid(const NodeHeader* node) const;
  void BumpCounters(uint16_t type, int dir);

  Status CheckSubtree(const NodeHeader* node, size_t* entries_seen,
                      int depth, int leaf_depth, int64_t* deep_delta) const;
  int LeafDepth() const;

  ValueSpace value_space_;
  PdtOptions options_;
  NodeHeader* root_ = nullptr;  // a LeafNode when the tree has height 1
  LeafNode* first_leaf_ = nullptr;
  LeafNode* last_leaf_ = nullptr;
  size_t entry_count_ = 0;
  size_t insert_count_ = 0;
  size_t delete_count_ = 0;
  size_t node_count_ = 0;
};

}  // namespace pdtstore

#endif  // PDTSTORE_PDT_PDT_H_

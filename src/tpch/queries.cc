#include "tpch/queries.h"

#include <cmath>

#include "exec/filter.h"
#include "exec/hash_agg.h"
#include "exec/hash_join.h"
#include "exec/operator.h"
#include "exec/pipeline.h"
#include "exec/project.h"
#include "exec/sort.h"

namespace pdtstore {
namespace tpch {

namespace {

using Src = std::unique_ptr<BatchSource>;

// A plan fragment: a serial operator chain (src) at one thread, or an
// open parallel pipeline whose fragment ops run inside the morsel
// workers (exec/pipeline.h). The query kernels below are written once
// against this wrapper; QueryOptions::num_threads picks the shape.
struct Plan {
  Src src;
  std::unique_ptr<Pipeline> pipe;
};

Plan P(Src src) {
  Plan p;
  p.src = std::move(src);
  return p;
}

ScanOptions PipeScanOptions(const QueryOptions& o) {
  ScanOptions so;
  so.num_threads = o.num_threads;
  so.ordered = false;  // pipeline fragments are order-insensitive
  so.morsel_rows = o.morsel_rows;
  return so;
}

Plan Scan(const QueryOptions& o, Table* table, std::vector<ColumnId> proj,
          const KeyBounds* bounds = nullptr,
          std::vector<ZoneFilter> zone_filters = {}) {
  ScanOptions so = PipeScanOptions(o);
  so.zone_filters = std::move(zone_filters);
  if (o.num_threads > 1) {
    Plan p;
    p.pipe = std::make_unique<Pipeline>(
        table->PlanMorsels(std::move(proj), bounds, so));
    return p;
  }
  return P(table->Scan(std::move(proj), bounds, so));
}

Plan Filter(Plan in, VecPredicate p) {
  if (in.pipe) {
    in.pipe->Filter(std::move(p));
  } else {
    in.src = std::make_unique<FilterNode>(std::move(in.src), std::move(p));
  }
  return in;
}

Plan Project(Plan in, std::vector<ColumnExpr> exprs) {
  if (in.pipe) {
    in.pipe->Project(std::move(exprs));
  } else {
    in.src =
        std::make_unique<ProjectNode>(std::move(in.src), std::move(exprs));
  }
  return in;
}

// Pipeline breaker: per-worker partial aggregation merged at finalize
// (parallel), or the plain HashAggNode (serial).
Plan Agg(Plan in, std::vector<size_t> keys, std::vector<AggSpec> aggs) {
  if (in.pipe) {
    return P(std::move(*in.pipe).Aggregate(std::move(keys),
                                           std::move(aggs)));
  }
  return P(std::make_unique<HashAggNode>(std::move(in.src), std::move(keys),
                                         std::move(aggs)));
}

// The build side becomes a deferred JoinBuildHandle (collected by its
// own pipeline when parallel), resolved — the publish barrier — right
// before the probe side starts; the probe runs as a fragment op inside
// the probe pipeline's workers, or in the serial HashJoinNode.
Plan Join(Plan probe, Plan build, std::vector<size_t> pk,
          std::vector<size_t> bk, JoinKind kind = JoinKind::kInner) {
  std::shared_ptr<JoinBuildHandle> handle =
      build.pipe != nullptr
          ? Pipeline::IntoJoinBuild(std::move(build.pipe), std::move(bk))
          : std::make_shared<JoinBuildHandle>(std::move(build.src),
                                              std::move(bk));
  if (probe.pipe) {
    probe.pipe->Probe(std::move(handle), std::move(pk), kind);
    return probe;
  }
  probe.src = std::make_unique<HashJoinNode>(
      std::move(probe.src), std::move(handle), std::move(pk), kind);
  return probe;
}

// Closes an open pipeline through the exchange (or passes the serial
// chain through).
Src Finish(Plan in) {
  if (in.pipe) return std::move(*in.pipe).Exchange();
  return std::move(in.src);
}

// ORDER BY [LIMIT]: an open pipeline ends in the IntoSortBuild breaker
// (per-worker sorted runs, loser-tree merge); a serial chain keeps the
// materializing SortNode.
Src Sort(Plan in, std::vector<SortKey> keys, size_t limit = 0) {
  if (in.pipe) {
    return std::move(*in.pipe).IntoSortBuild(std::move(keys), limit);
  }
  return std::make_unique<SortNode>(Finish(std::move(in)), std::move(keys),
                                    limit);
}

// Drains a pipeline, counting rows and checksumming numeric cells.
StatusOr<QueryResult> Summarize(Src src) {
  QueryResult result;
  Batch batch;
  while (true) {
    PDT_ASSIGN_OR_RETURN(bool more, src->Next(&batch, kDefaultBatchSize));
    if (!more) break;
    result.rows += batch.num_rows();
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      const ColumnVector& col = batch.column(c);
      if (col.type() == TypeId::kInt64) {
        const int64_t* v = col.ints_data();
        for (size_t i = 0; i < col.size(); ++i) {
          result.checksum += static_cast<double>(v[i]);
        }
      } else if (col.type() == TypeId::kDouble) {
        const double* v = col.doubles_data();
        for (size_t i = 0; i < col.size(); ++i) result.checksum += v[i];
      }
    }
  }
  return result;
}

StatusOr<QueryResult> Summarize(Plan in) {
  return Summarize(Finish(std::move(in)));
}

// Q1: pricing summary report. Full lineitem scan minus the last ~90 days.
StatusOr<QueryResult> Q1(const TpchTables& t, const QueryOptions& o) {
  Plan scan = Scan(o, t.lineitem,
                   {kLReturnflag, kLLinestatus, kLQuantity, kLExtendedprice,
                    kLDiscount, kLTax, kLShipdate});
  Plan flt = Filter(std::move(scan), Int64Between(6, kMinDate,
                                                  DayNumber(1998, 9, 2)));
  Plan proj = Project(std::move(flt),
                      {ColumnRef(0), ColumnRef(1), ColumnRef(2), ColumnRef(3),
                       Revenue(3, 4), Charge(3, 4, 5), ColumnRef(4)});
  Plan agg = Agg(std::move(proj), {0, 1},
                 {{AggKind::kSum, 2},
                  {AggKind::kSum, 3},
                  {AggKind::kSum, 4},
                  {AggKind::kSum, 5},
                  {AggKind::kAvg, 2},
                  {AggKind::kAvg, 3},
                  {AggKind::kAvg, 6},
                  {AggKind::kCount, 0}});
  return Summarize(Sort(std::move(agg), {{0}, {1}}));
}

// Q2: minimum-cost supplier (part x supplier; no updated tables).
StatusOr<QueryResult> Q2(const TpchTables& t, const QueryOptions& o) {
  Plan part = Scan(o, t.part, {kPPartkey, kPType, kPSize});
  Plan flt = Filter(std::move(part), Int64Between(2, 15, 15));
  Plan supp = Scan(o, t.supplier, {kSSuppkey, kSNationkey, kSAcctbal});
  // Supplier for a part: suppkey ~ partkey mod |supplier| (the generated
  // partsupp relation is implicit).
  Plan proj = Project(std::move(flt),
                      {ColumnRef(0), [](const Batch& b) {
                         ColumnVector out(TypeId::kInt64);
                         const size_t n = b.column(0).size();
                         const int64_t* pk = b.column(0).ints_data();
                         auto& vals = out.ints();
                         vals.resize(n);
                         for (size_t i = 0; i < n; ++i) {
                           vals[i] = 1 + (pk[i] % 25);
                         }
                         return out;
                       }});
  Plan joined = Join(std::move(proj), std::move(supp), {1}, {0});
  Plan agg = Agg(std::move(joined), {3},
                 {{AggKind::kMin, 4}, {AggKind::kCount, 0}});
  return Summarize(Sort(std::move(agg), {{0}}, 100));
}

// Q3: shipping priority. customer(segment) x orders(date<) x lineitem.
StatusOr<QueryResult> Q3(const TpchTables& t, const QueryOptions& o) {
  int64_t cutoff = DayNumber(1995, 3, 15);
  Plan cust = Filter(Scan(o, t.customer, {kCCustkey, kCMktsegment}),
                     StringEquals(1, "BUILDING"));
  KeyBounds order_bounds;
  order_bounds.hi = {Value(cutoff)};
  Plan ord = Scan(o, t.orders,
                  {kOOrderkey, kOCustkey, kOOrderdate, kOShippriority},
                  &order_bounds);
  Plan ord_flt =
      Filter(std::move(ord), Int64Between(2, kMinDate, cutoff - 1));
  Plan ord_cust = Join(std::move(ord_flt), std::move(cust), {1}, {0},
                       JoinKind::kLeftSemi);
  Plan line = Filter(
      Scan(o, t.lineitem,
           {kLOrderkey, kLExtendedprice, kLDiscount, kLShipdate}),
      Int64Between(3, cutoff + 1, kMaxDate));
  Plan joined = Join(std::move(line), std::move(ord_cust), {0}, {0});
  Plan proj = Project(std::move(joined),
                      {ColumnRef(0), Revenue(1, 2), ColumnRef(6),
                       ColumnRef(7)});
  Plan agg = Agg(std::move(proj), {0, 2, 3},
                 {{AggKind::kSum, 1}});
  return Summarize(Sort(std::move(agg), {{3, true}, {1}}, 10));
}

// Q4: order priority checking. orders(quarter) semi-join late lineitems.
StatusOr<QueryResult> Q4(const TpchTables& t, const QueryOptions& o) {
  int64_t lo = DayNumber(1993, 7, 1), hi = DayNumber(1993, 10, 1) - 1;
  KeyBounds bounds;
  bounds.lo = {Value(lo)};
  bounds.hi = {Value(hi)};
  Plan ord = Scan(o, t.orders, {kOOrderdate, kOOrderkey, kOOrderpriority},
                  &bounds);
  Plan ord_flt = Filter(std::move(ord), Int64Between(0, lo, hi));
  Plan late = Filter(Scan(o, t.lineitem,
                          {kLOrderkey, kLCommitdate, kLReceiptdate}),
                     [](const Batch& b, KeepBitmap* keep) {
                       const int64_t* commit = b.column(1).ints_data();
                       const int64_t* receipt = b.column(2).ints_data();
                       keep->FillFrom(
                           [&](size_t i) { return commit[i] < receipt[i]; });
                     });
  Plan semi = Join(std::move(ord_flt), std::move(late), {1}, {0},
                   JoinKind::kLeftSemi);
  Plan agg = Agg(std::move(semi), {2}, {{AggKind::kCount, 0}});
  return Summarize(Sort(std::move(agg), {{0}}));
}

// Q5: local supplier volume. lineitem x orders(year) x customer nation.
StatusOr<QueryResult> Q5(const TpchTables& t, const QueryOptions& o) {
  int64_t lo = DayNumber(1994, 1, 1), hi = DayNumber(1995, 1, 1) - 1;
  KeyBounds bounds;
  bounds.lo = {Value(lo)};
  bounds.hi = {Value(hi)};
  Plan ord = Filter(Scan(o, t.orders, {kOOrderdate, kOOrderkey, kOCustkey},
                         &bounds),
                    Int64Between(0, lo, hi));
  Plan cust = Scan(o, t.customer, {kCCustkey, kCNationkey});
  Plan ord_cust = Join(std::move(ord), std::move(cust), {2}, {0});
  Plan line = Scan(o, t.lineitem,
                   {kLOrderkey, kLSuppkey, kLExtendedprice, kLDiscount});
  Plan joined = Join(std::move(line), std::move(ord_cust), {0}, {1});
  // nation of the customer groups the revenue.
  Plan proj = Project(std::move(joined), {ColumnRef(8), Revenue(2, 3)});
  Plan agg = Agg(std::move(proj), {0}, {{AggKind::kSum, 1}});
  return Summarize(Sort(std::move(agg), {{1, true}}));
}

// Q6: forecasting revenue change. Pure lineitem scan (the paper's
// poster-child for merge CPU overhead).
StatusOr<QueryResult> Q6(const TpchTables& t, const QueryOptions& o) {
  int64_t lo = DayNumber(1994, 1, 1), hi = DayNumber(1995, 1, 1) - 1;
  // The shipdate conjunct doubles as a zone-map pruning hint: chunks
  // whose min/max date range misses [lo, hi] are never fetched.
  Plan scan = Scan(o, t.lineitem,
                   {kLShipdate, kLDiscount, kLQuantity, kLExtendedprice},
                   nullptr, {{kLShipdate, Value(lo), Value(hi)}});
  Plan flt = Filter(std::move(scan),
                    And({Int64Between(0, lo, hi),
                         DoubleInRange(1, 0.05, 0.0701),
                         DoubleInRange(2, 0.0, 24.0)}));
  Plan proj = Project(std::move(flt), {[](const Batch& b) {
    ColumnVector out(TypeId::kDouble);
    const size_t n = b.column(3).size();
    const double* price = b.column(3).doubles_data();
    const double* disc = b.column(1).doubles_data();
    auto& vals = out.doubles();
    vals.resize(n);
    for (size_t i = 0; i < n; ++i) {
      vals[i] = price[i] * disc[i];
    }
    return out;
  }});
  return Summarize(Agg(std::move(proj), {}, {{AggKind::kSum, 0}}));
}

// Q7: volume shipping between two nations, grouped by year.
StatusOr<QueryResult> Q7(const TpchTables& t, const QueryOptions& o) {
  int64_t lo = DayNumber(1995, 1, 1), hi = DayNumber(1996, 12, 31);
  Plan line = Filter(Scan(o, t.lineitem,
                          {kLOrderkey, kLSuppkey, kLShipdate,
                           kLExtendedprice, kLDiscount}),
                     Int64Between(2, lo, hi));
  Plan supp = Filter(Scan(o, t.supplier, {kSSuppkey, kSNationkey}),
                     Int64Between(1, 6, 7));  // FRANCE / GERMANY
  Plan line_supp = Join(std::move(line), std::move(supp), {1}, {0},
                        JoinKind::kLeftSemi);
  Plan ord = Scan(o, t.orders, {kOOrderkey, kOCustkey});
  Plan joined = Join(std::move(line_supp), std::move(ord), {0}, {0});
  Plan proj = Project(std::move(joined), {[](const Batch& b) {
                        ColumnVector out(TypeId::kInt64);
                        const size_t n = b.column(2).size();
                        const int64_t* d = b.column(2).ints_data();
                        auto& vals = out.ints();
                        vals.resize(n);
                        for (size_t i = 0; i < n; ++i) {
                          vals[i] = 1992 + d[i] / 365;
                        }
                        return out;
                      },
                      Revenue(3, 4)});
  Plan agg = Agg(std::move(proj), {0}, {{AggKind::kSum, 1}});
  return Summarize(Sort(std::move(agg), {{0}}));
}

// Q8: national market share by year.
StatusOr<QueryResult> Q8(const TpchTables& t, const QueryOptions& o) {
  int64_t lo = DayNumber(1995, 1, 1), hi = DayNumber(1996, 12, 31);
  Plan part = Filter(Scan(o, t.part, {kPPartkey, kPType}),
                     StringEquals(1, "ECONOMY ANODIZED STEEL"));
  Plan line = Scan(o, t.lineitem,
                   {kLOrderkey, kLPartkey, kLExtendedprice, kLDiscount});
  Plan line_part = Join(std::move(line), std::move(part), {1}, {0},
                        JoinKind::kLeftSemi);
  KeyBounds bounds;
  bounds.lo = {Value(lo)};
  bounds.hi = {Value(hi)};
  Plan ord = Filter(Scan(o, t.orders, {kOOrderdate, kOOrderkey}, &bounds),
                    Int64Between(0, lo, hi));
  Plan joined = Join(std::move(line_part), std::move(ord), {0}, {1});
  Plan proj = Project(std::move(joined), {[](const Batch& b) {
                        ColumnVector out(TypeId::kInt64);
                        const size_t n = b.column(4).size();
                        const int64_t* d = b.column(4).ints_data();
                        auto& vals = out.ints();
                        vals.resize(n);
                        for (size_t i = 0; i < n; ++i) {
                          vals[i] = 1992 + d[i] / 365;
                        }
                        return out;
                      },
                      Revenue(2, 3)});
  Plan agg = Agg(std::move(proj), {0},
                 {{AggKind::kSum, 1}, {AggKind::kAvg, 1}});
  return Summarize(Sort(std::move(agg), {{0}}));
}

// Q9: product type profit measure, by year.
StatusOr<QueryResult> Q9(const TpchTables& t, const QueryOptions& o) {
  // StringMatch runs the substring test once per dictionary entry on
  // dict-encoded part names, not once per row.
  Plan part = Filter(Scan(o, t.part, {kPPartkey, kPName}),
                     StringMatch(1, [](const std::string& name) {
                       return name.find("green") != std::string::npos;
                     }));
  Plan line = Scan(o, t.lineitem,
                   {kLOrderkey, kLPartkey, kLQuantity, kLExtendedprice,
                    kLDiscount});
  Plan line_part = Join(std::move(line), std::move(part), {1}, {0},
                        JoinKind::kLeftSemi);
  Plan ord = Scan(o, t.orders, {kOOrderkey, kOOrderdate});
  Plan joined = Join(std::move(line_part), std::move(ord), {0}, {0});
  Plan proj = Project(std::move(joined), {[](const Batch& b) {
                        ColumnVector out(TypeId::kInt64);
                        const size_t n = b.column(6).size();
                        const int64_t* d = b.column(6).ints_data();
                        auto& vals = out.ints();
                        vals.resize(n);
                        for (size_t i = 0; i < n; ++i) {
                          vals[i] = 1992 + d[i] / 365;
                        }
                        return out;
                      },
                      [](const Batch& b) {
                        // profit ~ revenue - supplycost*qty
                        ColumnVector out(TypeId::kDouble);
                        const size_t n = b.column(3).size();
                        const double* price = b.column(3).doubles_data();
                        const double* disc = b.column(4).doubles_data();
                        const double* qty = b.column(2).doubles_data();
                        auto& vals = out.doubles();
                        vals.resize(n);
                        for (size_t i = 0; i < n; ++i) {
                          vals[i] =
                              price[i] * (1.0 - disc[i]) - 500.0 * qty[i];
                        }
                        return out;
                      }});
  Plan agg = Agg(std::move(proj), {0}, {{AggKind::kSum, 1}});
  return Summarize(Sort(std::move(agg), {{0, true}}));
}

// Q10: returned item reporting. Top customers by lost revenue.
StatusOr<QueryResult> Q10(const TpchTables& t, const QueryOptions& o) {
  int64_t lo = DayNumber(1993, 10, 1), hi = DayNumber(1994, 1, 1) - 1;
  KeyBounds bounds;
  bounds.lo = {Value(lo)};
  bounds.hi = {Value(hi)};
  Plan ord = Filter(Scan(o, t.orders, {kOOrderdate, kOOrderkey, kOCustkey},
                         &bounds),
                    Int64Between(0, lo, hi));
  Plan line = Filter(Scan(o, t.lineitem,
                          {kLOrderkey, kLExtendedprice, kLDiscount,
                           kLReturnflag}),
                     StringEquals(3, "R"));
  Plan joined = Join(std::move(line), std::move(ord), {0}, {1});
  Plan proj = Project(std::move(joined), {ColumnRef(6), Revenue(1, 2)});
  Plan agg = Agg(std::move(proj), {0}, {{AggKind::kSum, 1}});
  return Summarize(Sort(std::move(agg), {{1, true}}, 20));
}

// Q11: important stock identification (part x supplier only).
StatusOr<QueryResult> Q11(const TpchTables& t, const QueryOptions& o) {
  Plan supp = Filter(Scan(o, t.supplier, {kSSuppkey, kSNationkey}),
                     Int64Between(1, 7, 7));
  Plan part = Scan(o, t.part, {kPPartkey, kPRetailprice});
  Plan proj = Project(std::move(part),
                      {ColumnRef(0), ColumnRef(1), [](const Batch& b) {
                         ColumnVector out(TypeId::kInt64);
                         const size_t n = b.column(0).size();
                         const int64_t* pk = b.column(0).ints_data();
                         auto& vals = out.ints();
                         vals.resize(n);
                         for (size_t i = 0; i < n; ++i) {
                           vals[i] = 1 + (pk[i] % 25);
                         }
                         return out;
                       }});
  Plan joined = Join(std::move(proj), std::move(supp), {2}, {0},
                     JoinKind::kLeftSemi);
  Plan agg = Agg(std::move(joined), {0}, {{AggKind::kSum, 1}});
  return Summarize(Sort(std::move(agg), {{1, true}}, 50));
}

// Q12: shipping modes and order priority.
StatusOr<QueryResult> Q12(const TpchTables& t, const QueryOptions& o) {
  int64_t lo = DayNumber(1994, 1, 1), hi = DayNumber(1995, 1, 1) - 1;
  Plan line = Filter(
      Scan(o, t.lineitem,
           {kLOrderkey, kLShipmode, kLCommitdate, kLReceiptdate,
            kLShipdate}),
      // Disjunction and conjunction both fold word-wise on the bitmap:
      // one compaction for the whole predicate tree.
      And({Or({StringEquals(1, "MAIL"), StringEquals(1, "SHIP")}),
           [lo, hi](const Batch& b, KeepBitmap* keep) {
             const int64_t* commit = b.column(2).ints_data();
             const int64_t* receipt = b.column(3).ints_data();
             const int64_t* ship = b.column(4).ints_data();
             keep->FillFrom([&](size_t i) {
               return commit[i] < receipt[i] && ship[i] < commit[i] &&
                      receipt[i] >= lo && receipt[i] <= hi;
             });
           }}));
  Plan ord = Scan(o, t.orders, {kOOrderkey, kOOrderpriority});
  Plan joined = Join(std::move(line), std::move(ord), {0}, {0});
  Plan proj = Project(std::move(joined),
                      {ColumnRef(1), [](const Batch& b) {
                         // high-priority indicator
                         ColumnVector out(TypeId::kInt64);
                         const ColumnVector& prio = b.column(6);
                         const size_t n = prio.size();
                         auto& vals = out.ints();
                         vals.resize(n);
                         for (size_t i = 0; i < n; ++i) {
                           const std::string& p = prio.StringAt(i);
                           vals[i] =
                               (p == "1-URGENT" || p == "2-HIGH") ? 1 : 0;
                         }
                         return out;
                       }});
  Plan agg = Agg(std::move(proj), {0},
                 {{AggKind::kSum, 1}, {AggKind::kCount, 0}});
  return Summarize(Sort(std::move(agg), {{0}}));
}

// Q13: customer distribution (orders only among updated tables).
StatusOr<QueryResult> Q13(const TpchTables& t, const QueryOptions& o) {
  Plan ord = Scan(o, t.orders, {kOCustkey});
  Plan per_cust = Agg(std::move(ord), {0}, {{AggKind::kCount, 0}});
  Plan dist = Agg(std::move(per_cust), {1}, {{AggKind::kCount, 0}});
  return Summarize(Sort(std::move(dist), {{1, true}, {0, true}}));
}

// Q14: promotion effect.
StatusOr<QueryResult> Q14(const TpchTables& t, const QueryOptions& o) {
  int64_t lo = DayNumber(1995, 9, 1), hi = DayNumber(1995, 10, 1) - 1;
  Plan line = Filter(Scan(o, t.lineitem,
                          {kLPartkey, kLExtendedprice, kLDiscount,
                           kLShipdate}),
                     Int64Between(3, lo, hi));
  Plan part = Scan(o, t.part, {kPPartkey, kPType});
  Plan joined = Join(std::move(line), std::move(part), {0}, {0});
  Plan proj = Project(std::move(joined), {[](const Batch& b) {
                        // promo revenue
                        ColumnVector out(TypeId::kDouble);
                        const size_t n = b.column(1).size();
                        const double* price = b.column(1).doubles_data();
                        const double* disc = b.column(2).doubles_data();
                        const ColumnVector& type = b.column(5);
                        auto& vals = out.doubles();
                        vals.resize(n);
                        for (size_t i = 0; i < n; ++i) {
                          bool promo =
                              type.StringAt(i).rfind("PROMO", 0) == 0;
                          vals[i] =
                              promo ? price[i] * (1.0 - disc[i]) : 0.0;
                        }
                        return out;
                      },
                      Revenue(1, 2)});
  return Summarize(
      Agg(std::move(proj), {}, {{AggKind::kSum, 0}, {AggKind::kSum, 1}}));
}

// Q15: top supplier by quarterly revenue.
StatusOr<QueryResult> Q15(const TpchTables& t, const QueryOptions& o) {
  int64_t lo = DayNumber(1996, 1, 1), hi = DayNumber(1996, 4, 1) - 1;
  Plan line = Filter(Scan(o, t.lineitem,
                          {kLSuppkey, kLExtendedprice, kLDiscount,
                           kLShipdate}),
                     Int64Between(3, lo, hi));
  Plan proj = Project(std::move(line), {ColumnRef(0), Revenue(1, 2)});
  Plan agg = Agg(std::move(proj), {0}, {{AggKind::kSum, 1}});
  return Summarize(Sort(std::move(agg), {{1, true}}, 1));
}

// Q16: parts/supplier relationship (no updated tables).
StatusOr<QueryResult> Q16(const TpchTables& t, const QueryOptions& o) {
  Plan part = Filter(Scan(o, t.part, {kPPartkey, kPBrand, kPType, kPSize}),
                     [](const Batch& b, KeepBitmap* keep) {
                       const ColumnVector& brand = b.column(1);
                       const int64_t* size = b.column(3).ints_data();
                       keep->FillFrom([&](size_t i) {
                         return brand.StringAt(i) != "Brand#45" &&
                                (size[i] == 9 || size[i] == 19 ||
                                 size[i] == 49 || size[i] == 3 ||
                                 size[i] == 36 || size[i] == 14 ||
                                 size[i] == 23 || size[i] == 45);
                       });
                     });
  Plan agg = Agg(std::move(part), {1, 3}, {{AggKind::kCount, 0}});
  return Summarize(Sort(std::move(agg), {{2, true}, {0}}));
}

// Q17: small-quantity-order revenue: lineitems below 20% of the average
// quantity of their part.
StatusOr<QueryResult> Q17(const TpchTables& t, const QueryOptions& o) {
  Plan part = Filter(Scan(o, t.part, {kPPartkey, kPBrand, kPContainer}),
                     And({StringEquals(1, "Brand#23"),
                          StringEquals(2, "MED BOX")}));
  Plan line = Scan(o, t.lineitem, {kLPartkey, kLQuantity, kLExtendedprice});
  Plan line_part = Join(std::move(line), std::move(part), {0}, {0},
                        JoinKind::kLeftSemi);
  Src drained = Finish(std::move(line_part));
  PDT_ASSIGN_OR_RETURN(Batch filtered, MaterializeAll(drained.get()));
  // Two passes: per-part average quantity, then the selective sum.
  Plan pass1 = P(std::make_unique<VectorSource>(filtered));
  Plan avg = Agg(std::move(pass1), {0}, {{AggKind::kAvg, 1}});
  Plan pass2 = P(std::make_unique<VectorSource>(filtered));
  Plan joined = Join(std::move(pass2), std::move(avg), {0}, {0});
  Plan flt = Filter(std::move(joined),
                    [](const Batch& b, KeepBitmap* keep) {
                      const double* qty = b.column(1).doubles_data();
                      const double* avg_q = b.column(4).doubles_data();
                      keep->FillFrom(
                          [&](size_t i) { return qty[i] < 0.2 * avg_q[i]; });
                    });
  return Summarize(Agg(std::move(flt), {}, {{AggKind::kSum, 2}}));
}

// Q18: large volume customers. The orders scan stays the probe side so
// the plan is one open pipeline — probe fragment straight into the
// parallel sort breaker — with the (small) large-order aggregate as the
// build side.
StatusOr<QueryResult> Q18(const TpchTables& t, const QueryOptions& o) {
  Plan line = Scan(o, t.lineitem, {kLOrderkey, kLQuantity});
  Plan per_order = Agg(std::move(line), {0}, {{AggKind::kSum, 1}});
  Plan big = Filter(std::move(per_order), DoubleInRange(1, 250.0, 1e18));
  Plan ord = Scan(o, t.orders,
                  {kOOrderkey, kOCustkey, kOOrderdate, kOTotalprice});
  Plan joined = Join(std::move(ord), std::move(big), {0}, {0});
  // Output: orders columns then (orderkey, sum_qty); totalprice is 3,
  // orderdate 2.
  return Summarize(Sort(std::move(joined), {{3, true}, {2}}, 100));
}

// Q19: discounted revenue (disjunctive part/lineitem predicates).
StatusOr<QueryResult> Q19(const TpchTables& t, const QueryOptions& o) {
  Plan line = Filter(Scan(o, t.lineitem,
                          {kLPartkey, kLQuantity, kLExtendedprice,
                           kLDiscount, kLShipmode}),
                     Or({StringEquals(4, "AIR"),
                         StringEquals(4, "REG AIR")}));
  Plan part = Scan(o, t.part, {kPPartkey, kPBrand, kPSize});
  Plan joined = Join(std::move(line), std::move(part), {0}, {0});
  Plan flt = Filter(std::move(joined),
                    [](const Batch& b, KeepBitmap* keep) {
                      const double* qty = b.column(1).doubles_data();
                      const ColumnVector& brand = b.column(6);
                      const int64_t* size = b.column(7).ints_data();
                      keep->FillFrom([&](size_t i) {
                        const std::string& bd = brand.StringAt(i);
                        bool p1 = bd == "Brand#12" && qty[i] <= 11 &&
                                  size[i] <= 5;
                        bool p2 = bd == "Brand#23" && qty[i] >= 10 &&
                                  qty[i] <= 20 && size[i] <= 10;
                        bool p3 = bd == "Brand#34" && qty[i] >= 20 &&
                                  qty[i] <= 30 && size[i] <= 15;
                        return p1 || p2 || p3;
                      });
                    });
  Plan proj = Project(std::move(flt), {Revenue(2, 3)});
  return Summarize(Agg(std::move(proj), {}, {{AggKind::kSum, 0}}));
}

// Q20: potential part promotion: suppliers with surplus stock.
StatusOr<QueryResult> Q20(const TpchTables& t, const QueryOptions& o) {
  int64_t lo = DayNumber(1994, 1, 1), hi = DayNumber(1995, 1, 1) - 1;
  // On dictionary-encoded part names the match runs once per distinct
  // entry rather than once per row.
  Plan part = Filter(Scan(o, t.part, {kPPartkey, kPName}),
                     StringMatch(1, [](const std::string& name) {
                       return name.rfind("forest", 0) == 0 ||
                              name.find("azure") != std::string::npos;
                     }));
  Plan line = Filter(Scan(o, t.lineitem,
                          {kLPartkey, kLSuppkey, kLQuantity, kLShipdate}),
                     Int64Between(3, lo, hi));
  Plan line_part = Join(std::move(line), std::move(part), {0}, {0},
                        JoinKind::kLeftSemi);
  Plan per_supp = Agg(std::move(line_part), {1}, {{AggKind::kSum, 2}});
  Plan supp = Scan(o, t.supplier, {kSSuppkey, kSNationkey});
  // Probe from the supplier scan pipeline (per-supplier sums as the
  // build side) so the ORDER BY runs through the parallel sort breaker;
  // suppkey is unique on both sides, so the join multiset is the same
  // either way.
  Plan joined = Join(std::move(supp), std::move(per_supp), {0}, {0});
  return Summarize(Sort(std::move(joined), {{0}}));
}

// Q21: suppliers who kept orders waiting.
StatusOr<QueryResult> Q21(const TpchTables& t, const QueryOptions& o) {
  Plan ord = Filter(Scan(o, t.orders, {kOOrderkey, kOOrderstatus}),
                    StringEquals(1, "F"));
  Plan line = Filter(Scan(o, t.lineitem,
                          {kLOrderkey, kLSuppkey, kLCommitdate,
                           kLReceiptdate}),
                     [](const Batch& b, KeepBitmap* keep) {
                       const int64_t* commit = b.column(2).ints_data();
                       const int64_t* receipt = b.column(3).ints_data();
                       keep->FillFrom(
                           [&](size_t i) { return receipt[i] > commit[i]; });
                     });
  Plan joined = Join(std::move(line), std::move(ord), {0}, {0},
                     JoinKind::kLeftSemi);
  Plan agg = Agg(std::move(joined), {1}, {{AggKind::kCount, 0}});
  return Summarize(Sort(std::move(agg), {{1, true}, {0}}, 100));
}

// Q22: global sales opportunity: well-off customers without orders.
StatusOr<QueryResult> Q22(const TpchTables& t, const QueryOptions& o) {
  Plan cust = Filter(Scan(o, t.customer,
                          {kCCustkey, kCNationkey, kCAcctbal}),
                     DoubleInRange(2, 0.0, 1e18));
  Plan ord = Scan(o, t.orders, {kOCustkey});
  Plan anti = Join(std::move(cust), std::move(ord), {0}, {0},
                   JoinKind::kLeftAnti);
  Plan agg = Agg(std::move(anti), {1},
                 {{AggKind::kCount, 0}, {AggKind::kSum, 2}});
  return Summarize(Sort(std::move(agg), {{0}}));
}

}  // namespace

bool QueryTouchesUpdatedTables(int q) {
  return q != 2 && q != 11 && q != 16;
}

StatusOr<QueryResult> RunTpchQuery(int q, const TpchTables& tables,
                                   const QueryOptions& opts) {
  switch (q) {
    case 1:
      return Q1(tables, opts);
    case 2:
      return Q2(tables, opts);
    case 3:
      return Q3(tables, opts);
    case 4:
      return Q4(tables, opts);
    case 5:
      return Q5(tables, opts);
    case 6:
      return Q6(tables, opts);
    case 7:
      return Q7(tables, opts);
    case 8:
      return Q8(tables, opts);
    case 9:
      return Q9(tables, opts);
    case 10:
      return Q10(tables, opts);
    case 11:
      return Q11(tables, opts);
    case 12:
      return Q12(tables, opts);
    case 13:
      return Q13(tables, opts);
    case 14:
      return Q14(tables, opts);
    case 15:
      return Q15(tables, opts);
    case 16:
      return Q16(tables, opts);
    case 17:
      return Q17(tables, opts);
    case 18:
      return Q18(tables, opts);
    case 19:
      return Q19(tables, opts);
    case 20:
      return Q20(tables, opts);
    case 21:
      return Q21(tables, opts);
    case 22:
      return Q22(tables, opts);
    default:
      return Status::InvalidArgument("unknown TPC-H query number");
  }
}

}  // namespace tpch
}  // namespace pdtstore

// Durability-layer tests: CRC32C vectors, the fault-injecting file
// system's crash model, manifest / table-image framing, and the
// Database Open/Save/reopen protocol — including WAL replay without a
// checkpoint, group commit under concurrency, rename-crash atomicity
// and the read-only degrade path.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "db/checkpoint.h"
#include "db/database.h"
#include "test_util.h"
#include "util/crc32c.h"
#include "util/file.h"

namespace pdtstore {
namespace {

using testutil::AllColumns;
using testutil::InventoryRows;
using testutil::InventorySchema;

// A fresh, empty directory under the test temp root.
std::string FreshDir(const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(path);
  return path;
}

std::vector<Tuple> TableRows(Table* table) {
  auto src = table->Scan(AllColumns(table->schema()));
  auto rows = CollectRows(src.get());
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  return rows.ok() ? *rows : std::vector<Tuple>{};
}

// Commits one insert through the table's transaction manager.
Status CommitInsert(Database* db, const std::string& table,
                    const Tuple& tuple) {
  PDT_ASSIGN_OR_RETURN(TxnManager * mgr, db->Txn(table));
  auto txn = mgr->Begin();
  PDT_RETURN_NOT_OK(txn->Insert(tuple));
  return txn->Commit();
}

// ---------------------------------------------------------------------
// CRC32C.
// ---------------------------------------------------------------------

TEST(Crc32cTest, MatchesKnownVectors) {
  // The standard check value for CRC32C ("123456789").
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  // 32 zero bytes (the iSCSI test vector).
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Crc32cTest, ExtendIsChunkingInvariant) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t cut : {size_t{1}, size_t{7}, size_t{8}, size_t{13}}) {
    uint32_t crc = Crc32cExtend(0, data.data(), cut);
    crc = Crc32cExtend(crc, data.data() + cut, data.size() - cut);
    EXPECT_EQ(crc, whole) << "cut at " << cut;
  }
}

// ---------------------------------------------------------------------
// Fault injection.
// ---------------------------------------------------------------------

TEST(FaultInjectingFsTest, UnsyncedBytesAreNotDurable) {
  std::string dir = FreshDir("fi_unsynced");
  FaultInjectingFs fs(FileSystem::Default());
  ASSERT_TRUE(fs.CreateDir(dir).ok());
  auto f = fs.NewWritableFile(dir + "/f", true);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Append("hello").ok());
  // Not synced: the base file system has not seen the bytes yet.
  std::string got;
  Status st = FileSystem::Default()->ReadFileToString(dir + "/f", &got);
  EXPECT_TRUE(!st.ok() || got.empty());
  ASSERT_TRUE((*f)->Sync().ok());
  ASSERT_TRUE(FileSystem::Default()->ReadFileToString(dir + "/f", &got).ok());
  EXPECT_EQ(got, "hello");
  EXPECT_EQ(fs.bytes_persisted(), 5u);
}

TEST(FaultInjectingFsTest, CrashAfterBytesTearsTheWrite) {
  std::string dir = FreshDir("fi_torn");
  FaultInjectingFs fs(FileSystem::Default());
  ASSERT_TRUE(fs.CreateDir(dir).ok());
  auto f = fs.NewWritableFile(dir + "/f", true);
  ASSERT_TRUE(f.ok());
  // Pin the new file's directory entry; otherwise the crash legitimately
  // loses the whole file, not just the torn suffix.
  ASSERT_TRUE(fs.SyncDir(dir).ok());
  ASSERT_TRUE((*f)->Append("0123456789").ok());
  fs.ScheduleCrashAfterBytes(4);
  EXPECT_FALSE((*f)->Sync().ok());
  EXPECT_TRUE(fs.crashed());
  // Exactly the 4-byte prefix survived the power cut.
  std::string got;
  ASSERT_TRUE(FileSystem::Default()->ReadFileToString(dir + "/f", &got).ok());
  EXPECT_EQ(got, "0123");
  // The dead machine refuses everything.
  EXPECT_FALSE((*f)->Append("more").ok());
  EXPECT_FALSE(fs.NewWritableFile(dir + "/g", true).ok());
  EXPECT_FALSE(fs.RenameFile(dir + "/f", dir + "/g").ok());
}

TEST(FaultInjectingFsTest, FailNextSyncDropsPendingBytesWithoutCrashing) {
  std::string dir = FreshDir("fi_failsync");
  FaultInjectingFs fs(FileSystem::Default());
  ASSERT_TRUE(fs.CreateDir(dir).ok());
  auto f = fs.NewWritableFile(dir + "/f", true);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Append("lost").ok());
  fs.FailNextSync();
  EXPECT_FALSE((*f)->Sync().ok());
  EXPECT_FALSE(fs.crashed());  // an I/O error, not a power cut
  // The dropped page cache never reaches disk; later writes still work.
  ASSERT_TRUE((*f)->Append("kept").ok());
  ASSERT_TRUE((*f)->Sync().ok());
  std::string got;
  ASSERT_TRUE(FileSystem::Default()->ReadFileToString(dir + "/f", &got).ok());
  EXPECT_EQ(got, "kept");
}

TEST(FaultInjectingFsTest, RenameCrashBeforeLeavesTargetUntouched) {
  std::string dir = FreshDir("fi_ren_before");
  FaultInjectingFs fs(FileSystem::Default());
  ASSERT_TRUE(fs.CreateDir(dir).ok());
  auto write = [&](const std::string& p, const std::string& s) {
    auto f = fs.NewWritableFile(p, true);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append(s).ok());
    ASSERT_TRUE((*f)->Sync().ok());
    ASSERT_TRUE((*f)->Close().ok());
  };
  write(dir + "/old", "old");
  write(dir + "/new", "new");
  ASSERT_TRUE(fs.SyncDir(dir).ok());  // setup entries are durable
  fs.ScheduleCrashAtRename(1, RenameCrash::kBefore);
  EXPECT_FALSE(fs.RenameFile(dir + "/new", dir + "/old").ok());
  EXPECT_TRUE(fs.crashed());
  std::string got;
  ASSERT_TRUE(
      FileSystem::Default()->ReadFileToString(dir + "/old", &got).ok());
  EXPECT_EQ(got, "old");
}

TEST(FaultInjectingFsTest, RenameCrashAfterAppliesTheRenameFirst) {
  std::string dir = FreshDir("fi_ren_after");
  FaultInjectingFs fs(FileSystem::Default());
  ASSERT_TRUE(fs.CreateDir(dir).ok());
  auto write = [&](const std::string& p, const std::string& s) {
    auto f = fs.NewWritableFile(p, true);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append(s).ok());
    ASSERT_TRUE((*f)->Sync().ok());
    ASSERT_TRUE((*f)->Close().ok());
  };
  write(dir + "/old", "old");
  write(dir + "/new", "new");
  ASSERT_TRUE(fs.SyncDir(dir).ok());  // setup entries are durable
  fs.ScheduleCrashAtRename(1, RenameCrash::kAfter);
  // The caller never learns the rename happened — the classic
  // committed-but-unacknowledged window.
  EXPECT_FALSE(fs.RenameFile(dir + "/new", dir + "/old").ok());
  std::string got;
  ASSERT_TRUE(
      FileSystem::Default()->ReadFileToString(dir + "/old", &got).ok());
  EXPECT_EQ(got, "new");
}

TEST(FaultInjectingFsTest, UnsyncedDirectoryEntriesAreLostAtCrash) {
  std::string dir = FreshDir("fi_direntry");
  FaultInjectingFs fs(FileSystem::Default());
  ASSERT_TRUE(fs.CreateDir(dir).ok());
  auto write = [&](const std::string& p, const std::string& s) {
    auto f = fs.NewWritableFile(p, true);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append(s).ok());
    ASSERT_TRUE((*f)->Sync().ok());
    ASSERT_TRUE((*f)->Close().ok());
  };
  // "kept" gets its directory entry fsynced; "lost" only gets a file
  // fsync, which persists bytes + inode but not the entry naming them.
  write(dir + "/kept", "kept");
  ASSERT_TRUE(fs.SyncDir(dir).ok());
  write(dir + "/lost", "lost");
  // Power cut mid-write elsewhere: every unsynced directory op rolls
  // back with it.
  auto f = fs.NewWritableFile(dir + "/probe", true);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Append("xy").ok());
  fs.ScheduleCrashAfterBytes(1);
  EXPECT_FALSE((*f)->Sync().ok());
  EXPECT_TRUE(fs.crashed());
  std::string got;
  EXPECT_TRUE(
      FileSystem::Default()->ReadFileToString(dir + "/kept", &got).ok());
  EXPECT_EQ(got, "kept");
  auto lost = FileSystem::Default()->FileExists(dir + "/lost");
  ASSERT_TRUE(lost.ok());
  EXPECT_FALSE(*lost);
  auto probe = FileSystem::Default()->FileExists(dir + "/probe");
  ASSERT_TRUE(probe.ok());
  EXPECT_FALSE(*probe);
}

TEST(FaultInjectingFsTest, UnsyncedRenameRollsBackAtCrash) {
  std::string dir = FreshDir("fi_ren_unsynced");
  FaultInjectingFs fs(FileSystem::Default());
  ASSERT_TRUE(fs.CreateDir(dir).ok());
  auto write = [&](const std::string& p, const std::string& s) {
    auto f = fs.NewWritableFile(p, true);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append(s).ok());
    ASSERT_TRUE((*f)->Sync().ok());
    ASSERT_TRUE((*f)->Close().ok());
  };
  write(dir + "/src", "new");
  write(dir + "/dst", "old");
  ASSERT_TRUE(fs.SyncDir(dir).ok());
  // The rename succeeds but its directory entry is never fsynced: a
  // crash reverts it, resurrecting the replaced target. This is exactly
  // the failure a manifest commit without SyncDir would hit.
  ASSERT_TRUE(fs.RenameFile(dir + "/src", dir + "/dst").ok());
  auto f = fs.NewWritableFile(dir + "/probe", true);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Append("xy").ok());
  fs.ScheduleCrashAfterBytes(1);
  EXPECT_FALSE((*f)->Sync().ok());
  std::string got;
  ASSERT_TRUE(
      FileSystem::Default()->ReadFileToString(dir + "/dst", &got).ok());
  EXPECT_EQ(got, "old");
  ASSERT_TRUE(
      FileSystem::Default()->ReadFileToString(dir + "/src", &got).ok());
  EXPECT_EQ(got, "new");
}

TEST(FaultInjectingFsTest, SyncDirMakesRenameCrashDurable) {
  std::string dir = FreshDir("fi_dirsync_ren");
  FaultInjectingFs fs(FileSystem::Default());
  ASSERT_TRUE(fs.CreateDir(dir).ok());
  auto f = fs.NewWritableFile(dir + "/a", true);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Append("payload").ok());
  ASSERT_TRUE((*f)->Sync().ok());
  ASSERT_TRUE((*f)->Close().ok());
  ASSERT_TRUE(fs.RenameFile(dir + "/a", dir + "/b").ok());
  ASSERT_TRUE(fs.SyncDir(dir).ok());
  // Crash after the SyncDir: both the creation and the rename stick.
  auto g = fs.NewWritableFile(dir + "/probe", true);
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE((*g)->Append("xy").ok());
  fs.ScheduleCrashAfterBytes(1);
  EXPECT_FALSE((*g)->Sync().ok());
  std::string got;
  EXPECT_TRUE(
      FileSystem::Default()->ReadFileToString(dir + "/b", &got).ok());
  EXPECT_EQ(got, "payload");
  auto a = FileSystem::Default()->FileExists(dir + "/a");
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(*a);
}

// ---------------------------------------------------------------------
// Manifest and table images.
// ---------------------------------------------------------------------

TEST(ManifestTest, RoundtripsAllFields) {
  std::string dir = FreshDir("manifest_rt");
  FileSystem* fs = FileSystem::Default();
  ASSERT_TRUE(fs->CreateDir(dir).ok());
  Manifest m;
  m.epoch = 42;
  m.wal_file = "wal.000042";
  ManifestTable t;
  t.name = "inventory";
  t.backend = DeltaBackend::kPdt;
  t.columns = InventorySchema()->columns();
  t.sort_key = {0, 1};
  t.chunk_rows = 4096;
  t.compression = false;
  t.image_file = "inventory.img.000042";
  t.row_count = 99;
  m.tables.push_back(t);
  ASSERT_TRUE(WriteManifest(fs, dir, m).ok());
  auto got = ReadManifest(fs, dir);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->epoch, 42u);
  EXPECT_EQ(got->wal_file, "wal.000042");
  ASSERT_EQ(got->tables.size(), 1u);
  EXPECT_EQ(got->tables[0].name, "inventory");
  EXPECT_EQ(got->tables[0].columns.size(), 4u);
  EXPECT_EQ(got->tables[0].sort_key, (std::vector<ColumnId>{0, 1}));
  EXPECT_EQ(got->tables[0].chunk_rows, 4096u);
  EXPECT_FALSE(got->tables[0].compression);
  EXPECT_EQ(got->tables[0].image_file, "inventory.img.000042");
  EXPECT_EQ(got->tables[0].row_count, 99u);
}

TEST(ManifestTest, MissingIsNotFoundCorruptIsCorruption) {
  std::string dir = FreshDir("manifest_bad");
  FileSystem* fs = FileSystem::Default();
  ASSERT_TRUE(fs->CreateDir(dir).ok());
  EXPECT_EQ(ReadManifest(fs, dir).status().code(), StatusCode::kNotFound);

  Manifest m;
  m.wal_file = "wal.000000";
  ASSERT_TRUE(WriteManifest(fs, dir, m).ok());
  std::string path = dir + "/" + kManifestFileName;
  std::string data;
  ASSERT_TRUE(fs->ReadFileToString(path, &data).ok());
  data[data.size() / 2] ^= 0x10;
  auto f = fs->NewWritableFile(path, true);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Append(data).ok());
  ASSERT_TRUE((*f)->Close().ok());
  EXPECT_EQ(ReadManifest(fs, dir).status().code(), StatusCode::kCorruption);
}

TEST(ManifestTest, TableImageRoundtripsAndDetectsCorruption) {
  std::string dir = FreshDir("image_rt");
  FileSystem* fs = FileSystem::Default();
  ASSERT_TRUE(fs->CreateDir(dir).ok());
  Table table("inventory", InventorySchema(), TableOptions{});
  ASSERT_TRUE(table.Load(InventoryRows()).ok());
  std::string path = dir + "/inventory.img";
  ASSERT_TRUE(SaveTableImage(fs, path, table).ok());

  Table loaded("inventory", InventorySchema(), TableOptions{});
  ASSERT_TRUE(LoadTableImage(fs, path, &loaded).ok());
  EXPECT_EQ(TableRows(&loaded), InventoryRows());

  std::string data;
  ASSERT_TRUE(fs->ReadFileToString(path, &data).ok());
  data[data.size() - 2] ^= 0x04;
  auto f = fs->NewWritableFile(path, true);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Append(data).ok());
  ASSERT_TRUE((*f)->Close().ok());
  Table corrupt("inventory", InventorySchema(), TableOptions{});
  EXPECT_EQ(LoadTableImage(fs, path, &corrupt).code(),
            StatusCode::kCorruption);
}

// ---------------------------------------------------------------------
// Database open / save / recover.
// ---------------------------------------------------------------------

TEST(DatabaseDurabilityTest, SaveAndReopenRestoresTables) {
  std::string dir = FreshDir("db_save");
  {
    auto db = Database::Open(dir);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    auto table = (*db)->CreateTable("inventory", InventorySchema());
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE((*table)->Load(InventoryRows()).ok());
    ASSERT_TRUE(
        CommitInsert(db->get(), "inventory", {"Berlin", "cloth", "Y", 5})
            .ok());
    ASSERT_TRUE((*db)->Save().ok());
  }
  auto db = Database::Open(dir);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_FALSE((*db)->read_only());
  auto table = (*db)->GetTable("inventory");
  ASSERT_TRUE(table.ok());
  auto rows = TableRows(*table);
  EXPECT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows.front()[0], Value("Berlin"));
  // The checkpoint absorbed the log: nothing left to replay.
  EXPECT_EQ((*db)->wal()->RecordCount(), 0u);
}

TEST(DatabaseDurabilityTest, ReopenWithoutSaveReplaysTheWal) {
  std::string dir = FreshDir("db_replay");
  {
    auto db = Database::Open(dir);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    auto table = (*db)->CreateTable("inventory", InventorySchema());
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE((*db)->Save().ok());  // checkpoint the empty table
    ASSERT_TRUE(
        CommitInsert(db->get(), "inventory", {"Oslo", "bench", "N", 1})
            .ok());
    ASSERT_TRUE(
        CommitInsert(db->get(), "inventory", {"Bergen", "rack", "Y", 3})
            .ok());
    // No Save: the commits exist only as fsynced WAL frames.
  }
  auto db = Database::Open(dir);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_FALSE((*db)->read_only()) << (*db)->recovery_status().ToString();
  auto table = (*db)->GetTable("inventory");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(TableRows(*table).size(), 2u);
  // And committing after recovery appends to the same segment.
  ASSERT_TRUE(
      CommitInsert(db->get(), "inventory", {"Tromso", "bin", "N", 2}).ok());
}

TEST(DatabaseDurabilityTest, WalReplayAcrossMultipleTables) {
  std::string dir = FreshDir("db_multitable");
  auto orders_schema = [] {
    auto s = Schema::Make({{"id", TypeId::kInt64}, {"sku", TypeId::kString}},
                          {0});
    return std::make_shared<const Schema>(std::move(*s));
  }();
  {
    auto db = Database::Open(dir);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateTable("inventory", InventorySchema()).ok());
    ASSERT_TRUE((*db)->CreateTable("orders", orders_schema).ok());
    // Both tables commit into ONE shared log, no checkpoint.
    ASSERT_TRUE(
        CommitInsert(db->get(), "inventory", {"Oslo", "bench", "N", 1})
            .ok());
    ASSERT_TRUE(
        CommitInsert(db->get(), "orders", {int64_t{1}, std::string("sku-9")})
            .ok());
    ASSERT_TRUE(
        CommitInsert(db->get(), "inventory", {"Bergen", "rack", "Y", 3})
            .ok());
  }
  auto db = Database::Open(dir);
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE((*db)->read_only()) << (*db)->recovery_status().ToString();
  auto inv = (*db)->GetTable("inventory");
  auto ord = (*db)->GetTable("orders");
  ASSERT_TRUE(inv.ok());
  ASSERT_TRUE(ord.ok());
  EXPECT_EQ(TableRows(*inv).size(), 2u);
  auto orows = TableRows(*ord);
  ASSERT_EQ(orows.size(), 1u);
  EXPECT_EQ(orows[0][1], Value("sku-9"));
}

TEST(DatabaseDurabilityTest, TornWalTailLosesOnlyTheTornCommit) {
  std::string dir = FreshDir("db_torn");
  std::string wal_path;
  {
    auto db = Database::Open(dir);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateTable("inventory", InventorySchema()).ok());
    ASSERT_TRUE(
        CommitInsert(db->get(), "inventory", {"Oslo", "bench", "N", 1})
            .ok());
    ASSERT_TRUE(
        CommitInsert(db->get(), "inventory", {"Bergen", "rack", "Y", 3})
            .ok());
    wal_path = dir + "/wal.000000";
  }
  // Tear the last frame (the second commit marker) as a crash would.
  std::string data;
  ASSERT_TRUE(
      FileSystem::Default()->ReadFileToString(wal_path, &data).ok());
  ASSERT_TRUE(FileSystem::Default()
                  ->TruncateFile(wal_path, data.size() - 3)
                  .ok());
  auto db = Database::Open(dir);
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE((*db)->read_only()) << (*db)->recovery_status().ToString();
  auto table = (*db)->GetTable("inventory");
  ASSERT_TRUE(table.ok());
  // The first commit survived; the torn second one is gone entirely.
  auto rows = TableRows(*table);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value("Oslo"));
}

TEST(DatabaseDurabilityTest, MidLogWalCorruptionDegradesToReadOnly) {
  std::string dir = FreshDir("db_midlog");
  {
    auto db = Database::Open(dir);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateTable("inventory", InventorySchema()).ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(CommitInsert(db->get(), "inventory",
                               {"S" + std::to_string(i), "p", "N", i})
                      .ok());
    }
  }
  std::string wal_path = dir + "/wal.000000";
  std::string data;
  ASSERT_TRUE(
      FileSystem::Default()->ReadFileToString(wal_path, &data).ok());
  data[20] ^= 0x02;  // first frame's payload — far from the tail
  auto f = FileSystem::Default()->NewWritableFile(wal_path, true);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Append(data).ok());
  ASSERT_TRUE((*f)->Close().ok());

  auto db = Database::Open(dir);
  ASSERT_TRUE(db.ok());  // open succeeds, but degraded
  EXPECT_TRUE((*db)->read_only());
  EXPECT_EQ((*db)->recovery_status().code(), StatusCode::kCorruption);
  // Every mutating entry point surfaces the degrade.
  EXPECT_FALSE((*db)->Txn("inventory").ok());
  EXPECT_FALSE((*db)->CreateTable("other", InventorySchema()).ok());
  EXPECT_FALSE((*db)->Save().ok());
  auto table = (*db)->GetTable("inventory");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->Insert({"X", "y", "N", 0}).code(),
            StatusCode::kInvalidArgument);
}

TEST(DatabaseDurabilityTest, CorruptImageDegradesToReadOnly) {
  std::string dir = FreshDir("db_badimage");
  std::string image;
  {
    auto db = Database::Open(dir);
    ASSERT_TRUE(db.ok());
    auto table = (*db)->CreateTable("inventory", InventorySchema());
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE((*table)->Load(InventoryRows()).ok());
    ASSERT_TRUE((*db)->Save().ok());
    image = dir + "/inventory.img.000001";
  }
  std::string data;
  ASSERT_TRUE(FileSystem::Default()->ReadFileToString(image, &data).ok());
  data[data.size() / 2] ^= 0x08;
  auto f = FileSystem::Default()->NewWritableFile(image, true);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Append(data).ok());
  ASSERT_TRUE((*f)->Close().ok());

  auto db = Database::Open(dir);
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE((*db)->read_only());
  EXPECT_EQ((*db)->recovery_status().code(), StatusCode::kCorruption);
}

TEST(DatabaseDurabilityTest, CrashBeforeManifestRenameKeepsOldCheckpoint) {
  std::string dir = FreshDir("db_ren_before");
  FaultInjectingFs fs(FileSystem::Default());
  DatabaseOptions opts;
  opts.fs = &fs;
  {
    auto db = Database::Open(dir, opts);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    auto table = (*db)->CreateTable("inventory", InventorySchema());
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE(
        CommitInsert(db->get(), "inventory", {"Oslo", "bench", "N", 1})
            .ok());
    // Kill the machine at the manifest commit rename inside Save. (The
    // image and manifest writes are renames too: the manifest's is the
    // second rename of this Save.)
    fs.ScheduleCrashAtRename(2, RenameCrash::kBefore);
    EXPECT_FALSE((*db)->Save().ok());
    EXPECT_TRUE(fs.crashed());
  }
  // Restart: the old manifest + old WAL are still the database.
  auto db = Database::Open(dir);
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE((*db)->read_only()) << (*db)->recovery_status().ToString();
  auto table = (*db)->GetTable("inventory");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(TableRows(*table).size(), 1u);
}

TEST(DatabaseDurabilityTest, CrashAfterManifestRenameKeepsNewCheckpoint) {
  std::string dir = FreshDir("db_ren_after");
  FaultInjectingFs fs(FileSystem::Default());
  DatabaseOptions opts;
  opts.fs = &fs;
  {
    auto db = Database::Open(dir, opts);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    auto table = (*db)->CreateTable("inventory", InventorySchema());
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE(
        CommitInsert(db->get(), "inventory", {"Oslo", "bench", "N", 1})
            .ok());
    fs.ScheduleCrashAtRename(2, RenameCrash::kAfter);
    // Save reports failure (the machine died before it could return),
    // but the manifest rename — the commit point — already happened.
    EXPECT_FALSE((*db)->Save().ok());
  }
  auto db = Database::Open(dir);
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE((*db)->read_only()) << (*db)->recovery_status().ToString();
  auto table = (*db)->GetTable("inventory");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(TableRows(*table).size(), 1u);
}

TEST(DatabaseDurabilityTest, FsyncFailurePoisonsLaterCommits) {
  std::string dir = FreshDir("db_failsync");
  FaultInjectingFs fs(FileSystem::Default());
  DatabaseOptions opts;
  opts.fs = &fs;
  opts.txn_defaults.group_commit = false;  // deterministic: sync in commit
  auto db = Database::Open(dir, opts);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->CreateTable("inventory", InventorySchema()).ok());
  auto mgr = (*db)->Txn("inventory");
  ASSERT_TRUE(mgr.ok());

  fs.FailNextSync();
  auto txn = (*mgr)->Begin();
  ASSERT_TRUE(txn->Insert({"Oslo", "bench", "N", 1}).ok());
  Status st = txn->Commit();
  EXPECT_FALSE(st.ok());
  // The failed-durability state is sticky: the manager cannot promise
  // anything about the log anymore.
  EXPECT_FALSE((*mgr)->wal_status().ok());
  auto txn2 = (*mgr)->Begin();
  ASSERT_TRUE(txn2->Insert({"Bergen", "rack", "Y", 3}).ok());
  EXPECT_FALSE(txn2->Commit().ok());
}

TEST(DatabaseDurabilityTest, GroupCommitAcknowledgedCommitsSurviveReopen) {
  std::string dir = FreshDir("db_group");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  {
    DatabaseOptions opts;
    opts.txn_defaults.group_commit = true;
    auto db = Database::Open(dir, opts);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateTable("inventory", InventorySchema()).ok());
    auto mgr = (*db)->Txn("inventory");
    ASSERT_TRUE(mgr.ok());
    std::vector<std::thread> threads;
    std::atomic<int> committed{0};
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          auto txn = (*mgr)->Begin();
          Status st = txn->Insert(
              {"T" + std::to_string(t), "p" + std::to_string(i), "N", i});
          if (st.ok()) st = txn->Commit();
          ASSERT_TRUE(st.ok()) << st.ToString();
          committed.fetch_add(1);
        }
      });
    }
    for (auto& th : threads) th.join();
    ASSERT_EQ(committed.load(), kThreads * kPerThread);
    // Disjoint keys: every commit must have succeeded and been synced.
    EXPECT_EQ((*mgr)->committed_count(),
              static_cast<uint64_t>(kThreads * kPerThread));
  }
  auto db = Database::Open(dir);
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE((*db)->read_only()) << (*db)->recovery_status().ToString();
  auto table = (*db)->GetTable("inventory");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(TableRows(*table).size(),
            static_cast<size_t>(kThreads * kPerThread));
}

TEST(DatabaseDurabilityTest, MissingWalNamedByManifestIsCorruption) {
  std::string dir = FreshDir("db_missing_wal");
  std::string wal_file;
  {
    auto db = Database::Open(dir);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE((*db)->CreateTable("inventory", InventorySchema()).ok());
    ASSERT_TRUE((*db)->Save().ok());  // epoch 1: Save created the WAL
    ASSERT_TRUE(
        CommitInsert(db->get(), "inventory", {"Oslo", "bench", "N", 1})
            .ok());
  }
  // Simulate lost directory state: the manifest survived but the WAL
  // segment it names did not. Treating that as an empty log would
  // silently drop the committed insert.
  auto m = ReadManifest(FileSystem::Default(), dir);
  ASSERT_TRUE(m.ok());
  ASSERT_GT(m->epoch, 0u);
  ASSERT_TRUE(
      FileSystem::Default()->DeleteFile(dir + "/" + m->wal_file).ok());
  auto db = Database::Open(dir);
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE((*db)->read_only());
  EXPECT_EQ((*db)->recovery_status().code(), StatusCode::kCorruption)
      << (*db)->recovery_status().ToString();
}

TEST(DatabaseDurabilityTest, SaveAfterFsyncFailureRestoresDurability) {
  std::string dir = FreshDir("db_save_after_failsync");
  FaultInjectingFs fs(FileSystem::Default());
  DatabaseOptions opts;
  opts.fs = &fs;
  opts.txn_defaults.group_commit = true;
  {
    auto db = Database::Open(dir, opts);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE((*db)->CreateTable("inventory", InventorySchema()).ok());
    ASSERT_TRUE(
        CommitInsert(db->get(), "inventory", {"Oslo", "bench", "N", 1})
            .ok());
    // Group commit applies the transaction in memory under the commit
    // lock and syncs afterwards: a failed fsync loses only the ack.
    fs.FailNextSync();
    EXPECT_FALSE(
        CommitInsert(db->get(), "inventory", {"Bergen", "rack", "Y", 3})
            .ok());
    auto mgr = (*db)->Txn("inventory");
    ASSERT_TRUE(mgr.ok());
    EXPECT_FALSE((*mgr)->wal_status().ok());  // log is poisoned
    // Save must still be possible: it writes fresh files and its
    // manifest rename re-establishes durability for everything applied,
    // including the unacknowledged commit (the "ack lost" case).
    ASSERT_TRUE((*db)->Save().ok());
    EXPECT_TRUE((*mgr)->wal_status().ok());
    // And the fresh segment accepts new commits again.
    ASSERT_TRUE(
        CommitInsert(db->get(), "inventory", {"Tromso", "bin", "N", 2})
            .ok());
  }
  auto db = Database::Open(dir);
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE((*db)->read_only()) << (*db)->recovery_status().ToString();
  auto table = (*db)->GetTable("inventory");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(TableRows(*table).size(), 3u);
}

TEST(WalSyncToTest, StaleOffsetAfterTruncateReturnsOkInsteadOfSpinning) {
  std::string dir = FreshDir("wal_stale_syncto");
  FileSystem* fs = FileSystem::Default();
  ASSERT_TRUE(fs->CreateDir(dir).ok());
  auto writer = WalWriter::Open(fs, dir + "/wal", true);
  ASSERT_TRUE(writer.ok());
  Wal wal;
  wal.SetWriter(writer->get());
  wal.LogBegin(1);
  wal.LogCommit(1);
  const uint64_t upto = wal.SizeBytes();
  ASSERT_GT(upto, 0u);
  // A checkpoint absorbed the log and truncated it while a committer
  // still held this offset. The records are durable via the checkpoint:
  // SyncTo must acknowledge, not busy-wait for bytes that will never
  // exist again.
  wal.Truncate();
  EXPECT_TRUE(wal.SyncTo(upto).ok());
  // A fresh append still flushes through the writer normally.
  wal.LogBegin(2);
  wal.LogCommit(2);
  EXPECT_TRUE(wal.SyncTo(wal.SizeBytes()).ok());
}

TEST(DatabaseDurabilityTest, FreshDirectoryIsImmediatelyReopenable) {
  std::string dir = FreshDir("db_fresh");
  {
    auto db = Database::Open(dir);
    ASSERT_TRUE(db.ok());
    // No tables, no commits: just the root pointer.
  }
  auto db = Database::Open(dir);
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE((*db)->read_only());
  EXPECT_TRUE((*db)->TableNames().empty());
}

}  // namespace
}  // namespace pdtstore

// Sorting: the serial materializing SortNode (with optional LIMIT /
// top-k) plus the pieces of the parallel sort path (exec/pipeline.h's
// IntoSortBuild breaker): SortedRun — one worker's key-ordered run with
// the source-order sequence tags that make ties deterministic — and
// RunMerger, a k-way loser-tree merge over such runs.
//
// Stability contract: the serial SortNode is a stable sort over its
// input sequence. The parallel path reproduces exactly that order by
// tagging every row with a 64-bit sequence number derived from (morsel
// index, row within morsel) — the serial scan order, since morsels
// partition the scan in SID order — sorting each per-worker run by
// (keys, seq), and breaking merge ties by seq. Key-equal rows therefore
// come out in serial scan order no matter which worker carried them.
#ifndef PDTSTORE_EXEC_SORT_H_
#define PDTSTORE_EXEC_SORT_H_

#include <memory>
#include <vector>

#include "columnstore/batch.h"
#include "util/mem_budget.h"

namespace pdtstore {

/// One sort key: column index + direction.
struct SortKey {
  size_t idx;
  bool descending = false;
};

/// Compares row `a` of `ab` with row `b` of `bb` under `keys`;
/// 0 on full key equality.
int CompareRowsByKeys(const std::vector<SortKey>& keys, const Batch& ab,
                      size_t a, const Batch& bb, size_t b);

/// One sorted run of the parallel sort: rows already ordered by
/// (keys, seq), where seq[i] is row i's source-order tag
/// ((morsel_index << kSeqMorselShift) | row-within-morsel). Tags are
/// globally unique, so (keys, seq) is a strict total order.
struct SortedRun {
  Batch rows;
  std::vector<uint64_t> seq;
};

/// Row-within-morsel bits of a sequence tag; a morsel would need more
/// than 2^40 output rows (far beyond in-memory batch limits) to
/// overflow into the morsel-index bits.
constexpr int kSeqMorselShift = 40;

/// K-way merge of SortedRuns with a loser tree: each pop costs one
/// leaf-to-root replay (log2 K comparisons) instead of a K-wide scan.
/// Ties are impossible at the tree (seq is unique), so the merge is
/// deterministic: it emits exactly the sequence a serial stable sort of
/// the concatenated source would. Consecutive winners from one run are
/// appended as a range (one TypeId dispatch), not row-at-a-time.
class RunMerger {
 public:
  /// `limit` == 0 means unlimited; otherwise at most `limit` rows are
  /// emitted in total. Empty runs are dropped on entry.
  RunMerger(std::vector<SortedRun> runs, std::vector<SortKey> keys,
            size_t limit = 0);

  /// Appends up to `max_rows` merged rows into `*out` (reset to the run
  /// layout). Returns false at end of stream.
  bool Next(Batch* out, size_t max_rows);

 private:
  // True if run a's current row orders strictly before run b's.
  // Exhausted runs (and the kSentinel pseudo-run) order last.
  bool RunLess(size_t a, size_t b) const;
  // Replays the path from run r's leaf to the root, updating losers and
  // winner_.
  void Adjust(size_t r);

  static constexpr size_t kSentinel = static_cast<size_t>(-1);

  std::vector<SortedRun> runs_;
  std::vector<SortKey> keys_;
  size_t limit_;
  size_t emitted_ = 0;
  std::vector<size_t> cursor_;  // per run: next row to emit
  std::vector<size_t> tree_;    // internal nodes: loser run index
  size_t winner_ = kSentinel;
};

/// Materializing sort with optional limit (0 = unlimited). Stable: rows
/// with equal keys keep their input order. Emits by gathering slices of
/// the sorted order directly from the materialized input — no second
/// full-size sorted copy, and the pull loop reuses the output batch's
/// storage (Batch::ResetLike).
class SortNode : public BatchSource {
 public:
  SortNode(std::unique_ptr<BatchSource> input, std::vector<SortKey> keys,
           size_t limit = 0)
      : input_(std::move(input)), keys_(std::move(keys)), limit_(limit) {}

  StatusOr<bool> Next(Batch* out, size_t max_rows) override;

 private:
  std::unique_ptr<BatchSource> input_;
  std::vector<SortKey> keys_;
  size_t limit_;
  bool built_ = false;
  // Memory-budget charge for the materialized input, captured from the
  // query context at construction (query thread) and released when the
  // node dies — error paths included.
  BudgetLease lease_{CurrentBudget()};
  Batch all_;         // materialized input; emitted via gathers
  SelVector order_;   // sorted (limit-truncated) row order
  SelVector slice_;   // per-pull gather scratch (reused)
  size_t pos_ = 0;    // emit cursor into order_
};

}  // namespace pdtstore

#endif  // PDTSTORE_EXEC_SORT_H_

// MergeScan (Algorithm 2), block-oriented: a stable-table scan merged with
// one or more stacked PDT layers. Because differences are positional, the
// merge never touches sort-key values — the scan only reads the projected
// columns, which is the PDT's headline I/O advantage over value-based
// merging (Sec. 2, "Merging: PDT vs VDT").
#ifndef PDTSTORE_PDT_MERGE_SCAN_H_
#define PDTSTORE_PDT_MERGE_SCAN_H_

#include <memory>
#include <vector>

#include "columnstore/batch.h"
#include "pdt/pdt.h"
#include "storage/column_store.h"
#include "storage/sparse_index.h"

namespace pdtstore {

/// Scans the stable table's projected columns over the given SID ranges
/// (empty = full table), emitting batches whose start_rid is the SID of
/// the first row. The input side of every merge stack.
class StableScanSource : public BatchSource {
 public:
  /// `projection` must be non-empty; `ranges` must be ascending and
  /// disjoint (as produced by SparseIndex::LookupRange).
  StableScanSource(const ColumnStore* store, std::vector<ColumnId> projection,
                   std::vector<SidRange> ranges = {});

  StatusOr<bool> Next(Batch* out, size_t max_rows) override;

 private:
  const ColumnStore* store_;
  std::vector<ColumnId> projection_;
  std::vector<SidRange> ranges_;
  Batch proto_;  // output layout, reused via ResetLike
  size_t range_idx_ = 0;
  Sid cur_sid_ = 0;
  bool started_ = false;
};

/// Applies one PDT layer to an input stream whose row positions (batch
/// start_rid + offset) are in the PDT's SID domain. Emits rows with RIDs
/// in the PDT's RID domain. The fast path passes whole runs of unmodified
/// rows through by counting down to the next update position ("skip"),
/// never comparing values.
///
/// Range-scan semantics: on a gap in the input positions the entry cursor
/// re-seeks; trailing inserts (entries at the end-of-input position) are
/// emitted when the input is exhausted, which for restricted scans yields
/// a conservative superset exactly like zone-map pruning does — query
/// predicates filter on top.
///
/// Morsel semantics (parallel scans): `start_pos` positions the entry
/// cursor at an arbitrary input-domain offset up front (SeekSid), so a
/// source over morsel [lo, hi) starts correctly even when the input
/// yields no rows at all (every stable row of the morsel deleted by a
/// lower layer). `emit_trailing_inserts` is false on every morsel but
/// the scan's last one: entries at a morsel's end position are exactly
/// the entries at the next morsel's start position, which that morsel
/// emits as leading inserts — together the morsels partition the merged
/// output with no duplicate and no loss.
class PdtMergeSource : public BatchSource {
 public:
  PdtMergeSource(std::unique_ptr<BatchSource> input, const Pdt* pdt,
                 std::vector<ColumnId> projection, Sid start_pos = 0,
                 bool emit_trailing_inserts = true);

  StatusOr<bool> Next(Batch* out, size_t max_rows) override;

 private:
  // Ensures buf_ has an unconsumed row, pulling from the input; returns
  // false when the input is exhausted.
  StatusOr<bool> FillInput(size_t max_rows);
  // Consumes the run of consecutive INS entries at the current position
  // (up to the batch budget) and gathers their tuples column-wise.
  void EmitInsertRun(Batch* out, size_t max_rows);

  std::unique_ptr<BatchSource> input_;
  const Pdt* pdt_;
  std::vector<ColumnId> projection_;
  Batch proto_;  // output layout, reused via ResetLike
  SelVector insert_offsets_;  // scratch reused across insert runs
  Batch buf_;
  size_t buf_off_ = 0;
  Rid in_pos_ = 0;     // input-domain position of buf_[buf_off_]
  bool input_done_ = false;
  // Set by FillInput on an input RID discontinuity (zone-pruned gap):
  // the batch being assembled must flush before the post-gap rows, so
  // this layer's output RIDs stay contiguous within every batch.
  bool input_jumped_ = false;
  bool emit_trailing_inserts_ = true;
  Pdt::Cursor cursor_;
};

/// Builds the full stack: stable scan + one PdtMergeSource per layer,
/// bottom-up (layers[0] is the lowest / oldest, e.g. Read-PDT; the last is
/// e.g. the Trans-PDT). Null layers are skipped.
std::unique_ptr<BatchSource> MakeMergeScan(
    const ColumnStore& store, std::vector<const Pdt*> layers,
    std::vector<ColumnId> projection, std::vector<SidRange> ranges = {});

/// Builds the stack restricted to one morsel [morsel.begin, morsel.end)
/// of the stable SID domain. Each layer's cursor start position is the
/// lower layer's output position at the morsel boundary (derived via
/// SeekSid prefix deltas), so stacked layers stay aligned even when the
/// morsel emits no stable rows. `final_morsel` marks the scan's last
/// morsel, the only one that emits trailing inserts (see PdtMergeSource).
/// Concatenating the outputs of all morsels of a scan in SID order equals
/// the unrestricted MakeMergeScan output over the same ranges.
std::unique_ptr<BatchSource> MakeMorselMergeScan(
    const ColumnStore& store, const std::vector<const Pdt*>& layers,
    const std::vector<ColumnId>& projection, SidRange morsel,
    bool final_morsel);

}  // namespace pdtstore

#endif  // PDTSTORE_PDT_MERGE_SCAN_H_

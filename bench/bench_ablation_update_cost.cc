// Ablation: update-side cost — PDT vs VDT application throughput and
// checkpoint cost. The paper's claim is that PDTs allow "quick on-line
// updates"; this quantifies the write path that Figures 16-19 exercise
// implicitly: SK-addressed insert/delete/modify throughput against both
// delta structures, plus the cost of folding the delta back into a fresh
// stable image (checkpoint).
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace pdtstore {
namespace bench {
namespace {

void BM_UpdateApply(benchmark::State& state) {
  const bool use_pdt = state.range(0) == 0;
  const uint64_t rows = static_cast<uint64_t>(state.range(1));
  SyntheticSpec spec;
  spec.rows = rows;
  spec.backend = use_pdt ? DeltaBackend::kPdt : DeltaBackend::kVdt;
  auto updates = MakeUpdates(spec, 2000, 31);
  for (auto _ : state) {
    state.PauseTiming();
    auto table = BuildSynthetic(spec);
    state.ResumeTiming();
    ApplyUpdates(table.get(), updates);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
  state.SetLabel(use_pdt ? "PDT" : "VDT");
}
BENCHMARK(BM_UpdateApply)
    ->ArgsProduct({{0, 1}, {100000, 500000}})
    ->Unit(benchmark::kMillisecond);

void BM_Checkpoint(benchmark::State& state) {
  const bool use_pdt = state.range(0) == 0;
  SyntheticSpec spec;
  spec.rows = static_cast<uint64_t>(state.range(1));
  spec.backend = use_pdt ? DeltaBackend::kPdt : DeltaBackend::kVdt;
  auto updates = MakeUpdates(spec, spec.rows / 100, 37);
  for (auto _ : state) {
    state.PauseTiming();
    auto table = BuildSynthetic(spec);
    ApplyUpdates(table.get(), updates);
    state.ResumeTiming();
    Status st = table->Checkpoint();
    benchmark::DoNotOptimize(st);
  }
  state.SetLabel(use_pdt ? "PDT" : "VDT");
}
BENCHMARK(BM_Checkpoint)
    ->ArgsProduct({{0, 1}, {100000, 500000}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace pdtstore

BENCHMARK_MAIN();

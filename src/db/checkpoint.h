// Checkpoint policy (Sec. 2, "Checkpointing"): detect when the delta
// exceeds a threshold and rebuild the stable image. The policy is
// deliberately the paper's "simplest one"; the mechanism lives in
// Table::Checkpoint().
//
// This header also defines the durable checkpoint artifacts:
//
//   MANIFEST     — the database's root pointer: one checksummed file
//                  naming the current epoch, the live WAL segment and
//                  every table's schema + stable image file. Written
//                  temp-file-then-rename, so a crash leaves either the
//                  old or the new manifest, never a torn one. Whatever
//                  the MANIFEST points at IS the database.
//   table images — one checksummed file per table holding the encoded
//                  stable columns, also written temp-then-rename.
//
// The checkpoint protocol (Database::Save) orders writes so the WAL is
// only truncated after the manifest rename commits the new images.
#ifndef PDTSTORE_DB_CHECKPOINT_H_
#define PDTSTORE_DB_CHECKPOINT_H_

#include <string>
#include <vector>

#include "db/table.h"
#include "util/file.h"

namespace pdtstore {

/// Threshold-based checkpoint trigger.
struct CheckpointPolicy {
  /// Checkpoint when the delta's heap footprint exceeds this (0 = never).
  size_t max_delta_bytes = 64 << 20;
  /// ...or when it buffers this many updates (0 = never).
  size_t max_delta_updates = 1 << 20;
  /// ...or when the delta exceeds this fraction of the stable row count
  /// (0 = disabled).
  double max_delta_fraction = 0.0;
};

/// True if `table`'s delta has outgrown the policy.
bool ShouldCheckpoint(const Table& table, const CheckpointPolicy& policy);

/// Checkpoints if the policy says so; returns whether it did.
StatusOr<bool> MaybeCheckpoint(Table* table, const CheckpointPolicy& policy);

// ---------------------------------------------------------------------
// Durable checkpoint artifacts.
// ---------------------------------------------------------------------

/// One table's entry in the manifest: enough to recreate the Table
/// object and find its stable image.
struct ManifestTable {
  std::string name;
  DeltaBackend backend = DeltaBackend::kPdt;
  std::vector<ColumnDef> columns;
  std::vector<ColumnId> sort_key;
  uint64_t chunk_rows = 0;
  bool compression = true;
  std::string image_file;  ///< relative to the db dir; "" = empty table
  uint64_t row_count = 0;  ///< stable rows in the image (sanity check)
};

/// The database root pointer.
struct Manifest {
  uint64_t epoch = 0;       ///< bumped by every Save
  std::string wal_file;     ///< live WAL segment, relative to the db dir
  std::vector<ManifestTable> tables;
};

/// Name of the manifest file inside a database directory.
inline const char* kManifestFileName = "MANIFEST";

/// Writes `contents` to `path` atomically: temp file, Sync, rename.
Status WriteFileAtomic(FileSystem* fs, const std::string& path,
                       const std::string& contents);

/// Serializes + writes the manifest atomically into `dir`.
Status WriteManifest(FileSystem* fs, const std::string& dir,
                     const Manifest& m);

/// Reads and validates `dir`'s manifest. Corruption (bad magic or
/// checksum) is reported as Corruption; a missing file as NotFound.
StatusOr<Manifest> ReadManifest(FileSystem* fs, const std::string& dir);

/// Writes `table`'s *stable* image (encoded columns + checksum) to
/// `path` atomically. The caller must have checkpointed first: any
/// buffered delta is NOT part of the image.
Status SaveTableImage(FileSystem* fs, const std::string& path,
                      const Table& table);

/// Loads an image written by SaveTableImage into a freshly created
/// (unloaded) table. Corruption is reported as Corruption.
Status LoadTableImage(FileSystem* fs, const std::string& path, Table* table);

}  // namespace pdtstore

#endif  // PDTSTORE_DB_CHECKPOINT_H_

// Shared helpers for the test suite: quick schema/table construction and a
// row-store reference model that updates are mirrored into, so merged
// output can be compared against ground truth.
#ifndef PDTSTORE_TESTS_TEST_UTIL_H_
#define PDTSTORE_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <memory>
#include <vector>

#include "columnstore/batch.h"
#include "columnstore/schema.h"
#include "pdt/merge_scan.h"
#include "pdt/pdt.h"
#include "storage/column_store.h"

namespace pdtstore {
namespace testutil {

/// The paper's running-example schema: inventory(store, prod, new, qty)
/// with SK (store, prod) — Figure 1.
inline std::shared_ptr<const Schema> InventorySchema() {
  auto schema = Schema::Make({{"store", TypeId::kString},
                              {"prod", TypeId::kString},
                              {"new", TypeId::kString},
                              {"qty", TypeId::kInt64}},
                             {0, 1});
  return std::make_shared<const Schema>(std::move(*schema));
}

/// Figure 1's TABLE0 rows.
inline std::vector<Tuple> InventoryRows() {
  return {
      {"London", "chair", "N", 30},
      {"London", "stool", "N", 10},
      {"London", "table", "N", 20},
      {"Paris", "rug", "N", 1},
      {"Paris", "stool", "N", 5},
  };
}

/// Builds a loaded ColumnStore from rows.
inline std::unique_ptr<ColumnStore> BuildStore(
    std::shared_ptr<const Schema> schema, const std::vector<Tuple>& rows,
    ColumnStoreOptions options = {}) {
  auto store = std::make_unique<ColumnStore>(*schema, options,
                                             std::make_shared<BufferPool>());
  Status st = store->BulkLoad(rows);
  if (!st.ok()) return nullptr;
  return store;
}

/// All column ids of a schema.
inline std::vector<ColumnId> AllColumns(const Schema& schema) {
  std::vector<ColumnId> cols(schema.num_columns());
  for (ColumnId i = 0; i < cols.size(); ++i) cols[i] = i;
  return cols;
}

/// Merged image through the PDT stack, as rows.
inline std::vector<Tuple> MergedRows(const ColumnStore& store,
                                     std::vector<const Pdt*> layers,
                                     std::vector<ColumnId> projection = {},
                                     size_t batch_size = kDefaultBatchSize) {
  if (projection.empty()) projection = AllColumns(store.schema());
  auto scan = MakeMergeScan(store, std::move(layers), projection);
  auto rows = CollectRows(scan.get(), batch_size);
  return rows.ok() ? *rows : std::vector<Tuple>{};
}

/// A reference row-store image plus a PDT kept in sync through the
/// SK-based update API; used by property tests. The PDT's RID domain is
/// the model vector's index space.
class ModelTable {
 public:
  ModelTable(std::shared_ptr<const Schema> schema, std::vector<Tuple> rows,
             PdtOptions pdt_options = {})
      : schema_(schema),
        rows_(std::move(rows)),
        pdt_(std::make_unique<Pdt>(schema, pdt_options)) {}

  const std::vector<Tuple>& rows() const { return rows_; }
  Pdt* pdt() { return pdt_.get(); }
  const Schema& schema() const { return *schema_; }

  /// First RID whose row's SK is > key (== rows.size() if none).
  Rid UpperBoundRid(const std::vector<Value>& key) const {
    Rid lo = 0, hi = rows_.size();
    while (lo < hi) {
      Rid mid = (lo + hi) / 2;
      if (schema_->CompareTupleToKey(rows_[mid], key) <= 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// True if a row with exactly this SK exists; sets *rid.
  bool FindKey(const std::vector<Value>& key, Rid* rid) const {
    Rid ub = UpperBoundRid(key);
    if (ub == 0) return false;
    if (schema_->CompareTupleToKey(rows_[ub - 1], key) != 0) return false;
    *rid = ub - 1;
    return true;
  }

  Status Insert(const Tuple& tuple) {
    std::vector<Value> key = schema_->ExtractSortKey(tuple);
    Rid rid;
    if (FindKey(key, &rid)) return Status::AlreadyExists("duplicate SK");
    Rid pos = UpperBoundRid(key);
    Sid sid = pdt_->SKRidToSid(key, pos);
    PDT_RETURN_NOT_OK(pdt_->AddInsert(sid, pos, tuple));
    rows_.insert(rows_.begin() + pos, tuple);
    return Status::OK();
  }

  Status DeleteAt(Rid rid) {
    PDT_RETURN_NOT_OK(
        pdt_->AddDelete(rid, schema_->ExtractSortKey(rows_[rid])));
    rows_.erase(rows_.begin() + rid);
    return Status::OK();
  }

  Status ModifyAt(Rid rid, ColumnId col, const Value& v) {
    PDT_RETURN_NOT_OK(pdt_->AddModify(rid, col, v));
    rows_[rid][col] = v;
    return Status::OK();
  }

  size_t size() const { return rows_.size(); }

 private:
  std::shared_ptr<const Schema> schema_;
  std::vector<Tuple> rows_;
  std::unique_ptr<Pdt> pdt_;
};

}  // namespace testutil
}  // namespace pdtstore

#endif  // PDTSTORE_TESTS_TEST_UTIL_H_

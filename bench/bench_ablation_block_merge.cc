// Ablation: block-oriented vs tuple-at-a-time merging. The paper notes
// Merge "was adapted to use block-oriented pipelined processing ... in
// many cases this allows to pass through entire blocks of tuples
// unmodified". This sweep runs the same merged scan with batch sizes from
// 1 (tuple-at-a-time) to 4096 and shows the fast-path payoff.
#include <benchmark/benchmark.h>

#include "db/table.h"
#include "util/random.h"

namespace pdtstore {
namespace {

std::unique_ptr<Table> BuildTable(uint64_t rows, double update_rate) {
  auto s = Schema::Make({{"k", TypeId::kInt64},
                         {"a", TypeId::kInt64},
                         {"b", TypeId::kInt64}},
                        {0});
  auto schema = std::make_shared<const Schema>(std::move(*s));
  auto table = std::make_unique<Table>("t", schema, TableOptions{});
  std::vector<ColumnVector> cols(3, ColumnVector(TypeId::kInt64));
  for (uint64_t i = 0; i < rows; ++i) {
    cols[0].ints().push_back(static_cast<int64_t>(i) * 4);
    cols[1].ints().push_back(static_cast<int64_t>(i % 997));
    cols[2].ints().push_back(static_cast<int64_t>(i % 31));
  }
  Status st = table->LoadColumns(std::move(cols));
  if (!st.ok()) std::abort();
  Random rng(3);
  uint64_t updates =
      static_cast<uint64_t>(static_cast<double>(rows) * update_rate);
  for (uint64_t i = 0; i < updates; ++i) {
    (void)table->ModifyAt(rng.Uniform(rows), 1,
                          Value(static_cast<int64_t>(i)));
  }
  return table;
}

void BM_MergeScanBatchSize(benchmark::State& state) {
  const size_t batch_size = static_cast<size_t>(state.range(0));
  static auto table = BuildTable(500000, 0.01);
  for (auto _ : state) {
    auto src = table->Scan({1, 2});
    Batch batch;
    uint64_t rows = 0;
    while (true) {
      auto more = src->Next(&batch, batch_size);
      if (!more.ok() || !*more) break;
      rows += batch.num_rows();
    }
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_MergeScanBatchSize)
    ->Arg(1)
    ->Arg(16)
    ->Arg(128)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pdtstore

BENCHMARK_MAIN();

#include "pdt/merge_scan.h"

#include <algorithm>
#include <cassert>

namespace pdtstore {

// ---------------------------------------------------------------------
// StableScanSource.
// ---------------------------------------------------------------------

StableScanSource::StableScanSource(const ColumnStore* store,
                                   std::vector<ColumnId> projection,
                                   std::vector<SidRange> ranges)
    : store_(store),
      projection_(std::move(projection)),
      ranges_(std::move(ranges)) {
  assert(!projection_.empty() && "scan needs at least one column");
  proto_ = Batch::ForSchema(store_->schema(), projection_);
  if (ranges_.empty()) {
    ranges_.push_back(SidRange{0, store_->num_rows()});
  }
}

StatusOr<bool> StableScanSource::Next(Batch* out, size_t max_rows) {
  if (!started_) {
    started_ = true;
    cur_sid_ = ranges_.empty() ? 0 : ranges_[0].begin;
  }
  // Skip exhausted / empty ranges.
  while (range_idx_ < ranges_.size() &&
         cur_sid_ >= ranges_[range_idx_].end) {
    ++range_idx_;
    if (range_idx_ < ranges_.size()) cur_sid_ = ranges_[range_idx_].begin;
  }
  if (range_idx_ >= ranges_.size() || store_->num_rows() == 0) return false;

  const SidRange& range = ranges_[range_idx_];
  size_t ci = store_->ChunkIndexForSid(cur_sid_);
  auto [cstart, cend] = store_->ChunkSidRange(ci);
  Sid end = std::min({range.end, cend, cur_sid_ + max_rows});

  out->ResetLike(proto_);
  out->set_start_rid(cur_sid_);
  for (size_t i = 0; i < projection_.size(); ++i) {
    PDT_ASSIGN_OR_RETURN(auto data, store_->FetchChunk(projection_[i], ci));
    // Zero-copy: the batch column becomes a view over the pool's decoded
    // chunk (pinned by the shared_ptr), instead of memcpy-ing the rows
    // into per-query storage. Downstream operators that mutate the batch
    // detach via copy-on-write; pure readers never copy. Batches never
    // span chunks, so a dictionary chunk's codes stay valid batch-wide.
    out->column(i).BorrowFrom(std::move(data), cur_sid_ - cstart,
                              end - cur_sid_);
  }
  cur_sid_ = end;
  return true;
}

// ---------------------------------------------------------------------
// PdtMergeSource.
// ---------------------------------------------------------------------

PdtMergeSource::PdtMergeSource(std::unique_ptr<BatchSource> input,
                               const Pdt* pdt,
                               std::vector<ColumnId> projection,
                               Sid start_pos, bool emit_trailing_inserts)
    : input_(std::move(input)),
      pdt_(pdt),
      projection_(std::move(projection)),
      in_pos_(start_pos),
      emit_trailing_inserts_(emit_trailing_inserts) {
  // SeekSid(0) == Begin(); for morsels it skips earlier entries while
  // accumulating the global prefix delta, keeping emitted RIDs correct.
  cursor_ = pdt_->SeekSid(start_pos);
  proto_ = Batch::ForSchema(pdt_->schema(), projection_);
}

StatusOr<bool> PdtMergeSource::FillInput(size_t max_rows) {
  PDT_ASSIGN_OR_RETURN(bool more, input_->Next(&buf_, max_rows));
  buf_off_ = 0;
  if (!more) {
    buf_ = Batch();  // drop any stale rows from the previous batch
    input_done_ = true;
    return false;
  }
  if (buf_.start_rid() != in_pos_) {
    // Discontinuity (restricted scan skipped a SID range): re-seek. The
    // cursor's delta_before is the global prefix delta at the new
    // position, so emitted RIDs remain globally correct. The caller must
    // flush any rows already gathered before consuming this batch — a
    // batch's RIDs are contiguous from start_rid, so output assembled
    // across the jump would hide the gap from the next layer up.
    in_pos_ = buf_.start_rid();
    cursor_ = pdt_->SeekSid(in_pos_);
    input_jumped_ = true;
  }
  return true;
}

void PdtMergeSource::EmitInsertRun(Batch* out, size_t max_rows) {
  // Consumes the run of consecutive INS entries at the current position
  // (bounded by the batch budget) and gathers their tuples column-wise
  // from the insert space.
  insert_offsets_.clear();
  while (cursor_.Valid() && cursor_.sid() == in_pos_ &&
         cursor_.type() == kTypeIns &&
         out->num_rows() + insert_offsets_.size() < max_rows) {
    insert_offsets_.push_back(static_cast<uint32_t>(cursor_.value()));
    cursor_.Next();
  }
  const ValueSpace& vs = pdt_->value_space();
  for (size_t i = 0; i < projection_.size(); ++i) {
    out->column(i).AppendGather(vs.insert_column(projection_[i]),
                                insert_offsets_);
  }
}

StatusOr<bool> PdtMergeSource::Next(Batch* out, size_t max_rows) {
  out->ResetLike(proto_);
  bool start_set = false;
  auto set_start = [&] {
    if (!start_set) {
      out->set_start_rid(in_pos_ + cursor_.delta_before());
      start_set = true;
    }
  };

  while (out->num_rows() < max_rows) {
    if (!input_done_ && buf_off_ >= buf_.num_rows()) {
      PDT_ASSIGN_OR_RETURN(bool more, FillInput(max_rows));
      (void)more;
      if (input_jumped_) {
        input_jumped_ = false;
        // The input skipped ahead (pruned range): end this batch at the
        // gap so downstream positional consumers see the discontinuity.
        if (out->num_rows() > 0) break;
      }
    }
    const bool have_row = buf_off_ < buf_.num_rows();
    const bool have_entry = cursor_.Valid();

    if (have_row) {
      assert(!have_entry || cursor_.sid() >= in_pos_);
      const bool entry_here = have_entry && cursor_.sid() == in_pos_;
      if (entry_here && cursor_.type() == kTypeIns) {
        set_start();
        EmitInsertRun(out, max_rows);
        continue;
      }
      if (entry_here && cursor_.type() == kTypeDel) {
        // Ghost: consume the stable row without emitting it.
        ++buf_off_;
        ++in_pos_;
        cursor_.Next();
        continue;
      }
      // Bulk path: pass a whole run of stable rows through column-wise
      // (`skip` in the paper's Algorithm 2). The run may span modify
      // entries — the copied columns are patched in place afterwards
      // (typed SetFrom), so modified rows no longer break the bulk copy;
      // only INS/DEL entries truncate it.
      size_t run = std::min(buf_.num_rows() - buf_off_,
                            max_rows - out->num_rows());
      Pdt::Cursor scout = cursor_;
      while (scout.Valid() && scout.sid() < in_pos_ + run) {
        if (!IsModifyType(scout.type())) {
          run = scout.sid() - in_pos_;
          break;
        }
        scout.Next();
      }
      assert(run > 0);
      set_start();
      const size_t base = out->num_rows();
      for (size_t i = 0; i < out->num_columns(); ++i) {
        out->column(i).AppendRange(buf_.column(i), buf_off_,
                                   buf_off_ + run);
      }
      const ValueSpace& vs = pdt_->value_space();
      while (cursor_.Valid() && cursor_.sid() < in_pos_ + run) {
        const ColumnId col = static_cast<ColumnId>(cursor_.type());
        int idx = out->IndexOfColumn(col);
        if (idx >= 0) {
          out->column(idx).SetFrom(base + (cursor_.sid() - in_pos_),
                                   vs.modify_column(col), cursor_.value());
        }
        cursor_.Next();
      }
      buf_off_ += run;
      in_pos_ += run;
      continue;
    }

    if (!input_done_) continue;  // fetch more at the loop top

    // Input exhausted: emit trailing inserts at the end position — unless
    // this source covers a non-final morsel, whose end-position entries
    // belong to the following morsel (its leading inserts).
    if (emit_trailing_inserts_ && have_entry && cursor_.sid() == in_pos_ &&
        cursor_.type() == kTypeIns) {
      set_start();
      EmitInsertRun(out, max_rows);
      continue;
    }
    break;
  }
  return out->num_rows() > 0;
}

// ---------------------------------------------------------------------
// Stack assembly.
// ---------------------------------------------------------------------

std::unique_ptr<BatchSource> MakeMergeScan(const ColumnStore& store,
                                           std::vector<const Pdt*> layers,
                                           std::vector<ColumnId> projection,
                                           std::vector<SidRange> ranges) {
  std::unique_ptr<BatchSource> source = std::make_unique<StableScanSource>(
      &store, projection, std::move(ranges));
  for (const Pdt* layer : layers) {
    // An empty layer is an identity mapping: skipping it keeps the scan a
    // bare StableScanSource (borrowed, zero-copy batches) after
    // checkpoints wipe the deltas.
    if (layer == nullptr || layer->EntryCount() == 0) continue;
    source = std::make_unique<PdtMergeSource>(std::move(source), layer,
                                              projection);
  }
  return source;
}

std::unique_ptr<BatchSource> MakeMorselMergeScan(
    const ColumnStore& store, const std::vector<const Pdt*>& layers,
    const std::vector<ColumnId>& projection, SidRange morsel,
    bool final_morsel) {
  std::unique_ptr<BatchSource> source = std::make_unique<StableScanSource>(
      &store, projection, std::vector<SidRange>{morsel});
  // Each layer consumes the output positions of the layer below: the
  // morsel's start position in that domain is the stable start shifted by
  // the prefix delta of every lower layer.
  Sid start_pos = morsel.begin;
  for (const Pdt* layer : layers) {
    // Empty layer = identity mapping (prefix delta 0, no trailing
    // inserts): skip it so post-checkpoint morsels stay zero-copy.
    if (layer == nullptr || layer->EntryCount() == 0) continue;
    source = std::make_unique<PdtMergeSource>(std::move(source), layer,
                                              projection, start_pos,
                                              final_morsel);
    start_pos = static_cast<Sid>(static_cast<int64_t>(start_pos) +
                                 layer->SeekSid(start_pos).delta_before());
  }
  return source;
}

}  // namespace pdtstore

#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "util/mem_budget.h"

namespace pdtstore {

int ThreadPool::DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool& ThreadPool::Global() {
  // Function-local static: constructed on first parallel scan, drained
  // and joined during static destruction (all scans are gone by then —
  // sources are owned by query objects destroyed before exit).
  static ThreadPool pool(DefaultThreads());
  return pool;
}

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::EnqueueLocked(uint64_t token, std::function<void()> fn) {
  std::deque<std::function<void()>>& lane = lanes_[token];
  if (lane.empty()) rotation_.push_back(token);
  lane.push_back(std::move(fn));
  ++pending_;
}

std::function<void()> ThreadPool::ClaimLocked() {
  const uint64_t token = rotation_.front();
  rotation_.pop_front();
  auto it = lanes_.find(token);
  std::function<void()> task = std::move(it->second.front());
  it->second.pop_front();
  --pending_;
  if (it->second.empty()) {
    // Keep the lane map from growing one tombstone per query token.
    lanes_.erase(it);
  } else {
    // Round-robin: the lane goes to the back of the rotation, so every
    // other waiting token gets a task claimed before this one again.
    rotation_.push_back(token);
  }
  return task;
}

void ThreadPool::Submit(uint64_t token, std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    EnqueueLocked(token, std::move(fn));
  }
  work_cv_.notify_one();
}

void ThreadPool::SubmitMany(uint64_t token, size_t n,
                            const std::function<void()>& fn) {
  if (n == 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < n; ++i) EnqueueLocked(token, fn);
  }
  if (n == 1) {
    work_cv_.notify_one();
  } else {
    work_cv_.notify_all();
  }
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0 && running_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || pending_ > 0; });
      if (pending_ == 0) return;  // shutdown with nothing left to run
      task = ClaimLocked();
      ++running_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
      if (pending_ == 0 && running_ == 0) idle_cv_.notify_all();
    }
  }
}

void ParallelFor(int num_threads, size_t begin, size_t end,
                 const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  const size_t n = end - begin;
  size_t workers = num_threads <= 0
                       ? static_cast<size_t>(ThreadPool::DefaultThreads())
                       : static_cast<size_t>(num_threads);
  workers = std::min(workers, n);
  if (workers <= 1) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  // Tasks own this state by shared_ptr and check `finished` before
  // touching anything, so the caller waits only for tasks that actually
  // started — a pool saturated by other queries cannot stall the return
  // (the caller has already drained every index itself by then).
  struct Shared {
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<size_t> next;
    size_t end;
    std::function<void(size_t)> fn;
    size_t active = 0;
    bool finished = false;
  };
  auto sh = std::make_shared<Shared>();
  sh->next = begin;
  sh->end = end;
  sh->fn = fn;
  auto drain = [](Shared* s) {
    for (size_t i;
         (i = s->next.fetch_add(1, std::memory_order_relaxed)) < s->end;) {
      s->fn(i);
    }
  };
  ThreadPool::Global().SubmitMany(CurrentQueryToken(), workers - 1,
                                  [sh, drain] {
    {
      std::lock_guard<std::mutex> lock(sh->mu);
      if (sh->finished) return;
      ++sh->active;
    }
    drain(sh.get());
    std::lock_guard<std::mutex> lock(sh->mu);
    if (--sh->active == 0) sh->cv.notify_all();
  });
  // The caller participates, so the loop completes even when the global
  // pool is saturated by other queries.
  drain(sh.get());
  std::unique_lock<std::mutex> lock(sh->mu);
  sh->cv.wait(lock, [&sh] { return sh->active == 0; });
  sh->finished = true;
}

}  // namespace pdtstore

#include "exec/scan_node.h"

namespace pdtstore {

std::unique_ptr<BatchSource> TableScanNode(const Table& table,
                                           std::vector<ColumnId> projection,
                                           const KeyBounds* bounds,
                                           const ScanOptions& scan_opts,
                                           VecPredicate predicate) {
  std::unique_ptr<BatchSource> scan =
      table.Scan(std::move(projection), bounds, scan_opts);
  if (predicate == nullptr) return scan;
  return std::make_unique<FilterNode>(std::move(scan),
                                      std::move(predicate));
}

}  // namespace pdtstore

// Crash-recovery fuzzing: every seeded iteration runs a random
// transactional workload against a persistent Database on a
// fault-injecting file system, kills the "machine" at a random point (a
// torn write at an exact byte, a failed fsync, a crash around a
// checkpoint rename), then restarts on a clean file system and checks
// the commit-prefix contract:
//
//   - every acknowledged commit is visible after recovery,
//   - aborted and unacknowledged work is invisible, EXCEPT that the one
//     commit in flight at the moment of the crash may survive whole
//     (its frames reached disk before the ack could be delivered) —
//     never partially.
//
// Knobs (environment):
//   PDT_CRASH_SEED   base seed (default 20260808)
//   PDT_CRASH_ITERS  iterations (default 40; the CI batch runs 200)
//
// A failure prints the iteration's seed; rerun exactly that case with
//   PDT_CRASH_SEED=<seed> PDT_CRASH_ITERS=1 ./crash_recovery_fuzz_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "db/database.h"
#include "util/file.h"
#include "util/random.h"

namespace pdtstore {
namespace {

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

std::shared_ptr<const Schema> CrashSchema() {
  auto s = Schema::Make(
      {{"k", TypeId::kInt64}, {"v", TypeId::kInt64}, {"s", TypeId::kString}},
      {0});
  return std::make_shared<const Schema>(std::move(*s));
}

// Ground truth: key -> row. Rows are keyed by the int64 sort key.
using Model = std::map<int64_t, Tuple>;

std::vector<Tuple> ModelRows(const Model& m) {
  std::vector<Tuple> rows;
  rows.reserve(m.size());
  for (const auto& [k, row] : m) rows.push_back(row);
  return rows;
}

StatusOr<std::vector<Tuple>> ScanAll(Table* table) {
  auto src = table->Scan({0, 1, 2});
  return CollectRows(src.get());
}

// One random transaction's ops, applied both to the live txn and to
// `model` (the would-be state if this txn commits). Ops are constructed
// to be individually valid, so any failure is a real engine bug.
Status ApplyRandomTxn(Random* rng, Transaction* txn, Model* model) {
  const int ops = 1 + static_cast<int>(rng->Uniform(4));
  for (int i = 0; i < ops; ++i) {
    const double d = rng->NextDouble();
    if (d < 0.5 || model->empty()) {
      int64_t k;
      do {
        k = static_cast<int64_t>(rng->Uniform(10000));
      } while (model->count(k) > 0);
      Tuple row{k, static_cast<int64_t>(rng->Uniform(1000)),
                rng->NextString(1 + rng->Uniform(6))};
      PDT_RETURN_NOT_OK(txn->Insert(row));
      (*model)[k] = std::move(row);
    } else {
      auto it = model->begin();
      std::advance(it, rng->Uniform(model->size()));
      const int64_t k = it->first;
      if (d < 0.75) {
        PDT_RETURN_NOT_OK(txn->DeleteByKey({Value(k)}));
        model->erase(it);
      } else {
        const int64_t v = static_cast<int64_t>(rng->Uniform(1 << 20));
        PDT_RETURN_NOT_OK(txn->ModifyByKey({Value(k)}, 1, Value(v)));
        it->second[1] = v;
      }
    }
  }
  return Status::OK();
}

void RunIteration(uint64_t seed) {
  Random rng(seed);
  const std::string dir =
      ::testing::TempDir() + "/crash_fuzz_" + std::to_string(seed);
  std::filesystem::remove_all(dir);

  // --- Phase A: clean setup (real fs). A bulk-loaded, checkpointed
  // base image plus a few WAL-only commits, so recovery exercises both
  // the image-load and the replay path.
  Model acked;
  {
    auto db = Database::Open(dir);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    auto table = (*db)->CreateTable("fuzz", CrashSchema());
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    const int base = 10 + static_cast<int>(rng.Uniform(30));
    for (int i = 0; i < base; ++i) {
      Tuple row{int64_t{i * 16}, static_cast<int64_t>(rng.Uniform(1000)),
                rng.NextString(1 + rng.Uniform(5))};
      acked[i * 16] = row;
    }
    ASSERT_TRUE((*table)->Load(ModelRows(acked)).ok());
    ASSERT_TRUE((*db)->Save().ok());
    auto mgr = (*db)->Txn("fuzz");
    ASSERT_TRUE(mgr.ok());
    const int setup_txns = static_cast<int>(rng.Uniform(4));
    for (int t = 0; t < setup_txns; ++t) {
      auto txn = (*mgr)->Begin();
      Model next = acked;
      ASSERT_TRUE(ApplyRandomTxn(&rng, txn.get(), &next).ok());
      ASSERT_TRUE(txn->Commit().ok());
      acked = std::move(next);
    }
  }

  // --- Phase B: the faulty run. One fault is armed; the workload runs
  // until the machine dies (or ends unscathed, if the fault was never
  // reached — e.g. a rename crash with no Save).
  FaultInjectingFs fs(FileSystem::Default());
  const int fault_kind = static_cast<int>(rng.Uniform(3));
  switch (fault_kind) {
    case 0:
      fs.ScheduleCrashAfterBytes(1 + rng.Uniform(4000));
      break;
    case 1:
      fs.ScheduleCrashAtRename(1 + static_cast<int>(rng.Uniform(3)),
                               rng.Bernoulli(0.5) ? RenameCrash::kBefore
                                                  : RenameCrash::kAfter);
      break;
    default:
      fs.FailNextSync();
      break;
  }
  // The fault can fire while Phase B's Open replays + reattaches; a
  // degraded or failed open here just means the crash landed before any
  // new work — recovery is then checked against the Phase A state.
  Model in_flight;     // state if the crash-interrupted commit survived
  bool have_in_flight = false;
  {
    DatabaseOptions opts;
    opts.fs = &fs;
    opts.txn_defaults.group_commit = rng.Bernoulli(0.5);
    auto db = Database::Open(dir, opts);
    if (db.ok() && !(*db)->read_only()) {
      auto mgr = (*db)->Txn("fuzz");
      ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
      const int txns = 8 + static_cast<int>(rng.Uniform(25));
      for (int t = 0; t < txns && !fs.crashed(); ++t) {
        auto txn = (*mgr)->Begin();
        Model next = acked;
        if (!ApplyRandomTxn(&rng, txn.get(), &next).ok()) break;
        if (rng.Bernoulli(0.1)) {
          txn->Abort();  // aborted work must never resurface
          continue;
        }
        if (txn->Commit().ok()) {
          acked = std::move(next);
        } else {
          // The unacknowledged commit: its frames may or may not have
          // reached disk before the fault. Durability was refused, so
          // it is allowed to survive whole — or to vanish.
          in_flight = std::move(next);
          have_in_flight = true;
          break;
        }
        if (rng.Bernoulli(0.12)) {
          // A checkpoint mid-workload: its renames are fault targets.
          // All acked state is inside it, so success or failure does
          // not change the expected outcome.
          if (!(*db)->Save().ok()) break;
        }
      }
    }
  }

  // --- Phase C: restart on a pristine file system.
  auto db = Database::Open(dir);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_FALSE((*db)->read_only())
      << "recovery degraded: " << (*db)->recovery_status().ToString();
  auto table = (*db)->GetTable("fuzz");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  auto rows = ScanAll(*table);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();

  const std::vector<Tuple> want_acked = ModelRows(acked);
  if (*rows == want_acked) {
    // The acknowledged prefix, exactly.
  } else if (have_in_flight && *rows == ModelRows(in_flight)) {
    // The in-flight commit made it to disk whole before the crash.
  } else {
    FAIL() << "recovered state matches neither the acknowledged state ("
           << want_acked.size() << " rows) nor acked+in-flight; got "
           << rows->size() << " rows";
  }

  // The recovered database is live: one more commit must stick.
  auto mgr = (*db)->Txn("fuzz");
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  auto txn = (*mgr)->Begin();
  ASSERT_TRUE(txn->Insert({int64_t{-1}, int64_t{0}, std::string("post")})
                  .ok());
  ASSERT_TRUE(txn->Commit().ok());

  std::filesystem::remove_all(dir);
}

TEST(CrashRecoveryFuzz, AcknowledgedCommitsSurviveRandomCrashes) {
  const uint64_t base = EnvOr("PDT_CRASH_SEED", 20260808);
  const uint64_t iters = EnvOr("PDT_CRASH_ITERS", 40);
  for (uint64_t i = 0; i < iters; ++i) {
    const uint64_t seed = base + i;
    SCOPED_TRACE("repro: PDT_CRASH_SEED=" + std::to_string(seed) +
                 " PDT_CRASH_ITERS=1 ./crash_recovery_fuzz_test");
    RunIteration(seed);
    if (::testing::Test::HasFatalFailure() ||
        ::testing::Test::HasNonfatalFailure()) {
      return;
    }
  }
}

TEST(CrashRecoveryFuzz, MidLogCorruptionIsAlwaysReported) {
  // Not a crash shape: a bad frame with valid frames after it means the
  // storage lied, and recovery must refuse — loudly, read-only — rather
  // than silently drop committed transactions.
  const uint64_t base = EnvOr("PDT_CRASH_SEED", 20260808);
  for (uint64_t i = 0; i < 8; ++i) {
    const uint64_t seed = base ^ (0xC0FFEEULL + i);
    SCOPED_TRACE("corruption seed " + std::to_string(seed));
    Random rng(seed);
    const std::string dir =
        ::testing::TempDir() + "/crash_flip_" + std::to_string(seed);
    std::filesystem::remove_all(dir);
    {
      auto db = Database::Open(dir);
      ASSERT_TRUE(db.ok());
      ASSERT_TRUE((*db)->CreateTable("fuzz", CrashSchema()).ok());
      auto mgr = (*db)->Txn("fuzz");
      ASSERT_TRUE(mgr.ok());
      for (int t = 0; t < 6; ++t) {
        auto txn = (*mgr)->Begin();
        ASSERT_TRUE(txn->Insert({int64_t{t}, int64_t{t}, std::string("r")})
                        .ok());
        ASSERT_TRUE(txn->Commit().ok());
      }
    }
    const std::string wal_path = dir + "/wal.000000";
    std::string data;
    ASSERT_TRUE(
        FileSystem::Default()->ReadFileToString(wal_path, &data).ok());
    ASSERT_GT(data.size(), 64u);
    // Flip one bit in the first half: guaranteed to damage a frame that
    // has valid data after it (never the torn-tail shape).
    const size_t at = rng.Uniform(data.size() / 2);
    data[at] ^= static_cast<char>(1 << rng.Uniform(8));
    auto f = FileSystem::Default()->NewWritableFile(wal_path, true);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append(data).ok());
    ASSERT_TRUE((*f)->Close().ok());

    auto db = Database::Open(dir);
    ASSERT_TRUE(db.ok());
    EXPECT_TRUE((*db)->read_only());
    EXPECT_EQ((*db)->recovery_status().code(), StatusCode::kCorruption);
    std::filesystem::remove_all(dir);
  }
}

}  // namespace
}  // namespace pdtstore

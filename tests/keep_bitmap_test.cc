// KeepBitmap unit + property tests: word-boundary tails (n = 63/64/65),
// the all-ones/all-zeros fast paths, AND/OR fusion equivalence against a
// byte-wise reference, FromKeep equivalence against the byte-per-row
// reference expansion, and the fused multi-predicate filter paths
// (FilterNode conjunction, Pipeline filter fusion, And/Or combinators).
#include "columnstore/keep_bitmap.h"

#include <gtest/gtest.h>

#include <vector>

#include "columnstore/batch.h"
#include "columnstore/sel_vector.h"
#include "exec/filter.h"
#include "exec/operator.h"
#include "exec/scan_node.h"
#include "util/random.h"

namespace pdtstore {
namespace {

// Byte-wise reference model for a bitmap state.
std::vector<uint8_t> RandomBytes(size_t n, double density, Random* rng) {
  std::vector<uint8_t> bytes(n);
  for (auto& b : bytes) b = rng->Bernoulli(density) ? 1 : 0;
  return bytes;
}

KeepBitmap FromBytes(const std::vector<uint8_t>& bytes) {
  KeepBitmap bm;
  bm.Reset(bytes.size());
  for (size_t i = 0; i < bytes.size(); ++i) bm.SetTo(i, bytes[i] != 0);
  return bm;
}

void ExpectMatchesBytes(const KeepBitmap& bm,
                        const std::vector<uint8_t>& bytes) {
  ASSERT_EQ(bm.size(), bytes.size());
  size_t set = 0;
  for (size_t i = 0; i < bytes.size(); ++i) {
    EXPECT_EQ(bm.Test(i), bytes[i] != 0) << "bit " << i;
    set += bytes[i] != 0;
  }
  EXPECT_EQ(bm.CountSet(), set);
  // The tail bits past size() must be zero whatever the row bits are.
  if (bm.num_words() > 0) {
    EXPECT_EQ(bm.words()[bm.num_words() - 1] &
                  ~KeepBitmap::TailMask(bm.size()),
              0u);
  }
}

// The sizes every bitmap property is checked at: word-boundary tails
// (63/64/65), sub-word, multi-word, and empty.
const size_t kSizes[] = {0, 1, 5, 63, 64, 65, 127, 128, 129, 1000};

TEST(KeepBitmapTest, ResetAndSetAcrossWordBoundaries) {
  Random rng(101);
  for (size_t n : kSizes) {
    KeepBitmap bm;
    bm.Reset(n);
    EXPECT_EQ(bm.size(), n);
    EXPECT_EQ(bm.num_words(), (n + 63) / 64);
    EXPECT_TRUE(bm.None());
    EXPECT_EQ(bm.All(), n == 0);
    EXPECT_EQ(bm.CountSet(), 0u);

    auto bytes = RandomBytes(n, 0.5, &rng);
    KeepBitmap built = FromBytes(bytes);
    ExpectMatchesBytes(built, bytes);
  }
}

TEST(KeepBitmapTest, AllOnesAndAllZerosFastPaths) {
  for (size_t n : kSizes) {
    KeepBitmap ones;
    ones.ResetAllSet(n);
    EXPECT_TRUE(ones.All()) << n;
    EXPECT_EQ(ones.None(), n == 0) << n;
    EXPECT_EQ(ones.CountSet(), n);
    ExpectMatchesBytes(ones, std::vector<uint8_t>(n, 1));
    // FromKeep's full-word bulk append must agree with the per-bit path.
    SelVector sel = SelVector::FromKeep(ones);
    ASSERT_EQ(sel.size(), n);
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(sel[i], i);

    KeepBitmap zeros;
    zeros.Reset(n);
    EXPECT_TRUE(SelVector::FromKeep(zeros).empty());
    // One cleared bit breaks All(); one set bit breaks None().
    if (n > 0) {
      KeepBitmap almost;
      almost.ResetAllSet(n);
      almost.words()[(n - 1) >> 6] ^= uint64_t{1} << ((n - 1) & 63);
      EXPECT_FALSE(almost.All());
      EXPECT_EQ(almost.CountSet(), n - 1);
      zeros.Set(n - 1);
      EXPECT_FALSE(zeros.None());
    }
  }
}

TEST(KeepBitmapTest, FromKeepMatchesByteReference) {
  Random rng(202);
  for (size_t n : kSizes) {
    for (double density : {0.0, 0.01, 0.5, 0.99, 1.0}) {
      auto bytes = RandomBytes(n, density, &rng);
      SelVector ref = SelVector::FromKeep(bytes.data(), n);
      SelVector got = SelVector::FromKeep(FromBytes(bytes));
      ASSERT_EQ(got.indices(), ref.indices())
          << "n=" << n << " density=" << density;
    }
  }
}

TEST(KeepBitmapTest, AndOrFusionMatchesByteReference) {
  Random rng(303);
  for (size_t n : kSizes) {
    auto a = RandomBytes(n, 0.6, &rng);
    auto b = RandomBytes(n, 0.4, &rng);

    KeepBitmap conj = FromBytes(a);
    conj.And(FromBytes(b));
    std::vector<uint8_t> conj_ref(n);
    for (size_t i = 0; i < n; ++i) conj_ref[i] = a[i] & b[i];
    ExpectMatchesBytes(conj, conj_ref);

    KeepBitmap disj = FromBytes(a);
    disj.Or(FromBytes(b));
    std::vector<uint8_t> disj_ref(n);
    for (size_t i = 0; i < n; ++i) disj_ref[i] = a[i] | b[i];
    ExpectMatchesBytes(disj, disj_ref);
  }
}

TEST(KeepBitmapTest, FillFromPacksWordsAndMasksTail) {
  for (size_t n : kSizes) {
    KeepBitmap bm;
    bm.Reset(n);
    bm.FillFrom([](size_t i) { return i % 3 == 0; });
    std::vector<uint8_t> ref(n);
    for (size_t i = 0; i < n; ++i) ref[i] = i % 3 == 0;
    ExpectMatchesBytes(bm, ref);

    // A constant-true fill must produce the canonical all-set state.
    bm.Reset(n);
    bm.FillFrom([](size_t) { return true; });
    EXPECT_TRUE(bm.All()) << n;
  }
}

// --- the predicate path on top of the bitmap ---

Batch IntBatch(const std::vector<int64_t>& vals) {
  Batch b;
  ColumnVector col(TypeId::kInt64);
  col.ints() = vals;
  b.columns().push_back(std::move(col));
  b.set_column_ids({0});
  return b;
}

std::vector<int64_t> Drain(BatchSource* src) {
  std::vector<int64_t> out;
  Batch batch;
  while (true) {
    auto more = src->Next(&batch, 70);  // odd batch size: hostile tails
    EXPECT_TRUE(more.ok());
    if (!more.ok() || !*more) break;
    for (int64_t v : batch.column(0).ints()) out.push_back(v);
  }
  return out;
}

TEST(KeepBitmapTest, FilterNodeFusedConjunctionMatchesChained) {
  Random rng(404);
  std::vector<int64_t> vals(1000);
  for (auto& v : vals) v = static_cast<int64_t>(rng.Uniform(100));
  std::vector<VecPredicate> preds{Int64Between(0, 10, 80),
                                  Int64Between(0, 0, 60),
                                  Int64Between(0, 20, 99)};

  // Chained single-predicate nodes (each materializes an intermediate).
  std::unique_ptr<BatchSource> chained =
      std::make_unique<VectorSource>(IntBatch(vals));
  for (const auto& p : preds) {
    chained = std::make_unique<FilterNode>(std::move(chained), p);
  }
  // One fused node: word-wise AND, one compaction.
  FilterNode fused(std::make_unique<VectorSource>(IntBatch(vals)), preds);

  std::vector<int64_t> want;
  for (int64_t v : vals) {
    if (v >= 20 && v <= 60) want.push_back(v);
  }
  EXPECT_EQ(Drain(chained.get()), want);
  EXPECT_EQ(Drain(&fused), want);
}

TEST(KeepBitmapTest, AndOrCombinatorsOnOperators) {
  std::vector<int64_t> vals;
  for (int64_t i = 0; i < 300; ++i) vals.push_back(i);

  FilterNode conj(std::make_unique<VectorSource>(IntBatch(vals)),
                  And({Int64Between(0, 50, 250), Int64Between(0, 0, 99)}));
  std::vector<int64_t> conj_want;
  for (int64_t i = 50; i <= 99; ++i) conj_want.push_back(i);
  EXPECT_EQ(Drain(&conj), conj_want);

  FilterNode disj(std::make_unique<VectorSource>(IntBatch(vals)),
                  Or({Int64Between(0, 0, 10), Int64Between(0, 290, 299)}));
  std::vector<int64_t> disj_want;
  for (int64_t i = 0; i <= 10; ++i) disj_want.push_back(i);
  for (int64_t i = 290; i <= 299; ++i) disj_want.push_back(i);
  EXPECT_EQ(Drain(&disj), disj_want);

  // Degenerate combinators: And of one, Or that saturates (all rows
  // match the first branch — the early-exit path).
  FilterNode one(std::make_unique<VectorSource>(IntBatch(vals)),
                 And({Int64Between(0, 100, 200)}));
  std::vector<int64_t> one_want;
  for (int64_t i = 100; i <= 200; ++i) one_want.push_back(i);
  EXPECT_EQ(Drain(&one), one_want);

  FilterNode sat(std::make_unique<VectorSource>(IntBatch(vals)),
                 Or({Int64Between(0, 0, 299), Int64Between(0, 5, 6)}));
  EXPECT_EQ(Drain(&sat), vals);

  // The identity of conjunction: an empty AND (and a FilterNode with no
  // predicates) keeps every row.
  FilterNode empty_and(std::make_unique<VectorSource>(IntBatch(vals)),
                       And({}));
  EXPECT_EQ(Drain(&empty_and), vals);
  FilterNode no_preds(std::make_unique<VectorSource>(IntBatch(vals)),
                      std::vector<VecPredicate>{});
  EXPECT_EQ(Drain(&no_preds), vals);
}

TEST(KeepBitmapTest, TableScanNodePredicatePushdown) {
  auto made = Schema::Make({{"k", TypeId::kInt64}, {"v", TypeId::kInt64}},
                           {0});
  auto schema = std::make_shared<const Schema>(std::move(*made));
  Table table("t", schema, {});
  std::vector<Tuple> rows;
  for (int64_t i = 0; i < 400; ++i) rows.push_back({i, i % 10});
  ASSERT_TRUE(table.Load(rows).ok());
  // Updates so the pushed-down predicate runs over a real merge.
  ASSERT_TRUE(table.Insert({1000, int64_t{3}}).ok());
  ASSERT_TRUE(table.DeleteByKey({Value(int64_t{13})}).ok());

  auto pushed =
      TableScanNode(table, {0, 1}, nullptr, {}, Int64Between(1, 3, 3));
  auto got = CollectRows(pushed.get());
  ASSERT_TRUE(got.ok());

  auto plain = TableScanNode(table, {0, 1});
  auto all = CollectRows(plain.get());
  ASSERT_TRUE(all.ok());
  std::vector<Tuple> want;
  for (const Tuple& t : *all) {
    if (t[1].AsInt64() == 3) want.push_back(t);
  }
  EXPECT_EQ(*got, want);
  EXPECT_FALSE(want.empty());
}

TEST(KeepBitmapTest, FilterNodeAllAndNoneFastPaths) {
  std::vector<int64_t> vals;
  for (int64_t i = 0; i < 500; ++i) vals.push_back(i);

  // Everything survives: the swap fast path must still deliver all rows.
  FilterNode all(std::make_unique<VectorSource>(IntBatch(vals)),
                 Int64Between(0, -1, 1000));
  EXPECT_EQ(Drain(&all), vals);

  // Nothing survives: Next() must report end-of-stream, not spin.
  FilterNode none(std::make_unique<VectorSource>(IntBatch(vals)),
                  Int64Between(0, 1000, 2000));
  EXPECT_TRUE(Drain(&none).empty());
}

}  // namespace
}  // namespace pdtstore

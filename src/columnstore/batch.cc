#include "columnstore/batch.h"

#include <cassert>

namespace pdtstore {

Batch Batch::ForSchema(const Schema& schema,
                       const std::vector<ColumnId>& projection) {
  Batch b;
  if (projection.empty()) {
    b.column_ids_.resize(schema.num_columns());
    for (ColumnId i = 0; i < schema.num_columns(); ++i) {
      b.column_ids_[i] = i;
      b.columns_.emplace_back(schema.column(i).type);
    }
  } else {
    b.column_ids_ = projection;
    for (ColumnId cid : projection) {
      b.columns_.emplace_back(schema.column(cid).type);
    }
  }
  return b;
}

int Batch::IndexOfColumn(ColumnId cid) const {
  for (size_t i = 0; i < column_ids_.size(); ++i) {
    if (column_ids_[i] == cid) return static_cast<int>(i);
  }
  return -1;
}

void Batch::Clear() {
  for (auto& c : columns_) c.Clear();
}

void Batch::ResetLike(const Batch& like) {
  bool match = columns_.size() == like.columns_.size();
  for (size_t c = 0; match && c < columns_.size(); ++c) {
    match = columns_[c].type() == like.columns_[c].type();
  }
  if (match) {
    for (auto& col : columns_) col.Clear();
  } else {
    columns_.clear();
    columns_.reserve(like.columns_.size());
    for (const auto& col : like.columns_) {
      columns_.emplace_back(col.type());
    }
  }
  column_ids_ = like.column_ids_;
  start_rid_ = 0;
}

Tuple Batch::RowAsTuple(size_t i) const {
  Tuple t;
  t.reserve(columns_.size());
  for (const auto& c : columns_) t.push_back(c.GetValue(i));
  return t;
}

void Batch::AppendRow(const Batch& other, size_t i) {
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].AppendFrom(other.columns_[c], i);
  }
}

void Batch::AppendGather(const Batch& other, const SelVector& sel) {
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].AppendGather(other.columns_[c], sel);
  }
}

void Batch::AppendFiltered(const Batch& other, const KeepBitmap& keep) {
  // A stale (unReset) bitmap would gather out of bounds.
  assert(keep.size() == other.num_rows());
  // Build the selection once, then gather every column through it.
  SelVector sel = SelVector::FromKeep(keep);
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].AppendGather(other.columns_[c], sel);
  }
}

void Batch::AppendFiltered(const Batch& other, const uint8_t* keep) {
  SelVector sel = SelVector::FromKeep(keep, other.num_rows());
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].AppendGather(other.columns_[c], sel);
  }
}

StatusOr<std::vector<Tuple>> CollectRows(BatchSource* source,
                                         size_t batch_size) {
  std::vector<Tuple> rows;
  Batch batch;
  while (true) {
    PDT_ASSIGN_OR_RETURN(bool more, source->Next(&batch, batch_size));
    if (!more) break;
    for (size_t i = 0; i < batch.num_rows(); ++i) {
      rows.push_back(batch.RowAsTuple(i));
    }
  }
  return rows;
}

}  // namespace pdtstore

// Figure 16 reproduction: PDT maintenance cost as the PDT grows.
//
// The paper grows a PDT to 1M update entries and plots the per-operation
// cost of insert / modify / delete over time: all three stay in the
// microsecond range and grow logarithmically; inserts are the most
// expensive because positioning must compare sort keys (merged binary
// search + SKRidToSid).
//
// Usage: bench_fig16_pdt_maintenance [--ops=1000000] [--base-rows=1000000]
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"

namespace pdtstore {
namespace bench {
namespace {

void RunSeries(const char* label, uint64_t base_rows, uint64_t ops,
               BenchUpdate::Kind kind) {
  SyntheticSpec spec;
  spec.rows = base_rows;
  spec.key_gap = 8;  // room for many inserts between existing keys
  auto table = BuildSynthetic(spec);
  Random rng(17);

  std::printf("# %s\n", label);
  std::printf("%-12s %-18s %-14s\n", "pdt_entries", "cost_per_op_us",
              "pdt_mem_mb");
  const uint64_t window = std::max<uint64_t>(1, ops / 20);
  Stopwatch sw;
  uint64_t done = 0;
  while (done < ops) {
    sw.Reset();
    for (uint64_t i = 0; i < window; ++i) {
      switch (kind) {
        case BenchUpdate::kInsert: {
          int64_t raw =
              static_cast<int64_t>(rng.Uniform(spec.rows)) * spec.key_gap +
              1 + static_cast<int64_t>(rng.Uniform(spec.key_gap - 1));
          std::vector<Value> key = MakeKey(spec, raw);
          Tuple t(key.begin(), key.end());
          for (int c = 0; c < spec.payload_cols; ++c) t.emplace_back(int64_t{1});
          (void)table->Insert(t);
          break;
        }
        case BenchUpdate::kModify: {
          Rid rid = rng.Uniform(table->RowCount());
          (void)table->ModifyAt(
              rid, static_cast<ColumnId>(spec.key_cols),
              Value(static_cast<int64_t>(rng.Next() & 0xffff)));
          break;
        }
        case BenchUpdate::kDelete: {
          Rid rid = rng.Uniform(table->RowCount());
          (void)table->DeleteAt(rid);
          break;
        }
      }
    }
    done += window;
    double us_per_op = sw.ElapsedMicros() / static_cast<double>(window);
    std::printf("%-12zu %-18.3f %-14.2f\n", table->pdt()->EntryCount(),
                us_per_op,
                static_cast<double>(table->pdt()->MemoryBytes()) / 1e6);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace pdtstore

int main(int argc, char** argv) {
  using namespace pdtstore::bench;
  uint64_t ops = std::strtoull(
      FlagValue(argc, argv, "ops", "1000000").c_str(), nullptr, 10);
  uint64_t base = std::strtoull(
      FlagValue(argc, argv, "base-rows", "1000000").c_str(), nullptr, 10);
  std::printf(
      "=== Figure 16: PDT update performance over time "
      "(base=%zu rows, %zu ops per series) ===\n\n",
      static_cast<size_t>(base), static_cast<size_t>(ops));
  RunSeries("insert", base, ops, pdtstore::bench::BenchUpdate::kInsert);
  RunSeries("modify", base, ops, pdtstore::bench::BenchUpdate::kModify);
  RunSeries("delete", base, ops, pdtstore::bench::BenchUpdate::kDelete);
  std::printf(
      "Expectation (paper): logarithmic growth, sub-3us costs, inserts "
      "costlier than modifies/deletes (SK comparisons).\n");
  return 0;
}

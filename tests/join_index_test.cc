// Join-index tests (the paper's future-work extension): positional FK
// lookups must stay correct while both fact and dimension tables absorb
// PDT updates that shift every position — including a randomized
// equivalence check against a value-based join.
#include "db/join_index.h"

#include <gtest/gtest.h>

#include "pdt/pdt.h"
#include "util/random.h"

namespace pdtstore {
namespace {

std::shared_ptr<const Schema> FactSchema() {
  auto s = Schema::Make({{"id", TypeId::kInt64},
                         {"dim_fk", TypeId::kInt64},
                         {"measure", TypeId::kInt64}},
                        {0});
  return std::make_shared<const Schema>(std::move(*s));
}

std::shared_ptr<const Schema> DimSchema() {
  auto s = Schema::Make(
      {{"dk", TypeId::kInt64}, {"label", TypeId::kString}}, {0});
  return std::make_shared<const Schema>(std::move(*s));
}

class JoinIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fact_ = std::make_unique<Table>("fact", FactSchema(), TableOptions{});
    dim_ = std::make_unique<Table>("dim", DimSchema(), TableOptions{});
    std::vector<Tuple> dims;
    for (int i = 0; i < 20; ++i) {
      dims.push_back({int64_t{i * 10}, "d" + std::to_string(i)});
    }
    ASSERT_TRUE(dim_->Load(dims).ok());
    std::vector<Tuple> facts;
    for (int i = 0; i < 100; ++i) {
      facts.push_back({int64_t{i}, int64_t{(i % 20) * 10}, int64_t{i}});
    }
    ASSERT_TRUE(fact_->Load(facts).ok());
  }

  // Ground truth: value join via merged images.
  void ExpectAllJoinsCorrect(const JoinIndex& index) {
    for (Rid frid = 0; frid < fact_->RowCount(); ++frid) {
      auto fact_tuple = fact_->GetMergedTuple(frid);
      ASSERT_TRUE(fact_tuple.ok());
      Value fk = (*fact_tuple)[1];
      auto dim_rid = index.DimRidForFactRid(frid);
      auto expected = dim_->FindRidByKey({fk});
      if (expected.ok()) {
        ASSERT_TRUE(dim_rid.ok())
            << "frid " << frid << ": " << dim_rid.status().ToString();
        EXPECT_EQ(*dim_rid, *expected) << "frid " << frid;
        auto dim_tuple = dim_->GetMergedTuple(*dim_rid);
        ASSERT_TRUE(dim_tuple.ok());
        EXPECT_EQ((*dim_tuple)[0], fk);
      } else {
        EXPECT_FALSE(dim_rid.ok()) << "frid " << frid << " should dangle";
      }
    }
  }

  std::unique_ptr<Table> fact_, dim_;
};

TEST_F(JoinIndexTest, CleanTablesJoinPositionally) {
  auto index = JoinIndex::Build(fact_.get(), dim_.get(), 1);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->stable_entries(), 100u);
  ExpectAllJoinsCorrect(*index);
}

TEST_F(JoinIndexTest, DimensionInsertsShiftPositions) {
  auto index = JoinIndex::Build(fact_.get(), dim_.get(), 1);
  ASSERT_TRUE(index.ok());
  // Insert dimension rows at the front and middle: every dim RID shifts,
  // but the SID-domain index stays valid.
  ASSERT_TRUE(dim_->Insert({int64_t{-5}, "front"}).ok());
  ASSERT_TRUE(dim_->Insert({int64_t{55}, "middle"}).ok());
  ExpectAllJoinsCorrect(*index);
}

TEST_F(JoinIndexTest, DimensionDeleteDangles) {
  auto index = JoinIndex::Build(fact_.get(), dim_.get(), 1);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(dim_->DeleteByKey({Value(50)}).ok());
  int dangling = 0;
  for (Rid frid = 0; frid < fact_->RowCount(); ++frid) {
    auto r = index->DimRidForFactRid(frid);
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
      ++dangling;
    }
  }
  EXPECT_EQ(dangling, 5);  // fks 50 appear for i%20==5 -> 5 fact rows
}

TEST_F(JoinIndexTest, FactInsertsResolveByValueOnce) {
  auto index = JoinIndex::Build(fact_.get(), dim_.get(), 1);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(fact_->Insert({int64_t{1000}, int64_t{30}, int64_t{1}}).ok());
  ASSERT_TRUE(fact_->Insert({int64_t{1001}, int64_t{70}, int64_t{2}}).ok());
  ExpectAllJoinsCorrect(*index);
  EXPECT_EQ(index->delta_entries(), 2u);
  // Repeated lookups hit the memo, not the dimension search.
  ExpectAllJoinsCorrect(*index);
  EXPECT_EQ(index->delta_entries(), 2u);
}

TEST_F(JoinIndexTest, FactDeletesJustDisappear) {
  auto index = JoinIndex::Build(fact_.get(), dim_.get(), 1);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(fact_->DeleteByKey({Value(0)}).ok());
  ASSERT_TRUE(fact_->DeleteByKey({Value(50)}).ok());
  ExpectAllJoinsCorrect(*index);
}

TEST_F(JoinIndexTest, RandomizedChurnOnBothSides) {
  auto index = JoinIndex::Build(fact_.get(), dim_.get(), 1);
  ASSERT_TRUE(index.ok());
  Random rng(71);
  int64_t next_fact_id = 5000;
  int64_t next_dim_key = 1001;  // odd keys: never referenced by facts
  for (int op = 0; op < 200; ++op) {
    double d = rng.NextDouble();
    if (d < 0.3) {
      // New fact row referencing an existing dim key.
      int64_t fk = rng.Uniform(20) * 10;
      ASSERT_TRUE(
          fact_->Insert({next_fact_id++, fk, int64_t{op}}).ok());
    } else if (d < 0.5) {
      // New (unreferenced) dimension row: shifts dim positions.
      ASSERT_TRUE(
          dim_->Insert({next_dim_key, "x" + std::to_string(op)}).ok());
      next_dim_key += 2;
    } else if (d < 0.7) {
      // Delete an unreferenced dimension row if any exists.
      if (next_dim_key > 1001) {
        next_dim_key -= 2;
        ASSERT_TRUE(dim_->DeleteByKey({Value(next_dim_key)}).ok());
      }
    } else if (d < 0.85) {
      // Modify a fact measure (no positional effect on the join).
      Rid rid = rng.Uniform(fact_->RowCount());
      ASSERT_TRUE(fact_->ModifyAt(rid, 2, Value(int64_t{op})).ok());
    } else {
      // Modify a dim label.
      Rid rid = rng.Uniform(dim_->RowCount());
      ASSERT_TRUE(dim_->ModifyAt(rid, 1, Value("m")).ok());
    }
    if (op % 50 == 49) ExpectAllJoinsCorrect(*index);
  }
  ExpectAllJoinsCorrect(*index);
}

TEST(SidToRidTest, MatchesLookupRidInverse) {
  auto schema = DimSchema();
  Table table("t", schema, TableOptions{});
  std::vector<Tuple> rows;
  for (int i = 0; i < 50; ++i) {
    rows.push_back({int64_t{i * 2}, "r" + std::to_string(i)});
  }
  ASSERT_TRUE(table.Load(rows).ok());
  ASSERT_TRUE(table.Insert({int64_t{11}, "ins"}).ok());
  ASSERT_TRUE(table.DeleteByKey({Value(20)}).ok());
  ASSERT_TRUE(table.DeleteByKey({Value(22)}).ok());
  const Pdt& pdt = *table.pdt();
  for (Sid sid = 0; sid < 50; ++sid) {
    Pdt::SidLookup lk = pdt.SidToRid(sid);
    if (lk.deleted) {
      EXPECT_TRUE(sid == 10 || sid == 11);  // keys 20, 22
      continue;
    }
    // Round trip: the tuple at lk.rid must be stable tuple `sid`.
    Pdt::RidLookup back = pdt.LookupRid(lk.rid);
    EXPECT_FALSE(back.is_insert) << "sid " << sid;
    EXPECT_EQ(back.sid, sid);
  }
  // The ghost's rid equals the following visible tuple's rid.
  Pdt::SidLookup ghost = pdt.SidToRid(10);
  EXPECT_TRUE(ghost.deleted);
  Pdt::RidLookup after = pdt.LookupRid(ghost.rid);
  EXPECT_EQ(after.sid, 12u);
}

}  // namespace
}  // namespace pdtstore

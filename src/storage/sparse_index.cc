#include "storage/sparse_index.h"

#include <cassert>

namespace pdtstore {

StatusOr<SparseIndex> SparseIndex::Build(const ColumnStore& store) {
  SparseIndex index;
  index.num_rows_ = store.num_rows();
  const auto& sk = store.schema().sort_key();
  for (size_t ci = 0; ci < store.num_chunks(); ++ci) {
    auto [begin, end] = store.ChunkSidRange(ci);
    ZoneEntry entry;
    entry.start_sid = begin;
    entry.end_sid = end;
    // The table is SK-ordered, so the chunk min/max SK are simply the
    // first and last rows' keys.
    for (ColumnId col : sk) {
      PDT_ASSIGN_OR_RETURN(auto data, store.FetchChunk(col, ci));
      entry.min_key.push_back(data->GetValue(0));
      entry.max_key.push_back(data->GetValue(data->size() - 1));
    }
    index.entries_.push_back(std::move(entry));
  }
  return index;
}

int SparseIndex::ComparePrefix(const std::vector<Value>& zone_key,
                               const std::vector<Value>& bound) {
  size_t n = std::min(zone_key.size(), bound.size());
  for (size_t i = 0; i < n; ++i) {
    int c = zone_key[i].Compare(bound[i]);
    if (c != 0) return c;
  }
  return 0;  // equal on the compared prefix
}

std::vector<SidRange> SparseIndex::LookupRange(
    const std::vector<Value>& lo, const std::vector<Value>& hi) const {
  std::vector<SidRange> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) {
    bool qualifies = true;
    if (!lo.empty() && ComparePrefix(e.max_key, lo) < 0) qualifies = false;
    if (!hi.empty() && ComparePrefix(e.min_key, hi) > 0) qualifies = false;
    if (!qualifies) continue;
    if (!out.empty() && out.back().end == e.start_sid) {
      out.back().end = e.end_sid;  // coalesce adjacent chunks
    } else {
      out.push_back(SidRange{e.start_sid, e.end_sid});
    }
  }
  // The sorted/disjoint/non-empty invariant documented in the header —
  // chunk entries are ascending, so coalescing preserves it.
  for (size_t i = 0; i < out.size(); ++i) {
    assert(out[i].begin < out[i].end);
    assert(i == 0 || out[i - 1].end <= out[i].begin);
  }
  return out;
}

Sid SparseIndex::LowerBoundSid(const std::vector<Value>& key) const {
  for (const auto& e : entries_) {
    if (ComparePrefix(e.max_key, key) >= 0) return e.start_sid;
  }
  return num_rows_;
}

}  // namespace pdtstore

// Buffer pool over decoded chunks, with I/O accounting. A miss models a
// disk read of the encoded payload: it is counted in IoStats and charged
// at a configurable bandwidth so benches can report simulated "cold" I/O
// time, reproducing the cold/hot distinction of the paper's Fig. 19.
#ifndef PDTSTORE_STORAGE_BUFFER_POOL_H_
#define PDTSTORE_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "columnstore/column_vector.h"
#include "storage/chunk.h"

namespace pdtstore {

/// Snapshot of simulated disk traffic since the last ResetStats.
struct IoStats {
  uint64_t bytes_read = 0;      ///< encoded bytes pulled from "disk"
  uint64_t chunks_read = 0;     ///< number of chunk reads (seeks)
  uint64_t hits = 0;            ///< pool hits (no I/O)
  uint64_t chunks_skipped = 0;  ///< chunks zone-map-pruned, never fetched
  uint64_t bytes_skipped = 0;   ///< encoded bytes of pruned chunks

  void Reset() { *this = IoStats{}; }
};

/// LRU cache of decoded chunks keyed by an opaque 64-bit id. Fetch and
/// eviction are internally synchronized so the morsel-driven parallel
/// scan's workers can pull chunks concurrently (one lock acquisition per
/// chunk, i.e. per tens of thousands of rows — not a hot path). The
/// returned shared_ptrs keep decoded chunks alive across evictions.
///
/// I/O counters are relaxed atomics, so stats() may be sampled mid-scan
/// (benches poll it while workers fetch): each counter is individually
/// exact, and the snapshot is a consistent-enough view for accounting —
/// there is no cross-counter invariant a reader could observe torn.
class BufferPool {
 public:
  /// `capacity_bytes` bounds the decoded footprint; 0 = unbounded.
  explicit BufferPool(size_t capacity_bytes = 0)
      : capacity_bytes_(capacity_bytes) {}

  /// Returns the decoded values of `chunk`, from cache or by "reading"
  /// (miss: counts chunk.DiskBytes() into the I/O stats and decodes).
  /// With `keep_encoded`, a miss decodes to the compressed-execution
  /// representation (dictionary codes / RLE sidecar) instead of plain
  /// values; the flag must be stable per pool key (it is: it comes from
  /// per-store options baked into the key space).
  StatusOr<std::shared_ptr<const ColumnVector>> Fetch(
      uint64_t key, const Chunk& chunk, bool keep_encoded = false);

  /// Drops all cached chunks: the next scan is fully "cold".
  void EvictAll();

  /// Records `chunks` chunks (`bytes` encoded bytes) proven dead by zone
  /// maps during morsel planning and therefore never fetched.
  void NoteSkipped(uint64_t chunks, uint64_t bytes) {
    chunks_skipped_.fetch_add(chunks, std::memory_order_relaxed);
    bytes_skipped_.fetch_add(bytes, std::memory_order_relaxed);
  }

  /// Snapshot of the I/O counters (safe to call mid-scan).
  IoStats stats() const {
    IoStats s;
    s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
    s.chunks_read = chunks_read_.load(std::memory_order_relaxed);
    s.hits = hits_.load(std::memory_order_relaxed);
    s.chunks_skipped = chunks_skipped_.load(std::memory_order_relaxed);
    s.bytes_skipped = bytes_skipped_.load(std::memory_order_relaxed);
    return s;
  }
  void ResetStats() {
    bytes_read_.store(0, std::memory_order_relaxed);
    chunks_read_.store(0, std::memory_order_relaxed);
    hits_.store(0, std::memory_order_relaxed);
    chunks_skipped_.store(0, std::memory_order_relaxed);
    bytes_skipped_.store(0, std::memory_order_relaxed);
  }

  size_t cached_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cached_bytes_;
  }
  size_t cached_chunks() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

 private:
  struct Entry {
    std::shared_ptr<const ColumnVector> data;
    size_t bytes;
    std::list<uint64_t>::iterator lru_it;
  };

  void MaybeEvict();  // callers hold mu_

  mutable std::mutex mu_;
  size_t capacity_bytes_;
  size_t cached_bytes_ = 0;
  std::unordered_map<uint64_t, Entry> entries_;
  std::list<uint64_t> lru_;  // front = most recent
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> chunks_read_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> chunks_skipped_{0};
  std::atomic<uint64_t> bytes_skipped_{0};
};

}  // namespace pdtstore

#endif  // PDTSTORE_STORAGE_BUFFER_POOL_H_

// ProjectNode: computes output columns from each input batch (column
// selection, arithmetic such as extendedprice * (1 - discount), etc.).
#ifndef PDTSTORE_EXEC_PROJECT_H_
#define PDTSTORE_EXEC_PROJECT_H_

#include <functional>
#include <memory>
#include <vector>

#include "columnstore/batch.h"

namespace pdtstore {

/// Produces one output column from an input batch.
using ColumnExpr = std::function<ColumnVector(const Batch&)>;

/// Projection / computation operator.
class ProjectNode : public BatchSource {
 public:
  ProjectNode(std::unique_ptr<BatchSource> input,
              std::vector<ColumnExpr> exprs)
      : input_(std::move(input)), exprs_(std::move(exprs)) {}

  StatusOr<bool> Next(Batch* out, size_t max_rows) override;

 private:
  std::unique_ptr<BatchSource> input_;
  std::vector<ColumnExpr> exprs_;
};

// --- expression helpers ---

/// Pass input column `idx` through.
ColumnExpr ColumnRef(size_t idx);
/// doubles: col(a) * (1 - col(b))  — the TPC-H revenue expression.
ColumnExpr Revenue(size_t price_idx, size_t discount_idx);
/// doubles: col(a) * (1 - col(b)) * (1 + col(c)).
ColumnExpr Charge(size_t price_idx, size_t discount_idx, size_t tax_idx);

}  // namespace pdtstore

#endif  // PDTSTORE_EXEC_PROJECT_H_

#include "txn/txn_manager.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "txn/layered.h"

namespace pdtstore {

// ---------------------------------------------------------------------
// Transaction.
// ---------------------------------------------------------------------

Transaction::Transaction(TxnManager* mgr, uint64_t id, uint64_t start_time,
                         std::shared_ptr<const Pdt> read_snapshot,
                         std::shared_ptr<const Pdt> write_snapshot)
    : mgr_(mgr),
      id_(id),
      start_time_(start_time),
      read_(std::move(read_snapshot)),
      write_(std::move(write_snapshot)),
      trans_(std::make_unique<Pdt>(mgr->table()->shared_schema(),
                                   mgr->table()->options().pdt)) {}

Transaction::~Transaction() {
  if (!finished_) Abort();
}

std::vector<const Pdt*> Transaction::Layers() const {
  return {read_.get(), write_.get(), trans_.get()};
}

std::vector<const Pdt*> Transaction::UpdateLayers() const {
  std::vector<const Pdt*> layers = Layers();
  if (query_ != nullptr) layers.push_back(query_.get());
  return layers;
}

Pdt* Transaction::UpdateTarget() const {
  return query_ != nullptr ? query_.get() : trans_.get();
}

uint64_t Transaction::RowCount() const {
  int64_t delta = read_->TotalDelta() + write_->TotalDelta() +
                  trans_->TotalDelta();
  return static_cast<uint64_t>(
      static_cast<int64_t>(mgr_->table()->store().num_rows()) + delta);
}

uint64_t Transaction::UpdateDomainRowCount() const {
  uint64_t n = RowCount();
  if (query_ != nullptr) {
    n = static_cast<uint64_t>(static_cast<int64_t>(n) +
                              query_->TotalDelta());
  }
  return n;
}

StatusOr<std::vector<Value>> Transaction::MergedSortKey(Rid rid) const {
  return internal::LayeredSortKey(mgr_->table()->store(), UpdateLayers(), rid);
}

StatusOr<Rid> Transaction::UpperBoundRid(
    const std::vector<Value>& key) const {
  Rid lo = 0, hi = UpdateDomainRowCount();
  while (lo < hi) {
    Rid mid = lo + (hi - lo) / 2;
    PDT_ASSIGN_OR_RETURN(auto mid_key, MergedSortKey(mid));
    int cmp = 0;
    for (size_t i = 0; i < mid_key.size() && i < key.size(); ++i) {
      cmp = mid_key[i].Compare(key[i]);
      if (cmp != 0) break;
    }
    if (cmp <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

StatusOr<Rid> Transaction::FindRidByKey(
    const std::vector<Value>& key) const {
  PDT_ASSIGN_OR_RETURN(Rid ub, UpperBoundRid(key));
  if (ub == 0) return Status::NotFound("key not found");
  PDT_ASSIGN_OR_RETURN(auto prev_key, MergedSortKey(ub - 1));
  if (CompareTuples(prev_key, key) != 0) {
    return Status::NotFound("key not found");
  }
  return ub - 1;
}

Status Transaction::Insert(const Tuple& tuple) {
  if (finished_) return Status::InvalidArgument("transaction finished");
  const Schema& schema = mgr_->table()->schema();
  PDT_RETURN_NOT_OK(schema.ValidateTuple(tuple));
  std::vector<Value> key = schema.ExtractSortKey(tuple);
  auto existing = FindRidByKey(key);
  if (existing.ok()) return Status::AlreadyExists("duplicate sort key");
  if (existing.status().code() != StatusCode::kNotFound) {
    return existing.status();
  }
  PDT_ASSIGN_OR_RETURN(Rid rid, UpperBoundRid(key));
  Pdt* target = UpdateTarget();
  Sid sid = target->SKRidToSid(key, rid);
  PDT_RETURN_NOT_OK(target->AddInsert(sid, rid, tuple));
  WalRecord r;
  r.type = WalRecordType::kInsert;
  r.table = mgr_->table()->name();
  r.tuple = tuple;
  redo_.push_back(std::move(r));
  return Status::OK();
}

Status Transaction::DeleteByKey(const std::vector<Value>& key) {
  if (finished_) return Status::InvalidArgument("transaction finished");
  PDT_ASSIGN_OR_RETURN(Rid rid, FindRidByKey(key));
  PDT_RETURN_NOT_OK(UpdateTarget()->AddDelete(rid, key));
  WalRecord r;
  r.type = WalRecordType::kDelete;
  r.table = mgr_->table()->name();
  r.key = key;
  redo_.push_back(std::move(r));
  return Status::OK();
}

Status Transaction::ModifyByKey(const std::vector<Value>& key, ColumnId col,
                                const Value& v) {
  if (finished_) return Status::InvalidArgument("transaction finished");
  const Schema& schema = mgr_->table()->schema();
  if (schema.IsSortKeyColumn(col)) {
    PDT_ASSIGN_OR_RETURN(Rid rid, FindRidByKey(key));
    PDT_ASSIGN_OR_RETURN(
        Tuple t, internal::LayeredTuple(mgr_->table()->store(), UpdateLayers(), rid));
    PDT_RETURN_NOT_OK(DeleteByKey(key));
    t[col] = v;
    return Insert(t);
  }
  PDT_ASSIGN_OR_RETURN(Rid rid, FindRidByKey(key));
  PDT_RETURN_NOT_OK(UpdateTarget()->AddModify(rid, col, v));
  WalRecord r;
  r.type = WalRecordType::kModify;
  r.table = mgr_->table()->name();
  r.key = key;
  r.column = col;
  r.value = v;
  redo_.push_back(std::move(r));
  return Status::OK();
}

std::unique_ptr<BatchSource> Transaction::Scan(
    std::vector<ColumnId> projection, const KeyBounds* bounds,
    const ScanOptions& scan_opts) const {
  std::vector<SidRange> ranges;
  if (bounds != nullptr) {
    ranges = mgr_->table()->sparse_index().LookupRange(bounds->lo,
                                                       bounds->hi);
  }
  return internal::LayeredScan(mgr_->table()->store(), Layers(),
                               std::move(projection), std::move(ranges),
                               scan_opts);
}

MorselPlan Transaction::PlanMorsels(std::vector<ColumnId> projection,
                                    const KeyBounds* bounds,
                                    const ScanOptions& scan_opts) const {
  std::vector<SidRange> ranges;
  if (bounds != nullptr) {
    ranges = mgr_->table()->sparse_index().LookupRange(bounds->lo,
                                                       bounds->hi);
  }
  return internal::LayeredMorselPlan(mgr_->table()->store(), Layers(),
                                     std::move(projection),
                                     std::move(ranges), scan_opts);
}

StatusOr<Tuple> Transaction::GetByKey(const std::vector<Value>& key) const {
  // Point reads feed update logic, so they see the full update domain
  // (including an active Query-PDT); Scan() is the protected read path.
  PDT_ASSIGN_OR_RETURN(Rid rid, FindRidByKey(key));
  return internal::LayeredTuple(mgr_->table()->store(), UpdateLayers(), rid);
}

Status Transaction::BeginQueryPdt() {
  if (finished_) return Status::InvalidArgument("transaction finished");
  if (query_ != nullptr) {
    return Status::InvalidArgument("Query-PDT already active");
  }
  query_ = std::make_unique<Pdt>(mgr_->table()->shared_schema(),
                                 mgr_->table()->options().pdt);
  return Status::OK();
}

Status Transaction::EndQueryPdt() {
  if (query_ == nullptr) {
    return Status::InvalidArgument("no Query-PDT active");
  }
  // "When such a query finishes, its Query-PDT is propagated to its
  // Trans-PDT and removed." (footnote 5)
  PDT_RETURN_NOT_OK(trans_->Propagate(*query_));
  query_.reset();
  return Status::OK();
}

Status Transaction::Commit() {
  if (finished_) return Status::InvalidArgument("transaction finished");
  if (query_ != nullptr) {
    return Status::InvalidArgument(
        "finish the active Query-PDT before committing");
  }
  uint64_t durable_upto = 0;
  PDT_RETURN_NOT_OK(mgr_->CommitLocked(this, &durable_upto));
  // Group commit: wait for the WAL to reach disk outside the commit
  // lock, so concurrent committers pile into one fsync.
  if (durable_upto > 0) return mgr_->SyncWal(durable_upto);
  return Status::OK();
}

void Transaction::Abort() {
  if (finished_) return;
  std::lock_guard<std::mutex> lock(mgr_->mu_);
  mgr_->FinishLocked(this);
  ++mgr_->aborted_count_;
  if (mgr_->wal_ != nullptr) mgr_->wal_->LogAbort(id_);
}

// ---------------------------------------------------------------------
// TxnManager.
// ---------------------------------------------------------------------

TxnManager::TxnManager(Table* table, Wal* wal, TxnManagerOptions opts)
    : table_(table), wal_(wal), opts_(opts) {
  assert(table_->pdt() != nullptr &&
         "transaction management requires the PDT backend");
  write_ = std::make_unique<Pdt>(table_->shared_schema(),
                                 table_->options().pdt);
}

size_t TxnManager::active_transactions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

std::unique_ptr<Transaction> TxnManager::Begin() {
  std::lock_guard<std::mutex> lock(mu_);
  // Share the Write-PDT copy when no commit happened since it was taken
  // ("copying is not always required", Sec. 3.3).
  if (!write_snapshot_ || write_snapshot_time_ != clock_) {
    write_snapshot_ = std::shared_ptr<const Pdt>(write_->Clone().release());
    write_snapshot_time_ = clock_;
  }
  // The Read-PDT is only mutated at quiet points (no active txns), so
  // transactions can alias it without copying.
  std::shared_ptr<const Pdt> read_alias(table_->pdt(),
                                        [](const Pdt*) {});
  ++active_;
  uint64_t id = opts_.txn_id_counter != nullptr
                    ? opts_.txn_id_counter->fetch_add(1) + 1
                    : next_txn_id_++;
  return std::unique_ptr<Transaction>(
      new Transaction(this, id, clock_, std::move(read_alias),
                      write_snapshot_));
}

void TxnManager::FinishLocked(Transaction* txn) {
  // Drop references on every overlapping committed transaction.
  for (auto& z : tz_) {
    if (txn->start_time_ < z.commit_time) {
      --z.refcnt;
    }
  }
  tz_.erase(std::remove_if(tz_.begin(), tz_.end(),
                           [](const CommittedTxn& z) {
                             return z.refcnt <= 0;
                           }),
            tz_.end());
  --active_;
  txn->finished_ = true;
}

void TxnManager::SetWalWriter(WalWriter* writer) {
  std::lock_guard<std::mutex> lock(mu_);
  // The durability watermark itself lives in the (possibly shared) Wal
  // and is established by whoever loaded or truncated it (RecoverFrom,
  // Truncate, MarkAllFlushed) — resetting it here could falsely mark
  // another manager's in-flight commit durable. The writer pointer also
  // lives in the Wal (shared by every manager on this log, and kept
  // stable under in-flight flushes); writer_ here only records that
  // this manager commits durably.
  writer_ = writer;
  if (wal_ != nullptr) wal_->SetWriter(writer);
}

Status TxnManager::wal_status() const {
  return wal_ != nullptr ? wal_->health() : Status::OK();
}

Status TxnManager::SyncWal(uint64_t upto) {
  return wal_->SyncTo(upto);
}

Status TxnManager::CommitLocked(Transaction* txn, uint64_t* durable_upto) {
  std::lock_guard<std::mutex> lock(mu_);
  *durable_upto = 0;
  if (writer_ != nullptr) {
    // A manager whose WAL sink failed can no longer promise durability:
    // refuse the commit up front.
    Status health = wal_->health();
    if (!health.ok()) {
      FinishLocked(txn);
      ++aborted_count_;
      return health;
    }
  }
  // Serialize against every overlapping committed transaction, in commit
  // order (Alg. 9 lines 2-9).
  Status conflict = Status::OK();
  for (auto& z : tz_) {
    if (txn->start_time_ >= z.commit_time) continue;  // not overlapping
    if (conflict.ok()) {
      conflict = txn->trans_->SerializeAgainst(*z.pdt);
      if (!conflict.ok() && conflict.code() != StatusCode::kConflict) {
        // Internal failure, not a write-write conflict: surface as-is.
        FinishLocked(txn);
        return conflict;
      }
    }
  }
  if (!conflict.ok()) {
    FinishLocked(txn);
    ++aborted_count_;
    if (wal_ != nullptr) wal_->LogAbort(txn->id_);
    return conflict;
  }
  // Durability first: the WAL append is the commit point (footnote 2).
  if (wal_ != nullptr) {
    wal_->LogBegin(txn->id_);
    for (WalRecord& r : txn->redo_) {
      r.txn_id = txn->id_;
      wal_->Append(r);
    }
    wal_->LogCommit(txn->id_);
    if (writer_ != nullptr) {
      if (opts_.group_commit) {
        // Publish the frames now; the caller waits for durability up to
        // this offset outside the commit lock (SyncWal).
        *durable_upto = wal_->SizeBytes();
      } else {
        // Per-commit durability: flush and fsync this commit's frames
        // before acknowledging, still under the commit lock — every
        // commit pays its own fsync (the ablation baseline).
        Status st = wal_->SyncTo(wal_->SizeBytes());
        if (!st.ok()) {
          // Not durable: fail the commit without applying it in memory
          // (the WAL health is already poisoned).
          FinishLocked(txn);
          ++aborted_count_;
          return st;
        }
      }
    }
  }
  // Fold into the master Write-PDT (Alg. 9 line 12).
  Status st = write_->Propagate(*txn->trans_);
  if (!st.ok()) return st;  // invariant failure; state may be inconsistent
  ++clock_;
  ++committed_count_;
  uint64_t commit_time = clock_;
  // Release this transaction's own references first, so its freshly
  // committed Trans-PDT is not self-decremented below.
  FinishLocked(txn);
  // Keep the serialized Trans-PDT alive for the transactions that are
  // still running (they overlap this commit).
  int refs = static_cast<int>(active_);
  if (refs > 0) {
    tz_.push_back(CommittedTxn{
        std::shared_ptr<Pdt>(txn->trans_.release()), commit_time, refs});
  }
  // Opportunistic Write->Read propagation at quiet points.
  if (active_ == 0 && write_->EntryCount() > opts_.write_pdt_max_entries) {
    PDT_RETURN_NOT_OK(table_->pdt()->Propagate(*write_));
    write_->Clear();
    write_snapshot_.reset();
    write_snapshot_time_ = 0;
  }
  return Status::OK();
}

Status TxnManager::PropagateAndMaybeCheckpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_ > 0) {
    return Status::InvalidArgument(
        "cannot propagate/checkpoint with active transactions");
  }
  if (!write_->Empty()) {
    PDT_RETURN_NOT_OK(table_->pdt()->Propagate(*write_));
    write_->Clear();
    write_snapshot_.reset();
    write_snapshot_time_ = 0;
  }
  // With a durable WAL attached, in-place checkpointing here would
  // rewrite the stable image without the manifest commit protocol —
  // replaying the (still durable) log over the new image would then
  // apply every absorbed update twice. Durable checkpointing is
  // Database::Save's job; this fast path is for in-memory managers.
  if (writer_ == nullptr &&
      table_->pdt()->EntryCount() > opts_.read_pdt_max_entries) {
    PDT_RETURN_NOT_OK(table_->Checkpoint());
    if (wal_ != nullptr) {
      wal_->LogCheckpoint(table_->name());
      wal_->Truncate();
    }
  }
  return Status::OK();
}

Status TxnManager::Recover(const Wal& wal) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (&wal == wal_) {
      // Replaying a WAL through a manager that appends to that same WAL
      // would grow the log under the replay cursor.
      return Status::InvalidArgument(
          "cannot recover from the manager's own WAL");
    }
    // Recovery only makes sense into a pristine manager: a second run,
    // or a run after transaction activity, would apply updates twice.
    if (recovered_) {
      return Status::InvalidArgument("Recover already ran on this manager");
    }
    if (committed_count_ + aborted_count_ > 0 || active_ > 0 ||
        !write_->Empty() || !table_->pdt()->Empty()) {
      return Status::InvalidArgument(
          "Recover requires a pristine transaction manager");
    }
    recovered_ = true;
  }
  // Group records per transaction; apply committed ones in commit order.
  std::map<uint64_t, std::vector<WalRecord>> pending;
  Status apply_status = Status::OK();
  const std::string& my_table = table_->name();
  Status st = wal.Replay([&](const WalRecord& r) -> Status {
    switch (r.type) {
      case WalRecordType::kBegin:
        pending[r.txn_id] = {};
        break;
      case WalRecordType::kInsert:
      case WalRecordType::kDelete:
      case WalRecordType::kModify:
        // Several tables can share one log; each manager replays only
        // the records addressed to its table.
        if (r.table == my_table) pending[r.txn_id].push_back(r);
        break;
      case WalRecordType::kAbort:
        pending.erase(r.txn_id);
        break;
      case WalRecordType::kCommit: {
        auto it = pending.find(r.txn_id);
        if (it == pending.end()) break;
        if (it->second.empty()) {
          // The transaction touched only other tables.
          pending.erase(it);
          break;
        }
        auto txn = Begin();
        for (const WalRecord& op : it->second) {
          Status op_st;
          switch (op.type) {
            case WalRecordType::kInsert:
              op_st = txn->Insert(op.tuple);
              break;
            case WalRecordType::kDelete:
              op_st = txn->DeleteByKey(op.key);
              break;
            case WalRecordType::kModify:
              op_st = txn->ModifyByKey(op.key, op.column, op.value);
              break;
            default:
              break;
          }
          if (!op_st.ok()) return op_st;
        }
        PDT_RETURN_NOT_OK(txn->Commit());
        pending.erase(it);
        break;
      }
      case WalRecordType::kCheckpoint:
        break;
    }
    return Status::OK();
  });
  PDT_RETURN_NOT_OK(st);
  return apply_status;
}

}  // namespace pdtstore

// Database: a catalog of updatable tables sharing one buffer pool, plus
// global I/O accounting used by the benchmarks' cold/hot protocol.
#ifndef PDTSTORE_DB_DATABASE_H_
#define PDTSTORE_DB_DATABASE_H_

#include <map>
#include <memory>
#include <string>

#include "db/table.h"

namespace pdtstore {

/// Database-wide configuration.
struct DatabaseOptions {
  /// Decoded-chunk cache capacity; 0 = unbounded.
  size_t buffer_pool_bytes = 0;
  /// Defaults applied to tables created without explicit options.
  TableOptions table_defaults;
};

/// A small embedded column-store database.
class Database {
 public:
  explicit Database(DatabaseOptions options = {});

  /// Creates an (unloaded) table; fails on duplicate name.
  StatusOr<Table*> CreateTable(const std::string& name,
                               std::shared_ptr<const Schema> schema);
  StatusOr<Table*> CreateTable(const std::string& name,
                               std::shared_ptr<const Schema> schema,
                               TableOptions options);

  /// Looks a table up by name.
  StatusOr<Table*> GetTable(const std::string& name) const;

  /// Drops a table.
  Status DropTable(const std::string& name);

  BufferPool* buffer_pool() const { return pool_.get(); }
  const IoStats& io_stats() const { return pool_->stats(); }
  void ResetIoStats() { pool_->mutable_stats()->Reset(); }
  /// Empties the decoded-chunk cache: the next scans run "cold".
  void DropCaches() { pool_->EvictAll(); }

  const DatabaseOptions& options() const { return options_; }
  std::vector<std::string> TableNames() const;

 private:
  DatabaseOptions options_;
  std::shared_ptr<BufferPool> pool_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace pdtstore

#endif  // PDTSTORE_DB_DATABASE_H_

#include "txn/wal.h"

#include <cstring>

#include "storage/encoding.h"
#include "util/crc32c.h"

namespace pdtstore {

namespace {

// --- value codec (logical payload encoding) ---

void PutValue(std::string* out, const Value& v) {
  out->push_back(static_cast<char>(v.type()));
  switch (v.type()) {
    case TypeId::kInt64:
      PutVarint64(out, ZigZagEncode(v.AsInt64()));
      break;
    case TypeId::kDouble: {
      uint64_t bits;
      double d = v.AsDouble();
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, 8);
      PutVarint64(out, bits);
      break;
    }
    case TypeId::kString:
      PutVarint64(out, v.AsString().size());
      out->append(v.AsString());
      break;
  }
}

Status GetValue(const std::string& in, size_t* pos, Value* v) {
  if (*pos >= in.size()) return Status::Corruption("truncated WAL value");
  // Validate the tag before casting: `in[*pos]` is char, and on signed-
  // char platforms a corrupt 0x80+ byte sign-extends to a negative that
  // a blind static_cast would turn into a bogus out-of-range TypeId.
  const uint8_t tag = static_cast<uint8_t>(in[*pos]);
  if (tag > static_cast<uint8_t>(TypeId::kString)) {
    return Status::Corruption("bad WAL value type");
  }
  TypeId type = static_cast<TypeId>(tag);
  ++*pos;
  uint64_t raw;
  PDT_RETURN_NOT_OK(GetVarint64(in, pos, &raw));
  switch (type) {
    case TypeId::kInt64:
      *v = Value(ZigZagDecode(raw));
      return Status::OK();
    case TypeId::kDouble: {
      double d;
      std::memcpy(&d, &raw, 8);
      *v = Value(d);
      return Status::OK();
    }
    case TypeId::kString: {
      // Overflow-safe bound: `*pos + raw` could wrap for a corrupt
      // near-2^64 length.
      if (raw > in.size() - *pos) {
        return Status::Corruption("truncated WAL string");
      }
      *v = Value(in.substr(*pos, raw));
      *pos += raw;
      return Status::OK();
    }
  }
  return Status::Corruption("bad WAL value type");
}

void PutValues(std::string* out, const std::vector<Value>& vs) {
  PutVarint64(out, vs.size());
  for (const Value& v : vs) PutValue(out, v);
}

Status GetValues(const std::string& in, size_t* pos, std::vector<Value>* vs) {
  uint64_t n;
  PDT_RETURN_NOT_OK(GetVarint64(in, pos, &n));
  if (n > in.size() - *pos) {
    return Status::Corruption("bad WAL value count");
  }
  vs->clear();
  vs->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Value v;
    PDT_RETURN_NOT_OK(GetValue(in, pos, &v));
    vs->push_back(std::move(v));
  }
  return Status::OK();
}

void EncodePayload(std::string* out, const WalRecord& record) {
  out->push_back(static_cast<char>(record.type));
  PutVarint64(out, record.txn_id);
  PutVarint64(out, record.table.size());
  out->append(record.table);
  switch (record.type) {
    case WalRecordType::kInsert:
      PutValues(out, record.tuple);
      break;
    case WalRecordType::kDelete:
      PutValues(out, record.key);
      break;
    case WalRecordType::kModify:
      PutValues(out, record.key);
      PutVarint64(out, record.column);
      PutValue(out, record.value);
      break;
    default:
      break;
  }
}

Status DecodePayload(const std::string& payload, WalRecord* r) {
  if (payload.empty()) return Status::Corruption("empty WAL record");
  size_t pos = 0;
  r->type = static_cast<WalRecordType>(payload[pos]);
  ++pos;
  PDT_RETURN_NOT_OK(GetVarint64(payload, &pos, &r->txn_id));
  uint64_t tlen;
  PDT_RETURN_NOT_OK(GetVarint64(payload, &pos, &tlen));
  if (tlen > payload.size() - pos) {
    return Status::Corruption("truncated WAL table name");
  }
  r->table = payload.substr(pos, tlen);
  pos += tlen;
  switch (r->type) {
    case WalRecordType::kInsert:
      PDT_RETURN_NOT_OK(GetValues(payload, &pos, &r->tuple));
      break;
    case WalRecordType::kDelete:
      PDT_RETURN_NOT_OK(GetValues(payload, &pos, &r->key));
      break;
    case WalRecordType::kModify: {
      PDT_RETURN_NOT_OK(GetValues(payload, &pos, &r->key));
      uint64_t col;
      PDT_RETURN_NOT_OK(GetVarint64(payload, &pos, &col));
      r->column = static_cast<ColumnId>(col);
      PDT_RETURN_NOT_OK(GetValue(payload, &pos, &r->value));
      break;
    }
    case WalRecordType::kBegin:
    case WalRecordType::kCommit:
    case WalRecordType::kAbort:
    case WalRecordType::kCheckpoint:
      break;
    default:
      return Status::Corruption("bad WAL record type");
  }
  if (pos != payload.size()) {
    return Status::Corruption("trailing bytes in WAL record");
  }
  return Status::OK();
}

// --- framing ---

constexpr size_t kFrameHeader = 16;         // u32 len + u32 crc + u64 lsn
constexpr uint32_t kMaxFrameLen = 1u << 30;  // sanity bound on corrupt lens
// Fixed-width frame fields use the explicit little-endian codecs from
// storage/encoding.h, so a segment reads identically on any host.

/// Walks the framed stream, calling `fn` per intact record. With
/// `tolerate_tail`, a torn final frame stops the scan cleanly
/// (`*tail_truncated` set, `*valid_bytes` = intact prefix); corruption
/// anywhere before the tail is always a hard error. Without it, any
/// anomaly is Corruption.
// True if an intact frame — CRC valid and LSN proving its position —
// starts at any offset in [from, buffer.size()). Used to classify a bad
// frame: a torn write only ever damages the very end of the log, so
// finding real frames after the damage proves mid-log corruption. The
// LSN filter makes the scan cheap (8 bytes must equal their own offset
// before a CRC is ever computed).
bool ValidFrameAfter(const std::string& buffer, size_t from) {
  for (size_t q = from; q + kFrameHeader <= buffer.size(); ++q) {
    if (DecodeFixed64(buffer.data() + q + 8) != q) continue;
    const uint32_t len = DecodeFixed32(buffer.data() + q);
    if (len > kMaxFrameLen || len > buffer.size() - q - kFrameHeader) {
      continue;
    }
    const uint32_t crc = DecodeFixed32(buffer.data() + q + 4);
    if (Crc32c(buffer.data() + q + 8, 8 + len) == crc) return true;
  }
  return false;
}

Status ScanFrames(const std::string& buffer, bool tolerate_tail,
                  uint64_t* valid_bytes, bool* tail_truncated,
                  const std::function<Status(const WalRecord&)>& fn) {
  size_t pos = 0;
  if (tail_truncated != nullptr) *tail_truncated = false;
  while (pos < buffer.size()) {
    const size_t remaining = buffer.size() - pos;
    bool torn = false;
    std::string torn_reason;
    if (remaining < kFrameHeader) {
      torn = true;
      torn_reason = "truncated WAL frame header";
    } else {
      const uint32_t len = DecodeFixed32(buffer.data() + pos);
      if (len > kMaxFrameLen || len > remaining - kFrameHeader) {
        // A torn header often reads as a garbage length; only a frame
        // overshooting the end of the log can be a tail.
        torn = true;
        torn_reason = "truncated WAL frame body";
      } else {
        const uint32_t crc = DecodeFixed32(buffer.data() + pos + 4);
        const uint64_t lsn = DecodeFixed64(buffer.data() + pos + 8);
        const uint32_t actual =
            Crc32c(buffer.data() + pos + 8, 8 + len);  // lsn || payload
        if (actual != crc) {
          if (pos + kFrameHeader + len == buffer.size()) {
            // Bad checksum on the final frame: a torn write.
            torn = true;
            torn_reason = "bad checksum on final WAL frame";
          } else {
            return Status::Corruption(
                "WAL frame checksum mismatch mid-log at offset " +
                std::to_string(pos));
          }
        } else if (lsn != pos) {
          // An intact frame claiming a different offset is not a torn
          // write — it is misplaced (stale or relocated) data.
          return Status::Corruption("WAL frame LSN mismatch at offset " +
                                    std::to_string(pos));
        } else {
          WalRecord r;
          PDT_RETURN_NOT_OK(DecodePayload(
              buffer.substr(pos + kFrameHeader, len), &r));
          PDT_RETURN_NOT_OK(fn(r));
          pos += kFrameHeader + len;
          if (valid_bytes != nullptr) *valid_bytes = pos;
          continue;
        }
      }
    }
    if (torn) {
      if (!tolerate_tail) return Status::Corruption(torn_reason);
      // A tear leaves nothing real behind it. An intact frame after the
      // damage (proven in place by its checksummed LSN) means this is
      // mid-log corruption wearing a torn disguise — e.g. a length
      // field flipped to overshoot the log — and truncating here would
      // silently drop the committed frames that follow.
      if (ValidFrameAfter(buffer, pos + 1)) {
        return Status::Corruption(torn_reason +
                                  " with intact frames after it");
      }
      if (tail_truncated != nullptr) *tail_truncated = true;
      return Status::OK();
    }
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------
// WalWriter.
// ---------------------------------------------------------------------

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Open(FileSystem* fs,
                                                     const std::string& path,
                                                     bool truncate) {
  if (fs == nullptr) fs = FileSystem::Default();
  PDT_ASSIGN_OR_RETURN(auto file, fs->NewWritableFile(path, truncate));
  return std::unique_ptr<WalWriter>(new WalWriter(std::move(file), path));
}

Status WalWriter::Append(std::string_view bytes) {
  return file_->Append(bytes);
}

Status WalWriter::Sync() {
  sync_count_.fetch_add(1, std::memory_order_relaxed);
  return file_->Sync();
}

// ---------------------------------------------------------------------
// Wal.
// ---------------------------------------------------------------------

uint64_t Wal::Append(const WalRecord& record) {
  std::string payload;
  EncodePayload(&payload, record);
  std::lock_guard<std::mutex> lock(mu_);
  return AppendPayloadLocked(payload);
}

uint64_t Wal::AppendPayloadLocked(const std::string& payload) {
  const uint64_t lsn = buffer_.size();
  PutFixed32(&buffer_, static_cast<uint32_t>(payload.size()));
  // CRC spans (lsn || payload) so a frame also vouches for its position.
  std::string checked;
  checked.reserve(8 + payload.size());
  PutFixed64(&checked, lsn);
  checked.append(payload);
  PutFixed32(&buffer_, Crc32c(checked.data(), checked.size()));
  buffer_.append(checked);
  ++record_count_;
  return lsn;
}

std::string Wal::EncodeRecordPayload(const WalRecord& record) {
  std::string payload;
  EncodePayload(&payload, record);
  return payload;
}

uint64_t Wal::AppendEncoded(const std::vector<std::string>& payloads) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& payload : payloads) AppendPayloadLocked(payload);
  return buffer_.size();
}

uint64_t Wal::LogBegin(uint64_t txn_id) {
  WalRecord r;
  r.type = WalRecordType::kBegin;
  r.txn_id = txn_id;
  return Append(r);
}

uint64_t Wal::LogInsert(uint64_t txn_id, const std::string& table,
                        const Tuple& tuple) {
  WalRecord r;
  r.type = WalRecordType::kInsert;
  r.txn_id = txn_id;
  r.table = table;
  r.tuple = tuple;
  return Append(r);
}

uint64_t Wal::LogDelete(uint64_t txn_id, const std::string& table,
                        const std::vector<Value>& key) {
  WalRecord r;
  r.type = WalRecordType::kDelete;
  r.txn_id = txn_id;
  r.table = table;
  r.key = key;
  return Append(r);
}

uint64_t Wal::LogModify(uint64_t txn_id, const std::string& table,
                        const std::vector<Value>& key, ColumnId col,
                        const Value& v) {
  WalRecord r;
  r.type = WalRecordType::kModify;
  r.txn_id = txn_id;
  r.table = table;
  r.key = key;
  r.column = col;
  r.value = v;
  return Append(r);
}

uint64_t Wal::LogCommit(uint64_t txn_id) {
  WalRecord r;
  r.type = WalRecordType::kCommit;
  r.txn_id = txn_id;
  return Append(r);
}

uint64_t Wal::LogAbort(uint64_t txn_id) {
  WalRecord r;
  r.type = WalRecordType::kAbort;
  r.txn_id = txn_id;
  return Append(r);
}

uint64_t Wal::LogCheckpoint(const std::string& table) {
  WalRecord r;
  r.type = WalRecordType::kCheckpoint;
  r.table = table;
  return Append(r);
}

Status Wal::Replay(const std::function<Status(const WalRecord&)>& fn) const {
  // Snapshot the buffer so the (possibly reentrant) callback never runs
  // under the buffer lock.
  std::string snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = buffer_;
  }
  return ScanFrames(snapshot, /*tolerate_tail=*/false, nullptr, nullptr, fn);
}

void Wal::Truncate() {
  std::unique_lock<std::mutex> flush_lock(flush_mu_);
  // Drain: a committer may still be waiting (or flushing) for an offset
  // in the log we are about to erase. Truncating under it would strand
  // its wait on an offset durable_bytes_ can never reach again (a
  // busy-spin) and would let the caller swap the writer out from under
  // the leader's flush. Waiters always progress on their own (one of
  // them is or becomes the leader), so this terminates.
  flush_cv_.wait(flush_lock,
                 [this] { return sync_waiters_ == 0 && !flushing_; });
  std::lock_guard<std::mutex> lock(mu_);
  buffer_.clear();
  record_count_ = 0;
  flushed_bytes_ = 0;
  durable_bytes_ = 0;
  health_ = Status::OK();
}

std::string Wal::TakeUnflushed(uint64_t* end_offset) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string chunk = buffer_.substr(flushed_bytes_);
  flushed_bytes_ = buffer_.size();
  if (end_offset != nullptr) *end_offset = buffer_.size();
  return chunk;
}

void Wal::MarkAllFlushed() {
  std::lock_guard<std::mutex> flush_lock(flush_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  flushed_bytes_ = buffer_.size();
  durable_bytes_ = buffer_.size();
  health_ = Status::OK();
}

uint64_t Wal::flushed_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flushed_bytes_;
}

uint64_t Wal::SizeBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buffer_.size();
}

size_t Wal::RecordCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return record_count_;
}

Status Wal::health() const {
  std::lock_guard<std::mutex> lock(flush_mu_);
  return health_;
}

void Wal::SetWriter(WalWriter* writer) {
  std::unique_lock<std::mutex> lock(flush_mu_);
  // Never swap the sink while a leader is appending through it.
  flush_cv_.wait(lock, [this] { return !flushing_; });
  writer_ = writer;
}

bool Wal::has_writer() const {
  std::lock_guard<std::mutex> lock(flush_mu_);
  return writer_ != nullptr;
}

Status Wal::SyncTo(uint64_t upto) {
  std::unique_lock<std::mutex> lock(flush_mu_);
  ++sync_waiters_;
  Status result = Status::OK();
  for (;;) {
    if (!health_.ok()) {
      result = health_;
      break;
    }
    if (durable_bytes_ >= upto) break;
    if (upto > SizeBytes()) {
      // Offsets only ever grow — unless Truncate() ran since `upto` was
      // handed out. Truncation is only legal after a durable checkpoint
      // absorbed every buffered frame, so the records this caller is
      // waiting on are durable via that checkpoint; returning OK here
      // (instead of spinning for an offset the log can never reach
      // again) is the truthful answer.
      break;
    }
    if (writer_ == nullptr) {
      result = Status::InvalidArgument("no WAL writer attached");
      break;
    }
    if (flushing_) {
      // A leader is already at the disk; ride on its fsync.
      flush_cv_.wait(lock);
      continue;
    }
    // Become the leader: flush everything buffered so far, on behalf of
    // every committer currently waiting. The writer pointer stays valid
    // while flushing_ is set (SetWriter waits on it), and Truncate
    // cannot run under us (it drains sync_waiters_ first).
    flushing_ = true;
    WalWriter* writer = writer_;
    lock.unlock();
    uint64_t end = 0;
    std::string chunk = TakeUnflushed(&end);
    Status st = Status::OK();
    if (!chunk.empty()) {
      st = writer->Append(chunk);
      if (st.ok()) st = writer->Sync();
    }
    lock.lock();
    flushing_ = false;
    if (st.ok()) {
      if (end > durable_bytes_) durable_bytes_ = end;
      if (durable_bytes_ < upto && chunk.empty()) {
        // Nothing left to flush, no truncation (caught above), and the
        // target is still ahead: the flush watermark was moved without
        // durability (e.g. a bare TakeUnflushed). Fail this wait loudly
        // instead of spinning at 100% CPU; the log itself is healthy.
        result = Status::Internal(
            "SyncTo target is beyond the flushable log");
        flush_cv_.notify_all();
        break;
      }
    } else {
      health_ = st;
    }
    flush_cv_.notify_all();
  }
  --sync_waiters_;
  if (sync_waiters_ == 0) flush_cv_.notify_all();  // wake a draining Truncate
  return result;
}

Status Wal::WriteToFile(const std::string& path, FileSystem* fs) const {
  if (fs == nullptr) fs = FileSystem::Default();
  std::string snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = buffer_;
  }
  PDT_ASSIGN_OR_RETURN(auto file,
                       fs->NewWritableFile(path, /*truncate=*/true));
  PDT_RETURN_NOT_OK(file->Append(snapshot));
  PDT_RETURN_NOT_OK(file->Sync());
  return file->Close();
}

Status Wal::LoadFromFile(const std::string& path, FileSystem* fs) {
  if (fs == nullptr) fs = FileSystem::Default();
  std::string bytes;
  PDT_RETURN_NOT_OK(fs->ReadFileToString(path, &bytes));
  // Strict validation (and record recount) before adopting the buffer.
  size_t count = 0;
  PDT_RETURN_NOT_OK(ScanFrames(bytes, /*tolerate_tail=*/false, nullptr,
                               nullptr, [&count](const WalRecord&) {
                                 ++count;
                                 return Status::OK();
                               }));
  std::lock_guard<std::mutex> flush_lock(flush_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  buffer_ = std::move(bytes);
  record_count_ = count;
  flushed_bytes_ = buffer_.size();
  durable_bytes_ = buffer_.size();
  health_ = Status::OK();
  return Status::OK();
}

StatusOr<WalRecoveryStats> Wal::RecoverFrom(FileSystem* fs,
                                            const std::string& path) {
  if (fs == nullptr) fs = FileSystem::Default();
  WalRecoveryStats stats;
  PDT_ASSIGN_OR_RETURN(bool exists, fs->FileExists(path));
  if (!exists) {
    Truncate();
    return stats;
  }
  std::string bytes;
  PDT_RETURN_NOT_OK(fs->ReadFileToString(path, &bytes));
  size_t count = 0;
  bool torn = false;
  uint64_t valid = 0;
  PDT_RETURN_NOT_OK(ScanFrames(bytes, /*tolerate_tail=*/true, &valid, &torn,
                               [&count](const WalRecord&) {
                                 ++count;
                                 return Status::OK();
                               }));
  if (torn) {
    // Cut the torn tail on disk too, so the next append continues the
    // frame stream at the offset the LSNs claim.
    PDT_RETURN_NOT_OK(fs->TruncateFile(path, valid));
    bytes.resize(valid);
  }
  {
    std::lock_guard<std::mutex> flush_lock(flush_mu_);
    std::lock_guard<std::mutex> lock(mu_);
    buffer_ = std::move(bytes);
    record_count_ = count;
    flushed_bytes_ = buffer_.size();
    durable_bytes_ = buffer_.size();
    health_ = Status::OK();
  }
  stats.valid_bytes = valid;
  stats.records = count;
  stats.tail_truncated = torn;
  return stats;
}

}  // namespace pdtstore

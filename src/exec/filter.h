// FilterNode: vectorized selection. The predicate marks surviving rows of
// a whole batch at once in a 1-bit-per-row KeepBitmap; survivors are
// compacted into the output batch through one selection-vector gather.
// Multi-predicate filters fold their bitmaps word-wise (AND/OR) before
// the single expansion — no intermediate selection or compacted batch is
// materialized (see keep_bitmap.h for the bitmap contract).
#ifndef PDTSTORE_EXEC_FILTER_H_
#define PDTSTORE_EXEC_FILTER_H_

#include <functional>
#include <memory>
#include <vector>

#include "columnstore/batch.h"
#include "columnstore/keep_bitmap.h"

namespace pdtstore {

/// Vector-at-a-time predicate: set the keep bit of surviving rows.
/// `keep` arrives Reset to the batch's row count (all bits zero); the
/// predicate writes each row's verdict at most once — row-at-a-time via
/// KeepBitmap::SetTo, or 64 rows per store via words()/FillFrom.
/// A predicate is shared read-only across pipeline workers and invoked
/// concurrently: it must not carry mutable state (scratch belongs to
/// the caller's per-worker state, or on the callee's stack).
/// Predicates must also be *total* over the batch: fusion (And/Or,
/// fused FilterNode conjunctions, stacked Pipeline::Filter calls) folds
/// bitmaps without compacting between conjuncts, so a predicate may be
/// evaluated on rows another conjunct rejects — it must not crash or
/// invoke UB on them (its verdict there is discarded by the AND).
using VecPredicate = std::function<void(const Batch&, KeepBitmap* keep)>;

/// Evaluates the conjunction of `preds` over `b` into `*keep` (resized
/// here): the first predicate writes `*keep` directly, each later one
/// writes `*tmp` and folds in with a word-wise And. Stops early once
/// the accumulator has no survivors; an empty `preds` keeps every row
/// (the identity of conjunction). `tmp` is caller-owned scratch so the
/// steady state is allocation-free.
void EvalConjunction(const std::vector<VecPredicate>& preds, const Batch& b,
                     KeepBitmap* keep, KeepBitmap* tmp);

/// Selection operator. Accepts one predicate or a fused conjunction;
/// either way the input batch is compacted exactly once.
class FilterNode : public BatchSource {
 public:
  FilterNode(std::unique_ptr<BatchSource> input, VecPredicate predicate)
      : input_(std::move(input)) {
    predicates_.push_back(std::move(predicate));
  }
  FilterNode(std::unique_ptr<BatchSource> input,
             std::vector<VecPredicate> predicates)
      : input_(std::move(input)), predicates_(std::move(predicates)) {}

  StatusOr<bool> Next(Batch* out, size_t max_rows) override;

 private:
  std::unique_ptr<BatchSource> input_;
  std::vector<VecPredicate> predicates_;
  Batch in_;          // reused across pulls
  KeepBitmap keep_;   // reused across batches
  KeepBitmap tmp_;    // conjunction scratch
};

// --- predicate helpers (composable building blocks for query kernels) ---
// The typed helpers emit bitmap words directly: 64 comparison verdicts
// are packed into one register and stored with a single write, so the
// inner loops carry no per-row branches or byte stores.

// On compressed-execution columns the helpers evaluate directly on the
// encoded form: RLE-sidecar columns test one value per run and word-fill
// the kept ranges; dictionary columns resolve string predicates against
// the (small) dictionary once and test integer codes per row. Plain
// columns take the classic per-row kernels. Results are identical.

/// col(idx) within [lo, hi] (inclusive; int64 columns).
VecPredicate Int64Between(size_t idx, int64_t lo, int64_t hi);
/// col(idx) within [lo, hi) (double columns).
VecPredicate DoubleInRange(size_t idx, double lo, double hi);
/// col(idx) == s (string columns).
VecPredicate StringEquals(size_t idx, std::string s);
/// fn(col(idx)) for an arbitrary string match (contains/prefix/...). On
/// dictionary columns fn runs once per distinct entry, not once per row.
/// fn is shared read-only across workers: it must be pure.
VecPredicate StringMatch(size_t idx,
                         std::function<bool(const std::string&)> fn);
/// Conjunction of predicates (word-wise AND, early-exit on empty).
VecPredicate And(std::vector<VecPredicate> preds);
/// Disjunction of predicates (word-wise OR, early-exit on all-set).
VecPredicate Or(std::vector<VecPredicate> preds);

}  // namespace pdtstore

#endif  // PDTSTORE_EXEC_FILTER_H_

// Differential fuzzing of the parallel pipeline engine: every seeded
// iteration builds a random table (random size / chunking / backend /
// per-column encoding mix), applies a random PDT/VDT update workload
// (sometimes through a multi-layer transaction stack), draws a random
// plan (filter / project / partitioned join / aggregation / sort /
// exchange), and runs it four ways: the serial operator tree and
// 2/4/8-thread pipelines over the compressed-execution table, plus a
// serial reference over a byte-identical decoded twin (encoded_exec
// off, zone-pruning hints off) built from a copy of the same Random.
// Results must agree: the exact serial sequence where the engine
// promises it (ordered exchange, deterministic sort), the multiset
// everywhere else. Because the decoded reference never sees borrowed
// spans, dictionary codes, RLE run predicates, or chunk pruning, any
// compressed-execution divergence shows up as a mismatch.
//
// Knobs (environment):
//   PDT_FUZZ_SEED   base seed (default 20260731)
//   PDT_FUZZ_ITERS  iterations (default 40; the TSan CI job runs 200+)
//
// A failure prints the iteration's seed; rerun exactly that case with
//   PDT_FUZZ_SEED=<seed> PDT_FUZZ_ITERS=1 ./differential_fuzz_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "fuzz_util.h"

namespace pdtstore {
namespace {

using testutil::FuzzPlanResult;
using testutil::FuzzSource;
using testutil::MakeFuzzSource;
using testutil::MakeFuzzTable;
using testutil::RunFuzzPlan;
using testutil::SortTuples;

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

// One full iteration from one seed. Returns false (with a recorded
// failure) if any thread count disagreed with the serial tree.
void RunIteration(uint64_t seed) {
  // Two identical decision streams: `rng` drives the compressed-
  // execution source, `rng_dec` its decoded twin. Random is a small
  // value type, so the copy freezes the stream and both builds make
  // exactly the same table / workload / txn choices — only the storage
  // representation differs.
  Random rng(seed);
  Random rng_dec = rng;
  FuzzSource src = MakeFuzzSource(&rng, /*encoded_exec=*/true);
  FuzzSource dec = MakeFuzzSource(&rng_dec, /*encoded_exec=*/false);
  ASSERT_NE(src.table, nullptr);
  ASSERT_NE(dec.table, nullptr);
  // Join build side: a second, smaller table (no txn stack).
  std::unique_ptr<Table> build =
      MakeFuzzTable(&rng, DeltaBackend::kPdt, 60, 250, /*encoded_exec=*/true);
  std::unique_ptr<Table> build_dec = MakeFuzzTable(
      &rng_dec, DeltaBackend::kPdt, 60, 250, /*encoded_exec=*/false);
  ASSERT_NE(build, nullptr);
  ASSERT_NE(build_dec, nullptr);

  // Several plans per table amortize the build cost; each plan seed is
  // derived, so a plan failure still reproduces from the iteration seed.
  const int plans = 3;
  for (int p = 0; p < plans; ++p) {
    const uint64_t plan_seed = seed ^ (0x9E3779B97F4A7C15ULL * (p + 1));
    // Reference: serial tree over the decoded twin, pruning hints off —
    // the plain row-at-a-time semantics everything else must match.
    FuzzPlanResult ref = RunFuzzPlan(plan_seed, dec, build_dec.get(), 1,
                                     /*zone_hints=*/false);
    ASSERT_TRUE(ref.status.ok()) << ref.status.ToString();
    std::vector<Tuple> ref_sorted = ref.rows;
    SortTuples(&ref_sorted);

    // Serial over the encoded source must reproduce the decoded serial
    // sequence exactly: same plan, same row order, different
    // representation (and possibly pruned chunks).
    FuzzPlanResult enc = RunFuzzPlan(plan_seed, src, build.get(), 1);
    ASSERT_TRUE(enc.status.ok())
        << enc.status.ToString() << " (plan " << p << ", encoded serial)";
    EXPECT_EQ(enc.rows, ref.rows)
        << "encoded vs decoded serial mismatch, plan " << p;
    if (::testing::Test::HasFailure()) return;

    for (int threads : {2, 4, 8}) {
      FuzzPlanResult got = RunFuzzPlan(plan_seed, src, build.get(), threads);
      ASSERT_TRUE(got.status.ok())
          << got.status.ToString() << " (plan " << p << ", " << threads
          << " threads)";
      if (got.exact) {
        EXPECT_EQ(got.rows, ref.rows)
            << "exact-sequence mismatch, plan " << p << ", " << threads
            << " threads";
      }
      std::vector<Tuple> got_sorted = std::move(got.rows);
      SortTuples(&got_sorted);
      EXPECT_EQ(got_sorted, ref_sorted)
          << "multiset mismatch, plan " << p << ", " << threads
          << " threads";
      if (::testing::Test::HasFailure()) return;
    }
  }
}

TEST(DifferentialFuzz, SerialAndParallelPlansAgree) {
  const uint64_t base = EnvOr("PDT_FUZZ_SEED", 20260731);
  const uint64_t iters = EnvOr("PDT_FUZZ_ITERS", 40);
  for (uint64_t i = 0; i < iters; ++i) {
    const uint64_t seed = base + i;
    SCOPED_TRACE("repro: PDT_FUZZ_SEED=" + std::to_string(seed) +
                 " PDT_FUZZ_ITERS=1 ./differential_fuzz_test");
    RunIteration(seed);
    if (::testing::Test::HasFailure()) {
      FAIL() << "differential fuzz failed at seed " << seed
             << " — repro: PDT_FUZZ_SEED=" << seed
             << " PDT_FUZZ_ITERS=1 ./differential_fuzz_test";
    }
  }
}

}  // namespace
}  // namespace pdtstore

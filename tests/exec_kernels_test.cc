// Property tests for the selection-vector kernels (AppendGather /
// AppendFiltered / HashColumn / SetFrom / AppendRun) against naive
// GetValue-based references, plus equivalence tests asserting that the
// kernelized FilterNode / HashJoinNode / HashAggNode produce row-for-row
// the same results as straightforward row-at-a-time reference
// implementations.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "columnstore/batch.h"
#include "columnstore/sel_vector.h"
#include "exec/filter.h"
#include "exec/hash_agg.h"
#include "exec/hash_join.h"
#include "exec/operator.h"
#include "util/random.h"

namespace pdtstore {
namespace {

const TypeId kAllTypes[] = {TypeId::kInt64, TypeId::kDouble,
                            TypeId::kString};

ColumnVector RandomColumn(TypeId type, size_t n, Random* rng) {
  ColumnVector col(type);
  for (size_t i = 0; i < n; ++i) {
    // Small cardinality so hash tests see duplicates.
    int64_t v = static_cast<int64_t>(rng->Uniform(16));
    switch (type) {
      case TypeId::kInt64:
        col.Append(Value(v));
        break;
      case TypeId::kDouble:
        col.Append(Value(static_cast<double>(v) * 1.5));
        break;
      case TypeId::kString:
        col.Append(Value("s" + std::to_string(v)));
        break;
    }
  }
  return col;
}

void ExpectColumnsEqual(const ColumnVector& a, const ColumnVector& b) {
  ASSERT_EQ(a.type(), b.type());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.GetValue(i), b.GetValue(i)) << "at index " << i;
  }
}

TEST(KernelTest, AppendGatherMatchesNaive) {
  Random rng(1);
  for (TypeId type : kAllTypes) {
    ColumnVector src = RandomColumn(type, 100, &rng);
    for (size_t sel_size : {size_t{0}, size_t{1}, size_t{37}, size_t{100}}) {
      SelVector sel;
      for (size_t i = 0; i < sel_size; ++i) {
        sel.push_back(static_cast<uint32_t>(rng.Uniform(src.size())));
      }
      ColumnVector fast(type);
      fast.Append(src.GetValue(0));  // non-empty destination: appends
      fast.AppendGather(src, sel);
      ColumnVector ref(type);
      ref.Append(src.GetValue(0));
      for (size_t i = 0; i < sel.size(); ++i) ref.AppendFrom(src, sel[i]);
      ExpectColumnsEqual(fast, ref);
    }
  }
}

TEST(KernelTest, AppendFilteredMatchesNaive) {
  Random rng(2);
  for (TypeId type : kAllTypes) {
    for (size_t n : {size_t{0}, size_t{1}, size_t{64}, size_t{129}}) {
      ColumnVector src = RandomColumn(type, n, &rng);
      // Random, none-kept and all-kept bitmaps.
      std::vector<std::vector<uint8_t>> keeps;
      keeps.emplace_back(n, 0);
      keeps.emplace_back(n, 1);
      std::vector<uint8_t> random_keep(n);
      for (size_t i = 0; i < n; ++i) random_keep[i] = rng.Uniform(2);
      keeps.push_back(std::move(random_keep));
      for (const auto& keep : keeps) {
        ColumnVector fast(type);
        fast.AppendFiltered(src, keep.data(), n);
        ColumnVector ref(type);
        for (size_t i = 0; i < n; ++i) {
          if (keep[i]) ref.AppendFrom(src, i);
        }
        ExpectColumnsEqual(fast, ref);
      }
    }
  }
}

TEST(KernelTest, HashColumnBulkMatchesPerRowAndRespectsEquality) {
  Random rng(3);
  for (TypeId type : kAllTypes) {
    ColumnVector col = RandomColumn(type, 200, &rng);
    std::vector<uint64_t> bulk(col.size(), kHashSeed);
    col.HashColumn(bulk.data());
    for (size_t i = 0; i < col.size(); ++i) {
      // Hashing a single-row column must agree with the bulk pass.
      ColumnVector one(type);
      one.AppendFrom(col, i);
      uint64_t h = kHashSeed;
      one.HashColumn(&h);
      EXPECT_EQ(h, bulk[i]) << "row " << i;
    }
    // Equal values hash equal; hashes are well-distributed enough that
    // 16 distinct values never all collide.
    std::map<std::string, uint64_t> by_value;
    size_t distinct_hashes = 0;
    std::vector<uint64_t> seen;
    for (size_t i = 0; i < col.size(); ++i) {
      std::string key = col.GetValue(i).ToString();
      auto [it, inserted] = by_value.try_emplace(key, bulk[i]);
      if (inserted) {
        if (std::find(seen.begin(), seen.end(), bulk[i]) == seen.end()) {
          seen.push_back(bulk[i]);
          ++distinct_hashes;
        }
      } else {
        EXPECT_EQ(it->second, bulk[i]) << "value " << key;
      }
    }
    EXPECT_GT(distinct_hashes, by_value.size() / 2);
  }
}

TEST(KernelTest, HashColumnEmptyAndMultiColumnCombine) {
  ColumnVector empty(TypeId::kInt64);
  empty.HashColumn(nullptr);  // zero rows: must not touch the output

  // Combining across columns distinguishes (a,b) from (b,a).
  ColumnVector a(TypeId::kInt64), b(TypeId::kInt64);
  a.Append(Value(1));
  b.Append(Value(2));
  uint64_t ab = kHashSeed, ba = kHashSeed;
  a.HashColumn(&ab);
  b.HashColumn(&ab);
  b.HashColumn(&ba);
  a.HashColumn(&ba);
  EXPECT_NE(ab, ba);
}

TEST(KernelTest, SetFromMatchesSetValue) {
  Random rng(4);
  for (TypeId type : kAllTypes) {
    ColumnVector src = RandomColumn(type, 20, &rng);
    ColumnVector a = RandomColumn(type, 20, &rng);
    ColumnVector b(type);
    b.AppendRange(a, 0, a.size());
    for (int trial = 0; trial < 50; ++trial) {
      size_t i = rng.Uniform(20), j = rng.Uniform(20);
      a.SetFrom(i, src, j);
      b.SetValue(i, src.GetValue(j));
    }
    ExpectColumnsEqual(a, b);
  }
}

TEST(KernelTest, AppendRunMatchesRepeatedAppend) {
  for (TypeId type : kAllTypes) {
    Value v = type == TypeId::kInt64
                  ? Value(42)
                  : (type == TypeId::kDouble ? Value(4.2) : Value("run"));
    for (size_t count : {size_t{0}, size_t{1}, size_t{7}}) {
      ColumnVector fast(type);
      fast.Append(v);
      fast.AppendRun(v, count);
      ColumnVector ref(type);
      ref.Append(v);
      for (size_t i = 0; i < count; ++i) ref.Append(v);
      ExpectColumnsEqual(fast, ref);
    }
  }
}

// ---------------------------------------------------------------------
// Operator equivalence against row-at-a-time references.
// ---------------------------------------------------------------------

Batch RandomBatch(size_t rows, Random* rng) {
  Batch b;
  std::vector<ColumnId> ids;
  TypeId layout[] = {TypeId::kInt64, TypeId::kDouble, TypeId::kString,
                     TypeId::kInt64};
  for (TypeId t : layout) {
    ids.push_back(static_cast<ColumnId>(b.columns().size()));
    b.columns().push_back(RandomColumn(t, rows, rng));
  }
  b.set_column_ids(std::move(ids));
  return b;
}

std::vector<Tuple> BatchRows(const Batch& b) {
  std::vector<Tuple> rows;
  for (size_t i = 0; i < b.num_rows(); ++i) rows.push_back(b.RowAsTuple(i));
  return rows;
}

std::vector<Tuple> Drain(BatchSource* src, size_t batch = 7) {
  auto rows = CollectRows(src, batch);
  EXPECT_TRUE(rows.ok());
  return rows.ok() ? *rows : std::vector<Tuple>{};
}

void ExpectRowsEqual(const std::vector<Tuple>& got,
                     const std::vector<Tuple>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].size(), want[i].size()) << "row " << i;
    for (size_t c = 0; c < got[i].size(); ++c) {
      EXPECT_EQ(got[i][c], want[i][c]) << "row " << i << " col " << c;
    }
  }
}

TEST(OperatorEquivalenceTest, FilterMatchesRowAtATime) {
  Random rng(5);
  for (size_t rows : {size_t{0}, size_t{1}, size_t{200}}) {
    Batch input = RandomBatch(rows, &rng);
    auto predicate = Int64Between(0, 4, 11);

    FilterNode node(std::make_unique<VectorSource>(input), predicate);
    auto got = Drain(&node);

    KeepBitmap keep;
    keep.Reset(rows);
    if (rows > 0) predicate(input, &keep);
    std::vector<Tuple> want;
    for (size_t i = 0; i < rows; ++i) {
      if (keep.Test(i)) want.push_back(input.RowAsTuple(i));
    }
    ExpectRowsEqual(got, want);
  }
}

TEST(OperatorEquivalenceTest, HashJoinMatchesNestedLoop) {
  Random rng(6);
  Batch probe = RandomBatch(120, &rng);
  Batch build = RandomBatch(40, &rng);
  // Keys: (int64 col 0, string col 2) — exercises multi-column verify.
  std::vector<size_t> keys = {0, 2};

  auto run = [&](JoinKind kind) {
    HashJoinNode node(std::make_unique<VectorSource>(probe),
                      std::make_unique<VectorSource>(build), keys, keys,
                      kind);
    return Drain(&node);
  };
  auto match = [&](size_t p, size_t b) {
    for (size_t k : keys) {
      if (probe.column(k).CompareAt(p, build.column(k), b) != 0)
        return false;
    }
    return true;
  };

  std::vector<Tuple> inner, semi, anti;
  for (size_t p = 0; p < probe.num_rows(); ++p) {
    bool any = false;
    for (size_t b = 0; b < build.num_rows(); ++b) {
      if (!match(p, b)) continue;
      any = true;
      Tuple t = probe.RowAsTuple(p);
      Tuple bt = build.RowAsTuple(b);
      t.insert(t.end(), bt.begin(), bt.end());
      inner.push_back(std::move(t));
    }
    (any ? semi : anti).push_back(probe.RowAsTuple(p));
  }
  ASSERT_FALSE(inner.empty());  // keys overlap by construction
  ExpectRowsEqual(run(JoinKind::kInner), inner);
  ExpectRowsEqual(run(JoinKind::kLeftSemi), semi);
  ExpectRowsEqual(run(JoinKind::kLeftAnti), anti);
}

TEST(OperatorEquivalenceTest, HashAggMatchesRowAtATime) {
  Random rng(7);
  for (size_t rows : {size_t{0}, size_t{1}, size_t{500}}) {
    Batch input = RandomBatch(rows, &rng);
    // Group by (string col 2, int64 col 3); aggregate over cols 0 and 1.
    std::vector<size_t> group_by = {2, 3};
    std::vector<AggSpec> aggs = {{AggKind::kSum, 1},
                                 {AggKind::kCount, 0},
                                 {AggKind::kMin, 0},
                                 {AggKind::kMax, 1},
                                 {AggKind::kAvg, 0}};

    HashAggNode node(std::make_unique<VectorSource>(input), group_by, aggs);
    auto got = Drain(&node);

    // Reference: first-appearance-ordered groups over row tuples.
    struct Ref {
      Tuple key;
      double sum1 = 0, min0 = 1e300, max1 = -1e300, sum0 = 0;
      int64_t count = 0;
    };
    std::vector<Ref> refs;
    auto numeric = [&](size_t col, size_t row) {
      const ColumnVector& c = input.column(col);
      return c.type() == TypeId::kInt64
                 ? static_cast<double>(c.ints()[row])
                 : c.doubles()[row];
    };
    for (size_t i = 0; i < rows; ++i) {
      Tuple key = {input.column(2).GetValue(i), input.column(3).GetValue(i)};
      Ref* r = nullptr;
      for (auto& cand : refs) {
        if (CompareTuples(cand.key, key) == 0) {
          r = &cand;
          break;
        }
      }
      if (!r) {
        refs.emplace_back();
        r = &refs.back();
        r->key = key;
      }
      ++r->count;
      r->sum1 += numeric(1, i);
      r->sum0 += numeric(0, i);
      r->min0 = std::min(r->min0, numeric(0, i));
      r->max1 = std::max(r->max1, numeric(1, i));
    }
    std::vector<Tuple> want;
    for (const Ref& r : refs) {
      Tuple t = r.key;
      t.emplace_back(r.sum1);
      t.emplace_back(r.count);
      t.emplace_back(r.min0);
      t.emplace_back(r.max1);
      t.emplace_back(r.sum0 / static_cast<double>(r.count));
      want.push_back(std::move(t));
    }
    ExpectRowsEqual(got, want);
  }
}

TEST(OperatorEquivalenceTest, BatchGatherAndFilterHelpers) {
  Random rng(8);
  Batch input = RandomBatch(60, &rng);
  std::vector<uint8_t> keep(60);
  KeepBitmap bitmap;
  bitmap.Reset(60);
  for (size_t i = 0; i < keep.size(); ++i) {
    keep[i] = static_cast<uint8_t>(rng.Uniform(2));
    bitmap.SetTo(i, keep[i] != 0);
  }

  // The byte-keep reference path and the bitmap path must agree.
  Batch filtered;
  filtered.set_column_ids(input.column_ids());
  for (size_t c = 0; c < input.num_columns(); ++c) {
    filtered.columns().emplace_back(input.column(c).type());
  }
  filtered.AppendFiltered(input, keep.data());

  Batch bit_filtered;
  bit_filtered.set_column_ids(input.column_ids());
  for (size_t c = 0; c < input.num_columns(); ++c) {
    bit_filtered.columns().emplace_back(input.column(c).type());
  }
  bit_filtered.AppendFiltered(input, bitmap);

  Batch gathered;
  gathered.set_column_ids(input.column_ids());
  for (size_t c = 0; c < input.num_columns(); ++c) {
    gathered.columns().emplace_back(input.column(c).type());
  }
  gathered.AppendGather(input, SelVector::FromKeep(bitmap));

  std::vector<Tuple> want;
  for (size_t i = 0; i < 60; ++i) {
    if (keep[i]) want.push_back(input.RowAsTuple(i));
  }
  ExpectRowsEqual(BatchRows(filtered), want);
  ExpectRowsEqual(BatchRows(bit_filtered), want);
  ExpectRowsEqual(BatchRows(gathered), want);
}

}  // namespace
}  // namespace pdtstore

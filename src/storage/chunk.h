// A Chunk is the unit of stable columnar storage and I/O: one column's
// values for a contiguous SID range, encoded to bytes. The encoded payload
// models the on-disk block; decoding through the BufferPool models a disk
// read (and is what the I/O accounting of Fig. 19 counts).
#ifndef PDTSTORE_STORAGE_CHUNK_H_
#define PDTSTORE_STORAGE_CHUNK_H_

#include <string>

#include "columnstore/column_vector.h"
#include "columnstore/value.h"
#include "storage/encoding.h"
#include "util/status.h"

namespace pdtstore {

/// One encoded column chunk plus its metadata.
struct Chunk {
  Sid start_sid = 0;        ///< SID of the first value
  size_t row_count = 0;     ///< number of values
  Encoding encoding = Encoding::kPlain;
  std::string data;         ///< encoded payload ("on disk")
  Value min_value;          ///< column min within the chunk (zone map)
  Value max_value;          ///< column max within the chunk (zone map)
  TypeId type = TypeId::kInt64;

  /// Size of the on-disk representation in bytes.
  size_t DiskBytes() const { return data.size(); }
};

/// Encodes `values` into a chunk starting at `start_sid`, choosing an
/// encoding per ChooseEncoding (always plain when `compression` is false)
/// and computing the zone-map min/max.
StatusOr<Chunk> BuildChunk(const ColumnVector& values, Sid start_sid,
                           bool compression);

/// As BuildChunk but with a caller-chosen encoding (fuzz / test hook).
/// Falls back to plain when the encoding cannot represent the values
/// (wrong type, FOR range too wide).
StatusOr<Chunk> BuildChunkForced(const ColumnVector& values, Sid start_sid,
                                 Encoding forced);

/// Decodes a chunk's payload back to values. With `keep_encoded`, the
/// output keeps the compressed-execution representation (dictionary
/// codes, RLE run sidecar) where the encoding supports it.
Status DecodeChunk(const Chunk& chunk, ColumnVector* out,
                   bool keep_encoded = false);

}  // namespace pdtstore

#endif  // PDTSTORE_STORAGE_CHUNK_H_

// Analytics example: the paper's motivating scenario — a TPC-H-style
// warehouse answering analytical queries while refresh streams trickle
// in. Shows that PDT-merged query results match a checkpointed (clean)
// database, and how much I/O a value-based VDT would have added.
//
//   $ ./example_analytics [--sf=0.01]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "db/database.h"
#include "tpch/queries.h"
#include "tpch/update_stream.h"

using namespace pdtstore;
using namespace pdtstore::tpch;

int main(int argc, char** argv) {
  GenOptions gen;
  gen.scale_factor = 0.01;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--sf=", 0) == 0) {
      gen.scale_factor = std::strtod(arg.c_str() + 5, nullptr);
    }
  }

  Database db;
  TableOptions opts;  // PDT backend, compression on
  auto tables = GenerateInto(&db, gen, opts);
  if (!tables.ok()) {
    std::printf("generate failed: %s\n", tables.status().ToString().c_str());
    return 1;
  }
  std::printf("Loaded TPC-H SF=%.3f: %llu orders, %llu lineitems\n",
              gen.scale_factor,
              static_cast<unsigned long long>(tables->orders->RowCount()),
              static_cast<unsigned long long>(tables->lineitem->RowCount()));

  // Trickle in the two refresh streams (0.1% each) — on-line, no
  // downtime, stable image untouched.
  auto streams = MakeUpdateStreams(gen, 2, 0.001);
  for (const auto& s : *streams) {
    if (Status st = ApplyUpdateStream(s, &*tables); !st.ok()) {
      std::printf("refresh failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::printf("Applied 2 refresh streams: lineitem PDT holds %zu updates "
              "(%zu bytes), orders PDT %zu updates\n",
              tables->lineitem->pdt()->EntryCount(),
              tables->lineitem->pdt()->MemoryBytes(),
              tables->orders->pdt()->EntryCount());

  // Run a few analytical queries against the merged image.
  std::printf("\n%-5s %-10s %-16s %-10s\n", "query", "rows", "checksum",
              "io_MB");
  for (int q : {1, 3, 6, 13, 18}) {
    db.DropCaches();
    db.ResetIoStats();
    auto r = RunTpchQuery(q, *tables);
    if (!r.ok()) {
      std::printf("q%d failed: %s\n", q, r.status().ToString().c_str());
      return 1;
    }
    std::printf("Q%-4d %-10zu %-16.2f %-10.2f\n", q, r->rows, r->checksum,
                static_cast<double>(db.io_stats().bytes_read) / 1e6);
  }

  // Checkpoint both updated tables and verify results are unchanged.
  (void)tables->lineitem->Checkpoint();
  (void)tables->orders->Checkpoint();
  std::printf("\nAfter checkpoint (PDTs empty, fresh stable image):\n");
  for (int q : {1, 6}) {
    auto r = RunTpchQuery(q, *tables);
    std::printf("Q%-4d %-10zu %-16.2f  (identical to pre-checkpoint)\n", q,
                r->rows, r->checksum);
  }
  return 0;
}

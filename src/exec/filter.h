// FilterNode: vectorized selection. The predicate marks surviving rows of
// a whole batch at once; survivors are compacted into the output batch.
#ifndef PDTSTORE_EXEC_FILTER_H_
#define PDTSTORE_EXEC_FILTER_H_

#include <functional>
#include <memory>
#include <vector>

#include "columnstore/batch.h"

namespace pdtstore {

/// Vector-at-a-time predicate: set keep[i] for surviving rows. `keep`
/// arrives sized to the batch and zero-initialized.
using VecPredicate =
    std::function<void(const Batch&, std::vector<uint8_t>* keep)>;

/// Selection operator.
class FilterNode : public BatchSource {
 public:
  FilterNode(std::unique_ptr<BatchSource> input, VecPredicate predicate)
      : input_(std::move(input)), predicate_(std::move(predicate)) {}

  StatusOr<bool> Next(Batch* out, size_t max_rows) override;

 private:
  std::unique_ptr<BatchSource> input_;
  VecPredicate predicate_;
  std::vector<uint8_t> keep_;  // reused across batches
};

// --- predicate helpers (composable building blocks for query kernels) ---

/// col(idx) within [lo, hi] (inclusive; int64 columns).
VecPredicate Int64Between(size_t idx, int64_t lo, int64_t hi);
/// col(idx) within [lo, hi) (double columns).
VecPredicate DoubleInRange(size_t idx, double lo, double hi);
/// col(idx) == s (string columns).
VecPredicate StringEquals(size_t idx, std::string s);
/// Conjunction of predicates.
VecPredicate And(std::vector<VecPredicate> preds);

}  // namespace pdtstore

#endif  // PDTSTORE_EXEC_FILTER_H_

// HTAP scenario tests: a deterministic small-scale run of the full
// driver (writers + readers + maintenance) whose WAL replays into an
// identical database, the acceptance property that a cross-table
// refresh group stays atomic under a forced write-write conflict
// (orders committed <=> lineitem committed), and the latency-percentile
// helper the report is built from.
#include "tpch/htap_driver.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "db/database.h"
#include "tpch/queries.h"
#include "util/file.h"

namespace pdtstore {
namespace {

std::string FreshDir(const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(path);
  std::filesystem::create_directories(path);
  return path;
}

uint64_t QueryChecksum(int q, const tpch::TpchTables& tables) {
  auto res = tpch::RunTpchQuery(q, tables, tpch::QueryOptions{});
  EXPECT_TRUE(res.ok()) << res.status().ToString();
  return res.ok() ? res->checksum : 0;
}

// The small-scale deterministic variant of the bench: real threads, a
// real durable WAL, an aggressive maintenance cadence (checkpoint
// whenever the Read-PDT is non-empty), and afterwards the WAL replayed
// into freshly generated tables must reproduce the exact final state —
// every concurrent interleaving the run chose is legal, and all of
// them serialize to the same database because the refresh streams are
// key-disjoint.
TEST(HtapScenarioTest, DeterministicSmallScaleRunReplaysFromWal) {
  Database db;
  tpch::GenOptions gen;
  gen.scale_factor = 0.002;
  auto tables = tpch::GenerateInto(&db, gen, TableOptions{});
  ASSERT_TRUE(tables.ok());

  const std::string dir = FreshDir("htap_small");
  auto writer =
      WalWriter::Open(FileSystem::Default(), dir + "/wal", true);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  Wal wal;

  tpch::HtapOptions opts;
  opts.writers = 2;
  opts.readers = 1;
  opts.streams_per_writer = 1;
  opts.stream_fraction = 0.01;
  opts.orders_per_txn = 2;
  opts.queries = {6};
  opts.min_queries_per_reader = 2;
  opts.write_pdt_max_entries = 8;  // keep propagation busy
  opts.maintenance_interval_ms = 2;
  opts.checkpoint_read_entries = 0;  // checkpoint at every quiet point
  auto report =
      tpch::RunHtapScenario(gen, &*tables, &wal, writer->get(), opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_GT(report->groups_committed, 0u);
  EXPECT_GT(report->rows_ingested, 0u);
  EXPECT_GE(report->queries_run, 2u);
  EXPECT_GT(report->committed, 0u);
  EXPECT_GT(report->query_latency.count, 0u);
  EXPECT_GE(report->query_latency.p99_ms, report->query_latency.p50_ms);
  EXPECT_GE(report->query_latency.max_ms, report->query_latency.p999_ms);
  EXPECT_GT(report->ingest_rows_per_sec, 0.0);
  // The driver already verified orders returned to its initial count;
  // cross-check the WAL: replaying it into fresh tables must land on
  // the same state the live run ended in.
  Database db2;
  auto tables2 = tpch::GenerateInto(&db2, gen, TableOptions{});
  ASSERT_TRUE(tables2.ok());
  MultiTxnManager mgr2({tables2->orders, tables2->lineitem}, nullptr);
  ASSERT_TRUE(mgr2.Recover(wal).ok());
  ASSERT_TRUE(mgr2.PropagateAndMaybeCheckpoint().ok());
  EXPECT_EQ(tables2->orders->RowCount(), tables->orders->RowCount());
  EXPECT_EQ(tables2->lineitem->RowCount(), tables->lineitem->RowCount());
  for (int q : {1, 6, 12}) {
    EXPECT_EQ(QueryChecksum(q, *tables2), QueryChecksum(q, *tables))
        << "Q" << q << " diverged after WAL replay";
  }
}

// The acceptance property, forced deterministically: two refresh-group
// transactions collide on orders only. Both publish onto the commit
// chain; the first AwaitCommit folds the whole chain in publication
// order, so A commits and B loses the write-write race on orders — and
// B's lineitem rows, which conflicted with nothing, must vanish with
// it (orders committed <=> lineitem committed, never half a group).
TEST(HtapScenarioTest, CrossTableRefreshGroupAtomicUnderForcedConflict) {
  Database db;
  tpch::GenOptions gen;
  gen.scale_factor = 0.002;
  auto tables = tpch::GenerateInto(&db, gen, TableOptions{});
  ASSERT_TRUE(tables.ok());
  auto streams = tpch::MakeUpdateStreams(gen, 2, 0.01);
  ASSERT_TRUE(streams.ok());
  const tpch::GeneratedOrder& contested = (*streams)[0].inserts[0];
  const tpch::GeneratedOrder& canary_src = (*streams)[1].inserts[0];
  ASSERT_FALSE(contested.lineitems.empty());
  ASSERT_FALSE(canary_src.lineitems.empty());

  MultiTxnManager mgr({tables->orders, tables->lineitem}, nullptr);
  const uint64_t orders_before = tables->orders->RowCount();
  const uint64_t lines_before = tables->lineitem->RowCount();

  auto a = mgr.Begin();
  ASSERT_TRUE(a->Insert("orders", contested.order).ok());
  for (const Tuple& l : contested.lineitems) {
    ASSERT_TRUE(a->Insert("lineitem", l).ok());
  }
  auto b = mgr.Begin();
  // Same order key as A (the forced conflict, on orders only) plus a
  // canary lineitem whose key collides with nothing.
  ASSERT_TRUE(b->Insert("orders", contested.order).ok());
  const Tuple& canary = canary_src.lineitems[0];
  ASSERT_TRUE(b->Insert("lineitem", canary).ok());

  ASSERT_TRUE(a->Publish().ok());
  ASSERT_TRUE(b->Publish().ok());
  EXPECT_EQ(mgr.GetStats().pending_deltas, 2u);
  // A's await claims the chain and folds both records in publication
  // order: A commits, then B fails serialization against A on orders.
  ASSERT_TRUE(a->AwaitCommit().ok());
  Status st = b->AwaitCommit();
  EXPECT_EQ(st.code(), StatusCode::kConflict) << st.ToString();

  // No record may be left behind on the chain, decided or not.
  MultiTxnStats stats = mgr.GetStats();
  EXPECT_EQ(stats.pending_deltas, 0u);
  EXPECT_EQ(mgr.committed_count(), 1u);
  EXPECT_EQ(mgr.aborted_count(), 1u);

  auto check = mgr.Begin();
  auto orders_now = check->RowCount("orders");
  auto lines_now = check->RowCount("lineitem");
  ASSERT_TRUE(orders_now.ok() && lines_now.ok());
  // Exactly one copy of the contested order landed...
  EXPECT_EQ(*orders_now, orders_before + 1);
  // ...with A's lineitems and none of B's: had B's group half-applied,
  // the canary would be visible even though its orders insert lost.
  EXPECT_EQ(*lines_now, lines_before + contested.lineitems.size());
  EXPECT_FALSE(
      check->GetByKey("lineitem", {canary[tpch::kLOrderkey],
                                   canary[tpch::kLLinenumber]})
          .ok());
  EXPECT_TRUE(
      check
          ->GetByKey("orders", {contested.order[tpch::kOOrderdate],
                                contested.order[tpch::kOOrderkey]})
          .ok());
}

// Same collision through the public refresh-group API: the losing
// group must retry from a fresh snapshot and converge, with the
// conflict surfaced in the stats rather than a half-applied group. The
// spoiler deletes the group's first order key, so the retry sees
// NotFound, skips that order, and commits the rest — deterministic.
TEST(HtapScenarioTest, RefreshGroupRetriesAfterPublishedConflict) {
  Database db;
  tpch::GenOptions gen;
  gen.scale_factor = 0.002;
  auto tables = tpch::GenerateInto(&db, gen, TableOptions{});
  ASSERT_TRUE(tables.ok());
  auto streams = tpch::MakeUpdateStreams(gen, 2, 0.01);
  ASSERT_TRUE(streams.ok());
  const auto& deletes = (*streams)[0].deletes;
  ASSERT_GT(deletes.size(), 1u);

  MultiTxnManager mgr({tables->orders, tables->lineitem}, nullptr);
  const uint64_t orders_before = tables->orders->RowCount();

  // Publish (but leave undecided) a transaction that beats the group to
  // its first delete key; the group folds it first and loses the
  // write-write race on that orders position.
  const tpch::GeneratedOrder& contested = deletes[0];
  auto spoiler = mgr.Begin();
  ASSERT_TRUE(spoiler
                  ->DeleteByKey("orders",
                                {contested.order[tpch::kOOrderdate],
                                 contested.order[tpch::kOOrderkey]})
                  .ok());
  ASSERT_TRUE(spoiler->Publish().ok());

  tpch::MultiTxnApplyOptions aopts;
  aopts.orders_per_txn = deletes.size();  // the whole stream, one group
  tpch::MultiTxnApplyStats stats;
  tpch::RefreshGroup group{0, deletes.size(), false};
  Status st = tpch::ApplyRefreshGroupMultiTxn((*streams)[0], group, &mgr,
                                              aopts, &stats);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(spoiler->AwaitCommit().code(), StatusCode::kOk);
  EXPECT_EQ(mgr.GetStats().pending_deltas, 0u);
  EXPECT_GE(stats.conflict_retries, 1u);
  EXPECT_EQ(stats.groups_committed, 1u);

  ASSERT_TRUE(mgr.PropagateAndMaybeCheckpoint().ok());
  EXPECT_TRUE(tables->orders->pdt()->CheckInvariants().ok());
  EXPECT_TRUE(tables->lineitem->pdt()->CheckInvariants().ok());
  // Spoiler deleted one order, the retried group the remaining ones —
  // anything else means the group tore or double-applied.
  EXPECT_EQ(tables->orders->RowCount(), orders_before - deletes.size());
}

TEST(LatencyPercentileTest, NearestRank) {
  std::vector<double> empty;
  EXPECT_EQ(tpch::LatencyPercentile(&empty, 0.99), 0.0);
  std::vector<double> one{7.0};
  EXPECT_EQ(tpch::LatencyPercentile(&one, 0.5), 7.0);
  EXPECT_EQ(tpch::LatencyPercentile(&one, 0.999), 7.0);
  std::vector<double> v{5, 1, 4, 2, 3};  // sorts in place
  EXPECT_EQ(tpch::LatencyPercentile(&v, 0.5), 3.0);
  EXPECT_EQ(tpch::LatencyPercentile(&v, 0.99), 5.0);
  EXPECT_EQ(tpch::LatencyPercentile(&v, 0.2), 1.0);
}

}  // namespace
}  // namespace pdtstore

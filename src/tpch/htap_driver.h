// The HTAP scenario driver (the paper's central claim, run end to end):
// N writer threads apply TPC-H refresh streams as cross-table atomic
// transactions (ApplyRefreshGroupMultiTxn over one MultiTxnManager
// driving orders + lineitem) while M reader threads run the TPC-H
// pipeline kernels against the same tables, with background Write→Read
// propagation running on the worker pool and a maintenance thread
// periodically folding + checkpointing at induced quiet points. The
// report carries the HTAP SLO quantities: query-latency percentiles
// (p50/p99/p999) under ingest, ingest rows/sec under scans, and the
// PDT layer dynamics (peaks, background merges, checkpoints).
//
// Concurrency protocol: readers scan the tables directly (no
// transaction) — safe because MultiTxnManager never mutates an
// installed Read-PDT in place (commits touch only manager-owned Write
// layers; propagation installs merged clones via Table::ReplacePdt,
// which scans pin). The only operations that DO mutate shared state in
// place — Table::Checkpoint's stable-store swap and Read-PDT clear —
// run under the driver's exclusive gate, which writers and readers
// hold shared for the duration of each refresh group / query, so a
// checkpoint is a true quiet point (its stall is measured and shows up
// honestly in the latency tail).
//
// Checkpoints here rebuild the in-memory stable image only; the WAL is
// left untouched (not truncated), so recovery still means replaying the
// scenario's WAL into freshly generated tables — which is exactly what
// the deterministic test does. Durable checkpointing (manifest commit +
// log truncation) remains Database::Save's job.
#ifndef PDTSTORE_TPCH_HTAP_DRIVER_H_
#define PDTSTORE_TPCH_HTAP_DRIVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tpch/queries.h"
#include "tpch/tpch_gen.h"
#include "tpch/update_stream.h"
#include "txn/multi_txn.h"
#include "txn/wal.h"

namespace pdtstore {
namespace tpch {

struct HtapOptions {
  int writers = 2;
  int readers = 2;
  /// Refresh streams applied by each writer, in sequence.
  int streams_per_writer = 2;
  /// Order-count fraction per stream (TPC-H RF1/RF2 use 0.1%).
  double stream_fraction = 0.002;
  /// Refresh orders per cross-table transaction.
  size_t orders_per_txn = 4;
  int max_conflict_retries = 8;
  /// Query kernels the readers cycle through (must touch the updated
  /// tables for the experiment to mean anything).
  std::vector<int> queries = {1, 6, 12, 14};
  int query_threads = 1;
  /// Each reader runs at least this many queries even if the writers
  /// finish first (so short ingest phases still produce latency data).
  int min_queries_per_reader = 2;
  /// Writer-path tuning: a small Write-PDT cap keeps propagation (and
  /// the background merge machinery) active during the run.
  size_t write_pdt_max_entries = 1024;
  size_t merge_chunk_entries = 2048;
  /// Maintenance cadence; 0 disables the checkpoint thread entirely.
  int maintenance_interval_ms = 50;
  /// Checkpoint a table when its Read-PDT exceeds this many entries at
  /// a maintenance quiet point (0 = checkpoint whenever non-empty).
  size_t checkpoint_read_entries = 4096;
};

struct HtapLatency {
  double p50_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  double max_ms = 0;
  uint64_t count = 0;
};

struct HtapReport {
  // Reader side.
  HtapLatency query_latency;  ///< across all readers and kernels
  uint64_t queries_run = 0;
  // Writer side.
  double ingest_rows_per_sec = 0;  ///< (inserted+deleted) / writer wall
  uint64_t rows_ingested = 0;
  uint64_t groups_committed = 0;
  uint64_t conflict_retries = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  double writer_wall_s = 0;
  double wall_s = 0;
  // Layer dynamics.
  size_t read_pdt_peak = 0;
  size_t write_pdt_peak = 0;
  size_t merge_pending_peak = 0;
  uint64_t background_merges = 0;
  uint64_t checkpoints = 0;
  double checkpoint_stall_ms_max = 0;
  uint64_t wal_syncs = 0;
};

/// Runs the scenario against already-generated tables. `wal` may be
/// null (no logging); `writer` may be null (no durability waits).
/// Claims orders + lineitem as their transaction driver for the
/// duration of the call. On success the final state has been verified:
/// equal insert/delete load returns the orders row count to its
/// starting value, and both PDTs pass CheckInvariants().
StatusOr<HtapReport> RunHtapScenario(const GenOptions& gen,
                                     TpchTables* tables, Wal* wal,
                                     WalWriter* writer,
                                     const HtapOptions& opts);

/// Nearest-rank percentile of an unsorted sample (sorts in place).
double LatencyPercentile(std::vector<double>* samples, double p);

}  // namespace tpch
}  // namespace pdtstore

#endif  // PDTSTORE_TPCH_HTAP_DRIVER_H_

// Encoding tests: roundtrips for every (encoding x type) combination,
// heuristic encoding choice, varint/zigzag edges, and corruption
// detection on truncated payloads.
#include "storage/encoding.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace pdtstore {
namespace {

ColumnVector Ints(std::vector<int64_t> v) {
  ColumnVector c(TypeId::kInt64);
  c.ints() = std::move(v);
  return c;
}
ColumnVector Doubles(std::vector<double> v) {
  ColumnVector c(TypeId::kDouble);
  c.doubles() = std::move(v);
  return c;
}
ColumnVector Strings(std::vector<std::string> v) {
  ColumnVector c(TypeId::kString);
  c.strings() = std::move(v);
  return c;
}

void ExpectRoundtrip(const ColumnVector& col, Encoding enc) {
  std::string bytes;
  ASSERT_TRUE(EncodeColumn(col, enc, &bytes).ok());
  ColumnVector decoded;
  ASSERT_TRUE(
      DecodeColumn(bytes, col.type(), enc, col.size(), &decoded).ok());
  ASSERT_EQ(decoded.size(), col.size());
  for (size_t i = 0; i < col.size(); ++i) {
    EXPECT_EQ(decoded.GetValue(i), col.GetValue(i)) << "at " << i;
  }
}

TEST(VarintTest, RoundtripsBoundaryValues) {
  for (uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL,
                     (1ULL << 32), ~0ULL}) {
    std::string buf;
    PutVarint64(&buf, v);
    size_t pos = 0;
    uint64_t out;
    ASSERT_TRUE(GetVarint64(buf, &pos, &out).ok());
    EXPECT_EQ(out, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, TruncationDetected) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 60);
  buf.resize(buf.size() - 1);
  size_t pos = 0;
  uint64_t out;
  EXPECT_EQ(GetVarint64(buf, &pos, &out).code(), StatusCode::kCorruption);
}

TEST(ZigZagTest, SymmetricAroundZero) {
  for (int64_t v : std::vector<int64_t>{0, 1, -1, 123456789, -123456789,
                                        INT64_MAX, INT64_MIN}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
}

TEST(PlainEncodingTest, AllTypes) {
  ExpectRoundtrip(Ints({1, -5, 0, INT64_MAX, INT64_MIN}), Encoding::kPlain);
  ExpectRoundtrip(Doubles({0.0, -1.5, 3.14, 1e300}), Encoding::kPlain);
  ExpectRoundtrip(Strings({"", "a", "hello world", std::string(1000, 'x')}),
                  Encoding::kPlain);
}

TEST(RleEncodingTest, RunsCompress) {
  ColumnVector col = Ints(std::vector<int64_t>(1000, 42));
  std::string rle, plain;
  ASSERT_TRUE(EncodeColumn(col, Encoding::kRle, &rle).ok());
  ASSERT_TRUE(EncodeColumn(col, Encoding::kPlain, &plain).ok());
  EXPECT_LT(rle.size() * 50, plain.size());
  ExpectRoundtrip(col, Encoding::kRle);
  ExpectRoundtrip(Strings({"a", "a", "b", "b", "b", "c"}), Encoding::kRle);
  ExpectRoundtrip(Doubles({1.0, 1.0, 2.0}), Encoding::kRle);
  // Degenerate: all-distinct values still roundtrip.
  ExpectRoundtrip(Ints({1, 2, 3, 4, 5}), Encoding::kRle);
}

TEST(DeltaEncodingTest, SortedKeysCompressWell) {
  std::vector<int64_t> sorted;
  for (int64_t i = 0; i < 10000; ++i) sorted.push_back(i * 4);
  ColumnVector col = Ints(sorted);
  std::string delta, plain;
  ASSERT_TRUE(EncodeColumn(col, Encoding::kDeltaVarint, &delta).ok());
  ASSERT_TRUE(EncodeColumn(col, Encoding::kPlain, &plain).ok());
  EXPECT_LT(delta.size() * 4, plain.size());
  ExpectRoundtrip(col, Encoding::kDeltaVarint);
  // Negative deltas (unsorted input) still roundtrip via zigzag.
  ExpectRoundtrip(Ints({100, 5, 700, -3}), Encoding::kDeltaVarint);
}

TEST(DeltaEncodingTest, RejectsNonInt) {
  std::string bytes;
  EXPECT_FALSE(
      EncodeColumn(Doubles({1.0}), Encoding::kDeltaVarint, &bytes).ok());
}

TEST(DictEncodingTest, LowCardinalityStrings) {
  std::vector<std::string> vals;
  for (int i = 0; i < 5000; ++i) vals.push_back(i % 2 ? "yes" : "no");
  ColumnVector col = Strings(vals);
  std::string dict, plain;
  ASSERT_TRUE(EncodeColumn(col, Encoding::kDict, &dict).ok());
  ASSERT_TRUE(EncodeColumn(col, Encoding::kPlain, &plain).ok());
  EXPECT_LT(dict.size() * 2, plain.size());
  ExpectRoundtrip(col, Encoding::kDict);
}

TEST(DictEncodingTest, RejectsNonString) {
  std::string bytes;
  EXPECT_FALSE(EncodeColumn(Ints({1}), Encoding::kDict, &bytes).ok());
}

TEST(ChooseEncodingTest, Heuristics) {
  // Compression off: always plain.
  EXPECT_EQ(ChooseEncoding(Ints({1, 2, 3, 4, 5, 6, 7, 8, 9}), false),
            Encoding::kPlain);
  // Sorted ints: delta.
  EXPECT_EQ(ChooseEncoding(Ints({1, 2, 3, 4, 5, 6, 7, 8, 9}), true),
            Encoding::kDeltaVarint);
  // Heavy runs: RLE.
  EXPECT_EQ(ChooseEncoding(Ints(std::vector<int64_t>(100, 7)), true),
            Encoding::kRle);
  // Low-cardinality strings: dict.
  std::vector<std::string> flags;
  for (int i = 0; i < 100; ++i) flags.push_back(i % 3 == 0 ? "A" : "B");
  // interleaved so runs are short
  EXPECT_EQ(ChooseEncoding(Strings(flags), true), Encoding::kDict);
  // High-cardinality unsorted: plain.
  Random rng(1);
  std::vector<int64_t> noise;
  for (int i = 0; i < 100; ++i) {
    noise.push_back(static_cast<int64_t>(rng.Next()));
  }
  EXPECT_EQ(ChooseEncoding(Ints(noise), true), Encoding::kPlain);
  // Tiny columns stay plain.
  EXPECT_EQ(ChooseEncoding(Ints({1, 2}), true), Encoding::kPlain);
}

TEST(CorruptionTest, TruncatedPayloadsRejected) {
  ColumnVector col = Strings({"hello", "world"});
  std::string bytes;
  ASSERT_TRUE(EncodeColumn(col, Encoding::kPlain, &bytes).ok());
  bytes.resize(bytes.size() / 2);
  ColumnVector out;
  EXPECT_EQ(
      DecodeColumn(bytes, TypeId::kString, Encoding::kPlain, 2, &out).code(),
      StatusCode::kCorruption);

  ColumnVector ints = Ints({1, 2, 3, 4, 5, 6, 7, 8});
  ASSERT_TRUE(EncodeColumn(ints, Encoding::kDeltaVarint, &bytes).ok());
  bytes.resize(2);
  EXPECT_FALSE(
      DecodeColumn(bytes, TypeId::kInt64, Encoding::kDeltaVarint, 8, &out)
          .ok());
}


TEST(ForBitPackTest, RoundtripsNarrowRanges) {
  ExpectRoundtrip(Ints({5, 9, 7, 5, 8, 6}), Encoding::kForBitPack);
  ExpectRoundtrip(Ints({-100, -50, -75}), Encoding::kForBitPack);
  ExpectRoundtrip(Ints({1000000, 1000001, 1000050}), Encoding::kForBitPack);
  ExpectRoundtrip(Ints(std::vector<int64_t>(100, 7)),
                  Encoding::kForBitPack);  // constant -> 1-bit
  // Width exactly at byte boundaries.
  ExpectRoundtrip(Ints({0, 255}), Encoding::kForBitPack);
  ExpectRoundtrip(Ints({0, 256}), Encoding::kForBitPack);
  ExpectRoundtrip(Ints({0, 65535, 12345}), Encoding::kForBitPack);
}

TEST(ForBitPackTest, CompressesNarrowColumns) {
  Random rng(5);
  std::vector<int64_t> qty;
  for (int i = 0; i < 10000; ++i) qty.push_back(rng.UniformRange(1, 50));
  ColumnVector col = Ints(qty);
  std::string packed, plain;
  ASSERT_TRUE(EncodeColumn(col, Encoding::kForBitPack, &packed).ok());
  ASSERT_TRUE(EncodeColumn(col, Encoding::kPlain, &plain).ok());
  // 6 bits/value vs 64 bits/value: ~10x.
  EXPECT_LT(packed.size() * 8, plain.size());
  ExpectRoundtrip(col, Encoding::kForBitPack);
}

TEST(ForBitPackTest, RejectsWideRangesAndNonInts) {
  std::string bytes;
  EXPECT_FALSE(EncodeColumn(Ints({0, INT64_MAX}), Encoding::kForBitPack,
                            &bytes)
                   .ok());
  EXPECT_FALSE(
      EncodeColumn(Doubles({1.0}), Encoding::kForBitPack, &bytes).ok());
}

TEST(ForBitPackTest, ChosenForNarrowUnsortedInts) {
  Random rng(6);
  std::vector<int64_t> vals;
  for (int i = 0; i < 200; ++i) vals.push_back(rng.UniformRange(0, 1000));
  EXPECT_EQ(ChooseEncoding(Ints(vals), true), Encoding::kForBitPack);
}

TEST(ForBitPackTest, TruncationDetected) {
  ColumnVector col = Ints({1, 2, 3, 4, 5, 6, 7, 8});
  std::string bytes;
  ASSERT_TRUE(EncodeColumn(col, Encoding::kForBitPack, &bytes).ok());
  bytes.resize(2);
  ColumnVector out;
  EXPECT_FALSE(
      DecodeColumn(bytes, TypeId::kInt64, Encoding::kForBitPack, 8, &out)
          .ok());
}

class EncodingRandomTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(EncodingRandomTest, RandomRoundtrips) {
  auto [enc_int, seed] = GetParam();
  Random rng(seed);
  Encoding enc = static_cast<Encoding>(enc_int);
  // Random int columns for every encoding that supports ints.
  if (enc != Encoding::kDict) {
    std::vector<int64_t> vals;
    for (int i = 0; i < 500; ++i) {
      // FOR cannot represent full-width ranges; keep its input narrow.
      vals.push_back(enc == Encoding::kForBitPack
                         ? rng.UniformRange(-100000, 100000)
                         : (rng.Bernoulli(0.5)
                                ? rng.UniformRange(-5, 5)
                                : static_cast<int64_t>(rng.Next())));
    }
    ExpectRoundtrip(Ints(vals), enc);
  }
  if (enc == Encoding::kPlain || enc == Encoding::kRle ||
      enc == Encoding::kDict) {
    std::vector<std::string> vals;
    for (int i = 0; i < 300; ++i) {
      vals.push_back(rng.NextString(rng.Uniform(12)));
    }
    ExpectRoundtrip(Strings(vals), enc);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EncodingRandomTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(101, 102, 103)));

}  // namespace
}  // namespace pdtstore

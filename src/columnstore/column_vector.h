// Typed, densely packed column of values. This is the in-memory unit of
// vectorized execution (a column of a Batch), of decoded storage chunks,
// and of the PDT value space tables.
//
// Compressed execution (see DESIGN.md "Compressed execution"): a column
// has one of three representations, transparent to the kernel API.
//   owned-plain    values live in this vector's typed storage (legacy).
//   owned-dict     string columns only: a uint32 code per row plus a
//                  shared, immutable StringDict (values + precomputed
//                  hashes). Hash/compare degrade to int operations.
//   borrowed       a [view_offset, view_offset+len) window over another
//                  *owned* vector, pinned by shared_ptr. Zero-copy scan
//                  batches borrow directly from buffer-pool chunk storage.
// Read kernels (AppendRange/Gather/Filtered, HashColumn, CompareAt,
// GetValue) resolve the representation internally. Mutating entry points
// (Append*, SetValue/SetFrom, mutable typed accessors) first detach a
// borrow into owned storage — and, where the operation cannot be
// expressed on codes, decay dictionary columns to plain strings — so a
// writer can never scribble on pool-owned chunk memory shared with
// concurrent readers. An optional RLE run sidecar (decode-time metadata)
// accelerates predicate kernels; it is dropped on any mutation.
#ifndef PDTSTORE_COLUMNSTORE_COLUMN_VECTOR_H_
#define PDTSTORE_COLUMNSTORE_COLUMN_VECTOR_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "columnstore/sel_vector.h"
#include "columnstore/types.h"
#include "columnstore/value.h"

namespace pdtstore {

/// Seed for the bulk HashColumn kernel: callers initialize every slot of
/// the output array to this before mixing in the first column.
constexpr uint64_t kHashSeed = 0x9E3779B97F4A7C15ULL;

// --- hash primitives (shared by HashColumn and decode-time dictionary
// hash precomputation; dict-path hashes must equal plain-path hashes) ---

/// splitmix64 finalizer: full-avalanche mixing of a 64-bit word.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Folds a new element hash into the running per-row hash.
inline uint64_t CombineHash(uint64_t acc, uint64_t h) {
  return Mix64(acc ^ h);
}

/// FNV-1a over the bytes, finalized through Mix64 for avalanche.
inline uint64_t HashBytes(const char* data, size_t n) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h = (h ^ static_cast<uint8_t>(data[i])) * 0x100000001B3ULL;
  }
  return Mix64(h);
}

/// Immutable string dictionary shared between a decoded chunk and every
/// batch column borrowing from it. `values` is in *appearance order* (the
/// on-disk dict encoding), NOT sorted: codes must never be compared for
/// order, only for equality. `hashes[i] == HashBytes(values[i])`,
/// precomputed once per chunk so per-batch group-by hashing is an array
/// lookup instead of a byte scan.
struct StringDict {
  std::vector<std::string> values;
  std::vector<uint64_t> hashes;
};

/// RLE run layout of an owned vector's rows: run i covers rows
/// [i == 0 ? 0 : ends[i-1], ends[i]). Pure accelerator metadata — the
/// plain values are always materialized alongside — so predicate kernels
/// may use it (one compare per run) or ignore it. Borrowed views inherit
/// the owner's runs; run bounds are in *owner* row coordinates, shifted
/// by view_offset().
struct RleRuns {
  std::vector<uint32_t> ends;
};

/// A typed growable column. Typed span accessors are the hot path; the
/// Value-based API is for boundaries and tests.
class ColumnVector {
 public:
  ColumnVector() : type_(TypeId::kInt64) {}
  explicit ColumnVector(TypeId type) : type_(type) {}

  TypeId type() const { return type_; }
  size_t size() const {
    if (owner_) return view_len_;
    if (dict_) return codes_.size();
    switch (type_) {
      case TypeId::kInt64:
        return ints_.size();
      case TypeId::kDouble:
        return doubles_.size();
      case TypeId::kString:
        return strings_.size();
    }
    return 0;
  }
  bool empty() const { return size() == 0; }

  /// Drops all rows AND all representation state (borrow pin, dictionary,
  /// run sidecar); the column reverts to owned-plain-empty. Batch reuse
  /// via ResetLike therefore releases chunk pins every pull cycle.
  void Clear();
  void Reserve(size_t n);

  // --- zero-copy borrow (scan fast path) ---

  /// Makes this column a read-only view of rows [off, off+len) of `*src`
  /// without copying. `src` must outlive nothing: the shared_ptr pins it
  /// (and, transitively, the buffer-pool chunk that owns it) until this
  /// column is Cleared, mutated (copy-on-write detach) or destroyed.
  /// Borrowing from an already-borrowed column re-borrows from its owner,
  /// so borrow chains are always depth 1.
  void BorrowFrom(std::shared_ptr<const ColumnVector> src, size_t off,
                  size_t len);
  bool is_borrowed() const { return owner_ != nullptr; }

  // --- dictionary representation (string columns) ---

  /// True if rows are stored as dictionary codes (possibly via a borrow).
  bool is_dict() const { return payload().dict_ != nullptr; }
  /// The shared dictionary; null unless is_dict().
  const std::shared_ptr<const StringDict>& dict() const {
    return payload().dict_;
  }
  /// Switches an empty owned string column to dictionary mode; fill rows
  /// through codes(). Decode-time API.
  void AdoptDict(std::shared_ptr<const StringDict> dict);
  /// Mutable code storage of an owned dictionary column (decode-time).
  std::vector<uint32_t>& codes() {
    assert(dict_ && !owner_);
    return codes_;
  }

  // --- RLE run sidecar ---

  /// Attaches run metadata describing the current rows (decode-time).
  void SetRleRuns(std::shared_ptr<const RleRuns> runs);
  /// Run layout of the *owning* payload, or null. Bounds are payload row
  /// indices; this view covers payload rows
  /// [view_offset(), view_offset() + size()).
  const RleRuns* rle_runs() const { return payload().runs_.get(); }
  size_t view_offset() const { return owner_ ? view_off_ : 0; }

  // --- read-side span accessors (resolve borrow + representation) ---

  const int64_t* ints_data() const {
    assert(type_ == TypeId::kInt64);
    return payload().ints_.data() + payload_off();
  }
  const double* doubles_data() const {
    assert(type_ == TypeId::kDouble);
    return payload().doubles_.data() + payload_off();
  }
  /// Plain string rows; must not be in dictionary mode.
  const std::string* strings_data() const {
    assert(type_ == TypeId::kString && !is_dict());
    return payload().strings_.data() + payload_off();
  }
  /// Dictionary codes; only valid when is_dict().
  const uint32_t* codes_data() const {
    assert(is_dict());
    return payload().codes_.data() + payload_off();
  }
  /// String value of row i regardless of representation.
  const std::string& StringAt(size_t i) const {
    assert(type_ == TypeId::kString);
    const ColumnVector& p = payload();
    size_t j = payload_off() + i;
    return p.dict_ ? p.dict_->values[p.codes_[j]] : p.strings_[j];
  }

  /// Appends a dynamically typed value; type must match.
  void Append(const Value& v);
  /// Appends a run of the same value `count` times.
  void AppendRun(const Value& v, size_t count);
  /// Appends element `i` of `other` (same type).
  void AppendFrom(const ColumnVector& other, size_t i);
  /// Appends elements [begin, end) of `other` (same type).
  void AppendRange(const ColumnVector& other, size_t begin, size_t end);

  // --- selection-vector kernels (see DESIGN.md) ---
  // Each dispatches on TypeId once per call and runs a tight typed inner
  // loop; these are the hot paths of filter/join/sort compaction. When
  // both sides share a dictionary (or this column is empty and adopts
  // other's), string gathers move uint32 codes instead of std::strings.

  /// Appends other[sel[0]], other[sel[1]], ... (same type).
  void AppendGather(const ColumnVector& other, const SelVector& sel);
  /// Appends every kept row of `other` (same type); keep.size() must be
  /// <= other.size().
  void AppendFiltered(const ColumnVector& other, const KeepBitmap& keep);
  /// Byte-per-row reference path (tests / bench ablation only).
  void AppendFiltered(const ColumnVector& other, const uint8_t* keep,
                      size_t n);
  /// Mixes a hash of element i into out[i] for all i in [0, size()).
  /// Callers seed out[] with kHashSeed, then call once per key column;
  /// equal key tuples yield equal combined hashes regardless of
  /// representation (dict hashes are precomputed HashBytes values). Not
  /// order-invariant across columns (hash(a,b) != hash(b,a) in general).
  void HashColumn(uint64_t* out) const;

  Value GetValue(size_t i) const;
  void SetValue(size_t i, const Value& v);
  /// this[i] = other[j] without boxing through Value (same type).
  void SetFrom(size_t i, const ColumnVector& other, size_t j);

  /// Three-way comparison of element i with element j of `other`. Equal
  /// codes under a shared dictionary short-circuit to 0; everything else
  /// compares lexically (dictionaries are appearance-ordered, so code
  /// order is meaningless).
  int CompareAt(size_t i, const ColumnVector& other, size_t j) const;

  // Typed hot-path accessors. Caller must respect type(). The mutable
  // overloads detach borrows and decay dictionaries to plain storage
  // (copy-on-write); the const overloads require owned-plain — readers
  // of scan output must use the *_data() / StringAt spans instead.
  std::vector<int64_t>& ints() {
    EnsureOwnedPlain();
    return ints_;
  }
  const std::vector<int64_t>& ints() const {
    assert(!owner_ && !dict_);
    return ints_;
  }
  std::vector<double>& doubles() {
    EnsureOwnedPlain();
    return doubles_;
  }
  const std::vector<double>& doubles() const {
    assert(!owner_ && !dict_);
    return doubles_;
  }
  std::vector<std::string>& strings() {
    EnsureOwnedPlain();
    return strings_;
  }
  const std::vector<std::string>& strings() const {
    assert(!owner_ && !dict_);
    return strings_;
  }

  /// Converts to owned-plain storage in place (detaches borrows, decodes
  /// dictionary codes). Exposed for boundary code and tests.
  void EnsureOwnedPlain();

  /// Approximate heap footprint in bytes (used for buffer-pool sizing and
  /// I/O accounting of uncompressed data). Borrowed views report the
  /// footprint of the window they pin; dictionary columns count codes
  /// plus the shared dictionary.
  size_t ByteSize() const;

 private:
  // Resolves a borrow to the vector that owns the rows.
  const ColumnVector& payload() const { return owner_ ? *owner_ : *this; }
  size_t payload_off() const { return owner_ ? view_off_ : 0; }
  uint32_t CodeAt(size_t i) const {
    const ColumnVector& p = payload();
    return p.codes_[payload_off() + i];
  }

  // Copy-on-write: turns a borrow into owned storage (dictionary columns
  // keep their codes + shared dict). Drops the run sidecar — mutation
  // invalidates it.
  void DetachToOwned();
  // Decays an owned dictionary column to plain strings.
  void DecayDictToPlain();
  // If this is an empty plain string column and `other` is in dictionary
  // mode, adopt other's dictionary so appends copy codes. Returns true
  // if this column is (now) in dictionary mode sharing other's dict.
  bool MatchDictFor(const ColumnVector& other);

  TypeId type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  // Dictionary representation: one code per row + shared dict.
  std::vector<uint32_t> codes_;
  std::shared_ptr<const StringDict> dict_;
  // Optional RLE layout of the owned rows (accelerator metadata only).
  std::shared_ptr<const RleRuns> runs_;
  // Borrowed mode: non-null owner pins the payload; this vector's own
  // storage is empty and reads resolve to owner rows
  // [view_off_, view_off_ + view_len_).
  std::shared_ptr<const ColumnVector> owner_;
  size_t view_off_ = 0;
  size_t view_len_ = 0;
};

}  // namespace pdtstore

#endif  // PDTSTORE_COLUMNSTORE_COLUMN_VECTOR_H_

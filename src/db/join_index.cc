#include "db/join_index.h"

namespace pdtstore {

StatusOr<Sid> JoinIndex::ResolveDimSid(const Value& key) const {
  // Binary search the dimension's stable image on its (single-column)
  // sort key.
  const ColumnStore& store = dim_->store();
  ColumnId key_col = dim_->schema().sort_key()[0];
  Sid lo = 0, hi = store.num_rows();
  while (lo < hi) {
    Sid mid = lo + (hi - lo) / 2;
    PDT_ASSIGN_OR_RETURN(Value v, store.GetValue(key_col, mid));
    if (v.Compare(key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo >= store.num_rows()) return Status::NotFound("dangling FK");
  PDT_ASSIGN_OR_RETURN(Value v, store.GetValue(key_col, lo));
  if (v.Compare(key) != 0) return Status::NotFound("dangling FK");
  return lo;
}

StatusOr<JoinIndex> JoinIndex::Build(const Table* fact, const Table* dim,
                                     ColumnId fk_col) {
  if (dim->schema().sort_key().size() != 1) {
    return Status::InvalidArgument(
        "join index needs a single-column dimension key");
  }
  JoinIndex index(fact, dim, fk_col);
  const ColumnStore& fstore = fact->store();
  index.dim_sids_.reserve(fstore.num_rows());
  for (size_t ci = 0; ci < fstore.num_chunks(); ++ci) {
    PDT_ASSIGN_OR_RETURN(auto fk, fstore.FetchChunk(fk_col, ci));
    for (size_t i = 0; i < fk->size(); ++i) {
      PDT_ASSIGN_OR_RETURN(Sid dim_sid,
                           index.ResolveDimSid(fk->GetValue(i)));
      index.dim_sids_.push_back(dim_sid);
    }
  }
  return index;
}

StatusOr<Rid> JoinIndex::DimRidForFactRid(Rid fact_rid) const {
  // Pin both PDTs for the duration of the lookup: a background merge
  // may ReplacePdt either table concurrently with this read.
  std::shared_ptr<const Pdt> fact_pdt = fact_->SharedPdt();
  std::shared_ptr<const Pdt> dim_pdt = dim_->SharedPdt();
  if (fact_pdt == nullptr || dim_pdt == nullptr) {
    return Status::InvalidArgument("join index requires PDT tables");
  }
  Sid dim_sid;
  Pdt::RidLookup lk = fact_pdt->LookupRid(fact_rid);
  if (lk.is_insert) {
    // Post-build insert: resolve by value once, memoize by offset.
    auto it = insert_cache_.find(lk.insert_offset);
    if (it != insert_cache_.end()) {
      dim_sid = it->second;
    } else {
      Value key =
          fact_pdt->value_space().GetInsertColumn(lk.insert_offset, fk_col_);
      PDT_ASSIGN_OR_RETURN(dim_sid, ResolveDimSid(key));
      insert_cache_.emplace(lk.insert_offset, dim_sid);
    }
  } else {
    if (lk.sid >= dim_sids_.size()) {
      return Status::OutOfRange("fact rid beyond stable image");
    }
    dim_sid = dim_sids_[lk.sid];
  }
  // SID -> current RID through the dimension's PDT.
  Pdt::SidLookup dim_lk = dim_pdt->SidToRid(dim_sid);
  if (dim_lk.deleted) {
    return Status::NotFound("dimension tuple deleted");
  }
  return dim_lk.rid;
}

}  // namespace pdtstore

#include "pdt/value_space.h"

#include <cassert>

#include "util/string_util.h"
#include "pdt/update_entry.h"

namespace pdtstore {

std::string UpdateEntryToString(const UpdateEntry& e) {
  const char* tag;
  std::string mod;
  if (e.type == kTypeIns) {
    tag = "INS";
  } else if (e.type == kTypeDel) {
    tag = "DEL";
  } else {
    mod = StringPrintf("mod(c%u)", static_cast<unsigned>(e.type));
    tag = mod.c_str();
  }
  return StringPrintf("%s@%llu->%llu", tag,
                      static_cast<unsigned long long>(e.sid),
                      static_cast<unsigned long long>(e.value));
}

ValueSpace::ValueSpace(std::shared_ptr<const Schema> schema)
    : schema_(std::move(schema)) {
  insert_cols_.reserve(schema_->num_columns());
  modify_cols_.reserve(schema_->num_columns());
  for (ColumnId c = 0; c < schema_->num_columns(); ++c) {
    insert_cols_.emplace_back(schema_->column(c).type);
    modify_cols_.emplace_back(schema_->column(c).type);
  }
  delete_cols_.reserve(schema_->sort_key().size());
  for (ColumnId k : schema_->sort_key()) {
    delete_cols_.emplace_back(schema_->column(k).type);
  }
}

uint64_t ValueSpace::AddInsertTuple(const Tuple& tuple) {
  assert(tuple.size() == schema_->num_columns());
  uint64_t offset = insert_count();
  for (ColumnId c = 0; c < tuple.size(); ++c) {
    insert_cols_[c].Append(tuple[c]);
  }
  return offset;
}

void ValueSpace::SetInsertColumn(uint64_t offset, ColumnId col,
                                 const Value& v) {
  insert_cols_[col].SetValue(offset, v);
}

Value ValueSpace::GetInsertColumn(uint64_t offset, ColumnId col) const {
  return insert_cols_[col].GetValue(offset);
}

Tuple ValueSpace::GetInsertTuple(uint64_t offset) const {
  Tuple t;
  t.reserve(insert_cols_.size());
  for (const auto& col : insert_cols_) t.push_back(col.GetValue(offset));
  return t;
}

std::vector<Value> ValueSpace::GetInsertSortKey(uint64_t offset) const {
  std::vector<Value> key;
  key.reserve(schema_->sort_key().size());
  for (ColumnId k : schema_->sort_key()) {
    key.push_back(insert_cols_[k].GetValue(offset));
  }
  return key;
}

uint64_t ValueSpace::AddDeleteKey(const std::vector<Value>& sk_values) {
  assert(sk_values.size() == delete_cols_.size());
  uint64_t offset = delete_count();
  for (size_t i = 0; i < sk_values.size(); ++i) {
    delete_cols_[i].Append(sk_values[i]);
  }
  return offset;
}

std::vector<Value> ValueSpace::GetDeleteKey(uint64_t offset) const {
  std::vector<Value> key;
  key.reserve(delete_cols_.size());
  for (const auto& col : delete_cols_) key.push_back(col.GetValue(offset));
  return key;
}

uint64_t ValueSpace::AddModifyValue(ColumnId col, const Value& v) {
  uint64_t offset = modify_cols_[col].size();
  modify_cols_[col].Append(v);
  return offset;
}

void ValueSpace::SetModifyValue(ColumnId col, uint64_t offset,
                                const Value& v) {
  modify_cols_[col].SetValue(offset, v);
}

Value ValueSpace::GetModifyValue(ColumnId col, uint64_t offset) const {
  return modify_cols_[col].GetValue(offset);
}

int ValueSpace::CompareInsertKeys(uint64_t offset_a, const ValueSpace& other,
                                  uint64_t offset_b) const {
  const auto& sk = schema_->sort_key();
  for (ColumnId k : sk) {
    int c = insert_cols_[k].CompareAt(offset_a, other.insert_cols_[k],
                                      offset_b);
    if (c != 0) return c;
  }
  return 0;
}

int ValueSpace::CompareInsertKeyToKey(uint64_t offset,
                                      const std::vector<Value>& key) const {
  const auto& sk = schema_->sort_key();
  for (size_t i = 0; i < sk.size() && i < key.size(); ++i) {
    int c = insert_cols_[sk[i]].GetValue(offset).Compare(key[i]);
    if (c != 0) return c;
  }
  return 0;
}

int ValueSpace::CompareDeleteKeyToKey(uint64_t offset,
                                      const std::vector<Value>& key) const {
  for (size_t i = 0; i < delete_cols_.size() && i < key.size(); ++i) {
    int c = delete_cols_[i].GetValue(offset).Compare(key[i]);
    if (c != 0) return c;
  }
  return 0;
}

size_t ValueSpace::MemoryBytes() const {
  size_t total = 0;
  for (const auto& c : insert_cols_) total += c.ByteSize();
  for (const auto& c : delete_cols_) total += c.ByteSize();
  for (const auto& c : modify_cols_) total += c.ByteSize();
  return total;
}

void ValueSpace::Clear() {
  for (auto& c : insert_cols_) c.Clear();
  for (auto& c : delete_cols_) c.Clear();
  for (auto& c : modify_cols_) c.Clear();
}

}  // namespace pdtstore

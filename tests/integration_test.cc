// End-to-end integration tests: the full lifecycle the paper's
// architecture implies — bulk load, transactional refresh streams through
// three PDT layers, Write->Read propagation, checkpointing with WAL
// truncation, crash recovery, and analytical queries agreeing throughout.
#include <gtest/gtest.h>

#include "db/database.h"
#include "tpch/queries.h"
#include "tpch/update_stream.h"
#include "txn/txn_manager.h"
#include "util/random.h"

namespace pdtstore {
namespace {

TEST(IntegrationTest, TransactionalLifecycleWithRecovery) {
  auto schema_or = Schema::Make({{"k", TypeId::kInt64},
                                 {"payload", TypeId::kString},
                                 {"amount", TypeId::kInt64}},
                                {0});
  auto schema = std::make_shared<const Schema>(std::move(*schema_or));
  std::vector<Tuple> base;
  for (int i = 0; i < 2000; ++i) {
    base.push_back({int64_t{i * 4}, "row" + std::to_string(i),
                    int64_t{i % 100}});
  }

  Wal wal;
  TableOptions topts;
  topts.store.chunk_rows = 256;
  Table table("ledger", schema, topts);
  ASSERT_TRUE(table.Load(base).ok());
  TxnManagerOptions mopts;
  mopts.write_pdt_max_entries = 64;  // force Write->Read migration
  TxnManager mgr(&table, &wal, mopts);

  // A few hundred small transactions, some overlapping, some aborting.
  Random rng(321);
  uint64_t conflicts = 0;
  for (int round = 0; round < 60; ++round) {
    auto t1 = mgr.Begin();
    auto t2 = mgr.Begin();
    for (auto* txn : {t1.get(), t2.get()}) {
      for (int op = 0; op < 5; ++op) {
        double d = rng.NextDouble();
        int64_t k = rng.UniformRange(0, 9999);
        if (d < 0.4) {
          (void)txn->Insert({k, "new", int64_t{1}});
        } else if (d < 0.7) {
          (void)txn->DeleteByKey({Value(k / 4 * 4)});
        } else {
          (void)txn->ModifyByKey({Value(k / 4 * 4)}, 2, Value(k));
        }
      }
    }
    Status s1 = t1->Commit();
    Status s2 = t2->Commit();
    if (!s1.ok()) {
      ASSERT_EQ(s1.code(), StatusCode::kConflict);
      ++conflicts;
    }
    if (!s2.ok()) {
      ASSERT_EQ(s2.code(), StatusCode::kConflict);
      ++conflicts;
    }
  }
  // Force migration + checkpoint.
  TxnManagerOptions force;
  ASSERT_TRUE(mgr.PropagateAndMaybeCheckpoint().ok());

  // Snapshot the final image.
  auto final_txn = mgr.Begin();
  auto scan = final_txn->Scan({0, 1, 2});
  auto expected = CollectRows(scan.get());
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(final_txn->Commit().ok());
  ASSERT_TRUE(table.pdt()->CheckInvariants().ok())
      << table.pdt()->CheckInvariants().ToString();

  // Crash-recover from the WAL into a fresh replica of the *initial*
  // image and compare.
  Table replica("ledger", schema, topts);
  ASSERT_TRUE(replica.Load(base).ok());
  TxnManager replica_mgr(&replica, nullptr);
  ASSERT_TRUE(replica_mgr.Recover(wal).ok());
  auto check_txn = replica_mgr.Begin();
  auto check_scan = check_txn->Scan({0, 1, 2});
  auto got = CollectRows(check_scan.get());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, *expected);
  EXPECT_GT(mgr.committed_count(), 0u);
  EXPECT_EQ(mgr.aborted_count(), conflicts);
}

TEST(IntegrationTest, TpchEndToEndWithCheckpointMidStream) {
  // Apply stream 1, checkpoint, apply stream 2: queries must equal the
  // run that applies both streams without checkpointing.
  tpch::GenOptions gen;
  gen.scale_factor = 0.002;
  auto streams = tpch::MakeUpdateStreams(gen, 2, 0.01);
  ASSERT_TRUE(streams.ok());

  auto run = [&](bool checkpoint_between) {
    Database db;
    auto tables = tpch::GenerateInto(&db, gen, TableOptions{});
    EXPECT_TRUE(tables.ok());
    EXPECT_TRUE(tpch::ApplyUpdateStream((*streams)[0], &*tables).ok());
    if (checkpoint_between) {
      EXPECT_TRUE(tables->lineitem->Checkpoint().ok());
      EXPECT_TRUE(tables->orders->Checkpoint().ok());
    }
    EXPECT_TRUE(tpch::ApplyUpdateStream((*streams)[1], &*tables).ok());
    std::vector<tpch::QueryResult> results;
    for (int q : {1, 4, 6, 12, 13, 15, 18}) {
      auto r = tpch::RunTpchQuery(q, *tables);
      EXPECT_TRUE(r.ok());
      results.push_back(*r);
    }
    return results;
  };

  auto with_ckpt = run(true);
  auto without_ckpt = run(false);
  ASSERT_EQ(with_ckpt.size(), without_ckpt.size());
  for (size_t i = 0; i < with_ckpt.size(); ++i) {
    EXPECT_EQ(with_ckpt[i].rows, without_ckpt[i].rows) << i;
    EXPECT_NEAR(with_ckpt[i].checksum, without_ckpt[i].checksum,
                1e-6 * (1.0 + std::abs(with_ckpt[i].checksum)))
        << i;
  }
}

TEST(IntegrationTest, RepeatedCheckpointCycles) {
  // Update -> checkpoint cycles must keep the image consistent with a
  // model applied continuously.
  auto schema_or = Schema::Make(
      {{"k", TypeId::kInt64}, {"v", TypeId::kInt64}}, {0});
  auto schema = std::make_shared<const Schema>(std::move(*schema_or));
  std::vector<Tuple> image;
  for (int i = 0; i < 500; ++i) image.push_back({int64_t{i * 3}, int64_t{0}});
  TableOptions topts;
  topts.store.chunk_rows = 64;
  Table table("t", schema, topts);
  ASSERT_TRUE(table.Load(image).ok());

  Random rng(55);
  for (int cycle = 0; cycle < 6; ++cycle) {
    for (int op = 0; op < 120; ++op) {
      double d = rng.NextDouble();
      int64_t k = rng.UniformRange(0, 2000);
      if (d < 0.4) {
        Tuple t = {k, int64_t{cycle}};
        if (table.Insert(t).ok()) {
          auto it = std::lower_bound(
              image.begin(), image.end(), t,
              [&](const Tuple& a, const Tuple& b) {
                return a[0].AsInt64() < b[0].AsInt64();
              });
          image.insert(it, t);
        }
      } else if (d < 0.7 && !image.empty()) {
        size_t idx = rng.Uniform(image.size());
        ASSERT_TRUE(table.DeleteByKey({image[idx][0]}).ok());
        image.erase(image.begin() + idx);
      } else if (!image.empty()) {
        size_t idx = rng.Uniform(image.size());
        ASSERT_TRUE(
            table.ModifyByKey({image[idx][0]}, 1, Value(int64_t{op})).ok());
        image[idx][1] = Value(int64_t{op});
      }
    }
    auto scan = table.Scan({0, 1});
    auto rows = CollectRows(scan.get());
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(*rows, image) << "cycle " << cycle << " pre-checkpoint";
    ASSERT_TRUE(table.Checkpoint().ok());
    auto scan2 = table.Scan({0, 1});
    auto rows2 = CollectRows(scan2.get());
    ASSERT_TRUE(rows2.ok());
    EXPECT_EQ(*rows2, image) << "cycle " << cycle << " post-checkpoint";
    EXPECT_EQ(table.store().num_rows(), image.size());
  }
}

}  // namespace
}  // namespace pdtstore

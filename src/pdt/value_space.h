// The PDT's value space (Sec. 2.1, "Value Space"): the side tables that
// update entries reference by offset —
//   ins<col1..coln>   full newly-inserted tuples (columnar),
//   del<SK>           sort-key values of deleted stable ("ghost") tuples,
//   colk<colk>        per-column modified values.
// Offsets are stable; removing an update (e.g. delete-of-insert) leaves a
// hole that is reclaimed wholesale at Propagate/checkpoint time.
#ifndef PDTSTORE_PDT_VALUE_SPACE_H_
#define PDTSTORE_PDT_VALUE_SPACE_H_

#include <memory>
#include <vector>

#include "columnstore/column_vector.h"
#include "columnstore/schema.h"
#include "util/status.h"

namespace pdtstore {

/// Columnar side storage for one PDT.
class ValueSpace {
 public:
  explicit ValueSpace(std::shared_ptr<const Schema> schema);

  ValueSpace(const ValueSpace&) = default;
  ValueSpace& operator=(const ValueSpace&) = default;

  const Schema& schema() const { return *schema_; }
  std::shared_ptr<const Schema> shared_schema() const { return schema_; }

  // --- insert table ---

  /// Appends a full tuple; returns its offset.
  uint64_t AddInsertTuple(const Tuple& tuple);
  /// In-place modify of one column of an inserted tuple.
  void SetInsertColumn(uint64_t offset, ColumnId col, const Value& v);
  Value GetInsertColumn(uint64_t offset, ColumnId col) const;
  Tuple GetInsertTuple(uint64_t offset) const;
  /// SK values (in sort-key order) of an inserted tuple.
  std::vector<Value> GetInsertSortKey(uint64_t offset) const;

  // --- delete table ---

  /// Appends the SK of a deleted stable tuple; returns its offset.
  uint64_t AddDeleteKey(const std::vector<Value>& sk_values);
  std::vector<Value> GetDeleteKey(uint64_t offset) const;

  // --- per-column modify tables ---

  /// Appends a modified value for column `col`; returns its offset.
  uint64_t AddModifyValue(ColumnId col, const Value& v);
  void SetModifyValue(ColumnId col, uint64_t offset, const Value& v);
  Value GetModifyValue(ColumnId col, uint64_t offset) const;

  /// Raw insert-table columns (hot path of MergeScan materialization).
  const ColumnVector& insert_column(ColumnId col) const {
    return insert_cols_[col];
  }

  /// Raw per-column modify table (hot path of MergeScan patching:
  /// typed SetFrom instead of boxing each value through Value).
  const ColumnVector& modify_column(ColumnId col) const {
    return modify_cols_[col];
  }

  /// Lexicographic comparison helpers used by AddInsert positioning and
  /// Serialize (INS-INS ordering).
  int CompareInsertKeys(uint64_t offset_a, const ValueSpace& other,
                        uint64_t offset_b) const;
  int CompareInsertKeyToKey(uint64_t offset,
                            const std::vector<Value>& key) const;
  int CompareDeleteKeyToKey(uint64_t offset,
                            const std::vector<Value>& key) const;

  size_t insert_count() const {
    return insert_cols_.empty() ? 0 : insert_cols_[0].size();
  }
  size_t delete_count() const {
    return delete_cols_.empty() ? 0 : delete_cols_[0].size();
  }

  /// Approximate heap footprint.
  size_t MemoryBytes() const;

  void Clear();

 private:
  std::shared_ptr<const Schema> schema_;
  std::vector<ColumnVector> insert_cols_;  // one per schema column
  std::vector<ColumnVector> delete_cols_;  // one per SK column
  std::vector<ColumnVector> modify_cols_;  // one per schema column
};

}  // namespace pdtstore

#endif  // PDTSTORE_PDT_VALUE_SPACE_H_

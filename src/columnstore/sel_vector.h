// Selection vector: the index list that ties the engine's typed kernels
// together (MonetDB/X100 style). A predicate or join produces a
// KeepBitmap over a source batch; SelVector::FromKeep expands it to row
// indices once, and gather kernels then copy whole columns at once,
// dispatching on TypeId once per batch instead of once per value.
//
// == Kernel contract (with KeepBitmap, see keep_bitmap.h) ==
//
// * A SelVector lists row indices in output order; duplicates (join
//   matches) and non-monotonic order (sorts) are allowed. Indices are
//   32-bit: a selection always targets an in-memory batch or
//   materialized pipeline intermediate, far below 2^32 rows.
// * FromKeep(KeepBitmap) is the only bitmap -> selection conversion on
//   the hot path. It walks the bitmap word-at-a-time: all-zeros words
//   are skipped with one compare, all-ones words append 64 consecutive
//   indices without touching individual bits (valid because tail bits
//   past size() are zero by the bitmap contract, so a full word is
//   always 64 real rows), and mixed words extract set bits with
//   ctz + clear-lowest. Cost scales with words plus survivors, not
//   rows.
// * Fusion rule: predicates combine on the bitmap (word-wise AND/OR),
//   never on selections — expand with FromKeep exactly once, after the
//   last predicate folded in.
// * The byte-per-row overload FromKeep(const uint8_t*, n) is the
//   pre-bitmap reference implementation; it survives for differential
//   tests and the byte-vs-bitmap bench ablation and is not called by
//   any operator.
#ifndef PDTSTORE_COLUMNSTORE_SEL_VECTOR_H_
#define PDTSTORE_COLUMNSTORE_SEL_VECTOR_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "columnstore/keep_bitmap.h"

namespace pdtstore {

/// Row indices selected from a source batch, in output order (may repeat
/// for joins, may be non-monotonic for sorts).
class SelVector {
 public:
  SelVector() = default;

  /// Expands a keep bitmap into the selection of its set rows, ascending.
  /// Word-at-a-time: zero words skip, all-ones words bulk-append 64
  /// consecutive indices, mixed words run a ctz loop over set bits.
  static SelVector FromKeep(const KeepBitmap& keep) {
    SelVector sel;
    const size_t n = keep.size();
    sel.idx_.resize(n);
    uint32_t* out = sel.idx_.data();
    size_t m = 0;
    const uint64_t* words = keep.words();
    const size_t num_words = keep.num_words();
    for (size_t w = 0; w < num_words; ++w) {
      uint64_t word = words[w];
      if (word == 0) continue;
      const uint32_t base = static_cast<uint32_t>(w << 6);
      if (word == ~uint64_t{0}) {
        for (uint32_t b = 0; b < 64; ++b) out[m + b] = base + b;
        m += 64;
        continue;
      }
      while (word != 0) {
        out[m++] = base + static_cast<uint32_t>(std::countr_zero(word));
        word &= word - 1;  // clear lowest set bit
      }
    }
    sel.idx_.resize(m);
    return sel;
  }

  /// Reference path (byte-per-row keep): one branchless pass
  /// (unconditional write, conditional advance). Kept for differential
  /// tests and the bench ablation; operators use the bitmap overload.
  static SelVector FromKeep(const uint8_t* keep, size_t n) {
    SelVector sel;
    sel.idx_.resize(n);
    size_t m = 0;
    for (size_t i = 0; i < n; ++i) {
      sel.idx_[m] = static_cast<uint32_t>(i);
      m += (keep[i] != 0);
    }
    sel.idx_.resize(m);
    return sel;
  }

  void clear() { idx_.clear(); }
  void reserve(size_t n) { idx_.reserve(n); }
  void push_back(uint32_t i) { idx_.push_back(i); }

  size_t size() const { return idx_.size(); }
  bool empty() const { return idx_.empty(); }
  uint32_t operator[](size_t i) const { return idx_[i]; }
  const uint32_t* data() const { return idx_.data(); }

  std::vector<uint32_t>& indices() { return idx_; }
  const std::vector<uint32_t>& indices() const { return idx_; }

 private:
  std::vector<uint32_t> idx_;
};

}  // namespace pdtstore

#endif  // PDTSTORE_COLUMNSTORE_SEL_VECTOR_H_

#include "exec/sort.h"

#include <algorithm>
#include <numeric>

#include "exec/operator.h"

namespace pdtstore {

int CompareRowsByKeys(const std::vector<SortKey>& keys, const Batch& ab,
                      size_t a, const Batch& bb, size_t b) {
  for (const SortKey& k : keys) {
    int c = ab.column(k.idx).CompareAt(a, bb.column(k.idx), b);
    if (c != 0) return k.descending ? -c : c;
  }
  return 0;
}

// ---------------------------------------------------------------------
// RunMerger.
//
// Tree layout: a heap-like array of 2k nodes — leaves k..2k-1 carry run
// r at node r+k, internal nodes 1..k-1 each store the *loser* of the
// match between their subtrees, winner_ the overall champion. Valid for
// any k (leaves may straddle two depths; the parent relation n/2 still
// forms a tournament). A pop replays only the popped run's leaf-to-root
// path: every other contender's best representative sits on that path.
// ---------------------------------------------------------------------

RunMerger::RunMerger(std::vector<SortedRun> runs, std::vector<SortKey> keys,
                     size_t limit)
    : keys_(std::move(keys)), limit_(limit) {
  for (SortedRun& r : runs) {
    if (r.rows.num_rows() > 0) runs_.push_back(std::move(r));
  }
  const size_t k = runs_.size();
  cursor_.assign(k, 0);
  if (k == 0) return;
  // Bottom-up tournament: win[n] is the winner of node n's subtree;
  // internal nodes keep the loser of their match.
  tree_.assign(k, kSentinel);
  std::vector<size_t> win(2 * k);
  for (size_t r = 0; r < k; ++r) win[r + k] = r;
  for (size_t n = k - 1; n >= 1; --n) {
    const size_t a = win[2 * n], b = win[2 * n + 1];
    const bool b_wins = RunLess(b, a);
    win[n] = b_wins ? b : a;
    tree_[n] = b_wins ? a : b;
  }
  winner_ = k == 1 ? 0 : win[1];
}

bool RunMerger::RunLess(size_t a, size_t b) const {
  const bool ea = a == kSentinel || cursor_[a] >= runs_[a].rows.num_rows();
  const bool eb = b == kSentinel || cursor_[b] >= runs_[b].rows.num_rows();
  if (ea) return false;
  if (eb) return true;
  int c = CompareRowsByKeys(keys_, runs_[a].rows, cursor_[a], runs_[b].rows,
                            cursor_[b]);
  if (c != 0) return c < 0;
  // Key tie: source order decides (tags are unique, so never equal).
  return runs_[a].seq[cursor_[a]] < runs_[b].seq[cursor_[b]];
}

void RunMerger::Adjust(size_t r) {
  const size_t k = runs_.size();
  size_t winner = r;
  for (size_t node = (r + k) / 2; node >= 1; node /= 2) {
    if (RunLess(tree_[node], winner)) std::swap(tree_[node], winner);
  }
  winner_ = winner;
}

bool RunMerger::Next(Batch* out, size_t max_rows) {
  if (runs_.empty()) return false;
  if (limit_ > 0) max_rows = std::min(max_rows, limit_ - emitted_);
  if (max_rows == 0) return false;
  out->ResetLike(runs_[0].rows);
  size_t produced = 0;
  while (produced < max_rows) {
    const size_t w = winner_;
    if (w == kSentinel || cursor_[w] >= runs_[w].rows.num_rows()) break;
    // Pop consecutive winners from run w as one range: each pop is a
    // leaf-to-root replay, the rows append with one TypeId dispatch
    // per column instead of one per row.
    const size_t start = cursor_[w];
    do {
      ++cursor_[w];
      Adjust(w);
      // winner_ can stay w after w exhausts (when every run is done the
      // replay has nothing better), so re-check the cursor too.
    } while (winner_ == w && cursor_[w] < runs_[w].rows.num_rows() &&
             produced + (cursor_[w] - start) < max_rows);
    const size_t end = cursor_[w];
    for (size_t c = 0; c < out->num_columns(); ++c) {
      out->column(c).AppendRange(runs_[w].rows.column(c), start, end);
    }
    produced += end - start;
  }
  emitted_ += produced;
  return produced > 0;
}

// ---------------------------------------------------------------------
// SortNode.
// ---------------------------------------------------------------------

StatusOr<bool> SortNode::Next(Batch* out, size_t max_rows) {
  if (!built_) {
    PDT_ASSIGN_OR_RETURN(all_, MaterializeAll(input_.get()));
    // Charge the materialization (+4-byte order index per row) against
    // the query's budget; an over-budget sort fails here with
    // ResourceExhausted and the lease destructor releases the charge.
    PDT_RETURN_NOT_OK(
        lease_.Charge(all_.ByteSize() + 4 * all_.num_rows()));
    order_.indices().resize(all_.num_rows());
    std::iota(order_.indices().begin(), order_.indices().end(), 0);
    std::stable_sort(order_.indices().begin(), order_.indices().end(),
                     [&](uint32_t a, uint32_t b) {
      return CompareRowsByKeys(keys_, all_, a, all_, b) < 0;
    });
    if (limit_ > 0 && order_.size() > limit_) {
      order_.indices().resize(limit_);
      // Top-k: compact to the surviving rows and drop the full input —
      // a long-lived cursor must not pin the whole materialization for
      // `limit` rows.
      Batch top;
      top.set_column_ids(all_.column_ids());
      for (size_t c = 0; c < all_.num_columns(); ++c) {
        top.columns().emplace_back(all_.column(c).type());
      }
      top.AppendGather(all_, order_);
      all_ = std::move(top);
      std::iota(order_.indices().begin(), order_.indices().end(), 0);
    }
    built_ = true;
  }
  if (pos_ >= order_.size()) return false;
  const size_t end = std::min(order_.size(), pos_ + max_rows);
  // Gather the slice straight out of the materialized input: no second
  // full-size sorted copy, and `out`/`slice_` storage is reused across
  // pulls.
  slice_.indices().assign(order_.indices().begin() + pos_,
                          order_.indices().begin() + end);
  out->ResetLike(all_);
  out->AppendGather(all_, slice_);
  pos_ = end;
  return true;
}

}  // namespace pdtstore

#include "exec/operator.h"

namespace pdtstore {

StatusOr<bool> VectorSource::Next(Batch* out, size_t max_rows) {
  if (pos_ >= batch_.num_rows()) return false;
  size_t end = std::min(batch_.num_rows(), pos_ + max_rows);
  out->ResetLike(batch_);
  out->set_start_rid(batch_.start_rid() + pos_);
  for (size_t c = 0; c < batch_.num_columns(); ++c) {
    out->column(c).AppendRange(batch_.column(c), pos_, end);
  }
  pos_ = end;
  return true;
}

StatusOr<Batch> MaterializeAll(BatchSource* source, size_t batch_size) {
  Batch all;
  Batch batch;
  bool first = true;
  while (true) {
    PDT_ASSIGN_OR_RETURN(bool more, source->Next(&batch, batch_size));
    if (!more) break;
    if (first) {
      all = batch;
      first = false;
      continue;
    }
    for (size_t c = 0; c < all.num_columns(); ++c) {
      all.column(c).AppendRange(batch.column(c), 0, batch.num_rows());
    }
  }
  return all;
}

}  // namespace pdtstore

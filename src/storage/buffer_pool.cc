#include "storage/buffer_pool.h"

namespace pdtstore {

StatusOr<std::shared_ptr<const ColumnVector>> BufferPool::Fetch(
    uint64_t key, const Chunk& chunk, bool keep_encoded) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      lru_.erase(it->second.lru_it);
      lru_.push_front(key);
      it->second.lru_it = lru_.begin();
      return it->second.data;
    }
  }
  // Miss: simulated disk read of the encoded payload, then decode. The
  // decode runs unlocked so concurrent scan workers decode distinct
  // chunks in parallel; a racing decode of the same chunk is resolved
  // below (first insert wins, the loser's copy is dropped).
  auto decoded = std::make_shared<ColumnVector>();
  PDT_RETURN_NOT_OK(DecodeChunk(chunk, decoded.get(), keep_encoded));
  size_t bytes = decoded->ByteSize();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Lost the decode race: serve the winner's entry as a hit,
    // including the LRU touch.
    hits_.fetch_add(1, std::memory_order_relaxed);
    lru_.erase(it->second.lru_it);
    lru_.push_front(key);
    it->second.lru_it = lru_.begin();
    return it->second.data;
  }
  bytes_read_.fetch_add(chunk.DiskBytes(), std::memory_order_relaxed);
  chunks_read_.fetch_add(1, std::memory_order_relaxed);
  lru_.push_front(key);
  entries_[key] = Entry{decoded, bytes, lru_.begin()};
  cached_bytes_ += bytes;
  MaybeEvict();
  return std::shared_ptr<const ColumnVector>(decoded);
}

void BufferPool::EvictAll() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  cached_bytes_ = 0;
}

void BufferPool::MaybeEvict() {
  if (capacity_bytes_ == 0) return;
  while (cached_bytes_ > capacity_bytes_ && lru_.size() > 1) {
    uint64_t victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    if (it != entries_.end()) {
      cached_bytes_ -= it->second.bytes;
      entries_.erase(it);
    }
  }
}

}  // namespace pdtstore

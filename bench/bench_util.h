// Shared helpers for the figure-reproduction benchmarks: synthetic table
// builders (integer / string / multi-column sort keys), update-load
// application mirrored across PDT and VDT tables, and timing/printing.
#ifndef PDTSTORE_BENCH_BENCH_UTIL_H_
#define PDTSTORE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "db/table.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace pdtstore {
namespace bench {

/// Zero-padded decimal rendering, so string keys sort like their numeric
/// counterparts.
inline std::string PaddedKey(int64_t v, int width = 12) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "k%0*lld", width,
                static_cast<long long>(v));
  return buf;
}

/// Builds a table of `payload_cols` int64 payload columns plus `key_cols`
/// leading sort-key columns (int64 or string). Key values are i*gap per
/// row (gap > 1 leaves room for inserts); multi-column keys split the
/// value into digits so prefix columns carry few distinct values and the
/// value-based merge must compare several columns.
struct SyntheticSpec {
  uint64_t rows = 1'000'000;
  int key_cols = 1;
  bool string_keys = false;
  int payload_cols = 4;
  int64_t key_gap = 4;
  DeltaBackend backend = DeltaBackend::kPdt;
  bool compression = false;
  size_t chunk_rows = 65536;
};

inline std::vector<Value> MakeKey(const SyntheticSpec& spec, int64_t raw) {
  std::vector<Value> key;
  key.reserve(spec.key_cols);
  // Split `raw` into key_cols digits, most significant first, so that
  // multi-column comparisons are exercised on ties.
  int64_t divisor = 1;
  for (int c = 1; c < spec.key_cols; ++c) divisor *= 1000;
  int64_t rest = raw;
  for (int c = 0; c < spec.key_cols; ++c) {
    int64_t part = rest / divisor;
    rest %= divisor;
    divisor = divisor >= 1000 ? divisor / 1000 : 1;
    if (spec.string_keys) {
      key.emplace_back(PaddedKey(part, c == 0 ? 12 : 4));
    } else {
      key.emplace_back(part);
    }
  }
  return key;
}

inline std::unique_ptr<Table> BuildSynthetic(const SyntheticSpec& spec,
                                             std::shared_ptr<BufferPool> pool
                                             = nullptr) {
  std::vector<ColumnDef> cols;
  std::vector<ColumnId> sk;
  for (int c = 0; c < spec.key_cols; ++c) {
    cols.push_back({"k" + std::to_string(c),
                    spec.string_keys ? TypeId::kString : TypeId::kInt64});
    sk.push_back(static_cast<ColumnId>(c));
  }
  for (int c = 0; c < spec.payload_cols; ++c) {
    cols.push_back({"v" + std::to_string(c), TypeId::kInt64});
  }
  auto schema_or = Schema::Make(std::move(cols), std::move(sk));
  auto schema = std::make_shared<const Schema>(std::move(*schema_or));

  TableOptions opts;
  opts.backend = spec.backend;
  opts.store.compression = spec.compression;
  opts.store.chunk_rows = spec.chunk_rows;
  auto table = std::make_unique<Table>("bench", schema, opts, pool);

  Random rng(7);
  std::vector<ColumnVector> data;
  for (ColumnId c = 0; c < schema->num_columns(); ++c) {
    data.emplace_back(schema->column(c).type);
    data.back().Reserve(spec.rows);
  }
  for (uint64_t i = 0; i < spec.rows; ++i) {
    std::vector<Value> key =
        MakeKey(spec, static_cast<int64_t>(i) * spec.key_gap);
    for (int c = 0; c < spec.key_cols; ++c) data[c].Append(key[c]);
    for (int c = 0; c < spec.payload_cols; ++c) {
      data[spec.key_cols + c].ints().push_back(
          static_cast<int64_t>(rng.Next() & 0xffffff));
    }
  }
  Status st = table->LoadColumns(std::move(data));
  if (!st.ok()) {
    std::fprintf(stderr, "bench load failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  return table;
}

/// One logical update for mirrored application to several tables.
struct BenchUpdate {
  enum Kind { kInsert, kDelete, kModify } kind;
  Tuple tuple;             // kInsert
  std::vector<Value> key;  // kDelete / kModify
  ColumnId col = 0;        // kModify
  Value value;             // kModify
};

/// Generates `count` updates (1/3 insert, 1/3 delete, 1/3 modify of a
/// payload column) against the synthetic key space.
inline std::vector<BenchUpdate> MakeUpdates(const SyntheticSpec& spec,
                                            uint64_t count, uint64_t seed) {
  Random rng(seed);
  std::vector<BenchUpdate> updates;
  updates.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    double dice = rng.NextDouble();
    if (dice < 1.0 / 3.0) {
      // Insert at an off-grid key (gap slots are never in the base data).
      int64_t raw =
          static_cast<int64_t>(rng.Uniform(spec.rows)) * spec.key_gap + 1 +
          static_cast<int64_t>(rng.Uniform(spec.key_gap - 1));
      BenchUpdate u;
      u.kind = BenchUpdate::kInsert;
      std::vector<Value> key = MakeKey(spec, raw);
      u.tuple.assign(key.begin(), key.end());
      for (int c = 0; c < spec.payload_cols; ++c) {
        u.tuple.emplace_back(static_cast<int64_t>(rng.Next() & 0xffffff));
      }
      updates.push_back(std::move(u));
    } else if (dice < 2.0 / 3.0) {
      BenchUpdate u;
      u.kind = BenchUpdate::kDelete;
      u.key = MakeKey(spec, static_cast<int64_t>(rng.Uniform(spec.rows)) *
                                spec.key_gap);
      updates.push_back(std::move(u));
    } else {
      BenchUpdate u;
      u.kind = BenchUpdate::kModify;
      u.key = MakeKey(spec, static_cast<int64_t>(rng.Uniform(spec.rows)) *
                                spec.key_gap);
      u.col = static_cast<ColumnId>(spec.key_cols +
                                    rng.Uniform(spec.payload_cols));
      u.value = Value(static_cast<int64_t>(rng.Next() & 0xffffff));
      updates.push_back(std::move(u));
    }
  }
  return updates;
}

/// Applies updates, ignoring duplicate-insert / missing-key rejections
/// (which affect both backends identically).
inline void ApplyUpdates(Table* table,
                         const std::vector<BenchUpdate>& updates) {
  for (const BenchUpdate& u : updates) {
    switch (u.kind) {
      case BenchUpdate::kInsert:
        (void)table->Insert(u.tuple);
        break;
      case BenchUpdate::kDelete:
        (void)table->DeleteByKey(u.key);
        break;
      case BenchUpdate::kModify:
        (void)table->ModifyByKey(u.key, u.col, u.value);
        break;
    }
  }
}

/// Scans `projection` to completion; returns elapsed milliseconds.
/// `scan_opts` selects serial vs morsel-parallel execution.
inline double TimedScan(const Table& table,
                        std::vector<ColumnId> projection,
                        const ScanOptions& scan_opts = {}) {
  Stopwatch sw;
  auto src = table.Scan(std::move(projection), nullptr, scan_opts);
  Batch batch;
  uint64_t rows = 0;
  while (true) {
    auto more = src->Next(&batch, kDefaultBatchSize);
    if (!more.ok() || !*more) break;
    rows += batch.num_rows();
  }
  (void)rows;
  return sw.ElapsedMillis();
}

/// Accumulates named benchmark metrics and renders them as a
/// machine-readable JSON file, e.g.
///   {"benches": [{"name": "filter_compact_1M",
///                 "metrics": {"baseline_mrps": 85.1, ...}}]}
/// Used by bench_exec_kernels (BENCH_exec.json) and bench_fig17.
class JsonResultWriter {
 public:
  /// Records `key` = `value` under benchmark `bench` (created on first
  /// use, insertion-ordered).
  void Metric(const std::string& bench, const std::string& key,
              double value) {
    for (auto& [name, metrics] : benches_) {
      if (name == bench) {
        metrics.emplace_back(key, value);
        return;
      }
    }
    benches_.emplace_back(bench,
                          std::vector<std::pair<std::string, double>>{
                              {key, value}});
  }

  std::string ToJson() const {
    std::string out = "{\"benches\": [";
    for (size_t b = 0; b < benches_.size(); ++b) {
      if (b) out += ", ";
      out += "{\"name\": \"" + benches_[b].first + "\", \"metrics\": {";
      const auto& metrics = benches_[b].second;
      for (size_t m = 0; m < metrics.size(); ++m) {
        if (m) out += ", ";
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6g", metrics[m].second);
        out += "\"" + metrics[m].first + "\": " + buf;
      }
      out += "}}";
    }
    out += "]}\n";
    return out;
  }

  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::string json = ToJson();
    size_t written = std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    return written == json.size();
  }

 private:
  std::vector<std::pair<std::string, std::vector<std::pair<std::string, double>>>>
      benches_;
};

/// Simple command-line flag lookup: --name=value.
inline std::string FlagValue(int argc, char** argv, const std::string& name,
                             const std::string& def) {
  std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return def;
}

}  // namespace bench
}  // namespace pdtstore

#endif  // PDTSTORE_BENCH_BENCH_UTIL_H_

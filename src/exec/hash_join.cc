#include "exec/hash_join.h"

#include "exec/operator.h"

namespace pdtstore {

JoinTable JoinTable::Build(Batch build_rows, std::vector<size_t> keys) {
  JoinTable t;
  t.rows = std::move(build_rows);
  t.key_cols = std::move(keys);
  // An exhausted build side materializes to a column-less batch; leave
  // the table empty rather than indexing its key columns.
  const size_t n = t.rows.num_rows();
  if (n > 0) {
    std::vector<uint64_t> hashes(n, kHashSeed);
    for (size_t k : t.key_cols) {
      t.rows.column(k).HashColumn(hashes.data());
    }
    t.buckets.reserve(n);
    for (size_t row = 0; row < n; ++row) {
      t.buckets[hashes[row]].push_back(static_cast<uint32_t>(row));
    }
  }
  return t;
}

bool JoinTable::KeysEqual(const std::vector<size_t>& probe_keys,
                          const Batch& probe, size_t probe_row,
                          size_t build_row) const {
  for (size_t k = 0; k < probe_keys.size(); ++k) {
    if (rows.column(key_cols[k])
            .CompareAt(build_row, probe.column(probe_keys[k]),
                       probe_row) != 0) {
      return false;
    }
  }
  return true;
}

void ProbeJoinBatch(const JoinTable& table,
                    const std::vector<size_t>& probe_keys, JoinKind kind,
                    const Batch& in, Batch* out, JoinProbeScratch* scratch) {
  const size_t n = in.num_rows();
  if (!scratch->proto_init) {
    std::vector<ColumnId> ids;
    for (size_t c = 0; c < in.num_columns(); ++c) {
      ids.push_back(static_cast<ColumnId>(c));
      scratch->out_proto.columns().emplace_back(in.column(c).type());
    }
    if (kind == JoinKind::kInner) {
      for (size_t c = 0; c < table.rows.num_columns(); ++c) {
        ids.push_back(static_cast<ColumnId>(in.num_columns() + c));
        scratch->out_proto.columns().emplace_back(
            table.rows.column(c).type());
      }
    }
    scratch->out_proto.set_column_ids(std::move(ids));
    scratch->proto_init = true;
  }
  out->ResetLike(scratch->out_proto);

  // One bulk hash pass per key column, then per-row bucket probes.
  scratch->hashes.assign(n, kHashSeed);
  for (size_t k : probe_keys) {
    in.column(k).HashColumn(scratch->hashes.data());
  }

  if (kind == JoinKind::kInner) {
    scratch->probe_sel.clear();
    scratch->build_sel.clear();
    for (size_t row = 0; row < n; ++row) {
      auto it = table.buckets.find(scratch->hashes[row]);
      if (it == table.buckets.end()) continue;
      for (uint32_t b : it->second) {
        if (table.KeysEqual(probe_keys, in, row, b)) {
          scratch->probe_sel.push_back(static_cast<uint32_t>(row));
          scratch->build_sel.push_back(b);
        }
      }
    }
    for (size_t c = 0; c < in.num_columns(); ++c) {
      out->column(c).AppendGather(in.column(c), scratch->probe_sel);
    }
    for (size_t c = 0; c < table.rows.num_columns(); ++c) {
      out->column(in.num_columns() + c)
          .AppendGather(table.rows.column(c), scratch->build_sel);
    }
  } else {
    // Semi/anti: mark matches, then compact survivors column-wise.
    const uint8_t want = kind == JoinKind::kLeftSemi ? 1 : 0;
    scratch->keep.assign(n, 0);
    for (size_t row = 0; row < n; ++row) {
      uint8_t matched = 0;
      auto it = table.buckets.find(scratch->hashes[row]);
      if (it != table.buckets.end()) {
        for (uint32_t b : it->second) {
          if (table.KeysEqual(probe_keys, in, row, b)) {
            matched = 1;
            break;
          }
        }
      }
      scratch->keep[row] = (matched == want);
    }
    out->AppendFiltered(in, scratch->keep.data());
  }
}

// ---------------------------------------------------------------------
// JoinBuildHandle.
// ---------------------------------------------------------------------

JoinBuildHandle::JoinBuildHandle(std::unique_ptr<BatchSource> build_source,
                                 std::vector<size_t> build_keys)
    : build_keys_(std::move(build_keys)) {
  // Shared-ptr capture: std::function requires copyability.
  std::shared_ptr<BatchSource> src = std::move(build_source);
  producer_ = [src]() { return MaterializeAll(src.get()); };
}

JoinBuildHandle::JoinBuildHandle(std::function<StatusOr<Batch>()> producer,
                                 std::vector<size_t> build_keys)
    : producer_(std::move(producer)), build_keys_(std::move(build_keys)) {}

StatusOr<const JoinTable*> JoinBuildHandle::Resolve() {
  if (!resolved_) {
    resolved_ = true;
    StatusOr<Batch> rows = producer_();
    producer_ = nullptr;  // release the build source / pipeline
    if (!rows.ok()) {
      error_ = rows.status();
    } else {
      table_ = JoinTable::Build(std::move(*rows), build_keys_);
    }
  }
  if (!error_.ok()) return error_;
  return &table_;
}

// ---------------------------------------------------------------------
// HashJoinNode.
// ---------------------------------------------------------------------

HashJoinNode::HashJoinNode(std::unique_ptr<BatchSource> probe,
                           std::unique_ptr<BatchSource> build,
                           std::vector<size_t> probe_keys,
                           std::vector<size_t> build_keys, JoinKind kind)
    : probe_(std::move(probe)),
      build_(std::make_shared<JoinBuildHandle>(std::move(build),
                                               std::move(build_keys))),
      probe_keys_(std::move(probe_keys)),
      kind_(kind) {}

HashJoinNode::HashJoinNode(std::unique_ptr<BatchSource> probe,
                           std::shared_ptr<JoinBuildHandle> build,
                           std::vector<size_t> probe_keys, JoinKind kind)
    : probe_(std::move(probe)),
      build_(std::move(build)),
      probe_keys_(std::move(probe_keys)),
      kind_(kind) {}

StatusOr<bool> HashJoinNode::Next(Batch* out, size_t max_rows) {
  if (table_ == nullptr) {
    PDT_ASSIGN_OR_RETURN(table_, build_->Resolve());
  }
  Batch in;
  while (true) {
    PDT_ASSIGN_OR_RETURN(bool more, probe_->Next(&in, max_rows));
    if (!more) return false;
    ProbeJoinBatch(*table_, probe_keys_, kind_, in, out, &scratch_);
    if (out->num_rows() > 0) return true;
  }
}

}  // namespace pdtstore

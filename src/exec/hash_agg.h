// HashAggNode: grouped aggregation (SUM / COUNT / MIN / MAX / AVG) with
// hash-partitioned groups, materialized on first pull.
#ifndef PDTSTORE_EXEC_HASH_AGG_H_
#define PDTSTORE_EXEC_HASH_AGG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "columnstore/batch.h"

namespace pdtstore {

/// Aggregate function kinds.
enum class AggKind { kSum, kCount, kMin, kMax, kAvg };

/// One aggregate: fn over input column `input_idx` (ignored for COUNT).
struct AggSpec {
  AggKind kind;
  size_t input_idx = 0;
};

/// Grouped aggregation. Output columns: the group-by columns (in the
/// given order) followed by one double/int64 column per aggregate
/// (COUNT -> int64, others -> double).
class HashAggNode : public BatchSource {
 public:
  HashAggNode(std::unique_ptr<BatchSource> input,
              std::vector<size_t> group_by, std::vector<AggSpec> aggs)
      : input_(std::move(input)),
        group_by_(std::move(group_by)),
        aggs_(std::move(aggs)) {}

  StatusOr<bool> Next(Batch* out, size_t max_rows) override;

 private:
  Status BuildResult();

  std::unique_ptr<BatchSource> input_;
  std::vector<size_t> group_by_;
  std::vector<AggSpec> aggs_;
  bool built_ = false;
  Batch result_;
  std::unique_ptr<BatchSource> emitter_;
};

}  // namespace pdtstore

#endif  // PDTSTORE_EXEC_HASH_AGG_H_

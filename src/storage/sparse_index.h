// Sparse index (zone map) on the stable table's sort key: per chunk, the
// min/max SK prefix and the starting SID. Because PDT SIDs respect ghost
// tuples (Sec. 2, "Respecting Deletes"), an index built on TABLE0 stays
// valid ("stale") across any number of PDT updates — a property this
// module's tests verify.
#ifndef PDTSTORE_STORAGE_SPARSE_INDEX_H_
#define PDTSTORE_STORAGE_SPARSE_INDEX_H_

#include <vector>

#include "columnstore/schema.h"
#include "storage/column_store.h"

namespace pdtstore {

/// Half-open SID range [begin, end).
struct SidRange {
  Sid begin = 0;
  Sid end = 0;
  bool operator==(const SidRange&) const = default;
};

/// Zone-map entry of one chunk.
struct ZoneEntry {
  Sid start_sid = 0;
  Sid end_sid = 0;                 ///< exclusive
  std::vector<Value> min_key;      ///< SK prefix min within chunk
  std::vector<Value> max_key;      ///< SK prefix max within chunk
};

/// Sparse min/max index over the SK of one stable table image.
class SparseIndex {
 public:
  SparseIndex() = default;

  /// Builds from a loaded ColumnStore by decoding the SK columns once.
  static StatusOr<SparseIndex> Build(const ColumnStore& store);

  /// SID ranges possibly containing keys in [lo, hi] (prefix comparison,
  /// both bounds inclusive; empty `lo`/`hi` = unbounded on that side).
  /// Adjacent qualifying chunks are coalesced. The result is a superset
  /// of the true range: zone maps are conservative.
  ///
  /// Invariant (load-bearing): the returned ranges are non-empty, sorted
  /// ascending and pairwise disjoint — range[i].end <= range[i+1].begin.
  /// StableScanSource's range walk, the VDT merge's per-range key fences
  /// and SplitIntoMorsels (exec/parallel_scan.h) all depend on it; the
  /// morsel splitter asserts it in debug builds.
  std::vector<SidRange> LookupRange(const std::vector<Value>& lo,
                                    const std::vector<Value>& hi) const;

  /// First SID at which a tuple with SK >= key could reside (start of the
  /// first chunk whose max >= key); num_rows if none.
  Sid LowerBoundSid(const std::vector<Value>& key) const;

  const std::vector<ZoneEntry>& entries() const { return entries_; }
  uint64_t num_rows() const { return num_rows_; }

 private:
  // Compares a zone key against a (possibly shorter) prefix bound.
  static int ComparePrefix(const std::vector<Value>& zone_key,
                           const std::vector<Value>& bound);

  std::vector<ZoneEntry> entries_;
  uint64_t num_rows_ = 0;
};

}  // namespace pdtstore

#endif  // PDTSTORE_STORAGE_SPARSE_INDEX_H_

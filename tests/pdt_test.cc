// Core PDT tests: the paper's running example (Figures 1-13), update
// chain semantics (in-place rules of Sec. 2.1), SID/RID mapping, and
// randomized property tests against a row-store reference model.
#include "pdt/pdt.h"

#include <gtest/gtest.h>

#include "pdt/merge_scan.h"
#include "test_util.h"
#include "util/random.h"

namespace pdtstore {
namespace {

using testutil::AllColumns;
using testutil::BuildStore;
using testutil::InventoryRows;
using testutil::InventorySchema;
using testutil::MergedRows;
using testutil::ModelTable;

class PdtPaperExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = InventorySchema();
    store_ = BuildStore(schema_, InventoryRows());
    ASSERT_NE(store_, nullptr);
    model_ = std::make_unique<ModelTable>(schema_, InventoryRows());
  }

  // Applies BATCH1 of Figure 2.
  void ApplyBatch1() {
    ASSERT_TRUE(model_->Insert({"Berlin", "table", "Y", 10}).ok());
    ASSERT_TRUE(model_->Insert({"Berlin", "cloth", "Y", 5}).ok());
    ASSERT_TRUE(model_->Insert({"Berlin", "chair", "Y", 20}).ok());
  }

  // Applies BATCH2 of Figure 6.
  void ApplyBatch2() {
    Rid rid = 0;
    ASSERT_TRUE(model_->FindKey({Value("Berlin"), Value("cloth")}, &rid));
    ASSERT_TRUE(model_->ModifyAt(rid, 3, Value(1)).ok());
    ASSERT_TRUE(model_->FindKey({Value("London"), Value("stool")}, &rid));
    ASSERT_TRUE(model_->ModifyAt(rid, 3, Value(9)).ok());
    ASSERT_TRUE(model_->FindKey({Value("Berlin"), Value("table")}, &rid));
    ASSERT_TRUE(model_->DeleteAt(rid).ok());
    ASSERT_TRUE(model_->FindKey({Value("Paris"), Value("rug")}, &rid));
    ASSERT_TRUE(model_->DeleteAt(rid).ok());
  }

  // Applies BATCH3 of Figure 10.
  void ApplyBatch3() {
    ASSERT_TRUE(model_->Insert({"Paris", "rack", "Y", 4}).ok());
    ASSERT_TRUE(model_->Insert({"London", "rack", "Y", 4}).ok());
    ASSERT_TRUE(model_->Insert({"Berlin", "rack", "Y", 4}).ok());
  }

  void ExpectMergedEqualsModel() {
    EXPECT_EQ(MergedRows(*store_, {model_->pdt()}), model_->rows());
    EXPECT_TRUE(model_->pdt()->CheckInvariants().ok())
        << model_->pdt()->CheckInvariants().ToString();
  }

  std::shared_ptr<const Schema> schema_;
  std::unique_ptr<ColumnStore> store_;
  std::unique_ptr<ModelTable> model_;
};

TEST_F(PdtPaperExampleTest, Table1AfterInserts) {
  ApplyBatch1();
  // Figure 5: the three Berlin tuples sort to the front.
  std::vector<Tuple> expected = {
      {"Berlin", "chair", "Y", 20}, {"Berlin", "cloth", "Y", 5},
      {"Berlin", "table", "Y", 10}, {"London", "chair", "N", 30},
      {"London", "stool", "N", 10}, {"London", "table", "N", 20},
      {"Paris", "rug", "N", 1},     {"Paris", "stool", "N", 5},
  };
  EXPECT_EQ(model_->rows(), expected);
  ExpectMergedEqualsModel();
  // All three inserts share SID 0 (Figure 3).
  for (auto& e : model_->pdt()->Flatten()) {
    EXPECT_EQ(e.sid, 0u);
    EXPECT_EQ(e.type, kTypeIns);
  }
}

TEST_F(PdtPaperExampleTest, Table2AfterDeletesAndModifies) {
  ApplyBatch1();
  ApplyBatch2();
  // Figure 9.
  std::vector<Tuple> expected = {
      {"Berlin", "chair", "Y", 20}, {"Berlin", "cloth", "Y", 1},
      {"London", "chair", "N", 30}, {"London", "stool", "N", 9},
      {"London", "table", "N", 20}, {"Paris", "stool", "N", 5},
  };
  EXPECT_EQ(model_->rows(), expected);
  ExpectMergedEqualsModel();

  // PDT2 (Figure 7): the delete of the *inserted* (Berlin,table) removed
  // its INS entry entirely; (Paris,rug) is a ghost DEL; the qty modify of
  // the inserted (Berlin,cloth) was applied in-place in the insert space.
  const Pdt& pdt = *model_->pdt();
  EXPECT_EQ(pdt.InsertCount(), 2u);
  EXPECT_EQ(pdt.DeleteCount(), 1u);
  EXPECT_EQ(pdt.ModifyCount(), 1u);  // only (London,stool) qty=9
  // Ghost key recorded in the delete space (Figure 8: d0 = Paris,rug).
  EXPECT_EQ(pdt.value_space().GetDeleteKey(0)[0].AsString(), "Paris");
  EXPECT_EQ(pdt.value_space().GetDeleteKey(0)[1].AsString(), "rug");
}

TEST_F(PdtPaperExampleTest, Table3AfterMoreInserts) {
  ApplyBatch1();
  ApplyBatch2();
  ApplyBatch3();
  // Figure 13 (visible tuples only; the greyed-out ghost is invisible).
  std::vector<Tuple> expected = {
      {"Berlin", "chair", "Y", 20}, {"Berlin", "cloth", "Y", 1},
      {"Berlin", "rack", "Y", 4},   {"London", "chair", "N", 30},
      {"London", "rack", "Y", 4},   {"London", "stool", "N", 9},
      {"London", "table", "N", 20}, {"Paris", "rack", "Y", 4},
      {"Paris", "stool", "N", 5},
  };
  EXPECT_EQ(model_->rows(), expected);
  ExpectMergedEqualsModel();
}

TEST_F(PdtPaperExampleTest, RespectingDeletesGivesParisRackSid3) {
  ApplyBatch1();
  ApplyBatch2();
  ApplyBatch3();
  // Section 2.1 "Respecting Deletes": (Paris,rack) must receive SID 3 —
  // the SID of the deleted (Paris,rug) ghost, *not* 4 — so sparse indexes
  // built on TABLE0 stay valid.
  bool found = false;
  const auto& vs = model_->pdt()->value_space();
  for (auto& e : model_->pdt()->Flatten()) {
    if (e.type != kTypeIns) continue;
    if (vs.GetInsertColumn(e.value, 1).AsString() == "rack" &&
        vs.GetInsertColumn(e.value, 0).AsString() == "Paris") {
      EXPECT_EQ(e.sid, 3u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(PdtPaperExampleTest, SparseIndexRangeStillFindsParisRack) {
  // The paper's example query: SELECT qty FROM inventory WHERE
  // store='Paris' AND prod<'rug' — the stale sparse index returns SID
  // range (1,3], which must still contain the new (Paris,rack).
  ApplyBatch1();
  ApplyBatch2();
  ApplyBatch3();
  auto index = SparseIndex::Build(*store_);
  ASSERT_TRUE(index.ok());
  auto ranges =
      index->LookupRange({Value("Paris")}, {Value("Paris"), Value("rug")});
  auto scan = MakeMergeScan(*store_, {model_->pdt()},
                            AllColumns(*schema_), ranges);
  auto rows = CollectRows(scan.get());
  ASSERT_TRUE(rows.ok());
  bool found = false;
  for (const auto& t : *rows) {
    if (t[0].AsString() == "Paris" && t[1].AsString() == "rack") found = true;
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------
// Chain semantics (Sec. 2.1 in-place handling rules).
// ---------------------------------------------------------------------

class PdtChainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = InventorySchema();
    store_ = BuildStore(schema_, InventoryRows());
    model_ = std::make_unique<ModelTable>(schema_, InventoryRows());
  }
  std::shared_ptr<const Schema> schema_;
  std::unique_ptr<ColumnStore> store_;
  std::unique_ptr<ModelTable> model_;
};

TEST_F(PdtChainTest, DeleteOfInsertLeavesNoTrace) {
  ASSERT_TRUE(model_->Insert({"Aix", "mat", "Y", 7}).ok());
  EXPECT_EQ(model_->pdt()->EntryCount(), 1u);
  ASSERT_TRUE(model_->DeleteAt(0).ok());
  EXPECT_EQ(model_->pdt()->EntryCount(), 0u);
  EXPECT_EQ(MergedRows(*store_, {model_->pdt()}), model_->rows());
}

TEST_F(PdtChainTest, ModifyOfInsertPatchesInsertSpace) {
  ASSERT_TRUE(model_->Insert({"Aix", "mat", "Y", 7}).ok());
  ASSERT_TRUE(model_->ModifyAt(0, 3, Value(99)).ok());
  EXPECT_EQ(model_->pdt()->EntryCount(), 1u);  // still just the INS
  EXPECT_EQ(model_->pdt()->ModifyCount(), 0u);
  EXPECT_EQ(MergedRows(*store_, {model_->pdt()}), model_->rows());
}

TEST_F(PdtChainTest, ModifyOfModifyUpdatesInPlace) {
  ASSERT_TRUE(model_->ModifyAt(1, 3, Value(11)).ok());
  ASSERT_TRUE(model_->ModifyAt(1, 3, Value(12)).ok());
  EXPECT_EQ(model_->pdt()->ModifyCount(), 1u);
  EXPECT_EQ(MergedRows(*store_, {model_->pdt()}), model_->rows());
}

TEST_F(PdtChainTest, ModifyTwoColumnsKeepsTwoEntries) {
  ASSERT_TRUE(model_->ModifyAt(1, 2, Value("Y")).ok());
  ASSERT_TRUE(model_->ModifyAt(1, 3, Value(12)).ok());
  EXPECT_EQ(model_->pdt()->ModifyCount(), 2u);
  EXPECT_EQ(MergedRows(*store_, {model_->pdt()}), model_->rows());
  EXPECT_TRUE(model_->pdt()->CheckInvariants().ok());
}

TEST_F(PdtChainTest, DeleteOfModifiedStableCollapsesToSingleDel) {
  ASSERT_TRUE(model_->ModifyAt(1, 2, Value("Y")).ok());
  ASSERT_TRUE(model_->ModifyAt(1, 3, Value(12)).ok());
  ASSERT_TRUE(model_->DeleteAt(1).ok());
  EXPECT_EQ(model_->pdt()->EntryCount(), 1u);
  EXPECT_EQ(model_->pdt()->DeleteCount(), 1u);
  EXPECT_EQ(MergedRows(*store_, {model_->pdt()}), model_->rows());
}

TEST_F(PdtChainTest, ConsecutiveDeletesShareRid) {
  // Deleting RID 0 repeatedly creates a ghost chain with ascending SIDs.
  ASSERT_TRUE(model_->DeleteAt(0).ok());
  ASSERT_TRUE(model_->DeleteAt(0).ok());
  ASSERT_TRUE(model_->DeleteAt(0).ok());
  auto entries = model_->pdt()->Flatten();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].sid, 0u);
  EXPECT_EQ(entries[1].sid, 1u);
  EXPECT_EQ(entries[2].sid, 2u);
  EXPECT_EQ(MergedRows(*store_, {model_->pdt()}), model_->rows());
  EXPECT_TRUE(model_->pdt()->CheckInvariants().ok());
}

TEST_F(PdtChainTest, LookupRidMatchesModel) {
  ASSERT_TRUE(model_->Insert({"Aix", "mat", "Y", 7}).ok());
  ASSERT_TRUE(model_->ModifyAt(3, 3, Value(77)).ok());
  ASSERT_TRUE(model_->DeleteAt(4).ok());
  for (Rid rid = 0; rid < model_->size(); ++rid) {
    auto lookup = model_->pdt()->LookupRid(rid);
    if (lookup.is_insert) {
      EXPECT_EQ(model_->pdt()->value_space().GetInsertTuple(
                    lookup.insert_offset),
                model_->rows()[rid]);
    } else {
      // The stable tuple plus its modifies must equal the model row.
      auto tuple_or = store_->GetTuple(lookup.sid);
      ASSERT_TRUE(tuple_or.ok());
      Tuple t = *tuple_or;
      for (auto [col, off] : lookup.mods) {
        t[col] = model_->pdt()->value_space().GetModifyValue(col, off);
      }
      EXPECT_EQ(t, model_->rows()[rid]) << "rid " << rid;
    }
  }
}

// ---------------------------------------------------------------------
// Randomized property tests against the reference model.
// ---------------------------------------------------------------------

struct RandomOpsParam {
  uint64_t seed;
  int ops;
  int fanout;
  double p_insert;
  double p_delete;
};

class PdtRandomOpsTest : public ::testing::TestWithParam<RandomOpsParam> {};

TEST_P(PdtRandomOpsTest, MergedImageMatchesModelThroughout) {
  const RandomOpsParam param = GetParam();
  auto schema_or = Schema::Make({{"k1", TypeId::kInt64},
                                 {"k2", TypeId::kString},
                                 {"a", TypeId::kInt64},
                                 {"b", TypeId::kString}},
                                {0, 1});
  ASSERT_TRUE(schema_or.ok());
  auto schema = std::make_shared<const Schema>(std::move(*schema_or));

  Random rng(param.seed);
  // Seed rows with distinct keys.
  std::vector<Tuple> rows;
  for (int i = 0; i < 200; ++i) {
    rows.push_back(
        {int64_t{i * 10}, rng.NextString(3), rng.UniformRange(0, 999),
         rng.NextString(4)});
  }
  std::sort(rows.begin(), rows.end(), [&](const Tuple& a, const Tuple& b) {
    return schema->CompareSortKey(a, b) < 0;
  });
  auto store = BuildStore(schema, rows, {.chunk_rows = 64});
  ASSERT_NE(store, nullptr);
  ModelTable model(schema, rows, PdtOptions{.fanout = param.fanout});

  int applied = 0;
  for (int op = 0; op < param.ops; ++op) {
    double dice = rng.NextDouble();
    if (dice < param.p_insert || model.size() == 0) {
      Tuple t = {rng.UniformRange(0, 3000), rng.NextString(3),
                 rng.UniformRange(0, 999), rng.NextString(4)};
      Status st = model.Insert(t);
      if (st.ok()) ++applied;  // duplicate keys are rejected; fine
    } else if (dice < param.p_insert + param.p_delete) {
      Rid rid = rng.Uniform(model.size());
      ASSERT_TRUE(model.DeleteAt(rid).ok());
      ++applied;
    } else {
      Rid rid = rng.Uniform(model.size());
      ColumnId col = rng.Bernoulli(0.5) ? 2 : 3;
      Value v = (col == 2) ? Value(rng.UniformRange(0, 999))
                           : Value(rng.NextString(4));
      ASSERT_TRUE(model.ModifyAt(rid, col, v).ok());
      ++applied;
    }
    if (op % 64 == 0) {
      ASSERT_TRUE(model.pdt()->CheckInvariants().ok())
          << model.pdt()->CheckInvariants().ToString() << " at op " << op;
      ASSERT_EQ(MergedRows(*store, {model.pdt()}, {}, 128), model.rows())
          << "divergence at op " << op;
    }
  }
  EXPECT_GT(applied, 0);
  ASSERT_TRUE(model.pdt()->CheckInvariants().ok())
      << model.pdt()->CheckInvariants().ToString();
  EXPECT_EQ(MergedRows(*store, {model.pdt()}), model.rows());
  // Small-batch merging must agree with large-batch merging.
  EXPECT_EQ(MergedRows(*store, {model.pdt()}, {}, 7), model.rows());
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, PdtRandomOpsTest,
    ::testing::Values(
        RandomOpsParam{1, 500, 8, 0.5, 0.25}, RandomOpsParam{2, 500, 4, 0.5, 0.25},
        RandomOpsParam{3, 500, 16, 0.5, 0.25},
        RandomOpsParam{4, 800, 8, 0.8, 0.1},   // insert-heavy
        RandomOpsParam{5, 800, 8, 0.1, 0.6},   // delete-heavy
        RandomOpsParam{6, 800, 8, 0.1, 0.1},   // modify-heavy
        RandomOpsParam{7, 1500, 5, 0.34, 0.33},
        RandomOpsParam{8, 1500, 32, 0.34, 0.33}));

// Projection correctness: merging a subset of columns (without SK!) must
// equal the projected model — the core of the PDT's I/O claim.
TEST(PdtProjectionTest, NonKeyProjectionMatchesModel) {
  auto schema = InventorySchema();
  auto store = BuildStore(schema, InventoryRows());
  ModelTable model(schema, InventoryRows());
  ASSERT_TRUE(model.Insert({"Berlin", "table", "Y", 10}).ok());
  ASSERT_TRUE(model.ModifyAt(4, 3, Value(42)).ok());
  ASSERT_TRUE(model.DeleteAt(5).ok());

  auto merged = MergedRows(*store, {model.pdt()}, {3});  // qty only
  ASSERT_EQ(merged.size(), model.size());
  for (size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i][0], model.rows()[i][3]) << "row " << i;
  }
}

TEST(PdtCloneTest, CloneIsDeepAndEqual) {
  auto schema = InventorySchema();
  auto store = BuildStore(schema, InventoryRows());
  ModelTable model(schema, InventoryRows());
  ASSERT_TRUE(model.Insert({"Berlin", "table", "Y", 10}).ok());
  ASSERT_TRUE(model.ModifyAt(4, 3, Value(42)).ok());

  auto clone = model.pdt()->Clone();
  EXPECT_EQ(clone->Flatten(), model.pdt()->Flatten());
  EXPECT_TRUE(clone->CheckInvariants().ok());
  // Mutating the clone must not affect the original. (RID 3 is a stable
  // tuple: modifying it adds a fresh entry rather than patching the
  // insert space in place.)
  ASSERT_TRUE(clone->AddModify(3, 3, Value(1)).ok());
  EXPECT_NE(clone->EntryCount(), model.pdt()->EntryCount());
  EXPECT_EQ(MergedRows(*store, {model.pdt()}), model.rows());
}

TEST(PdtEmptyTest, EmptyPdtIsIdentity) {
  auto schema = InventorySchema();
  auto store = BuildStore(schema, InventoryRows());
  Pdt pdt(schema);
  EXPECT_TRUE(pdt.CheckInvariants().ok());
  EXPECT_EQ(pdt.TotalDelta(), 0);
  EXPECT_EQ(MergedRows(*store, {&pdt}), InventoryRows());
}

TEST(PdtEmptyStableTest, InsertsIntoEmptyTable) {
  auto schema = InventorySchema();
  auto store = BuildStore(schema, {});
  ModelTable model(schema, {});
  ASSERT_TRUE(model.Insert({"B", "b", "Y", 2}).ok());
  ASSERT_TRUE(model.Insert({"A", "a", "Y", 1}).ok());
  ASSERT_TRUE(model.Insert({"C", "c", "Y", 3}).ok());
  EXPECT_EQ(MergedRows(*store, {model.pdt()}), model.rows());
  EXPECT_EQ(model.size(), 3u);
}

}  // namespace
}  // namespace pdtstore

// Adversarial PDT stress tests: hostile update patterns (hammering a
// single position, strict front/back insertion, interleaved ghost
// chains), deep trees at minimum fan-out, cursor/bulk-build round trips,
// and long randomized runs with invariant checking at every step.
#include <gtest/gtest.h>

#include "pdt/pdt.h"
#include "test_util.h"
#include "util/random.h"

namespace pdtstore {
namespace {

using testutil::BuildStore;
using testutil::MergedRows;
using testutil::ModelTable;

std::shared_ptr<const Schema> IntSchema() {
  auto s = Schema::Make({{"k", TypeId::kInt64}, {"v", TypeId::kInt64}}, {0});
  return std::make_shared<const Schema>(std::move(*s));
}

std::vector<Tuple> IntRows(int n, int64_t gap = 100) {
  std::vector<Tuple> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back({static_cast<int64_t>(i) * gap, int64_t{i}});
  }
  return rows;
}

TEST(PdtStressTest, ManyInsertsAtSamePosition) {
  // All inserts share SID 0 and form a long left spine: the tree must
  // stay balanced and ordered.
  auto schema = IntSchema();
  auto store = BuildStore(schema, IntRows(4, 1000000));
  ModelTable model(schema, IntRows(4, 1000000), PdtOptions{.fanout = 4});
  for (int i = 999; i >= 1; --i) {  // key 0 exists in the base data
    ASSERT_TRUE(model.Insert({int64_t{i}, int64_t{i}}).ok());
  }
  ASSERT_TRUE(model.pdt()->CheckInvariants().ok())
      << model.pdt()->CheckInvariants().ToString();
  EXPECT_EQ(MergedRows(*store, {model.pdt()}), model.rows());
  // Every insert entry shares one SID: all land after stable tuple 0
  // (key 0) and before stable tuple 1 (key 1000000).
  for (const auto& e : model.pdt()->Flatten()) {
    EXPECT_EQ(e.sid, 1u);
  }
}

TEST(PdtStressTest, AscendingAppendsAtEnd) {
  auto schema = IntSchema();
  auto store = BuildStore(schema, IntRows(4, 10));
  ModelTable model(schema, IntRows(4, 10), PdtOptions{.fanout = 4});
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(model.Insert({int64_t{1000 + i}, int64_t{i}}).ok());
  }
  ASSERT_TRUE(model.pdt()->CheckInvariants().ok());
  EXPECT_EQ(MergedRows(*store, {model.pdt()}), model.rows());
}

TEST(PdtStressTest, HammerOneRidWithModifies) {
  auto schema = IntSchema();
  auto store = BuildStore(schema, IntRows(100));
  ModelTable model(schema, IntRows(100));
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(model.ModifyAt(50, 1, Value(int64_t{i})).ok());
  }
  // All in-place: exactly one modify entry.
  EXPECT_EQ(model.pdt()->EntryCount(), 1u);
  EXPECT_EQ(MergedRows(*store, {model.pdt()}), model.rows());
}

TEST(PdtStressTest, InsertDeleteChurnAtOnePosition) {
  // Insert and immediately delete at the same spot, repeatedly: the PDT
  // must end empty (delete-of-insert leaves no trace).
  auto schema = IntSchema();
  auto store = BuildStore(schema, IntRows(10));
  ModelTable model(schema, IntRows(10), PdtOptions{.fanout = 4});
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(model.Insert({int64_t{55}, int64_t{i}}).ok());
    Rid rid = 0;
    ASSERT_TRUE(model.FindKey({Value(55)}, &rid));
    ASSERT_TRUE(model.DeleteAt(rid).ok());
  }
  EXPECT_EQ(model.pdt()->EntryCount(), 0u);
  EXPECT_EQ(MergedRows(*store, {model.pdt()}), model.rows());
}

TEST(PdtStressTest, LongGhostChains) {
  // Delete long runs so ghosts pile up sharing RIDs across many leaves,
  // then insert between the ghosts by key.
  auto schema = IntSchema();
  auto base = IntRows(600, 10);
  auto store = BuildStore(schema, base, {.chunk_rows = 64});
  ModelTable model(schema, base, PdtOptions{.fanout = 4});
  // Kill rows 100..499 -> a 400-ghost chain at one RID.
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(model.DeleteAt(100).ok());
  }
  ASSERT_TRUE(model.pdt()->CheckInvariants().ok());
  EXPECT_EQ(MergedRows(*store, {model.pdt()}), model.rows());
  // Now insert keys that land at various points *inside* the ghost range:
  // SKRidToSid must order them among the ghosts by key.
  for (int64_t k : {int64_t{1005}, int64_t{2501}, int64_t{3999},
                    int64_t{1001}, int64_t{4995}}) {
    ASSERT_TRUE(model.Insert({k, k}).ok());
    ASSERT_TRUE(model.pdt()->CheckInvariants().ok()) << k;
    ASSERT_EQ(MergedRows(*store, {model.pdt()}), model.rows()) << k;
  }
  // Ghost-respecting SIDs: the inserted keys' SIDs must be interleaved
  // with the ghost SIDs in key order, i.e. strictly increasing here.
  std::vector<Sid> ins_sids;
  const auto& vs = model.pdt()->value_space();
  std::vector<std::pair<int64_t, Sid>> by_key;
  for (const auto& e : model.pdt()->Flatten()) {
    if (e.type == kTypeIns) {
      by_key.emplace_back(vs.GetInsertColumn(e.value, 0).AsInt64(), e.sid);
    }
  }
  std::sort(by_key.begin(), by_key.end());
  for (size_t i = 1; i < by_key.size(); ++i) {
    // Keys falling between the same pair of ghosts share a SID, so the
    // sequence is non-decreasing in key order.
    EXPECT_GE(by_key[i].second, by_key[i - 1].second)
        << "insert SIDs must respect ghost order";
  }
  // Keys a full ghost apart must have distinct SIDs.
  EXPECT_LT(by_key.front().second, by_key.back().second);
}

TEST(PdtStressTest, BulkBuildRoundtripAtAllFanouts) {
  auto schema = IntSchema();
  auto base = IntRows(300);
  auto store = BuildStore(schema, base);
  ModelTable model(schema, base);
  Random rng(9);
  for (int i = 0; i < 400; ++i) {
    double d = rng.NextDouble();
    if (d < 0.4) {
      (void)model.Insert({rng.UniformRange(0, 50000), int64_t{i}});
    } else if (d < 0.7 && model.size() > 0) {
      (void)model.DeleteAt(rng.Uniform(model.size()));
    } else if (model.size() > 0) {
      (void)model.ModifyAt(rng.Uniform(model.size()), 1, Value(int64_t{i}));
    }
  }
  auto entries = model.pdt()->Flatten();
  for (int fanout : {4, 5, 8, 16, 32}) {
    Pdt rebuilt(schema, PdtOptions{.fanout = fanout});
    rebuilt.value_space() = model.pdt()->value_space();
    ASSERT_TRUE(rebuilt.BuildFromSorted(entries).ok());
    ASSERT_TRUE(rebuilt.CheckInvariants().ok())
        << "fanout " << fanout << ": "
        << rebuilt.CheckInvariants().ToString();
    EXPECT_EQ(rebuilt.Flatten(), entries) << "fanout " << fanout;
    EXPECT_EQ(MergedRows(*store, {&rebuilt}), model.rows())
        << "fanout " << fanout;
  }
}

TEST(PdtStressTest, SeekSidMatchesLinearScan) {
  auto schema = IntSchema();
  auto base = IntRows(200);
  auto store = BuildStore(schema, base);
  ModelTable model(schema, base, PdtOptions{.fanout = 4});
  Random rng(11);
  for (int i = 0; i < 300; ++i) {
    double d = rng.NextDouble();
    if (d < 0.5) {
      (void)model.Insert({rng.UniformRange(0, 3000), int64_t{i}});
    } else if (model.size() > 0) {
      (void)model.DeleteAt(rng.Uniform(model.size()));
    }
  }
  auto entries = model.pdt()->Flatten();
  for (Sid target = 0; target < 210; target += 7) {
    auto cursor = model.pdt()->SeekSid(target);
    // Reference: first entry with sid >= target via linear scan.
    size_t ref = 0;
    int64_t delta = 0;
    while (ref < entries.size() && entries[ref].sid < target) {
      delta += DeltaOf(entries[ref].type);
      ++ref;
    }
    if (ref == entries.size()) {
      EXPECT_FALSE(cursor.Valid()) << "target " << target;
    } else {
      ASSERT_TRUE(cursor.Valid()) << "target " << target;
      EXPECT_EQ(cursor.sid(), entries[ref].sid) << "target " << target;
      EXPECT_EQ(cursor.delta_before(), delta) << "target " << target;
    }
  }
}

TEST(PdtStressTest, LongRandomRunWithPerOpInvariants) {
  auto schema = IntSchema();
  auto base = IntRows(50);
  auto store = BuildStore(schema, base, {.chunk_rows = 16});
  ModelTable model(schema, base, PdtOptions{.fanout = 4});
  Random rng(13);
  for (int i = 0; i < 2500; ++i) {
    double d = rng.NextDouble();
    if (d < 0.45 || model.size() == 0) {
      (void)model.Insert({rng.UniformRange(0, 9999), int64_t{i}});
    } else if (d < 0.8) {
      ASSERT_TRUE(model.DeleteAt(rng.Uniform(model.size())).ok());
    } else {
      ASSERT_TRUE(
          model.ModifyAt(rng.Uniform(model.size()), 1, Value(int64_t{i}))
              .ok());
    }
    Status st = model.pdt()->CheckInvariants();
    ASSERT_TRUE(st.ok()) << st.ToString() << " at op " << i;
  }
  EXPECT_EQ(MergedRows(*store, {model.pdt()}), model.rows());
}

TEST(PdtStressTest, MemoryAccountingTracksGrowth) {
  auto schema = IntSchema();
  ModelTable model(schema, IntRows(10));
  size_t empty_bytes = model.pdt()->MemoryBytes();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(model.Insert({int64_t{i * 10 + 1}, int64_t{i}}).ok());
  }
  EXPECT_GT(model.pdt()->MemoryBytes(), empty_bytes);
  model.pdt()->Clear();
  EXPECT_EQ(model.pdt()->EntryCount(), 0u);
  EXPECT_TRUE(model.pdt()->CheckInvariants().ok());
}

}  // namespace
}  // namespace pdtstore

// File-system abstraction under all durable state (WAL segments, the
// checkpoint MANIFEST, table image files). Two implementations:
//
//   - the default POSIX one, where Sync() is a real fflush+fsync and
//     RenameFile is the atomic commit primitive, and
//   - FaultInjectingFs, which models a machine that can lose power:
//     appended bytes live in a "page cache" until Sync() persists them,
//     and a scheduled crash cuts persistence mid-stream at an exact byte
//     (tearing whatever frame straddles it) or around a rename. After
//     the crash every operation fails; reopening the directory with a
//     clean file system is the simulated restart.
//
// The durability contract every caller relies on: bytes are guaranteed
// on disk only after a successful Sync(); RenameFile atomically replaces
// the target (either the old or the new file survives a crash, never a
// mixture); a *directory entry* change (a file created, renamed over, or
// deleted) is guaranteed durable only after SyncDir() on its parent
// directory — fsyncing a file persists its bytes, not its name; nothing
// else is promised.
#ifndef PDTSTORE_UTIL_FILE_H_
#define PDTSTORE_UTIL_FILE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace pdtstore {

/// The parent directory of `path` ("." when it has no slash). Used to
/// pick the SyncDir target after a rename/create/delete.
std::string DirnameOf(const std::string& path);

/// Sequential output file. Append buffers; Sync is the durability point.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(std::string_view data) = 0;
  /// Forces everything appended so far to stable storage.
  virtual Status Sync() = 0;
  /// Flushes buffers and closes. Data not Sync()ed may still be lost.
  virtual Status Close() = 0;
};

/// Minimal file-system interface: everything the durability layer needs,
/// nothing more.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Opens `path` for writing; `truncate` empties an existing file,
  /// otherwise writes append after the current end.
  virtual StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;

  /// Reads the whole file into `*out` (replaced).
  virtual Status ReadFileToString(const std::string& path,
                                  std::string* out) = 0;

  /// Atomically renames `from` onto `to`, replacing it. The commit
  /// primitive of the checkpoint protocol.
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  virtual Status DeleteFile(const std::string& path) = 0;

  /// Truncates `path` to `size` bytes (used to drop a torn WAL tail)
  /// and makes the truncation durable (it is file metadata, so the file
  /// itself is fsynced; no SyncDir needed).
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;

  /// Fsyncs the directory itself, making every entry change inside it
  /// (created / renamed / deleted files) durable. The second half of the
  /// checkpoint commit protocol: RenameFile orders the swap, SyncDir
  /// persists it.
  virtual Status SyncDir(const std::string& path) = 0;

  virtual StatusOr<bool> FileExists(const std::string& path) = 0;

  /// Creates a directory; succeeds if it already exists.
  virtual Status CreateDir(const std::string& path) = 0;

  /// The process-wide POSIX file system.
  static FileSystem* Default();
};

// ---------------------------------------------------------------------
// Fault injection.
// ---------------------------------------------------------------------

/// Where a scheduled crash lands relative to a rename.
enum class RenameCrash {
  kBefore,  ///< crash with the rename not applied (temp file orphaned)
  kAfter,   ///< rename applied, then crash (caller never sees success)
};

/// A FileSystem wrapper that injects crashes and I/O faults at exact
/// points, for the crash-recovery fuzzer. Thread-safe. Faults:
///
///   ScheduleCrashAfterBytes(n) — the machine dies once n more bytes
///     have been persisted (across all files). The n-byte prefix of
///     whatever was being synced survives — a torn write if the cut
///     falls inside a WAL frame — and every later operation fails.
///   ScheduleCrashAtRename(k, where) — the machine dies at the k-th
///     (1-based) RenameFile from now, before or after it takes effect.
///   FailNextSync() — the next Sync() reports failure and drops the
///     not-yet-persisted bytes (lost page cache), without crashing.
///
/// Because appended bytes only reach the base file system through
/// Sync()/Close(), the surviving directory contents are exactly what a
/// real crash could leave behind under the contract above.
///
/// Directory entries are modeled too: a create, rename or delete is
/// visible immediately (the live OS view) but journaled as *unsynced*
/// until SyncDir() runs on its parent directory; a crash rolls every
/// still-unsynced entry change back — the file reappears, the rename
/// reverts, the created file vanishes (even if its *bytes* were
/// fsynced: fsyncing a file does not persist its name). A durable-paths
/// bug that skips SyncDir therefore loses data under this fs just as it
/// would on real POSIX. The one exception is a RenameCrash::kAfter
/// rename, which by definition reached disk before the machine died.
class FaultInjectingFs : public FileSystem {
 public:
  explicit FaultInjectingFs(FileSystem* base);

  void ScheduleCrashAfterBytes(uint64_t n);
  void ScheduleCrashAtRename(int k, RenameCrash where);
  void FailNextSync();

  bool crashed() const;
  uint64_t bytes_persisted() const;

  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Status ReadFileToString(const std::string& path, std::string* out) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status DeleteFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  StatusOr<bool> FileExists(const std::string& path) override;
  Status CreateDir(const std::string& path) override;
  Status SyncDir(const std::string& path) override;

 private:
  friend class FaultInjectingFile;

  // One not-yet-SyncDir'ed directory entry change, with enough saved
  // state to roll it back when the machine dies.
  struct PendingDirOp {
    enum Kind { kCreate, kRename, kDelete } kind;
    std::string dir;         ///< parent directory (the SyncDir target)
    std::string path;        ///< the affected entry (rename: `to`)
    std::string from;        ///< rename only: the source entry
    bool path_existed = false;   ///< did `path` exist before the op
    std::string saved_path;      ///< prior contents of `path`, if it existed
    std::string saved_from;      ///< rename only: prior contents of `from`
  };

  Status CheckAliveLocked() const;
  // Rolls back every journaled (unsynced) directory op, newest first.
  // Called at crash time; undo goes straight to the base fs.
  void LoseUnsyncedDirOpsLocked();
  void RestoreFile(const std::string& path, const std::string& contents);

  FileSystem* base_;
  mutable std::mutex mu_;
  bool crashed_ = false;
  uint64_t bytes_persisted_ = 0;
  std::vector<PendingDirOp> pending_dir_ops_;
  // Active faults; kNoFault = disarmed.
  static constexpr uint64_t kNoFault = ~0ULL;
  uint64_t crash_after_bytes_ = kNoFault;  // remaining persist budget
  int crash_at_rename_ = 0;                // countdown; 0 = disarmed
  RenameCrash rename_crash_where_ = RenameCrash::kBefore;
  bool fail_next_sync_ = false;
};

}  // namespace pdtstore

#endif  // PDTSTORE_UTIL_FILE_H_

#include "exec/pipeline.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <numeric>

#include "exec/operator.h"
#include "exec/shared_scan.h"
#include "storage/encoding.h"
#include "util/file.h"
#include "util/mem_budget.h"
#include "util/thread_pool.h"

namespace pdtstore {

namespace {

// ---------------------------------------------------------------------
// Fragment operators.
// ---------------------------------------------------------------------

class FilterOp : public PipelineOp {
 public:
  explicit FilterOp(VecPredicate predicate) {
    predicates_.push_back(std::move(predicate));
  }

  struct State : PipelineOpState {
    KeepBitmap keep;
    KeepBitmap tmp;
    Batch out;
  };

  std::unique_ptr<PipelineOpState> MakeState() const override {
    return std::make_unique<State>();
  }

  Status Execute(Batch* batch, PipelineOpState* state) const override {
    State* s = static_cast<State*>(state);
    EvalConjunction(predicates_, *batch, &s->keep, &s->tmp);
    if (s->keep.All()) return Status::OK();  // batch passes untouched
    s->out.ResetLike(*batch);
    s->out.set_start_rid(batch->start_rid());
    if (!s->keep.None()) s->out.AppendFiltered(*batch, s->keep);
    // The consumed input batch becomes next round's output scratch.
    std::swap(*batch, s->out);
    return Status::OK();
  }

  bool FuseFilter(VecPredicate* predicate) override {
    // Build-time only: the fused conjunction folds bitmaps word-wise in
    // Execute, so stacked Pipeline::Filter calls compact the batch once.
    predicates_.push_back(std::move(*predicate));
    return true;
  }

 private:
  std::vector<VecPredicate> predicates_;
};

class ProjectOp : public PipelineOp {
 public:
  explicit ProjectOp(std::vector<ColumnExpr> exprs)
      : exprs_(std::move(exprs)) {}

  std::unique_ptr<PipelineOpState> MakeState() const override {
    return nullptr;  // exprs allocate their outputs; no scratch needed
  }

  Status Execute(Batch* batch, PipelineOpState*) const override {
    Batch out;
    out.set_start_rid(batch->start_rid());
    std::vector<ColumnId> ids(exprs_.size());
    for (size_t i = 0; i < exprs_.size(); ++i) {
      ids[i] = static_cast<ColumnId>(i);
      out.columns().push_back(exprs_[i](*batch));
    }
    out.set_column_ids(std::move(ids));
    *batch = std::move(out);
    return Status::OK();
  }

 private:
  std::vector<ColumnExpr> exprs_;
};

class JoinProbeOp : public PipelineOp {
 public:
  JoinProbeOp(std::shared_ptr<JoinBuildHandle> build,
              std::vector<size_t> probe_keys, JoinKind kind)
      : build_(std::move(build)),
        probe_keys_(std::move(probe_keys)),
        kind_(kind) {}

  struct State : PipelineOpState {
    JoinProbeScratch scratch;
    Batch out;
  };

  Status Prepare() override {
    // The build barrier: the build side (possibly a whole pipeline)
    // runs to completion here, before any probe worker starts; the
    // resulting table is immutable and shared lock-free.
    PDT_ASSIGN_OR_RETURN(table_, build_->Resolve());
    return Status::OK();
  }

  std::unique_ptr<PipelineOpState> MakeState() const override {
    return std::make_unique<State>();
  }

  Status Execute(Batch* batch, PipelineOpState* state) const override {
    State* s = static_cast<State*>(state);
    ProbeJoinBatch(*table_, probe_keys_, kind_, *batch, &s->out,
                   &s->scratch);
    std::swap(*batch, s->out);
    return Status::OK();
  }

 private:
  std::shared_ptr<JoinBuildHandle> build_;
  std::vector<size_t> probe_keys_;
  JoinKind kind_;
  const PartitionedJoinTable* table_ = nullptr;  // set by Prepare
};

// ---------------------------------------------------------------------
// Run-to-completion pipeline driver.
// ---------------------------------------------------------------------

// State shared between the driving thread and its worker tasks. Tasks
// hold it by shared_ptr; `plan` / `ops` / `sink` are borrowed from the
// driver's frame and valid only until `finished` — a task that starts
// after the driver left exits on its first check without touching them.
struct RunShared {
  std::mutex mu;
  std::condition_variable cv;
  size_t next = 0;    // next morsel to claim
  size_t active = 0;  // workers past their start check
  bool finished = false;
  bool abort = false;
  Status error = Status::OK();

  MorselPlan* plan = nullptr;
  const std::vector<std::unique_ptr<PipelineOp>>* ops = nullptr;
  PipelineSink* sink = nullptr;
};

void RunPipelineWorker(const std::shared_ptr<RunShared>& rs) {
  {
    std::lock_guard<std::mutex> lock(rs->mu);
    if (rs->finished || rs->abort) return;
    ++rs->active;
  }
  const auto& ops = *rs->ops;
  std::vector<std::unique_ptr<PipelineOpState>> op_states;
  op_states.reserve(ops.size());
  for (const auto& op : ops) op_states.push_back(op->MakeState());
  std::unique_ptr<PipelineOpState> sink_state = rs->sink->MakeState();

  Status status = Status::OK();
  Batch local;
  const size_t num_morsels = rs->plan->morsels.size();
  while (status.ok()) {
    size_t m;
    {
      std::lock_guard<std::mutex> lock(rs->mu);
      if (rs->abort || rs->next >= num_morsels) break;
      m = rs->next++;
    }
    std::unique_ptr<BatchSource> src =
        rs->plan->factory(m, rs->plan->morsels[m], m + 1 == num_morsels);
    while (status.ok()) {
      StatusOr<bool> more = src->Next(&local, rs->plan->options.batch_rows);
      if (!more.ok()) {
        status = more.status();
        break;
      }
      if (!*more) break;
      for (size_t i = 0; i < ops.size() && status.ok(); ++i) {
        status = ops[i]->Execute(&local, op_states[i].get());
      }
      if (!status.ok() || local.num_rows() == 0) continue;
      status = rs->sink->Sink(&local, sink_state.get(), m);
    }
  }
  if (status.ok()) {
    // Per-worker post-processing (e.g. sorting this worker's run)
    // happens before the serializing lock, so it runs in parallel
    // across workers.
    status = rs->sink->Finish(sink_state.get());
  }

  std::lock_guard<std::mutex> lock(rs->mu);
  if (status.ok() && !rs->abort) {
    // Merge this worker's partial state into the shared result;
    // serialized by rs->mu.
    status = rs->sink->Combine(sink_state.get());
  }
  if (!status.ok()) {
    if (rs->error.ok()) rs->error = status;
    rs->abort = true;
  }
  if (--rs->active == 0) rs->cv.notify_all();
}

}  // namespace

Status RunPipeline(MorselPlan* plan,
                   const std::vector<std::unique_ptr<PipelineOp>>& ops,
                   PipelineSink* sink) {
  for (const auto& op : ops) {
    PDT_RETURN_NOT_OK(op->Prepare());
  }

  if (plan->serial != nullptr) {
    // Serial fallback: one worker, the caller.
    std::vector<std::unique_ptr<PipelineOpState>> op_states;
    op_states.reserve(ops.size());
    for (const auto& op : ops) op_states.push_back(op->MakeState());
    std::unique_ptr<PipelineOpState> sink_state = sink->MakeState();
    Batch local;
    while (true) {
      PDT_ASSIGN_OR_RETURN(
          bool more, plan->serial->Next(&local, plan->options.batch_rows));
      if (!more) break;
      Status st = Status::OK();
      for (size_t i = 0; i < ops.size() && st.ok(); ++i) {
        st = ops[i]->Execute(&local, op_states[i].get());
      }
      PDT_RETURN_NOT_OK(st);
      if (local.num_rows() == 0) continue;
      // The whole serial stream counts as morsel 0: it already is the
      // serial sequence.
      PDT_RETURN_NOT_OK(sink->Sink(&local, sink_state.get(), 0));
    }
    PDT_RETURN_NOT_OK(sink->Finish(sink_state.get()));
    return sink->Combine(sink_state.get());
  }

  if (plan->shared != nullptr) {
    // Shared-scan ride: this thread alone pulls completed morsels from
    // the shared merge stream (the stream's workers and co-riding
    // consumers provide the scan parallelism) and runs the per-query
    // fragment ops + sink privately. Units carry the true morsel index,
    // so a sort breaker's sequence tags — and therefore its output —
    // are byte-identical to the isolated run despite the rotated
    // delivery order.
    std::vector<std::unique_ptr<PipelineOpState>> op_states;
    op_states.reserve(ops.size());
    for (const auto& op : ops) op_states.push_back(op->MakeState());
    std::unique_ptr<PipelineOpState> sink_state = sink->MakeState();
    SharedMorselUnit unit;
    while (true) {
      PDT_ASSIGN_OR_RETURN(bool more, plan->shared->NextUnit(&unit));
      if (!more) break;
      for (const std::shared_ptr<const Batch>& shared_b : unit.batches) {
        Batch local = *shared_b;  // private copy: ops mutate in place
        Status st = Status::OK();
        for (size_t i = 0; i < ops.size() && st.ok(); ++i) {
          st = ops[i]->Execute(&local, op_states[i].get());
        }
        PDT_RETURN_NOT_OK(st);
        if (local.num_rows() == 0) continue;
        PDT_RETURN_NOT_OK(sink->Sink(&local, sink_state.get(), unit.morsel));
      }
    }
    PDT_RETURN_NOT_OK(sink->Finish(sink_state.get()));
    return sink->Combine(sink_state.get());
  }

  auto rs = std::make_shared<RunShared>();
  rs->plan = plan;
  rs->ops = &ops;
  rs->sink = sink;
  int threads = plan->options.num_threads;
  if (threads <= 0) threads = ThreadPool::DefaultThreads();
  const size_t helpers = std::min<size_t>(
      threads > 0 ? static_cast<size_t>(threads - 1) : 0,
      plan->morsels.size());
  ThreadPool::Global().SubmitMany(CurrentQueryToken(), helpers,
                                  [rs] { RunPipelineWorker(rs); });
  // The driver always participates, so the pipeline finishes even when
  // the shared pool is saturated by concurrent queries.
  RunPipelineWorker(rs);
  std::unique_lock<std::mutex> lock(rs->mu);
  rs->cv.wait(lock, [&rs] { return rs->active == 0; });
  rs->finished = true;
  return rs->error;
}

// ---------------------------------------------------------------------
// Fragment op factories.
// ---------------------------------------------------------------------

std::unique_ptr<PipelineOp> MakeFilterOp(VecPredicate predicate) {
  return std::make_unique<FilterOp>(std::move(predicate));
}

std::unique_ptr<PipelineOp> MakeProjectOp(std::vector<ColumnExpr> exprs) {
  return std::make_unique<ProjectOp>(std::move(exprs));
}

std::unique_ptr<PipelineOp> MakeJoinProbeOp(
    std::shared_ptr<JoinBuildHandle> build, std::vector<size_t> probe_keys,
    JoinKind kind) {
  return std::make_unique<JoinProbeOp>(std::move(build),
                                       std::move(probe_keys), kind);
}

// ---------------------------------------------------------------------
// OpChainSource.
// ---------------------------------------------------------------------

OpChainSource::OpChainSource(std::unique_ptr<BatchSource> input,
                             std::vector<std::unique_ptr<PipelineOp>> ops)
    : input_(std::move(input)), ops_(std::move(ops)) {}

OpChainSource::~OpChainSource() = default;

StatusOr<bool> OpChainSource::Next(Batch* out, size_t max_rows) {
  if (!prepared_) {
    for (const auto& op : ops_) {
      PDT_RETURN_NOT_OK(op->Prepare());
    }
    states_.reserve(ops_.size());
    for (const auto& op : ops_) states_.push_back(op->MakeState());
    prepared_ = true;
  }
  while (true) {
    PDT_ASSIGN_OR_RETURN(bool more, input_->Next(out, max_rows));
    if (!more) return false;
    for (size_t i = 0; i < ops_.size(); ++i) {
      PDT_RETURN_NOT_OK(ops_[i]->Execute(out, states_[i].get()));
    }
    if (out->num_rows() > 0) return true;
  }
}

// ---------------------------------------------------------------------
// Aggregate breaker.
// ---------------------------------------------------------------------

namespace {

class PartialAggSink : public PipelineSink {
 public:
  PartialAggSink(std::vector<size_t> group_by, std::vector<AggSpec> aggs,
                 BudgetLease* lease = nullptr)
      : group_by_(std::move(group_by)),
        aggs_(std::move(aggs)),
        merged_(group_by_, aggs_),
        lease_(lease),
        // Per-group estimate: the key values + hash + slot + count +
        // one accumulator per aggregate. The budgets account growth,
        // not exact heap bytes.
        group_bytes_(48 + 16 * aggs_.size()) {}

  struct State : PipelineOpState {
    State(const std::vector<size_t>& gb, const std::vector<AggSpec>& aggs)
        : partial(gb, aggs) {}
    AggregationState partial;
    size_t charged_groups = 0;
  };

  std::unique_ptr<PipelineOpState> MakeState() const override {
    return std::make_unique<State>(group_by_, aggs_);
  }

  Status Sink(Batch* batch, PipelineOpState* state, size_t) override {
    State* s = static_cast<State*>(state);
    PDT_RETURN_NOT_OK(s->partial.Absorb(*batch));
    if (lease_ != nullptr) {
      // Charge table growth (monotone): new groups since the last batch.
      const size_t groups = s->partial.num_groups();
      if (groups > s->charged_groups) {
        PDT_RETURN_NOT_OK(
            lease_->Charge((groups - s->charged_groups) * group_bytes_));
        s->charged_groups = groups;
      }
    }
    return Status::OK();
  }

  Status Combine(PipelineOpState* state) override {
    return merged_.MergeFrom(static_cast<State*>(state)->partial);
  }

  Batch TakeResult() { return merged_.TakeResult(); }

 private:
  std::vector<size_t> group_by_;
  std::vector<AggSpec> aggs_;
  AggregationState merged_;
  BudgetLease* lease_;
  size_t group_bytes_;
};

/// Lazy parallel aggregation: runs the pipeline into per-worker partial
/// tables on the first pull, merges, then emits like HashAggNode.
class ParallelAggSource : public BatchSource {
 public:
  ParallelAggSource(MorselPlan plan,
                    std::vector<std::unique_ptr<PipelineOp>> ops,
                    std::vector<size_t> group_by, std::vector<AggSpec> aggs)
      : plan_(std::move(plan)),
        ops_(std::move(ops)),
        group_by_(std::move(group_by)),
        aggs_(std::move(aggs)) {}

  StatusOr<bool> Next(Batch* out, size_t max_rows) override {
    if (!built_) {
      PartialAggSink sink(group_by_, aggs_, &lease_);
      PDT_RETURN_NOT_OK(RunPipeline(&plan_, ops_, &sink));
      emitter_ = std::make_unique<VectorSource>(sink.TakeResult());
      built_ = true;
    }
    return emitter_->Next(out, max_rows);
  }

 private:
  MorselPlan plan_;
  std::vector<std::unique_ptr<PipelineOp>> ops_;
  std::vector<size_t> group_by_;
  std::vector<AggSpec> aggs_;
  // Captured at construction, on the query thread (charge discipline:
  // see util/mem_budget.h); released when this source dies — the
  // materialized result's lifetime.
  BudgetLease lease_{CurrentBudget()};
  bool built_ = false;
  std::unique_ptr<BatchSource> emitter_;
};

// ---------------------------------------------------------------------
// Join-build breaker (hash-partitioned).
// ---------------------------------------------------------------------

void AppendRows(Batch* into, const Batch& b) {
  for (size_t c = 0; c < into->num_columns(); ++c) {
    into->column(c).AppendRange(b.column(c), 0, b.num_rows());
  }
}

// Partition count for a parallel join build: enough partitions that the
// finalize (concatenate + hash) load-balances across the workers even
// when key hashes skew, capped so tiny builds don't shatter.
size_t AutoJoinPartitions(int num_threads) {
  if (num_threads <= 1) return 1;
  size_t p = 1;
  while (p < 2 * static_cast<size_t>(num_threads)) p <<= 1;
  return std::min<size_t>(p, 64);
}

// --- join-build partition spill ---------------------------------------
// When a collect charge hits the memory budget and the query has a spill
// directory, the worker's partition slices go to disk (one file per
// partition slice) and their bytes return to the budget; Finalize reads
// them back partition-at-a-time. Row-at-a-time Value encoding: the spill
// path trades speed for simplicity — it only runs once the query is
// over budget.

Status WriteSpillSlice(const std::string& path, const Batch& rows,
                       const std::vector<uint64_t>& hashes) {
  std::string buf;
  const size_t cols = rows.num_columns();
  const bool has_ids = rows.column_ids().size() == cols;
  PutFixed32(&buf, static_cast<uint32_t>(cols));
  for (size_t c = 0; c < cols; ++c) {
    PutFixed32(&buf, has_ids ? rows.column_ids()[c]
                             : static_cast<uint32_t>(c));
    PutFixed32(&buf, static_cast<uint32_t>(rows.column(c).type()));
  }
  PutFixed64(&buf, rows.num_rows());
  for (size_t r = 0; r < rows.num_rows(); ++r) {
    for (size_t c = 0; c < cols; ++c) {
      const Value v = rows.column(c).GetValue(r);
      switch (v.type()) {
        case TypeId::kInt64:
          PutFixed64(&buf, static_cast<uint64_t>(v.AsInt64()));
          break;
        case TypeId::kDouble: {
          uint64_t u;
          const double d = v.AsDouble();
          std::memcpy(&u, &d, sizeof(u));
          PutFixed64(&buf, u);
          break;
        }
        case TypeId::kString: {
          const std::string& s = v.AsString();
          PutFixed32(&buf, static_cast<uint32_t>(s.size()));
          buf.append(s);
          break;
        }
      }
    }
  }
  PutFixed64(&buf, hashes.size());
  for (uint64_t h : hashes) PutFixed64(&buf, h);
  PDT_ASSIGN_OR_RETURN(
      std::unique_ptr<WritableFile> file,
      FileSystem::Default()->NewWritableFile(path, /*truncate=*/true));
  PDT_RETURN_NOT_OK(file->Append(buf));
  // No Sync: spill files are scratch, not durable state — a crash loses
  // the query anyway.
  return file->Close();
}

Status ReadSpillSlice(const std::string& path, Batch* rows,
                      std::vector<uint64_t>* hashes) {
  std::string buf;
  PDT_RETURN_NOT_OK(FileSystem::Default()->ReadFileToString(path, &buf));
  size_t pos = 0;
  auto need = [&](size_t n) {
    return pos + n <= buf.size()
               ? Status::OK()
               : Status::Corruption("truncated spill slice " + path);
  };
  PDT_RETURN_NOT_OK(need(4));
  const size_t cols = DecodeFixed32(buf.data() + pos);
  pos += 4;
  *rows = Batch();
  std::vector<ColumnId> ids;
  for (size_t c = 0; c < cols; ++c) {
    PDT_RETURN_NOT_OK(need(8));
    ids.push_back(DecodeFixed32(buf.data() + pos));
    const TypeId type =
        static_cast<TypeId>(DecodeFixed32(buf.data() + pos + 4));
    pos += 8;
    rows->columns().emplace_back(type);
  }
  rows->set_column_ids(std::move(ids));
  PDT_RETURN_NOT_OK(need(8));
  const size_t n = static_cast<size_t>(DecodeFixed64(buf.data() + pos));
  pos += 8;
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      ColumnVector& col = rows->column(c);
      switch (col.type()) {
        case TypeId::kInt64: {
          PDT_RETURN_NOT_OK(need(8));
          col.Append(Value(
              static_cast<int64_t>(DecodeFixed64(buf.data() + pos))));
          pos += 8;
          break;
        }
        case TypeId::kDouble: {
          PDT_RETURN_NOT_OK(need(8));
          double d;
          const uint64_t u = DecodeFixed64(buf.data() + pos);
          std::memcpy(&d, &u, sizeof(d));
          col.Append(Value(d));
          pos += 8;
          break;
        }
        case TypeId::kString: {
          PDT_RETURN_NOT_OK(need(4));
          const size_t len = DecodeFixed32(buf.data() + pos);
          pos += 4;
          PDT_RETURN_NOT_OK(need(len));
          col.Append(Value(buf.substr(pos, len)));
          pos += len;
          break;
        }
      }
    }
  }
  PDT_RETURN_NOT_OK(need(8));
  const size_t nh = static_cast<size_t>(DecodeFixed64(buf.data() + pos));
  pos += 8;
  PDT_RETURN_NOT_OK(need(8 * nh));
  hashes->clear();
  hashes->reserve(nh);
  for (size_t i = 0; i < nh; ++i) {
    hashes->push_back(DecodeFixed64(buf.data() + pos));
    pos += 8;
  }
  return Status::OK();
}

/// Workers hash each collected batch's key columns once and route the
/// rows into P per-worker partition batches (gathers). Combine hands
/// the per-worker slices over; Finalize then concatenates and hashes
/// the P partitions in parallel (ParallelFor) into the published
/// PartitionedJoinTable, reusing the collect-time hashes.
class PartitionedCollectSink : public PipelineSink {
 public:
  PartitionedCollectSink(std::vector<size_t> keys, size_t num_partitions,
                         BudgetLease* lease = nullptr,
                         std::string spill_dir = {})
      : keys_(std::move(keys)),
        num_partitions_(num_partitions),
        lease_(lease),
        spill_dir_(std::move(spill_dir)) {}

  struct State : PipelineOpState {
    bool init = false;
    std::vector<Batch> parts;
    std::vector<std::vector<uint64_t>> part_hashes;
    std::vector<uint64_t> row_hashes;  // scratch
    std::vector<SelVector> route;      // scratch
    size_t charged = 0;  // budget bytes held for this worker's slices
  };

  std::unique_ptr<PipelineOpState> MakeState() const override {
    return std::make_unique<State>();
  }

  Status Sink(Batch* batch, PipelineOpState* state, size_t) override {
    State* s = static_cast<State*>(state);
    const size_t n = batch->num_rows();
    if (!s->init) {
      s->parts.resize(num_partitions_);
      // Copies below: the worker keeps recycling `batch`'s storage on
      // its next pull (ResetLike), so collected rows must be duplicated.
      for (Batch& p : s->parts) p.ResetLike(*batch);
      s->part_hashes.resize(num_partitions_);
      s->route.resize(num_partitions_);
      s->init = true;
    }
    // Spill the routed batch straight back out after this call: set when
    // the budget has no headroom even after shedding this worker's own
    // slices (peers hold the cap), so progress never waits on them.
    bool spill_through = false;
    if (lease_ != nullptr) {
      // Charge the copy before making it: rows + their hashes. A
      // rejected charge either spills this worker's slices (spill_dir
      // configured) or fails the build fast with ResourceExhausted.
      const size_t bytes = batch->ByteSize() + 8 * n;
      Status st = lease_->Charge(bytes);
      if (!st.ok() && !spill_dir_.empty()) {
        if (s->charged > 0) {
          PDT_RETURN_NOT_OK(SpillState(s));
          st = lease_->Charge(bytes);
        }
        if (!st.ok()) {
          st = Status::OK();
          spill_through = true;  // route uncharged, then write out
        }
      }
      PDT_RETURN_NOT_OK(st);
      if (!spill_through) s->charged += bytes;
    }
    s->row_hashes.assign(n, kHashSeed);
    for (size_t k : keys_) {
      batch->column(k).HashColumn(s->row_hashes.data());
    }
    if (num_partitions_ == 1) {
      AppendRows(&s->parts[0], *batch);
      s->part_hashes[0].insert(s->part_hashes[0].end(),
                               s->row_hashes.begin(), s->row_hashes.end());
    } else {
      for (SelVector& r : s->route) r.clear();
      for (size_t row = 0; row < n; ++row) {
        s->route[JoinPartitionOf(s->row_hashes[row], num_partitions_)]
            .push_back(static_cast<uint32_t>(row));
      }
      for (size_t p = 0; p < num_partitions_; ++p) {
        if (s->route[p].empty()) continue;
        s->parts[p].AppendGather(*batch, s->route[p]);
        for (uint32_t row : s->route[p].indices()) {
          s->part_hashes[p].push_back(s->row_hashes[row]);
        }
      }
    }
    if (spill_through) return SpillState(s);
    return Status::OK();
  }

  Status Combine(PipelineOpState* state) override {
    State* s = static_cast<State*>(state);
    if (!s->init) return Status::OK();
    // The per-worker state dies here: move, don't copy — this runs
    // under the runner's serializing mutex. The charged bytes stay held
    // by the shared lease (the slices live on in slices_).
    slices_.push_back({std::move(s->parts), std::move(s->part_hashes)});
    return Status::OK();
  }

  bool spilled() const { return !spill_files_.empty(); }

  /// Builds the published table: for each partition, concatenate every
  /// worker's slice (disk spills first, then the in-memory ones) and
  /// hash it into a JoinTable — independent per partition, so the
  /// partitions build in parallel.
  StatusOr<PartitionedJoinTable> Finalize(int num_threads) {
    PartitionedJoinTable t;
    t.parts.resize(num_partitions_);
    std::vector<Status> errs(num_partitions_);
    ParallelFor(num_threads, 0, num_partitions_, [&](size_t p) {
      Batch rows;
      std::vector<uint64_t> hashes;
      bool first = true;
      if (!spill_files_.empty()) {
        // Restored spill bytes are not re-charged: the spill's job is
        // to bound collect-time pressure; the final table's in-memory
        // slices remain covered by the lease.
        for (const std::string& path : spill_files_[p]) {
          Batch sr;
          std::vector<uint64_t> sh;
          Status st = ReadSpillSlice(path, &sr, &sh);
          if (!st.ok()) {
            errs[p] = st;
            return;
          }
          if (first) {
            rows = std::move(sr);
            hashes = std::move(sh);
            first = false;
          } else {
            AppendRows(&rows, sr);
            hashes.insert(hashes.end(), sh.begin(), sh.end());
          }
          // Best-effort cleanup; a leftover scratch file is harmless.
          (void)FileSystem::Default()->DeleteFile(path);
        }
      }
      for (WorkerSlices& ws : slices_) {
        if (ws.parts[p].num_rows() == 0 && !first) continue;
        if (first) {
          rows = std::move(ws.parts[p]);
          hashes = std::move(ws.hashes[p]);
          first = false;
        } else {
          AppendRows(&rows, ws.parts[p]);
          hashes.insert(hashes.end(), ws.hashes[p].begin(),
                        ws.hashes[p].end());
        }
      }
      t.parts[p] = JoinTable::BuildWithHashes(std::move(rows), keys_,
                                              std::move(hashes));
    });
    slices_.clear();
    for (const Status& st : errs) {
      PDT_RETURN_NOT_OK(st);
    }
    return t;
  }

 private:
  struct WorkerSlices {
    std::vector<Batch> parts;
    std::vector<std::vector<uint64_t>> hashes;
  };

  // Writes this worker's non-empty partition slices to disk, registers
  // the files, and returns the worker's charged bytes to the budget.
  // Runs on the worker that owns `s` — only the file registry is shared.
  Status SpillState(State* s) {
    PDT_RETURN_NOT_OK(FileSystem::Default()->CreateDir(spill_dir_));
    for (size_t p = 0; p < num_partitions_; ++p) {
      if (s->parts[p].num_rows() == 0) continue;
      const uint64_t id =
          spill_counter_.fetch_add(1, std::memory_order_relaxed);
      std::string path = spill_dir_ + "/joinbuild_p" + std::to_string(p) +
                         "_" + std::to_string(id) + ".spill";
      PDT_RETURN_NOT_OK(
          WriteSpillSlice(path, s->parts[p], s->part_hashes[p]));
      {
        std::lock_guard<std::mutex> lock(spill_mu_);
        if (spill_files_.empty()) spill_files_.resize(num_partitions_);
        spill_files_[p].push_back(std::move(path));
      }
      s->parts[p].Clear();  // keeps the layout for further appends
      s->part_hashes[p].clear();
    }
    lease_->Release(s->charged);
    s->charged = 0;
    return Status::OK();
  }

  std::vector<size_t> keys_;
  size_t num_partitions_;
  BudgetLease* lease_;
  std::string spill_dir_;
  std::mutex spill_mu_;
  std::vector<std::vector<std::string>> spill_files_;  // per partition
  std::atomic<uint64_t> spill_counter_{0};
  std::vector<WorkerSlices> slices_;
};

// ---------------------------------------------------------------------
// Sort breaker.
// ---------------------------------------------------------------------

/// Workers collect rows tagged with (morsel index, row-within-morsel) —
/// the serial scan order — then sort their runs in Finish(), which runs
/// per worker *outside* the serializing lock: run sorting itself is
/// parallel. Combine just moves the sorted runs into the shared list
/// for the consumer's loser-tree merge.
class SortBuildSink : public PipelineSink {
 public:
  SortBuildSink(std::vector<SortKey> keys, size_t limit,
                BudgetLease* lease = nullptr)
      : keys_(std::move(keys)), limit_(limit), lease_(lease) {}

  struct State : PipelineOpState {
    Batch rows;
    std::vector<uint64_t> seq;
    bool first = true;
    size_t cur_morsel = static_cast<size_t>(-1);
    uint64_t local = 0;
    SortedRun run;  // produced by Finish
  };

  std::unique_ptr<PipelineOpState> MakeState() const override {
    return std::make_unique<State>();
  }

  Status Sink(Batch* batch, PipelineOpState* state, size_t morsel) override {
    State* s = static_cast<State*>(state);
    if (lease_ != nullptr) {
      // Charge the materialized copy (rows + 8-byte seq tags) before
      // making it; an over-budget sort fails fast here.
      PDT_RETURN_NOT_OK(
          lease_->Charge(batch->ByteSize() + 8 * batch->num_rows()));
    }
    if (morsel != s->cur_morsel) {
      // A morsel is processed by exactly one worker, contiguously, so a
      // fresh row counter per morsel yields globally unique tags in
      // serial scan order.
      s->cur_morsel = morsel;
      s->local = 0;
    }
    const uint64_t base = static_cast<uint64_t>(morsel) << kSeqMorselShift;
    for (size_t i = 0; i < batch->num_rows(); ++i) {
      s->seq.push_back(base | s->local++);
    }
    if (s->first) {
      s->rows = *batch;  // copy: the worker recycles batch storage
      s->first = false;
    } else {
      AppendRows(&s->rows, *batch);
    }
    return Status::OK();
  }

  Status Finish(PipelineOpState* state) override {
    State* s = static_cast<State*>(state);
    if (s->first) return Status::OK();
    SelVector perm;
    perm.indices().resize(s->rows.num_rows());
    std::iota(perm.indices().begin(), perm.indices().end(), 0);
    // (keys, seq) is a strict total order — no stability needed.
    std::sort(perm.indices().begin(), perm.indices().end(),
              [&](uint32_t a, uint32_t b) {
      int c = CompareRowsByKeys(keys_, s->rows, a, s->rows, b);
      if (c != 0) return c < 0;
      return s->seq[a] < s->seq[b];
    });
    // Top-k: rows beyond the limit can never appear in the merged
    // output, whatever the other runs hold.
    if (limit_ > 0 && perm.size() > limit_) perm.indices().resize(limit_);
    s->run.rows.set_column_ids(s->rows.column_ids());
    for (size_t c = 0; c < s->rows.num_columns(); ++c) {
      s->run.rows.columns().emplace_back(s->rows.column(c).type());
    }
    s->run.rows.AppendGather(s->rows, perm);
    s->run.seq.reserve(perm.size());
    for (uint32_t i : perm.indices()) s->run.seq.push_back(s->seq[i]);
    s->rows.Clear();
    s->seq.clear();
    return Status::OK();
  }

  Status Combine(PipelineOpState* state) override {
    State* s = static_cast<State*>(state);
    if (s->run.rows.num_rows() > 0) runs_.push_back(std::move(s->run));
    return Status::OK();
  }

  std::vector<SortedRun> TakeRuns() { return std::move(runs_); }

 private:
  std::vector<SortKey> keys_;
  size_t limit_;
  BudgetLease* lease_;
  std::vector<SortedRun> runs_;
};

/// Lazy parallel sort: runs the pipeline into per-worker sorted runs on
/// the first pull, then streams the loser-tree merge.
class ParallelSortSource : public BatchSource {
 public:
  ParallelSortSource(MorselPlan plan,
                     std::vector<std::unique_ptr<PipelineOp>> ops,
                     std::vector<SortKey> keys, size_t limit)
      : plan_(std::move(plan)),
        ops_(std::move(ops)),
        keys_(std::move(keys)),
        limit_(limit) {}

  StatusOr<bool> Next(Batch* out, size_t max_rows) override {
    if (!merger_) {
      SortBuildSink sink(keys_, limit_, &lease_);
      PDT_RETURN_NOT_OK(RunPipeline(&plan_, ops_, &sink));
      merger_ = std::make_unique<RunMerger>(sink.TakeRuns(), keys_, limit_);
    }
    return merger_->Next(out, max_rows);
  }

 private:
  MorselPlan plan_;
  std::vector<std::unique_ptr<PipelineOp>> ops_;
  std::vector<SortKey> keys_;
  size_t limit_;
  // Captured at construction on the query thread; the charged bytes
  // cover the materialized runs until this source (and its merger) die.
  BudgetLease lease_{CurrentBudget()};
  std::unique_ptr<RunMerger> merger_;
};

}  // namespace

// ---------------------------------------------------------------------
// Pipeline.
// ---------------------------------------------------------------------

Pipeline::Pipeline(MorselPlan plan) : plan_(std::move(plan)) {}
Pipeline::~Pipeline() = default;

Pipeline& Pipeline::Filter(VecPredicate predicate) {
  // Stacked filters fuse into the preceding filter op's conjunction.
  if (!ops_.empty() && ops_.back()->FuseFilter(&predicate)) return *this;
  return Add(MakeFilterOp(std::move(predicate)));
}

Pipeline& Pipeline::Project(std::vector<ColumnExpr> exprs) {
  return Add(MakeProjectOp(std::move(exprs)));
}

Pipeline& Pipeline::Probe(std::shared_ptr<JoinBuildHandle> build,
                          std::vector<size_t> probe_keys, JoinKind kind) {
  return Add(MakeJoinProbeOp(std::move(build), std::move(probe_keys), kind));
}

Pipeline& Pipeline::Add(std::unique_ptr<PipelineOp> op) {
  ops_.push_back(std::move(op));
  return *this;
}

std::unique_ptr<BatchSource> Pipeline::Exchange() && {
  if (plan_.serial != nullptr) {
    return std::make_unique<OpChainSource>(std::move(plan_.serial),
                                           std::move(ops_));
  }
  if (plan_.shared != nullptr && !plan_.options.ordered) {
    // Ride the shared merge stream; the fragment ops run on the pulling
    // thread over private copies of the shared batches.
    return MakeSharedScanSource(std::move(plan_.shared), std::move(ops_));
  }
  return std::make_unique<ParallelScanSource>(
      std::move(plan_.morsels), std::move(plan_.factory), plan_.options,
      plan_.renumber_rids, std::move(ops_));
}

std::unique_ptr<BatchSource> Pipeline::Aggregate(
    std::vector<size_t> group_by, std::vector<AggSpec> aggs) && {
  if (plan_.serial != nullptr) {
    return std::make_unique<HashAggNode>(
        std::make_unique<OpChainSource>(std::move(plan_.serial),
                                        std::move(ops_)),
        std::move(group_by), std::move(aggs));
  }
  return std::make_unique<ParallelAggSource>(std::move(plan_),
                                             std::move(ops_),
                                             std::move(group_by),
                                             std::move(aggs));
}

std::unique_ptr<BatchSource> Pipeline::IntoSortBuild(
    std::vector<SortKey> keys, size_t limit) && {
  if (plan_.serial != nullptr) {
    // One thread: the unchanged serial materializing sort.
    return std::make_unique<SortNode>(
        std::make_unique<OpChainSource>(std::move(plan_.serial),
                                        std::move(ops_)),
        std::move(keys), limit);
  }
  return std::make_unique<ParallelSortSource>(
      std::move(plan_), std::move(ops_), std::move(keys), limit);
}

std::shared_ptr<JoinBuildHandle> Pipeline::IntoJoinBuild(
    std::unique_ptr<Pipeline> pipeline, std::vector<size_t> build_keys,
    size_t num_partitions) {
  std::shared_ptr<Pipeline> pipe = std::move(pipeline);
  // Budget + spill config captured here, on the query thread (the
  // producer may run later, possibly deep inside Prepare).
  auto lease = std::make_shared<BudgetLease>(CurrentBudget());
  std::string spill_dir = CurrentQueryContext().spill_dir;
  auto producer = [pipe, lease, spill_dir, keys = std::move(build_keys),
                   num_partitions]() -> StatusOr<PartitionedJoinTable> {
    if (pipe->plan_.serial != nullptr) {
      // One thread: materialize and hash a single partition — the
      // serial join's unchanged shape.
      OpChainSource chain(std::move(pipe->plan_.serial),
                          std::move(pipe->ops_));
      PDT_ASSIGN_OR_RETURN(Batch rows, MaterializeAll(&chain));
      PDT_RETURN_NOT_OK(lease->Charge(rows.ByteSize()));
      PartitionedJoinTable t;
      t.parts.push_back(JoinTable::Build(std::move(rows), keys));
      return t;
    }
    const int threads = pipe->plan_.options.num_threads;
    const size_t parts =
        num_partitions > 0 ? num_partitions : AutoJoinPartitions(threads);
    PartitionedCollectSink sink(keys, parts, lease.get(), spill_dir);
    PDT_RETURN_NOT_OK(RunPipeline(&pipe->plan_, pipe->ops_, &sink));
    return sink.Finalize(threads);
  };
  auto handle = std::make_shared<JoinBuildHandle>(std::move(producer));
  // The lease outlives the producer: the cached table's bytes stay
  // charged until the handle (and with it the table) is destroyed.
  handle->RetainLease(std::move(lease));
  return handle;
}

}  // namespace pdtstore

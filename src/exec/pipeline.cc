#include "exec/pipeline.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>

#include "exec/operator.h"
#include "util/thread_pool.h"

namespace pdtstore {

namespace {

// ---------------------------------------------------------------------
// Fragment operators.
// ---------------------------------------------------------------------

class FilterOp : public PipelineOp {
 public:
  explicit FilterOp(VecPredicate predicate)
      : predicate_(std::move(predicate)) {}

  struct State : PipelineOpState {
    std::vector<uint8_t> keep;
    Batch out;
  };

  std::unique_ptr<PipelineOpState> MakeState() const override {
    return std::make_unique<State>();
  }

  Status Execute(Batch* batch, PipelineOpState* state) const override {
    State* s = static_cast<State*>(state);
    s->keep.assign(batch->num_rows(), 0);
    predicate_(*batch, &s->keep);
    s->out.ResetLike(*batch);
    s->out.set_start_rid(batch->start_rid());
    s->out.AppendFiltered(*batch, s->keep.data());
    // The consumed input batch becomes next round's output scratch.
    std::swap(*batch, s->out);
    return Status::OK();
  }

 private:
  VecPredicate predicate_;
};

class ProjectOp : public PipelineOp {
 public:
  explicit ProjectOp(std::vector<ColumnExpr> exprs)
      : exprs_(std::move(exprs)) {}

  std::unique_ptr<PipelineOpState> MakeState() const override {
    return nullptr;  // exprs allocate their outputs; no scratch needed
  }

  Status Execute(Batch* batch, PipelineOpState*) const override {
    Batch out;
    out.set_start_rid(batch->start_rid());
    std::vector<ColumnId> ids(exprs_.size());
    for (size_t i = 0; i < exprs_.size(); ++i) {
      ids[i] = static_cast<ColumnId>(i);
      out.columns().push_back(exprs_[i](*batch));
    }
    out.set_column_ids(std::move(ids));
    *batch = std::move(out);
    return Status::OK();
  }

 private:
  std::vector<ColumnExpr> exprs_;
};

class JoinProbeOp : public PipelineOp {
 public:
  JoinProbeOp(std::shared_ptr<JoinBuildHandle> build,
              std::vector<size_t> probe_keys, JoinKind kind)
      : build_(std::move(build)),
        probe_keys_(std::move(probe_keys)),
        kind_(kind) {}

  struct State : PipelineOpState {
    JoinProbeScratch scratch;
    Batch out;
  };

  Status Prepare() override {
    // The build barrier: the build side (possibly a whole pipeline)
    // runs to completion here, before any probe worker starts; the
    // resulting table is immutable and shared lock-free.
    PDT_ASSIGN_OR_RETURN(table_, build_->Resolve());
    return Status::OK();
  }

  std::unique_ptr<PipelineOpState> MakeState() const override {
    return std::make_unique<State>();
  }

  Status Execute(Batch* batch, PipelineOpState* state) const override {
    State* s = static_cast<State*>(state);
    ProbeJoinBatch(*table_, probe_keys_, kind_, *batch, &s->out,
                   &s->scratch);
    std::swap(*batch, s->out);
    return Status::OK();
  }

 private:
  std::shared_ptr<JoinBuildHandle> build_;
  std::vector<size_t> probe_keys_;
  JoinKind kind_;
  const JoinTable* table_ = nullptr;  // set by Prepare
};

// ---------------------------------------------------------------------
// Run-to-completion pipeline driver.
// ---------------------------------------------------------------------

// State shared between the driving thread and its worker tasks. Tasks
// hold it by shared_ptr; `plan` / `ops` / `sink` are borrowed from the
// driver's frame and valid only until `finished` — a task that starts
// after the driver left exits on its first check without touching them.
struct RunShared {
  std::mutex mu;
  std::condition_variable cv;
  size_t next = 0;    // next morsel to claim
  size_t active = 0;  // workers past their start check
  bool finished = false;
  bool abort = false;
  Status error = Status::OK();

  MorselPlan* plan = nullptr;
  const std::vector<std::unique_ptr<PipelineOp>>* ops = nullptr;
  PipelineSink* sink = nullptr;
};

void RunPipelineWorker(const std::shared_ptr<RunShared>& rs) {
  {
    std::lock_guard<std::mutex> lock(rs->mu);
    if (rs->finished || rs->abort) return;
    ++rs->active;
  }
  const auto& ops = *rs->ops;
  std::vector<std::unique_ptr<PipelineOpState>> op_states;
  op_states.reserve(ops.size());
  for (const auto& op : ops) op_states.push_back(op->MakeState());
  std::unique_ptr<PipelineOpState> sink_state = rs->sink->MakeState();

  Status status = Status::OK();
  Batch local;
  const size_t num_morsels = rs->plan->morsels.size();
  while (status.ok()) {
    size_t m;
    {
      std::lock_guard<std::mutex> lock(rs->mu);
      if (rs->abort || rs->next >= num_morsels) break;
      m = rs->next++;
    }
    std::unique_ptr<BatchSource> src =
        rs->plan->factory(m, rs->plan->morsels[m], m + 1 == num_morsels);
    while (status.ok()) {
      StatusOr<bool> more = src->Next(&local, rs->plan->options.batch_rows);
      if (!more.ok()) {
        status = more.status();
        break;
      }
      if (!*more) break;
      for (size_t i = 0; i < ops.size() && status.ok(); ++i) {
        status = ops[i]->Execute(&local, op_states[i].get());
      }
      if (!status.ok() || local.num_rows() == 0) continue;
      status = rs->sink->Sink(&local, sink_state.get());
    }
  }

  std::lock_guard<std::mutex> lock(rs->mu);
  if (status.ok() && !rs->abort) {
    // Merge this worker's partial state into the shared result;
    // serialized by rs->mu.
    status = rs->sink->Combine(sink_state.get());
  }
  if (!status.ok()) {
    if (rs->error.ok()) rs->error = status;
    rs->abort = true;
  }
  if (--rs->active == 0) rs->cv.notify_all();
}

}  // namespace

Status RunPipeline(MorselPlan* plan,
                   const std::vector<std::unique_ptr<PipelineOp>>& ops,
                   PipelineSink* sink) {
  for (const auto& op : ops) {
    PDT_RETURN_NOT_OK(op->Prepare());
  }

  if (plan->serial != nullptr) {
    // Serial fallback: one worker, the caller.
    std::vector<std::unique_ptr<PipelineOpState>> op_states;
    op_states.reserve(ops.size());
    for (const auto& op : ops) op_states.push_back(op->MakeState());
    std::unique_ptr<PipelineOpState> sink_state = sink->MakeState();
    Batch local;
    while (true) {
      PDT_ASSIGN_OR_RETURN(
          bool more, plan->serial->Next(&local, plan->options.batch_rows));
      if (!more) break;
      Status st = Status::OK();
      for (size_t i = 0; i < ops.size() && st.ok(); ++i) {
        st = ops[i]->Execute(&local, op_states[i].get());
      }
      PDT_RETURN_NOT_OK(st);
      if (local.num_rows() == 0) continue;
      PDT_RETURN_NOT_OK(sink->Sink(&local, sink_state.get()));
    }
    return sink->Combine(sink_state.get());
  }

  auto rs = std::make_shared<RunShared>();
  rs->plan = plan;
  rs->ops = &ops;
  rs->sink = sink;
  int threads = plan->options.num_threads;
  if (threads <= 0) threads = ThreadPool::DefaultThreads();
  const size_t helpers = std::min<size_t>(
      threads > 0 ? static_cast<size_t>(threads - 1) : 0,
      plan->morsels.size());
  for (size_t i = 0; i < helpers; ++i) {
    ThreadPool::Global().Submit([rs] { RunPipelineWorker(rs); });
  }
  // The driver always participates, so the pipeline finishes even when
  // the shared pool is saturated by concurrent queries.
  RunPipelineWorker(rs);
  std::unique_lock<std::mutex> lock(rs->mu);
  rs->cv.wait(lock, [&rs] { return rs->active == 0; });
  rs->finished = true;
  return rs->error;
}

// ---------------------------------------------------------------------
// Fragment op factories.
// ---------------------------------------------------------------------

std::unique_ptr<PipelineOp> MakeFilterOp(VecPredicate predicate) {
  return std::make_unique<FilterOp>(std::move(predicate));
}

std::unique_ptr<PipelineOp> MakeProjectOp(std::vector<ColumnExpr> exprs) {
  return std::make_unique<ProjectOp>(std::move(exprs));
}

std::unique_ptr<PipelineOp> MakeJoinProbeOp(
    std::shared_ptr<JoinBuildHandle> build, std::vector<size_t> probe_keys,
    JoinKind kind) {
  return std::make_unique<JoinProbeOp>(std::move(build),
                                       std::move(probe_keys), kind);
}

// ---------------------------------------------------------------------
// OpChainSource.
// ---------------------------------------------------------------------

OpChainSource::OpChainSource(std::unique_ptr<BatchSource> input,
                             std::vector<std::unique_ptr<PipelineOp>> ops)
    : input_(std::move(input)), ops_(std::move(ops)) {}

OpChainSource::~OpChainSource() = default;

StatusOr<bool> OpChainSource::Next(Batch* out, size_t max_rows) {
  if (!prepared_) {
    for (const auto& op : ops_) {
      PDT_RETURN_NOT_OK(op->Prepare());
    }
    states_.reserve(ops_.size());
    for (const auto& op : ops_) states_.push_back(op->MakeState());
    prepared_ = true;
  }
  while (true) {
    PDT_ASSIGN_OR_RETURN(bool more, input_->Next(out, max_rows));
    if (!more) return false;
    for (size_t i = 0; i < ops_.size(); ++i) {
      PDT_RETURN_NOT_OK(ops_[i]->Execute(out, states_[i].get()));
    }
    if (out->num_rows() > 0) return true;
  }
}

// ---------------------------------------------------------------------
// Aggregate breaker.
// ---------------------------------------------------------------------

namespace {

class PartialAggSink : public PipelineSink {
 public:
  PartialAggSink(std::vector<size_t> group_by, std::vector<AggSpec> aggs)
      : group_by_(std::move(group_by)),
        aggs_(std::move(aggs)),
        merged_(group_by_, aggs_) {}

  struct State : PipelineOpState {
    State(const std::vector<size_t>& gb, const std::vector<AggSpec>& aggs)
        : partial(gb, aggs) {}
    AggregationState partial;
  };

  std::unique_ptr<PipelineOpState> MakeState() const override {
    return std::make_unique<State>(group_by_, aggs_);
  }

  Status Sink(Batch* batch, PipelineOpState* state) override {
    return static_cast<State*>(state)->partial.Absorb(*batch);
  }

  Status Combine(PipelineOpState* state) override {
    return merged_.MergeFrom(static_cast<State*>(state)->partial);
  }

  Batch TakeResult() { return merged_.TakeResult(); }

 private:
  std::vector<size_t> group_by_;
  std::vector<AggSpec> aggs_;
  AggregationState merged_;
};

/// Lazy parallel aggregation: runs the pipeline into per-worker partial
/// tables on the first pull, merges, then emits like HashAggNode.
class ParallelAggSource : public BatchSource {
 public:
  ParallelAggSource(MorselPlan plan,
                    std::vector<std::unique_ptr<PipelineOp>> ops,
                    std::vector<size_t> group_by, std::vector<AggSpec> aggs)
      : plan_(std::move(plan)),
        ops_(std::move(ops)),
        group_by_(std::move(group_by)),
        aggs_(std::move(aggs)) {}

  StatusOr<bool> Next(Batch* out, size_t max_rows) override {
    if (!built_) {
      PartialAggSink sink(group_by_, aggs_);
      PDT_RETURN_NOT_OK(RunPipeline(&plan_, ops_, &sink));
      emitter_ = std::make_unique<VectorSource>(sink.TakeResult());
      built_ = true;
    }
    return emitter_->Next(out, max_rows);
  }

 private:
  MorselPlan plan_;
  std::vector<std::unique_ptr<PipelineOp>> ops_;
  std::vector<size_t> group_by_;
  std::vector<AggSpec> aggs_;
  bool built_ = false;
  std::unique_ptr<BatchSource> emitter_;
};

// ---------------------------------------------------------------------
// Join-build breaker.
// ---------------------------------------------------------------------

class CollectSink : public PipelineSink {
 public:
  struct State : PipelineOpState {
    Batch rows;
    bool first = true;
  };

  std::unique_ptr<PipelineOpState> MakeState() const override {
    return std::make_unique<State>();
  }

  Status Sink(Batch* batch, PipelineOpState* state) override {
    State* s = static_cast<State*>(state);
    // Copies: the worker keeps recycling `batch`'s storage on its next
    // pull (ResetLike), so the rows must be duplicated here.
    if (s->first) {
      s->rows = *batch;
      s->first = false;
    } else {
      AppendRows(&s->rows, *batch);
    }
    return Status::OK();
  }

  Status Combine(PipelineOpState* state) override {
    State* s = static_cast<State*>(state);
    if (s->first) return Status::OK();
    // The per-worker state dies here: move, don't copy — this runs
    // under the runner's serializing mutex.
    if (all_first_) {
      all_ = std::move(s->rows);
      all_first_ = false;
    } else {
      AppendRows(&all_, s->rows);
    }
    return Status::OK();
  }

  Batch TakeRows() { return std::move(all_); }

 private:
  static void AppendRows(Batch* into, const Batch& b) {
    for (size_t c = 0; c < into->num_columns(); ++c) {
      into->column(c).AppendRange(b.column(c), 0, b.num_rows());
    }
  }

  Batch all_;
  bool all_first_ = true;
};

}  // namespace

// ---------------------------------------------------------------------
// Pipeline.
// ---------------------------------------------------------------------

Pipeline::Pipeline(MorselPlan plan) : plan_(std::move(plan)) {}
Pipeline::~Pipeline() = default;

Pipeline& Pipeline::Filter(VecPredicate predicate) {
  return Add(MakeFilterOp(std::move(predicate)));
}

Pipeline& Pipeline::Project(std::vector<ColumnExpr> exprs) {
  return Add(MakeProjectOp(std::move(exprs)));
}

Pipeline& Pipeline::Probe(std::shared_ptr<JoinBuildHandle> build,
                          std::vector<size_t> probe_keys, JoinKind kind) {
  return Add(MakeJoinProbeOp(std::move(build), std::move(probe_keys), kind));
}

Pipeline& Pipeline::Add(std::unique_ptr<PipelineOp> op) {
  ops_.push_back(std::move(op));
  return *this;
}

std::unique_ptr<BatchSource> Pipeline::Exchange() && {
  if (plan_.serial != nullptr) {
    return std::make_unique<OpChainSource>(std::move(plan_.serial),
                                           std::move(ops_));
  }
  return std::make_unique<ParallelScanSource>(
      std::move(plan_.morsels), std::move(plan_.factory), plan_.options,
      plan_.renumber_rids, std::move(ops_));
}

std::unique_ptr<BatchSource> Pipeline::Aggregate(
    std::vector<size_t> group_by, std::vector<AggSpec> aggs) && {
  if (plan_.serial != nullptr) {
    return std::make_unique<HashAggNode>(
        std::make_unique<OpChainSource>(std::move(plan_.serial),
                                        std::move(ops_)),
        std::move(group_by), std::move(aggs));
  }
  return std::make_unique<ParallelAggSource>(std::move(plan_),
                                             std::move(ops_),
                                             std::move(group_by),
                                             std::move(aggs));
}

std::shared_ptr<JoinBuildHandle> Pipeline::IntoJoinBuild(
    std::unique_ptr<Pipeline> pipeline, std::vector<size_t> build_keys) {
  std::shared_ptr<Pipeline> pipe = std::move(pipeline);
  auto producer = [pipe]() -> StatusOr<Batch> {
    if (pipe->plan_.serial != nullptr) {
      OpChainSource chain(std::move(pipe->plan_.serial),
                          std::move(pipe->ops_));
      return MaterializeAll(&chain);
    }
    CollectSink sink;
    PDT_RETURN_NOT_OK(RunPipeline(&pipe->plan_, pipe->ops_, &sink));
    return sink.TakeRows();
  };
  return std::make_shared<JoinBuildHandle>(std::move(producer),
                                           std::move(build_keys));
}

}  // namespace pdtstore

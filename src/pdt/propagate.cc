// Algorithm 7: Propagate. Folds a higher-layer PDT W (updates [t1,t2>)
// into this lower-layer PDT R (updates [t0,t1>), where W is *consecutive*
// to R: W's SID domain equals R's RID domain. Used to migrate the
// Write-PDT into the Read-PDT and a committing Trans-PDT into the
// Write-PDT (Sec. 3.3).
//
// The key observation (paper Sec. 3.3): as W's updates are applied to R
// left-to-right, R's RID domain evolves from t1 towards t2, so each W
// entry's own RID (sid + running delta within W) is exactly the position
// at which to apply it to R. Inserts additionally need SKRidToSid on R to
// land correctly among R's ghost tuples.
#include <limits>

#include "pdt/pdt.h"

namespace pdtstore {

Status Pdt::Propagate(const Pdt& w) {
  Cursor c = w.Begin();
  bool done = false;
  while (!done) {
    PDT_RETURN_NOT_OK(PropagateStep(
        w, &c, std::numeric_limits<size_t>::max(), &done));
  }
  return Status::OK();
}

Status Pdt::PropagateStep(const Pdt& w, Cursor* cursor, size_t max_entries,
                          bool* done) {
  if (&w == this) return Status::InvalidArgument("cannot self-propagate");
  const ValueSpace& wvs = w.value_space();
  Cursor& c = *cursor;
  for (size_t applied = 0; c.Valid() && applied < max_entries;
       c.Next(), ++applied) {
    const Rid rid = c.rid();
    const uint16_t type = c.type();
    if (type == kTypeIns) {
      Tuple tuple = wvs.GetInsertTuple(c.value());
      std::vector<Value> sk = wvs.GetInsertSortKey(c.value());
      Sid sid = SKRidToSid(sk, rid);
      PDT_RETURN_NOT_OK(AddInsert(sid, rid, tuple));
    } else if (type == kTypeDel) {
      PDT_RETURN_NOT_OK(AddDelete(rid, wvs.GetDeleteKey(c.value())));
    } else {
      const ColumnId col = static_cast<ColumnId>(type);
      PDT_RETURN_NOT_OK(
          AddModify(rid, col, wvs.GetModifyValue(col, c.value())));
    }
  }
  *done = !c.Valid();
  return Status::OK();
}

}  // namespace pdtstore

// Figure 18 reproduction: single- vs multi-column sort keys.
//
// The paper fixes a 6-column table of 1M tuples and sweeps the number of
// sort-key columns from 1 to 4 (int and string variants) at update rates
// 0..2.5 per 100 tuples; the query projects the non-key columns. VDT
// query time grows with the number of key columns (more columns scanned
// and compared in the value-based merge); PDT time *decreases* (fewer
// projected columns) and its merge cost is key-oblivious.
//
// Usage: bench_fig18_multicolumn_keys [--rows=1000000]
//                                     [--rates=0,0.5,1,1.5,2,2.5]
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"

namespace pdtstore {
namespace bench {
namespace {

std::vector<double> ParseList(const std::string& s) {
  std::vector<double> out;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::strtod(s.substr(pos, comma - pos).c_str(), nullptr));
    pos = comma + 1;
  }
  return out;
}

void Run(bool string_keys, uint64_t rows, const std::vector<double>& rates) {
  constexpr int kTotalCols = 6;
  std::printf("# 1M tuples, 6 columns, %s keys\n",
              string_keys ? "string" : "int");
  std::printf("%-8s %-10s %-12s %-12s %-8s\n", "rate", "key_cols",
              "vdt_ms", "pdt_ms", "ratio");
  // One table pair per key-column count; update rates accumulate.
  for (int key_cols = 1; key_cols <= 4; ++key_cols) {
    SyntheticSpec spec;
    spec.rows = rows;
    spec.key_cols = key_cols;
    spec.string_keys = string_keys;
    spec.payload_cols = kTotalCols - key_cols;

    spec.backend = DeltaBackend::kPdt;
    auto pdt_table = BuildSynthetic(spec);
    spec.backend = DeltaBackend::kVdt;
    auto vdt_table = BuildSynthetic(spec);

    double applied_rate = 0.0;
    int step = 0;
    for (double rate : rates) {
      double increment = rate - applied_rate;
      if (increment > 0) {
        uint64_t num_updates = static_cast<uint64_t>(
            static_cast<double>(rows) * increment / 100.0);
        auto updates =
            MakeUpdates(spec, num_updates, /*seed=*/29 + 100 * step);
        ApplyUpdates(pdt_table.get(), updates);
        ApplyUpdates(vdt_table.get(), updates);
        applied_rate = rate;
      }
      ++step;

      // "The query projects the remaining non-key columns."
      std::vector<ColumnId> projection;
      for (int c = key_cols; c < kTotalCols; ++c) {
        projection.push_back(static_cast<ColumnId>(c));
      }
      (void)TimedScan(*pdt_table, projection);
      (void)TimedScan(*vdt_table, projection);
      double pdt_ms = 1e9, vdt_ms = 1e9;
      for (int rep = 0; rep < 3; ++rep) {
        pdt_ms = std::min(pdt_ms, TimedScan(*pdt_table, projection));
        vdt_ms = std::min(vdt_ms, TimedScan(*vdt_table, projection));
      }
      std::printf("%-8.2f %-10d %-12.2f %-12.2f %-8.2f\n", rate, key_cols,
                  vdt_ms, pdt_ms, vdt_ms / pdt_ms);
    }
  }
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace pdtstore

int main(int argc, char** argv) {
  using namespace pdtstore::bench;
  uint64_t rows = std::strtoull(
      FlagValue(argc, argv, "rows", "1000000").c_str(), nullptr, 10);
  auto rates =
      ParseList(FlagValue(argc, argv, "rates", "0,0.5,1,1.5,2,2.5"));
  std::printf(
      "=== Figure 18: MergeScan with single- vs multi-column keys ===\n\n");
  Run(/*string_keys=*/false, rows, rates);
  Run(/*string_keys=*/true, rows, rates);
  std::printf(
      "Expectation (paper): VDT time grows with #key columns at nonzero "
      "update rates; PDT time decreases (fewer projected columns) and is "
      "unaffected by key complexity.\n");
  return 0;
}

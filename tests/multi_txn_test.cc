// Multi-table transaction tests: atomic visibility across tables,
// cross-table conflict aborts rolling back everything, TPC-H-style
// refresh (orders + lineitem together), and multi-table WAL recovery.
#include "txn/multi_txn.h"

#include <gtest/gtest.h>

#include "tpch/tpch_gen.h"
#include "tpch/update_stream.h"

namespace pdtstore {
namespace {

std::shared_ptr<const Schema> OrdersMiniSchema() {
  auto s = Schema::Make(
      {{"okey", TypeId::kInt64}, {"total", TypeId::kInt64}}, {0});
  return std::make_shared<const Schema>(std::move(*s));
}

std::shared_ptr<const Schema> LinesMiniSchema() {
  auto s = Schema::Make({{"okey", TypeId::kInt64},
                         {"line", TypeId::kInt64},
                         {"qty", TypeId::kInt64}},
                        {0, 1});
  return std::make_shared<const Schema>(std::move(*s));
}

class MultiTxnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    orders_ = std::make_unique<Table>("orders", OrdersMiniSchema(),
                                      TableOptions{});
    lines_ = std::make_unique<Table>("lines", LinesMiniSchema(),
                                     TableOptions{});
    ASSERT_TRUE(orders_->Load({{1, 10}, {2, 20}, {3, 30}}).ok());
    ASSERT_TRUE(lines_
                    ->Load({{1, 1, 5},
                            {1, 2, 5},
                            {2, 1, 20},
                            {3, 1, 15},
                            {3, 2, 15}})
                    .ok());
    mgr_ = std::make_unique<MultiTxnManager>(
        std::vector<Table*>{orders_.get(), lines_.get()}, &wal_);
  }

  uint64_t Rows(MultiTransaction& txn, const std::string& t) {
    auto n = txn.RowCount(t);
    EXPECT_TRUE(n.ok());
    return n.ok() ? *n : 0;
  }

  std::unique_ptr<Table> orders_, lines_;
  Wal wal_;
  std::unique_ptr<MultiTxnManager> mgr_;
};

TEST_F(MultiTxnTest, AtomicCrossTableVisibility) {
  auto writer = mgr_->Begin();
  auto reader = mgr_->Begin();
  // Insert an order with two lineitems in one transaction.
  ASSERT_TRUE(writer->Insert("orders", {4, 40}).ok());
  ASSERT_TRUE(writer->Insert("lines", {4, 1, 20}).ok());
  ASSERT_TRUE(writer->Insert("lines", {4, 2, 20}).ok());
  // Before commit: visible to writer, invisible to the concurrent reader.
  EXPECT_EQ(Rows(*writer, "orders"), 4u);
  EXPECT_EQ(Rows(*writer, "lines"), 7u);
  EXPECT_EQ(Rows(*reader, "orders"), 3u);
  EXPECT_EQ(Rows(*reader, "lines"), 5u);
  ASSERT_TRUE(writer->Commit().ok());
  // The overlapping reader still sees its snapshot.
  EXPECT_EQ(Rows(*reader, "orders"), 3u);
  ASSERT_TRUE(reader->Commit().ok());
  // Both tables become visible together to a new transaction.
  auto later = mgr_->Begin();
  EXPECT_EQ(Rows(*later, "orders"), 4u);
  EXPECT_EQ(Rows(*later, "lines"), 7u);
}

TEST_F(MultiTxnTest, ConflictOnOneTableAbortsBoth) {
  auto a = mgr_->Begin();
  auto b = mgr_->Begin();
  // Both modify the same order; b also inserts a lineitem.
  ASSERT_TRUE(a->ModifyByKey("orders", {Value(2)}, 1, Value(21)).ok());
  ASSERT_TRUE(b->ModifyByKey("orders", {Value(2)}, 1, Value(22)).ok());
  ASSERT_TRUE(b->Insert("lines", {2, 2, 9}).ok());
  ASSERT_TRUE(a->Commit().ok());
  Status st = b->Commit();
  EXPECT_EQ(st.code(), StatusCode::kConflict);
  // b's lineitem insert must NOT have become visible (atomic abort).
  auto check = mgr_->Begin();
  EXPECT_EQ(Rows(*check, "lines"), 5u);
  auto order = check->GetByKey("orders", {Value(2)});
  ASSERT_TRUE(order.ok());
  EXPECT_EQ((*order)[1], Value(21));
}

TEST_F(MultiTxnTest, DisjointTablesCommitConcurrently) {
  auto a = mgr_->Begin();
  auto b = mgr_->Begin();
  ASSERT_TRUE(a->ModifyByKey("orders", {Value(1)}, 1, Value(11)).ok());
  ASSERT_TRUE(b->ModifyByKey("lines", {Value(1), Value(1)}, 2,
                             Value(6)).ok());
  ASSERT_TRUE(a->Commit().ok());
  ASSERT_TRUE(b->Commit().ok());  // different tables: no conflict
  auto check = mgr_->Begin();
  auto o = check->GetByKey("orders", {Value(1)});
  auto l = check->GetByKey("lines", {Value(1), Value(1)});
  ASSERT_TRUE(o.ok() && l.ok());
  EXPECT_EQ((*o)[1], Value(11));
  EXPECT_EQ((*l)[2], Value(6));
}

TEST_F(MultiTxnTest, CascadingDeleteAcrossTables) {
  auto txn = mgr_->Begin();
  // Delete order 3 and its lineitems atomically.
  ASSERT_TRUE(txn->DeleteByKey("orders", {Value(3)}).ok());
  ASSERT_TRUE(txn->DeleteByKey("lines", {Value(3), Value(1)}).ok());
  ASSERT_TRUE(txn->DeleteByKey("lines", {Value(3), Value(2)}).ok());
  ASSERT_TRUE(txn->Commit().ok());
  auto check = mgr_->Begin();
  EXPECT_EQ(Rows(*check, "orders"), 2u);
  EXPECT_EQ(Rows(*check, "lines"), 3u);
  EXPECT_FALSE(check->GetByKey("orders", {Value(3)}).ok());
}

TEST_F(MultiTxnTest, RecoveryReplaysMultiTableCommits) {
  {
    auto t1 = mgr_->Begin();
    ASSERT_TRUE(t1->Insert("orders", {4, 40}).ok());
    ASSERT_TRUE(t1->Insert("lines", {4, 1, 40}).ok());
    ASSERT_TRUE(t1->Commit().ok());
    auto t2 = mgr_->Begin();
    ASSERT_TRUE(t2->DeleteByKey("orders", {Value(1)}).ok());
    ASSERT_TRUE(t2->DeleteByKey("lines", {Value(1), Value(1)}).ok());
    ASSERT_TRUE(t2->DeleteByKey("lines", {Value(1), Value(2)}).ok());
    ASSERT_TRUE(t2->Commit().ok());
    auto t3 = mgr_->Begin();
    ASSERT_TRUE(t3->Insert("orders", {5, 50}).ok());
    t3->Abort();
  }
  // Fresh replicas + recovery.
  Table orders2("orders", OrdersMiniSchema(), TableOptions{});
  Table lines2("lines", LinesMiniSchema(), TableOptions{});
  ASSERT_TRUE(orders2.Load({{1, 10}, {2, 20}, {3, 30}}).ok());
  ASSERT_TRUE(
      lines2.Load({{1, 1, 5}, {1, 2, 5}, {2, 1, 20}, {3, 1, 15}, {3, 2, 15}})
          .ok());
  MultiTxnManager mgr2({&orders2, &lines2}, nullptr);
  ASSERT_TRUE(mgr2.Recover(wal_).ok());
  auto check = mgr2.Begin();
  EXPECT_EQ(Rows(*check, "orders"), 3u);  // +1 insert, -1 delete
  EXPECT_EQ(Rows(*check, "lines"), 4u);   // +1, -2
  EXPECT_TRUE(check->GetByKey("orders", {Value(4)}).ok());
  EXPECT_FALSE(check->GetByKey("orders", {Value(1)}).ok());
  EXPECT_FALSE(check->GetByKey("orders", {Value(5)}).ok());  // aborted
}

TEST_F(MultiTxnTest, WritePdtMigrationAtQuietPoints) {
  mgr_.reset();  // a table has exactly one driver at a time
  TxnManagerOptions opts;
  opts.write_pdt_max_entries = 1;
  MultiTxnManager mgr({orders_.get(), lines_.get()}, nullptr, opts);
  for (int i = 10; i < 20; ++i) {
    auto txn = mgr.Begin();
    ASSERT_TRUE(txn->Insert("orders", {i, i}).ok());
    ASSERT_TRUE(txn->Insert("lines", {i, 1, i}).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  EXPECT_GT(orders_->pdt()->EntryCount(), 0u);  // migrated into Read-PDT
  auto txn = mgr.Begin();
  EXPECT_EQ(Rows(*txn, "orders"), 13u);
  EXPECT_EQ(Rows(*txn, "lines"), 15u);
}

// TPC-H refresh streams as atomic transactions: the workload the paper
// runs, with the atomicity the spec actually demands.
TEST(MultiTxnTpchTest, RefreshStreamsAsTransactions) {
  Database db;
  tpch::GenOptions gen;
  gen.scale_factor = 0.002;
  auto tables = tpch::GenerateInto(&db, gen, TableOptions{});
  ASSERT_TRUE(tables.ok());
  auto streams = tpch::MakeUpdateStreams(gen, 2, 0.01);
  ASSERT_TRUE(streams.ok());

  MultiTxnManager mgr({tables->orders, tables->lineitem}, nullptr);
  uint64_t orders_before = tables->orders->RowCount();
  for (const auto& stream : *streams) {
    // Each inserted/deleted order is one transaction over both tables.
    for (const auto& o : stream.inserts) {
      auto txn = mgr.Begin();
      ASSERT_TRUE(txn->Insert("orders", o.order).ok());
      for (const auto& l : o.lineitems) {
        ASSERT_TRUE(txn->Insert("lineitem", l).ok());
      }
      ASSERT_TRUE(txn->Commit().ok());
    }
    for (const auto& o : stream.deletes) {
      auto txn = mgr.Begin();
      Status st = txn->DeleteByKey(
          "orders", {o.order[tpch::kOOrderdate], o.order[tpch::kOOrderkey]});
      if (st.code() == StatusCode::kNotFound) {
        txn->Abort();
        continue;
      }
      ASSERT_TRUE(st.ok());
      for (const auto& l : o.lineitems) {
        ASSERT_TRUE(txn->DeleteByKey("lineitem",
                                     {l[tpch::kLOrderkey],
                                      l[tpch::kLLinenumber]})
                        .ok());
      }
      ASSERT_TRUE(txn->Commit().ok());
    }
  }
  ASSERT_TRUE(mgr.PropagateAndMaybeCheckpoint().ok());
  auto txn = mgr.Begin();
  auto n = txn->RowCount("orders");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, orders_before);  // equal inserts and deletes
  EXPECT_TRUE(tables->orders->pdt()->CheckInvariants().ok());
  EXPECT_TRUE(tables->lineitem->pdt()->CheckInvariants().ok());
}

}  // namespace
}  // namespace pdtstore

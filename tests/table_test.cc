// Tests of the updatable-table facade: SK-addressed updates, positional
// updates, range scans through the sparse index, checkpointing, and a
// randomized equivalence property between the PDT and VDT backends (same
// logical updates => identical merged images).
#include "db/table.h"

#include <gtest/gtest.h>

#include "db/checkpoint.h"
#include "test_util.h"
#include "util/random.h"

namespace pdtstore {
namespace {

using testutil::AllColumns;
using testutil::InventoryRows;
using testutil::InventorySchema;

std::vector<Tuple> ScanAll(const Table& table,
                           std::vector<ColumnId> projection = {},
                           const KeyBounds* bounds = nullptr) {
  if (projection.empty()) projection = AllColumns(table.schema());
  auto src = table.Scan(projection, bounds);
  auto rows = CollectRows(src.get());
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  return rows.ok() ? *rows : std::vector<Tuple>{};
}

class TableBackendTest : public ::testing::TestWithParam<DeltaBackend> {
 protected:
  void SetUp() override {
    schema_ = InventorySchema();
    TableOptions opts;
    opts.backend = GetParam();
    table_ = std::make_unique<Table>("inventory", schema_, opts);
    ASSERT_TRUE(table_->Load(InventoryRows()).ok());
  }
  std::shared_ptr<const Schema> schema_;
  std::unique_ptr<Table> table_;
};

TEST_P(TableBackendTest, InsertDeleteModifyByKey) {
  ASSERT_TRUE(table_->Insert({"Berlin", "table", "Y", 10}).ok());
  ASSERT_TRUE(table_->Insert({"Berlin", "cloth", "Y", 5}).ok());
  EXPECT_EQ(table_->RowCount(), 7u);
  // Duplicate key rejected.
  EXPECT_EQ(table_->Insert({"Berlin", "cloth", "Y", 9}).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(
      table_->DeleteByKey({Value("Paris"), Value("rug")}).ok());
  ASSERT_TRUE(
      table_->ModifyByKey({Value("London"), Value("stool")}, 3, Value(9))
          .ok());
  EXPECT_EQ(table_->RowCount(), 6u);

  std::vector<Tuple> expected = {
      {"Berlin", "cloth", "Y", 5},  {"Berlin", "table", "Y", 10},
      {"London", "chair", "N", 30}, {"London", "stool", "N", 9},
      {"London", "table", "N", 20}, {"Paris", "stool", "N", 5},
  };
  EXPECT_EQ(ScanAll(*table_), expected);
}

TEST_P(TableBackendTest, DeleteNonexistentKeyFails) {
  EXPECT_EQ(table_->DeleteByKey({Value("Oslo"), Value("bench")}).code(),
            StatusCode::kNotFound);
}

TEST_P(TableBackendTest, SortKeyModifyMovesTuple) {
  // Changing a key column is delete + insert: the tuple moves.
  ASSERT_TRUE(
      table_->ModifyByKey({Value("Paris"), Value("rug")}, 0, Value("Aix"))
          .ok());
  auto rows = ScanAll(*table_);
  EXPECT_EQ(rows.front()[0], Value("Aix"));
  EXPECT_EQ(rows.front()[1], Value("rug"));
  EXPECT_EQ(table_->RowCount(), 5u);
}

TEST_P(TableBackendTest, RangeScanThroughSparseIndex) {
  ASSERT_TRUE(table_->Insert({"London", "rack", "Y", 4}).ok());
  KeyBounds bounds;
  bounds.lo = {Value("London")};
  bounds.hi = {Value("London")};
  auto rows = ScanAll(*table_, {}, &bounds);
  // Superset semantics allowed; every London tuple must be present.
  int london = 0;
  for (const auto& t : rows) {
    if (t[0].AsString() == "London") ++london;
  }
  EXPECT_EQ(london, 4);
}

TEST_P(TableBackendTest, CheckpointPreservesImageAndResetsDelta) {
  ASSERT_TRUE(table_->Insert({"Berlin", "table", "Y", 10}).ok());
  ASSERT_TRUE(table_->DeleteByKey({Value("Paris"), Value("rug")}).ok());
  ASSERT_TRUE(
      table_->ModifyByKey({Value("London"), Value("stool")}, 3, Value(9))
          .ok());
  auto before = ScanAll(*table_);
  ASSERT_TRUE(table_->Checkpoint().ok());
  EXPECT_EQ(ScanAll(*table_), before);
  EXPECT_EQ(table_->DeltaMemoryBytes() == 0 || table_->pdt() != nullptr,
            true);
  if (table_->pdt()) EXPECT_TRUE(table_->pdt()->Empty());
  if (table_->vdt()) EXPECT_TRUE(table_->vdt()->Empty());
  EXPECT_EQ(table_->store().num_rows(), before.size());
  // Updates continue to work on the fresh image.
  ASSERT_TRUE(table_->Insert({"Aix", "mat", "Y", 7}).ok());
  EXPECT_EQ(ScanAll(*table_).front()[0], Value("Aix"));
}

INSTANTIATE_TEST_SUITE_P(Backends, TableBackendTest,
                         ::testing::Values(DeltaBackend::kPdt,
                                           DeltaBackend::kVdt),
                         [](const auto& info) {
                           return info.param == DeltaBackend::kPdt ? "Pdt"
                                                                   : "Vdt";
                         });

TEST(TxnDriverClaimTest, ExclusiveClaimAndRelease) {
  auto schema = InventorySchema();
  Table table("inv", schema, {});
  ASSERT_TRUE(table.Load(InventoryRows()).ok());
  EXPECT_TRUE(table.AcquireTxnDriver());
  EXPECT_FALSE(table.AcquireTxnDriver());  // second driver refused
  table.ReleaseTxnDriver();
  EXPECT_TRUE(table.AcquireTxnDriver());  // claimable again after release
  table.ReleaseTxnDriver();
}

TEST(PdtReplacementTest, OpenScanKeepsItsPinnedSnapshot) {
  auto schema = InventorySchema();
  Table table("inv", schema, {});
  ASSERT_TRUE(table.Load(InventoryRows()).ok());
  ASSERT_TRUE(table.Insert({"Berlin", "table", "Y", 10}).ok());
  // Open a scan, then swap in a fresh empty Read-PDT underneath it —
  // what the background Write->Read merge does via ReplacePdt. The
  // open scan pinned the pre-replacement layer and must keep seeing it.
  auto src = table.Scan(AllColumns(table.schema()));
  table.ReplacePdt(std::make_shared<Pdt>(schema, table.options().pdt));
  auto rows = CollectRows(src.get());
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 6u);  // 5 stable + the pinned layer's insert
  // A new scan resolves against the replaced (empty) delta.
  EXPECT_EQ(ScanAll(table).size(), 5u);
}

TEST(TablePositionalTest, DeleteAtAndModifyAt) {
  auto schema = InventorySchema();
  Table table("inv", schema, {});
  ASSERT_TRUE(table.Load(InventoryRows()).ok());
  ASSERT_TRUE(table.ModifyAt(0, 3, Value(31)).ok());
  ASSERT_TRUE(table.DeleteAt(3).ok());  // (Paris,rug)
  std::vector<Tuple> expected = {
      {"London", "chair", "N", 31},
      {"London", "stool", "N", 10},
      {"London", "table", "N", 20},
      {"Paris", "stool", "N", 5},
  };
  EXPECT_EQ(ScanAll(table), expected);
  EXPECT_EQ(table.DeleteAt(99).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(table.ModifyAt(99, 3, Value(1)).code(), StatusCode::kOutOfRange);
}

TEST(TableMergedAccessTest, GetMergedTupleAndFind) {
  auto schema = InventorySchema();
  Table table("inv", schema, {});
  ASSERT_TRUE(table.Load(InventoryRows()).ok());
  ASSERT_TRUE(table.Insert({"Berlin", "table", "Y", 10}).ok());
  auto t0 = table.GetMergedTuple(0);
  ASSERT_TRUE(t0.ok());
  EXPECT_EQ((*t0)[0], Value("Berlin"));
  auto rid = table.FindRidByKey({Value("Paris"), Value("stool")});
  ASSERT_TRUE(rid.ok());
  EXPECT_EQ(*rid, 5u);
  EXPECT_EQ(
      table.FindRidByKey({Value("Oslo"), Value("x")}).status().code(),
      StatusCode::kNotFound);
}

// The central cross-check: both backends must produce identical merged
// images under any stream of logical updates.
class BackendEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BackendEquivalenceTest, PdtAndVdtAgree) {
  auto schema = InventorySchema();
  Random rng(GetParam());
  std::vector<Tuple> base;
  for (int i = 0; i < 300; ++i) {
    base.push_back({"S" + std::to_string(1000 + i),
                    "p" + std::to_string(rng.UniformRange(100, 999)) +
                        std::to_string(i),
                    rng.Bernoulli(0.5) ? "Y" : "N",
                    rng.UniformRange(0, 999)});
  }
  std::sort(base.begin(), base.end(), [&](const Tuple& a, const Tuple& b) {
    return schema->CompareSortKey(a, b) < 0;
  });
  TableOptions pdt_opts, vdt_opts;
  pdt_opts.backend = DeltaBackend::kPdt;
  pdt_opts.store.chunk_rows = 128;
  vdt_opts.backend = DeltaBackend::kVdt;
  vdt_opts.store.chunk_rows = 128;
  Table pdt_table("t", schema, pdt_opts);
  Table vdt_table("t", schema, vdt_opts);
  ASSERT_TRUE(pdt_table.Load(base).ok());
  ASSERT_TRUE(vdt_table.Load(base).ok());

  // Track live keys for update targeting.
  std::vector<std::vector<Value>> keys;
  for (const auto& t : base) keys.push_back(schema->ExtractSortKey(t));

  for (int op = 0; op < 400; ++op) {
    double dice = rng.NextDouble();
    if (dice < 0.35 || keys.empty()) {
      Tuple t = {"S" + std::to_string(rng.UniformRange(0, 2999)),
                 "q" + std::to_string(op), "Y", rng.UniformRange(0, 999)};
      Status s1 = pdt_table.Insert(t);
      Status s2 = vdt_table.Insert(t);
      EXPECT_EQ(s1.code(), s2.code());
      if (s1.ok()) keys.push_back(schema->ExtractSortKey(t));
    } else if (dice < 0.6) {
      size_t k = rng.Uniform(keys.size());
      Status s1 = pdt_table.DeleteByKey(keys[k]);
      Status s2 = vdt_table.DeleteByKey(keys[k]);
      EXPECT_EQ(s1.code(), s2.code());
      keys.erase(keys.begin() + k);
    } else {
      size_t k = rng.Uniform(keys.size());
      ColumnId col = rng.Bernoulli(0.3) ? 2 : 3;
      Value v = (col == 2) ? Value(rng.NextString(1))
                           : Value(rng.UniformRange(0, 999));
      Status s1 = pdt_table.ModifyByKey(keys[k], col, v);
      Status s2 = vdt_table.ModifyByKey(keys[k], col, v);
      EXPECT_EQ(s1.code(), s2.code());
    }
    if (op % 100 == 99) {
      ASSERT_EQ(ScanAll(pdt_table), ScanAll(vdt_table)) << "op " << op;
    }
  }
  EXPECT_EQ(ScanAll(pdt_table), ScanAll(vdt_table));
  EXPECT_EQ(pdt_table.RowCount(), vdt_table.RowCount());
  // Projections without key columns agree too.
  EXPECT_EQ(ScanAll(pdt_table, {2, 3}), ScanAll(vdt_table, {2, 3}));
  // And both survive a checkpoint.
  ASSERT_TRUE(pdt_table.Checkpoint().ok());
  ASSERT_TRUE(vdt_table.Checkpoint().ok());
  EXPECT_EQ(ScanAll(pdt_table), ScanAll(vdt_table));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendEquivalenceTest,
                         ::testing::Values(31, 32, 33, 34));

TEST(CheckpointPolicyTest, TriggersOnThresholds) {
  auto schema = InventorySchema();
  Table table("inv", schema, {});
  ASSERT_TRUE(table.Load(InventoryRows()).ok());
  CheckpointPolicy policy;
  policy.max_delta_updates = 2;
  policy.max_delta_bytes = 0;
  EXPECT_FALSE(ShouldCheckpoint(table, policy));
  ASSERT_TRUE(table.Insert({"A", "a", "Y", 1}).ok());
  ASSERT_TRUE(table.Insert({"B", "b", "Y", 2}).ok());
  ASSERT_TRUE(table.Insert({"C", "c", "Y", 3}).ok());
  EXPECT_TRUE(ShouldCheckpoint(table, policy));
  auto did = MaybeCheckpoint(&table, policy);
  ASSERT_TRUE(did.ok());
  EXPECT_TRUE(*did);
  EXPECT_FALSE(ShouldCheckpoint(table, policy));
  EXPECT_EQ(table.RowCount(), 8u);
}

}  // namespace
}  // namespace pdtstore

// Core scalar type system of the column store.
#ifndef PDTSTORE_COLUMNSTORE_TYPES_H_
#define PDTSTORE_COLUMNSTORE_TYPES_H_

#include <cstdint>
#include <string>

namespace pdtstore {

/// Scalar types supported by the store. The paper's evaluation needs
/// integers (sort keys, quantities), strings (sort keys, flags, names) and
/// decimals (prices, modelled as double).
enum class TypeId : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

/// Name of a TypeId ("INT64" etc).
const char* TypeIdToString(TypeId t);

/// Fixed width in bytes of a value of type `t` when stored plain;
/// strings report the pointer-free average used for I/O accounting of
/// variable-width data (actual chunk encoding tracks exact sizes).
size_t TypeFixedWidth(TypeId t);

/// Row position within the current (merged) table image. Volatile: shifts
/// with every insert/delete before it.
using Rid = uint64_t;

/// Stable position within TABLE0 (the checkpointed on-disk image).
/// Non-unique for inserts, never changes until the next checkpoint.
using Sid = uint64_t;

/// Logical commit timestamp (LSN-like monotonically increasing number).
using LogicalTime = uint64_t;

/// Column index within a schema.
using ColumnId = uint32_t;

constexpr Rid kInvalidRid = ~0ULL;
constexpr Sid kInvalidSid = ~0ULL;

}  // namespace pdtstore

#endif  // PDTSTORE_COLUMNSTORE_TYPES_H_

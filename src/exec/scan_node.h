// Thin adapters that plug Table scans and Transactions into operator
// pipelines, plus a pipeline-construction helper.
#ifndef PDTSTORE_EXEC_SCAN_NODE_H_
#define PDTSTORE_EXEC_SCAN_NODE_H_

#include <memory>
#include <vector>

#include "db/table.h"
#include "exec/filter.h"

namespace pdtstore {

/// Merging table scan as a pipeline source. Holds the KeyBounds so query
/// kernels can construct restricted scans in one expression. `scan_opts`
/// selects the serial or morsel-parallel scan; pipelines that do not
/// depend on row order (filter/agg) can pass `ordered = false`.
///
/// A non-null `predicate` wraps the scan in a FilterNode on the
/// consuming side: with the default serial `scan_opts`, every merged
/// batch is filtered through the KeepBitmap predicate path at the scan
/// boundary, so fully-filtered batches never reach downstream
/// operators. With a parallel ScanOptions the filter still runs on the
/// consumer thread, *after* the exchange — push the predicate into the
/// morsel workers with Pipeline::Filter when that matters.
std::unique_ptr<BatchSource> TableScanNode(const Table& table,
                                           std::vector<ColumnId> projection,
                                           const KeyBounds* bounds = nullptr,
                                           const ScanOptions& scan_opts = {},
                                           VecPredicate predicate = nullptr);

}  // namespace pdtstore

#endif  // PDTSTORE_EXEC_SCAN_NODE_H_

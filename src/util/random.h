// Deterministic pseudo-random generation used by workload generators,
// property tests and benchmarks. Seeded xoshiro256**: fast, reproducible
// across platforms (unlike std::mt19937 distributions).
#ifndef PDTSTORE_UTIL_RANDOM_H_
#define PDTSTORE_UTIL_RANDOM_H_

#include <cstdint>
#include <string>

namespace pdtstore {

/// Deterministic 64-bit PRNG (xoshiro256**) with convenience samplers.
class Random {
 public:
  /// Seeds the generator; the same seed yields the same sequence on any
  /// platform.
  explicit Random(uint64_t seed = 42);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool Bernoulli(double p);

  /// Random lowercase ASCII string of the given length.
  std::string NextString(size_t length);

  /// Skewed (approximately Zipf-like via repeated halving) value in [0, n).
  uint64_t Skewed(uint64_t n);

 private:
  uint64_t s_[4];
};

}  // namespace pdtstore

#endif  // PDTSTORE_UTIL_RANDOM_H_

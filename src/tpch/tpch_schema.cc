#include "tpch/tpch_schema.h"

namespace pdtstore {
namespace tpch {

int64_t DayNumber(int year, int month, int day) {
  return static_cast<int64_t>(year - 1992) * 365 +
         static_cast<int64_t>(month - 1) * 30 + (day - 1);
}

namespace {
std::shared_ptr<const Schema> MakeSchema(std::vector<ColumnDef> cols,
                                         std::vector<ColumnId> sk) {
  auto schema = Schema::Make(std::move(cols), std::move(sk));
  return std::make_shared<const Schema>(std::move(*schema));
}
}  // namespace

std::shared_ptr<const Schema> LineitemSchema() {
  return MakeSchema(
      {{"l_orderkey", TypeId::kInt64},
       {"l_partkey", TypeId::kInt64},
       {"l_suppkey", TypeId::kInt64},
       {"l_linenumber", TypeId::kInt64},
       {"l_quantity", TypeId::kDouble},
       {"l_extendedprice", TypeId::kDouble},
       {"l_discount", TypeId::kDouble},
       {"l_tax", TypeId::kDouble},
       {"l_returnflag", TypeId::kString},
       {"l_linestatus", TypeId::kString},
       {"l_shipdate", TypeId::kInt64},
       {"l_commitdate", TypeId::kInt64},
       {"l_receiptdate", TypeId::kInt64},
       {"l_shipmode", TypeId::kString}},
      {kLOrderkey, kLLinenumber});
}

std::shared_ptr<const Schema> OrdersSchema() {
  return MakeSchema({{"o_orderdate", TypeId::kInt64},
                     {"o_orderkey", TypeId::kInt64},
                     {"o_custkey", TypeId::kInt64},
                     {"o_orderstatus", TypeId::kString},
                     {"o_totalprice", TypeId::kDouble},
                     {"o_orderpriority", TypeId::kString},
                     {"o_shippriority", TypeId::kInt64}},
                    {kOOrderdate, kOOrderkey});
}

std::shared_ptr<const Schema> CustomerSchema() {
  return MakeSchema({{"c_custkey", TypeId::kInt64},
                     {"c_name", TypeId::kString},
                     {"c_nationkey", TypeId::kInt64},
                     {"c_acctbal", TypeId::kDouble},
                     {"c_mktsegment", TypeId::kString}},
                    {kCCustkey});
}

std::shared_ptr<const Schema> PartSchema() {
  return MakeSchema({{"p_partkey", TypeId::kInt64},
                     {"p_name", TypeId::kString},
                     {"p_brand", TypeId::kString},
                     {"p_type", TypeId::kString},
                     {"p_size", TypeId::kInt64},
                     {"p_container", TypeId::kString},
                     {"p_retailprice", TypeId::kDouble}},
                    {kPPartkey});
}

std::shared_ptr<const Schema> SupplierSchema() {
  return MakeSchema({{"s_suppkey", TypeId::kInt64},
                     {"s_name", TypeId::kString},
                     {"s_nationkey", TypeId::kInt64},
                     {"s_acctbal", TypeId::kDouble}},
                    {kSSuppkey});
}

std::shared_ptr<const Schema> NationSchema() {
  return MakeSchema({{"n_nationkey", TypeId::kInt64},
                     {"n_name", TypeId::kString},
                     {"n_regionkey", TypeId::kInt64}},
                    {kNNationkey});
}

}  // namespace tpch
}  // namespace pdtstore

// Memory-budget enforcement: pool/budget/lease charge-release
// invariants, ResourceExhausted on oversized sorts and join builds,
// release on every error path (no leak once the operators die), the
// shared process cap under concurrent chargers, and the join-build
// partition spill path completing a query whose collect would otherwise
// blow its budget.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "db/table.h"
#include "exec/hash_join.h"
#include "exec/pipeline.h"
#include "exec/sort.h"
#include "util/file.h"
#include "util/mem_budget.h"
#include "util/thread_pool.h"

#include "fuzz_util.h"

namespace pdtstore {
namespace {

using testutil::SortTuples;

std::shared_ptr<const Schema> TwoIntSchema() {
  auto s = Schema::Make({{"k", TypeId::kInt64}, {"v", TypeId::kInt64}}, {0});
  return std::make_shared<const Schema>(std::move(*s));
}

std::unique_ptr<Table> MakeIntTable(const std::string& name, int64_t rows) {
  auto table = std::make_unique<Table>(name, TwoIntSchema(), TableOptions{});
  std::vector<Tuple> init;
  init.reserve(rows);
  for (int64_t i = 0; i < rows; ++i) init.push_back({i, i % 97});
  EXPECT_TRUE(table->Load(init).ok());
  return table;
}

// ---------------------------------------------------------------------
// Pool / budget / lease primitives.
// ---------------------------------------------------------------------

TEST(MemoryPool, ChargeReleaseAndCap) {
  MemoryPool pool(100);
  EXPECT_TRUE(pool.TryCharge(60));
  EXPECT_TRUE(pool.TryCharge(40));
  EXPECT_FALSE(pool.TryCharge(1));  // exactly at cap
  EXPECT_EQ(pool.used(), 100u);
  EXPECT_EQ(pool.peak(), 100u);
  pool.Release(50);
  EXPECT_EQ(pool.used(), 50u);
  EXPECT_EQ(pool.peak(), 100u);  // peak is sticky
  EXPECT_TRUE(pool.TryCharge(50));
  pool.Release(100);
  EXPECT_EQ(pool.used(), 0u);
  // Uncapped pool takes anything.
  MemoryPool open(0);
  EXPECT_TRUE(open.TryCharge(1u << 30));
  open.Release(1u << 30);
}

TEST(MemoryBudget, QueryCapThenPoolWithRollback) {
  MemoryPool pool(100);
  MemoryBudget small("small", 40, &pool);
  EXPECT_TRUE(small.Charge(40).ok());
  Status st = small.Charge(1);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(small.used(), 40u);
  EXPECT_EQ(pool.used(), 40u);

  // A second budget hits the shared pool cap; the rejected charge must
  // roll its query-local accounting back too.
  MemoryBudget big("big", 0, &pool);
  EXPECT_TRUE(big.Charge(60).ok());
  EXPECT_EQ(big.Charge(1).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(big.used(), 60u);  // failed charge left no residue
  EXPECT_EQ(pool.used(), 100u);

  small.Release(40);
  big.Release(60);
  EXPECT_EQ(pool.used(), 0u);
}

TEST(MemoryBudget, LeaseReleasesOnDestruction) {
  MemoryPool pool(1000);
  auto budget = std::make_shared<MemoryBudget>("q", 0, &pool);
  {
    BudgetLease lease(budget);
    EXPECT_TRUE(lease.Charge(300).ok());
    EXPECT_TRUE(lease.Charge(200).ok());
    EXPECT_EQ(lease.held(), 500u);
    // Early partial release (the spill hook), clamped to what is held.
    lease.Release(100);
    EXPECT_EQ(lease.held(), 400u);
    lease.Release(1u << 20);
    EXPECT_EQ(lease.held(), 0u);
    EXPECT_EQ(pool.used(), 0u);
    EXPECT_TRUE(lease.Charge(250).ok());
  }  // destructor returns the outstanding 250
  EXPECT_EQ(pool.used(), 0u);
  EXPECT_EQ(budget->used(), 0u);
  // Null-budget lease is a no-op everywhere.
  BudgetLease unmanaged;
  EXPECT_TRUE(unmanaged.Charge(1u << 30).ok());
  EXPECT_EQ(unmanaged.held(), 0u);
}

TEST(MemoryBudget, ConcurrentChargersRespectSharedCap) {
  constexpr size_t kCap = 1u << 20;
  MemoryPool pool(kCap);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      MemoryBudget budget("t" + std::to_string(t), 0, &pool);
      BudgetLease lease;  // raw budget charges; lease unused here
      (void)lease;
      for (int i = 0; i < 4000; ++i) {
        const size_t bytes = 1 + (static_cast<size_t>(t * 4000 + i) % 4096);
        if (budget.Charge(bytes).ok()) {
          budget.Release(bytes);
        } else {
          failures.fetch_add(1);
        }
      }
      EXPECT_EQ(budget.used(), 0u);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(pool.used(), 0u);
  EXPECT_LE(pool.peak(), kCap);  // TryCharge never overshoots
}

// ---------------------------------------------------------------------
// Operator integration: sorts and join builds charge the thread-local
// query budget and fail fast (releasing everything) when over cap.
// ---------------------------------------------------------------------

TEST(MemoryBudget, OversizedSerialSortFailsAndReleases) {
  auto table = MakeIntTable("sort_budget", 4000);  // ~64 KiB materialized
  MemoryPool pool(0);
  auto budget = std::make_shared<MemoryBudget>("sort", 16 << 10, &pool);
  {
    ScopedQueryContext ctx(QueryContext{budget, 0, ""});
    SortNode sort(table->Scan({0, 1}), {{1, false}});
    Batch out;
    StatusOr<bool> more = sort.Next(&out, kDefaultBatchSize);
    ASSERT_FALSE(more.ok());
    EXPECT_EQ(more.status().code(), StatusCode::kResourceExhausted);
  }
  EXPECT_EQ(pool.used(), 0u);
  EXPECT_EQ(budget->used(), 0u);
}

TEST(MemoryBudget, OversizedParallelSortFailsAndReleases) {
  auto table = MakeIntTable("psort_budget", 4000);
  MemoryPool pool(0);
  auto budget = std::make_shared<MemoryBudget>("psort", 16 << 10, &pool);
  {
    ScopedQueryContext ctx(QueryContext{budget, 0, ""});
    ScanOptions so;
    so.num_threads = 4;
    Pipeline pipe(table->PlanMorsels({0, 1}, nullptr, so));
    auto out = std::move(pipe).IntoSortBuild({{1, false}});
    auto rows = CollectRows(out.get());
    ASSERT_FALSE(rows.ok());
    EXPECT_EQ(rows.status().code(), StatusCode::kResourceExhausted);
  }
  ThreadPool::Global().WaitIdle();
  EXPECT_EQ(pool.used(), 0u);
  EXPECT_EQ(budget->used(), 0u);
}

TEST(MemoryBudget, OversizedJoinBuildFailsAndReleases) {
  auto probe = MakeIntTable("probe_budget", 200);
  auto build = MakeIntTable("build_budget", 4000);
  MemoryPool pool(0);
  for (int threads : {1, 4}) {
    auto budget = std::make_shared<MemoryBudget>("join", 16 << 10, &pool);
    {
      ScopedQueryContext ctx(QueryContext{budget, 0, ""});
      ScanOptions so;
      so.num_threads = threads;
      StatusOr<std::vector<Tuple>> rows = [&]() -> StatusOr<std::vector<Tuple>> {
        if (threads == 1) {
          HashJoinNode join(probe->Scan({0, 1}), build->Scan({0, 1}), {0},
                            {0});
          return CollectRows(&join);
        }
        auto bpipe = std::make_unique<Pipeline>(
            build->PlanMorsels({0, 1}, nullptr, so));
        auto handle = Pipeline::IntoJoinBuild(std::move(bpipe), {0});
        Pipeline pipe(probe->PlanMorsels({0, 1}, nullptr, so));
        pipe.Probe(handle, {0});
        auto out = std::move(pipe).Exchange();
        return CollectRows(out.get());
      }();
      ASSERT_FALSE(rows.ok()) << threads << " threads";
      EXPECT_EQ(rows.status().code(), StatusCode::kResourceExhausted)
          << rows.status().ToString();
    }
    // Unrun pipeline helper tasks still queued on the global pool hold
    // op-chain references (and with them the build handle's lease);
    // drain them before checking that every byte came back.
    ThreadPool::Global().WaitIdle();
    EXPECT_EQ(pool.used(), 0u) << threads << " threads";
    EXPECT_EQ(budget->used(), 0u) << threads << " threads";
  }
}

TEST(MemoryBudget, WithinBudgetQueriesMatchUnbudgetedRuns) {
  auto probe = MakeIntTable("probe_ok", 1500);
  auto build = MakeIntTable("build_ok", 800);
  // Reference: no query context at all.
  std::vector<Tuple> ref;
  {
    HashJoinNode join(probe->Scan({0, 1}), build->Scan({0, 1}), {0}, {0});
    auto rows = CollectRows(&join);
    ASSERT_TRUE(rows.ok());
    ref = std::move(*rows);
    SortTuples(&ref);
  }
  MemoryPool pool(64 << 20);
  auto budget = std::make_shared<MemoryBudget>("ok", 32 << 20, &pool);
  {
    ScopedQueryContext ctx(QueryContext{budget, 0, ""});
    ScanOptions so;
    so.num_threads = 4;
    auto bpipe =
        std::make_unique<Pipeline>(build->PlanMorsels({0, 1}, nullptr, so));
    auto handle = Pipeline::IntoJoinBuild(std::move(bpipe), {0});
    Pipeline pipe(probe->PlanMorsels({0, 1}, nullptr, so));
    pipe.Probe(handle, {0});
    auto out = std::move(pipe).Exchange();
    auto rows = CollectRows(out.get());
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    SortTuples(&*rows);
    EXPECT_EQ(*rows, ref);
    EXPECT_GT(budget->peak(), 0u);  // the build really was charged
  }
  ThreadPool::Global().WaitIdle();
  EXPECT_EQ(pool.used(), 0u);
  EXPECT_EQ(budget->used(), 0u);
}

// ---------------------------------------------------------------------
// Join-build spill: with a spill directory configured, a collect that
// would blow the per-query cap sheds full partitions to disk instead of
// failing, and the finalized join is byte-equivalent to the uncapped
// run. The cap stays enforced during collect (budget peak <= cap).
// ---------------------------------------------------------------------

TEST(MemoryBudget, JoinBuildSpillCompletesUnderTinyCap) {
  auto probe = MakeIntTable("probe_spill", 2000);
  auto build = MakeIntTable("build_spill", 12000);  // ~190 KiB + hashes
  std::vector<Tuple> ref;
  {
    HashJoinNode join(probe->Scan({0, 1}), build->Scan({0, 1}), {0}, {0});
    auto rows = CollectRows(&join);
    ASSERT_TRUE(rows.ok());
    ref = std::move(*rows);
    SortTuples(&ref);
  }

  const std::string spill_dir =
      (std::filesystem::temp_directory_path() / "pdt_budget_spill").string();
  ASSERT_TRUE(FileSystem::Default()->CreateDir(spill_dir).ok());

  constexpr size_t kCap = 96 << 10;  // far below the build's footprint
  MemoryPool pool(0);
  auto budget = std::make_shared<MemoryBudget>("spill", kCap, &pool);
  {
    ScopedQueryContext ctx(QueryContext{budget, 0, spill_dir});
    ScanOptions so;
    so.num_threads = 4;
    auto bpipe =
        std::make_unique<Pipeline>(build->PlanMorsels({0, 1}, nullptr, so));
    auto handle = Pipeline::IntoJoinBuild(std::move(bpipe), {0}, 8);
    Pipeline pipe(probe->PlanMorsels({0, 1}, nullptr, so));
    pipe.Probe(handle, {0});
    auto out = std::move(pipe).Exchange();
    auto rows = CollectRows(out.get());
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    SortTuples(&*rows);
    EXPECT_EQ(*rows, ref);
    // The cap held during collect: the whole build never sat in memory
    // at once (it can't: the data is ~2x the cap), so spill engaged.
    EXPECT_LE(budget->peak(), kCap);
    EXPECT_GT(budget->peak(), 0u);
  }
  ThreadPool::Global().WaitIdle();
  EXPECT_EQ(pool.used(), 0u);
  EXPECT_EQ(budget->used(), 0u);
  std::error_code ec;
  std::filesystem::remove_all(spill_dir, ec);
}

}  // namespace
}  // namespace pdtstore

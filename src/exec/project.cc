#include "exec/project.h"

namespace pdtstore {

StatusOr<bool> ProjectNode::Next(Batch* out, size_t max_rows) {
  Batch in;
  PDT_ASSIGN_OR_RETURN(bool more, input_->Next(&in, max_rows));
  if (!more) return false;
  *out = Batch();
  out->set_start_rid(in.start_rid());
  std::vector<ColumnId> ids(exprs_.size());
  for (size_t i = 0; i < exprs_.size(); ++i) {
    ids[i] = static_cast<ColumnId>(i);
    out->columns().push_back(exprs_[i](in));
  }
  out->set_column_ids(std::move(ids));
  return true;
}

ColumnExpr ColumnRef(size_t idx) {
  return [idx](const Batch& b) { return b.column(idx); };
}

ColumnExpr Revenue(size_t price_idx, size_t discount_idx) {
  return [price_idx, discount_idx](const Batch& b) {
    ColumnVector out(TypeId::kDouble);
    const size_t n = b.column(price_idx).size();
    const double* price = b.column(price_idx).doubles_data();
    const double* disc = b.column(discount_idx).doubles_data();
    auto& vals = out.doubles();
    vals.resize(n);
    for (size_t i = 0; i < n; ++i) {
      vals[i] = price[i] * (1.0 - disc[i]);
    }
    return out;
  };
}

ColumnExpr Charge(size_t price_idx, size_t discount_idx, size_t tax_idx) {
  return [price_idx, discount_idx, tax_idx](const Batch& b) {
    ColumnVector out(TypeId::kDouble);
    const size_t n = b.column(price_idx).size();
    const double* price = b.column(price_idx).doubles_data();
    const double* disc = b.column(discount_idx).doubles_data();
    const double* tax = b.column(tax_idx).doubles_data();
    auto& vals = out.doubles();
    vals.resize(n);
    for (size_t i = 0; i < n; ++i) {
      vals[i] = price[i] * (1.0 - disc[i]) * (1.0 + tax[i]);
    }
    return out;
  };
}

}  // namespace pdtstore

#include "util/status.h"

namespace pdtstore {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kConflict:
      return "Conflict";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace pdtstore

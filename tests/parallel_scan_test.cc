// Thread-count invariance of the morsel-driven parallel scan: the same
// table + delta state scanned at 1/2/4/8 threads must yield identical
// results — identical sequences in ordered mode, identical multisets in
// unordered mode — across mixed insert/delete/modify delta states,
// restricted scans, multi-layer transaction snapshots and both backends.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>

#include "db/table.h"
#include "exec/parallel_scan.h"
#include "test_util.h"
#include "txn/txn_manager.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace pdtstore {
namespace {

using testutil::AllColumns;

std::shared_ptr<const Schema> IntSchema() {
  auto s = Schema::Make({{"k", TypeId::kInt64}, {"v", TypeId::kInt64}}, {0});
  return std::make_shared<const Schema>(std::move(*s));
}

std::vector<Tuple> IntRows(int n, int64_t gap = 100) {
  std::vector<Tuple> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back({static_cast<int64_t>(i) * gap, int64_t{i}});
  }
  return rows;
}

// Builds a PDT- or VDT-backed table with `n` rows in small chunks (many
// morsel boundaries) and applies `ops` random mixed updates.
std::unique_ptr<Table> BuildUpdatedTable(DeltaBackend backend, int n,
                                         int ops, uint64_t seed) {
  TableOptions opts;
  opts.backend = backend;
  opts.store.chunk_rows = 64;
  TableOptions o = opts;
  auto table = std::make_unique<Table>("t", IntSchema(), o);
  EXPECT_TRUE(table->Load(IntRows(n)).ok());
  Random rng(seed);
  for (int i = 0; i < ops; ++i) {
    double d = rng.NextDouble();
    if (d < 0.4) {
      (void)table->Insert({rng.UniformRange(0, n * 100), int64_t{i}});
    } else if (d < 0.7) {
      (void)table->DeleteByKey(
          {Value(static_cast<int64_t>(rng.Uniform(n)) * 100)});
    } else {
      (void)table->ModifyByKey(
          {Value(static_cast<int64_t>(rng.Uniform(n)) * 100)}, 1,
          Value(int64_t{i}));
    }
  }
  return table;
}

std::vector<Tuple> ScanRows(const Table& table, const ScanOptions& opts,
                            const KeyBounds* bounds = nullptr,
                            size_t batch_size = kDefaultBatchSize) {
  auto src = table.Scan(AllColumns(table.schema()), bounds, opts);
  auto rows = CollectRows(src.get(), batch_size);
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  return rows.ok() ? *rows : std::vector<Tuple>{};
}

void SortRows(std::vector<Tuple>* rows) {
  std::sort(rows->begin(), rows->end(),
            [](const Tuple& a, const Tuple& b) {
              return CompareTuples(a, b) < 0;
            });
}

TEST(SplitIntoMorselsTest, SplitsAndPreservesDisjointness) {
  std::vector<SidRange> ranges = {{0, 100}, {150, 151}, {200, 500}};
  auto morsels = SplitIntoMorsels(ranges, 128);
  ASSERT_EQ(morsels.size(), 1 + 1 + 3u);
  EXPECT_EQ(morsels[0], (SidRange{0, 100}));
  EXPECT_EQ(morsels[1], (SidRange{150, 151}));
  EXPECT_EQ(morsels[2], (SidRange{200, 328}));
  EXPECT_EQ(morsels[3], (SidRange{328, 456}));
  EXPECT_EQ(morsels[4], (SidRange{456, 500}));
  for (size_t i = 1; i < morsels.size(); ++i) {
    EXPECT_LE(morsels[i - 1].end, morsels[i].begin);
  }
  EXPECT_TRUE(SplitIntoMorsels({}, 128).empty());
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  for (int threads : {1, 2, 4, 8}) {
    std::vector<std::atomic<int>> hits(1000);
    for (auto& h : hits) h = 0;
    ParallelFor(threads, 0, hits.size(), [&](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelScanTest, OrderedMatchesSerialAcrossThreadCounts) {
  auto table = BuildUpdatedTable(DeltaBackend::kPdt, 2000, 800, 17);
  ScanOptions serial;
  auto reference = ScanRows(*table, serial);
  ASSERT_EQ(reference.size(), table->RowCount());
  for (int threads : {2, 4, 8}) {
    ScanOptions opts;
    opts.num_threads = threads;
    opts.ordered = true;
    opts.morsel_rows = 256;  // many morsels
    EXPECT_EQ(ScanRows(*table, opts), reference) << threads << " threads";
  }
}

TEST(ParallelScanTest, UnorderedMatchesSerialMultiset) {
  auto table = BuildUpdatedTable(DeltaBackend::kPdt, 2000, 800, 29);
  auto reference = ScanRows(*table, ScanOptions{});
  SortRows(&reference);
  for (int threads : {2, 4, 8}) {
    ScanOptions opts;
    opts.num_threads = threads;
    opts.ordered = false;
    opts.morsel_rows = 256;
    auto rows = ScanRows(*table, opts);
    SortRows(&rows);
    EXPECT_EQ(rows, reference) << threads << " threads";
  }
}

TEST(ParallelScanTest, OrderedBatchRidsAreGloballyCorrect) {
  auto table = BuildUpdatedTable(DeltaBackend::kPdt, 1500, 600, 31);
  ScanOptions opts;
  opts.num_threads = 4;
  opts.morsel_rows = 128;
  auto src = table->Scan(AllColumns(table->schema()), nullptr, opts);
  Batch batch;
  Rid expect = 0;
  while (true) {
    auto more = src->Next(&batch, 100);  // < worker batch: forces slicing
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    EXPECT_EQ(batch.start_rid(), expect);
    expect += batch.num_rows();
  }
  EXPECT_EQ(expect, table->RowCount());
}

TEST(ParallelScanTest, HostilePdtStatesFromStressPatterns) {
  // The pdt_stress patterns, through the Table API: hammer one key
  // range with insert/delete churn, long ghost chains (a whole deleted
  // region spanning several morsels), then inserts into the ghosts.
  TableOptions topts;
  topts.store.chunk_rows = 64;
  topts.pdt.fanout = 4;
  auto table = std::make_unique<Table>("t", IntSchema(), topts);
  ASSERT_TRUE(table->Load(IntRows(600, 10)).ok());
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(table->DeleteAt(100).ok());  // rows 100..499 become ghosts
  }
  for (int64_t k : {1005, 2501, 3999, 1001, 4995}) {
    ASSERT_TRUE(table->Insert({k, k}).ok());
  }
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(table->Insert({int64_t{6001 + i}, int64_t{i}}).ok());
    ASSERT_TRUE(table->ModifyAt(i % 100, 1, Value(int64_t{i})).ok());
  }
  auto reference = ScanRows(*table, ScanOptions{});
  for (int threads : {2, 4, 8}) {
    ScanOptions opts;
    opts.num_threads = threads;
    opts.morsel_rows = 64;  // whole morsels fall inside the ghost region
    EXPECT_EQ(ScanRows(*table, opts), reference) << threads << " threads";
    opts.ordered = false;
    auto rows = ScanRows(*table, opts);
    auto sorted_ref = reference;
    SortRows(&rows);
    SortRows(&sorted_ref);
    EXPECT_EQ(rows, sorted_ref) << threads << " threads unordered";
  }
}

TEST(ParallelScanTest, AllStableRowsDeletedStillEmitsInserts) {
  TableOptions topts;
  topts.store.chunk_rows = 32;
  auto table = std::make_unique<Table>("t", IntSchema(), topts);
  ASSERT_TRUE(table->Load(IntRows(200)).ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(table->DeleteAt(0).ok());
  }
  for (int64_t k : {5, 1001, 19999}) {
    ASSERT_TRUE(table->Insert({k, k}).ok());
  }
  auto reference = ScanRows(*table, ScanOptions{});
  ASSERT_EQ(reference.size(), 3u);
  ScanOptions opts;
  opts.num_threads = 4;
  opts.morsel_rows = 32;
  EXPECT_EQ(ScanRows(*table, opts), reference);
}

TEST(ParallelScanTest, RestrictedBoundsMatchSerial) {
  auto table = BuildUpdatedTable(DeltaBackend::kPdt, 4000, 1000, 37);
  KeyBounds bounds;
  bounds.lo = {Value(int64_t{50'000})};
  bounds.hi = {Value(int64_t{260'000})};
  auto reference = ScanRows(*table, ScanOptions{}, &bounds);
  ASSERT_FALSE(reference.empty());
  for (int threads : {2, 4, 8}) {
    ScanOptions opts;
    opts.num_threads = threads;
    opts.morsel_rows = 128;
    EXPECT_EQ(ScanRows(*table, opts, &bounds), reference)
        << threads << " threads";
  }
}

TEST(ParallelScanTest, VdtBackendMatchesSerial) {
  auto table = BuildUpdatedTable(DeltaBackend::kVdt, 2000, 800, 41);
  auto reference = ScanRows(*table, ScanOptions{});
  ASSERT_EQ(reference.size(), table->RowCount());
  for (int threads : {2, 4, 8}) {
    ScanOptions opts;
    opts.num_threads = threads;
    opts.morsel_rows = 256;
    EXPECT_EQ(ScanRows(*table, opts), reference) << threads << " threads";
    opts.ordered = false;
    auto rows = ScanRows(*table, opts);
    auto sorted_ref = reference;
    SortRows(&rows);
    SortRows(&sorted_ref);
    EXPECT_EQ(rows, sorted_ref) << threads << " threads unordered";
  }
}

TEST(ParallelScanTest, VdtRestrictedBoundsMatchSerial) {
  auto table = BuildUpdatedTable(DeltaBackend::kVdt, 3000, 900, 43);
  KeyBounds bounds;
  bounds.lo = {Value(int64_t{40'000})};
  bounds.hi = {Value(int64_t{200'000})};
  auto reference = ScanRows(*table, ScanOptions{}, &bounds);
  ASSERT_FALSE(reference.empty());
  for (int threads : {2, 4, 8}) {
    ScanOptions opts;
    opts.num_threads = threads;
    opts.morsel_rows = 128;
    EXPECT_EQ(ScanRows(*table, opts, &bounds), reference)
        << threads << " threads";
  }
}

TEST(ParallelScanTest, TxnSnapshotStackMatchesSerial) {
  // Multi-layer stack: Read-PDT state (propagated commits), Write-PDT
  // snapshot and an uncommitted Trans-PDT, scanned in parallel.
  TableOptions topts;
  topts.store.chunk_rows = 64;
  auto table = std::make_unique<Table>("t", IntSchema(), topts);
  ASSERT_TRUE(table->Load(IntRows(1000)).ok());
  TxnManager mgr(table.get());
  {
    auto setup = mgr.Begin();
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(setup->Insert({int64_t{i * 100 + 7}, int64_t{i}}).ok());
    }
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(
          setup->DeleteByKey({Value(static_cast<int64_t>(i) * 300)}).ok());
    }
    ASSERT_TRUE(setup->Commit().ok());
  }
  auto txn = mgr.Begin();
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(txn->Insert({int64_t{i * 100 + 13}, int64_t{i}}).ok());
    ASSERT_TRUE(
        txn->ModifyByKey({Value(static_cast<int64_t>(i + 200) * 100)}, 1,
                         Value(int64_t{-i}))
            .ok());
  }
  auto cols = AllColumns(table->schema());
  auto serial = CollectRows(txn->Scan(cols).get());
  ASSERT_TRUE(serial.ok());
  for (int threads : {2, 4, 8}) {
    ScanOptions opts;
    opts.num_threads = threads;
    opts.morsel_rows = 64;
    auto rows = CollectRows(txn->Scan(cols, nullptr, opts).get());
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(*rows, *serial) << threads << " threads";
  }
  ASSERT_TRUE(txn->Commit().ok());
}

TEST(ParallelScanTest, MoreThreadsThanMorselsAndTinyBatches) {
  auto table = BuildUpdatedTable(DeltaBackend::kPdt, 300, 150, 47);
  auto reference = ScanRows(*table, ScanOptions{});
  ScanOptions opts;
  opts.num_threads = 8;
  opts.morsel_rows = 1 << 20;  // single morsel
  EXPECT_EQ(ScanRows(*table, opts), reference);
  opts.morsel_rows = 16;  // tiny morsels, tiny consumer batches
  EXPECT_EQ(ScanRows(*table, opts, nullptr, /*batch_size=*/7), reference);
}

TEST(ParallelScanTest, AbandonedScanShutsDownCleanly) {
  auto table = BuildUpdatedTable(DeltaBackend::kPdt, 2000, 400, 53);
  ScanOptions opts;
  opts.num_threads = 4;
  opts.morsel_rows = 64;
  auto src = table->Scan(AllColumns(table->schema()), nullptr, opts);
  Batch batch;
  auto more = src->Next(&batch, 128);  // start workers, pull one batch
  ASSERT_TRUE(more.ok());
  ASSERT_TRUE(*more);
  src.reset();  // destructor must abort + join without deadlock
}

}  // namespace
}  // namespace pdtstore

// Updatable ordered table: immutable stable ColumnStore + sparse index +
// a differential structure (PDT or VDT, selectable per table so the two
// schemes can be compared head-to-head), plus the SK-addressed update
// logic the paper describes around Algorithms 3-6 (insert positioning via
// merged binary search + SKRidToSid; SK-column modifies as delete+insert)
// and checkpointing (Sec. 2, "Checkpointing").
#ifndef PDTSTORE_DB_TABLE_H_
#define PDTSTORE_DB_TABLE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "columnstore/batch.h"
#include "exec/parallel_scan.h"
#include "pdt/merge_scan.h"
#include "pdt/pdt.h"
#include "storage/column_store.h"
#include "storage/sparse_index.h"
#include "vdt/vdt.h"
#include "vdt/vdt_merge_scan.h"

namespace pdtstore {

/// Which differential scheme buffers this table's updates.
enum class DeltaBackend { kPdt, kVdt };

/// Per-table configuration.
struct TableOptions {
  DeltaBackend backend = DeltaBackend::kPdt;
  ColumnStoreOptions store;
  PdtOptions pdt;
};

/// An updatable, SK-ordered columnar table.
class Table {
 public:
  Table(std::string name, std::shared_ptr<const Schema> schema,
        TableOptions options, std::shared_ptr<BufferPool> pool = nullptr);

  /// Bulk-loads the stable image (SK-ordered rows) and builds the sparse
  /// index. Callable once, before any update.
  Status Load(const std::vector<Tuple>& rows);
  /// Column-wise bulk load (fast path for generators).
  Status LoadColumns(std::vector<ColumnVector> columns);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return *schema_; }
  std::shared_ptr<const Schema> shared_schema() const { return schema_; }
  const TableOptions& options() const { return options_; }
  const ColumnStore& store() const { return *store_; }
  const SparseIndex& sparse_index() const { return sparse_index_; }
  BufferPool* buffer_pool() const { return pool_.get(); }
  /// Raw Read-PDT pointer. Unsynchronized: legal only when the caller
  /// excludes a concurrent ReplacePdt — it is the table's transaction
  /// driver acting under its own lock (ReplacePdt runs under that same
  /// lock), or no driver is attached at all. Every other reader must
  /// pin a SharedPdt() snapshot instead.
  Pdt* pdt() { return pdt_.get(); }
  const Pdt* pdt() const { return pdt_.get(); }
  /// Shared ownership of the PDT (the Read-PDT of the transaction
  /// layers). Snapshots hold this so a concurrent ReplacePdt — the
  /// background merge installing a freshly folded Read-PDT — never
  /// pulls the layer out from under a running scan: the old PDT stays
  /// alive until its last snapshot drops it. The copy itself is taken
  /// under the table's own pointer lock, so it is safe against a
  /// racing ReplacePdt from any thread.
  std::shared_ptr<const Pdt> SharedPdt() const {
    std::lock_guard<std::mutex> lock(pdt_mu_);
    return pdt_;
  }
  /// Swaps in a replacement Read-PDT (background Write→Read merge).
  /// Synchronized against SharedPdt() pinners by the pointer lock; the
  /// transaction driver additionally serializes it against its own
  /// Begin()/commit paths under the driver lock.
  void ReplacePdt(std::shared_ptr<Pdt> pdt) {
    std::lock_guard<std::mutex> lock(pdt_mu_);
    pdt_ = std::move(pdt);
  }

  /// At most one transaction driver (TxnManager or MultiTxnManager) may
  /// manage a table at a time: drivers mutate the PDT layer stack under
  /// their own lock, and two drivers would install/mutate it under
  /// different locks. Returns false if another driver already holds the
  /// claim. Released by the driver's destructor.
  bool AcquireTxnDriver() { return !txn_driver_.exchange(true); }
  void ReleaseTxnDriver() { txn_driver_.store(false); }
  Vdt* vdt() { return vdt_.get(); }
  const Vdt* vdt() const { return vdt_.get(); }

  /// Visible (merged) row count.
  uint64_t RowCount() const;

  // ------------------------------------------------------------------
  // SK-addressed updates (work on both backends).
  // ------------------------------------------------------------------

  /// Inserts a full tuple; fails with AlreadyExists on a duplicate SK.
  Status Insert(const Tuple& tuple);
  /// Deletes the tuple with the given SK.
  Status DeleteByKey(const std::vector<Value>& key);
  /// Sets one column of the tuple with the given SK. Modifying an SK
  /// column is executed as delete + insert (Sec. 2.1).
  Status ModifyByKey(const std::vector<Value>& key, ColumnId col,
                     const Value& v);

  // ------------------------------------------------------------------
  // Positional updates (PDT backend only — the VDT has no positions,
  // which is precisely the architectural difference under study).
  // ------------------------------------------------------------------

  Status DeleteAt(Rid rid);
  Status ModifyAt(Rid rid, ColumnId col, const Value& v);

  // ------------------------------------------------------------------
  // Merged-image access (PDT backend).
  // ------------------------------------------------------------------

  /// Full merged tuple at `rid`.
  StatusOr<Tuple> GetMergedTuple(Rid rid) const;
  /// SK of the merged tuple at `rid`.
  StatusOr<std::vector<Value>> MergedSortKey(Rid rid) const;
  /// First RID whose SK is > `key` (row count if none).
  StatusOr<Rid> UpperBoundRid(const std::vector<Value>& key) const;
  /// Locates an exact SK. Returns NotFound if absent.
  StatusOr<Rid> FindRidByKey(const std::vector<Value>& key) const;
  /// True if the key is visible in the merged image (both backends).
  StatusOr<bool> ContainsKey(const std::vector<Value>& key) const;

  // ------------------------------------------------------------------
  // Scans.
  // ------------------------------------------------------------------

  /// Merging scan of `projection`; `bounds` (optional, inclusive SK
  /// prefix range) restricts it through the sparse index. The PDT path
  /// scans exactly `projection`; the VDT path additionally reads all SK
  /// columns — the paper's core I/O asymmetry.
  ///
  /// `scan_opts.num_threads > 1` runs the morsel-driven parallel scan
  /// (exec/parallel_scan.h): disjoint SID-range morsels are merged by a
  /// worker pool; `scan_opts.ordered` picks SID-ordered or as-completed
  /// delivery. Both modes produce exactly the serial scan's rows. The
  /// scan must not overlap updates to this table's delta structure.
  std::unique_ptr<BatchSource> Scan(std::vector<ColumnId> projection,
                                    const KeyBounds* bounds = nullptr,
                                    const ScanOptions& scan_opts = {}) const;

  /// Plans the same scan as morsels + a per-morsel source factory, the
  /// input of the parallel pipelines (exec/pipeline.h): operator
  /// fragments run inside whichever worker claims each morsel. Falls
  /// back to a serial plan at one thread or when the source cannot be
  /// split (VDT without key fences). `scan_opts.morsel_rows == 0`
  /// auto-tunes the granularity from the chunk size and the delta's
  /// entry density.
  MorselPlan PlanMorsels(std::vector<ColumnId> projection,
                         const KeyBounds* bounds = nullptr,
                         const ScanOptions& scan_opts = {}) const;

  // ------------------------------------------------------------------
  // Maintenance.
  // ------------------------------------------------------------------

  /// Rebuilds the stable image from the merged state, resets the delta
  /// and re-derives the sparse index ("create a new image of the table
  /// with all updates applied", Sec. 2). With `num_threads > 1` the
  /// merged image is materialized by the ordered morsel-parallel scan on
  /// the shared worker pool; the output is byte-identical to the serial
  /// rebuild.
  Status Checkpoint(int num_threads = 1);

  /// Heap footprint of the differential structure.
  size_t DeltaMemoryBytes() const;

  /// Degrades the table to read-only: every direct mutation (and
  /// Checkpoint) fails with InvalidArgument. Used when recovery
  /// cannot reconstruct a trustworthy state — reads stay available,
  /// writes that could compound the damage do not.
  void SetReadOnly() { read_only_ = true; }
  bool read_only() const { return read_only_; }

 private:
  // Pins the current Read-PDT for the duration of one table operation
  // (null on the VDT backend). Table methods never touch pdt_ directly
  // beyond this: a background merge may ReplacePdt concurrently with
  // non-transactional reads, and the pin keeps the pointer read atomic
  // and the old layer alive until the operation finishes.
  std::shared_ptr<Pdt> PinPdt() const {
    std::lock_guard<std::mutex> lock(pdt_mu_);
    return pdt_;
  }

  // Per-operation variants working on one pinned PDT snapshot (so a
  // multi-probe binary search resolves every probe against the same
  // layer, and pins once instead of per probe).
  StatusOr<Tuple> GetMergedTupleIn(const Pdt& pdt, Rid rid) const;
  StatusOr<std::vector<Value>> MergedSortKeyIn(const Pdt& pdt,
                                               Rid rid) const;
  StatusOr<Rid> UpperBoundRidIn(const Pdt& pdt,
                                const std::vector<Value>& key) const;
  StatusOr<Rid> FindRidByKeyIn(const Pdt& pdt,
                               const std::vector<Value>& key) const;
  uint64_t RowCountIn(const Pdt& pdt) const;

  // First stable SID with SK >= key (binary search over stable storage).
  StatusOr<Sid> StableLowerBound(const std::vector<Value>& key) const;
  // True if the *stable* image contains this exact key.
  StatusOr<bool> StableHasKey(const std::vector<Value>& key) const;
  // Current full tuple by key (either backend).
  StatusOr<Tuple> GetTupleByKey(const std::vector<Value>& key) const;

  std::string name_;
  std::shared_ptr<const Schema> schema_;
  TableOptions options_;
  std::shared_ptr<BufferPool> pool_;
  std::unique_ptr<ColumnStore> store_;
  SparseIndex sparse_index_;
  // Guards the pdt_ pointer itself (not the Pdt's contents): ReplacePdt
  // stores and SharedPdt/PinPdt copies happen under it, so the
  // shared_ptr is never copied concurrently with a reassignment.
  mutable std::mutex pdt_mu_;
  std::shared_ptr<Pdt> pdt_;
  std::unique_ptr<Vdt> vdt_;
  // Set while a TxnManager/MultiTxnManager drives this table.
  std::atomic<bool> txn_driver_{false};
  bool loaded_ = false;
  bool read_only_ = false;
};

}  // namespace pdtstore

#endif  // PDTSTORE_DB_TABLE_H_

// Multi-query workload management: admission control with bounded FIFO
// queueing in front of the shared worker pool, per-query memory budgets
// (util/mem_budget.h) drawn from one process pool, and a WorkloadStats
// snapshot for observability (shell `.stats`).
//
// Admission semantics: at most `max_concurrent` queries run at once.
// Arrivals beyond that wait in strict FIFO order; when the wait queue is
// itself full (`max_queued`), Admit fails immediately with
// ResourceExhausted — bounded queueing, so a flood degrades into fast
// rejections instead of an unbounded backlog. Each admitted query gets a
// QueryTicket carrying a unique scheduling token (the ThreadPool
// fairness lane) and a MemoryBudget; ScopedQuery installs both in the
// thread-local query context for the duration of the query, where the
// exchange / pipeline / breaker code picks them up.
#ifndef PDTSTORE_EXEC_WORKLOAD_H_
#define PDTSTORE_EXEC_WORKLOAD_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>

#include "util/mem_budget.h"
#include "util/status.h"

namespace pdtstore {

class WorkloadManager;

/// Tuning knobs of one WorkloadManager.
struct WorkloadOptions {
  /// Queries running at once; <= 0 defaults to 2x hardware threads
  /// (queries block on I/O-free CPU work here, so a small multiple of
  /// the core count keeps the pool busy without thrashing).
  int max_concurrent = 0;
  /// Arrivals allowed to wait beyond max_concurrent before Admit
  /// rejects; 0 = reject as soon as concurrency is saturated.
  size_t max_queued = 256;
  /// Process-wide memory cap shared by all admitted queries (bytes);
  /// 0 = unlimited.
  size_t process_memory_cap = 0;
  /// Per-query memory cap (bytes); 0 = only the process cap applies.
  size_t per_query_memory_cap = 0;
  /// Directory for join-build partition spills; empty = fail-fast
  /// (ResourceExhausted) instead of spilling.
  std::string spill_dir;
};

/// Point-in-time counters of a WorkloadManager.
struct WorkloadStats {
  uint64_t admitted = 0;        // tickets handed out so far
  uint64_t completed = 0;       // tickets returned
  uint64_t rejected = 0;        // Admit failures (queue full)
  uint64_t active = 0;          // currently running
  uint64_t queued = 0;          // currently waiting
  uint64_t queued_peak = 0;     // max simultaneous waiters seen
  size_t memory_used = 0;       // pool bytes currently charged
  size_t memory_peak = 0;       // max pool bytes ever charged
  size_t memory_cap = 0;        // pool capacity (0 = unlimited)
};

/// One admitted query's run permit. Returned by WorkloadManager::Admit
/// as a shared_ptr so long-lived helpers (queued pool tasks, shared-scan
/// subscriptions) can keep it alive; the slot is released when the last
/// reference drops.
class QueryTicket {
 public:
  ~QueryTicket();

  QueryTicket(const QueryTicket&) = delete;
  QueryTicket& operator=(const QueryTicket&) = delete;

  uint64_t token() const { return token_; }
  const std::shared_ptr<MemoryBudget>& budget() const { return budget_; }
  const std::string& label() const { return budget_->label(); }
  /// Spill directory captured at admission (empty = fail fast).
  const std::string& spill_dir() const { return spill_dir_; }

 private:
  friend class WorkloadManager;
  QueryTicket(WorkloadManager* mgr, uint64_t token,
              std::shared_ptr<MemoryBudget> budget, std::string spill_dir)
      : mgr_(mgr),
        token_(token),
        budget_(std::move(budget)),
        spill_dir_(std::move(spill_dir)) {}

  WorkloadManager* mgr_;
  uint64_t token_;
  std::shared_ptr<MemoryBudget> budget_;
  std::string spill_dir_;
};

/// The admission gate + shared memory pool. Thread-safe. One process
/// normally uses Global(), tests construct their own.
class WorkloadManager {
 public:
  explicit WorkloadManager(WorkloadOptions options = {});
  ~WorkloadManager();

  /// Blocks until a run slot is free (FIFO among waiters) and returns
  /// the query's ticket, or fails fast with ResourceExhausted when the
  /// bounded wait queue is full. Destroying the ticket frees the slot.
  StatusOr<std::shared_ptr<QueryTicket>> Admit(std::string label);

  WorkloadStats GetStats() const;
  MemoryPool* memory_pool() { return &pool_; }
  const WorkloadOptions& options() const { return options_; }

  /// Reconfigures caps (shell `.workload`, tests). Only affects queries
  /// admitted afterwards (memory caps additionally re-bound the shared
  /// pool immediately).
  void Configure(const WorkloadOptions& options);

  /// Process-wide manager (lazily constructed, default options: no
  /// memory caps, concurrency 2x hardware).
  static WorkloadManager& Global();

 private:
  friend class QueryTicket;
  void Done();
  int ResolvedMaxConcurrent() const;

  WorkloadOptions options_;
  MemoryPool pool_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<uint64_t> waiters_;  // FIFO admission order (by seq)
  uint64_t next_seq_ = 1;         // also the scheduling token source
  uint64_t active_ = 0;
  uint64_t admitted_ = 0;
  uint64_t completed_ = 0;
  uint64_t rejected_ = 0;
  uint64_t queued_peak_ = 0;
};

/// Binds an admitted query to the current thread for a scope: installs
/// the ticket's budget + token in the thread-local query context (so
/// plans, pipelines and breakers constructed in the scope account to
/// this query and submit to its fairness lane) and keeps the ticket
/// alive for the duration.
class ScopedQuery {
 public:
  explicit ScopedQuery(std::shared_ptr<QueryTicket> ticket)
      : ticket_(std::move(ticket)),
        ctx_(QueryContext{ticket_ ? ticket_->budget() : nullptr,
                          ticket_ ? ticket_->token() : 0,
                          ticket_ ? ticket_->spill_dir() : std::string()}) {}

 private:
  std::shared_ptr<QueryTicket> ticket_;
  ScopedQueryContext ctx_;
};

}  // namespace pdtstore

#endif  // PDTSTORE_EXEC_WORKLOAD_H_

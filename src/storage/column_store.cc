#include "storage/column_store.h"

#include <algorithm>
#include <atomic>

#include "util/string_util.h"

namespace pdtstore {

namespace {
std::atomic<uint64_t> g_next_store_id{1};
}  // namespace

ColumnStore::ColumnStore(Schema schema, ColumnStoreOptions options,
                         std::shared_ptr<BufferPool> pool)
    : schema_(std::move(schema)),
      options_(options),
      pool_(std::move(pool)),
      store_id_(g_next_store_id.fetch_add(1)) {
  if (!pool_) pool_ = std::make_shared<BufferPool>();
  columns_.resize(schema_.num_columns());
}

Status ColumnStore::BulkLoad(const std::vector<Tuple>& rows) {
  // Pivot to columnar and delegate.
  std::vector<ColumnVector> cols;
  cols.reserve(schema_.num_columns());
  for (ColumnId c = 0; c < schema_.num_columns(); ++c) {
    cols.emplace_back(schema_.column(c).type);
    cols.back().Reserve(rows.size());
  }
  for (size_t r = 0; r < rows.size(); ++r) {
    PDT_RETURN_NOT_OK(schema_.ValidateTuple(rows[r]));
    if (r > 0 && schema_.CompareSortKey(rows[r - 1], rows[r]) >= 0) {
      return Status::InvalidArgument(StringPrintf(
          "bulk load rows not strictly SK-ordered at row %zu", r));
    }
    for (ColumnId c = 0; c < schema_.num_columns(); ++c) {
      cols[c].Append(rows[r][c]);
    }
  }
  return BulkLoadColumns(std::move(cols));
}

Status ColumnStore::BulkLoadColumns(std::vector<ColumnVector> columns) {
  if (loaded_) return Status::InvalidArgument("table already loaded");
  if (columns.size() != schema_.num_columns()) {
    return Status::InvalidArgument("column count mismatch in bulk load");
  }
  size_t n = columns.empty() ? 0 : columns[0].size();
  for (ColumnId c = 0; c < columns.size(); ++c) {
    if (columns[c].type() != schema_.column(c).type) {
      return Status::InvalidArgument("column type mismatch in bulk load");
    }
    if (columns[c].size() != n) {
      return Status::InvalidArgument("ragged columns in bulk load");
    }
  }
  const size_t chunk_rows = options_.chunk_rows;
  for (Sid start = 0; start < n; start += chunk_rows) {
    size_t end = std::min(n, start + chunk_rows);
    chunk_bounds_.push_back(start);
    for (ColumnId c = 0; c < columns.size(); ++c) {
      ColumnVector slice(columns[c].type());
      slice.AppendRange(columns[c], start, end);
      if (c < options_.forced_encodings.size()) {
        PDT_ASSIGN_OR_RETURN(
            Chunk chunk,
            BuildChunkForced(slice, start, options_.forced_encodings[c]));
        columns_[c].push_back(std::move(chunk));
      } else {
        PDT_ASSIGN_OR_RETURN(Chunk chunk,
                             BuildChunk(slice, start, options_.compression));
        columns_[c].push_back(std::move(chunk));
      }
    }
  }
  num_rows_ = n;
  loaded_ = true;
  return Status::OK();
}

std::pair<Sid, Sid> ColumnStore::ChunkSidRange(size_t ci) const {
  Sid start = chunk_bounds_[ci];
  Sid end = (ci + 1 < chunk_bounds_.size()) ? chunk_bounds_[ci + 1]
                                            : num_rows_;
  return {start, end};
}

size_t ColumnStore::ChunkIndexForSid(Sid sid) const {
  auto it = std::upper_bound(chunk_bounds_.begin(), chunk_bounds_.end(), sid);
  return static_cast<size_t>(it - chunk_bounds_.begin()) - 1;
}

uint64_t ColumnStore::ChunkKey(ColumnId col, size_t ci) const {
  return (store_id_ << 40) ^ (static_cast<uint64_t>(col) << 28) ^
         static_cast<uint64_t>(ci);
}

StatusOr<std::shared_ptr<const ColumnVector>> ColumnStore::FetchChunk(
    ColumnId col, size_t ci) const {
  if (col >= columns_.size() || ci >= columns_[col].size()) {
    return Status::OutOfRange("chunk index out of range");
  }
  return pool_->Fetch(ChunkKey(col, ci), columns_[col][ci],
                      options_.encoded_exec);
}

StatusOr<Value> ColumnStore::GetValue(ColumnId col, Sid sid) const {
  if (sid >= num_rows_) return Status::OutOfRange("sid out of range");
  size_t ci = ChunkIndexForSid(sid);
  PDT_ASSIGN_OR_RETURN(auto data, FetchChunk(col, ci));
  return data->GetValue(sid - chunk_bounds_[ci]);
}

StatusOr<Tuple> ColumnStore::GetTuple(Sid sid) const {
  Tuple t;
  t.reserve(schema_.num_columns());
  for (ColumnId c = 0; c < schema_.num_columns(); ++c) {
    PDT_ASSIGN_OR_RETURN(Value v, GetValue(c, sid));
    t.push_back(std::move(v));
  }
  return t;
}

StatusOr<std::vector<Value>> ColumnStore::GetSortKey(Sid sid) const {
  std::vector<Value> key;
  key.reserve(schema_.sort_key().size());
  for (ColumnId c : schema_.sort_key()) {
    PDT_ASSIGN_OR_RETURN(Value v, GetValue(c, sid));
    key.push_back(std::move(v));
  }
  return key;
}

uint64_t ColumnStore::DiskBytes() const {
  uint64_t total = 0;
  for (ColumnId c = 0; c < columns_.size(); ++c) {
    total += DiskBytesForColumn(c);
  }
  return total;
}

uint64_t ColumnStore::DiskBytesForColumn(ColumnId col) const {
  uint64_t total = 0;
  for (const auto& chunk : columns_[col]) total += chunk.DiskBytes();
  return total;
}

}  // namespace pdtstore

#include "txn/txn_manager.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <map>

#include "txn/layered.h"
#include "util/thread_pool.h"

namespace pdtstore {

namespace internal {

// A sealed transaction on the lock-free commit chain. The owner thread
// fills every field before the release-CAS in PublishRecord; afterwards
// all fields except `next` are touched only under the manager lock (the
// fold leader that claims the chain, or the owner's abort-unlink).
struct DeltaRecord {
  enum State { kPublished, kCommitted, kAborted };

  uint64_t txn_id = 0;
  uint64_t start_time = 0;
  std::unique_ptr<Pdt> trans;  ///< the sealed Trans-PDT

  // Chain mode pre-encodes the WAL frames (begin, ops, commit) outside
  // every lock; the fold appends the finished bytes in one batch. The
  // serial_commit baseline keeps the logical records instead and encodes
  // them under the lock — the legacy write path, byte for byte.
  std::vector<std::string> payloads;
  std::vector<WalRecord> redo;
  bool preencoded = false;

  std::atomic<DeltaRecord*> next{nullptr};
  bool enqueued = false;  ///< still linked into the chain

  State state = kPublished;
  Status result = Status::OK();
  uint64_t durable_upto = 0;  ///< WAL offset the owner must sync to
};

}  // namespace internal

using internal::DeltaRecord;

namespace {

// Returned by Scan()/PlanMorsels() on a published (sealed) transaction:
// the Trans-PDT has moved into the delta record (where a concurrent
// fold may be serializing it), so reads fail loudly at Next() instead
// of handing back a null source — Scan() never returned null before
// the two-phase commit split, and callers do not check.
class SealedTxnSource : public BatchSource {
 public:
  StatusOr<bool> Next(Batch*, size_t) override {
    return Status::InvalidArgument(
        "transaction is published: no reads until the commit verdict");
  }
};

}  // namespace

// State for one incremental background Write→Read merge. Shared between
// the successive worker-pool tasks that advance it.
struct TxnManager::MergeJob {
  std::shared_ptr<const Pdt> source_read;  ///< pinned pre-merge Read-PDT
  std::shared_ptr<const Pdt> pending;      ///< the claimed Write-PDT
  std::unique_ptr<Pdt> merged;             ///< private clone being built
  Pdt::Cursor cursor;                      ///< next unapplied entry
};

// ---------------------------------------------------------------------
// Transaction.
// ---------------------------------------------------------------------

Transaction::Transaction(TxnManager* mgr, uint64_t id, uint64_t start_time,
                         std::shared_ptr<const Pdt> read_snapshot,
                         std::shared_ptr<const Pdt> pending_snapshot,
                         std::shared_ptr<const Pdt> write_snapshot)
    : mgr_(mgr),
      id_(id),
      start_time_(start_time),
      read_(std::move(read_snapshot)),
      pending_(std::move(pending_snapshot)),
      write_(std::move(write_snapshot)),
      trans_(std::make_unique<Pdt>(mgr->table()->shared_schema(),
                                   mgr->table()->options().pdt)) {}

Transaction::~Transaction() {
  if (!finished_) Abort();
}

std::vector<const Pdt*> Transaction::Layers() const {
  std::vector<const Pdt*> layers;
  layers.reserve(4);
  layers.push_back(read_.get());
  if (pending_ != nullptr) layers.push_back(pending_.get());
  layers.push_back(write_.get());
  layers.push_back(trans_.get());
  return layers;
}

std::vector<const Pdt*> Transaction::UpdateLayers() const {
  std::vector<const Pdt*> layers = Layers();
  if (query_ != nullptr) layers.push_back(query_.get());
  return layers;
}

Pdt* Transaction::UpdateTarget() const {
  return query_ != nullptr ? query_.get() : trans_.get();
}

uint64_t Transaction::RowCount() const {
  // Sealed by Publish(): report the snapshot's count as of sealing (the
  // Trans-PDT itself is off-limits — a fold may be serializing it).
  if (trans_ == nullptr) return sealed_row_count_;
  int64_t delta = read_->TotalDelta() + write_->TotalDelta() +
                  trans_->TotalDelta();
  if (pending_ != nullptr) delta += pending_->TotalDelta();
  return static_cast<uint64_t>(
      static_cast<int64_t>(mgr_->table()->store().num_rows()) + delta);
}

uint64_t Transaction::UpdateDomainRowCount() const {
  uint64_t n = RowCount();
  if (query_ != nullptr) {
    n = static_cast<uint64_t>(static_cast<int64_t>(n) +
                              query_->TotalDelta());
  }
  return n;
}

StatusOr<std::vector<Value>> Transaction::MergedSortKey(Rid rid) const {
  return internal::LayeredSortKey(mgr_->table()->store(), UpdateLayers(), rid);
}

StatusOr<Rid> Transaction::UpperBoundRid(
    const std::vector<Value>& key) const {
  Rid lo = 0, hi = UpdateDomainRowCount();
  while (lo < hi) {
    Rid mid = lo + (hi - lo) / 2;
    PDT_ASSIGN_OR_RETURN(auto mid_key, MergedSortKey(mid));
    int cmp = 0;
    for (size_t i = 0; i < mid_key.size() && i < key.size(); ++i) {
      cmp = mid_key[i].Compare(key[i]);
      if (cmp != 0) break;
    }
    if (cmp <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

StatusOr<Rid> Transaction::FindRidByKey(
    const std::vector<Value>& key) const {
  PDT_ASSIGN_OR_RETURN(Rid ub, UpperBoundRid(key));
  if (ub == 0) return Status::NotFound("key not found");
  PDT_ASSIGN_OR_RETURN(auto prev_key, MergedSortKey(ub - 1));
  if (CompareTuples(prev_key, key) != 0) {
    return Status::NotFound("key not found");
  }
  return ub - 1;
}

Status Transaction::Insert(const Tuple& tuple) {
  if (finished_ || rec_ != nullptr) {
    return Status::InvalidArgument("transaction finished or published");
  }
  const Schema& schema = mgr_->table()->schema();
  PDT_RETURN_NOT_OK(schema.ValidateTuple(tuple));
  std::vector<Value> key = schema.ExtractSortKey(tuple);
  auto existing = FindRidByKey(key);
  if (existing.ok()) return Status::AlreadyExists("duplicate sort key");
  if (existing.status().code() != StatusCode::kNotFound) {
    return existing.status();
  }
  PDT_ASSIGN_OR_RETURN(Rid rid, UpperBoundRid(key));
  Pdt* target = UpdateTarget();
  Sid sid = target->SKRidToSid(key, rid);
  PDT_RETURN_NOT_OK(target->AddInsert(sid, rid, tuple));
  WalRecord r;
  r.type = WalRecordType::kInsert;
  r.table = mgr_->table()->name();
  r.tuple = tuple;
  redo_.push_back(std::move(r));
  return Status::OK();
}

Status Transaction::DeleteByKey(const std::vector<Value>& key) {
  if (finished_ || rec_ != nullptr) {
    return Status::InvalidArgument("transaction finished or published");
  }
  PDT_ASSIGN_OR_RETURN(Rid rid, FindRidByKey(key));
  PDT_RETURN_NOT_OK(UpdateTarget()->AddDelete(rid, key));
  WalRecord r;
  r.type = WalRecordType::kDelete;
  r.table = mgr_->table()->name();
  r.key = key;
  redo_.push_back(std::move(r));
  return Status::OK();
}

Status Transaction::ModifyByKey(const std::vector<Value>& key, ColumnId col,
                                const Value& v) {
  if (finished_ || rec_ != nullptr) {
    return Status::InvalidArgument("transaction finished or published");
  }
  const Schema& schema = mgr_->table()->schema();
  if (schema.IsSortKeyColumn(col)) {
    PDT_ASSIGN_OR_RETURN(Rid rid, FindRidByKey(key));
    PDT_ASSIGN_OR_RETURN(
        Tuple t, internal::LayeredTuple(mgr_->table()->store(), UpdateLayers(), rid));
    PDT_RETURN_NOT_OK(DeleteByKey(key));
    t[col] = v;
    return Insert(t);
  }
  PDT_ASSIGN_OR_RETURN(Rid rid, FindRidByKey(key));
  PDT_RETURN_NOT_OK(UpdateTarget()->AddModify(rid, col, v));
  WalRecord r;
  r.type = WalRecordType::kModify;
  r.table = mgr_->table()->name();
  r.key = key;
  r.column = col;
  r.value = v;
  redo_.push_back(std::move(r));
  return Status::OK();
}

std::unique_ptr<BatchSource> Transaction::Scan(
    std::vector<ColumnId> projection, const KeyBounds* bounds,
    const ScanOptions& scan_opts) const {
  if (trans_ == nullptr) {  // sealed by Publish()
    return std::make_unique<SealedTxnSource>();
  }
  std::vector<SidRange> ranges;
  if (bounds != nullptr) {
    ranges = mgr_->table()->sparse_index().LookupRange(bounds->lo,
                                                       bounds->hi);
  }
  return internal::LayeredScan(mgr_->table()->store(), Layers(),
                               std::move(projection), std::move(ranges),
                               scan_opts);
}

MorselPlan Transaction::PlanMorsels(std::vector<ColumnId> projection,
                                    const KeyBounds* bounds,
                                    const ScanOptions& scan_opts) const {
  if (trans_ == nullptr) {  // sealed by Publish()
    MorselPlan plan;
    plan.serial = std::make_unique<SealedTxnSource>();
    return plan;
  }
  std::vector<SidRange> ranges;
  if (bounds != nullptr) {
    ranges = mgr_->table()->sparse_index().LookupRange(bounds->lo,
                                                       bounds->hi);
  }
  return internal::LayeredMorselPlan(mgr_->table()->store(), Layers(),
                                     std::move(projection),
                                     std::move(ranges), scan_opts);
}

StatusOr<Tuple> Transaction::GetByKey(const std::vector<Value>& key) const {
  if (finished_ || rec_ != nullptr) {
    return Status::InvalidArgument("transaction finished or published");
  }
  // Point reads feed update logic, so they see the full update domain
  // (including an active Query-PDT); Scan() is the protected read path.
  PDT_ASSIGN_OR_RETURN(Rid rid, FindRidByKey(key));
  return internal::LayeredTuple(mgr_->table()->store(), UpdateLayers(), rid);
}

Status Transaction::BeginQueryPdt() {
  if (finished_ || rec_ != nullptr) {
    return Status::InvalidArgument("transaction finished or published");
  }
  if (query_ != nullptr) {
    return Status::InvalidArgument("Query-PDT already active");
  }
  query_ = std::make_unique<Pdt>(mgr_->table()->shared_schema(),
                                 mgr_->table()->options().pdt);
  return Status::OK();
}

Status Transaction::EndQueryPdt() {
  if (query_ == nullptr) {
    return Status::InvalidArgument("no Query-PDT active");
  }
  // "When such a query finishes, its Query-PDT is propagated to its
  // Trans-PDT and removed." (footnote 5)
  PDT_RETURN_NOT_OK(trans_->Propagate(*query_));
  query_.reset();
  return Status::OK();
}

Status Transaction::Publish() {
  if (finished_) return Status::InvalidArgument("transaction finished");
  if (rec_ != nullptr) return Status::InvalidArgument("already published");
  if (query_ != nullptr) {
    return Status::InvalidArgument(
        "finish the active Query-PDT before committing");
  }
  sealed_row_count_ = RowCount();
  rec_ = std::make_unique<DeltaRecord>();
  rec_->txn_id = id_;
  rec_->start_time = start_time_;
  if (!mgr_->opts_.serial_commit && mgr_->wal_ != nullptr) {
    // Encode the commit's WAL frames here, outside every lock; the fold
    // leader appends the finished bytes in one batch under the lock.
    rec_->payloads.reserve(redo_.size() + 2);
    WalRecord b;
    b.type = WalRecordType::kBegin;
    b.txn_id = id_;
    rec_->payloads.push_back(Wal::EncodeRecordPayload(b));
    for (WalRecord& r : redo_) {
      r.txn_id = id_;
      rec_->payloads.push_back(Wal::EncodeRecordPayload(r));
    }
    WalRecord c;
    c.type = WalRecordType::kCommit;
    c.txn_id = id_;
    rec_->payloads.push_back(Wal::EncodeRecordPayload(c));
    rec_->preencoded = true;
    redo_.clear();
  } else {
    rec_->redo = std::move(redo_);
  }
  rec_->trans = std::move(trans_);
  // The serial_commit baseline skips the chain: the committer folds its
  // own record under the lock in AwaitCommit, like the legacy path.
  if (!mgr_->opts_.serial_commit) mgr_->PublishRecord(rec_.get());
  return Status::OK();
}

Status Transaction::AwaitCommit() {
  if (finished_) return Status::InvalidArgument("transaction finished");
  if (rec_ == nullptr) {
    return Status::InvalidArgument("transaction not published");
  }
  uint64_t durable_upto = 0;
  Status st = mgr_->AwaitVerdict(rec_.get(), &durable_upto);
  finished_ = true;
  if (!st.ok()) return st;
  // Group commit: wait for the WAL to reach disk outside the commit
  // lock, so concurrent committers pile into one fsync.
  if (durable_upto > 0) return mgr_->SyncWal(durable_upto);
  return Status::OK();
}

Status Transaction::Commit() {
  PDT_RETURN_NOT_OK(Publish());
  return AwaitCommit();
}

void Transaction::Abort() {
  if (finished_) return;
  if (rec_ != nullptr) {
    mgr_->AbortPublished(this);
    return;
  }
  std::lock_guard<std::mutex> lock(mgr_->mu_);
  mgr_->FinishLocked(this);
  ++mgr_->aborted_count_;
  if (mgr_->wal_ != nullptr) mgr_->wal_->LogAbort(id_);
}

// ---------------------------------------------------------------------
// TxnManager.
// ---------------------------------------------------------------------

TxnManager::TxnManager(Table* table, Wal* wal, TxnManagerOptions opts)
    : table_(table), wal_(wal), opts_(opts) {
  assert(table_->pdt() != nullptr &&
         "transaction management requires the PDT backend");
  // Claim the table's single transaction-driver slot: this manager
  // mutates the PDT layer stack (and installs merged Read-PDTs) under
  // mu_, which is only sound if no other manager does so under a
  // different lock.
  driver_claimed_ = table_->AcquireTxnDriver();
  assert(driver_claimed_ &&
         "table is already driven by another transaction manager");
  write_ = std::make_unique<Pdt>(table_->shared_schema(),
                                 table_->options().pdt);
}

TxnManager::~TxnManager() {
  {
    // The background merge task captures `this`; wait it out.
    std::unique_lock<std::mutex> lock(mu_);
    merge_cv_.wait(lock, [this] { return !merge_inflight_; });
  }
  if (driver_claimed_) table_->ReleaseTxnDriver();
}

size_t TxnManager::active_transactions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

std::unique_ptr<Transaction> TxnManager::Begin() {
  std::lock_guard<std::mutex> lock(mu_);
  // Share the Write-PDT copy when no commit happened since it was taken
  // ("copying is not always required", Sec. 3.3).
  if (!write_snapshot_ || write_snapshot_time_ != clock_) {
    write_snapshot_ = std::shared_ptr<const Pdt>(write_->Clone().release());
    write_snapshot_time_ = clock_;
  }
  // Pin the Read-PDT: a background merge may install a replacement
  // while this snapshot lives, and the shared_ptr keeps the pre-merge
  // layer (which the snapshot's RIDs are defined over) alive.
  ++active_;
  uint64_t id = opts_.txn_id_counter != nullptr
                    ? opts_.txn_id_counter->fetch_add(1) + 1
                    : next_txn_id_++;
  return std::unique_ptr<Transaction>(
      new Transaction(this, id, clock_, table_->SharedPdt(), merge_pending_,
                      write_snapshot_));
}

void TxnManager::FinishActiveLocked(uint64_t start_time) {
  // Drop references on every overlapping committed transaction.
  for (auto& z : tz_) {
    if (start_time < z.commit_time) {
      --z.refcnt;
    }
  }
  tz_.erase(std::remove_if(tz_.begin(), tz_.end(),
                           [](const CommittedTxn& z) {
                             return z.refcnt <= 0;
                           }),
            tz_.end());
  --active_;
}

void TxnManager::FinishLocked(Transaction* txn) {
  FinishActiveLocked(txn->start_time_);
  txn->finished_ = true;
}

void TxnManager::SetWalWriter(WalWriter* writer) {
  std::lock_guard<std::mutex> lock(mu_);
  // The durability watermark itself lives in the (possibly shared) Wal
  // and is established by whoever loaded or truncated it (RecoverFrom,
  // Truncate, MarkAllFlushed) — resetting it here could falsely mark
  // another manager's in-flight commit durable. The writer pointer also
  // lives in the Wal (shared by every manager on this log, and kept
  // stable under in-flight flushes); writer_ here only records that
  // this manager commits durably.
  writer_ = writer;
  if (wal_ != nullptr) wal_->SetWriter(writer);
}

Status TxnManager::wal_status() const {
  return wal_ != nullptr ? wal_->health() : Status::OK();
}

Status TxnManager::SyncWal(uint64_t upto) {
  return wal_->SyncTo(upto);
}

void TxnManager::PublishRecord(DeltaRecord* rec) {
  rec->enqueued = true;
  DeltaRecord* cur = delta_head_.load(std::memory_order_relaxed);
  do {
    rec->next.store(cur, std::memory_order_relaxed);
  } while (!delta_head_.compare_exchange_weak(cur, rec,
                                              std::memory_order_release,
                                              std::memory_order_relaxed));
  pending_deltas_.fetch_add(1, std::memory_order_relaxed);
}

Status TxnManager::AwaitVerdict(DeltaRecord* rec, uint64_t* durable_upto) {
  std::unique_lock<std::mutex> lock(mu_);
  if (rec->state == DeltaRecord::kPublished) {
    // Undecided under the lock means the record is still on the chain
    // (folds run entirely under mu_): this committer is the fold leader
    // and decides the whole published batch. Committers that queued on
    // mu_ behind the leader find their verdict already in the record.
    const auto t0 = std::chrono::steady_clock::now();
    if (opts_.serial_commit) {
      CommitRecordLocked(rec);
    } else {
      FoldChainLocked();
    }
    commit_lock_ns_ += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }
  *durable_upto = rec->durable_upto;
  return rec->result;
}

void TxnManager::FoldChainLocked() {
  DeltaRecord* head = delta_head_.exchange(nullptr,
                                           std::memory_order_acquire);
  if (head == nullptr) return;
  // The chain is newest-first; reverse it so records fold in
  // publication order (their WAL frames then appear in verdict order).
  DeltaRecord* chain = nullptr;
  while (head != nullptr) {
    DeltaRecord* next = head->next.load(std::memory_order_relaxed);
    head->next.store(chain, std::memory_order_relaxed);
    chain = head;
    head = next;
  }
  ++fold_batches_;
  while (chain != nullptr) {
    DeltaRecord* next = chain->next.load(std::memory_order_relaxed);
    chain->enqueued = false;
    CommitRecordLocked(chain);
    ++folded_records_;
    pending_deltas_.fetch_sub(1, std::memory_order_relaxed);
    chain = next;
  }
}

void TxnManager::CommitRecordLocked(DeltaRecord* rec) {
  rec->durable_upto = 0;
  if (writer_ != nullptr) {
    // A manager whose WAL sink failed can no longer promise durability:
    // refuse the commit up front.
    Status health = wal_->health();
    if (!health.ok()) {
      FinishActiveLocked(rec->start_time);
      ++aborted_count_;
      rec->result = health;
      rec->state = DeltaRecord::kAborted;
      return;
    }
  }
  // Serialize against every overlapping committed transaction, in commit
  // order (Alg. 9 lines 2-9).
  Status conflict = Status::OK();
  for (auto& z : tz_) {
    if (rec->start_time >= z.commit_time) continue;  // not overlapping
    if (conflict.ok()) {
      conflict = rec->trans->SerializeAgainst(*z.pdt);
      if (!conflict.ok() && conflict.code() != StatusCode::kConflict) {
        // Internal failure, not a write-write conflict: surface as-is.
        FinishActiveLocked(rec->start_time);
        rec->result = conflict;
        rec->state = DeltaRecord::kAborted;
        return;
      }
    }
  }
  if (!conflict.ok()) {
    FinishActiveLocked(rec->start_time);
    ++aborted_count_;
    if (wal_ != nullptr) wal_->LogAbort(rec->txn_id);
    rec->result = conflict;
    rec->state = DeltaRecord::kAborted;
    return;
  }
  // Durability first: the WAL append is the commit point (footnote 2).
  if (wal_ != nullptr) {
    if (rec->preencoded) {
      // The frames were encoded by the publisher outside every lock;
      // batch-append the finished bytes.
      wal_->AppendEncoded(rec->payloads);
      rec->payloads.clear();
    } else {
      wal_->LogBegin(rec->txn_id);
      for (WalRecord& r : rec->redo) {
        r.txn_id = rec->txn_id;
        wal_->Append(r);
      }
      wal_->LogCommit(rec->txn_id);
    }
    if (writer_ != nullptr) {
      if (opts_.group_commit) {
        // Publish the frames now; the owner waits for durability up to
        // this offset outside the commit lock (SyncWal).
        rec->durable_upto = wal_->SizeBytes();
      } else {
        // Per-commit durability: flush and fsync this commit's frames
        // before acknowledging, still under the commit lock — every
        // commit pays its own fsync (the ablation baseline).
        Status st = wal_->SyncTo(wal_->SizeBytes());
        if (!st.ok()) {
          // Not durable: fail the commit without applying it in memory
          // (the WAL health is already poisoned).
          FinishActiveLocked(rec->start_time);
          ++aborted_count_;
          rec->result = st;
          rec->state = DeltaRecord::kAborted;
          return;
        }
      }
    }
  }
  // Fold into the master Write-PDT (Alg. 9 line 12).
  Status st = write_->Propagate(*rec->trans);
  if (!st.ok()) {
    // Invariant failure; state may be inconsistent.
    FinishActiveLocked(rec->start_time);
    rec->result = st;
    rec->state = DeltaRecord::kAborted;
    return;
  }
  ++clock_;
  ++committed_count_;
  uint64_t commit_time = clock_;
  // Release this transaction's own references first, so its freshly
  // committed Trans-PDT is not self-decremented below.
  FinishActiveLocked(rec->start_time);
  // Keep the serialized Trans-PDT alive for the transactions that are
  // still running (they overlap this commit) — including the later
  // members of this fold batch, which are still counted active.
  int refs = static_cast<int>(active_);
  if (refs > 0) {
    tz_.push_back(CommittedTxn{
        std::shared_ptr<Pdt>(rec->trans.release()), commit_time, refs});
  } else {
    rec->trans.reset();
  }
  // Write->Read propagation: inline at quiet points, in the background
  // on the worker pool while other transactions are running.
  rec->result = MaybePropagateWriteLocked();
  rec->state = DeltaRecord::kCommitted;
}

bool TxnManager::UnlinkLocked(DeltaRecord* rec) {
  if (!rec->enqueued) return false;
  // Folds run under mu_ and we hold it, so the record is still on the
  // chain. Claim the chain, drop the record, splice the rest back in
  // their original relative order. Publishes that raced the splice end
  // up behind records that were older — both orders are valid
  // serializations of transactions that raced each other.
  DeltaRecord* head = delta_head_.exchange(nullptr,
                                           std::memory_order_acquire);
  DeltaRecord* keep_head = nullptr;
  DeltaRecord* keep_tail = nullptr;
  while (head != nullptr) {
    DeltaRecord* next = head->next.load(std::memory_order_relaxed);
    if (head == rec) {
      rec->enqueued = false;
    } else {
      head->next.store(nullptr, std::memory_order_relaxed);
      if (keep_tail == nullptr) {
        keep_head = head;
      } else {
        keep_tail->next.store(head, std::memory_order_relaxed);
      }
      keep_tail = head;
    }
    head = next;
  }
  assert(!rec->enqueued && "published record missing from the chain");
  if (keep_head != nullptr) {
    DeltaRecord* cur = delta_head_.load(std::memory_order_relaxed);
    do {
      keep_tail->next.store(cur, std::memory_order_relaxed);
    } while (!delta_head_.compare_exchange_weak(cur, keep_head,
                                                std::memory_order_release,
                                                std::memory_order_relaxed));
  }
  return true;
}

void TxnManager::AbortPublished(Transaction* txn) {
  DeltaRecord* rec = txn->rec_.get();
  std::lock_guard<std::mutex> lock(mu_);
  if (rec->state == DeltaRecord::kPublished) {
    // No fold claimed it: withdraw the record and abort normally.
    if (UnlinkLocked(rec)) {
      pending_deltas_.fetch_sub(1, std::memory_order_relaxed);
    }
    FinishActiveLocked(rec->start_time);
    ++aborted_count_;
    if (wal_ != nullptr) wal_->LogAbort(rec->txn_id);
    rec->result = Status::InvalidArgument("transaction aborted");
    rec->state = DeltaRecord::kAborted;
  }
  // Otherwise a fold already decided it; the verdict stands (a commit
  // is a commit — Abort after the fact is a no-op).
  txn->finished_ = true;
}

Status TxnManager::MaybePropagateWriteLocked() {
  if (merge_inflight_) return Status::OK();
  const bool oversized = write_->EntryCount() > opts_.write_pdt_max_entries;
  if (!oversized && merge_pending_ == nullptr) return Status::OK();
  if (active_ == 0) {
    // Quiet point: fold inline (the deterministic serial behavior). A
    // layer parked by a failed background merge folds first — the
    // Write-PDT's SID domain is defined over Read ▷ pending.
    if (merge_pending_ != nullptr) {
      PDT_RETURN_NOT_OK(table_->pdt()->Propagate(*merge_pending_));
      merge_pending_.reset();
      merge_error_ = Status::OK();
    }
    if (oversized) {
      PDT_RETURN_NOT_OK(table_->pdt()->Propagate(*write_));
      write_->Clear();
      write_snapshot_.reset();
      write_snapshot_time_ = 0;
    }
    return Status::OK();
  }
  // Transactions are running: their snapshots pin the current Read-PDT,
  // so merge into a private clone on the worker pool instead of
  // blocking this commit (and every reader) on an O(Read-PDT) fold.
  if (oversized && merge_pending_ == nullptr) StartBackgroundMergeLocked();
  return Status::OK();
}

void TxnManager::StartBackgroundMergeLocked() {
  auto job = std::make_shared<MergeJob>();
  // The claimed Write-PDT becomes an immutable shared layer: commits
  // fold into a fresh Write-PDT (whose SID domain is Read ▷ pending),
  // and new snapshots stack [read, pending, write] until the merged
  // Read-PDT absorbs it.
  job->pending = std::shared_ptr<const Pdt>(write_.release());
  merge_pending_ = job->pending;
  write_ = std::make_unique<Pdt>(table_->shared_schema(),
                                 table_->options().pdt);
  write_snapshot_.reset();
  write_snapshot_time_ = 0;
  job->source_read = table_->SharedPdt();
  merge_inflight_ = true;
  ThreadPool::Global().Submit([this, job] { MergeStep(job); });
}

void TxnManager::MergeStep(std::shared_ptr<MergeJob> job) {
  if (!job->merged) {
    // First step: clone the pinned Read-PDT. The table's PDT cannot
    // change while the merge is in flight: this manager's inline
    // propagate and checkpoint both exclude merge_inflight_, and no
    // other manager can touch the table (exclusive driver claim, taken
    // in the constructor) — so the clone is a faithful base.
    job->merged = job->source_read->Clone();
    job->cursor = job->pending->Begin();
  }
  bool done = false;
  Status st = job->merged->PropagateStep(*job->pending, &job->cursor,
                                         opts_.merge_chunk_entries, &done);
  std::unique_lock<std::mutex> lock(mu_);
  if (!st.ok()) {
    // Abandon the clone; the pending layer stays parked in the snapshot
    // stack and the next quiet point folds it inline.
    merge_error_ = st;
    merge_inflight_ = false;
    merge_cv_.notify_all();
    return;
  }
  if (!done) {
    // Yield the worker between chunks so foreground scan morsels and
    // pipeline tasks interleave with the merge.
    lock.unlock();
    ThreadPool::Global().Submit([this, job] { MergeStep(job); });
    return;
  }
  // Install the merged Read-PDT. Snapshots taken before this instant
  // keep the pre-merge layers alive through their shared_ptrs; new
  // snapshots see [merged, write] — the same merged image.
  table_->ReplacePdt(std::shared_ptr<Pdt>(job->merged.release()));
  merge_pending_.reset();
  ++background_merges_;
  merge_inflight_ = false;
  merge_cv_.notify_all();
}

TxnManagerStats TxnManager::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  TxnManagerStats s;
  s.committed = committed_count_;
  s.aborted = aborted_count_;
  s.active = active_;
  s.pending_deltas = pending_deltas_.load(std::memory_order_relaxed);
  s.fold_batches = fold_batches_;
  s.folded_records = folded_records_;
  s.commit_lock_ns = commit_lock_ns_;
  s.read_pdt_entries = table_->pdt()->EntryCount();
  s.write_pdt_entries = write_->EntryCount();
  s.merge_pending_entries =
      merge_pending_ != nullptr ? merge_pending_->EntryCount() : 0;
  s.merge_inflight = merge_inflight_;
  s.background_merges = background_merges_;
  s.last_merge_error = merge_error_;
  if (wal_ != nullptr) s.wal_records = wal_->RecordCount();
  if (writer_ != nullptr) s.wal_syncs = writer_->sync_count();
  return s;
}

Status TxnManager::PropagateAndMaybeCheckpoint() {
  std::unique_lock<std::mutex> lock(mu_);
  // Drain the in-flight background merge: it owns a clone mid-fold, and
  // the inline paths below mutate the very layers it reads.
  merge_cv_.wait(lock, [this] { return !merge_inflight_; });
  if (active_ > 0) {
    // Published-but-unfolded commits still count as active, so a
    // pending delta chain also lands here.
    return Status::InvalidArgument(
        "cannot propagate/checkpoint with active transactions");
  }
  if (merge_pending_ != nullptr) {
    // A background merge was abandoned mid-way; fold its claimed layer
    // inline (before the Write-PDT, whose SID domain stacks on it).
    PDT_RETURN_NOT_OK(table_->pdt()->Propagate(*merge_pending_));
    merge_pending_.reset();
    merge_error_ = Status::OK();
  }
  if (!write_->Empty()) {
    PDT_RETURN_NOT_OK(table_->pdt()->Propagate(*write_));
    write_->Clear();
    write_snapshot_.reset();
    write_snapshot_time_ = 0;
  }
  // With a durable WAL attached, in-place checkpointing here would
  // rewrite the stable image without the manifest commit protocol —
  // replaying the (still durable) log over the new image would then
  // apply every absorbed update twice. Durable checkpointing is
  // Database::Save's job; this fast path is for in-memory managers.
  if (writer_ == nullptr &&
      table_->pdt()->EntryCount() > opts_.read_pdt_max_entries) {
    PDT_RETURN_NOT_OK(table_->Checkpoint());
    if (wal_ != nullptr) {
      wal_->LogCheckpoint(table_->name());
      wal_->Truncate();
    }
  }
  return Status::OK();
}

Status TxnManager::Recover(const Wal& wal) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (&wal == wal_) {
      // Replaying a WAL through a manager that appends to that same WAL
      // would grow the log under the replay cursor.
      return Status::InvalidArgument(
          "cannot recover from the manager's own WAL");
    }
    // Recovery only makes sense into a pristine manager: a second run,
    // or a run after transaction activity, would apply updates twice.
    if (recovered_) {
      return Status::InvalidArgument("Recover already ran on this manager");
    }
    if (committed_count_ + aborted_count_ > 0 || active_ > 0 ||
        !write_->Empty() || !table_->pdt()->Empty()) {
      return Status::InvalidArgument(
          "Recover requires a pristine transaction manager");
    }
    recovered_ = true;
  }
  // Group records per transaction; apply committed ones in commit order.
  std::map<uint64_t, std::vector<WalRecord>> pending;
  Status apply_status = Status::OK();
  const std::string& my_table = table_->name();
  Status st = wal.Replay([&](const WalRecord& r) -> Status {
    switch (r.type) {
      case WalRecordType::kBegin:
        pending[r.txn_id] = {};
        break;
      case WalRecordType::kInsert:
      case WalRecordType::kDelete:
      case WalRecordType::kModify:
        // Several tables can share one log; each manager replays only
        // the records addressed to its table.
        if (r.table == my_table) pending[r.txn_id].push_back(r);
        break;
      case WalRecordType::kAbort:
        pending.erase(r.txn_id);
        break;
      case WalRecordType::kCommit: {
        auto it = pending.find(r.txn_id);
        if (it == pending.end()) break;
        if (it->second.empty()) {
          // The transaction touched only other tables.
          pending.erase(it);
          break;
        }
        auto txn = Begin();
        for (const WalRecord& op : it->second) {
          Status op_st;
          switch (op.type) {
            case WalRecordType::kInsert:
              op_st = txn->Insert(op.tuple);
              break;
            case WalRecordType::kDelete:
              op_st = txn->DeleteByKey(op.key);
              break;
            case WalRecordType::kModify:
              op_st = txn->ModifyByKey(op.key, op.column, op.value);
              break;
            default:
              break;
          }
          if (!op_st.ok()) return op_st;
        }
        PDT_RETURN_NOT_OK(txn->Commit());
        pending.erase(it);
        break;
      }
      case WalRecordType::kCheckpoint:
        break;
    }
    return Status::OK();
  });
  PDT_RETURN_NOT_OK(st);
  return apply_status;
}

}  // namespace pdtstore

#include "columnstore/column_vector.h"

#include <cassert>

namespace pdtstore {

void ColumnVector::Clear() {
  ints_.clear();
  doubles_.clear();
  strings_.clear();
  codes_.clear();
  dict_ = nullptr;
  runs_ = nullptr;
  owner_ = nullptr;
  view_off_ = 0;
  view_len_ = 0;
}

void ColumnVector::Reserve(size_t n) {
  if (owner_) return;  // a borrow has no local storage to size
  if (dict_) {
    codes_.reserve(n);
    return;
  }
  switch (type_) {
    case TypeId::kInt64:
      ints_.reserve(n);
      break;
    case TypeId::kDouble:
      doubles_.reserve(n);
      break;
    case TypeId::kString:
      strings_.reserve(n);
      break;
  }
}

void ColumnVector::BorrowFrom(std::shared_ptr<const ColumnVector> src,
                              size_t off, size_t len) {
  assert(src && src->type() == type_);
  // Collapse borrow chains: always pin the root owner directly.
  if (src->owner_) {
    off += src->view_off_;
    std::shared_ptr<const ColumnVector> root = src->owner_;
    src = std::move(root);
  }
  assert(off + len <= src->size());
  Clear();
  owner_ = std::move(src);
  view_off_ = off;
  view_len_ = len;
}

void ColumnVector::AdoptDict(std::shared_ptr<const StringDict> dict) {
  assert(type_ == TypeId::kString && empty() && !owner_ && !dict_);
  assert(dict && dict->hashes.size() == dict->values.size());
  dict_ = std::move(dict);
}

void ColumnVector::SetRleRuns(std::shared_ptr<const RleRuns> runs) {
  assert(!owner_);
  assert(!runs || runs->ends.empty() || runs->ends.back() == size());
  runs_ = std::move(runs);
}

void ColumnVector::DetachToOwned() {
  runs_ = nullptr;  // any mutation invalidates the run sidecar
  if (!owner_) return;
  // Keep the payload pinned while copying out of it.
  std::shared_ptr<const ColumnVector> keep = std::move(owner_);
  const ColumnVector& p = *keep;
  size_t off = view_off_, len = view_len_;
  owner_ = nullptr;
  view_off_ = 0;
  view_len_ = 0;
  if (p.dict_) {
    dict_ = p.dict_;
    codes_.assign(p.codes_.begin() + off, p.codes_.begin() + off + len);
    return;
  }
  switch (type_) {
    case TypeId::kInt64:
      ints_.assign(p.ints_.begin() + off, p.ints_.begin() + off + len);
      break;
    case TypeId::kDouble:
      doubles_.assign(p.doubles_.begin() + off, p.doubles_.begin() + off + len);
      break;
    case TypeId::kString:
      strings_.assign(p.strings_.begin() + off, p.strings_.begin() + off + len);
      break;
  }
}

void ColumnVector::DecayDictToPlain() {
  assert(!owner_);
  if (!dict_) return;
  strings_.reserve(codes_.size());
  for (uint32_t c : codes_) strings_.push_back(dict_->values[c]);
  codes_.clear();
  dict_ = nullptr;
}

void ColumnVector::EnsureOwnedPlain() {
  DetachToOwned();
  DecayDictToPlain();
}

bool ColumnVector::MatchDictFor(const ColumnVector& other) {
  if (!other.is_dict()) return false;
  DetachToOwned();  // appends mutate; never write through a borrow
  if (dict_) return dict_ == other.dict();
  if (strings_.empty()) {
    // Empty plain column adopts the source dictionary: downstream
    // operators keep flowing codes until a foreign dictionary arrives.
    dict_ = other.dict();
    return true;
  }
  return false;
}

void ColumnVector::Append(const Value& v) {
  assert(v.type() == type_);
  EnsureOwnedPlain();
  switch (type_) {
    case TypeId::kInt64:
      ints_.push_back(v.AsInt64());
      break;
    case TypeId::kDouble:
      doubles_.push_back(v.AsDouble());
      break;
    case TypeId::kString:
      strings_.push_back(v.AsString());
      break;
  }
}

void ColumnVector::AppendRun(const Value& v, size_t count) {
  assert(v.type() == type_);
  EnsureOwnedPlain();
  switch (type_) {
    case TypeId::kInt64:
      ints_.insert(ints_.end(), count, v.AsInt64());
      break;
    case TypeId::kDouble:
      doubles_.insert(doubles_.end(), count, v.AsDouble());
      break;
    case TypeId::kString:
      strings_.insert(strings_.end(), count, v.AsString());
      break;
  }
}

void ColumnVector::AppendFrom(const ColumnVector& other, size_t i) {
  assert(other.type() == type_);
  switch (type_) {
    case TypeId::kInt64:
      DetachToOwned();
      ints_.push_back(other.ints_data()[i]);
      break;
    case TypeId::kDouble:
      DetachToOwned();
      doubles_.push_back(other.doubles_data()[i]);
      break;
    case TypeId::kString:
      if (MatchDictFor(other)) {
        codes_.push_back(other.CodeAt(i));
      } else {
        EnsureOwnedPlain();
        strings_.push_back(other.StringAt(i));
      }
      break;
  }
}

void ColumnVector::AppendRange(const ColumnVector& other, size_t begin,
                               size_t end) {
  assert(other.type() == type_);
  assert(end <= other.size());
  if (begin >= end) return;
  switch (type_) {
    case TypeId::kInt64: {
      DetachToOwned();
      const int64_t* src = other.ints_data();
      ints_.insert(ints_.end(), src + begin, src + end);
      break;
    }
    case TypeId::kDouble: {
      DetachToOwned();
      const double* src = other.doubles_data();
      doubles_.insert(doubles_.end(), src + begin, src + end);
      break;
    }
    case TypeId::kString: {
      if (MatchDictFor(other)) {
        const uint32_t* src = other.codes_data();
        codes_.insert(codes_.end(), src + begin, src + end);
      } else {
        EnsureOwnedPlain();
        if (other.is_dict()) {
          strings_.reserve(strings_.size() + (end - begin));
          for (size_t i = begin; i < end; ++i) {
            strings_.push_back(other.StringAt(i));
          }
        } else {
          const std::string* src = other.strings_data();
          strings_.insert(strings_.end(), src + begin, src + end);
        }
      }
      break;
    }
  }
}

void ColumnVector::AppendGather(const ColumnVector& other,
                                const SelVector& sel) {
  assert(other.type() == type_);
  switch (type_) {
    case TypeId::kInt64: {
      DetachToOwned();
      const int64_t* src = other.ints_data();
      size_t base = ints_.size();
      ints_.resize(base + sel.size());
      for (size_t i = 0; i < sel.size(); ++i) ints_[base + i] = src[sel[i]];
      break;
    }
    case TypeId::kDouble: {
      DetachToOwned();
      const double* src = other.doubles_data();
      size_t base = doubles_.size();
      doubles_.resize(base + sel.size());
      for (size_t i = 0; i < sel.size(); ++i) doubles_[base + i] = src[sel[i]];
      break;
    }
    case TypeId::kString: {
      if (MatchDictFor(other)) {
        // Dictionary gather moves 4-byte codes, not std::strings.
        const uint32_t* src = other.codes_data();
        size_t base = codes_.size();
        codes_.resize(base + sel.size());
        for (size_t i = 0; i < sel.size(); ++i) codes_[base + i] = src[sel[i]];
      } else {
        EnsureOwnedPlain();
        size_t base = strings_.size();
        strings_.resize(base + sel.size());
        for (size_t i = 0; i < sel.size(); ++i) {
          strings_[base + i] = other.StringAt(sel[i]);
        }
      }
      break;
    }
  }
}

void ColumnVector::AppendFiltered(const ColumnVector& other,
                                  const KeepBitmap& keep) {
  assert(keep.size() <= other.size());
  // Word-at-a-time selection build + branchless gather beats a
  // per-element conditional copy on unpredictable bitmaps (one
  // miss-prone pass total, not one per column when called batch-wide).
  AppendGather(other, SelVector::FromKeep(keep));
}

void ColumnVector::AppendFiltered(const ColumnVector& other,
                                  const uint8_t* keep, size_t n) {
  assert(n <= other.size());
  AppendGather(other, SelVector::FromKeep(keep, n));
}

void ColumnVector::HashColumn(uint64_t* out) const {
  size_t n = size();
  switch (type_) {
    case TypeId::kInt64: {
      const int64_t* d = ints_data();
      for (size_t i = 0; i < n; ++i) {
        out[i] = CombineHash(out[i], Mix64(static_cast<uint64_t>(d[i])));
      }
      break;
    }
    case TypeId::kDouble: {
      const double* src = doubles_data();
      for (size_t i = 0; i < n; ++i) {
        // Normalize -0.0 so values that compare equal hash equal.
        double d = src[i] == 0.0 ? 0.0 : src[i];
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        __builtin_memcpy(&bits, &d, sizeof(bits));
        out[i] = CombineHash(out[i], Mix64(bits));
      }
      break;
    }
    case TypeId::kString: {
      if (is_dict()) {
        // Group-by/join hashing of dict columns is an array lookup: the
        // chunk decode precomputed HashBytes for every dictionary entry.
        const uint32_t* c = codes_data();
        const uint64_t* h = dict()->hashes.data();
        for (size_t i = 0; i < n; ++i) {
          out[i] = CombineHash(out[i], h[c[i]]);
        }
      } else {
        const std::string* s = strings_data();
        for (size_t i = 0; i < n; ++i) {
          out[i] = CombineHash(out[i], HashBytes(s[i].data(), s[i].size()));
        }
      }
      break;
    }
  }
}

Value ColumnVector::GetValue(size_t i) const {
  switch (type_) {
    case TypeId::kInt64:
      return Value(ints_data()[i]);
    case TypeId::kDouble:
      return Value(doubles_data()[i]);
    case TypeId::kString:
      return Value(StringAt(i));
  }
  return Value();
}

void ColumnVector::SetValue(size_t i, const Value& v) {
  assert(v.type() == type_);
  EnsureOwnedPlain();
  switch (type_) {
    case TypeId::kInt64:
      ints_[i] = v.AsInt64();
      break;
    case TypeId::kDouble:
      doubles_[i] = v.AsDouble();
      break;
    case TypeId::kString:
      strings_[i] = v.AsString();
      break;
  }
}

void ColumnVector::SetFrom(size_t i, const ColumnVector& other, size_t j) {
  assert(other.type() == type_);
  switch (type_) {
    case TypeId::kInt64:
      DetachToOwned();
      ints_[i] = other.ints_data()[j];
      break;
    case TypeId::kDouble:
      DetachToOwned();
      doubles_[i] = other.doubles_data()[j];
      break;
    case TypeId::kString:
      if (is_dict() && other.is_dict() && dict() == other.dict()) {
        DetachToOwned();  // keeps codes + shared dict
        codes_[i] = other.CodeAt(j);
      } else {
        EnsureOwnedPlain();
        strings_[i] = other.StringAt(j);
      }
      break;
  }
}

int ColumnVector::CompareAt(size_t i, const ColumnVector& other,
                            size_t j) const {
  assert(other.type() == type_);
  switch (type_) {
    case TypeId::kInt64: {
      int64_t a = ints_data()[i], b = other.ints_data()[j];
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case TypeId::kDouble: {
      double a = doubles_data()[i], b = other.doubles_data()[j];
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case TypeId::kString: {
      // Equal codes under a shared dictionary are equal strings; unequal
      // codes still need a lexical compare (appearance order != sort
      // order).
      if (is_dict() && other.is_dict() && dict() == other.dict() &&
          CodeAt(i) == other.CodeAt(j)) {
        return 0;
      }
      int c = StringAt(i).compare(other.StringAt(j));
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
  return 0;
}

size_t ColumnVector::ByteSize() const {
  size_t n = size();
  switch (type_) {
    case TypeId::kInt64:
    case TypeId::kDouble:
      return n * 8;
    case TypeId::kString: {
      if (is_dict()) {
        const StringDict& d = *dict();
        size_t total = n * sizeof(uint32_t) + d.hashes.size() * 8 +
                       d.values.size() * sizeof(std::string);
        for (const auto& s : d.values) total += s.capacity();
        return total;
      }
      const std::string* s = strings_data();
      size_t total = n * sizeof(std::string);
      for (size_t i = 0; i < n; ++i) total += s[i].capacity();
      return total;
    }
  }
  return 0;
}

}  // namespace pdtstore

// Foundation tests: Value semantics, Schema construction/validation,
// ColumnVector operations and Batch assembly.
#include <gtest/gtest.h>

#include "columnstore/batch.h"
#include "columnstore/schema.h"
#include "columnstore/value.h"

namespace pdtstore {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value(5).type(), TypeId::kInt64);
  EXPECT_EQ(Value(5.0).type(), TypeId::kDouble);
  EXPECT_EQ(Value("x").type(), TypeId::kString);
  EXPECT_EQ(Value(int64_t{5}).AsInt64(), 5);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("abc").AsString(), "abc");
}

TEST(ValueTest, Comparison) {
  EXPECT_LT(Value(1), Value(2));
  EXPECT_EQ(Value(2), Value(2));
  EXPECT_LT(Value("a"), Value("b"));
  EXPECT_LT(Value(1.0), Value(1.5));
  EXPECT_EQ(Value(-3).Compare(Value(7)), -1);
  EXPECT_EQ(Value(7).Compare(Value(-3)), 1);
}

TEST(ValueTest, ToStringQuotesStrings) {
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value("hi").ToString(), "'hi'");
  EXPECT_EQ(TupleToString({Value(1), Value("a")}), "(1, 'a')");
}

TEST(ValueTest, CompareTuplesLexicographic) {
  EXPECT_EQ(CompareTuples({Value(1), Value(2)}, {Value(1), Value(2)}), 0);
  EXPECT_LT(CompareTuples({Value(1), Value(1)}, {Value(1), Value(2)}), 0);
  EXPECT_GT(CompareTuples({Value(2)}, {Value(1), Value(9)}), 0);
  // Prefix is smaller.
  EXPECT_LT(CompareTuples({Value(1)}, {Value(1), Value(0)}), 0);
}

TEST(SchemaTest, MakeValidations) {
  EXPECT_FALSE(Schema::Make({}, {0}).ok());  // no columns
  EXPECT_FALSE(
      Schema::Make({{"a", TypeId::kInt64}}, {}).ok());  // no sort key
  EXPECT_FALSE(Schema::Make({{"a", TypeId::kInt64}}, {1}).ok());  // range
  EXPECT_FALSE(Schema::Make({{"a", TypeId::kInt64},
                             {"a", TypeId::kString}},
                            {0})
                   .ok());  // dup name
  EXPECT_FALSE(Schema::Make({{"a", TypeId::kInt64}}, {0, 0}).ok());  // dup sk
  auto ok = Schema::Make(
      {{"a", TypeId::kInt64}, {"b", TypeId::kString}}, {1, 0});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->num_columns(), 2u);
  EXPECT_TRUE(ok->IsSortKeyColumn(0));
  EXPECT_TRUE(ok->IsSortKeyColumn(1));
}

TEST(SchemaTest, TupleValidation) {
  auto s = Schema::Make(
      {{"a", TypeId::kInt64}, {"b", TypeId::kString}}, {0});
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->ValidateTuple({Value(1), Value("x")}).ok());
  EXPECT_FALSE(s->ValidateTuple({Value(1)}).ok());                // arity
  EXPECT_FALSE(s->ValidateTuple({Value("x"), Value("y")}).ok());  // type
}

TEST(SchemaTest, SortKeyExtractionAndComparison) {
  auto s = Schema::Make({{"a", TypeId::kInt64},
                         {"b", TypeId::kString},
                         {"c", TypeId::kInt64}},
                        {2, 0});
  ASSERT_TRUE(s.ok());
  Tuple t1 = {Value(1), Value("x"), Value(5)};
  Tuple t2 = {Value(9), Value("y"), Value(5)};
  auto key = s->ExtractSortKey(t1);
  ASSERT_EQ(key.size(), 2u);
  EXPECT_EQ(key[0], Value(5));
  EXPECT_EQ(key[1], Value(1));
  EXPECT_LT(s->CompareSortKey(t1, t2), 0);  // same c, a 1<9
  EXPECT_EQ(s->CompareTupleToKey(t1, {Value(5)}), 0);  // prefix match
  EXPECT_LT(s->CompareTupleToKey(t1, {Value(6)}), 0);
}

TEST(SchemaTest, ColumnIndexLookup) {
  auto s = Schema::Make(
      {{"a", TypeId::kInt64}, {"b", TypeId::kString}}, {0});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s->ColumnIndex("b"), 1u);
  EXPECT_EQ(s->ColumnIndex("zzz").status().code(), StatusCode::kNotFound);
}

TEST(ColumnVectorTest, AppendGetSetAllTypes) {
  for (TypeId type :
       {TypeId::kInt64, TypeId::kDouble, TypeId::kString}) {
    ColumnVector col(type);
    Value a = type == TypeId::kInt64
                  ? Value(1)
                  : (type == TypeId::kDouble ? Value(1.5) : Value("a"));
    Value b = type == TypeId::kInt64
                  ? Value(2)
                  : (type == TypeId::kDouble ? Value(2.5) : Value("b"));
    col.Append(a);
    col.Append(b);
    EXPECT_EQ(col.size(), 2u);
    EXPECT_EQ(col.GetValue(0), a);
    col.SetValue(0, b);
    EXPECT_EQ(col.GetValue(0), b);
    EXPECT_EQ(col.CompareAt(0, col, 1), 0);
    ColumnVector other(type);
    other.AppendFrom(col, 1);
    other.AppendRange(col, 0, 2);
    EXPECT_EQ(other.size(), 3u);
    EXPECT_GT(col.ByteSize(), 0u);
  }
}

TEST(ColumnVectorTest, AppendRun) {
  ColumnVector col(TypeId::kInt64);
  col.AppendRun(Value(7), 5);
  EXPECT_EQ(col.size(), 5u);
  EXPECT_EQ(col.GetValue(4), Value(7));
}

TEST(BatchTest, ForSchemaAndRowAccess) {
  auto s = Schema::Make(
      {{"a", TypeId::kInt64}, {"b", TypeId::kString}}, {0});
  ASSERT_TRUE(s.ok());
  Batch full = Batch::ForSchema(*s);
  EXPECT_EQ(full.num_columns(), 2u);
  EXPECT_EQ(full.column_ids(), (std::vector<ColumnId>{0, 1}));
  Batch proj = Batch::ForSchema(*s, {1});
  EXPECT_EQ(proj.num_columns(), 1u);
  EXPECT_EQ(proj.IndexOfColumn(1), 0);
  EXPECT_EQ(proj.IndexOfColumn(0), -1);

  full.column(0).Append(Value(1));
  full.column(1).Append(Value("x"));
  EXPECT_EQ(full.num_rows(), 1u);
  EXPECT_EQ(full.RowAsTuple(0), (Tuple{Value(1), Value("x")}));
  Batch copy = Batch::ForSchema(*s);
  copy.AppendRow(full, 0);
  EXPECT_EQ(copy.num_rows(), 1u);
  copy.Clear();
  EXPECT_EQ(copy.num_rows(), 0u);
}

}  // namespace
}  // namespace pdtstore

// TPC-H refresh streams (RF1/RF2): each stream inserts new orders (with
// their lineitems, using orderkeys from the holes in the key space) and
// deletes existing orders — each touching roughly 0.1% of orders and
// lineitem, scattered across the clustered tables, exactly the update
// load of the paper's Fig. 19 experiments.
#ifndef PDTSTORE_TPCH_UPDATE_STREAM_H_
#define PDTSTORE_TPCH_UPDATE_STREAM_H_

#include <vector>

#include "tpch/tpch_gen.h"
#include "txn/txn_manager.h"

namespace pdtstore {
namespace tpch {

/// One refresh stream: inserts and deletes (deletes carry the regenerated
/// order so both tables' sort keys can be addressed).
struct UpdateStream {
  std::vector<GeneratedOrder> inserts;
  std::vector<GeneratedOrder> deletes;
};

/// Builds `num_streams` refresh streams, each covering `fraction` of the
/// order count (TPC-H uses 2 streams x 0.1%). Insert keys come from the
/// generator's holes; delete keys sample existing orders. Streams are
/// disjoint.
StatusOr<std::vector<UpdateStream>> MakeUpdateStreams(
    const GenOptions& gen, int num_streams, double fraction);

/// Applies one stream to the tables (inserts into orders+lineitem, then
/// deletes). Works with either delta backend through the Table facade.
Status ApplyUpdateStream(const UpdateStream& stream, TpchTables* tables);

/// Applies one stream through the transactional write path, grouping
/// `orders_per_txn` refresh orders per commit on each table's manager.
/// Several streams on distinct threads then exercise the lock-free delta
/// publication + batched fold path concurrently (the paper's Fig. 19
/// update load as an HTAP writer). Atomicity is per table: the orders
/// and lineitem updates of a group commit as two transactions (the
/// cross-table refresh is MultiTxnManager's job; see ROADMAP).
Status ApplyUpdateStreamTxn(const UpdateStream& stream, TxnManager* orders,
                            TxnManager* lineitem, size_t orders_per_txn = 8);

}  // namespace tpch
}  // namespace pdtstore

#endif  // PDTSTORE_TPCH_UPDATE_STREAM_H_

#include "txn/multi_txn.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "txn/layered.h"
#include "util/thread_pool.h"

namespace pdtstore {

namespace internal {

// A sealed multi-table transaction on the lock-free commit chain. The
// owner thread fills every field before the release-CAS in
// PublishRecord; afterwards all fields except `next` are touched only
// under the manager lock (the fold leader that claims the chain, or the
// owner's abort-unlink).
struct MultiDeltaRecord {
  enum State { kPublished, kCommitted, kAborted };

  uint64_t txn_id = 0;
  uint64_t start_time = 0;
  // The sealed Trans-PDTs, keyed by table name. The verdict covers all
  // of them together: a conflict on any table aborts every table.
  std::map<std::string, std::unique_ptr<Pdt>> trans;

  // Chain mode pre-encodes the WAL frames (begin, ops, commit) outside
  // every lock; the fold appends the finished bytes in one batch. The
  // serial_commit baseline keeps the logical records instead and
  // encodes them under the lock.
  std::vector<std::string> payloads;
  std::vector<WalRecord> redo;
  bool preencoded = false;

  std::atomic<MultiDeltaRecord*> next{nullptr};
  bool enqueued = false;  ///< still linked into the chain

  State state = kPublished;
  Status result = Status::OK();
  uint64_t durable_upto = 0;  ///< WAL offset the owner must sync to
};

}  // namespace internal

using internal::MultiDeltaRecord;

namespace {

// Returned by Scan() on a published (sealed) transaction: the Trans-PDT
// has moved into the delta record (where a concurrent fold may be
// serializing it), so reads fail loudly at Next() instead of handing
// back a null source.
class SealedMultiTxnSource : public BatchSource {
 public:
  StatusOr<bool> Next(Batch*, size_t) override {
    return Status::InvalidArgument(
        "transaction is published: no reads until the commit verdict");
  }
};

}  // namespace

// State for one incremental background Write→Read merge of one table.
// Shared between the successive worker-pool tasks that advance it.
struct MultiTxnManager::MergeJob {
  TableState* st = nullptr;                // owned by state_ (stable map)
  std::shared_ptr<const Pdt> source_read;  ///< pinned pre-merge Read-PDT
  std::shared_ptr<const Pdt> pending;      ///< the claimed Write-PDT
  std::unique_ptr<Pdt> merged;             ///< private clone being built
  Pdt::Cursor cursor;                      ///< next unapplied entry
};

// ---------------------------------------------------------------------
// MultiTransaction.
// ---------------------------------------------------------------------

MultiTransaction::MultiTransaction(MultiTxnManager* mgr, uint64_t id,
                                   uint64_t start_time)
    : mgr_(mgr), id_(id), start_time_(start_time) {}

MultiTransaction::~MultiTransaction() {
  if (!finished_) Abort();
}

MultiTransaction::TableView MultiTxnManager::MakeViewLocked(
    TableState* st) {
  // Caller holds mu_. Share the Write-PDT copy when no commit happened
  // since it was taken ("copying is not always required", Sec. 3.3).
  if (!st->write_snapshot || st->write_snapshot_time != clock_) {
    st->write_snapshot =
        std::shared_ptr<const Pdt>(st->write->Clone().release());
    st->write_snapshot_time = clock_;
  }
  MultiTransaction::TableView view;
  view.table = st->table;
  // Pin the Read-PDT (and, when a background merge is folding a claimed
  // Write-PDT, that immutable pending layer): the merge installs a
  // replacement via ReplacePdt while this snapshot lives, and the
  // shared_ptrs keep the pre-merge layers — which this snapshot's RIDs
  // are defined over — alive.
  view.read = st->table->SharedPdt();
  view.pending = st->merge_pending;
  view.write = st->write_snapshot;
  view.trans = std::make_unique<Pdt>(st->table->shared_schema(),
                                     st->table->options().pdt);
  return view;
}

StatusOr<MultiTransaction::TableView*> MultiTransaction::View(
    const std::string& table) const {
  // All views were materialized together at Begin() — the snapshot is
  // one instant across every managed table.
  auto it = views_.find(table);
  if (it != views_.end()) return &it->second;
  return Status::NotFound("table not managed: " + table);
}

StatusOr<Rid> MultiTransaction::UpperBoundRid(
    const TableView& v, const std::vector<Value>& key) const {
  Rid lo = 0;
  Rid hi = internal::LayeredRowCount(v.table->store().num_rows(), Layers(v));
  while (lo < hi) {
    Rid mid = lo + (hi - lo) / 2;
    PDT_ASSIGN_OR_RETURN(
        auto mid_key,
        internal::LayeredSortKey(v.table->store(), Layers(v), mid));
    int cmp = 0;
    for (size_t i = 0; i < mid_key.size() && i < key.size(); ++i) {
      cmp = mid_key[i].Compare(key[i]);
      if (cmp != 0) break;
    }
    if (cmp <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

StatusOr<Rid> MultiTransaction::FindRidByKey(
    const TableView& v, const std::vector<Value>& key) const {
  PDT_ASSIGN_OR_RETURN(Rid ub, UpperBoundRid(v, key));
  if (ub == 0) return Status::NotFound("key not found");
  PDT_ASSIGN_OR_RETURN(
      auto prev_key,
      internal::LayeredSortKey(v.table->store(), Layers(v), ub - 1));
  if (CompareTuples(prev_key, key) != 0) {
    return Status::NotFound("key not found");
  }
  return ub - 1;
}

Status MultiTransaction::Insert(const std::string& table,
                                const Tuple& tuple) {
  if (finished_ || rec_ != nullptr) {
    return Status::InvalidArgument("transaction finished or published");
  }
  PDT_ASSIGN_OR_RETURN(TableView * v, View(table));
  const Schema& schema = v->table->schema();
  PDT_RETURN_NOT_OK(schema.ValidateTuple(tuple));
  std::vector<Value> key = schema.ExtractSortKey(tuple);
  auto existing = FindRidByKey(*v, key);
  if (existing.ok()) return Status::AlreadyExists("duplicate sort key");
  if (existing.status().code() != StatusCode::kNotFound) {
    return existing.status();
  }
  PDT_ASSIGN_OR_RETURN(Rid rid, UpperBoundRid(*v, key));
  Sid sid = v->trans->SKRidToSid(key, rid);
  PDT_RETURN_NOT_OK(v->trans->AddInsert(sid, rid, tuple));
  WalRecord r;
  r.type = WalRecordType::kInsert;
  r.table = table;
  r.tuple = tuple;
  redo_.push_back(std::move(r));
  return Status::OK();
}

Status MultiTransaction::DeleteByKey(const std::string& table,
                                     const std::vector<Value>& key) {
  if (finished_ || rec_ != nullptr) {
    return Status::InvalidArgument("transaction finished or published");
  }
  PDT_ASSIGN_OR_RETURN(TableView * v, View(table));
  PDT_ASSIGN_OR_RETURN(Rid rid, FindRidByKey(*v, key));
  PDT_RETURN_NOT_OK(v->trans->AddDelete(rid, key));
  WalRecord r;
  r.type = WalRecordType::kDelete;
  r.table = table;
  r.key = key;
  redo_.push_back(std::move(r));
  return Status::OK();
}

Status MultiTransaction::ModifyByKey(const std::string& table,
                                     const std::vector<Value>& key,
                                     ColumnId col, const Value& value) {
  if (finished_ || rec_ != nullptr) {
    return Status::InvalidArgument("transaction finished or published");
  }
  PDT_ASSIGN_OR_RETURN(TableView * v, View(table));
  const Schema& schema = v->table->schema();
  if (schema.IsSortKeyColumn(col)) {
    PDT_ASSIGN_OR_RETURN(Rid rid, FindRidByKey(*v, key));
    PDT_ASSIGN_OR_RETURN(
        Tuple t, internal::LayeredTuple(v->table->store(), Layers(*v), rid));
    PDT_RETURN_NOT_OK(DeleteByKey(table, key));
    t[col] = value;
    return Insert(table, t);
  }
  PDT_ASSIGN_OR_RETURN(Rid rid, FindRidByKey(*v, key));
  PDT_RETURN_NOT_OK(v->trans->AddModify(rid, col, value));
  WalRecord r;
  r.type = WalRecordType::kModify;
  r.table = table;
  r.key = key;
  r.column = col;
  r.value = value;
  redo_.push_back(std::move(r));
  return Status::OK();
}

StatusOr<Tuple> MultiTransaction::GetByKey(
    const std::string& table, const std::vector<Value>& key) const {
  if (finished_ || rec_ != nullptr) {
    return Status::InvalidArgument("transaction finished or published");
  }
  PDT_ASSIGN_OR_RETURN(TableView * v, View(table));
  PDT_ASSIGN_OR_RETURN(Rid rid, FindRidByKey(*v, key));
  return internal::LayeredTuple(v->table->store(), Layers(*v), rid);
}

std::unique_ptr<BatchSource> MultiTransaction::Scan(
    const std::string& table, std::vector<ColumnId> projection,
    const KeyBounds* bounds, const ScanOptions& scan_opts) const {
  if (finished_ || rec_ != nullptr) {  // sealed by Publish()
    return std::make_unique<SealedMultiTxnSource>();
  }
  auto view = View(table);
  if (!view.ok()) return nullptr;
  TableView* v = *view;
  std::vector<SidRange> ranges;
  if (bounds != nullptr) {
    ranges = v->table->sparse_index().LookupRange(bounds->lo, bounds->hi);
  }
  return internal::LayeredScan(v->table->store(), Layers(*v),
                               std::move(projection), std::move(ranges),
                               scan_opts);
}

StatusOr<uint64_t> MultiTransaction::RowCount(
    const std::string& table) const {
  if (finished_ || rec_ != nullptr) {
    // Sealed by Publish(): report the count as of sealing for tables
    // the transaction touched (their Trans-PDTs are off-limits — a
    // fold may be serializing them).
    auto it = sealed_counts_.find(table);
    if (it == sealed_counts_.end()) {
      return Status::InvalidArgument("transaction finished or published");
    }
    return it->second;
  }
  PDT_ASSIGN_OR_RETURN(TableView * v, View(table));
  return internal::LayeredRowCount(v->table->store().num_rows(), Layers(*v));
}

Status MultiTransaction::Publish() {
  if (finished_) return Status::InvalidArgument("transaction finished");
  if (rec_ != nullptr) return Status::InvalidArgument("already published");
  rec_ = std::make_unique<MultiDeltaRecord>();
  rec_->txn_id = id_;
  rec_->start_time = start_time_;
  // Seal: record per-table row counts, then move every touched table's
  // Trans-PDT into the record (a fold may serialize them concurrently).
  for (auto& [name, v] : views_) {
    sealed_counts_[name] = internal::LayeredRowCount(
        v.table->store().num_rows(), Layers(v));
    rec_->trans.emplace(name, std::move(v.trans));
  }
  if (!mgr_->opts_.serial_commit && mgr_->wal_ != nullptr) {
    // Encode the commit's WAL frames here, outside every lock; the fold
    // leader appends the finished bytes in one batch under the lock.
    rec_->payloads.reserve(redo_.size() + 2);
    WalRecord b;
    b.type = WalRecordType::kBegin;
    b.txn_id = id_;
    rec_->payloads.push_back(Wal::EncodeRecordPayload(b));
    for (WalRecord& r : redo_) {
      r.txn_id = id_;
      rec_->payloads.push_back(Wal::EncodeRecordPayload(r));
    }
    WalRecord c;
    c.type = WalRecordType::kCommit;
    c.txn_id = id_;
    rec_->payloads.push_back(Wal::EncodeRecordPayload(c));
    rec_->preencoded = true;
    redo_.clear();
  } else {
    rec_->redo = std::move(redo_);
  }
  // The serial_commit baseline skips the chain: the committer folds its
  // own record under the lock in AwaitCommit, like the legacy path.
  if (!mgr_->opts_.serial_commit) mgr_->PublishRecord(rec_.get());
  return Status::OK();
}

Status MultiTransaction::AwaitCommit() {
  if (finished_) return Status::InvalidArgument("transaction finished");
  if (rec_ == nullptr) {
    return Status::InvalidArgument("transaction not published");
  }
  uint64_t durable_upto = 0;
  Status st = mgr_->AwaitVerdict(rec_.get(), &durable_upto);
  finished_ = true;
  if (!st.ok()) return st;
  // Group commit: wait for the WAL to reach disk outside the commit
  // lock, so concurrent committers pile into one fsync.
  if (durable_upto > 0) return mgr_->SyncWal(durable_upto);
  return Status::OK();
}

Status MultiTransaction::Commit() {
  PDT_RETURN_NOT_OK(Publish());
  return AwaitCommit();
}

void MultiTransaction::Abort() {
  if (finished_) return;
  if (rec_ != nullptr) {
    mgr_->AbortPublished(this);
    return;
  }
  std::lock_guard<std::mutex> lock(mgr_->mu_);
  mgr_->FinishLocked(this);
  mgr_->aborted_count_.fetch_add(1, std::memory_order_relaxed);
  if (mgr_->wal_ != nullptr) mgr_->wal_->LogAbort(id_);
}

// ---------------------------------------------------------------------
// MultiTxnManager.
// ---------------------------------------------------------------------

MultiTxnManager::MultiTxnManager(std::vector<Table*> tables, Wal* wal,
                                 TxnManagerOptions opts)
    : opts_(opts), wal_(wal) {
  for (Table* t : tables) {
    assert(t->pdt() != nullptr && "multi-table txns require PDT tables");
    // A table is driven by exactly one manager: this one claims the
    // driver slot, so every layer swap (background merge installs,
    // quiet-point folds, checkpoints) happens under this manager's mu_.
    bool claimed = t->AcquireTxnDriver();
    assert(claimed &&
           "table is already driven by another transaction manager");
    if (claimed) claimed_.push_back(t);
    TableState st;
    st.table = t;
    st.write = std::make_unique<Pdt>(t->shared_schema(), t->options().pdt);
    state_.emplace(t->name(), std::move(st));
  }
}

MultiTxnManager::~MultiTxnManager() {
  {
    // Background merge tasks capture `this`; wait them out.
    std::unique_lock<std::mutex> lock(mu_);
    merge_cv_.wait(lock, [this] { return merges_inflight_ == 0; });
  }
  for (Table* t : claimed_) t->ReleaseTxnDriver();
}

std::unique_ptr<MultiTransaction> MultiTxnManager::Begin() {
  std::lock_guard<std::mutex> lock(mu_);
  ++active_;
  uint64_t id = opts_.txn_id_counter != nullptr
                    ? opts_.txn_id_counter->fetch_add(1) + 1
                    : next_txn_id_++;
  auto txn = std::unique_ptr<MultiTransaction>(
      new MultiTransaction(this, id, clock_));
  // Snapshot every managed table NOW, at the same clock the conflict
  // check will serialize against. Lazy per-table snapshots would let
  // one transaction observe the tables at different commit horizons —
  // a reader could see a child-table row whose parent-table row isn't
  // visible yet — and would double-translate commits that landed
  // between Begin and the first touch.
  for (auto& [name, st] : state_) {
    txn->views_.emplace(name, MakeViewLocked(&st));
  }
  return txn;
}

void MultiTxnManager::SetWalWriter(WalWriter* writer) {
  std::lock_guard<std::mutex> lock(mu_);
  writer_ = writer;
  if (wal_ != nullptr) wal_->SetWriter(writer);
}

Status MultiTxnManager::wal_status() const {
  return wal_ != nullptr ? wal_->health() : Status::OK();
}

Status MultiTxnManager::SyncWal(uint64_t upto) {
  return wal_->SyncTo(upto);
}

void MultiTxnManager::FinishActiveLocked(uint64_t start_time) {
  for (auto& z : tz_) {
    if (start_time < z.commit_time) --z.refcnt;
  }
  tz_.erase(std::remove_if(
                tz_.begin(), tz_.end(),
                [](const CommittedTxn& z) { return z.refcnt <= 0; }),
            tz_.end());
  --active_;
}

void MultiTxnManager::FinishLocked(MultiTransaction* txn) {
  FinishActiveLocked(txn->start_time_);
  txn->finished_ = true;
}

void MultiTxnManager::PublishRecord(MultiDeltaRecord* rec) {
  rec->enqueued = true;
  MultiDeltaRecord* cur = delta_head_.load(std::memory_order_relaxed);
  do {
    rec->next.store(cur, std::memory_order_relaxed);
  } while (!delta_head_.compare_exchange_weak(cur, rec,
                                              std::memory_order_release,
                                              std::memory_order_relaxed));
  pending_deltas_.fetch_add(1, std::memory_order_relaxed);
}

Status MultiTxnManager::AwaitVerdict(MultiDeltaRecord* rec,
                                     uint64_t* durable_upto) {
  std::unique_lock<std::mutex> lock(mu_);
  if (rec->state == MultiDeltaRecord::kPublished) {
    // Undecided under the lock means the record is still on the chain
    // (folds run entirely under mu_): this committer is the fold leader
    // and decides the whole published batch.
    const auto t0 = std::chrono::steady_clock::now();
    if (opts_.serial_commit) {
      CommitRecordLocked(rec);
    } else {
      FoldChainLocked();
    }
    commit_lock_ns_ += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }
  *durable_upto = rec->durable_upto;
  return rec->result;
}

void MultiTxnManager::FoldChainLocked() {
  MultiDeltaRecord* head =
      delta_head_.exchange(nullptr, std::memory_order_acquire);
  if (head == nullptr) return;
  // The chain is newest-first; reverse it so records fold in
  // publication order (their WAL frames then appear in verdict order).
  MultiDeltaRecord* chain = nullptr;
  while (head != nullptr) {
    MultiDeltaRecord* next = head->next.load(std::memory_order_relaxed);
    head->next.store(chain, std::memory_order_relaxed);
    chain = head;
    head = next;
  }
  ++fold_batches_;
  while (chain != nullptr) {
    MultiDeltaRecord* next = chain->next.load(std::memory_order_relaxed);
    chain->enqueued = false;
    CommitRecordLocked(chain);
    ++folded_records_;
    pending_deltas_.fetch_sub(1, std::memory_order_relaxed);
    chain = next;
  }
}

void MultiTxnManager::CommitRecordLocked(MultiDeltaRecord* rec) {
  rec->durable_upto = 0;
  if (writer_ != nullptr) {
    // A manager whose WAL sink failed can no longer promise durability:
    // refuse the commit up front.
    Status health = wal_->health();
    if (!health.ok()) {
      FinishActiveLocked(rec->start_time);
      aborted_count_.fetch_add(1, std::memory_order_relaxed);
      rec->result = health;
      rec->state = MultiDeltaRecord::kAborted;
      return;
    }
  }
  // Serialize against every overlapping committed transaction, in
  // commit order (Alg. 9 lines 2-9), per overlapping table. A conflict
  // on any table aborts the whole record — the all-or-nothing verdict.
  Status conflict = Status::OK();
  for (auto& z : tz_) {
    if (rec->start_time >= z.commit_time) continue;  // not overlapping
    if (!conflict.ok()) continue;
    for (auto& [name, trans] : rec->trans) {
      auto zit = z.pdts.find(name);
      if (zit == z.pdts.end()) continue;
      Status st = trans->SerializeAgainst(*zit->second);
      if (!st.ok()) {
        if (st.code() != StatusCode::kConflict) {
          // Internal failure, not a write-write conflict: surface as-is.
          FinishActiveLocked(rec->start_time);
          rec->result = st;
          rec->state = MultiDeltaRecord::kAborted;
          return;
        }
        conflict = st;
        break;
      }
    }
  }
  if (!conflict.ok()) {
    FinishActiveLocked(rec->start_time);
    aborted_count_.fetch_add(1, std::memory_order_relaxed);
    if (wal_ != nullptr) wal_->LogAbort(rec->txn_id);
    rec->result = conflict;
    rec->state = MultiDeltaRecord::kAborted;
    return;
  }
  // Durability first: the WAL append is the commit point. One begin /
  // ops / commit frame sequence covers every table of the group, so
  // replay reapplies it atomically too.
  if (wal_ != nullptr) {
    if (rec->preencoded) {
      wal_->AppendEncoded(rec->payloads);
      rec->payloads.clear();
    } else {
      wal_->LogBegin(rec->txn_id);
      for (WalRecord& r : rec->redo) {
        r.txn_id = rec->txn_id;
        wal_->Append(r);
      }
      wal_->LogCommit(rec->txn_id);
    }
    if (writer_ != nullptr) {
      if (opts_.group_commit) {
        // Publish the frames now; the owner waits for durability up to
        // this offset outside the commit lock (SyncWal).
        rec->durable_upto = wal_->SizeBytes();
      } else {
        Status st = wal_->SyncTo(wal_->SizeBytes());
        if (!st.ok()) {
          // Not durable: fail the commit without applying it in memory.
          FinishActiveLocked(rec->start_time);
          aborted_count_.fetch_add(1, std::memory_order_relaxed);
          rec->result = st;
          rec->state = MultiDeltaRecord::kAborted;
          return;
        }
      }
    }
  }
  // Atomic visibility: fold every touched table's Trans-PDT into that
  // table's master Write-PDT under this one lock (Alg. 9 line 12).
  for (auto& [name, trans] : rec->trans) {
    if (trans->Empty()) continue;
    Status st = state_.at(name).write->Propagate(*trans);
    if (!st.ok()) {
      // Invariant failure; state may be inconsistent.
      FinishActiveLocked(rec->start_time);
      rec->result = st;
      rec->state = MultiDeltaRecord::kAborted;
      return;
    }
  }
  ++clock_;
  committed_count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t commit_time = clock_;
  // Release this transaction's own references first, so its freshly
  // committed Trans-PDTs are not self-decremented below.
  FinishActiveLocked(rec->start_time);
  // Keep the serialized Trans-PDTs alive for the transactions that are
  // still running (they overlap this commit) — including the later
  // members of this fold batch, which are still counted active.
  int refs = static_cast<int>(active_);
  if (refs > 0) {
    CommittedTxn entry;
    entry.commit_time = commit_time;
    entry.refcnt = refs;
    for (auto& [name, trans] : rec->trans) {
      if (trans == nullptr || trans->Empty()) continue;
      entry.pdts.emplace(name, std::shared_ptr<Pdt>(trans.release()));
    }
    if (!entry.pdts.empty()) tz_.push_back(std::move(entry));
  } else {
    rec->trans.clear();
  }
  // Write->Read propagation: inline clone+install at quiet points, in
  // the background on the worker pool while transactions are running.
  rec->result = MaybePropagateLocked();
  rec->state = MultiDeltaRecord::kCommitted;
}

bool MultiTxnManager::UnlinkLocked(MultiDeltaRecord* rec) {
  if (!rec->enqueued) return false;
  // Folds run under mu_ and we hold it, so the record is still on the
  // chain. Claim the chain, drop the record, splice the rest back in
  // their original relative order.
  MultiDeltaRecord* head =
      delta_head_.exchange(nullptr, std::memory_order_acquire);
  MultiDeltaRecord* keep_head = nullptr;
  MultiDeltaRecord* keep_tail = nullptr;
  while (head != nullptr) {
    MultiDeltaRecord* next = head->next.load(std::memory_order_relaxed);
    if (head == rec) {
      rec->enqueued = false;
    } else {
      head->next.store(nullptr, std::memory_order_relaxed);
      if (keep_tail == nullptr) {
        keep_head = head;
      } else {
        keep_tail->next.store(head, std::memory_order_relaxed);
      }
      keep_tail = head;
    }
    head = next;
  }
  assert(!rec->enqueued && "published record missing from the chain");
  if (keep_head != nullptr) {
    MultiDeltaRecord* cur = delta_head_.load(std::memory_order_relaxed);
    do {
      keep_tail->next.store(cur, std::memory_order_relaxed);
    } while (!delta_head_.compare_exchange_weak(cur, keep_head,
                                                std::memory_order_release,
                                                std::memory_order_relaxed));
  }
  return true;
}

void MultiTxnManager::AbortPublished(MultiTransaction* txn) {
  MultiDeltaRecord* rec = txn->rec_.get();
  std::lock_guard<std::mutex> lock(mu_);
  if (rec->state == MultiDeltaRecord::kPublished) {
    // No fold claimed it: withdraw the record and abort normally.
    if (UnlinkLocked(rec)) {
      pending_deltas_.fetch_sub(1, std::memory_order_relaxed);
    }
    FinishActiveLocked(rec->start_time);
    aborted_count_.fetch_add(1, std::memory_order_relaxed);
    if (wal_ != nullptr) wal_->LogAbort(rec->txn_id);
    rec->result = Status::InvalidArgument("transaction aborted");
    rec->state = MultiDeltaRecord::kAborted;
  }
  // Otherwise a fold already decided it; the verdict stands.
  txn->finished_ = true;
}

Status MultiTxnManager::FoldIntoReadLocked(TableState* st) {
  // Never mutate the live Read-PDT: driverless analytic readers (the
  // HTAP harness's query threads) may be scanning it right now. Fold
  // into a clone and install it; their pins keep the old layer alive.
  auto merged = st->table->SharedPdt()->Clone();
  if (st->merge_pending != nullptr) {
    // A layer parked by a failed background merge folds first — the
    // Write-PDT's SID domain is defined over Read ▷ pending.
    PDT_RETURN_NOT_OK(merged->Propagate(*st->merge_pending));
  }
  if (!st->write->Empty()) {
    PDT_RETURN_NOT_OK(merged->Propagate(*st->write));
  }
  st->table->ReplacePdt(std::shared_ptr<Pdt>(merged.release()));
  st->merge_pending.reset();
  st->merge_error = Status::OK();
  st->write->Clear();
  st->write_snapshot.reset();
  st->write_snapshot_time = 0;
  return Status::OK();
}

Status MultiTxnManager::MaybePropagateLocked() {
  for (auto& [name, st] : state_) {
    if (st.merge_inflight) continue;
    const bool oversized =
        st.write->EntryCount() > opts_.write_pdt_max_entries;
    if (!oversized && st.merge_pending == nullptr) continue;
    if (active_ == 0) {
      // Quiet point: fold synchronously (still install-based).
      PDT_RETURN_NOT_OK(FoldIntoReadLocked(&st));
    } else if (oversized && st.merge_pending == nullptr) {
      // Transactions are running: merge into a private clone on the
      // worker pool instead of blocking this commit on an O(Read-PDT)
      // fold.
      StartBackgroundMergeLocked(&st);
    }
  }
  return Status::OK();
}

void MultiTxnManager::StartBackgroundMergeLocked(TableState* st) {
  auto job = std::make_shared<MergeJob>();
  job->st = st;
  // The claimed Write-PDT becomes an immutable shared layer: commits
  // fold into a fresh Write-PDT (whose SID domain is Read ▷ pending),
  // and new snapshots stack [read, pending, write] until the merged
  // Read-PDT absorbs it.
  job->pending = std::shared_ptr<const Pdt>(st->write.release());
  st->merge_pending = job->pending;
  st->write = std::make_unique<Pdt>(st->table->shared_schema(),
                                    st->table->options().pdt);
  st->write_snapshot.reset();
  st->write_snapshot_time = 0;
  job->source_read = st->table->SharedPdt();
  st->merge_inflight = true;
  ++merges_inflight_;
  ThreadPool::Global().Submit([this, job] { MergeStep(job); });
}

void MultiTxnManager::MergeStep(std::shared_ptr<MergeJob> job) {
  if (!job->merged) {
    // First step: clone the pinned Read-PDT. The table's PDT cannot
    // change while this merge is in flight: every install path of this
    // manager excludes tables with merge_inflight set, and no other
    // manager can touch the table (exclusive driver claim).
    job->merged = job->source_read->Clone();
    job->cursor = job->pending->Begin();
  }
  bool done = false;
  Status st = job->merged->PropagateStep(*job->pending, &job->cursor,
                                         opts_.merge_chunk_entries, &done);
  std::unique_lock<std::mutex> lock(mu_);
  if (!st.ok()) {
    // Abandon the clone; the pending layer stays parked in the snapshot
    // stack and the next quiet point folds it inline.
    job->st->merge_error = st;
    last_merge_error_ = st;
    job->st->merge_inflight = false;
    --merges_inflight_;
    merge_cv_.notify_all();
    return;
  }
  if (!done) {
    // Yield the worker between chunks so foreground scan morsels and
    // pipeline tasks interleave with the merge.
    lock.unlock();
    ThreadPool::Global().Submit([this, job] { MergeStep(job); });
    return;
  }
  // Install the merged Read-PDT. Snapshots (and driverless scans) taken
  // before this instant keep the pre-merge layers alive through their
  // shared_ptrs; new ones see [merged, write] — the same image.
  job->st->table->ReplacePdt(std::shared_ptr<Pdt>(job->merged.release()));
  job->st->merge_pending.reset();
  ++job->st->background_merges;
  job->st->merge_inflight = false;
  --merges_inflight_;
  merge_cv_.notify_all();
}

MultiTxnStats MultiTxnManager::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  MultiTxnStats s;
  s.committed = committed_count_.load(std::memory_order_relaxed);
  s.aborted = aborted_count_.load(std::memory_order_relaxed);
  s.active = active_;
  s.pending_deltas = pending_deltas_.load(std::memory_order_relaxed);
  s.fold_batches = fold_batches_;
  s.folded_records = folded_records_;
  s.commit_lock_ns = commit_lock_ns_;
  s.last_merge_error = last_merge_error_;
  if (wal_ != nullptr) s.wal_records = wal_->RecordCount();
  if (writer_ != nullptr) s.wal_syncs = writer_->sync_count();
  for (const auto& [name, st] : state_) {
    MultiTxnTableStats t;
    t.table = name;
    t.read_pdt_entries = st.table->pdt()->EntryCount();
    t.write_pdt_entries = st.write->EntryCount();
    t.merge_pending_entries =
        st.merge_pending != nullptr ? st.merge_pending->EntryCount() : 0;
    t.merge_inflight = st.merge_inflight;
    t.background_merges = st.background_merges;
    s.tables.push_back(std::move(t));
  }
  return s;
}

Status MultiTxnManager::PropagateAndMaybeCheckpoint() {
  std::unique_lock<std::mutex> lock(mu_);
  // Drain in-flight background merges: they own clones mid-fold, and
  // the inline paths below replace the very layers they read.
  merge_cv_.wait(lock, [this] { return merges_inflight_ == 0; });
  if (active_ > 0) {
    // Published-but-unfolded commits still count as active, so a
    // pending delta chain also lands here.
    return Status::InvalidArgument(
        "cannot propagate/checkpoint with active transactions");
  }
  for (auto& [name, st] : state_) {
    if (st.merge_pending != nullptr || !st.write->Empty()) {
      PDT_RETURN_NOT_OK(FoldIntoReadLocked(&st));
    }
    // With a durable WAL attached, in-place checkpointing here would
    // rewrite the stable image without the manifest commit protocol —
    // replaying the (still durable) log over the new image would apply
    // every absorbed update twice. Durable checkpointing is
    // Database::Save's job; this fast path is for in-memory managers.
    // The shared log is NOT truncated: other tables' redo lives in it.
    if (writer_ == nullptr &&
        st.table->pdt()->EntryCount() > opts_.read_pdt_max_entries) {
      PDT_RETURN_NOT_OK(st.table->Checkpoint());
      if (wal_ != nullptr) wal_->LogCheckpoint(name);
    }
  }
  return Status::OK();
}

Status MultiTxnManager::Recover(const Wal& wal) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (&wal == wal_) {
      // Replaying a WAL through a manager that appends to that same WAL
      // would grow the log under the replay cursor.
      return Status::InvalidArgument(
          "cannot recover from the manager's own WAL");
    }
  }
  std::map<uint64_t, std::vector<WalRecord>> pending;
  return wal.Replay([&](const WalRecord& r) -> Status {
    switch (r.type) {
      case WalRecordType::kBegin:
        pending[r.txn_id] = {};
        break;
      case WalRecordType::kInsert:
      case WalRecordType::kDelete:
      case WalRecordType::kModify:
        pending[r.txn_id].push_back(r);
        break;
      case WalRecordType::kAbort:
        pending.erase(r.txn_id);
        break;
      case WalRecordType::kCommit: {
        auto it = pending.find(r.txn_id);
        if (it == pending.end()) break;
        auto txn = Begin();
        for (const WalRecord& op : it->second) {
          Status st;
          switch (op.type) {
            case WalRecordType::kInsert:
              st = txn->Insert(op.table, op.tuple);
              break;
            case WalRecordType::kDelete:
              st = txn->DeleteByKey(op.table, op.key);
              break;
            case WalRecordType::kModify:
              st = txn->ModifyByKey(op.table, op.key, op.column, op.value);
              break;
            default:
              break;
          }
          if (!st.ok()) return st;
        }
        PDT_RETURN_NOT_OK(txn->Commit());
        pending.erase(it);
        break;
      }
      case WalRecordType::kCheckpoint:
        break;
    }
    return Status::OK();
  });
}

}  // namespace pdtstore

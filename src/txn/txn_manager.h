// Three-layer PDT transaction management (Sec. 3.3, Fig. 14/15):
//
//   Trans-PDT  — private to a transaction, holds its uncommitted updates
//   Write-PDT  — small master PDT receiving committed updates; copied
//                (or shared, when no commit intervened) into each new
//                transaction's snapshot
//   Read-PDT   — large RAM-resident layer (here: the Table's PDT) that
//                Write-PDT contents are periodically propagated into
//
// Reads are lock-free: a query merges   stable ▷ Read ▷ Write-copy ▷ Trans
// entirely from snapshot-owned structures. Commits run Algorithm 9:
// serialize the Trans-PDT against every overlapping committed
// transaction's serialized Trans-PDT (conflict => abort), then propagate
// into the master Write-PDT; serialized PDTs are kept alive by reference
// counts while overlapping transactions still run.
//
// Concurrent write path (see DESIGN.md "Concurrent write path"): the
// build phase of a commit — positioning updates, building the Trans-PDT,
// encoding WAL payloads — runs entirely outside the manager lock. A
// committing transaction publishes a *delta record* onto a lock-free
// chain (atomic prepend); whichever committer takes the manager lock
// first folds the whole chain in publication order under one short
// critical section, then every member of the batch rides the WAL's
// group-commit fsync. Write→Read propagation under load runs as an
// incremental background task on the shared worker pool, with scans
// pinning the pre-merge Read-PDT via shared snapshots.
#ifndef PDTSTORE_TXN_TXN_MANAGER_H_
#define PDTSTORE_TXN_TXN_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "db/table.h"
#include "txn/wal.h"

namespace pdtstore {

class TxnManager;

namespace internal {
struct DeltaRecord;
}  // namespace internal

/// A snapshot-isolated transaction over one table. Not thread-safe
/// itself; distinct transactions may run on distinct threads.
class Transaction {
 public:
  ~Transaction();

  /// Transaction-local updates (buffered in the Trans-PDT).
  Status Insert(const Tuple& tuple);
  Status DeleteByKey(const std::vector<Value>& key);
  Status ModifyByKey(const std::vector<Value>& key, ColumnId col,
                     const Value& v);

  /// Snapshot reads, including own uncommitted updates. `scan_opts`
  /// enables the morsel-driven parallel scan over the snapshot's layer
  /// stack: the Read/Write snapshots are immutable, so workers share
  /// them lock-free. A parallel scan also reads the Trans-PDT from
  /// worker threads, so the transaction must not apply updates while one
  /// is being consumed (route updates through the Query-PDT, which the
  /// scan stack deliberately excludes, or drain the scan first).
  /// After Publish() the snapshot is sealed: the returned source (never
  /// null) fails with InvalidArgument on its first Next().
  std::unique_ptr<BatchSource> Scan(std::vector<ColumnId> projection,
                                    const KeyBounds* bounds = nullptr,
                                    const ScanOptions& scan_opts = {}) const;
  /// The same snapshot scan as a morsel plan, feeding the parallel
  /// pipelines (exec/pipeline.h) — operator fragments then run inside
  /// the scan workers over the immutable layer stack. The update
  /// caveats of Scan() apply (after Publish(), the plan's serial source
  /// fails with InvalidArgument).
  MorselPlan PlanMorsels(std::vector<ColumnId> projection,
                         const KeyBounds* bounds = nullptr,
                         const ScanOptions& scan_opts = {}) const;
  StatusOr<Tuple> GetByKey(const std::vector<Value>& key) const;
  /// Visible row count; after Publish() it reports the snapshot's count
  /// as of sealing.
  uint64_t RowCount() const;

  /// Algorithm 9; equivalent to Publish() + AwaitCommit(). On conflict
  /// returns Status::Conflict and the transaction is aborted. The
  /// transaction is finished either way.
  Status Commit();

  /// First half of a two-phase commit: seals the transaction's updates
  /// into a delta record and publishes it onto the manager's lock-free
  /// commit chain — no lock is taken and no verdict is produced yet.
  /// After Publish() the transaction accepts no further updates or
  /// reads; the only legal follow-ups are AwaitCommit() and Abort()
  /// (which unlinks the record if no fold claimed it yet).
  Status Publish();

  /// Second half: drives or awaits the fold that decides this record,
  /// then waits for WAL durability (group commit). Returns the commit
  /// verdict exactly as Commit() would.
  Status AwaitCommit();

  /// Discards all buffered updates. After Publish(), unlinks the
  /// published record if it has not been folded; if a fold already
  /// committed it, the commit stands and Abort is a no-op.
  void Abort();

  // ------------------------------------------------------------------
  // Query-PDT (paper footnote 5): a fourth PDT layer that shields a
  // running query from its own updates (Halloween protection). While
  // active, updates land in the Query-PDT but Scan/GetByKey still see
  // only stable ▷ Read ▷ Write ▷ Trans; EndQueryPdt() propagates the
  // buffered updates into the Trans-PDT.
  // ------------------------------------------------------------------

  /// Starts routing updates into a fresh Query-PDT.
  Status BeginQueryPdt();
  /// Folds the Query-PDT into the Trans-PDT and removes it.
  Status EndQueryPdt();
  bool query_pdt_active() const { return query_ != nullptr; }

  uint64_t id() const { return id_; }
  bool finished() const { return finished_; }
  /// True between Publish() and the verdict (or unlink).
  bool published() const { return rec_ != nullptr && !finished_; }
  const Pdt& trans_pdt() const { return *trans_; }

 private:
  friend class TxnManager;
  Transaction(TxnManager* mgr, uint64_t id, uint64_t start_time,
              std::shared_ptr<const Pdt> read_snapshot,
              std::shared_ptr<const Pdt> pending_snapshot,
              std::shared_ptr<const Pdt> write_snapshot);

  // Layer stacks: scans see [read, pending?, write, trans] — the
  // optional pending layer is a claimed Write-PDT an in-flight
  // background merge is folding into the Read-PDT; until the merged
  // Read-PDT is installed, snapshots keep seeing those updates through
  // this extra immutable layer. Update positioning additionally sees
  // the Query-PDT when one is active.
  std::vector<const Pdt*> Layers() const;
  std::vector<const Pdt*> UpdateLayers() const;
  // The PDT that receives updates (Query-PDT when active, else Trans).
  Pdt* UpdateTarget() const;
  StatusOr<std::vector<Value>> MergedSortKey(Rid rid) const;
  StatusOr<Rid> UpperBoundRid(const std::vector<Value>& key) const;
  StatusOr<Rid> FindRidByKey(const std::vector<Value>& key) const;
  uint64_t UpdateDomainRowCount() const;

  TxnManager* mgr_;
  uint64_t id_;
  uint64_t start_time_;
  std::shared_ptr<const Pdt> read_;     // shared Read-PDT snapshot
  std::shared_ptr<const Pdt> pending_;  // in-flight merge layer (or null)
  std::shared_ptr<const Pdt> write_;    // Write-PDT snapshot (copy/shared)
  std::unique_ptr<Pdt> trans_;          // private Trans-PDT (until Publish)
  std::unique_ptr<Pdt> query_;          // optional Query-PDT (footnote 5)
  // Logical redo records for the WAL, in op order (until Publish).
  std::vector<WalRecord> redo_;
  // The published delta record; owned here, linked into the manager's
  // chain until a fold (or an abort-unlink) takes it out.
  std::unique_ptr<internal::DeltaRecord> rec_;
  // RowCount() as of Publish() — the sealed Trans-PDT itself may be
  // concurrently serialized by a fold, so it is off-limits afterwards.
  uint64_t sealed_row_count_ = 0;
  bool finished_ = false;
};

/// Tuning knobs of the transaction manager.
struct TxnManagerOptions {
  /// Propagate Write-PDT into the Read-PDT when it exceeds this many
  /// entries (the paper keeps the Write-PDT smaller than the CPU cache).
  size_t write_pdt_max_entries = 4096;
  /// Checkpoint the table when the Read-PDT exceeds this many entries.
  size_t read_pdt_max_entries = 1 << 20;
  /// Group commit (only meaningful with a WalWriter attached): commits
  /// publish their redo frames under the commit lock, then wait for
  /// durability together — one leader flushes and fsyncs the batch on
  /// behalf of every waiter. When false, each commit flushes and fsyncs
  /// its own frames before returning (the ablation baseline).
  bool group_commit = true;
  /// Single-lock ablation baseline: every commit takes the manager lock
  /// itself and runs the full Algorithm 9 — conflict check, WAL record
  /// encoding + append, Write-PDT fold — under it, exactly the
  /// pre-delta-chain write path. Off by default: commits publish to the
  /// lock-free delta chain and are folded in batches.
  bool serial_commit = false;
  /// Entries a background Write→Read merge folds per worker-pool task
  /// before yielding the worker (so foreground scan morsels interleave).
  size_t merge_chunk_entries = 2048;
  /// When several per-table managers share one WAL, they must also share
  /// a transaction-id source — concurrent transactions with colliding
  /// ids would be merged by replay. Database wires all its managers to
  /// one counter; a standalone manager can leave this null and allocate
  /// ids locally.
  std::atomic<uint64_t>* txn_id_counter = nullptr;
};

/// Observability counters for the write path (see shell `.stats`).
struct TxnManagerStats {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  size_t active = 0;
  size_t pending_deltas = 0;      ///< published, not yet folded
  uint64_t fold_batches = 0;      ///< chain claims that found records
  uint64_t folded_records = 0;    ///< records decided through folds
  uint64_t commit_lock_ns = 0;    ///< total ns commit work held the lock
  size_t read_pdt_entries = 0;
  size_t write_pdt_entries = 0;
  size_t merge_pending_entries = 0;  ///< claimed layer a bg merge is folding
  bool merge_inflight = false;
  uint64_t background_merges = 0;  ///< completed background propagations
  /// Why the last background merge was abandoned (OK if none was): its
  /// claimed layer stays parked in merge_pending until a quiet-point
  /// inline fold absorbs it, so operators can see merge_pending grow.
  Status last_merge_error = Status::OK();
  uint64_t wal_syncs = 0;          ///< fsyncs through the attached writer
  uint64_t wal_records = 0;
};

/// Manages transactions over one PDT-backed Table.
///
/// Exclusive driver rule: a table is driven by exactly one manager at a
/// time (a TxnManager or a MultiTxnManager). The constructor claims the
/// table's driver slot (Table::AcquireTxnDriver, asserting on a double
/// claim) and the destructor releases it — every PDT layer mutation and
/// every ReplacePdt install then happens under this manager's mu_.
class TxnManager {
 public:
  /// `wal` is optional; when given, commits append logical redo records.
  TxnManager(Table* table, Wal* wal = nullptr, TxnManagerOptions opts = {});
  /// Drains the in-flight background merge, if any (its worker-pool task
  /// holds a pointer to this manager).
  ~TxnManager();

  /// Starts a snapshot-isolated transaction.
  std::unique_ptr<Transaction> Begin();

  /// Attaches the durable sink that commits must reach before returning
  /// OK. The writer must outlive the manager (or be detached with
  /// nullptr). The WAL's durability watermark is not touched — load or
  /// truncate the Wal first so it knows which bytes are already on
  /// disk. A later flush or fsync failure is sticky (Wal::health()):
  /// the manager refuses every subsequent commit with that status,
  /// because it can no longer promise durability.
  void SetWalWriter(WalWriter* writer);

  /// The sticky WAL health status: OK until a flush or fsync failed.
  Status wal_status() const;

  /// Replays a WAL into the table (recovery): applies all updates of
  /// committed transactions, in commit order, skipping aborted ones.
  /// Data records addressed to other tables are ignored (several tables
  /// may share one log); begin/commit/abort markers are global. Runs at
  /// most once, and only on a pristine manager — a second call, or a
  /// call after any transaction activity, returns InvalidArgument
  /// instead of double-applying updates.
  Status Recover(const Wal& wal);

  /// Propagates Write-PDT -> Read-PDT and, if the Read-PDT is large,
  /// checkpoints the table. Requires no active transactions (returns
  /// InvalidArgument otherwise; a published-but-unfolded commit still
  /// counts as active). Drains any in-flight background merge first.
  Status PropagateAndMaybeCheckpoint();

  Table* table() const { return table_; }
  const Pdt& write_pdt() const { return *write_; }
  size_t active_transactions() const;
  uint64_t committed_count() const { return committed_count_; }
  uint64_t aborted_count() const { return aborted_count_; }

  /// Snapshot of the write-path counters (consistent under the lock).
  TxnManagerStats GetStats() const;

 private:
  friend class Transaction;
  struct MergeJob;

  // --- delta-chain commit path ---
  // Lock-free: prepends the record to the commit chain (release CAS).
  void PublishRecord(internal::DeltaRecord* rec);
  // Blocks until `rec` has a verdict: takes the lock and, if the record
  // is still undecided, folds the whole published chain (this committer
  // is the fold leader; everyone folded rides the same fsync). In
  // serial_commit mode folds just this record — the single-lock
  // baseline. Returns the verdict; `*durable_upto` is the WAL offset to
  // sync outside the lock (0 = nothing to wait for).
  Status AwaitVerdict(internal::DeltaRecord* rec, uint64_t* durable_upto);
  // Claims the chain (atomic exchange) and commits every record in
  // publication order. Caller holds mu_.
  void FoldChainLocked();
  // Algorithm 9 for one record: conflict check against TZ, WAL append,
  // fold into the Write-PDT, TZ bookkeeping. Verdict lands in the
  // record. Caller holds mu_.
  void CommitRecordLocked(internal::DeltaRecord* rec);
  // Abort of a published transaction: unlink from the chain if still
  // there, else honor the fold's verdict. Caller is the owning thread.
  void AbortPublished(Transaction* txn);
  // Removes `rec` from the chain, preserving the others' order (they are
  // spliced back; concurrent lock-free publishes keep their records).
  // Caller holds mu_. Returns false if a fold already claimed it.
  bool UnlinkLocked(internal::DeltaRecord* rec);

  // Blocks until the WAL is durable through `upto` (group-commit wait:
  // the first waiter becomes the flush leader).
  Status SyncWal(uint64_t upto);
  // TZ refcount release + active_ decrement for a finishing txn.
  void FinishActiveLocked(uint64_t start_time);
  void FinishLocked(Transaction* txn);

  // --- background Write→Read merge ---
  // Called after a commit folded: inline quiet-point propagate (the
  // deterministic serial behavior) or kick off a background merge when
  // readers are pinning snapshots. Caller holds mu_.
  Status MaybePropagateWriteLocked();
  // Claims write_ as the immutable pending layer and schedules the
  // incremental fold on the global worker pool. Caller holds mu_.
  void StartBackgroundMergeLocked();
  // One incremental merge step; re-submits itself until done, then
  // installs the merged Read-PDT. Runs on a pool worker.
  void MergeStep(std::shared_ptr<MergeJob> job);

  // An entry of TZ: a committed, serialized Trans-PDT kept while
  // overlapping transactions still run.
  struct CommittedTxn {
    std::shared_ptr<Pdt> pdt;
    uint64_t commit_time;
    int refcnt;
  };

  Table* table_;
  Wal* wal_;
  TxnManagerOptions opts_;
  // Whether this manager holds the table's exclusive driver claim
  // (Table::AcquireTxnDriver; released by the destructor).
  bool driver_claimed_ = false;
  // Durable sink; the group-commit state itself lives in the (possibly
  // shared) Wal, so managers logging to one file agree on durability.
  WalWriter* writer_ = nullptr;
  bool recovered_ = false;

  // The lock-free commit chain: newest record first; only PublishRecord
  // runs without mu_ (claims and splices happen under it).
  std::atomic<internal::DeltaRecord*> delta_head_{nullptr};
  std::atomic<size_t> pending_deltas_{0};

  mutable std::mutex mu_;
  std::unique_ptr<Pdt> write_;           // master Write-PDT
  std::shared_ptr<const Pdt> write_snapshot_;  // cache: copy of write_
  uint64_t write_snapshot_time_ = 0;     // logical time of that copy
  uint64_t clock_ = 1;                   // logical commit clock
  uint64_t next_txn_id_ = 1;
  size_t active_ = 0;
  uint64_t committed_count_ = 0;
  uint64_t aborted_count_ = 0;
  std::deque<CommittedTxn> tz_;          // commit-ordered

  // Background merge state (under mu_; the pending layer itself is
  // immutable and shared with snapshots).
  std::shared_ptr<const Pdt> merge_pending_;  // claimed Write-PDT
  bool merge_inflight_ = false;
  Status merge_error_ = Status::OK();  // abandoned merge (folded inline later)
  std::condition_variable merge_cv_;   // signals merge completion
  uint64_t background_merges_ = 0;

  // Write-path counters (under mu_).
  uint64_t fold_batches_ = 0;
  uint64_t folded_records_ = 0;
  uint64_t commit_lock_ns_ = 0;
};

}  // namespace pdtstore

#endif  // PDTSTORE_TXN_TXN_MANAGER_H_

#include "exec/scan_node.h"

namespace pdtstore {

std::unique_ptr<BatchSource> TableScanNode(const Table& table,
                                           std::vector<ColumnId> projection,
                                           const KeyBounds* bounds) {
  return table.Scan(std::move(projection), bounds);
}

}  // namespace pdtstore

#include "tpch/update_stream.h"

#include <algorithm>

namespace pdtstore {
namespace tpch {

namespace {
// Mirrors the generator's key-space walk: enumerates the i-th *used* key
// (for delete sampling) and the i-th *hole* key (for refresh inserts).
struct KeySpace {
  int keys_per_32;
  int64_t order_count;

  explicit KeySpace(const GenOptions& gen)
      : keys_per_32(std::clamp(
            static_cast<int>(32 * (1.0 - gen.hole_fraction)), 1, 32)),
        order_count(OrderCountFor(gen)) {}

  // i-th used key, i in [0, order_count).
  int64_t UsedKey(int64_t i) const {
    // Block 0 contributes keys 1..keys_per_32-1 (key 0 does not exist).
    int64_t first_block = keys_per_32 - 1;
    if (i < first_block) return i + 1;
    i -= first_block;
    int64_t block = 1 + i / keys_per_32;
    return block * 32 + (i % keys_per_32);
  }

  // i-th hole key (strictly above-pattern keys within the used range).
  int64_t HoleKey(int64_t i) const {
    int64_t holes_per_32 = 32 - keys_per_32;
    if (holes_per_32 == 0) {
      // No holes configured: fall back to keys beyond the used range.
      return UsedKey(order_count - 1) + 1 + i;
    }
    int64_t block = i / holes_per_32;
    return block * 32 + keys_per_32 + (i % holes_per_32);
  }
};

GeneratedOrder Regenerate(const GenOptions& gen, int64_t key) {
  Random rng(gen.seed * 0x9e3779b97f4a7c15ULL + key);
  return MakeOrder(key, &rng, gen.scale_factor);
}
}  // namespace

StatusOr<std::vector<UpdateStream>> MakeUpdateStreams(const GenOptions& gen,
                                                      int num_streams,
                                                      double fraction) {
  if (num_streams <= 0 || fraction <= 0.0 || fraction >= 1.0) {
    return Status::InvalidArgument("bad update stream parameters");
  }
  KeySpace ks(gen);
  int64_t per_stream =
      std::max<int64_t>(1, static_cast<int64_t>(
                               static_cast<double>(ks.order_count) *
                               fraction));
  // Deletes walk the used keys with a fixed stride; the streams'
  // documented disjointness requires the whole walk to fit in the key
  // space. With stride = floor(order_count / total_deletes) >= 1, the
  // last index (total_deletes - 1) * stride is < order_count, so every
  // delete key is distinct — no clamping (which would silently alias
  // the tail keys across streams and shrink the delete load).
  int64_t total_deletes = per_stream * num_streams;
  if (total_deletes > ks.order_count) {
    return Status::InvalidArgument(
        "update streams cannot be disjoint: requested " +
        std::to_string(total_deletes) + " delete keys but only " +
        std::to_string(ks.order_count) + " orders exist");
  }
  std::vector<UpdateStream> streams(num_streams);
  // Inserts: consecutive hole keys, partitioned across streams.
  int64_t hole_idx = 0;
  for (int s = 0; s < num_streams; ++s) {
    streams[s].inserts.reserve(per_stream);
    for (int64_t i = 0; i < per_stream; ++i) {
      streams[s].inserts.push_back(Regenerate(gen, ks.HoleKey(hole_idx++)));
    }
  }
  // Deletes: evenly spread, disjoint across streams.
  int64_t stride = ks.order_count / total_deletes;
  int64_t g = 0;
  for (int s = 0; s < num_streams; ++s) {
    streams[s].deletes.reserve(per_stream);
    for (int64_t i = 0; i < per_stream; ++i, ++g) {
      streams[s].deletes.push_back(Regenerate(gen, ks.UsedKey(g * stride)));
    }
  }
  return streams;
}

Status ApplyUpdateStream(const UpdateStream& stream, TpchTables* tables) {
  for (const GeneratedOrder& o : stream.inserts) {
    PDT_RETURN_NOT_OK(tables->orders->Insert(o.order));
    for (const Tuple& l : o.lineitems) {
      PDT_RETURN_NOT_OK(tables->lineitem->Insert(l));
    }
  }
  for (const GeneratedOrder& o : stream.deletes) {
    Status st = tables->orders->DeleteByKey(
        {o.order[kOOrderdate], o.order[kOOrderkey]});
    if (st.code() == StatusCode::kNotFound) continue;  // already deleted
    PDT_RETURN_NOT_OK(st);
    for (const Tuple& l : o.lineitems) {
      PDT_RETURN_NOT_OK(tables->lineitem->DeleteByKey(
          {l[kLOrderkey], l[kLLinenumber]}));
    }
  }
  return Status::OK();
}

Status ApplyUpdateStreamTxn(const UpdateStream& stream, TxnManager* orders,
                            TxnManager* lineitem, size_t orders_per_txn) {
  if (orders_per_txn == 0) orders_per_txn = 1;
  // Walk inserts then deletes in groups; each group is one transaction
  // per table (two commits riding the same group-commit fsync when the
  // managers share a WAL).
  auto commit_group = [&](size_t begin, size_t end,
                          bool inserts) -> Status {
    auto otxn = orders->Begin();
    auto ltxn = lineitem->Begin();
    // Any mid-build error must resolve BOTH transactions before it
    // propagates; neither is published yet, so Abort suffices.
    auto fail = [&](Status st) -> Status {
      otxn->Abort();
      ltxn->Abort();
      return st;
    };
    for (size_t i = begin; i < end; ++i) {
      const GeneratedOrder& o =
          inserts ? stream.inserts[i] : stream.deletes[i];
      if (inserts) {
        if (Status st = otxn->Insert(o.order); !st.ok()) return fail(st);
        for (const Tuple& l : o.lineitems) {
          if (Status st = ltxn->Insert(l); !st.ok()) return fail(st);
        }
      } else {
        Status st = otxn->DeleteByKey(
            {o.order[kOOrderdate], o.order[kOOrderkey]});
        if (st.code() == StatusCode::kNotFound) continue;  // already gone
        if (!st.ok()) return fail(st);
        for (const Tuple& l : o.lineitems) {
          if (Status lst = ltxn->DeleteByKey({l[kLOrderkey],
                                              l[kLLinenumber]});
              !lst.ok()) {
            return fail(lst);
          }
        }
      }
    }
    // Publish both lock-free, then await BOTH verdicts before
    // propagating any failure: returning on the first error would
    // abandon the other published record on the delta chain with no
    // waiter (its transaction would only be aborted by its destructor,
    // mis-ordering the resolution and the error report).
    if (Status st = otxn->Publish(); !st.ok()) return fail(st);
    if (Status st = ltxn->Publish(); !st.ok()) {
      otxn->Abort();  // unlinks the published record
      ltxn->Abort();
      return st;
    }
    Status ost = otxn->AwaitCommit();
    Status lst = ltxn->AwaitCommit();
    if (!ost.ok()) return ost;
    return lst;
  };
  for (size_t i = 0; i < stream.inserts.size(); i += orders_per_txn) {
    PDT_RETURN_NOT_OK(commit_group(
        i, std::min(i + orders_per_txn, stream.inserts.size()), true));
  }
  for (size_t i = 0; i < stream.deletes.size(); i += orders_per_txn) {
    PDT_RETURN_NOT_OK(commit_group(
        i, std::min(i + orders_per_txn, stream.deletes.size()), false));
  }
  return Status::OK();
}

std::vector<RefreshGroup> PlanRefreshGroups(const UpdateStream& stream,
                                            size_t orders_per_txn) {
  if (orders_per_txn == 0) orders_per_txn = 1;
  std::vector<RefreshGroup> groups;
  for (size_t i = 0; i < stream.inserts.size(); i += orders_per_txn) {
    groups.push_back(RefreshGroup{
        i, std::min(i + orders_per_txn, stream.inserts.size()), true});
  }
  for (size_t i = 0; i < stream.deletes.size(); i += orders_per_txn) {
    groups.push_back(RefreshGroup{
        i, std::min(i + orders_per_txn, stream.deletes.size()), false});
  }
  return groups;
}

Status ApplyRefreshGroupMultiTxn(const UpdateStream& stream,
                                 const RefreshGroup& group,
                                 MultiTxnManager* mgr,
                                 const MultiTxnApplyOptions& opts,
                                 MultiTxnApplyStats* stats) {
  const int attempts = std::max(1, opts.max_conflict_retries + 1);
  Status last = Status::OK();
  for (int attempt = 0; attempt < attempts; ++attempt) {
    auto txn = mgr->Begin();
    uint64_t inserted = 0;
    uint64_t deleted = 0;
    for (size_t i = group.begin; i < group.end; ++i) {
      const GeneratedOrder& o =
          group.inserts ? stream.inserts[i] : stream.deletes[i];
      if (group.inserts) {
        if (Status st = txn->Insert(opts.orders_table, o.order); !st.ok()) {
          txn->Abort();
          return st;
        }
        for (const Tuple& l : o.lineitems) {
          if (Status st = txn->Insert(opts.lineitem_table, l); !st.ok()) {
            txn->Abort();
            return st;
          }
        }
        inserted += 1 + o.lineitems.size();
      } else {
        Status st = txn->DeleteByKey(
            opts.orders_table,
            {o.order[kOOrderdate], o.order[kOOrderkey]});
        if (st.code() == StatusCode::kNotFound) continue;  // already gone
        if (!st.ok()) {
          txn->Abort();
          return st;
        }
        for (const Tuple& l : o.lineitems) {
          if (Status lst = txn->DeleteByKey(
                  opts.lineitem_table, {l[kLOrderkey], l[kLLinenumber]});
              !lst.ok()) {
            txn->Abort();
            return lst;
          }
        }
        deleted += 1 + o.lineitems.size();
      }
    }
    if (inserted == 0 && deleted == 0) {
      // Every delete of the group was already applied (a retried or
      // overlapping stream got there first): nothing to commit.
      txn->Abort();
      return Status::OK();
    }
    if (Status st = txn->Publish(); !st.ok()) {
      txn->Abort();
      return st;
    }
    Status st = txn->AwaitCommit();
    if (st.ok()) {
      if (stats != nullptr) {
        ++stats->groups_committed;
        stats->rows_inserted += inserted;
        stats->rows_deleted += deleted;
      }
      return Status::OK();
    }
    if (st.code() != StatusCode::kConflict) return st;
    // Lost a write-write race: rebuild the group from a fresh snapshot
    // (deletes that landed meanwhile turn into NotFound skips).
    last = st;
    if (stats != nullptr) ++stats->conflict_retries;
  }
  return last;
}

Status ApplyUpdateStreamMultiTxn(const UpdateStream& stream,
                                 MultiTxnManager* mgr,
                                 const MultiTxnApplyOptions& opts,
                                 MultiTxnApplyStats* stats) {
  for (const RefreshGroup& g : PlanRefreshGroups(stream,
                                                 opts.orders_per_txn)) {
    PDT_RETURN_NOT_OK(ApplyRefreshGroupMultiTxn(stream, g, mgr, opts,
                                                stats));
  }
  return Status::OK();
}

}  // namespace tpch
}  // namespace pdtstore

#include "db/database.h"

namespace pdtstore {

Database::Database(DatabaseOptions options)
    : options_(options),
      pool_(std::make_shared<BufferPool>(options.buffer_pool_bytes)) {}

StatusOr<Table*> Database::CreateTable(const std::string& name,
                                       std::shared_ptr<const Schema> schema) {
  return CreateTable(name, std::move(schema), options_.table_defaults);
}

StatusOr<Table*> Database::CreateTable(const std::string& name,
                                       std::shared_ptr<const Schema> schema,
                                       TableOptions options) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table exists: " + name);
  }
  auto table =
      std::make_unique<Table>(name, std::move(schema), options, pool_);
  Table* ptr = table.get();
  tables_[name] = std::move(table);
  return ptr;
}

StatusOr<Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table " + name);
  return it->second.get();
}

Status Database::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) return Status::NotFound("no table " + name);
  return Status::OK();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, unused] : tables_) names.push_back(name);
  return names;
}

}  // namespace pdtstore

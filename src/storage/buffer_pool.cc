#include "storage/buffer_pool.h"

namespace pdtstore {

StatusOr<std::shared_ptr<const ColumnVector>> BufferPool::Fetch(
    uint64_t key, const Chunk& chunk) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++stats_.hits;
    lru_.erase(it->second.lru_it);
    lru_.push_front(key);
    it->second.lru_it = lru_.begin();
    return it->second.data;
  }
  // Miss: simulated disk read of the encoded payload, then decode.
  stats_.bytes_read += chunk.DiskBytes();
  ++stats_.chunks_read;
  auto decoded = std::make_shared<ColumnVector>();
  PDT_RETURN_NOT_OK(DecodeChunk(chunk, decoded.get()));
  size_t bytes = decoded->ByteSize();
  lru_.push_front(key);
  entries_[key] = Entry{decoded, bytes, lru_.begin()};
  cached_bytes_ += bytes;
  MaybeEvict();
  return std::shared_ptr<const ColumnVector>(decoded);
}

void BufferPool::EvictAll() {
  entries_.clear();
  lru_.clear();
  cached_bytes_ = 0;
}

void BufferPool::MaybeEvict() {
  if (capacity_bytes_ == 0) return;
  while (cached_bytes_ > capacity_bytes_ && lru_.size() > 1) {
    uint64_t victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    if (it != entries_.end()) {
      cached_bytes_ -= it->second.bytes;
      entries_.erase(it);
    }
  }
}

}  // namespace pdtstore

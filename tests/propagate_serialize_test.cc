// Tests for Algorithm 7 (Propagate) and Algorithm 8 (Serialize): the
// stacked-PDT identities of Sec. 2 (eq. 1) and the write-write conflict
// rules of Sec. 3.3.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "pdt/merge_scan.h"
#include "pdt/pdt.h"
#include "test_util.h"
#include "util/random.h"

namespace pdtstore {
namespace {

using testutil::BuildStore;
using testutil::InventoryRows;
using testutil::InventorySchema;
using testutil::MergedRows;
using testutil::ModelTable;

// Builds a random ops trace applied to a ModelTable.
void ApplyRandomOps(ModelTable* model, Random* rng, int ops) {
  for (int i = 0; i < ops; ++i) {
    double dice = rng->NextDouble();
    if (dice < 0.4 || model->size() == 0) {
      Tuple t = {std::string(1, 'A' + static_cast<char>(rng->Uniform(26))) +
                     rng->NextString(4),
                 rng->NextString(4), "Y", rng->UniformRange(0, 99)};
      (void)model->Insert(t);  // duplicate keys rejected, fine
    } else if (dice < 0.65) {
      (void)model->DeleteAt(rng->Uniform(model->size()));
    } else {
      (void)model->ModifyAt(rng->Uniform(model->size()), 3,
                            Value(rng->UniformRange(0, 99)));
    }
  }
}

class PropagateTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropagateTest, PropagateEqualsStackedMerge) {
  auto schema = InventorySchema();
  Random rng(GetParam());
  // Phase 1 builds R against the stable image.
  auto store = BuildStore(schema, InventoryRows());
  ModelTable phase1(schema, InventoryRows());
  ApplyRandomOps(&phase1, &rng, 60);
  // Phase 2 builds W against the post-phase-1 image (W consecutive to R).
  ModelTable phase2(schema, phase1.rows());
  ApplyRandomOps(&phase2, &rng, 60);

  // Identity A: merging through the stack [R, W] equals the final image.
  EXPECT_EQ(MergedRows(*store, {phase1.pdt(), phase2.pdt()}),
            phase2.rows());

  // Identity B (eq. 1): Merge(T0, R.Propagate(W)) == final image.
  ASSERT_TRUE(phase1.pdt()->Propagate(*phase2.pdt()).ok());
  ASSERT_TRUE(phase1.pdt()->CheckInvariants().ok())
      << phase1.pdt()->CheckInvariants().ToString();
  EXPECT_EQ(MergedRows(*store, {phase1.pdt()}), phase2.rows());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropagateTest,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18));

TEST(PropagateEdgeTest, PropagateEmptyIsNoop) {
  auto schema = InventorySchema();
  ModelTable m(schema, InventoryRows());
  ASSERT_TRUE(m.Insert({"Aix", "mat", "Y", 7}).ok());
  Pdt empty(schema);
  auto before = m.pdt()->Flatten();
  ASSERT_TRUE(m.pdt()->Propagate(empty).ok());
  EXPECT_EQ(m.pdt()->Flatten(), before);
}

TEST(PropagateEdgeTest, PropagateIntoEmptyCopies) {
  auto schema = InventorySchema();
  auto store = BuildStore(schema, InventoryRows());
  ModelTable m(schema, InventoryRows());
  ASSERT_TRUE(m.Insert({"Aix", "mat", "Y", 7}).ok());
  ASSERT_TRUE(m.DeleteAt(3).ok());
  Pdt target(schema);
  ASSERT_TRUE(target.Propagate(*m.pdt()).ok());
  EXPECT_EQ(MergedRows(*store, {&target}), m.rows());
}

TEST(PropagateEdgeTest, DeleteOfPropagatedInsertCancels) {
  // W deletes a tuple that R inserted: after propagation no trace remains.
  auto schema = InventorySchema();
  auto store = BuildStore(schema, InventoryRows());
  ModelTable phase1(schema, InventoryRows());
  ASSERT_TRUE(phase1.Insert({"Aix", "mat", "Y", 7}).ok());
  ModelTable phase2(schema, phase1.rows());
  ASSERT_TRUE(phase2.DeleteAt(0).ok());  // (Aix,mat) sorts first
  ASSERT_TRUE(phase1.pdt()->Propagate(*phase2.pdt()).ok());
  EXPECT_EQ(phase1.pdt()->EntryCount(), 0u);
  EXPECT_EQ(MergedRows(*store, {phase1.pdt()}), InventoryRows());
}

// ---------------------------------------------------------------------
// Serialize.
// ---------------------------------------------------------------------

class SerializeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = InventorySchema();
    store_ = BuildStore(schema_, InventoryRows());
    tx_ = std::make_unique<ModelTable>(schema_, InventoryRows());
    ty_ = std::make_unique<ModelTable>(schema_, InventoryRows());
  }

  // Applies ty then "tx-as-serialized" to a fresh model for ground truth:
  // ty's final rows, then tx's logical (key-addressed) updates.
  std::shared_ptr<const Schema> schema_;
  std::unique_ptr<ColumnStore> store_;
  std::unique_ptr<ModelTable> tx_, ty_;  // aligned: same base snapshot
};

TEST_F(SerializeFixture, DisjointUpdatesSerializeAndCompose) {
  // ty: modify London/chair qty; delete Paris/rug.
  Rid rid;
  ASSERT_TRUE(ty_->FindKey({Value("London"), Value("chair")}, &rid));
  ASSERT_TRUE(ty_->ModifyAt(rid, 3, Value(77)).ok());
  ASSERT_TRUE(ty_->FindKey({Value("Paris"), Value("rug")}, &rid));
  ASSERT_TRUE(ty_->DeleteAt(rid).ok());
  // tx: insert Berlin/cloth; modify Paris/stool.
  ASSERT_TRUE(tx_->Insert({"Berlin", "cloth", "Y", 5}).ok());
  ASSERT_TRUE(tx_->FindKey({Value("Paris"), Value("stool")}, &rid));
  ASSERT_TRUE(tx_->ModifyAt(rid, 3, Value(55)).ok());

  ASSERT_TRUE(tx_->pdt()->SerializeAgainst(*ty_->pdt()).ok());
  ASSERT_TRUE(tx_->pdt()->CheckInvariants().ok());

  // Ground truth: ty's image with tx's key-addressed updates applied.
  ModelTable expected(schema_, ty_->rows());
  ASSERT_TRUE(expected.Insert({"Berlin", "cloth", "Y", 5}).ok());
  ASSERT_TRUE(expected.FindKey({Value("Paris"), Value("stool")}, &rid));
  ASSERT_TRUE(expected.ModifyAt(rid, 3, Value(55)).ok());

  // Merge stable -> ty -> serialized tx.
  EXPECT_EQ(MergedRows(*store_, {ty_->pdt(), tx_->pdt()}), expected.rows());

  // And via Propagate into a single PDT.
  Pdt combined(schema_);
  ASSERT_TRUE(combined.Propagate(*ty_->pdt()).ok());
  ASSERT_TRUE(combined.Propagate(*tx_->pdt()).ok());
  EXPECT_EQ(MergedRows(*store_, {&combined}), expected.rows());
}

TEST_F(SerializeFixture, InsertInsertSameKeyConflicts) {
  ASSERT_TRUE(ty_->Insert({"Berlin", "cloth", "Y", 5}).ok());
  ASSERT_TRUE(tx_->Insert({"Berlin", "cloth", "Y", 9}).ok());
  Status st = tx_->pdt()->SerializeAgainst(*ty_->pdt());
  EXPECT_EQ(st.code(), StatusCode::kConflict) << st.ToString();
}

TEST_F(SerializeFixture, InsertInsertDifferentKeysOk) {
  ASSERT_TRUE(ty_->Insert({"Berlin", "cloth", "Y", 5}).ok());
  ASSERT_TRUE(tx_->Insert({"Berlin", "chair", "Y", 9}).ok());
  EXPECT_TRUE(tx_->pdt()->SerializeAgainst(*ty_->pdt()).ok());
}

TEST_F(SerializeFixture, DeleteDeleteSameTupleConflicts) {
  Rid rid;
  ASSERT_TRUE(ty_->FindKey({Value("Paris"), Value("rug")}, &rid));
  ASSERT_TRUE(ty_->DeleteAt(rid).ok());
  ASSERT_TRUE(tx_->FindKey({Value("Paris"), Value("rug")}, &rid));
  ASSERT_TRUE(tx_->DeleteAt(rid).ok());
  EXPECT_EQ(tx_->pdt()->SerializeAgainst(*ty_->pdt()).code(),
            StatusCode::kConflict);
}

TEST_F(SerializeFixture, ModifyOfDeletedTupleConflicts) {
  Rid rid;
  ASSERT_TRUE(ty_->FindKey({Value("Paris"), Value("rug")}, &rid));
  ASSERT_TRUE(ty_->DeleteAt(rid).ok());
  ASSERT_TRUE(tx_->FindKey({Value("Paris"), Value("rug")}, &rid));
  ASSERT_TRUE(tx_->ModifyAt(rid, 3, Value(2)).ok());
  EXPECT_EQ(tx_->pdt()->SerializeAgainst(*ty_->pdt()).code(),
            StatusCode::kConflict);
}

TEST_F(SerializeFixture, DeleteOfModifiedTupleConflicts) {
  Rid rid;
  ASSERT_TRUE(ty_->FindKey({Value("Paris"), Value("rug")}, &rid));
  ASSERT_TRUE(ty_->ModifyAt(rid, 3, Value(2)).ok());
  ASSERT_TRUE(tx_->FindKey({Value("Paris"), Value("rug")}, &rid));
  ASSERT_TRUE(tx_->DeleteAt(rid).ok());
  EXPECT_EQ(tx_->pdt()->SerializeAgainst(*ty_->pdt()).code(),
            StatusCode::kConflict);
}

TEST_F(SerializeFixture, SameColumnModifyConflicts) {
  Rid rid;
  ASSERT_TRUE(ty_->FindKey({Value("London"), Value("stool")}, &rid));
  ASSERT_TRUE(ty_->ModifyAt(rid, 3, Value(1)).ok());
  ASSERT_TRUE(tx_->FindKey({Value("London"), Value("stool")}, &rid));
  ASSERT_TRUE(tx_->ModifyAt(rid, 3, Value(2)).ok());
  EXPECT_EQ(tx_->pdt()->SerializeAgainst(*ty_->pdt()).code(),
            StatusCode::kConflict);
}

TEST_F(SerializeFixture, DifferentColumnModifiesReconcile) {
  // The paper: CheckModConflict "allows to reconcile modifications of
  // different attributes of the same tuple".
  Rid rid;
  ASSERT_TRUE(ty_->FindKey({Value("London"), Value("stool")}, &rid));
  ASSERT_TRUE(ty_->ModifyAt(rid, 2, Value("Y")).ok());
  ASSERT_TRUE(tx_->FindKey({Value("London"), Value("stool")}, &rid));
  ASSERT_TRUE(tx_->ModifyAt(rid, 3, Value(2)).ok());
  ASSERT_TRUE(tx_->pdt()->SerializeAgainst(*ty_->pdt()).ok());

  Pdt combined(schema_);
  ASSERT_TRUE(combined.Propagate(*ty_->pdt()).ok());
  ASSERT_TRUE(combined.Propagate(*tx_->pdt()).ok());
  auto rows = MergedRows(*store_, {&combined});
  Rid found = 0;
  for (Rid i = 0; i < rows.size(); ++i) {
    if (rows[i][0].AsString() == "London" && rows[i][1].AsString() == "stool")
      found = i;
  }
  EXPECT_EQ(rows[found][2], Value("Y"));
  EXPECT_EQ(rows[found][3], Value(2));
}

TEST_F(SerializeFixture, InsertNeverConflictsWithPeerDelete) {
  // ty deletes (Paris,rug); tx re-inserts the same key: allowed ("Never
  // conflict with Insert"), and the new tuple replaces the old one.
  Rid rid;
  ASSERT_TRUE(ty_->FindKey({Value("Paris"), Value("rug")}, &rid));
  ASSERT_TRUE(ty_->DeleteAt(rid).ok());
  ASSERT_TRUE(tx_->Insert({"Paris", "rack", "Y", 4}).ok());
  ASSERT_TRUE(tx_->pdt()->SerializeAgainst(*ty_->pdt()).ok());

  ModelTable expected(schema_, ty_->rows());
  ASSERT_TRUE(expected.Insert({"Paris", "rack", "Y", 4}).ok());
  EXPECT_EQ(MergedRows(*store_, {ty_->pdt(), tx_->pdt()}), expected.rows());
}

// Randomized: two transactions touching disjoint key sets always
// serialize, and the composed image equals applying both logically.
class SerializeRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializeRandomTest, DisjointTransactionsCompose) {
  auto schema = InventorySchema();
  Random rng(GetParam());
  // A larger base so the two txns touch different regions.
  std::vector<Tuple> base;
  for (int i = 0; i < 100; ++i) {
    base.push_back({"S" + std::to_string(1000 + i),
                    "p" + std::to_string(1000 + i), "N",
                    rng.UniformRange(0, 99)});
  }
  auto store = BuildStore(schema, base);
  ModelTable ty(schema, base), tx(schema, base);
  // ty touches even rows, tx odd rows (positions in the shared snapshot).
  for (int i = 0; i < 30; ++i) {
    Rid rid = rng.Uniform(50) * 2;
    double d = rng.NextDouble();
    if (d < 0.4) {
      (void)ty.Insert({"S" + std::to_string(1000 + rid) + "x",
                       "new" + std::to_string(i), "Y", 1});
    } else if (d < 0.7 && ty.size() > rid) {
      // Only delete original even-keyed tuples (identified by key).
      Rid r;
      if (ty.FindKey({base[rid][0], base[rid][1]}, &r)) {
        ASSERT_TRUE(ty.DeleteAt(r).ok());
      }
    } else {
      Rid r;
      if (ty.FindKey({base[rid][0], base[rid][1]}, &r)) {
        ASSERT_TRUE(ty.ModifyAt(r, 3, Value(rng.UniformRange(0, 9))).ok());
      }
    }
  }
  // Record tx's logical ops in order so they can be replayed onto the
  // post-ty image as ground truth (key-disjointness from ty makes the
  // replay independent of ty's positional shifts).
  struct LogicalOp {
    int kind;  // 0=insert, 1=delete, 2=modify
    Tuple tuple;
    std::vector<Value> key;
    Value v;
  };
  std::vector<LogicalOp> tx_ops;
  for (int i = 0; i < 30; ++i) {
    Rid rid = rng.Uniform(50) * 2 + 1;
    double d = rng.NextDouble();
    if (d < 0.4) {
      Tuple t = {"S" + std::to_string(1000 + rid) + "y",
                 "new" + std::to_string(i), "Y", 2};
      if (tx.Insert(t).ok()) tx_ops.push_back({0, t, {}, Value()});
    } else if (d < 0.7) {
      Rid r;
      std::vector<Value> key = {base[rid][0], base[rid][1]};
      if (tx.FindKey(key, &r)) {
        ASSERT_TRUE(tx.DeleteAt(r).ok());
        tx_ops.push_back({1, {}, key, Value()});
      }
    } else {
      Rid r;
      std::vector<Value> key = {base[rid][0], base[rid][1]};
      Value v = Value(rng.UniformRange(100, 199));
      if (tx.FindKey(key, &r)) {
        ASSERT_TRUE(tx.ModifyAt(r, 3, v).ok());
        tx_ops.push_back({2, {}, key, v});
      }
    }
  }

  ASSERT_TRUE(tx.pdt()->SerializeAgainst(*ty.pdt()).ok());
  ASSERT_TRUE(tx.pdt()->CheckInvariants().ok())
      << tx.pdt()->CheckInvariants().ToString();

  // Ground truth: ty image + tx logical updates replayed in order.
  ModelTable expected(schema, ty.rows());
  for (const auto& op : tx_ops) {
    Rid r;
    switch (op.kind) {
      case 0:
        ASSERT_TRUE(expected.Insert(op.tuple).ok());
        break;
      case 1:
        if (expected.FindKey(op.key, &r)) {
          ASSERT_TRUE(expected.DeleteAt(r).ok());
        } else {
          // tx deleted one of its own inserts identified by key.
          bool erased = false;
          for (Rid i = 0; i < expected.size(); ++i) {
            if (expected.schema().CompareTupleToKey(expected.rows()[i],
                                                    op.key) == 0) {
              ASSERT_TRUE(expected.DeleteAt(i).ok());
              erased = true;
              break;
            }
          }
          ASSERT_TRUE(erased);
        }
        break;
      case 2:
        ASSERT_TRUE(expected.FindKey(op.key, &r));
        ASSERT_TRUE(expected.ModifyAt(r, 3, op.v).ok());
        break;
    }
  }
  EXPECT_EQ(MergedRows(*store, {ty.pdt(), tx.pdt()}), expected.rows());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeRandomTest,
                         ::testing::Values(21, 22, 23, 24, 25, 26));


// Conflict-oracle property test: generate two transactions with one op
// per key, compute from first principles whether Algorithm 8 must report
// a write-write conflict, and check SerializeAgainst agrees exactly.
class SerializeConflictOracleTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializeConflictOracleTest, ConflictsExactlyWhenOracleSays) {
  auto schema = InventorySchema();
  Random rng(GetParam());
  std::vector<Tuple> base;
  for (int i = 0; i < 60; ++i) {
    base.push_back({"S" + std::to_string(100 + i), "p", "N",
                    rng.UniformRange(0, 99)});
  }
  auto store = BuildStore(schema, base);

  // Op kinds per key: 0 = none, 1 = insert(new key), 2 = delete(base),
  // 3 = modify col2, 4 = modify col3.
  struct TxnOps {
    std::map<int, int> base_ops;   // base index -> op (2/3/4)
    std::set<int> insert_keys;     // new-key ids
  };
  auto gen_ops = [&](int nops) {
    TxnOps ops;
    for (int i = 0; i < nops; ++i) {
      if (rng.Bernoulli(0.4)) {
        ops.insert_keys.insert(static_cast<int>(rng.Uniform(8)));
      } else {
        int idx = static_cast<int>(rng.Uniform(base.size()));
        int op = 2 + static_cast<int>(rng.Uniform(3));
        ops.base_ops.emplace(idx, op);  // first op per key wins
      }
    }
    return ops;
  };
  auto apply = [&](ModelTable* m, const TxnOps& ops) {
    for (int k : ops.insert_keys) {
      ASSERT_TRUE(
          m->Insert({"X" + std::to_string(k), "new", "Y", 1}).ok());
    }
    for (auto [idx, op] : ops.base_ops) {
      Rid rid;
      ASSERT_TRUE(m->FindKey({base[idx][0], base[idx][1]}, &rid));
      if (op == 2) {
        ASSERT_TRUE(m->DeleteAt(rid).ok());
      } else if (op == 3) {
        ASSERT_TRUE(m->ModifyAt(rid, 2, Value("Y")).ok());
      } else {
        ASSERT_TRUE(m->ModifyAt(rid, 3, Value(77)).ok());
      }
    }
  };

  TxnOps ty_ops = gen_ops(6);
  TxnOps tx_ops = gen_ops(6);
  ModelTable ty(schema, base), tx(schema, base);
  apply(&ty, ty_ops);
  apply(&tx, tx_ops);

  // Oracle (Sec. 3.3 rules).
  bool expect_conflict = false;
  for (int k : tx_ops.insert_keys) {
    if (ty_ops.insert_keys.count(k)) expect_conflict = true;  // INS-INS
  }
  for (auto [idx, txop] : tx_ops.base_ops) {
    auto it = ty_ops.base_ops.find(idx);
    if (it == ty_ops.base_ops.end()) continue;
    int tyop = it->second;
    if (tyop == 2 || txop == 2) {
      expect_conflict = true;  // DEL vs anything on the same tuple
    } else if (tyop == txop) {
      expect_conflict = true;  // same-column MOD
    }
    // MOD of different columns (3 vs 4) reconciles.
  }

  Status st = tx.pdt()->SerializeAgainst(*ty.pdt());
  if (expect_conflict) {
    EXPECT_EQ(st.code(), StatusCode::kConflict)
        << "oracle says conflict, Serialize said: " << st.ToString();
  } else {
    ASSERT_TRUE(st.ok()) << st.ToString();
    ASSERT_TRUE(tx.pdt()->CheckInvariants().ok());
    // And composition is well-formed: the serialized Tx merges cleanly.
    auto merged = MergedRows(*store, {ty.pdt(), tx.pdt()});
    EXPECT_EQ(merged.size(),
              base.size() + ty.pdt()->TotalDelta() + tx.pdt()->TotalDelta());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeConflictOracleTest,
                         ::testing::Range<uint64_t>(200, 240));

}  // namespace
}  // namespace pdtstore

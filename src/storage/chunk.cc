#include "storage/chunk.h"

namespace pdtstore {

namespace {

StatusOr<Chunk> BuildChunkWithEncoding(const ColumnVector& values,
                                       Sid start_sid, Encoding encoding) {
  Chunk chunk;
  chunk.start_sid = start_sid;
  chunk.row_count = values.size();
  chunk.type = values.type();
  chunk.encoding = encoding;
  PDT_RETURN_NOT_OK(EncodeColumn(values, chunk.encoding, &chunk.data));
  size_t min_i = 0, max_i = 0;
  for (size_t i = 1; i < values.size(); ++i) {
    if (values.CompareAt(i, values, min_i) < 0) min_i = i;
    if (values.CompareAt(i, values, max_i) > 0) max_i = i;
  }
  chunk.min_value = values.GetValue(min_i);
  chunk.max_value = values.GetValue(max_i);
  return chunk;
}

}  // namespace

StatusOr<Chunk> BuildChunk(const ColumnVector& values, Sid start_sid,
                           bool compression) {
  if (values.empty()) {
    return Status::InvalidArgument("cannot build an empty chunk");
  }
  return BuildChunkWithEncoding(values, start_sid,
                                ChooseEncoding(values, compression));
}

StatusOr<Chunk> BuildChunkForced(const ColumnVector& values, Sid start_sid,
                                 Encoding forced) {
  if (values.empty()) {
    return Status::InvalidArgument("cannot build an empty chunk");
  }
  auto chunk = BuildChunkWithEncoding(values, start_sid, forced);
  if (chunk.ok()) return chunk;
  return BuildChunkWithEncoding(values, start_sid, Encoding::kPlain);
}

Status DecodeChunk(const Chunk& chunk, ColumnVector* out, bool keep_encoded) {
  return DecodeColumn(chunk.data, chunk.type, chunk.encoding, chunk.row_count,
                      out, keep_encoded);
}

}  // namespace pdtstore

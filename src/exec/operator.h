// Executor basics: materialization helpers and a static batch source.
// All operators are pull-based BatchSources (block-oriented processing in
// the X100 style the paper's engine uses).
#ifndef PDTSTORE_EXEC_OPERATOR_H_
#define PDTSTORE_EXEC_OPERATOR_H_

#include <memory>
#include <vector>

#include "columnstore/batch.h"

namespace pdtstore {

/// Emits one pre-materialized batch in slices.
class VectorSource : public BatchSource {
 public:
  explicit VectorSource(Batch batch) : batch_(std::move(batch)) {}

  StatusOr<bool> Next(Batch* out, size_t max_rows) override;

 private:
  Batch batch_;
  size_t pos_ = 0;
};

/// Drains `source` into one big batch.
StatusOr<Batch> MaterializeAll(BatchSource* source,
                               size_t batch_size = kDefaultBatchSize);

}  // namespace pdtstore

#endif  // PDTSTORE_EXEC_OPERATOR_H_

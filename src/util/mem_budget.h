// Per-query memory accounting: a process-wide MemoryPool with an atomic
// cap, per-query MemoryBudget objects charging it, and a thread-local
// query context so deep operator code (sort materialization, join build
// collect, agg tables) can find the budget of the query it works for
// without threading it through every constructor signature.
//
// Charge discipline: the budget pointer is captured ONCE, on the query
// thread, when an operator / sink is constructed (all breakers are
// constructed on the consuming thread, before workers start). Charges
// and releases may then happen from any worker — both MemoryPool and
// MemoryBudget are atomic. A failed charge returns ResourceExhausted;
// nothing is charged on failure, so the caller aborts cleanly.
// BudgetLease is the RAII holder: whatever it charged is released in its
// destructor, including every error path.
#ifndef PDTSTORE_UTIL_MEM_BUDGET_H_
#define PDTSTORE_UTIL_MEM_BUDGET_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>

#include "util/status.h"

namespace pdtstore {

/// Process-wide memory cap shared by every query's budget. Lock-free:
/// TryCharge is a CAS loop that never overshoots the cap.
class MemoryPool {
 public:
  /// `capacity` == 0 means unlimited.
  explicit MemoryPool(size_t capacity = 0) : capacity_(capacity) {}

  /// Atomically reserves `bytes`; false if that would exceed capacity.
  bool TryCharge(size_t bytes) {
    const size_t cap = capacity_.load(std::memory_order_relaxed);
    size_t cur = used_.load(std::memory_order_relaxed);
    while (true) {
      if (cap != 0 && cur + bytes > cap) return false;
      if (used_.compare_exchange_weak(cur, cur + bytes,
                                      std::memory_order_relaxed)) {
        // Peak tracking is advisory (stats display), relaxed is fine.
        size_t peak = peak_.load(std::memory_order_relaxed);
        while (cur + bytes > peak &&
               !peak_.compare_exchange_weak(peak, cur + bytes,
                                            std::memory_order_relaxed)) {
        }
        return true;
      }
    }
  }

  void Release(size_t bytes) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t peak() const { return peak_.load(std::memory_order_relaxed); }
  size_t capacity() const {
    return capacity_.load(std::memory_order_relaxed);
  }
  /// Reconfigures the cap (tests, shell). Does not evict anything; an
  /// over-cap pool simply rejects further charges.
  void set_capacity(size_t capacity) {
    capacity_.store(capacity, std::memory_order_relaxed);
  }

 private:
  std::atomic<size_t> capacity_;
  std::atomic<size_t> used_{0};
  std::atomic<size_t> peak_{0};
};

/// One query's memory account: a per-query cap layered over the shared
/// pool. Charges hit the query cap first, then reserve from the pool;
/// a rejected pool reservation rolls the query-local charge back, so
/// used() only ever counts bytes actually held in the pool.
class MemoryBudget {
 public:
  /// `query_cap` == 0 means only the pool cap applies. `pool` may be
  /// null (accounting without any shared cap — used by unit tests).
  MemoryBudget(std::string label, size_t query_cap, MemoryPool* pool)
      : label_(std::move(label)), query_cap_(query_cap), pool_(pool) {}

  ~MemoryBudget() {
    // The budget's own charges were all released (BudgetLease guarantees
    // it); return nothing to the pool here. assert-level invariant only:
    // a leak would show up as used() != 0 in the accounting tests.
  }

  Status Charge(size_t bytes) {
    size_t cur = used_.load(std::memory_order_relaxed);
    while (true) {
      if (query_cap_ != 0 && cur + bytes > query_cap_) {
        return Exhausted(bytes, "query memory cap");
      }
      if (used_.compare_exchange_weak(cur, cur + bytes,
                                      std::memory_order_relaxed)) {
        break;
      }
    }
    if (pool_ != nullptr && !pool_->TryCharge(bytes)) {
      used_.fetch_sub(bytes, std::memory_order_relaxed);
      return Exhausted(bytes, "process memory pool");
    }
    size_t peak = peak_.load(std::memory_order_relaxed);
    const size_t now = used_.load(std::memory_order_relaxed);
    while (now > peak && !peak_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
    return Status::OK();
  }

  void Release(size_t bytes) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    if (pool_ != nullptr) pool_->Release(bytes);
  }

  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t peak() const { return peak_.load(std::memory_order_relaxed); }
  size_t query_cap() const { return query_cap_; }
  const std::string& label() const { return label_; }
  MemoryPool* pool() const { return pool_; }

 private:
  Status Exhausted(size_t bytes, const char* which) const {
    return Status::ResourceExhausted(
        "query '" + label_ + "' " + which + " exceeded charging " +
        std::to_string(bytes) + " bytes (query used " +
        std::to_string(used()) + "/" + std::to_string(query_cap_) +
        ", pool used " +
        std::to_string(pool_ ? pool_->used() : 0) + "/" +
        std::to_string(pool_ ? pool_->capacity() : 0) + ")");
  }

  std::string label_;
  size_t query_cap_;
  MemoryPool* pool_;
  std::atomic<size_t> used_{0};
  std::atomic<size_t> peak_{0};
};

/// RAII charge holder: operators charge through the lease as they
/// materialize and the destructor releases every byte — error paths
/// included, which is the whole point. Thread-safe: workers of one sink
/// share a lease. A lease with a null budget charges nothing (the code
/// path runs outside any managed query).
class BudgetLease {
 public:
  explicit BudgetLease(std::shared_ptr<MemoryBudget> budget = nullptr)
      : budget_(std::move(budget)) {}
  ~BudgetLease() { ReleaseAll(); }

  BudgetLease(const BudgetLease&) = delete;
  BudgetLease& operator=(const BudgetLease&) = delete;

  Status Charge(size_t bytes) {
    if (budget_ == nullptr || bytes == 0) return Status::OK();
    PDT_RETURN_NOT_OK(budget_->Charge(bytes));
    held_.fetch_add(bytes, std::memory_order_relaxed);
    return Status::OK();
  }

  /// Returns `bytes` (clamped to what is held) to the budget early —
  /// the spill path's hook.
  void Release(size_t bytes) {
    if (budget_ == nullptr) return;
    size_t cur = held_.load(std::memory_order_relaxed);
    while (true) {
      const size_t give = bytes < cur ? bytes : cur;
      if (give == 0) return;
      if (held_.compare_exchange_weak(cur, cur - give,
                                      std::memory_order_relaxed)) {
        budget_->Release(give);
        return;
      }
    }
  }

  void ReleaseAll() {
    if (budget_ == nullptr) return;
    const size_t h = held_.exchange(0, std::memory_order_relaxed);
    if (h > 0) budget_->Release(h);
  }

  size_t held() const { return held_.load(std::memory_order_relaxed); }
  const std::shared_ptr<MemoryBudget>& budget() const { return budget_; }

 private:
  std::shared_ptr<MemoryBudget> budget_;
  std::atomic<size_t> held_{0};
};

// ---------------------------------------------------------------------
// Thread-local query context.
// ---------------------------------------------------------------------

/// What the executing query carries: its budget and its scheduling token
/// (the ThreadPool fairness lane). Installed on the query's own thread
/// by ScopedQueryContext; operator constructors read it there. Worker
/// threads never read the TLS — budgets reach them by captured pointer.
struct QueryContext {
  std::shared_ptr<MemoryBudget> budget;
  uint64_t token = 0;
  /// Directory for operator spills (join-build partitions); empty =
  /// fail fast with ResourceExhausted instead of spilling.
  std::string spill_dir;
};

/// The context installed on this thread (empty default context if none).
const QueryContext& CurrentQueryContext();
/// Shorthands.
std::shared_ptr<MemoryBudget> CurrentBudget();
uint64_t CurrentQueryToken();

/// Installs `ctx` for the current thread's scope; restores the previous
/// context on destruction (nests).
class ScopedQueryContext {
 public:
  explicit ScopedQueryContext(QueryContext ctx);
  ~ScopedQueryContext();

  ScopedQueryContext(const ScopedQueryContext&) = delete;
  ScopedQueryContext& operator=(const ScopedQueryContext&) = delete;

 private:
  QueryContext prev_;
};

}  // namespace pdtstore

#endif  // PDTSTORE_UTIL_MEM_BUDGET_H_

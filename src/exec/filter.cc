#include "exec/filter.h"

#include <algorithm>

namespace pdtstore {

void EvalConjunction(const std::vector<VecPredicate>& preds, const Batch& b,
                     KeepBitmap* keep, KeepBitmap* tmp) {
  const size_t n = b.num_rows();
  if (preds.empty()) {
    // The identity element of conjunction: an empty AND keeps all rows.
    keep->ResetAllSet(n);
    return;
  }
  keep->Reset(n);
  preds[0](b, keep);
  for (size_t p = 1; p < preds.size(); ++p) {
    if (keep->None()) return;  // conjunction already empty
    tmp->Reset(n);
    preds[p](b, tmp);
    keep->And(*tmp);
  }
}

StatusOr<bool> FilterNode::Next(Batch* out, size_t max_rows) {
  while (true) {
    PDT_ASSIGN_OR_RETURN(bool more, input_->Next(&in_, max_rows));
    if (!more) return false;
    EvalConjunction(predicates_, in_, &keep_, &tmp_);
    if (keep_.None()) continue;  // entirely filtered out: pull again
    if (keep_.All()) {
      // Everything survives: hand the input batch over without the
      // expand + gather pass (the all-ones word fast path's big win).
      std::swap(*out, in_);
      return true;
    }
    // Compact survivors column-wise: one typed kernel per column rather
    // than a type dispatch per surviving value.
    out->ResetLike(in_);
    out->set_start_rid(in_.start_rid());
    out->AppendFiltered(in_, keep_);
    return true;
  }
}

namespace {

// Evaluates `test(value) -> bool` run-at-a-time over a column carrying an
// RLE sidecar: one value test per run, then a word-wise SetRange fill of
// the kept rows (the bitmap arrives all-zero per the predicate contract).
// Run bounds are payload coordinates; the batch column may be a borrowed
// window starting at view_offset().
template <typename T, typename Test>
void EvalOverRuns(const ColumnVector& col, const T* v, size_t n,
                  const RleRuns& runs, KeepBitmap* keep, Test test) {
  const size_t voff = col.view_offset();
  auto it = std::upper_bound(runs.ends.begin(), runs.ends.end(), voff);
  size_t r = static_cast<size_t>(it - runs.ends.begin());
  size_t row = 0;
  while (row < n && r < runs.ends.size()) {
    const size_t run_end = std::min<size_t>(runs.ends[r] - voff, n);
    if (test(v[row])) keep->SetRange(row, run_end);
    row = run_end;
    ++r;
  }
}

}  // namespace

VecPredicate Int64Between(size_t idx, int64_t lo, int64_t hi) {
  return [idx, lo, hi](const Batch& b, KeepBitmap* keep) {
    const ColumnVector& col = b.column(idx);
    const int64_t* v = col.ints_data();
    const size_t n = col.size();
    if (const RleRuns* runs = col.rle_runs()) {
      EvalOverRuns(col, v, n, *runs, keep,
                   [&](int64_t x) { return x >= lo && x <= hi; });
      return;
    }
    keep->FillFrom([&](size_t i) { return v[i] >= lo && v[i] <= hi; });
  };
}

VecPredicate DoubleInRange(size_t idx, double lo, double hi) {
  return [idx, lo, hi](const Batch& b, KeepBitmap* keep) {
    const ColumnVector& col = b.column(idx);
    const double* v = col.doubles_data();
    const size_t n = col.size();
    if (const RleRuns* runs = col.rle_runs()) {
      EvalOverRuns(col, v, n, *runs, keep,
                   [&](double x) { return x >= lo && x < hi; });
      return;
    }
    keep->FillFrom([&](size_t i) { return v[i] >= lo && v[i] < hi; });
  };
}

VecPredicate StringEquals(size_t idx, std::string s) {
  return [idx, s = std::move(s)](const Batch& b, KeepBitmap* keep) {
    const ColumnVector& col = b.column(idx);
    if (col.is_dict()) {
      // Resolve the literal against the chunk dictionary once, then the
      // row loop is an integer compare over the code vector. No match in
      // the dictionary means no match in the batch (bitmap stays zero).
      const StringDict& d = *col.dict();
      uint32_t target = 0;
      bool found = false;
      for (uint32_t c = 0; c < d.values.size(); ++c) {
        if (d.values[c] == s) {
          target = c;
          found = true;
          break;
        }
      }
      if (!found) return;
      const uint32_t* codes = col.codes_data();
      keep->FillFrom([&](size_t i) { return codes[i] == target; });
      return;
    }
    const std::string* v = col.strings_data();
    keep->FillFrom([&](size_t i) { return v[i] == s; });
  };
}

VecPredicate StringMatch(size_t idx,
                         std::function<bool(const std::string&)> fn) {
  return [idx, fn = std::move(fn)](const Batch& b, KeepBitmap* keep) {
    const ColumnVector& col = b.column(idx);
    if (col.is_dict()) {
      // Evaluate the match once per distinct dictionary entry (a chunk
      // dictionary is much smaller than the chunk), then test codes
      // against the verdict table instead of re-running the string
      // predicate per row.
      const StringDict& d = *col.dict();
      std::vector<uint8_t> verdict(d.values.size());
      for (size_t c = 0; c < d.values.size(); ++c) {
        verdict[c] = fn(d.values[c]) ? 1 : 0;
      }
      const uint32_t* codes = col.codes_data();
      keep->FillFrom([&](size_t i) { return verdict[codes[i]] != 0; });
      return;
    }
    const std::string* v = col.strings_data();
    keep->FillFrom([&](size_t i) { return fn(v[i]); });
  };
}

// The combinator closures are shared read-only across pipeline workers
// (one FilterOp, many threads), so the fold scratch must be call-local
// — no mutable captured state.

VecPredicate And(std::vector<VecPredicate> preds) {
  return [preds = std::move(preds)](const Batch& b, KeepBitmap* keep) {
    KeepBitmap tmp;
    EvalConjunction(preds, b, keep, &tmp);
  };
}

VecPredicate Or(std::vector<VecPredicate> preds) {
  return [preds = std::move(preds)](const Batch& b, KeepBitmap* keep) {
    const size_t n = b.num_rows();
    if (preds.empty()) return;
    preds[0](b, keep);
    KeepBitmap tmp;
    for (size_t p = 1; p < preds.size(); ++p) {
      if (keep->All()) return;  // disjunction already saturated
      tmp.Reset(n);
      preds[p](b, &tmp);
      keep->Or(tmp);
    }
  };
}

}  // namespace pdtstore

#include "util/crc32c.h"

#include <array>

namespace pdtstore {

namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // Castagnoli, reflected

struct Crc32cTables {
  // tables[k][b]: CRC of byte b followed by k zero bytes — the standard
  // slicing construction (process 8 input bytes per iteration).
  uint32_t t[8][256];

  Crc32cTables() {
    for (uint32_t b = 0; b < 256; ++b) {
      uint32_t crc = b;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ (kPoly & (0u - (crc & 1u)));
      }
      t[0][b] = crc;
    }
    for (int k = 1; k < 8; ++k) {
      for (uint32_t b = 0; b < 256; ++b) {
        t[k][b] = (t[k - 1][b] >> 8) ^ t[0][t[k - 1][b] & 0xFF];
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const auto& t = Tables().t;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = ~crc;
  while (n >= 8) {
    c ^= static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
    c = t[7][c & 0xFF] ^ t[6][(c >> 8) & 0xFF] ^ t[5][(c >> 16) & 0xFF] ^
        t[4][c >> 24] ^ t[3][p[4]] ^ t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    c = (c >> 8) ^ t[0][(c ^ *p++) & 0xFF];
  }
  return ~c;
}

}  // namespace pdtstore

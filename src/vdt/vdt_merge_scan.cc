#include "vdt/vdt_merge_scan.h"

#include <algorithm>

#include "pdt/merge_scan.h"  // StableScanSource

namespace pdtstore {

VdtMergeScan::VdtMergeScan(const ColumnStore* store, const Vdt* vdt,
                           std::vector<ColumnId> projection,
                           std::vector<SidRange> ranges, KeyBounds bounds,
                           std::vector<Value> fence_lo,
                           std::vector<Value> fence_hi)
    : store_(store),
      vdt_(vdt),
      projection_(std::move(projection)),
      bounds_(std::move(bounds)),
      fence_lo_(std::move(fence_lo)),
      fence_hi_(std::move(fence_hi)) {
  // The value-based merge *must* scan the SK columns: build the widened
  // scan projection and remember where the SK / user columns land.
  scan_projection_ = projection_;
  for (ColumnId k : store_->schema().sort_key()) {
    if (std::find(scan_projection_.begin(), scan_projection_.end(), k) ==
        scan_projection_.end()) {
      scan_projection_.push_back(k);
    }
  }
  for (ColumnId k : store_->schema().sort_key()) {
    auto it = std::find(scan_projection_.begin(), scan_projection_.end(), k);
    sk_batch_idx_.push_back(
        static_cast<int>(it - scan_projection_.begin()));
  }
  for (ColumnId c : projection_) {
    auto it = std::find(scan_projection_.begin(), scan_projection_.end(), c);
    out_batch_idx_.push_back(
        static_cast<int>(it - scan_projection_.begin()));
  }
  stable_ = std::make_unique<StableScanSource>(store_, scan_projection_,
                                               std::move(ranges));
  proto_ = Batch::ForSchema(store_->schema(), projection_);
  ins_it_ = vdt_->inserts().begin();
  del_it_ = vdt_->deletes().begin();
  if (!bounds_.lo.empty()) {
    ins_it_ = vdt_->inserts().lower_bound(bounds_.lo);
    del_it_ = vdt_->deletes().lower_bound(bounds_.lo);
  }
  if (!fence_lo_.empty()) {
    // The stricter of user lo and morsel fence wins; both are lower
    // bounds over the same key-ordered maps, so the later iterator is
    // simply the one produced by the larger key.
    auto fi = vdt_->inserts().lower_bound(fence_lo_);
    if (ins_it_ != vdt_->inserts().end() &&
        (fi == vdt_->inserts().end() ||
         CompareTuples(ins_it_->first, fi->first) < 0)) {
      ins_it_ = fi;
    }
    auto fd = vdt_->deletes().lower_bound(fence_lo_);
    if (del_it_ != vdt_->deletes().end() &&
        (fd == vdt_->deletes().end() ||
         CompareTuples(del_it_->first, fd->first) < 0)) {
      del_it_ = fd;
    }
  }
}

int VdtMergeScan::CompareRowToKey(size_t row,
                                  const std::vector<Value>& key) const {
  const auto& sk_cols = store_->schema().sort_key();
  for (size_t k = 0; k < sk_cols.size() && k < key.size(); ++k) {
    const ColumnVector& col = buf_.column(sk_batch_idx_[k]);
    int c;
    switch (col.type()) {
      case TypeId::kInt64: {
        int64_t a = col.ints_data()[row], b = key[k].AsInt64();
        c = a < b ? -1 : (a > b ? 1 : 0);
        break;
      }
      case TypeId::kDouble: {
        double a = col.doubles_data()[row], b = key[k].AsDouble();
        c = a < b ? -1 : (a > b ? 1 : 0);
        break;
      }
      default: {
        int r = col.StringAt(row).compare(key[k].AsString());
        c = r < 0 ? -1 : (r > 0 ? 1 : 0);
        break;
      }
    }
    if (c != 0) return c;
  }
  return 0;
}

void VdtMergeScan::EmitStableRow(Batch* out, size_t row) {
  for (size_t i = 0; i < projection_.size(); ++i) {
    out->column(i).AppendFrom(buf_.column(out_batch_idx_[i]), row);
  }
}

void VdtMergeScan::EmitInsertTuple(Batch* out, const Tuple& t) {
  for (size_t i = 0; i < projection_.size(); ++i) {
    out->column(i).Append(t[projection_[i]]);
  }
}

bool VdtMergeScan::InsertInBounds(const std::vector<Value>& key) const {
  if (!fence_hi_.empty() && CompareTuples(key, fence_hi_) >= 0) {
    return false;  // beyond the morsel fence (exclusive)
  }
  if (!bounds_.hi.empty()) {
    std::vector<Value> prefix(key.begin(),
                              key.begin() + std::min(key.size(),
                                                     bounds_.hi.size()));
    if (CompareTuples(prefix, bounds_.hi) > 0) return false;
  }
  return true;
}

StatusOr<bool> VdtMergeScan::Next(Batch* out, size_t max_rows) {
  out->ResetLike(proto_);
  out->set_start_rid(out_rid_);

  const auto ins_end = vdt_->inserts().end();
  const auto del_end = vdt_->deletes().end();

  while (out->num_rows() < max_rows) {
    if (!input_done_ && buf_off_ >= buf_.num_rows()) {
      PDT_ASSIGN_OR_RETURN(bool more, stable_->Next(&buf_, max_rows));
      buf_off_ = 0;
      if (!more) {
        buf_ = Batch();
        input_done_ = true;
      }
    }
    const bool have_row = buf_off_ < buf_.num_rows();

    if (have_row) {
      // Fast path: no differential entries remain — bulk-copy the rest of
      // the batch (matches the no-updates scan; with entries present the
      // value-based merge must compare keys row by row, which is the cost
      // under study).
      if (ins_it_ == ins_end && del_it_ == del_end) {
        size_t run = std::min(buf_.num_rows() - buf_off_,
                              max_rows - out->num_rows());
        for (size_t i = 0; i < projection_.size(); ++i) {
          out->column(i).AppendRange(buf_.column(out_batch_idx_[i]),
                                     buf_off_, buf_off_ + run);
        }
        buf_off_ += run;
        out_rid_ += run;
        continue;
      }
      // MergeUnion step: emit pending inserts that precede this row.
      while (ins_it_ != ins_end &&
             CompareRowToKey(buf_off_, ins_it_->first) > 0 &&
             out->num_rows() < max_rows) {
        if (InsertInBounds(ins_it_->first)) {
          EmitInsertTuple(out, ins_it_->second);
          ++out_rid_;
        }
        ++ins_it_;
      }
      if (out->num_rows() >= max_rows) break;
      // Modified tuple: insert-table version replaces the stable row.
      if (ins_it_ != ins_end &&
          CompareRowToKey(buf_off_, ins_it_->first) == 0) {
        EmitInsertTuple(out, ins_it_->second);
        ++out_rid_;
        ++ins_it_;
        ++buf_off_;
        // Its deletion marker (if stable) is consumed alongside.
        while (del_it_ != del_end &&
               CompareTuples(del_it_->first, std::prev(ins_it_)->first) <= 0) {
          ++del_it_;
        }
        continue;
      }
      // MergeDiff step: drop the row if its key is marked deleted.
      while (del_it_ != del_end &&
             CompareRowToKey(buf_off_, del_it_->first) > 0) {
        ++del_it_;
      }
      if (del_it_ != del_end &&
          CompareRowToKey(buf_off_, del_it_->first) == 0) {
        ++del_it_;
        ++buf_off_;
        continue;
      }
      EmitStableRow(out, buf_off_);
      ++out_rid_;
      ++buf_off_;
      continue;
    }

    if (!input_done_) continue;

    // Stable exhausted: drain remaining inserts (within bounds). The map
    // is key-ordered, so the first insert past the fence / upper bound
    // ends the drain — a morsel never walks another morsel's entries.
    if (ins_it_ != ins_end) {
      if (!InsertInBounds(ins_it_->first)) break;
      EmitInsertTuple(out, ins_it_->second);
      ++out_rid_;
      ++ins_it_;
      continue;
    }
    break;
  }
  return out->num_rows() > 0;
}

}  // namespace pdtstore

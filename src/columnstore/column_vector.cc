#include "columnstore/column_vector.h"

#include <cassert>

namespace pdtstore {

size_t ColumnVector::size() const {
  switch (type_) {
    case TypeId::kInt64:
      return ints_.size();
    case TypeId::kDouble:
      return doubles_.size();
    case TypeId::kString:
      return strings_.size();
  }
  return 0;
}

void ColumnVector::Clear() {
  ints_.clear();
  doubles_.clear();
  strings_.clear();
}

void ColumnVector::Reserve(size_t n) {
  switch (type_) {
    case TypeId::kInt64:
      ints_.reserve(n);
      break;
    case TypeId::kDouble:
      doubles_.reserve(n);
      break;
    case TypeId::kString:
      strings_.reserve(n);
      break;
  }
}

void ColumnVector::Append(const Value& v) {
  assert(v.type() == type_);
  switch (type_) {
    case TypeId::kInt64:
      ints_.push_back(v.AsInt64());
      break;
    case TypeId::kDouble:
      doubles_.push_back(v.AsDouble());
      break;
    case TypeId::kString:
      strings_.push_back(v.AsString());
      break;
  }
}

void ColumnVector::AppendRun(const Value& v, size_t count) {
  for (size_t i = 0; i < count; ++i) Append(v);
}

void ColumnVector::AppendFrom(const ColumnVector& other, size_t i) {
  assert(other.type_ == type_);
  switch (type_) {
    case TypeId::kInt64:
      ints_.push_back(other.ints_[i]);
      break;
    case TypeId::kDouble:
      doubles_.push_back(other.doubles_[i]);
      break;
    case TypeId::kString:
      strings_.push_back(other.strings_[i]);
      break;
  }
}

void ColumnVector::AppendRange(const ColumnVector& other, size_t begin,
                               size_t end) {
  assert(other.type_ == type_);
  switch (type_) {
    case TypeId::kInt64:
      ints_.insert(ints_.end(), other.ints_.begin() + begin,
                   other.ints_.begin() + end);
      break;
    case TypeId::kDouble:
      doubles_.insert(doubles_.end(), other.doubles_.begin() + begin,
                      other.doubles_.begin() + end);
      break;
    case TypeId::kString:
      strings_.insert(strings_.end(), other.strings_.begin() + begin,
                      other.strings_.begin() + end);
      break;
  }
}

Value ColumnVector::GetValue(size_t i) const {
  switch (type_) {
    case TypeId::kInt64:
      return Value(ints_[i]);
    case TypeId::kDouble:
      return Value(doubles_[i]);
    case TypeId::kString:
      return Value(strings_[i]);
  }
  return Value();
}

void ColumnVector::SetValue(size_t i, const Value& v) {
  assert(v.type() == type_);
  switch (type_) {
    case TypeId::kInt64:
      ints_[i] = v.AsInt64();
      break;
    case TypeId::kDouble:
      doubles_[i] = v.AsDouble();
      break;
    case TypeId::kString:
      strings_[i] = v.AsString();
      break;
  }
}

int ColumnVector::CompareAt(size_t i, const ColumnVector& other,
                            size_t j) const {
  assert(other.type_ == type_);
  switch (type_) {
    case TypeId::kInt64: {
      int64_t a = ints_[i], b = other.ints_[j];
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case TypeId::kDouble: {
      double a = doubles_[i], b = other.doubles_[j];
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case TypeId::kString: {
      int c = strings_[i].compare(other.strings_[j]);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
  return 0;
}

size_t ColumnVector::ByteSize() const {
  switch (type_) {
    case TypeId::kInt64:
      return ints_.size() * 8;
    case TypeId::kDouble:
      return doubles_.size() * 8;
    case TypeId::kString: {
      size_t total = strings_.size() * sizeof(std::string);
      for (const auto& s : strings_) total += s.capacity();
      return total;
    }
  }
  return 0;
}

}  // namespace pdtstore

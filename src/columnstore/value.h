// Dynamically-typed scalar Value and row Tuple, used at API boundaries
// (updates, tests, examples). The hot scan/merge paths use typed
// ColumnVector storage instead.
#ifndef PDTSTORE_COLUMNSTORE_VALUE_H_
#define PDTSTORE_COLUMNSTORE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "columnstore/types.h"

namespace pdtstore {

/// A scalar value of one of the supported types.
class Value {
 public:
  Value() : v_(int64_t{0}) {}
  Value(int64_t v) : v_(v) {}                   // NOLINT
  Value(int v) : v_(static_cast<int64_t>(v)) {}  // NOLINT
  Value(double v) : v_(v) {}                    // NOLINT
  Value(std::string v) : v_(std::move(v)) {}    // NOLINT
  Value(const char* v) : v_(std::string(v)) {}  // NOLINT

  TypeId type() const {
    switch (v_.index()) {
      case 0:
        return TypeId::kInt64;
      case 1:
        return TypeId::kDouble;
      default:
        return TypeId::kString;
    }
  }

  int64_t AsInt64() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Three-way comparison; values must have the same type.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Debug rendering (strings quoted).
  std::string ToString() const;

  /// Approximate serialized size in bytes (for memory accounting).
  size_t ByteSize() const;

 private:
  std::variant<int64_t, double, std::string> v_;
};

/// A full row: one Value per schema column.
using Tuple = std::vector<Value>;

/// Lexicographic comparison of two equally-typed value sequences.
int CompareTuples(const std::vector<Value>& a, const std::vector<Value>& b);

/// Debug rendering of a tuple: "(a, b, c)".
std::string TupleToString(const Tuple& t);

}  // namespace pdtstore

#endif  // PDTSTORE_COLUMNSTORE_VALUE_H_

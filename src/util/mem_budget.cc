#include "util/mem_budget.h"

namespace pdtstore {

namespace {
thread_local QueryContext g_query_context;
}  // namespace

const QueryContext& CurrentQueryContext() { return g_query_context; }

std::shared_ptr<MemoryBudget> CurrentBudget() {
  return g_query_context.budget;
}

uint64_t CurrentQueryToken() { return g_query_context.token; }

ScopedQueryContext::ScopedQueryContext(QueryContext ctx)
    : prev_(std::move(g_query_context)) {
  g_query_context = std::move(ctx);
}

ScopedQueryContext::~ScopedQueryContext() {
  g_query_context = std::move(prev_);
}

}  // namespace pdtstore

// WAL unit tests: record encode/replay roundtrips for every record kind
// and value type, truncation, file persistence, and corruption handling.
#include "txn/wal.h"

#include <gtest/gtest.h>

namespace pdtstore {
namespace {

TEST(WalTest, RoundtripsAllRecordKinds) {
  Wal wal;
  wal.LogBegin(7);
  wal.LogInsert(7, "t", {int64_t{42}, 3.5, std::string("hi")});
  wal.LogModify(7, "t", {Value(42)}, 2, Value("patched"));
  wal.LogDelete(7, "t", {Value(42)});
  wal.LogCommit(7);
  wal.LogAbort(8);
  wal.LogCheckpoint("t");
  EXPECT_EQ(wal.RecordCount(), 7u);

  std::vector<WalRecord> records;
  ASSERT_TRUE(wal.Replay([&](const WalRecord& r) {
                   records.push_back(r);
                   return Status::OK();
                 })
                  .ok());
  ASSERT_EQ(records.size(), 7u);
  EXPECT_EQ(records[0].type, WalRecordType::kBegin);
  EXPECT_EQ(records[0].txn_id, 7u);
  EXPECT_EQ(records[1].type, WalRecordType::kInsert);
  ASSERT_EQ(records[1].tuple.size(), 3u);
  EXPECT_EQ(records[1].tuple[0], Value(42));
  EXPECT_DOUBLE_EQ(records[1].tuple[1].AsDouble(), 3.5);
  EXPECT_EQ(records[1].tuple[2], Value("hi"));
  EXPECT_EQ(records[2].type, WalRecordType::kModify);
  EXPECT_EQ(records[2].column, 2u);
  EXPECT_EQ(records[2].value, Value("patched"));
  EXPECT_EQ(records[3].type, WalRecordType::kDelete);
  EXPECT_EQ(records[3].key[0], Value(42));
  EXPECT_EQ(records[4].type, WalRecordType::kCommit);
  EXPECT_EQ(records[5].type, WalRecordType::kAbort);
  EXPECT_EQ(records[5].txn_id, 8u);
  EXPECT_EQ(records[6].type, WalRecordType::kCheckpoint);
  EXPECT_EQ(records[6].table, "t");
}

TEST(WalTest, LsnsAreMonotonic) {
  Wal wal;
  uint64_t a = wal.LogBegin(1);
  uint64_t b = wal.LogCommit(1);
  uint64_t c = wal.LogBegin(2);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(WalTest, TruncateEmptiesLog) {
  Wal wal;
  wal.LogBegin(1);
  wal.LogCommit(1);
  wal.Truncate();
  EXPECT_EQ(wal.SizeBytes(), 0u);
  EXPECT_EQ(wal.RecordCount(), 0u);
  int seen = 0;
  ASSERT_TRUE(wal.Replay([&](const WalRecord&) {
                   ++seen;
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(seen, 0);
}

TEST(WalTest, FileRoundtrip) {
  Wal wal;
  wal.LogBegin(1);
  wal.LogInsert(1, "accounts", {std::string("alice"), int64_t{100}});
  wal.LogCommit(1);
  std::string path = ::testing::TempDir() + "/wal_roundtrip.bin";
  ASSERT_TRUE(wal.WriteToFile(path).ok());
  Wal loaded;
  ASSERT_TRUE(loaded.LoadFromFile(path).ok());
  EXPECT_EQ(loaded.SizeBytes(), wal.SizeBytes());
  EXPECT_EQ(loaded.RecordCount(), 3u);
}

TEST(WalTest, MissingFileReportsIOError) {
  Wal wal;
  EXPECT_EQ(wal.LoadFromFile("/nonexistent/path/wal.bin").code(),
            StatusCode::kIOError);
}

TEST(WalTest, ReplayCallbackErrorPropagates) {
  Wal wal;
  wal.LogBegin(1);
  wal.LogCommit(1);
  Status st = wal.Replay([](const WalRecord& r) {
    if (r.type == WalRecordType::kCommit) {
      return Status::Internal("stop");
    }
    return Status::OK();
  });
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

TEST(WalTest, NegativeAndExtremeValuesRoundtrip) {
  Wal wal;
  wal.LogInsert(1, "t",
                {int64_t{-1}, int64_t{INT64_MIN}, int64_t{INT64_MAX},
                 -0.0, 1e-300, std::string()});
  std::vector<WalRecord> records;
  ASSERT_TRUE(wal.Replay([&](const WalRecord& r) {
                   records.push_back(r);
                   return Status::OK();
                 })
                  .ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].tuple[0], Value(int64_t{-1}));
  EXPECT_EQ(records[0].tuple[1], Value(int64_t{INT64_MIN}));
  EXPECT_EQ(records[0].tuple[2], Value(int64_t{INT64_MAX}));
  EXPECT_DOUBLE_EQ(records[0].tuple[3].AsDouble(), -0.0);
  EXPECT_DOUBLE_EQ(records[0].tuple[4].AsDouble(), 1e-300);
  EXPECT_EQ(records[0].tuple[5], Value(""));
}

}  // namespace
}  // namespace pdtstore

// Differential fuzzing utilities: seeded generators for random tables,
// hostile PDT/VDT update workloads, multi-layer transaction stacks and
// random operator plans (filter / project / join / agg / sort /
// exchange). Every generated plan is executed twice from the same seed
// — once as the serial operator tree, once as a parallel pipeline at a
// given thread count — and the results compared: exact sequence where
// the engine promises it, multiset otherwise. All decisions derive from
// the seed alone, so a failing seed is a one-line repro.
#ifndef PDTSTORE_TESTS_FUZZ_UTIL_H_
#define PDTSTORE_TESTS_FUZZ_UTIL_H_

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "db/table.h"
#include "exec/filter.h"
#include "exec/hash_agg.h"
#include "exec/hash_join.h"
#include "exec/pipeline.h"
#include "exec/project.h"
#include "exec/sort.h"
#include "txn/txn_manager.h"
#include "util/random.h"

namespace pdtstore {
namespace testutil {

/// Fuzz schema: int64 sort key + int64 / double / string payloads, so
/// every TypeId flows through every operator.
inline std::shared_ptr<const Schema> FuzzSchema() {
  auto s = Schema::Make({{"k", TypeId::kInt64},
                         {"v", TypeId::kInt64},
                         {"d", TypeId::kDouble},
                         {"s", TypeId::kString}},
                        {0});
  return std::make_shared<const Schema>(std::move(*s));
}

inline Tuple FuzzRow(int64_t key, Random* rng) {
  return {key, static_cast<int64_t>(rng->Uniform(1000)),
          static_cast<double>(rng->Uniform(1 << 20)) * 0.25,
          rng->NextString(1 + rng->Uniform(6))};
}

/// A randomly built, randomly updated table. Keys are spaced so inserts
/// land between stable rows; a fraction of iterations gets hostile
/// extras (long delete chains that empty whole morsels, modify churn on
/// one region) on top of the uniform mix.
inline std::unique_ptr<Table> MakeFuzzTable(Random* rng,
                                            DeltaBackend backend,
                                            uint64_t min_rows,
                                            uint64_t max_rows,
                                            bool encoded_exec = true) {
  const int64_t n =
      static_cast<int64_t>(min_rows + rng->Uniform(max_rows - min_rows + 1));
  TableOptions opts;
  opts.backend = backend;
  const size_t chunk_choices[] = {32, 64, 128, 256};
  opts.store.chunk_rows = chunk_choices[rng->Uniform(4)];
  opts.pdt.fanout = 4 + 4 * rng->Uniform(3);  // 4 / 8 / 12
  // Compressed execution vs the decoded differential reference. The
  // flag is a caller decision, not an rng draw, so copying the Random
  // builds a byte-identical twin table in the other representation.
  opts.store.encoded_exec = encoded_exec;
  if (rng->Bernoulli(0.5)) {
    // Half the tables force a per-column encoding mix (unsupported
    // picks fall back to plain inside BuildChunkForced) so RLE run
    // sidecars and dictionary code paths fuzz even where the size
    // heuristics would choose differently.
    const Encoding choices[] = {Encoding::kPlain, Encoding::kRle,
                                Encoding::kDict, Encoding::kForBitPack};
    for (int c = 0; c < 4; ++c) {
      opts.store.forced_encodings.push_back(choices[rng->Uniform(4)]);
    }
  }
  auto table = std::make_unique<Table>("fuzz", FuzzSchema(), opts);
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (int64_t i = 0; i < n; ++i) rows.push_back(FuzzRow(i * 4, rng));
  if (!table->Load(rows).ok()) return nullptr;

  const int ops = static_cast<int>(rng->Uniform(4 * n / 10 + 1));
  for (int i = 0; i < ops; ++i) {
    const double d = rng->NextDouble();
    const int64_t key = static_cast<int64_t>(rng->Uniform(4 * n + 8));
    if (d < 0.4) {
      (void)table->Insert(FuzzRow(key, rng));
    } else if (d < 0.7) {
      (void)table->DeleteByKey({Value(key)});
    } else {
      const ColumnId col = 1 + static_cast<ColumnId>(rng->Uniform(3));
      Value v = col == 1 ? Value(static_cast<int64_t>(rng->Uniform(1000)))
                : col == 2
                    ? Value(static_cast<double>(rng->Uniform(1000)) * 0.5)
                    : Value(rng->NextString(1 + rng->Uniform(5)));
      (void)table->ModifyByKey({Value(key)}, col, v);
    }
  }
  if (backend == DeltaBackend::kPdt && rng->Bernoulli(0.35)) {
    // Hostile extras: a delete chain long enough to empty whole
    // morsels, then inserts into the ghost range and modify churn
    // around it (the pdt_stress patterns).
    const uint64_t cnt = table->RowCount();
    if (cnt > 40) {
      const Rid at = rng->Uniform(cnt / 2);
      const uint64_t chain = 20 + rng->Uniform(cnt / 2 - 20 + 1);
      for (uint64_t i = 0; i < chain && table->RowCount() > 1; ++i) {
        (void)table->DeleteAt(at);
      }
      for (int i = 0; i < 8; ++i) {
        (void)table->Insert(
            FuzzRow(static_cast<int64_t>(rng->Uniform(4 * n + 8)), rng));
        (void)table->ModifyAt(rng->Uniform(table->RowCount()), 1,
                              Value(static_cast<int64_t>(i)));
      }
    }
  }
  return table;
}

/// What one fuzz iteration scans: a bare table, or the table through an
/// open transaction atop committed ones (a 3-layer Read/Write/Trans
/// stack). Owns everything so scans stay valid for the iteration.
struct FuzzSource {
  std::unique_ptr<Table> table;
  std::unique_ptr<TxnManager> mgr;      // set iff scanning through a txn
  std::unique_ptr<Transaction> txn;

  std::unique_ptr<BatchSource> Scan(const std::vector<ColumnId>& cols,
                                    const ScanOptions& so) const {
    return txn ? txn->Scan(cols, nullptr, so)
               : table->Scan(cols, nullptr, so);
  }
  MorselPlan PlanMorsels(const std::vector<ColumnId>& cols,
                         const ScanOptions& so) const {
    return txn ? txn->PlanMorsels(cols, nullptr, so)
               : table->PlanMorsels(cols, nullptr, so);
  }
};

/// Builds the iteration's scan source: PDT (sometimes through a txn
/// stack) or VDT backend.
inline FuzzSource MakeFuzzSource(Random* rng, bool encoded_exec = true) {
  FuzzSource src;
  const double pick = rng->NextDouble();
  if (pick < 0.2) {
    src.table =
        MakeFuzzTable(rng, DeltaBackend::kVdt, 200, 700, encoded_exec);
    return src;
  }
  src.table = MakeFuzzTable(rng, DeltaBackend::kPdt, 200, 900, encoded_exec);
  if (pick < 0.55 && src.table != nullptr) {
    // Multi-layer stack: one committed transaction (propagated into the
    // Read/Write layers), then an open one whose Trans-PDT the scan
    // also merges.
    src.mgr = std::make_unique<TxnManager>(src.table.get());
    {
      auto setup = src.mgr->Begin();
      const int ops = 20 + static_cast<int>(rng->Uniform(60));
      for (int i = 0; i < ops; ++i) {
        const int64_t key = static_cast<int64_t>(rng->Uniform(4000));
        if (rng->Bernoulli(0.5)) {
          (void)setup->Insert(FuzzRow(key, rng));
        } else {
          (void)setup->DeleteByKey({Value(key)});
        }
      }
      (void)setup->Commit();
    }
    src.txn = src.mgr->Begin();
    const int ops = 10 + static_cast<int>(rng->Uniform(50));
    for (int i = 0; i < ops; ++i) {
      const int64_t key = static_cast<int64_t>(rng->Uniform(4000));
      if (rng->Bernoulli(0.5)) {
        (void)src.txn->Insert(FuzzRow(key, rng));
      } else {
        (void)src.txn->ModifyByKey(
            {Value(key)}, 1, Value(static_cast<int64_t>(rng->Uniform(99))));
      }
    }
  }
  return src;
}

// ---------------------------------------------------------------------
// Random plans.
// ---------------------------------------------------------------------

/// One random plan, decided entirely by `plan_seed`. Executing it with
/// threads == 1 builds the serial operator tree, threads > 1 the
/// parallel pipeline — same decisions either way.
struct FuzzPlanResult {
  std::vector<Tuple> rows;
  /// The engine promises the exact serial sequence (ordered exchange or
  /// deterministic sort); otherwise compare as multisets.
  bool exact = false;
  Status status = Status::OK();
};

namespace fuzz_internal {

inline VecPredicate RandomPredicate(Random* rng) {
  switch (rng->Uniform(4)) {
    case 0: {
      const int64_t m = 2 + static_cast<int64_t>(rng->Uniform(5));
      return [m](const Batch& b, KeepBitmap* keep) {
        const int64_t* v = b.column(1).ints_data();
        keep->FillFrom([&](size_t i) { return v[i] % m == 0; });
      };
    }
    case 1: {
      const int64_t lo = static_cast<int64_t>(rng->Uniform(2000));
      return Int64Between(0, lo, lo + 1 + rng->UniformRange(0, 3000));
    }
    case 2: {
      const double hi = static_cast<double>(rng->Uniform(1 << 19));
      return DoubleInRange(2, 0.0, hi);
    }
    default: {
      const char c = static_cast<char>('a' + rng->Uniform(26));
      // Half the time through the dict-aware StringMatch helper (one
      // verdict per distinct entry on dictionary columns), half through
      // a raw per-row lambda over StringAt.
      if (rng->Bernoulli(0.5)) {
        return StringMatch(3, [c](const std::string& s) {
          return !s.empty() && s[0] <= c;
        });
      }
      return [c](const Batch& b, KeepBitmap* keep) {
        const ColumnVector& col = b.column(3);
        keep->FillFrom([&](size_t i) {
          const std::string& s = col.StringAt(i);
          return !s.empty() && s[0] <= c;
        });
      };
    }
  }
}

/// Projection to (k, v % m, d): fixed output layout so later stages can
/// rely on column types; drops the string column half the time the plan
/// uses it, exercising layout changes mid-pipeline.
inline std::vector<ColumnExpr> RandomProjection(Random* rng) {
  const int64_t m = 3 + static_cast<int64_t>(rng->Uniform(17));
  return {ColumnRef(0),
          [m](const Batch& b) {
            ColumnVector out(TypeId::kInt64);
            const size_t n = b.column(1).size();
            const int64_t* v = b.column(1).ints_data();
            auto& vals = out.ints();
            vals.resize(n);
            for (size_t i = 0; i < n; ++i) vals[i] = v[i] % m;
            return out;
          },
          ColumnRef(2)};
}

}  // namespace fuzz_internal

/// Runs the plan derived from `plan_seed` over `src` (and `build`, the
/// second table joins draw their build side from) at `threads`.
inline FuzzPlanResult RunFuzzPlan(uint64_t plan_seed, const FuzzSource& src,
                                  Table* build_table, int threads,
                                  bool zone_hints = true) {
  using fuzz_internal::RandomPredicate;
  using fuzz_internal::RandomProjection;
  Random rng(plan_seed);
  FuzzPlanResult result;

  ScanOptions so;
  so.num_threads = threads;
  const size_t morsel_choices[] = {0, 48, 64, 100, 256};
  so.morsel_rows = morsel_choices[rng.Uniform(5)];
  const bool ordered = rng.Bernoulli(0.5);
  so.ordered = ordered;

  // Zone-map pruning fuzz: sometimes pair an inclusive key-range
  // predicate with the matching ScanOptions hint so whole chunks get
  // skipped. The rng draws happen unconditionally so a reference run
  // with zone_hints == false makes identical plan decisions but scans
  // every chunk — any result difference is a pruning bug.
  bool zoned = false;
  int64_t zlo = 0, zhi = 0;
  if (rng.Bernoulli(0.35)) {
    zoned = true;
    zlo = static_cast<int64_t>(rng.Uniform(2000));
    zhi = zlo + 1 + static_cast<int64_t>(rng.UniformRange(0, 3000));
    if (zone_hints) {
      so.zone_filters.push_back({0, Value(zlo), Value(zhi)});
    }
  }

  const std::vector<ColumnId> cols{0, 1, 2, 3};
  // Serial tree at 1 thread, pipeline otherwise — mirroring how the
  // TPC-H kernels pick their shape.
  const bool parallel = threads > 1;
  std::unique_ptr<BatchSource> serial;
  std::unique_ptr<Pipeline> pipe;
  if (parallel) {
    pipe = std::make_unique<Pipeline>(src.PlanMorsels(cols, so));
  } else {
    serial = src.Scan(cols, so);
  }
  auto add_filter = [&](VecPredicate p) {
    if (parallel) {
      pipe->Filter(std::move(p));
    } else {
      serial = std::make_unique<FilterNode>(std::move(serial), std::move(p));
    }
  };
  auto add_project = [&](std::vector<ColumnExpr> e) {
    if (parallel) {
      pipe->Project(std::move(e));
    } else {
      serial =
          std::make_unique<ProjectNode>(std::move(serial), std::move(e));
    }
  };

  // The predicate that justifies the pruning hint goes first so the
  // hint is always implied by the plan's filters.
  if (zoned) add_filter(Int64Between(0, zlo, zhi));

  // Multi-predicate filters: the serial tree chains one FilterNode per
  // predicate (materializing each intermediate), while stacked
  // Pipeline::Filter calls fuse into one word-wise bitmap conjunction
  // with a single compaction — the differential check proves the fused
  // path equivalent. Occasionally the predicates arrive pre-combined
  // through And()/Or() so those fold paths fuzz too.
  if (rng.Bernoulli(0.6)) {
    const uint64_t nfilters = 1 + rng.Uniform(3);  // 1..3 stacked filters
    for (uint64_t f = 0; f < nfilters; ++f) {
      add_filter(RandomPredicate(&rng));
    }
  } else if (rng.Bernoulli(0.3)) {
    std::vector<VecPredicate> preds;
    preds.push_back(RandomPredicate(&rng));
    preds.push_back(RandomPredicate(&rng));
    add_filter(rng.Bernoulli(0.5) ? And(std::move(preds))
                                  : Or(std::move(preds)));
  }
  bool projected = false;
  if (rng.Bernoulli(0.5)) {
    add_project(RandomProjection(&rng));
    projected = true;
  }

  bool inner_join = false;
  if (build_table != nullptr && rng.Bernoulli(0.45)) {
    // Build side: the second table's (v % m, k) so build keys repeat.
    const int64_t m = 2 + static_cast<int64_t>(rng.Uniform(30));
    std::vector<ColumnExpr> build_exprs{
        [m](const Batch& b) {
          ColumnVector out(TypeId::kInt64);
          const size_t n = b.column(1).size();
          const int64_t* v = b.column(1).ints_data();
          auto& vals = out.ints();
          vals.resize(n);
          for (size_t i = 0; i < n; ++i) vals[i] = v[i] % m;
          return out;
        },
        ColumnRef(0)};
    const JoinKind kinds[] = {JoinKind::kInner, JoinKind::kLeftSemi,
                              JoinKind::kLeftAnti};
    const JoinKind kind = kinds[rng.Uniform(3)];
    inner_join = kind == JoinKind::kInner;
    const size_t part_choices[] = {0, 1, 2, 16};
    const size_t partitions = part_choices[rng.Uniform(4)];
    // Probe key: an int column of the current layout; project the probe
    // payload into the same modulus so matches are plentiful.
    const size_t probe_key = 1;
    auto probe_exprs = [&]() -> std::vector<ColumnExpr> {
      return {ColumnRef(0),
              [m](const Batch& b) {
                ColumnVector out(TypeId::kInt64);
                const size_t n = b.column(1).size();
                const int64_t* v = b.column(1).ints_data();
                auto& vals = out.ints();
                vals.resize(n);
                for (size_t i = 0; i < n; ++i) vals[i] = v[i] % m;
                return out;
              },
              ColumnRef(2)};
    };
    add_project(probe_exprs());
    projected = true;
    const std::vector<ColumnId> bcols{0, 1};
    std::shared_ptr<JoinBuildHandle> handle;
    if (parallel) {
      ScanOptions bso = so;
      // The zone hint is justified by the probe side's key predicate;
      // the build scan has no such filter, so pruning there would be
      // an unsound (contract-violating) hint.
      bso.zone_filters.clear();
      auto bpipe =
          std::make_unique<Pipeline>(build_table->PlanMorsels(bcols, nullptr,
                                                              bso));
      bpipe->Project(build_exprs);
      handle = Pipeline::IntoJoinBuild(std::move(bpipe), {0}, partitions);
      pipe->Probe(handle, {probe_key}, kind);
    } else {
      handle = std::make_shared<JoinBuildHandle>(
          std::make_unique<ProjectNode>(build_table->Scan(bcols),
                                        build_exprs),
          std::vector<size_t>{0});
      serial = std::make_unique<HashJoinNode>(
          std::move(serial), std::move(handle),
          std::vector<size_t>{probe_key}, kind);
    }
  }

  // Terminal: exchange, aggregation, or sort.
  std::unique_ptr<BatchSource> out;
  const uint64_t terminal = rng.Uniform(3);
  if (terminal == 0) {
    out = parallel ? std::move(*pipe).Exchange() : std::move(serial);
    // Ordered exchange replays the serial sequence, except that a
    // parallel partitioned inner join may permute duplicate matches
    // within one probe row.
    result.exact = ordered && !inner_join;
  } else if (terminal == 1) {
    // Aggregate int columns only: double accumulators over integers are
    // exact, so parallel merge order cannot perturb the values.
    std::vector<size_t> group_by;
    if (rng.Bernoulli(0.8)) group_by.push_back(1);
    std::vector<AggSpec> aggs{{AggKind::kCount, 0}};
    const AggKind kinds[] = {AggKind::kSum, AggKind::kMin, AggKind::kMax,
                             AggKind::kAvg};
    aggs.push_back({kinds[rng.Uniform(4)], projected ? 1u : 0u});
    out = parallel
              ? std::move(*pipe).Aggregate(group_by, aggs)
              : std::make_unique<HashAggNode>(std::move(serial), group_by,
                                              aggs);
    result.exact = false;  // group order differs across workers
  } else {
    std::vector<SortKey> keys{{rng.Uniform(2) == 0 ? 1u : 0u,
                               rng.Bernoulli(0.5)}};
    if (rng.Bernoulli(0.4)) keys.push_back({2, rng.Bernoulli(0.5)});
    const size_t limit =
        (!inner_join && rng.Bernoulli(0.3)) ? 1 + rng.Uniform(40) : 0;
    out = parallel
              ? std::move(*pipe).IntoSortBuild(keys, limit)
              : std::make_unique<SortNode>(std::move(serial), keys, limit);
    // The sort's (keys, source-order) tie-break reproduces the serial
    // stable sort exactly unless an inner join's duplicate matches
    // permuted the source order within a tie group.
    result.exact = !inner_join;
  }

  auto rows = CollectRows(out.get());
  if (!rows.ok()) {
    result.status = rows.status();
  } else {
    result.rows = std::move(*rows);
  }
  return result;
}

inline void SortTuples(std::vector<Tuple>* rows) {
  std::sort(rows->begin(), rows->end(), [](const Tuple& a, const Tuple& b) {
    return CompareTuples(a, b) < 0;
  });
}

}  // namespace testutil
}  // namespace pdtstore

#endif  // PDTSTORE_TESTS_FUZZ_UTIL_H_

// Interactive mini-shell over pdtstore: create ordered tables, run
// updates through the PDT, scan merged images, inspect the PDT state and
// checkpoint — a REPL for exploring positional update handling.
//
//   $ ./example_shell
//   pdt> create products category:str name:str price:int key category,name
//   pdt> insert products chairs stool 29
//   pdt> select products
//   pdt> pdt products
//   pdt> checkpoint products
//   pdt> help
//
// Commands read whitespace-separated tokens; string values are bare
// words, integer columns parse as int64.
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "db/database.h"
#include "exec/shared_scan.h"
#include "exec/workload.h"
#include "tpch/htap_driver.h"  // LatencyPercentile
#include "util/stopwatch.h"

using namespace pdtstore;

namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string t;
  while (in >> t) tokens.push_back(t);
  return tokens;
}

StatusOr<Value> ParseValue(const Schema& schema, ColumnId col,
                           const std::string& text) {
  switch (schema.column(col).type) {
    case TypeId::kInt64: {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(text.c_str(), &end, 10);
      if (errno != 0 || end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("not an integer: " + text);
      }
      return Value(static_cast<int64_t>(v));
    }
    case TypeId::kDouble:
      return Value(std::strtod(text.c_str(), nullptr));
    case TypeId::kString:
      return Value(text);
  }
  return Status::InvalidArgument("unknown type");
}

StatusOr<std::vector<Value>> ParseKey(const Schema& schema,
                                      const std::vector<std::string>& tokens,
                                      size_t from) {
  const auto& sk = schema.sort_key();
  if (tokens.size() - from != sk.size()) {
    return Status::InvalidArgument("expected one value per key column");
  }
  std::vector<Value> key;
  for (size_t i = 0; i < sk.size(); ++i) {
    PDT_ASSIGN_OR_RETURN(Value v,
                         ParseValue(schema, sk[i], tokens[from + i]));
    key.push_back(std::move(v));
  }
  return key;
}

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  create <table> <name:type>... key <col>[,<col>...]   type: str|int|dbl\n"
      "  load <table> <ntuples-of-values...>   bulk rows, row-major\n"
      "  insert <table> <value>...\n"
      "  delete <table> <key-value>...\n"
      "  modify <table> <column-name> <new-value> <key-value>...\n"
      "  select <table>            scan the merged image\n"
      "  count  <table>\n"
      "  pdt    <table>            dump the PDT / delta state\n"
      "  io                        buffer-pool statistics\n"
      "  checkpoint <table>\n"
      "  tables\n"
      "  .threads [N]              scan worker threads for select\n"
      "                            (1 = serial; shows current when bare)\n"
      "  .workload [C [MB]]        admission control: C concurrent queries,\n"
      "                            optional per-query memory cap in MiB\n"
      "                            (bare shows the current configuration)\n"
      "  .open <dir>               open (or create) a persistent database;\n"
      "                            replays its WAL and continues where it left off\n"
      "  .save                     durable checkpoint of the open database\n"
      "                            (atomic manifest swap, then WAL truncation)\n"
      "  .stats                    write-path statistics: per-table PDT layer\n"
      "                            sizes, pending deltas, WAL syncs/txn,\n"
      "                            buffer-pool I/O counters, workload manager\n"
      "                            and shared-scan hub counters, and this\n"
      "                            shell's reader/writer latency\n"
      "  help | quit\n");
}

class Shell {
 public:
  int Run() {
    std::printf("pdtstore shell — 'help' for commands\n");
    std::string line;
    while (true) {
      std::printf("pdt> ");
      std::fflush(stdout);
      if (!std::getline(std::cin, line)) break;
      auto tokens = Tokenize(line);
      if (tokens.empty()) continue;
      if (tokens[0] == "quit" || tokens[0] == "exit") break;
      Status st = Dispatch(tokens);
      if (!st.ok()) std::printf("error: %s\n", st.ToString().c_str());
    }
    return 0;
  }

 private:
  Status Dispatch(const std::vector<std::string>& t) {
    const std::string& cmd = t[0];
    if (cmd == "help") {
      PrintHelp();
      return Status::OK();
    }
    if (cmd == "tables") {
      for (const auto& name : db_->TableNames()) {
        Table* tbl = *db_->GetTable(name);
        std::printf("  %s(%s)  rows=%llu delta=%zu entries\n", name.c_str(),
                    tbl->schema().ToString().c_str(),
                    static_cast<unsigned long long>(tbl->RowCount()),
                    tbl->pdt() ? tbl->pdt()->EntryCount() : 0);
      }
      return Status::OK();
    }
    if (cmd == ".threads") {
      if (t.size() < 2) {
        std::printf("  threads=%d (hardware: %d)\n", threads_,
                    ThreadPool::DefaultThreads());
        return Status::OK();
      }
      errno = 0;
      char* end = nullptr;
      long v = std::strtol(t[1].c_str(), &end, 10);
      if (errno != 0 || end == t[1].c_str() || *end != '\0' || v < 1 ||
          v > 256) {
        return Status::InvalidArgument("usage: .threads <1..256>");
      }
      threads_ = static_cast<int>(v);
      std::printf("  threads=%d%s\n", threads_,
                  threads_ > 1 ? " (selects run the parallel pipeline)"
                               : " (serial)");
      return Status::OK();
    }
    if (cmd == ".workload") {
      WorkloadManager& wm = WorkloadManager::Global();
      if (t.size() < 2) {
        const WorkloadOptions& o = wm.options();
        std::printf("  max_concurrent=%d (0 = 2x hardware) "
                    "per_query_cap=%zu MiB (0 = uncapped)\n",
                    o.max_concurrent, o.per_query_memory_cap >> 20);
        return Status::OK();
      }
      errno = 0;
      char* end = nullptr;
      long c = std::strtol(t[1].c_str(), &end, 10);
      if (errno != 0 || end == t[1].c_str() || *end != '\0' || c < 0) {
        return Status::InvalidArgument("usage: .workload [C [MB]]");
      }
      WorkloadOptions o = wm.options();
      o.max_concurrent = static_cast<int>(c);
      if (t.size() > 2) {
        long mb = std::strtol(t[2].c_str(), nullptr, 10);
        if (mb < 0) return Status::InvalidArgument("usage: .workload [C [MB]]");
        o.per_query_memory_cap = static_cast<size_t>(mb) << 20;
      }
      wm.Configure(o);
      std::printf("  workload reconfigured\n");
      return Status::OK();
    }
    if (cmd == ".open") {
      if (t.size() != 2) return Status::InvalidArgument("usage: .open <dir>");
      PDT_ASSIGN_OR_RETURN(auto db, Database::Open(t[1]));
      db_ = std::move(db);
      if (db_->read_only()) {
        std::printf("  WARNING: opened read-only: %s\n",
                    db_->recovery_status().ToString().c_str());
      }
      std::printf("  opened %s (%zu tables, wal records=%zu)\n",
                  t[1].c_str(), db_->TableNames().size(),
                  db_->wal() != nullptr ? db_->wal()->RecordCount() : 0);
      return Status::OK();
    }
    if (cmd == ".save") {
      PDT_RETURN_NOT_OK(db_->Save());
      std::printf("  checkpoint committed\n");
      return Status::OK();
    }
    if (cmd == ".stats") {
      for (const auto& name : db_->TableNames()) {
        Table* tbl = *db_->GetTable(name);
        TxnManager* mgr = db_->FindTxn(name);
        if (mgr == nullptr) {
          // No transactions ran against this table yet.
          std::printf("  %-16s read_pdt=%zu (no transaction manager)\n",
                      name.c_str(),
                      tbl->pdt() != nullptr ? tbl->pdt()->EntryCount() : 0);
          continue;
        }
        TxnManagerStats s = mgr->GetStats();
        std::printf(
            "  %-16s read_pdt=%zu write_pdt=%zu merge_pending=%zu%s\n"
            "    txns: committed=%llu aborted=%llu active=%zu\n"
            "    write path: pending_deltas=%zu fold_batches=%llu "
            "folded=%llu bg_merges=%llu lock_us/commit=%.2f\n",
            name.c_str(), s.read_pdt_entries, s.write_pdt_entries,
            s.merge_pending_entries, s.merge_inflight ? " (merging)" : "",
            static_cast<unsigned long long>(s.committed),
            static_cast<unsigned long long>(s.aborted), s.active,
            s.pending_deltas,
            static_cast<unsigned long long>(s.fold_batches),
            static_cast<unsigned long long>(s.folded_records),
            static_cast<unsigned long long>(s.background_merges),
            s.committed > 0
                ? static_cast<double>(s.commit_lock_ns) / 1e3 /
                      static_cast<double>(s.committed)
                : 0.0);
        if (!s.last_merge_error.ok()) {
          // A failed background merge parks its layer until a
          // quiet-point fold; without this line the failure is
          // invisible and merge_pending just keeps growing.
          std::printf("    merge error: %s\n",
                      s.last_merge_error.message().c_str());
        }
        if (s.wal_records > 0 || s.wal_syncs > 0) {
          const uint64_t txns = s.committed + s.aborted;
          std::printf("    wal: records=%llu syncs=%llu syncs/txn=%.3f\n",
                      static_cast<unsigned long long>(s.wal_records),
                      static_cast<unsigned long long>(s.wal_syncs),
                      txns > 0 ? static_cast<double>(s.wal_syncs) /
                                     static_cast<double>(txns)
                               : 0.0);
        }
      }
      const IoStats& io = db_->io_stats();
      std::printf("  buffer pool: bytes_read=%llu chunks_read=%llu "
                  "hits=%llu\n",
                  static_cast<unsigned long long>(io.bytes_read),
                  static_cast<unsigned long long>(io.chunks_read),
                  static_cast<unsigned long long>(io.hits));
      WorkloadStats ws = WorkloadManager::Global().GetStats();
      std::printf("  workload: admitted=%llu completed=%llu rejected=%llu "
                  "active=%llu queued=%llu (peak %llu)\n"
                  "    memory: used=%zu peak=%zu cap=%s\n",
                  static_cast<unsigned long long>(ws.admitted),
                  static_cast<unsigned long long>(ws.completed),
                  static_cast<unsigned long long>(ws.rejected),
                  static_cast<unsigned long long>(ws.active),
                  static_cast<unsigned long long>(ws.queued),
                  static_cast<unsigned long long>(ws.queued_peak),
                  ws.memory_used, ws.memory_peak,
                  ws.memory_cap > 0 ? std::to_string(ws.memory_cap).c_str()
                                    : "unlimited");
      SharedScanHubStats ss = SharedScanHub::Global().GetStats();
      std::printf("  shared scans: streams=%llu attaches=%llu "
                  "ride_alongs=%llu\n",
                  static_cast<unsigned long long>(ss.streams_created),
                  static_cast<unsigned long long>(ss.attaches),
                  static_cast<unsigned long long>(ss.ride_alongs));
      PrintLatency("reads (select/count)", read_lat_ms_);
      PrintLatency("writes (commits)", write_lat_ms_);
      return Status::OK();
    }
    if (cmd == "io") {
      const IoStats& io = db_->io_stats();
      std::printf("  bytes_read=%llu chunks_read=%llu hits=%llu\n",
                  static_cast<unsigned long long>(io.bytes_read),
                  static_cast<unsigned long long>(io.chunks_read),
                  static_cast<unsigned long long>(io.hits));
      return Status::OK();
    }
    if (t.size() < 2) return Status::InvalidArgument("missing table name");
    if (cmd == "create") return Create(t);
    PDT_ASSIGN_OR_RETURN(Table * table, db_->GetTable(t[1]));
    // End-to-end command latency, recorded per side so `.stats` can
    // show the HTAP picture: reads (scans) against writes (commits).
    auto timed = [](std::vector<double>* lat, auto&& fn) {
      Stopwatch sw;
      Status st = fn();
      if (st.ok()) lat->push_back(sw.ElapsedMillis());
      return st;
    };
    if (cmd == "load") {
      return timed(&write_lat_ms_, [&] { return Load(table, t); });
    }
    if (cmd == "insert") {
      return timed(&write_lat_ms_, [&] { return Insert(table, t); });
    }
    if (cmd == "delete") {
      return timed(&write_lat_ms_, [&] { return Delete(table, t); });
    }
    if (cmd == "modify") {
      return timed(&write_lat_ms_, [&] { return Modify(table, t); });
    }
    if (cmd == "select") {
      return timed(&read_lat_ms_, [&] { return Select(table); });
    }
    if (cmd == "count") {
      return timed(&read_lat_ms_, [&] {
        std::printf("  %llu\n",
                    static_cast<unsigned long long>(table->RowCount()));
        return Status::OK();
      });
    }
    if (cmd == "pdt") {
      if (table->pdt() == nullptr) {
        return Status::InvalidArgument("table uses the VDT backend");
      }
      std::printf("  %s\n  memory=%zu bytes, delta=%lld\n",
                  table->pdt()->DebugString().c_str(),
                  table->pdt()->MemoryBytes(),
                  static_cast<long long>(table->pdt()->TotalDelta()));
      return Status::OK();
    }
    if (cmd == "checkpoint") {
      PDT_RETURN_NOT_OK(table->Checkpoint());
      std::printf("  checkpointed; stable rows=%llu\n",
                  static_cast<unsigned long long>(table->RowCount()));
      return Status::OK();
    }
    return Status::InvalidArgument("unknown command: " + cmd);
  }

  Status Create(const std::vector<std::string>& t) {
    std::vector<ColumnDef> cols;
    std::vector<ColumnId> sk;
    size_t i = 2;
    for (; i < t.size() && t[i] != "key"; ++i) {
      size_t colon = t[i].find(':');
      if (colon == std::string::npos) {
        return Status::InvalidArgument("column must be name:type");
      }
      std::string name = t[i].substr(0, colon);
      std::string type = t[i].substr(colon + 1);
      TypeId tid;
      if (type == "str") {
        tid = TypeId::kString;
      } else if (type == "int") {
        tid = TypeId::kInt64;
      } else if (type == "dbl") {
        tid = TypeId::kDouble;
      } else {
        return Status::InvalidArgument("unknown type: " + type);
      }
      cols.push_back({name, tid});
    }
    if (i + 1 >= t.size() || t[i] != "key") {
      return Status::InvalidArgument("missing 'key <cols>'");
    }
    // Parse comma-separated key column names.
    std::istringstream keys(t[i + 1]);
    std::string k;
    PDT_ASSIGN_OR_RETURN(Schema parsed, Schema::Make(cols, {0}));
    (void)parsed;  // name lookup needs a schema; build after resolving
    while (std::getline(keys, k, ',')) {
      bool found = false;
      for (ColumnId c = 0; c < cols.size(); ++c) {
        if (cols[c].name == k) {
          sk.push_back(c);
          found = true;
        }
      }
      if (!found) return Status::InvalidArgument("no key column " + k);
    }
    PDT_ASSIGN_OR_RETURN(Schema schema, Schema::Make(cols, sk));
    PDT_ASSIGN_OR_RETURN(
        Table * table,
        db_->CreateTable(t[1],
                        std::make_shared<const Schema>(std::move(schema))));
    // Start usable immediately: load an empty stable image.
    PDT_RETURN_NOT_OK(table->Load({}));
    std::printf("  created %s(%s)\n", t[1].c_str(),
                table->schema().ToString().c_str());
    return Status::OK();
  }

  // On a persistent database, updates run as WAL-logged transactions so
  // they survive a crash (durable at commit, not just at `.save`); an
  // in-memory database takes the direct path.
  Status Transactional(Table* table,
                       const std::function<Status(Transaction*)>& fn) {
    PDT_ASSIGN_OR_RETURN(TxnManager * mgr, db_->Txn(table->name()));
    auto txn = mgr->Begin();
    PDT_RETURN_NOT_OK(fn(txn.get()));
    return txn->Commit();
  }

  bool UseTxnPath(const Table* table) const {
    return db_->persistent() && table->pdt() != nullptr;
  }

  Status Load(Table* table, const std::vector<std::string>& t) {
    size_t ncols = table->schema().num_columns();
    if ((t.size() - 2) % ncols != 0) {
      return Status::InvalidArgument("value count not a multiple of arity");
    }
    std::vector<Tuple> tuples;
    for (size_t pos = 2; pos + ncols <= t.size(); pos += ncols) {
      Tuple tuple;
      for (ColumnId c = 0; c < ncols; ++c) {
        PDT_ASSIGN_OR_RETURN(Value v,
                             ParseValue(table->schema(), c, t[pos + c]));
        tuple.push_back(std::move(v));
      }
      tuples.push_back(std::move(tuple));
    }
    if (UseTxnPath(table)) {
      // One transaction (and one fsync) for the whole batch.
      PDT_RETURN_NOT_OK(Transactional(table, [&](Transaction* txn) {
        for (const Tuple& tuple : tuples) {
          PDT_RETURN_NOT_OK(txn->Insert(tuple));
        }
        return Status::OK();
      }));
    } else {
      for (const Tuple& tuple : tuples) {
        PDT_RETURN_NOT_OK(table->Insert(tuple));
      }
    }
    std::printf("  inserted %zu rows\n", tuples.size());
    return Status::OK();
  }

  Status Insert(Table* table, const std::vector<std::string>& t) {
    if (t.size() - 2 != table->schema().num_columns()) {
      return Status::InvalidArgument("expected one value per column");
    }
    Tuple tuple;
    for (ColumnId c = 0; c < table->schema().num_columns(); ++c) {
      PDT_ASSIGN_OR_RETURN(Value v,
                           ParseValue(table->schema(), c, t[2 + c]));
      tuple.push_back(std::move(v));
    }
    if (UseTxnPath(table)) {
      return Transactional(
          table, [&](Transaction* txn) { return txn->Insert(tuple); });
    }
    return table->Insert(tuple);
  }

  Status Delete(Table* table, const std::vector<std::string>& t) {
    PDT_ASSIGN_OR_RETURN(auto key, ParseKey(table->schema(), t, 2));
    if (UseTxnPath(table)) {
      return Transactional(
          table, [&](Transaction* txn) { return txn->DeleteByKey(key); });
    }
    return table->DeleteByKey(key);
  }

  Status Modify(Table* table, const std::vector<std::string>& t) {
    if (t.size() < 5) {
      return Status::InvalidArgument(
          "usage: modify <table> <col> <value> <key...>");
    }
    PDT_ASSIGN_OR_RETURN(ColumnId col, table->schema().ColumnIndex(t[2]));
    PDT_ASSIGN_OR_RETURN(Value v, ParseValue(table->schema(), col, t[3]));
    PDT_ASSIGN_OR_RETURN(auto key, ParseKey(table->schema(), t, 4));
    if (UseTxnPath(table)) {
      return Transactional(table, [&](Transaction* txn) {
        return txn->ModifyByKey(key, col, v);
      });
    }
    return table->ModifyByKey(key, col, v);
  }

  Status Select(Table* table) {
    // Every select runs as an admitted query: it waits its FIFO turn
    // when the shell's workload cap is saturated, and its scan/operator
    // memory is charged to a per-query budget.
    PDT_ASSIGN_OR_RETURN(auto ticket,
                         WorkloadManager::Global().Admit("shell-select"));
    ScopedQuery scope(ticket);
    std::vector<ColumnId> all(table->schema().num_columns());
    for (ColumnId c = 0; c < all.size(); ++c) all[c] = c;
    // `.threads N` (N > 1) exercises the morsel-driven parallel scan;
    // ordered delivery keeps the printed sequence identical to serial.
    ScanOptions opts;
    opts.num_threads = threads_;
    opts.ordered = true;
    auto scan = table->Scan(all, nullptr, opts);
    PDT_ASSIGN_OR_RETURN(auto rows, CollectRows(scan.get()));
    for (const auto& row : rows) {
      std::printf("  %s\n", TupleToString(row).c_str());
    }
    std::printf("  (%zu rows)\n", rows.size());
    return Status::OK();
  }

  static void PrintLatency(const char* label,
                           const std::vector<double>& samples) {
    if (samples.empty()) {
      std::printf("  %s: none yet\n", label);
      return;
    }
    double sum = 0;
    for (double v : samples) sum += v;
    std::vector<double> sorted = samples;  // percentile sorts in place
    std::printf("  %s: n=%zu avg=%.3fms p50=%.3fms p99=%.3fms\n", label,
                samples.size(), sum / static_cast<double>(samples.size()),
                tpch::LatencyPercentile(&sorted, 0.50),
                tpch::LatencyPercentile(&sorted, 0.99));
  }

  std::unique_ptr<Database> db_ = std::make_unique<Database>();
  int threads_ = 1;
  // This session's command latencies (successful commands only).
  std::vector<double> read_lat_ms_, write_lat_ms_;
};

}  // namespace

int main() { return Shell().Run(); }

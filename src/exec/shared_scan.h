// Cooperative shared scans (Zukowski-style): concurrent queries that
// scan the same table snapshot with the same morsel geometry ride ONE
// merge stream instead of each running a private MergeScan. The morsel
// queue is the attachment point: stream workers (and helping consumers)
// claim morsels, run the per-morsel merge cursor once, and broadcast the
// completed morsel — all its batches together — to every attached
// consumer. Per-query work (filters, projections, probes, sinks) stays
// private: consumers copy the shared read-only batches before their
// fragment ops touch them.
//
// Late attachment ("complete the circle"): a query that attaches
// mid-stream receives every morsel still in flight or unclaimed from the
// shared flow, and re-runs the already-retired prefix privately from its
// own cursor — so each consumer sees every morsel exactly once, in a
// rotated order. That rotation is why ordered-exchange consumers never
// share (Table::Scan's default ordered delivery bypasses the hub) while
// sink-driven pipelines share freely: the sort breaker's sequence tags
// carry the true morsel index, so sort output is byte-identical to the
// isolated run, and aggregation / join build are order-insensitive.
//
// Straggler shedding bounds memory: a consumer whose ready queue is full
// stops receiving broadcast units — the morsel index goes to its private
// backlog instead (it re-runs those morsels itself later). Stream
// workers pause claiming when every consumer is saturated; a consumer
// that would block always helps (claims and merges a morsel itself), so
// progress never depends on the shared pool.
//
// Snapshot soundness: the stream is keyed by (table, pinned PDT layer,
// projection, morsel geometry) and its morsel factory carries the PDT
// pin (Table::PlanMorsels pins before planning), so every rider reads
// the same immutable snapshot and the layer outlives the stream.
#ifndef PDTSTORE_EXEC_SHARED_SCAN_H_
#define PDTSTORE_EXEC_SHARED_SCAN_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "exec/parallel_scan.h"

namespace pdtstore {

class PipelineOp;
class PipelineOpState;

/// One completed morsel as delivered to a consumer: the true morsel
/// index (sort sequence tags depend on it) plus the morsel's batches in
/// scan order, shared read-only across consumers.
struct SharedMorselUnit {
  size_t morsel = 0;
  std::vector<std::shared_ptr<const Batch>> batches;
};

class SharedScanStream;

/// One query's subscription to a shared scan stream. Not thread-safe —
/// exactly one thread (the query's driver) pulls from it. Destruction
/// detaches; the last consumer's detach aborts the stream's workers.
class SharedScanConsumer {
 public:
  ~SharedScanConsumer();

  SharedScanConsumer(const SharedScanConsumer&) = delete;
  SharedScanConsumer& operator=(const SharedScanConsumer&) = delete;

  /// The consumer's next completed morsel (arbitrary order; each morsel
  /// exactly once). Helps the stream — claims and merges morsels on
  /// this thread — whenever it would otherwise block. Returns false
  /// after all morsels were delivered; errors (from any worker) fail
  /// every consumer.
  StatusOr<bool> NextUnit(SharedMorselUnit* out);

  size_t num_morsels() const;
  /// Rows per batch the stream's cursors pull (the shared geometry).
  size_t batch_rows() const;

 private:
  friend class SharedScanStream;
  SharedScanConsumer(std::shared_ptr<SharedScanStream> stream, uint32_t id)
      : stream_(std::move(stream)), id_(id) {}

  std::shared_ptr<SharedScanStream> stream_;
  uint32_t id_;
};

/// The shared merge stream: morsels + factory from the first query's
/// plan, worker tasks on the global pool, and the subscriber registry.
/// Created via SharedScanHub; queries hold it only through consumers.
class SharedScanStream
    : public std::enable_shared_from_this<SharedScanStream> {
 public:
  SharedScanStream(std::vector<SidRange> morsels,
                   MorselSourceFactory factory, size_t batch_rows,
                   size_t num_workers, uint64_t creator_token);
  ~SharedScanStream();

  /// Spawns the stream's worker tasks (once, by the hub, right after
  /// construction — needs shared_from_this, so not in the constructor).
  void Start();

  /// Subscribes a new consumer; it will receive every morsel exactly
  /// once (shared flow for unclaimed/in-flight morsels, private re-run
  /// for the retired prefix).
  std::unique_ptr<SharedScanConsumer> Attach();

  /// True once no future attacher could share any morsel (everything
  /// already claimed) — the hub then starts a fresh stream instead.
  bool ExhaustedForNewcomers() const;

 private:
  friend class SharedScanConsumer;

  struct ConsumerState {
    std::deque<SharedMorselUnit> ready;
    std::deque<size_t> backlog;  // morsels this consumer re-runs privately
    size_t consumed = 0;         // units popped from NextUnit
  };

  // A claimed, not-yet-completed morsel: which consumers get it on
  // completion (attachers add themselves while it is in flight).
  struct InFlight {
    std::vector<uint32_t> pending;
  };

  void RunWorker();
  // Merges morsel `m` and broadcasts it. Returns false on abort/error.
  bool ProcessShared(size_t m);
  // Merges morsel `m` for one consumer only (backlog re-run).
  StatusOr<SharedMorselUnit> ProcessPrivate(size_t m);
  StatusOr<bool> NextUnitFor(uint32_t id, SharedMorselUnit* out);
  void Detach(uint32_t id);
  bool AnyConsumerHasRoom() const;  // caller holds mu_

  const std::vector<SidRange> morsels_;
  const MorselSourceFactory factory_;
  const size_t batch_rows_;
  const size_t num_workers_;
  const uint64_t token_;
  /// Broadcast units a consumer may hold buffered before it is shed to
  /// backlog (bounds the slowest rider's footprint).
  const size_t ready_cap_;

  mutable std::mutex mu_;
  std::condition_variable consumer_cv_;  // unit delivered / error / done
  std::condition_variable worker_cv_;    // room to claim again
  std::map<uint32_t, ConsumerState> consumers_;
  std::unordered_map<size_t, InFlight> in_flight_;  // by morsel index
  size_t next_claim_ = 0;
  uint32_t next_consumer_id_ = 0;
  size_t active_workers_ = 0;
  Status error_ = Status::OK();
  bool abort_ = false;
};

/// Hub counters (shell `.stats`).
struct SharedScanHubStats {
  uint64_t streams_created = 0;  // distinct merge streams started
  uint64_t attaches = 0;         // total subscriptions (incl. creators)
  uint64_t ride_alongs = 0;      // subscriptions that joined a live stream
};

/// Identity of a shareable scan: same table, same pinned snapshot
/// layer, same projection and morsel geometry. Pointer identity is what
/// makes the snapshot-sharing sound: a background merge installing a new
/// Read-PDT changes `snapshot`, so post-merge queries start a new stream
/// instead of riding a stale one.
struct SharedScanKey {
  const void* table = nullptr;
  const void* snapshot = nullptr;
  std::vector<ColumnId> projection;
  size_t morsel_rows = 0;
  size_t batch_rows = 0;

  bool operator==(const SharedScanKey& o) const {
    return table == o.table && snapshot == o.snapshot &&
           morsel_rows == o.morsel_rows && batch_rows == o.batch_rows &&
           projection == o.projection;
  }
};

/// Registry of live streams keyed by SharedScanKey. Process-global.
class SharedScanHub {
 public:
  /// Attaches to the live stream for `key`, or starts one from this
  /// query's plan (morsels + factory become the shared stream; the
  /// factory's captured pins keep the snapshot alive for all riders).
  std::unique_ptr<SharedScanConsumer> AttachOrCreate(
      const SharedScanKey& key, std::vector<SidRange> morsels,
      const MorselSourceFactory& factory, const ScanOptions& opts);

  SharedScanHubStats GetStats() const;

  static SharedScanHub& Global();

 private:
  struct KeyHash {
    size_t operator()(const SharedScanKey& k) const;
  };

  mutable std::mutex mu_;
  std::unordered_map<SharedScanKey, std::weak_ptr<SharedScanStream>,
                     KeyHash> streams_;
  SharedScanHubStats stats_;
};

/// Wraps a consumer (plus an optional per-query fragment op chain run on
/// the pulling thread) as a plain BatchSource — the shared counterpart
/// of the unordered exchange. Batches are copied out of the shared units
/// before ops touch them.
std::unique_ptr<BatchSource> MakeSharedScanSource(
    std::shared_ptr<SharedScanConsumer> consumer,
    std::vector<std::unique_ptr<PipelineOp>> ops = {});

}  // namespace pdtstore

#endif  // PDTSTORE_EXEC_SHARED_SCAN_H_

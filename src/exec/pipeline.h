// Parallel pipeline execution, morsel-driven in the spirit of Leis et
// al. ("Morsel-Driven Parallelism", SIGMOD 2014), grafted onto the
// paper's X100-style block engine: a Pipeline is a morsel scan plus a
// chain of worker-local operators (filter, project, join probe) that run
// *inside* whichever worker claimed the morsel. Threads meet only at
// pipeline breakers:
//   * Exchange       — the bounded-queue exchange handing fragment
//                      output to a pulling consumer (ordered or not);
//   * Aggregate      — per-worker partial (pre-)aggregation tables,
//                      merged into one result at finalize;
//   * IntoJoinBuild  — per-worker hash-partitioned build-side
//                      collection: workers route rows into P partitions
//                      during collect, the P JoinTable partitions
//                      finalize in parallel, and the published
//                      immutable table is probed lock-free with rows
//                      routed by the same partition function;
//   * IntoSortBuild  — per-worker sorted runs (each worker sorts its
//                      own collected rows before the merge barrier),
//                      merged by a k-way loser tree that breaks key
//                      ties by source morsel order — the exact sequence
//                      of the serial stable sort.
//
// Stateful operators are split into shared, read-only-after-publish
// state (predicates, expressions, the join table) and per-worker
// PipelineOpState (scratch buffers, partial tables). All workers come
// from the process-wide ThreadPool::Global(); the driving thread always
// participates, so pipelines finish even when the pool is saturated by
// concurrent queries. With num_threads == 1 no pipeline is built at all
// — callers keep the unchanged serial operator tree.
#ifndef PDTSTORE_EXEC_PIPELINE_H_
#define PDTSTORE_EXEC_PIPELINE_H_

#include <memory>
#include <vector>

#include "columnstore/batch.h"
#include "exec/filter.h"
#include "exec/hash_agg.h"
#include "exec/hash_join.h"
#include "exec/parallel_scan.h"
#include "exec/project.h"
#include "exec/sort.h"

namespace pdtstore {

/// Per-worker operator state: scratch buffers, partial aggregation
/// tables, collected build rows. Created once per worker and reused for
/// every morsel that worker claims.
class PipelineOpState {
 public:
  virtual ~PipelineOpState() = default;
};

/// One operator fragment pushed into the scan workers. Shared members
/// are read-only once workers run; everything mutable lives in the
/// per-worker PipelineOpState.
class PipelineOp {
 public:
  virtual ~PipelineOp() = default;

  /// Called once, on the consuming thread, before any worker starts.
  /// Upstream pipeline breakers resolve here (e.g. the join build side
  /// runs its own pipeline to completion — the publish barrier).
  virtual Status Prepare() { return Status::OK(); }

  /// Fresh per-worker state.
  virtual std::unique_ptr<PipelineOpState> MakeState() const = 0;

  /// Transforms *batch in place (possibly to zero rows). Must be
  /// thread-safe across distinct `state` objects.
  virtual Status Execute(Batch* batch, PipelineOpState* state) const = 0;

  /// Build-time fusion hook: a filter op absorbs `predicate` into its
  /// word-wise conjunction and returns true; every other op declines.
  /// Called only while the pipeline is under construction (before any
  /// worker exists), so no synchronization is needed.
  virtual bool FuseFilter(VecPredicate* predicate) {
    (void)predicate;
    return false;
  }
};

/// Vectorized selection as a pipeline fragment (FilterNode's kernel).
/// Consecutive Pipeline::Filter calls fuse into one op: the predicates'
/// keep bitmaps are folded word-wise (AND) and the batch is compacted
/// once, with no intermediate selection or batch materialized.
std::unique_ptr<PipelineOp> MakeFilterOp(VecPredicate predicate);
/// Projection / expression evaluation (ProjectNode's kernel).
std::unique_ptr<PipelineOp> MakeProjectOp(std::vector<ColumnExpr> exprs);
/// Hash-join probe against a deferred build side; Prepare() resolves the
/// handle (running the build pipeline if needed) before workers start.
std::unique_ptr<PipelineOp> MakeJoinProbeOp(
    std::shared_ptr<JoinBuildHandle> build, std::vector<size_t> probe_keys,
    JoinKind kind = JoinKind::kInner);

/// A run-to-completion sink: the pipeline-breaker side of Aggregate /
/// IntoJoinBuild / IntoSortBuild. Sink() runs on workers with
/// per-worker state (`morsel` is the index of the morsel the batch came
/// from — monotone per worker, and morsels partition the scan in SID
/// order, so (morsel, arrival) reconstructs the serial sequence);
/// Finish() runs once per worker after its last morsel, still on the
/// worker and still unserialized — per-worker post-processing (e.g.
/// sorting a run) parallelizes here; Combine() then merges the worker's
/// state into the shared result under the runner's serialization.
class PipelineSink {
 public:
  virtual ~PipelineSink() = default;
  virtual std::unique_ptr<PipelineOpState> MakeState() const = 0;
  virtual Status Sink(Batch* batch, PipelineOpState* state,
                      size_t morsel) = 0;
  virtual Status Finish(PipelineOpState* state) {
    (void)state;
    return Status::OK();
  }
  virtual Status Combine(PipelineOpState* state) = 0;
};

/// Drives `plan` through `ops` into `sink` with up to
/// plan.options.num_threads workers (global pool + the calling thread,
/// which always participates). Handles the serial fallback plan. Calls
/// every op's Prepare() first. Returns the first error.
Status RunPipeline(MorselPlan* plan,
                   const std::vector<std::unique_ptr<PipelineOp>>& ops,
                   PipelineSink* sink);

/// Applies an op chain on top of a serial source (the fallback used when
/// a plan cannot be parallelized); also handy for 1-thread equivalence
/// tests of the fragment kernels.
class OpChainSource : public BatchSource {
 public:
  OpChainSource(std::unique_ptr<BatchSource> input,
                std::vector<std::unique_ptr<PipelineOp>> ops);
  ~OpChainSource() override;

  StatusOr<bool> Next(Batch* out, size_t max_rows) override;

 private:
  std::unique_ptr<BatchSource> input_;
  std::vector<std::unique_ptr<PipelineOp>> ops_;
  std::vector<std::unique_ptr<PipelineOpState>> states_;
  bool prepared_ = false;
};

/// A pipeline under construction: a planned morsel scan plus the
/// fragment ops appended so far. Ends in exactly one breaker call.
class Pipeline {
 public:
  explicit Pipeline(MorselPlan plan);
  ~Pipeline();

  Pipeline(Pipeline&&) = default;
  Pipeline& operator=(Pipeline&&) = default;

  /// Appends a filter fragment. Consecutive Filter calls fuse into one
  /// op whose predicates fold word-wise on the keep bitmap with a
  /// single compaction — so a later predicate may be evaluated on rows
  /// an earlier one rejected (predicates must be total over the batch;
  /// see the VecPredicate contract in exec/filter.h).
  Pipeline& Filter(VecPredicate predicate);
  Pipeline& Project(std::vector<ColumnExpr> exprs);
  Pipeline& Probe(std::shared_ptr<JoinBuildHandle> build,
                  std::vector<size_t> probe_keys,
                  JoinKind kind = JoinKind::kInner);
  Pipeline& Add(std::unique_ptr<PipelineOp> op);

  /// Breaker: stream the fragment's output to the pulling consumer
  /// through the exchange (plan.options.ordered picks delivery order).
  std::unique_ptr<BatchSource> Exchange() &&;

  /// Breaker: grouped aggregation with per-worker pre-aggregation
  /// tables, merged at finalize. Runs lazily on the first Next() pull,
  /// like the serial HashAggNode.
  std::unique_ptr<BatchSource> Aggregate(std::vector<size_t> group_by,
                                         std::vector<AggSpec> aggs) &&;

  /// Breaker: full sort of the fragment's output (optional LIMIT /
  /// top-k, 0 = unlimited). Workers collect rows tagged with their
  /// source morsel order and sort their runs in parallel; the consumer
  /// merges with a loser tree whose key ties fall back to the tags, so
  /// the emitted sequence equals the serial SortNode's stable sort of
  /// the serial fragment — exactly, when the fragment itself is
  /// order-deterministic (filter / project / semi- and anti-probe
  /// are). An upstream parallel *inner* probe is not: its batch output
  /// is grouped by build partition, so any key-tie group may come out
  /// permuted (and a LIMIT cutting through such a tie group may pick
  /// different tied rows than the serial tree) — only the multiset is
  /// guaranteed there. Runs lazily on the first Next() pull. The
  /// serial plan shape is the unchanged SortNode.
  std::unique_ptr<BatchSource> IntoSortBuild(std::vector<SortKey> keys,
                                             size_t limit = 0) &&;

  /// Breaker: collect the fragment's rows as a hash-partitioned join
  /// build side. Workers route rows into `num_partitions` partitions
  /// (0 = auto: scales with the pipeline's worker count) while
  /// collecting; the partitions are finalized (concatenated + hashed)
  /// in parallel and published on first use of the returned handle.
  static std::shared_ptr<JoinBuildHandle> IntoJoinBuild(
      std::unique_ptr<Pipeline> pipeline, std::vector<size_t> build_keys,
      size_t num_partitions = 0);

 private:
  MorselPlan plan_;
  std::vector<std::unique_ptr<PipelineOp>> ops_;
};

}  // namespace pdtstore

#endif  // PDTSTORE_EXEC_PIPELINE_H_

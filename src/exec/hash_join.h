// HashJoinNode: in-memory equi-join. The build side is fully materialized
// into a hash table keyed by a combined 64-bit key hash (verify-on-
// collision against the materialized build columns); probe batches are
// hashed with one bulk HashColumn pass per key column and matches are
// compacted with selection-vector gathers. Inner or left-semi/anti.
#ifndef PDTSTORE_EXEC_HASH_JOIN_H_
#define PDTSTORE_EXEC_HASH_JOIN_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "columnstore/batch.h"

namespace pdtstore {

/// Join flavor.
enum class JoinKind { kInner, kLeftSemi, kLeftAnti };

/// Equi-join on (probe_keys[i] == build_keys[i]). Output columns: all
/// probe columns, then (inner only) all build columns. Duplicate build
/// matches are emitted in build-row order.
class HashJoinNode : public BatchSource {
 public:
  HashJoinNode(std::unique_ptr<BatchSource> probe,
               std::unique_ptr<BatchSource> build,
               std::vector<size_t> probe_keys,
               std::vector<size_t> build_keys,
               JoinKind kind = JoinKind::kInner)
      : probe_(std::move(probe)),
        build_(std::move(build)),
        probe_keys_(std::move(probe_keys)),
        build_keys_(std::move(build_keys)),
        kind_(kind) {}

  StatusOr<bool> Next(Batch* out, size_t max_rows) override;

 private:
  Status BuildTable();
  // Typed key equality between probe row and build row (collision check).
  bool KeysEqual(const Batch& probe, size_t probe_row,
                 size_t build_row) const;

  std::unique_ptr<BatchSource> probe_;
  std::unique_ptr<BatchSource> build_;
  std::vector<size_t> probe_keys_;
  std::vector<size_t> build_keys_;
  JoinKind kind_;
  bool built_ = false;
  Batch build_rows_;
  Batch out_proto_;  // output layout, built once, reused via ResetLike
  bool proto_init_ = false;
  // Combined key hash -> build rows with that hash, in build order.
  std::unordered_map<uint64_t, std::vector<uint32_t>> table_;
  // Scratch reused per probe batch (allocation-free steady state).
  std::vector<uint64_t> hashes_;
  SelVector probe_sel_;
  SelVector build_sel_;
  std::vector<uint8_t> keep_;
};

}  // namespace pdtstore

#endif  // PDTSTORE_EXEC_HASH_JOIN_H_

// Multi-query workload throughput: a fleet of client threads pushes
// scan-heavy queries through one WorkloadManager (bounded FIFO admission
// in front of the shared worker pool) and reports sustained qps plus
// p50/p99 end-to-end latency — queueing time included, since that is
// what admission control trades against memory safety. Each concurrency
// level runs twice, with cooperative shared scans off and on, so the
// artifact records how much a co-scheduled fleet saves by riding one
// merge stream per table snapshot (the `ride_alongs` metric counts how
// often that actually happened).
//
//   bench_workload [--queries=N] [--clients=1,8,64,256] [--rows=R]
//                  [--json=PATH]
//
// On a single core the client fleet is time-sliced, so latency numbers
// are upper bounds and the shared-scan gap narrows (there is no
// parallel scan work to coalesce) — the ride-along counts still show
// the sharing machinery engaging.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "exec/pipeline.h"
#include "exec/shared_scan.h"
#include "exec/workload.h"
#include "util/stopwatch.h"

namespace pdtstore {
namespace bench {
namespace {

std::vector<int> ParseIntList(const std::string& csv) {
  std::vector<int> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    out.push_back(std::atoi(csv.substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }
  return out;
}

double Percentile(std::vector<double>* sorted, double q) {
  if (sorted->empty()) return 0;
  std::sort(sorted->begin(), sorted->end());
  size_t idx = static_cast<size_t>(q * (sorted->size() - 1) + 0.5);
  return (*sorted)[std::min(idx, sorted->size() - 1)];
}

struct RunResult {
  double wall_s = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  uint64_t queries = 0;
  uint64_t rejected = 0;
  uint64_t streams = 0;      // shared-scan merge streams started
  uint64_t ride_alongs = 0;  // queries that joined a live stream
};

// `clients` threads drain a shared counter of `total` queries, each one
// admitted through `mgr` and scanning the whole table (project k0 + v0,
// unordered 4-way morsel plan, drain through an exchange). The query is
// deliberately scan-dominated: that is the work shared scans can
// coalesce across the fleet.
RunResult RunFleet(const Table& table, WorkloadManager* mgr, int clients,
                   uint64_t total, bool shared) {
  std::atomic<uint64_t> next{0};
  std::atomic<uint64_t> rejected{0};
  std::vector<std::vector<double>> lat(clients);
  SharedScanHubStats hub0 = SharedScanHub::Global().GetStats();

  Stopwatch wall;
  std::vector<std::thread> fleet;
  fleet.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    fleet.emplace_back([&, c] {
      lat[c].reserve(total / clients + 1);
      while (next.fetch_add(1) < total) {
        Stopwatch sw;
        auto ticket = mgr->Admit("bench");
        if (!ticket.ok()) {
          rejected.fetch_add(1);
          continue;
        }
        ScopedQuery scope(*ticket);
        ScanOptions so;
        so.num_threads = 4;
        so.ordered = false;
        so.shared_scan = shared;
        // Fine morsels keep the stream joinable for most of its life
        // (a stream stops accepting riders once all morsels are
        // claimed); auto-tuning would pick whole chunks, which a 4-way
        // fleet claims in the first scheduling beat.
        so.morsel_rows = 4096;
        Pipeline pipe(table.PlanMorsels({0, 1}, nullptr, so));
        auto out = std::move(pipe).Exchange();
        Batch batch;
        uint64_t rows = 0;
        while (true) {
          auto more = out->Next(&batch, kDefaultBatchSize);
          if (!more.ok() || !*more) break;
          rows += batch.num_rows();
        }
        (void)rows;
        lat[c].push_back(sw.ElapsedMillis());
      }
    });
  }
  for (auto& t : fleet) t.join();

  RunResult r;
  r.wall_s = wall.ElapsedMillis() / 1000.0;
  std::vector<double> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  r.queries = all.size();
  r.rejected = rejected.load();
  r.qps = r.wall_s > 0 ? r.queries / r.wall_s : 0;
  r.p50_ms = Percentile(&all, 0.50);
  r.p99_ms = Percentile(&all, 0.99);
  SharedScanHubStats hub1 = SharedScanHub::Global().GetStats();
  r.streams = hub1.streams_created - hub0.streams_created;
  r.ride_alongs = hub1.ride_alongs - hub0.ride_alongs;
  return r;
}

int Main(int argc, char** argv) {
  const uint64_t queries =
      std::strtoull(FlagValue(argc, argv, "queries", "512").c_str(),
                    nullptr, 10);
  const uint64_t rows =
      std::strtoull(FlagValue(argc, argv, "rows", "800000").c_str(),
                    nullptr, 10);
  std::vector<int> client_counts =
      ParseIntList(FlagValue(argc, argv, "clients", "1,8,64,256"));
  const std::string json_path = FlagValue(argc, argv, "json", "");

  SyntheticSpec spec;
  spec.rows = rows;
  spec.key_cols = 1;
  spec.payload_cols = 1;
  auto table = BuildSynthetic(spec);

  JsonResultWriter json;
  std::printf("%-24s %10s %10s %10s %8s %8s\n", "bench", "qps", "p50_ms",
              "p99_ms", "streams", "rides");
  for (int clients : client_counts) {
    for (bool shared : {false, true}) {
      // Fresh manager per cell: stats and FIFO state start clean. The
      // wait queue is sized for the whole fleet so qps is not skewed by
      // rejections (admission keeps only 8 queries running at once).
      WorkloadOptions opts;
      opts.max_concurrent = 8;
      opts.max_queued = 4096;
      WorkloadManager mgr(opts);
      RunResult r = RunFleet(*table, &mgr, clients, queries, shared);
      std::string name = "workload_c" + std::to_string(clients) +
                         (shared ? "_shared_on" : "_shared_off");
      std::printf("%-24s %10.1f %10.3f %10.3f %8llu %8llu\n", name.c_str(),
                  r.qps, r.p50_ms, r.p99_ms,
                  static_cast<unsigned long long>(r.streams),
                  static_cast<unsigned long long>(r.ride_alongs));
      json.Metric(name, "qps", r.qps);
      json.Metric(name, "p50_ms", r.p50_ms);
      json.Metric(name, "p99_ms", r.p99_ms);
      json.Metric(name, "queries", static_cast<double>(r.queries));
      json.Metric(name, "rejected", static_cast<double>(r.rejected));
      json.Metric(name, "shared_streams", static_cast<double>(r.streams));
      json.Metric(name, "ride_alongs", static_cast<double>(r.ride_alongs));
      if (r.queries != queries) {
        std::fprintf(stderr, "%s: expected %llu queries, ran %llu\n",
                     name.c_str(),
                     static_cast<unsigned long long>(queries),
                     static_cast<unsigned long long>(r.queries));
        return 1;
      }
    }
  }
  if (!json_path.empty() && !json.WriteFile(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pdtstore

int main(int argc, char** argv) {
  return pdtstore::bench::Main(argc, argv);
}

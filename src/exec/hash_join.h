// HashJoinNode: in-memory equi-join. The build side is fully materialized
// into a hash table keyed by a combined 64-bit key hash (verify-on-
// collision against the materialized build columns); probe batches are
// hashed with one bulk HashColumn pass per key column and matches are
// compacted with selection-vector gathers. Inner or left-semi/anti.
//
// The build side is factored into an immutable PartitionedJoinTable —
// P >= 1 independent JoinTable partitions addressed by a hash-derived
// partition function — behind a JoinBuildHandle (the publish barrier).
// The parallel pipeline (exec/pipeline.h) partitions build rows by hash
// inside the collect workers and finalizes the P partitions in
// parallel; probes route each row by the same partition function and
// share the whole structure lock-free. The serial HashJoinNode builds a
// single partition, byte-identical to the pre-partitioned behavior.
#ifndef PDTSTORE_EXEC_HASH_JOIN_H_
#define PDTSTORE_EXEC_HASH_JOIN_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "columnstore/batch.h"
#include "util/mem_budget.h"

namespace pdtstore {

/// Join flavor.
enum class JoinKind { kInner, kLeftSemi, kLeftAnti };

/// One partition of the materialized build side: build rows plus a
/// bucket table keyed by the combined key hash. Immutable once built, so
/// probe workers share it without locks.
struct JoinTable {
  Batch rows;
  std::vector<size_t> key_cols;
  /// Combined key hash -> build rows with that hash, in build order.
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;

  static JoinTable Build(Batch build_rows, std::vector<size_t> keys);
  /// Build with the combined key hashes already computed (hashes[i] for
  /// row i) — the partitioned collect path hashes rows once to route
  /// them and reuses the values here.
  static JoinTable BuildWithHashes(Batch build_rows,
                                   std::vector<size_t> keys,
                                   std::vector<uint64_t> hashes);

  /// Typed key equality between a probe row and a build row (the
  /// verify-on-collision step).
  bool KeysEqual(const std::vector<size_t>& probe_keys, const Batch& probe,
                 size_t probe_row, size_t build_row) const;
};

/// The partition function both the build collect and the probe use.
/// High hash bits, so the choice is independent of the low bits the
/// per-partition bucket maps key on; P == 1 short-circuits.
inline size_t JoinPartitionOf(uint64_t hash, size_t num_partitions) {
  return num_partitions == 1 ? 0 : (hash >> 32) % num_partitions;
}

/// The published build side: P >= 1 hash partitions. Build and probe
/// agree on PartitionOf, so a probe row only ever touches one
/// partition's buckets. P == 1 (every serial join) behaves exactly like
/// the single-table join.
struct PartitionedJoinTable {
  std::vector<JoinTable> parts;

  size_t num_partitions() const { return parts.size(); }
  size_t TotalRows() const;

  size_t PartitionOf(uint64_t hash) const {
    return JoinPartitionOf(hash, parts.size());
  }
};

/// Per-thread probe scratch (allocation-free steady state).
struct JoinProbeScratch {
  std::vector<uint64_t> hashes;
  SelVector probe_sel;
  SelVector build_sel;
  KeepBitmap keep;  // semi/anti survivor bits, 1 bit per probe row
  std::vector<SelVector> part_rows;  // probe rows routed per partition
  Batch out_proto;  // output layout, built once, reused via ResetLike
  bool proto_init = false;
};

/// Probes `in` against `table`, filling `*out` (reset to the output
/// layout): inner gathers probe then build columns; semi/anti compact
/// surviving probe rows (each probe row emitted at most once no matter
/// how many build rows match). Thread-safe across distinct scratch
/// objects. Inner matches for one probe row come out in that row's
/// partition's build order.
void ProbeJoinBatch(const PartitionedJoinTable& table,
                    const std::vector<size_t>& probe_keys, JoinKind kind,
                    const Batch& in, Batch* out, JoinProbeScratch* scratch);

/// Deferred join build side: resolves to an immutable
/// PartitionedJoinTable on first use and caches it — the pipeline's
/// build barrier. Resolution happens on the probing consumer's thread
/// before probe workers start (see PipelineOp::Prepare); the handle
/// itself is not thread-safe, sharing one across concurrently-starting
/// probes requires external order.
class JoinBuildHandle {
 public:
  /// Build side drained from a serial source (MaterializeAll) into a
  /// single partition — the serial join's unchanged shape.
  JoinBuildHandle(std::unique_ptr<BatchSource> build_source,
                  std::vector<size_t> build_keys);
  /// Build side produced by an arbitrary producer (the parallel
  /// partitioned build pipeline; see Pipeline::IntoJoinBuild).
  explicit JoinBuildHandle(
      std::function<StatusOr<PartitionedJoinTable>()> producer);

  /// Runs the build on first call; later calls return the cached table
  /// (or the cached failure).
  StatusOr<const PartitionedJoinTable*> Resolve();

  /// Ties `lease` (the build side's memory-budget charges) to this
  /// handle: the bytes stay charged exactly as long as the cached table
  /// they cover is alive.
  void RetainLease(std::shared_ptr<BudgetLease> lease) {
    lease_ = std::move(lease);
  }

 private:
  std::function<StatusOr<PartitionedJoinTable>()> producer_;
  std::shared_ptr<BudgetLease> lease_;
  bool resolved_ = false;
  Status error_ = Status::OK();
  PartitionedJoinTable table_;
};

/// Equi-join on (probe_keys[i] == build_keys[i]). Output columns: all
/// probe columns, then (inner only) all build columns. Duplicate build
/// matches are emitted in build-row order.
class HashJoinNode : public BatchSource {
 public:
  HashJoinNode(std::unique_ptr<BatchSource> probe,
               std::unique_ptr<BatchSource> build,
               std::vector<size_t> probe_keys,
               std::vector<size_t> build_keys,
               JoinKind kind = JoinKind::kInner);

  /// Probe against a deferred (possibly pipeline-built) build side.
  HashJoinNode(std::unique_ptr<BatchSource> probe,
               std::shared_ptr<JoinBuildHandle> build,
               std::vector<size_t> probe_keys,
               JoinKind kind = JoinKind::kInner);

  StatusOr<bool> Next(Batch* out, size_t max_rows) override;

 private:
  std::unique_ptr<BatchSource> probe_;
  std::shared_ptr<JoinBuildHandle> build_;
  std::vector<size_t> probe_keys_;
  JoinKind kind_;
  const PartitionedJoinTable* table_ = nullptr;  // resolved on first Next
  JoinProbeScratch scratch_;
};

}  // namespace pdtstore

#endif  // PDTSTORE_EXEC_HASH_JOIN_H_

// Typed, densely packed column of values. This is the in-memory unit of
// vectorized execution (a column of a Batch), of decoded storage chunks,
// and of the PDT value space tables.
#ifndef PDTSTORE_COLUMNSTORE_COLUMN_VECTOR_H_
#define PDTSTORE_COLUMNSTORE_COLUMN_VECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "columnstore/sel_vector.h"
#include "columnstore/types.h"
#include "columnstore/value.h"

namespace pdtstore {

/// Seed for the bulk HashColumn kernel: callers initialize every slot of
/// the output array to this before mixing in the first column.
constexpr uint64_t kHashSeed = 0x9E3779B97F4A7C15ULL;

/// A typed growable column. Exactly one of the three backing vectors is
/// in use, selected by type(). Typed accessors are the hot path; the
/// Value-based API is for boundaries and tests.
class ColumnVector {
 public:
  ColumnVector() : type_(TypeId::kInt64) {}
  explicit ColumnVector(TypeId type) : type_(type) {}

  TypeId type() const { return type_; }
  size_t size() const;
  bool empty() const { return size() == 0; }

  void Clear();
  void Reserve(size_t n);

  /// Appends a dynamically typed value; type must match.
  void Append(const Value& v);
  /// Appends a run of the same value `count` times.
  void AppendRun(const Value& v, size_t count);
  /// Appends element `i` of `other` (same type).
  void AppendFrom(const ColumnVector& other, size_t i);
  /// Appends elements [begin, end) of `other` (same type).
  void AppendRange(const ColumnVector& other, size_t begin, size_t end);

  // --- selection-vector kernels (see DESIGN.md) ---
  // Each dispatches on TypeId once per call and runs a tight typed inner
  // loop; these are the hot paths of filter/join/sort compaction.

  /// Appends other[sel[0]], other[sel[1]], ... (same type).
  void AppendGather(const ColumnVector& other, const SelVector& sel);
  /// Appends every kept row of `other` (same type); keep.size() must be
  /// <= other.size().
  void AppendFiltered(const ColumnVector& other, const KeepBitmap& keep);
  /// Byte-per-row reference path (tests / bench ablation only).
  void AppendFiltered(const ColumnVector& other, const uint8_t* keep,
                      size_t n);
  /// Mixes a hash of element i into out[i] for all i in [0, size()).
  /// Callers seed out[] with kHashSeed, then call once per key column;
  /// equal key tuples yield equal combined hashes. Not order-invariant
  /// across columns (hash(a,b) != hash(b,a) in general).
  void HashColumn(uint64_t* out) const;

  Value GetValue(size_t i) const;
  void SetValue(size_t i, const Value& v);
  /// this[i] = other[j] without boxing through Value (same type).
  void SetFrom(size_t i, const ColumnVector& other, size_t j);

  /// Three-way comparison of element i with element j of `other`.
  int CompareAt(size_t i, const ColumnVector& other, size_t j) const;

  // Typed hot-path accessors. Caller must respect type().
  std::vector<int64_t>& ints() { return ints_; }
  const std::vector<int64_t>& ints() const { return ints_; }
  std::vector<double>& doubles() { return doubles_; }
  const std::vector<double>& doubles() const { return doubles_; }
  std::vector<std::string>& strings() { return strings_; }
  const std::vector<std::string>& strings() const { return strings_; }

  /// Approximate heap footprint in bytes (used for buffer-pool sizing and
  /// I/O accounting of uncompressed data).
  size_t ByteSize() const;

 private:
  TypeId type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
};

}  // namespace pdtstore

#endif  // PDTSTORE_COLUMNSTORE_COLUMN_VECTOR_H_

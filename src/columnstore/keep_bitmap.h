// KeepBitmap: the predicate path's 1-bit-per-row keep vector.
//
// Predicates mark surviving rows of a batch in a word-addressed bitmap
// (uint64_t words, bit i of word w = row 64*w + i) instead of the
// byte-per-row uint8_t vector the engine used before: 8x less memory
// traffic on the scan -> filter -> probe path, word-wise AND/OR for
// predicate fusion, and popcount/ctz shortcuts when the selection is
// expanded (SelVector::FromKeep) or counted.
//
// == Kernel contract ==
//
// * Sizing. `Reset(n)` / `ResetAllSet(n)` size the bitmap to n rows and
//   clear / set every row bit. Consumers hand predicates a bitmap that
//   is already Reset to the batch's row count; a predicate writes each
//   row's verdict exactly once (`SetTo`, or whole words via `words()` /
//   `FillFrom`).
// * Tail-word semantics. Bits >= size() in the last word are ALWAYS
//   ZERO. Every mutator here maintains the invariant (ResetAllSet masks
//   the tail; And/Or of two well-formed bitmaps stay well-formed); a
//   producer that writes raw words must mask its final partial word
//   with TailMask(size()) — FillFrom does this for you. The invariant
//   is what lets every consumer (CountSet, All, FromKeep, And, Or) run
//   word-at-a-time with no per-row tail special case.
// * Alignment. Storage is a std::vector<uint64_t>: 8-byte aligned,
//   contiguous, sized ceil(n/64) words. Words are addressed in memory
//   order, so sequential predicate evaluation streams the bitmap.
// * Fusion rules. Conjunction = word-wise And(), disjunction = word-wise
//   Or(), both requiring equal size(). A multi-predicate filter
//   evaluates each predicate into a scratch bitmap and folds with
//   And()/Or() — no intermediate SelVector or compacted batch is
//   materialized (see EvalConjunction in exec/filter.h); the single
//   final bitmap is expanded once.
// * Writing each row at most once. `SetTo(i, v)` ORs `v` into a bit that
//   is still zero; it does not clear. This keeps the hot marking loops
//   (join probe match marking) branchless. There is deliberately no
//   per-bit clear: to rewrite verdicts, Reset(n) and produce the bitmap
//   again (clearing bits one at a time is not a predicate-path shape).
#ifndef PDTSTORE_COLUMNSTORE_KEEP_BITMAP_H_
#define PDTSTORE_COLUMNSTORE_KEEP_BITMAP_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pdtstore {

class KeepBitmap {
 public:
  KeepBitmap() = default;

  /// Mask of the valid bits of the final word of an n-bit bitmap
  /// (all-ones when n is a multiple of 64).
  static constexpr uint64_t TailMask(size_t n) {
    const size_t rem = n & 63;
    return rem == 0 ? ~uint64_t{0} : (uint64_t{1} << rem) - 1;
  }

  /// Resizes to n rows, all bits cleared.
  void Reset(size_t n) {
    bits_ = n;
    words_.assign(NumWords(n), 0);
  }

  /// Resizes to n rows, all row bits set (tail bits zero, per contract).
  void ResetAllSet(size_t n) {
    bits_ = n;
    words_.assign(NumWords(n), ~uint64_t{0});
    if (!words_.empty()) words_.back() = TailMask(n);
  }

  size_t size() const { return bits_; }
  size_t num_words() const { return words_.size(); }
  uint64_t* words() { return words_.data(); }
  const uint64_t* words() const { return words_.data(); }

  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void Set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  /// ORs `v` into bit i (branchless). The bit must still be zero — the
  /// state Reset leaves it in; this is the row-at-a-time producer path.
  void SetTo(size_t i, bool v) {
    words_[i >> 6] |= static_cast<uint64_t>(v) << (i & 63);
  }

  /// Evaluates `pred(i) -> bool` for every row, 64 verdicts per word
  /// store, and masks the tail. The whole-word producer path for typed
  /// predicate kernels; the inner loop carries no stores other than the
  /// final word, so compilers unroll/vectorize the comparisons.
  template <typename RowPred>
  void FillFrom(RowPred pred) {
    const size_t full = bits_ >> 6;
    for (size_t w = 0; w < full; ++w) {
      const size_t base = w << 6;
      uint64_t word = 0;
      for (size_t b = 0; b < 64; ++b) {
        word |= static_cast<uint64_t>(pred(base + b)) << b;
      }
      words_[w] = word;
    }
    if (bits_ & 63) {
      const size_t base = full << 6;
      uint64_t word = 0;
      for (size_t b = 0; base + b < bits_; ++b) {
        word |= static_cast<uint64_t>(pred(base + b)) << b;
      }
      words_[full] = word;  // tail bits never written: stays masked
    }
  }

  /// Sets every bit of [begin, end) word-wise (ORs; bits in the range
  /// must still be zero, same contract as SetTo). The run-at-a-time
  /// producer path for RLE predicates: one compare per run, then a word
  /// fill here instead of per-row stores. end <= size().
  void SetRange(size_t begin, size_t end) {
    if (begin >= end) return;
    const size_t wb = begin >> 6, we = (end - 1) >> 6;
    const uint64_t first = ~uint64_t{0} << (begin & 63);
    const uint64_t last = TailMask(end);  // low (end & 63) bits, all if 0
    if (wb == we) {
      words_[wb] |= first & last;
      return;
    }
    words_[wb] |= first;
    for (size_t w = wb + 1; w < we; ++w) words_[w] = ~uint64_t{0};
    words_[we] |= last;
  }

  /// Number of set bits (word-wise popcount).
  size_t CountSet() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
    return n;
  }

  /// True iff no row bit is set / every row bit is set. Word-at-a-time;
  /// the tail invariant makes All() a plain word compare too.
  bool None() const {
    for (uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }
  bool All() const {
    if (bits_ == 0) return true;
    for (size_t w = 0; w + 1 < words_.size(); ++w) {
      if (words_[w] != ~uint64_t{0}) return false;
    }
    return words_.back() == TailMask(bits_);
  }

  /// Word-wise conjunction / disjunction with an equal-size bitmap.
  void And(const KeepBitmap& other) {
    for (size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
  }
  void Or(const KeepBitmap& other) {
    for (size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  }

 private:
  static size_t NumWords(size_t n) { return (n + 63) >> 6; }

  size_t bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace pdtstore

#endif  // PDTSTORE_COLUMNSTORE_KEEP_BITMAP_H_

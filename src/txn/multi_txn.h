// Multi-table transactions: the natural generalization of Sec. 3.3 to
// transactions spanning several tables (the paper's TPC-H refresh
// functions update orders *and* lineitem atomically).
//
// Every table keeps its own three-layer PDT stack; a transaction holds a
// (read, write-copy, trans) triple per table it touches. Commit runs
// Algorithm 9 with per-table Serialize: a write-write conflict on *any*
// table aborts the whole transaction, and on success every table's
// Trans-PDT propagates into that table's master Write-PDT under one
// commit lock, giving all-or-nothing visibility.
#ifndef PDTSTORE_TXN_MULTI_TXN_H_
#define PDTSTORE_TXN_MULTI_TXN_H_

#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "db/table.h"
#include "txn/txn_manager.h"  // TxnManagerOptions
#include "txn/wal.h"

namespace pdtstore {

class MultiTxnManager;

/// A snapshot-isolated transaction over a fixed set of tables.
class MultiTransaction {
 public:
  ~MultiTransaction();

  Status Insert(const std::string& table, const Tuple& tuple);
  Status DeleteByKey(const std::string& table,
                     const std::vector<Value>& key);
  Status ModifyByKey(const std::string& table, const std::vector<Value>& key,
                     ColumnId col, const Value& v);

  StatusOr<Tuple> GetByKey(const std::string& table,
                           const std::vector<Value>& key) const;
  /// `scan_opts` enables the morsel-parallel scan; same caveat as
  /// Transaction::Scan (no updates to this table while consuming it).
  std::unique_ptr<BatchSource> Scan(const std::string& table,
                                    std::vector<ColumnId> projection,
                                    const KeyBounds* bounds = nullptr,
                                    const ScanOptions& scan_opts = {}) const;
  StatusOr<uint64_t> RowCount(const std::string& table) const;

  /// Commits all tables atomically; Status::Conflict aborts everything.
  Status Commit();
  void Abort();

  uint64_t id() const { return id_; }
  bool finished() const { return finished_; }

 private:
  friend class MultiTxnManager;

  struct TableView {
    Table* table = nullptr;
    std::shared_ptr<const Pdt> read;   // alias of the table's Read-PDT
    std::shared_ptr<const Pdt> write;  // Write-PDT snapshot
    std::unique_ptr<Pdt> trans;        // private Trans-PDT
  };

  MultiTransaction(MultiTxnManager* mgr, uint64_t id, uint64_t start_time);

  StatusOr<TableView*> View(const std::string& table) const;
  std::vector<const Pdt*> Layers(const TableView& v) const {
    return {v.read.get(), v.write.get(), v.trans.get()};
  }
  StatusOr<Rid> UpperBoundRid(const TableView& v,
                              const std::vector<Value>& key) const;
  StatusOr<Rid> FindRidByKey(const TableView& v,
                             const std::vector<Value>& key) const;

  MultiTxnManager* mgr_;
  uint64_t id_;
  uint64_t start_time_;
  // Keyed by table name; mutable because views are materialized lazily
  // on first touch (const reads may be the first touch).
  mutable std::map<std::string, TableView> views_;
  std::vector<WalRecord> redo_;
  bool finished_ = false;
};

/// Coordinates transactions across a set of PDT-backed tables.
///
/// Exclusive driver rule: a table is driven by exactly one manager at a
/// time — either a per-table TxnManager or one MultiTxnManager. The
/// constructor claims each table's driver slot (asserting if a
/// TxnManager already holds it) and the destructor releases them;
/// mixing managers on one table would mutate the PDT layer stack under
/// two unrelated locks.
class MultiTxnManager {
 public:
  MultiTxnManager(std::vector<Table*> tables, Wal* wal = nullptr,
                  TxnManagerOptions opts = {});
  ~MultiTxnManager();

  std::unique_ptr<MultiTransaction> Begin();

  /// Replays a WAL of committed multi-table transactions.
  Status Recover(const Wal& wal);

  /// Write->Read propagation (and checkpointing) for every table, at a
  /// quiet point only.
  Status PropagateAndMaybeCheckpoint();

  uint64_t committed_count() const { return committed_count_; }
  uint64_t aborted_count() const { return aborted_count_; }
  const Pdt& write_pdt(const std::string& table) const {
    return *state_.at(table).write;
  }

 private:
  friend class MultiTransaction;

  struct TableState {
    Table* table = nullptr;
    std::unique_ptr<Pdt> write;              // master Write-PDT
    std::shared_ptr<const Pdt> write_snapshot;
    uint64_t write_snapshot_time = 0;
  };

  struct CommittedTxn {
    // Serialized Trans-PDTs of the tables the transaction touched.
    std::map<std::string, std::shared_ptr<Pdt>> pdts;
    uint64_t commit_time = 0;
    int refcnt = 0;
  };

  Status CommitLocked(MultiTransaction* txn);
  void FinishLocked(MultiTransaction* txn);

  mutable std::mutex mu_;
  TxnManagerOptions opts_;
  Wal* wal_;
  // Tables whose driver slot this manager claimed (released in dtor).
  std::vector<Table*> claimed_;
  std::map<std::string, TableState> state_;
  uint64_t clock_ = 1;
  uint64_t next_txn_id_ = 1;
  size_t active_ = 0;
  uint64_t committed_count_ = 0;
  uint64_t aborted_count_ = 0;
  std::deque<CommittedTxn> tz_;
};

}  // namespace pdtstore

#endif  // PDTSTORE_TXN_MULTI_TXN_H_

// Multi-table transactions: the natural generalization of Sec. 3.3 to
// transactions spanning several tables (the paper's TPC-H refresh
// functions update orders *and* lineitem atomically).
//
// Every table keeps its own three-layer PDT stack; a transaction holds a
// (read, write-copy, trans) triple per table it touches. Commit runs
// Algorithm 9 with per-table Serialize: a write-write conflict on *any*
// table aborts the whole transaction, and on success every table's
// Trans-PDT propagates into that table's master Write-PDT under one
// commit lock, giving all-or-nothing visibility.
//
// Concurrent write path: like TxnManager, commits are two-phase. The
// build phase (positioning updates, encoding WAL frames) runs outside
// the manager lock; Publish() seals the transaction's per-table
// Trans-PDTs into a delta record on a lock-free chain, and the first
// AwaitCommit() to take the lock folds the whole chain in publication
// order — one short critical section per batch, with every member
// riding the WAL's group-commit fsync. Write→Read propagation always
// installs a merged clone via Table::ReplacePdt (inline at quiet
// points, incrementally on the worker pool under load): unlike the
// per-table TxnManager, a MultiTxnManager is built for HTAP drivers
// whose analytic readers scan the tables directly (outside any
// transaction), so the live Read-PDT is never mutated in place.
#ifndef PDTSTORE_TXN_MULTI_TXN_H_
#define PDTSTORE_TXN_MULTI_TXN_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "db/table.h"
#include "txn/txn_manager.h"  // TxnManagerOptions
#include "txn/wal.h"

namespace pdtstore {

class MultiTxnManager;

namespace internal {
struct MultiDeltaRecord;
}  // namespace internal

/// Per-table layer counters of a MultiTxnManager (see GetStats()).
struct MultiTxnTableStats {
  std::string table;
  size_t read_pdt_entries = 0;
  size_t write_pdt_entries = 0;
  size_t merge_pending_entries = 0;  ///< claimed layer a bg merge is folding
  bool merge_inflight = false;
  uint64_t background_merges = 0;  ///< completed background propagations
};

/// Observability counters for the multi-table write path.
struct MultiTxnStats {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  size_t active = 0;
  size_t pending_deltas = 0;    ///< published, not yet folded
  uint64_t fold_batches = 0;    ///< chain claims that found records
  uint64_t folded_records = 0;  ///< records decided through folds
  uint64_t commit_lock_ns = 0;  ///< total ns commit work held the lock
  uint64_t wal_syncs = 0;       ///< fsyncs through the attached writer
  uint64_t wal_records = 0;
  /// Why the last background merge was abandoned (OK if none was).
  Status last_merge_error = Status::OK();
  std::vector<MultiTxnTableStats> tables;
};

/// A snapshot-isolated transaction over a fixed set of tables.
class MultiTransaction {
 public:
  ~MultiTransaction();

  Status Insert(const std::string& table, const Tuple& tuple);
  Status DeleteByKey(const std::string& table,
                     const std::vector<Value>& key);
  Status ModifyByKey(const std::string& table, const std::vector<Value>& key,
                     ColumnId col, const Value& v);

  StatusOr<Tuple> GetByKey(const std::string& table,
                           const std::vector<Value>& key) const;
  /// `scan_opts` enables the morsel-parallel scan; same caveat as
  /// Transaction::Scan (no updates to this table while consuming it).
  /// After Publish() the snapshot is sealed: the returned source (never
  /// null) fails with InvalidArgument on its first Next().
  std::unique_ptr<BatchSource> Scan(const std::string& table,
                                    std::vector<ColumnId> projection,
                                    const KeyBounds* bounds = nullptr,
                                    const ScanOptions& scan_opts = {}) const;
  /// Visible row count; after Publish() it reports the sealed count for
  /// tables the transaction touched (others fail with InvalidArgument).
  StatusOr<uint64_t> RowCount(const std::string& table) const;

  /// Commits all tables atomically; Status::Conflict aborts everything.
  /// Equivalent to Publish() + AwaitCommit().
  Status Commit();

  /// First half of the two-phase commit: seals every touched table's
  /// Trans-PDT into one delta record and publishes it onto the
  /// manager's lock-free commit chain — no lock is taken and no verdict
  /// is produced yet. After Publish() the transaction accepts no
  /// further updates or reads; the only legal follow-ups are
  /// AwaitCommit() and Abort() (which unlinks the record if no fold
  /// claimed it yet).
  Status Publish();

  /// Second half: drives or awaits the fold that decides this record
  /// (all tables together — the verdict is all-or-nothing), then waits
  /// for WAL durability (group commit).
  Status AwaitCommit();

  /// Discards all buffered updates. After Publish(), unlinks the
  /// published record if it has not been folded; if a fold already
  /// committed it, the commit stands and Abort is a no-op.
  void Abort();

  uint64_t id() const { return id_; }
  bool finished() const { return finished_; }
  /// True between Publish() and the verdict (or unlink).
  bool published() const { return rec_ != nullptr && !finished_; }

 private:
  friend class MultiTxnManager;

  struct TableView {
    Table* table = nullptr;
    std::shared_ptr<const Pdt> read;     // alias of the table's Read-PDT
    std::shared_ptr<const Pdt> pending;  // in-flight merge layer (or null)
    std::shared_ptr<const Pdt> write;    // Write-PDT snapshot
    std::unique_ptr<Pdt> trans;          // private Trans-PDT (until Publish)
  };

  MultiTransaction(MultiTxnManager* mgr, uint64_t id, uint64_t start_time);

  StatusOr<TableView*> View(const std::string& table) const;
  std::vector<const Pdt*> Layers(const TableView& v) const {
    std::vector<const Pdt*> layers;
    layers.reserve(4);
    layers.push_back(v.read.get());
    if (v.pending != nullptr) layers.push_back(v.pending.get());
    layers.push_back(v.write.get());
    layers.push_back(v.trans.get());
    return layers;
  }
  StatusOr<Rid> UpperBoundRid(const TableView& v,
                              const std::vector<Value>& key) const;
  StatusOr<Rid> FindRidByKey(const TableView& v,
                             const std::vector<Value>& key) const;

  MultiTxnManager* mgr_;
  uint64_t id_;
  uint64_t start_time_;
  // Keyed by table name; every managed table is snapshot together at
  // Begin(), so the transaction sees one instant across tables (lazy
  // per-table snapshots would let a reader observe, say, a lineitem row
  // whose order isn't visible yet).
  mutable std::map<std::string, TableView> views_;
  std::vector<WalRecord> redo_;
  // The published delta record; owned here, linked into the manager's
  // chain until a fold (or an abort-unlink) takes it out.
  std::unique_ptr<internal::MultiDeltaRecord> rec_;
  // RowCount() per touched table as of Publish() — the sealed Trans-PDTs
  // may be concurrently serialized by a fold, so they are off-limits.
  std::map<std::string, uint64_t> sealed_counts_;
  bool finished_ = false;
};

/// Coordinates transactions across a set of PDT-backed tables.
///
/// Exclusive driver rule: a table is driven by exactly one manager at a
/// time — either a per-table TxnManager or one MultiTxnManager. The
/// constructor claims each table's driver slot (asserting if a
/// TxnManager already holds it) and the destructor releases them;
/// mixing managers on one table would mutate the PDT layer stack under
/// two unrelated locks.
class MultiTxnManager {
 public:
  MultiTxnManager(std::vector<Table*> tables, Wal* wal = nullptr,
                  TxnManagerOptions opts = {});
  /// Drains in-flight background merges (their worker-pool tasks hold a
  /// pointer to this manager).
  ~MultiTxnManager();

  std::unique_ptr<MultiTransaction> Begin();

  /// Attaches the durable sink commits must reach before returning OK.
  /// Same contract as TxnManager::SetWalWriter: the writer must outlive
  /// the manager (or be detached with nullptr), the Wal's durability
  /// watermark is not touched, and a later flush or fsync failure is
  /// sticky — every subsequent commit is refused with that status.
  void SetWalWriter(WalWriter* writer);

  /// The sticky WAL health status: OK until a flush or fsync failed.
  Status wal_status() const;

  /// Replays a WAL of committed multi-table transactions.
  Status Recover(const Wal& wal);

  /// Write->Read propagation (and checkpointing) for every table, at a
  /// quiet point only (returns InvalidArgument otherwise; a
  /// published-but-unfolded commit still counts as active). Drains any
  /// in-flight background merges first. Like TxnManager, the in-place
  /// checkpoint fast path is reserved for managers without a durable
  /// writer — durable checkpointing is Database::Save's manifest
  /// protocol.
  Status PropagateAndMaybeCheckpoint();

  uint64_t committed_count() const {
    return committed_count_.load(std::memory_order_relaxed);
  }
  uint64_t aborted_count() const {
    return aborted_count_.load(std::memory_order_relaxed);
  }
  const Pdt& write_pdt(const std::string& table) const {
    return *state_.at(table).write;
  }

  /// Snapshot of the write-path counters (consistent under the lock).
  MultiTxnStats GetStats() const;

 private:
  friend class MultiTransaction;
  struct MergeJob;

  struct TableState {
    Table* table = nullptr;
    std::unique_ptr<Pdt> write;  // master Write-PDT
    std::shared_ptr<const Pdt> write_snapshot;
    uint64_t write_snapshot_time = 0;
    // Background merge state (under mu_; the pending layer itself is
    // immutable and shared with snapshots).
    std::shared_ptr<const Pdt> merge_pending;  // claimed Write-PDT
    bool merge_inflight = false;
    Status merge_error = Status::OK();
    uint64_t background_merges = 0;
  };

  struct CommittedTxn {
    // Serialized Trans-PDTs of the tables the transaction touched.
    std::map<std::string, std::shared_ptr<Pdt>> pdts;
    uint64_t commit_time = 0;
    int refcnt = 0;
  };

  // Snapshot one table's layer stack for a transaction beginning now.
  // Caller holds mu_.
  MultiTransaction::TableView MakeViewLocked(TableState* st);

  // --- delta-chain commit path (mirrors TxnManager) ---
  void PublishRecord(internal::MultiDeltaRecord* rec);
  Status AwaitVerdict(internal::MultiDeltaRecord* rec,
                      uint64_t* durable_upto);
  void FoldChainLocked();
  // Algorithm 9 for one record, across all its tables: per-table
  // conflict check against TZ, WAL append, fold into each table's
  // Write-PDT — all-or-nothing. Caller holds mu_.
  void CommitRecordLocked(internal::MultiDeltaRecord* rec);
  void AbortPublished(MultiTransaction* txn);
  bool UnlinkLocked(internal::MultiDeltaRecord* rec);
  Status SyncWal(uint64_t upto);
  void FinishActiveLocked(uint64_t start_time);
  void FinishLocked(MultiTransaction* txn);

  // --- background Write→Read merge (install-based; see file comment) ---
  // Per table: inline clone+install at quiet points, or an incremental
  // background merge when transactions are running. Caller holds mu_.
  Status MaybePropagateLocked();
  // Folds pending + write into a clone of `st`'s Read-PDT and installs
  // it via ReplacePdt. Caller holds mu_ and guarantees no merge is in
  // flight for `st`.
  Status FoldIntoReadLocked(TableState* st);
  void StartBackgroundMergeLocked(TableState* st);
  void MergeStep(std::shared_ptr<MergeJob> job);

  mutable std::mutex mu_;
  TxnManagerOptions opts_;
  Wal* wal_;
  // Durable sink; the group-commit state itself lives in the (possibly
  // shared) Wal.
  WalWriter* writer_ = nullptr;
  // Tables whose driver slot this manager claimed (released in dtor).
  std::vector<Table*> claimed_;
  std::map<std::string, TableState> state_;

  // The lock-free commit chain: newest record first; only PublishRecord
  // runs without mu_ (claims and splices happen under it).
  std::atomic<internal::MultiDeltaRecord*> delta_head_{nullptr};
  std::atomic<size_t> pending_deltas_{0};

  uint64_t clock_ = 1;
  uint64_t next_txn_id_ = 1;
  size_t active_ = 0;
  // Atomic so monitor threads can poll counts without taking mu_.
  std::atomic<uint64_t> committed_count_{0};
  std::atomic<uint64_t> aborted_count_{0};
  std::deque<CommittedTxn> tz_;

  // Background merge bookkeeping across tables (under mu_).
  size_t merges_inflight_ = 0;
  std::condition_variable merge_cv_;  // signals merge completion
  Status last_merge_error_ = Status::OK();

  // Write-path counters (under mu_).
  uint64_t fold_batches_ = 0;
  uint64_t folded_records_ = 0;
  uint64_t commit_lock_ns_ = 0;
};

}  // namespace pdtstore

#endif  // PDTSTORE_TXN_MULTI_TXN_H_

// Table schema: named, typed columns plus a sort key (SK) — an ordered
// prefix-comparable attribute sequence that is also a key of the table,
// exactly as the paper defines ordered columnar tables (Sec. 2).
#ifndef PDTSTORE_COLUMNSTORE_SCHEMA_H_
#define PDTSTORE_COLUMNSTORE_SCHEMA_H_

#include <string>
#include <vector>

#include "columnstore/types.h"
#include "columnstore/value.h"
#include "util/status.h"

namespace pdtstore {

/// One column: a name and a scalar type.
struct ColumnDef {
  std::string name;
  TypeId type;
};

/// Schema of an ordered table. `sort_key` lists the column indexes forming
/// the SK, in significance order. The SK is assumed unique (it is "a
/// sequence of attributes that defines a sort order, while also being a
/// key" — Sec. 2).
class Schema {
 public:
  Schema() = default;
  Schema(std::vector<ColumnDef> columns, std::vector<ColumnId> sort_key);

  /// Validates and constructs: distinct column names, sort key indexes in
  /// range, non-empty sort key.
  static StatusOr<Schema> Make(std::vector<ColumnDef> columns,
                               std::vector<ColumnId> sort_key);

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(ColumnId i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  const std::vector<ColumnId>& sort_key() const { return sort_key_; }

  /// Index of the named column, or kNotFound.
  StatusOr<ColumnId> ColumnIndex(const std::string& name) const;

  /// True if column `i` is part of the sort key.
  bool IsSortKeyColumn(ColumnId i) const;

  /// Extracts the SK values of a full tuple, in sort-key order.
  std::vector<Value> ExtractSortKey(const Tuple& tuple) const;

  /// Compares two full tuples on the sort key.
  int CompareSortKey(const Tuple& a, const Tuple& b) const;

  /// Compares a full tuple against already-extracted SK values.
  int CompareTupleToKey(const Tuple& tuple,
                        const std::vector<Value>& key) const;

  /// Checks a tuple: arity and per-column type match.
  Status ValidateTuple(const Tuple& tuple) const;

  /// Debug rendering: "name:TYPE, ... | SK(name, ...)".
  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
  std::vector<ColumnId> sort_key_;
};

}  // namespace pdtstore

#endif  // PDTSTORE_COLUMNSTORE_SCHEMA_H_

// VDT unit tests: insert/delete/modify table semantics (Sec. 2, "VDTs"),
// the value-based merge scan (MergeUnion/MergeDiff), forced SK scanning,
// and key-bounded scans.
#include "vdt/vdt.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "vdt/vdt_merge_scan.h"

namespace pdtstore {
namespace {

using testutil::BuildStore;
using testutil::InventoryRows;
using testutil::InventorySchema;

std::vector<Tuple> VdtScan(const ColumnStore& store, const Vdt& vdt,
                           std::vector<ColumnId> projection,
                           std::vector<SidRange> ranges = {},
                           KeyBounds bounds = {}, size_t batch = 1024) {
  VdtMergeScan scan(&store, &vdt, std::move(projection), std::move(ranges),
                    std::move(bounds));
  auto rows = CollectRows(&scan, batch);
  EXPECT_TRUE(rows.ok());
  return rows.ok() ? *rows : std::vector<Tuple>{};
}

class VdtTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = InventorySchema();
    store_ = BuildStore(schema_, InventoryRows());
    vdt_ = std::make_unique<Vdt>(schema_);
  }
  std::shared_ptr<const Schema> schema_;
  std::unique_ptr<ColumnStore> store_;
  std::unique_ptr<Vdt> vdt_;
};

TEST_F(VdtTest, InsertTableHoldsFullTuples) {
  ASSERT_TRUE(vdt_->AddInsert({"Berlin", "table", "Y", 10}).ok());
  EXPECT_EQ(vdt_->InsertCount(), 1u);
  EXPECT_EQ(vdt_->TotalDelta(), 1);
  const Tuple* t = vdt_->FindInsert({Value("Berlin"), Value("table")});
  ASSERT_NE(t, nullptr);
  EXPECT_EQ((*t)[3], Value(10));
  // Duplicate insert rejected.
  EXPECT_EQ(vdt_->AddInsert({"Berlin", "table", "Y", 99}).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(VdtTest, ModifyEntersBothTables) {
  // "an insert table that ... holds all inserted and modified tuples, and
  // a deletion table that only holds the sort key values of deleted or
  // modified tuples."
  ASSERT_TRUE(vdt_->AddModify({"London", "stool", "N", 9}, true).ok());
  EXPECT_EQ(vdt_->InsertCount(), 1u);
  EXPECT_EQ(vdt_->DeleteCount(), 1u);
  EXPECT_EQ(vdt_->TotalDelta(), 0);
  EXPECT_TRUE(vdt_->IsDeleted({Value("London"), Value("stool")}));
}

TEST_F(VdtTest, DeleteOfInsertErases) {
  ASSERT_TRUE(vdt_->AddInsert({"Berlin", "table", "Y", 10}).ok());
  ASSERT_TRUE(
      vdt_->AddDelete({Value("Berlin"), Value("table")}, false).ok());
  EXPECT_TRUE(vdt_->Empty());
}

TEST_F(VdtTest, MergeScanAppliesAllUpdateKinds) {
  ASSERT_TRUE(vdt_->AddInsert({"Berlin", "table", "Y", 10}).ok());
  ASSERT_TRUE(vdt_->AddModify({"London", "stool", "N", 9}, true).ok());
  ASSERT_TRUE(vdt_->AddDelete({Value("Paris"), Value("rug")}, true).ok());
  std::vector<Tuple> expected = {
      {"Berlin", "table", "Y", 10}, {"London", "chair", "N", 30},
      {"London", "stool", "N", 9},  {"London", "table", "N", 20},
      {"Paris", "stool", "N", 5},
  };
  EXPECT_EQ(VdtScan(*store_, *vdt_, {0, 1, 2, 3}), expected);
  // Small batches exercise the resume paths.
  EXPECT_EQ(VdtScan(*store_, *vdt_, {0, 1, 2, 3}, {}, {}, 2), expected);
}

TEST_F(VdtTest, TrailingInsertsAfterStableEnd) {
  ASSERT_TRUE(vdt_->AddInsert({"Zurich", "vase", "Y", 3}).ok());
  ASSERT_TRUE(vdt_->AddInsert({"Zurich", "wand", "Y", 4}).ok());
  auto rows = VdtScan(*store_, *vdt_, {0, 1, 2, 3});
  ASSERT_EQ(rows.size(), 7u);
  EXPECT_EQ(rows[5][1], Value("vase"));
  EXPECT_EQ(rows[6][1], Value("wand"));
}

TEST_F(VdtTest, ProjectionWithoutKeysStillMergesCorrectly) {
  // The scan itself must read the SK columns even though the caller only
  // wants qty — that is the architectural cost under study.
  ASSERT_TRUE(vdt_->AddModify({"London", "stool", "N", 9}, true).ok());
  auto rows = VdtScan(*store_, *vdt_, {3});
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[1][0], Value(9));
}

TEST_F(VdtTest, EmptyVdtIsIdentity) {
  EXPECT_EQ(VdtScan(*store_, *vdt_, {0, 1, 2, 3}), InventoryRows());
}

TEST_F(VdtTest, EmptyStableTableDrainsInserts) {
  auto empty_store = BuildStore(schema_, {});
  ASSERT_TRUE(vdt_->AddInsert({"A", "a", "Y", 1}).ok());
  ASSERT_TRUE(vdt_->AddInsert({"B", "b", "Y", 2}).ok());
  auto rows = VdtScan(*empty_store, *vdt_, {0, 1, 2, 3});
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(VdtTest, KeyBoundsRestrictInsertEmission) {
  ASSERT_TRUE(vdt_->AddInsert({"Aachen", "mat", "Y", 1}).ok());
  ASSERT_TRUE(vdt_->AddInsert({"Madrid", "sofa", "Y", 2}).ok());
  ASSERT_TRUE(vdt_->AddInsert({"Zurich", "vase", "Y", 3}).ok());
  KeyBounds bounds;
  bounds.lo = {Value("London")};
  bounds.hi = {Value("Paris")};
  // Restrict the stable scan to the same window the bounds describe.
  std::vector<SidRange> ranges = {{0, 5}};
  auto rows = VdtScan(*store_, *vdt_, {0, 1, 2, 3}, ranges, bounds);
  // Aachen (< lo) and Zurich (> hi) inserts are excluded; Madrid stays.
  bool has_madrid = false;
  for (const auto& t : rows) {
    EXPECT_NE(t[0], Value("Aachen"));
    EXPECT_NE(t[0], Value("Zurich"));
    if (t[0] == Value("Madrid")) has_madrid = true;
  }
  EXPECT_TRUE(has_madrid);
}

TEST_F(VdtTest, MemoryAccountingGrows) {
  size_t before = vdt_->MemoryBytes();
  ASSERT_TRUE(vdt_->AddInsert({"Berlin", "table", "Y", 10}).ok());
  EXPECT_GT(vdt_->MemoryBytes(), before);
  vdt_->Clear();
  EXPECT_TRUE(vdt_->Empty());
}

}  // namespace
}  // namespace pdtstore

#include "storage/encoding.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

namespace pdtstore {

const char* EncodingToString(Encoding e) {
  switch (e) {
    case Encoding::kPlain:
      return "PLAIN";
    case Encoding::kRle:
      return "RLE";
    case Encoding::kDeltaVarint:
      return "DELTA";
    case Encoding::kDict:
      return "DICT";
    case Encoding::kForBitPack:
      return "FOR";
  }
  return "UNKNOWN";
}

void PutVarint64(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

Status GetVarint64(const std::string& in, size_t* pos, uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  while (*pos < in.size() && shift <= 63) {
    uint8_t byte = static_cast<uint8_t>(in[*pos]);
    ++*pos;
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return Status::OK();
    }
    shift += 7;
  }
  return Status::Corruption("truncated varint");
}

namespace {

Status GetFixed64(const std::string& in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return Status::Corruption("truncated fixed64");
  *v = DecodeFixed64(in.data() + *pos);
  *pos += 8;
  return Status::OK();
}

void PutLengthPrefixed(std::string* out, const std::string& s) {
  PutVarint64(out, s.size());
  out->append(s);
}

Status GetLengthPrefixed(const std::string& in, size_t* pos,
                         std::string* s) {
  uint64_t len;
  PDT_RETURN_NOT_OK(GetVarint64(in, pos, &len));
  if (*pos + len > in.size()) return Status::Corruption("truncated string");
  s->assign(in.data() + *pos, len);
  *pos += len;
  return Status::OK();
}

// Appends one value of `col[i]` in plain form. Reads through the
// representation-resolving spans: checkpoint hands us columns that may be
// borrowed from pool chunks or still carrying dictionary codes.
void PutOnePlain(std::string* out, const ColumnVector& col, size_t i) {
  switch (col.type()) {
    case TypeId::kInt64:
      PutFixed64(out, static_cast<uint64_t>(col.ints_data()[i]));
      break;
    case TypeId::kDouble: {
      uint64_t bits;
      double d = col.doubles_data()[i];
      std::memcpy(&bits, &d, 8);
      PutFixed64(out, bits);
      break;
    }
    case TypeId::kString:
      PutLengthPrefixed(out, col.StringAt(i));
      break;
  }
}

Status GetOnePlain(const std::string& in, size_t* pos, ColumnVector* out) {
  switch (out->type()) {
    case TypeId::kInt64: {
      uint64_t v;
      PDT_RETURN_NOT_OK(GetFixed64(in, pos, &v));
      out->ints().push_back(static_cast<int64_t>(v));
      return Status::OK();
    }
    case TypeId::kDouble: {
      uint64_t bits;
      PDT_RETURN_NOT_OK(GetFixed64(in, pos, &bits));
      double d;
      std::memcpy(&d, &bits, 8);
      out->doubles().push_back(d);
      return Status::OK();
    }
    case TypeId::kString: {
      std::string s;
      PDT_RETURN_NOT_OK(GetLengthPrefixed(in, pos, &s));
      out->strings().push_back(std::move(s));
      return Status::OK();
    }
  }
  return Status::Internal("bad type");
}

bool ValuesEqualAt(const ColumnVector& col, size_t i, size_t j) {
  return col.CompareAt(i, col, j) == 0;
}

Status EncodePlain(const ColumnVector& col, std::string* out) {
  for (size_t i = 0; i < col.size(); ++i) PutOnePlain(out, col, i);
  return Status::OK();
}

Status EncodeRle(const ColumnVector& col, std::string* out) {
  size_t i = 0;
  while (i < col.size()) {
    size_t j = i + 1;
    while (j < col.size() && ValuesEqualAt(col, j, i)) ++j;
    PutVarint64(out, j - i);
    PutOnePlain(out, col, i);
    i = j;
  }
  return Status::OK();
}

Status EncodeDeltaVarint(const ColumnVector& col, std::string* out) {
  if (col.type() != TypeId::kInt64) {
    return Status::InvalidArgument("delta encoding requires INT64");
  }
  int64_t prev = 0;
  const int64_t* vals = col.ints_data();
  for (size_t i = 0; i < col.size(); ++i) {
    int64_t v = vals[i];
    PutVarint64(out, ZigZagEncode(v - prev));
    prev = v;
  }
  return Status::OK();
}

Status EncodeDict(const ColumnVector& col, std::string* out) {
  if (col.type() != TypeId::kString) {
    return Status::InvalidArgument("dict encoding requires STRING");
  }
  std::unordered_map<std::string, uint64_t> dict;
  std::vector<const std::string*> order;
  std::vector<uint64_t> codes;
  codes.reserve(col.size());
  for (size_t i = 0; i < col.size(); ++i) {
    auto [it, inserted] = dict.emplace(col.StringAt(i), dict.size());
    if (inserted) order.push_back(&it->first);
    codes.push_back(it->second);
  }
  PutVarint64(out, order.size());
  for (const auto* s : order) PutLengthPrefixed(out, *s);
  for (uint64_t c : codes) PutVarint64(out, c);
  return Status::OK();
}

// Frame-of-reference + bit packing: store min(v) and the bit width of
// max(v - min), then pack each offset into `width` bits. The workhorse
// encoding for narrow-range integer columns (quantities, small codes) in
// columnar systems like the paper's.
Status EncodeForBitPack(const ColumnVector& col, std::string* out) {
  if (col.type() != TypeId::kInt64) {
    return Status::InvalidArgument("FOR encoding requires INT64");
  }
  const int64_t* v = col.ints_data();
  const size_t n = col.size();
  int64_t min_v = n == 0 ? 0 : v[0];
  int64_t max_v = min_v;
  for (size_t i = 0; i < n; ++i) {
    min_v = std::min(min_v, v[i]);
    max_v = std::max(max_v, v[i]);
  }
  uint64_t range = static_cast<uint64_t>(max_v) - static_cast<uint64_t>(min_v);
  int width = 1;
  while (width < 64 && (range >> width) != 0) ++width;
  if (width > 56) {
    // The accumulator scheme below keeps acc_bits < 8 between values, so
    // widths beyond 56 bits could overflow a shift; such columns gain
    // nothing from FOR anyway.
    return Status::InvalidArgument("FOR range too wide; use plain");
  }
  PutVarint64(out, ZigZagEncode(min_v));
  out->push_back(static_cast<char>(width));
  uint64_t acc = 0;
  int acc_bits = 0;  // < 8 between values
  for (size_t i = 0; i < n; ++i) {
    uint64_t off = static_cast<uint64_t>(v[i]) - static_cast<uint64_t>(min_v);
    acc |= off << acc_bits;
    acc_bits += width;
    while (acc_bits >= 8) {
      out->push_back(static_cast<char>(acc & 0xff));
      acc >>= 8;
      acc_bits -= 8;
    }
  }
  if (acc_bits > 0) out->push_back(static_cast<char>(acc & 0xff));
  return Status::OK();
}

Status DecodeForBitPack(const std::string& in, size_t count,
                        ColumnVector* out) {
  size_t pos = 0;
  uint64_t zz;
  PDT_RETURN_NOT_OK(GetVarint64(in, &pos, &zz));
  int64_t min_v = ZigZagDecode(zz);
  if (pos >= in.size()) return Status::Corruption("truncated FOR header");
  int width = static_cast<uint8_t>(in[pos]);
  ++pos;
  if (width <= 0 || width > 56) {
    return Status::Corruption("bad FOR bit width");
  }
  uint64_t acc = 0;
  int acc_bits = 0;
  const uint64_t mask = width == 64 ? ~0ULL : ((1ULL << width) - 1);
  for (size_t i = 0; i < count; ++i) {
    while (acc_bits < width) {
      if (pos >= in.size()) return Status::Corruption("truncated FOR data");
      acc |= static_cast<uint64_t>(static_cast<uint8_t>(in[pos])) << acc_bits;
      ++pos;
      acc_bits += 8;
    }
    uint64_t off = acc & mask;
    acc >>= width;
    acc_bits -= width;
    out->ints().push_back(
        static_cast<int64_t>(static_cast<uint64_t>(min_v) + off));
  }
  return Status::OK();
}

Status DecodePlain(const std::string& in, size_t count, ColumnVector* out) {
  size_t pos = 0;
  for (size_t i = 0; i < count; ++i) {
    PDT_RETURN_NOT_OK(GetOnePlain(in, &pos, out));
  }
  return Status::OK();
}

Status DecodeRle(const std::string& in, size_t count, ColumnVector* out,
                 bool keep_encoded) {
  size_t pos = 0;
  size_t produced = 0;
  ColumnVector one(out->type());
  // Values always materialize plain; with keep_encoded the run layout is
  // additionally recorded as an RleRuns sidecar so predicate kernels can
  // evaluate one compare per run.
  std::vector<uint32_t> ends;
  while (produced < count) {
    uint64_t run;
    PDT_RETURN_NOT_OK(GetVarint64(in, &pos, &run));
    one.Clear();
    PDT_RETURN_NOT_OK(GetOnePlain(in, &pos, &one));
    if (produced + run > count) return Status::Corruption("RLE overrun");
    for (uint64_t k = 0; k < run; ++k) out->AppendFrom(one, 0);
    produced += run;
    if (keep_encoded) ends.push_back(static_cast<uint32_t>(produced));
  }
  if (keep_encoded && count > 0 && count <= UINT32_MAX) {
    auto runs = std::make_shared<RleRuns>();
    runs->ends = std::move(ends);
    out->SetRleRuns(std::move(runs));
  }
  return Status::OK();
}

Status DecodeDeltaVarint(const std::string& in, size_t count,
                         ColumnVector* out) {
  size_t pos = 0;
  int64_t prev = 0;
  for (size_t i = 0; i < count; ++i) {
    uint64_t zz;
    PDT_RETURN_NOT_OK(GetVarint64(in, &pos, &zz));
    prev += ZigZagDecode(zz);
    out->ints().push_back(prev);
  }
  return Status::OK();
}

Status DecodeDict(const std::string& in, size_t count, ColumnVector* out,
                  bool keep_encoded) {
  size_t pos = 0;
  uint64_t dict_size;
  PDT_RETURN_NOT_OK(GetVarint64(in, &pos, &dict_size));
  if (dict_size > in.size()) return Status::Corruption("dict size overflow");
  std::vector<std::string> dict(dict_size);
  for (auto& s : dict) {
    PDT_RETURN_NOT_OK(GetLengthPrefixed(in, &pos, &s));
  }
  if (keep_encoded) {
    // Keep the dictionary live: the column becomes a uint32 code vector
    // plus a shared StringDict with per-entry hashes precomputed once
    // here, so every downstream group-by/join over this chunk hashes by
    // array lookup.
    auto shared = std::make_shared<StringDict>();
    shared->hashes.reserve(dict.size());
    for (const auto& s : dict) {
      shared->hashes.push_back(HashBytes(s.data(), s.size()));
    }
    shared->values = std::move(dict);
    const size_t nvals = shared->values.size();
    out->AdoptDict(std::move(shared));
    auto& codes = out->codes();
    codes.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      uint64_t code;
      PDT_RETURN_NOT_OK(GetVarint64(in, &pos, &code));
      if (code >= nvals) return Status::Corruption("dict code overflow");
      codes.push_back(static_cast<uint32_t>(code));
    }
    return Status::OK();
  }
  for (size_t i = 0; i < count; ++i) {
    uint64_t code;
    PDT_RETURN_NOT_OK(GetVarint64(in, &pos, &code));
    if (code >= dict.size()) return Status::Corruption("dict code overflow");
    out->strings().push_back(dict[code]);
  }
  return Status::OK();
}

}  // namespace

Status EncodeColumn(const ColumnVector& col, Encoding encoding,
                    std::string* out) {
  out->clear();
  switch (encoding) {
    case Encoding::kPlain:
      return EncodePlain(col, out);
    case Encoding::kRle:
      return EncodeRle(col, out);
    case Encoding::kDeltaVarint:
      return EncodeDeltaVarint(col, out);
    case Encoding::kDict:
      return EncodeDict(col, out);
    case Encoding::kForBitPack:
      return EncodeForBitPack(col, out);
  }
  return Status::InvalidArgument("unknown encoding");
}

Status DecodeColumn(const std::string& bytes, TypeId type, Encoding encoding,
                    size_t count, ColumnVector* out, bool keep_encoded) {
  *out = ColumnVector(type);
  out->Reserve(count);
  switch (encoding) {
    case Encoding::kPlain:
      return DecodePlain(bytes, count, out);
    case Encoding::kRle:
      return DecodeRle(bytes, count, out, keep_encoded);
    case Encoding::kDeltaVarint:
      if (type != TypeId::kInt64) {
        return Status::InvalidArgument("delta decoding requires INT64");
      }
      return DecodeDeltaVarint(bytes, count, out);
    case Encoding::kDict:
      if (type != TypeId::kString) {
        return Status::InvalidArgument("dict decoding requires STRING");
      }
      return DecodeDict(bytes, count, out, keep_encoded);
    case Encoding::kForBitPack:
      if (type != TypeId::kInt64) {
        return Status::InvalidArgument("FOR decoding requires INT64");
      }
      return DecodeForBitPack(bytes, count, out);
  }
  return Status::InvalidArgument("unknown encoding");
}

Encoding ChooseEncoding(const ColumnVector& col, bool compression_enabled) {
  if (!compression_enabled || col.size() < 8) return Encoding::kPlain;
  const size_t n = col.size();
  // Count runs and (for ints) sortedness over a bounded sample scan.
  size_t runs = 1;
  bool sorted = true;
  for (size_t i = 1; i < n; ++i) {
    int c = col.CompareAt(i - 1, col, i);
    if (c != 0) ++runs;
    if (c > 0) sorted = false;
  }
  if (runs <= n / 4) return Encoding::kRle;
  if (col.type() == TypeId::kInt64 && sorted) return Encoding::kDeltaVarint;
  if (col.type() == TypeId::kInt64) {
    // Narrow-range unsorted integers: frame-of-reference bit packing.
    const int64_t* v = col.ints_data();
    int64_t min_v = v[0], max_v = min_v;
    for (size_t i = 0; i < n; ++i) {
      min_v = std::min(min_v, v[i]);
      max_v = std::max(max_v, v[i]);
    }
    uint64_t range =
        static_cast<uint64_t>(max_v) - static_cast<uint64_t>(min_v);
    int width = 1;
    while (width < 64 && (range >> width) != 0) ++width;
    if (width <= 32) return Encoding::kForBitPack;
  }
  if (col.type() == TypeId::kString) {
    // A column still in dictionary representation is dictionary-friendly
    // by construction.
    if (col.is_dict() && col.dict()->values.size() <= n / 4) {
      return Encoding::kDict;
    }
    std::unordered_map<std::string, int> distinct;
    for (size_t i = 0; i < n && distinct.size() <= n / 4; ++i) {
      distinct.emplace(col.StringAt(i), 0);
    }
    if (distinct.size() <= n / 4) return Encoding::kDict;
  }
  return Encoding::kPlain;
}

}  // namespace pdtstore

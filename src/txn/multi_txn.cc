#include "txn/multi_txn.h"

#include <algorithm>
#include <cassert>

#include "txn/layered.h"

namespace pdtstore {

// ---------------------------------------------------------------------
// MultiTransaction.
// ---------------------------------------------------------------------

MultiTransaction::MultiTransaction(MultiTxnManager* mgr, uint64_t id,
                                   uint64_t start_time)
    : mgr_(mgr), id_(id), start_time_(start_time) {}

MultiTransaction::~MultiTransaction() {
  if (!finished_) Abort();
}

StatusOr<MultiTransaction::TableView*> MultiTransaction::View(
    const std::string& table) const {
  auto it = views_.find(table);
  if (it != views_.end()) return &it->second;
  // First touch: snapshot under the manager lock.
  std::lock_guard<std::mutex> lock(mgr_->mu_);
  auto sit = mgr_->state_.find(table);
  if (sit == mgr_->state_.end()) {
    return Status::NotFound("table not managed: " + table);
  }
  MultiTxnManager::TableState& st = sit->second;
  if (!st.write_snapshot || st.write_snapshot_time != mgr_->clock_) {
    st.write_snapshot =
        std::shared_ptr<const Pdt>(st.write->Clone().release());
    st.write_snapshot_time = mgr_->clock_;
  }
  TableView view;
  view.table = st.table;
  // Pin the Read-PDT for the view's lifetime. No background merge can
  // replace it concurrently — this manager holds the table's exclusive
  // driver claim (see the constructor) and never merges in the
  // background — but the pin keeps the layer alive across this
  // manager's own quiet-point propagation bookkeeping and makes the
  // pointer read safe against any future ReplacePdt caller.
  view.read = st.table->SharedPdt();
  view.write = st.write_snapshot;
  view.trans = std::make_unique<Pdt>(st.table->shared_schema(),
                                     st.table->options().pdt);
  auto [vit, unused] = views_.emplace(table, std::move(view));
  return &vit->second;
}

StatusOr<Rid> MultiTransaction::UpperBoundRid(
    const TableView& v, const std::vector<Value>& key) const {
  Rid lo = 0;
  Rid hi = internal::LayeredRowCount(v.table->store().num_rows(), Layers(v));
  while (lo < hi) {
    Rid mid = lo + (hi - lo) / 2;
    PDT_ASSIGN_OR_RETURN(
        auto mid_key,
        internal::LayeredSortKey(v.table->store(), Layers(v), mid));
    int cmp = 0;
    for (size_t i = 0; i < mid_key.size() && i < key.size(); ++i) {
      cmp = mid_key[i].Compare(key[i]);
      if (cmp != 0) break;
    }
    if (cmp <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

StatusOr<Rid> MultiTransaction::FindRidByKey(
    const TableView& v, const std::vector<Value>& key) const {
  PDT_ASSIGN_OR_RETURN(Rid ub, UpperBoundRid(v, key));
  if (ub == 0) return Status::NotFound("key not found");
  PDT_ASSIGN_OR_RETURN(
      auto prev_key,
      internal::LayeredSortKey(v.table->store(), Layers(v), ub - 1));
  if (CompareTuples(prev_key, key) != 0) {
    return Status::NotFound("key not found");
  }
  return ub - 1;
}

Status MultiTransaction::Insert(const std::string& table,
                                const Tuple& tuple) {
  if (finished_) return Status::InvalidArgument("transaction finished");
  PDT_ASSIGN_OR_RETURN(TableView * v, View(table));
  const Schema& schema = v->table->schema();
  PDT_RETURN_NOT_OK(schema.ValidateTuple(tuple));
  std::vector<Value> key = schema.ExtractSortKey(tuple);
  auto existing = FindRidByKey(*v, key);
  if (existing.ok()) return Status::AlreadyExists("duplicate sort key");
  if (existing.status().code() != StatusCode::kNotFound) {
    return existing.status();
  }
  PDT_ASSIGN_OR_RETURN(Rid rid, UpperBoundRid(*v, key));
  Sid sid = v->trans->SKRidToSid(key, rid);
  PDT_RETURN_NOT_OK(v->trans->AddInsert(sid, rid, tuple));
  WalRecord r;
  r.type = WalRecordType::kInsert;
  r.table = table;
  r.tuple = tuple;
  redo_.push_back(std::move(r));
  return Status::OK();
}

Status MultiTransaction::DeleteByKey(const std::string& table,
                                     const std::vector<Value>& key) {
  if (finished_) return Status::InvalidArgument("transaction finished");
  PDT_ASSIGN_OR_RETURN(TableView * v, View(table));
  PDT_ASSIGN_OR_RETURN(Rid rid, FindRidByKey(*v, key));
  PDT_RETURN_NOT_OK(v->trans->AddDelete(rid, key));
  WalRecord r;
  r.type = WalRecordType::kDelete;
  r.table = table;
  r.key = key;
  redo_.push_back(std::move(r));
  return Status::OK();
}

Status MultiTransaction::ModifyByKey(const std::string& table,
                                     const std::vector<Value>& key,
                                     ColumnId col, const Value& value) {
  if (finished_) return Status::InvalidArgument("transaction finished");
  PDT_ASSIGN_OR_RETURN(TableView * v, View(table));
  const Schema& schema = v->table->schema();
  if (schema.IsSortKeyColumn(col)) {
    PDT_ASSIGN_OR_RETURN(Rid rid, FindRidByKey(*v, key));
    PDT_ASSIGN_OR_RETURN(
        Tuple t, internal::LayeredTuple(v->table->store(), Layers(*v), rid));
    PDT_RETURN_NOT_OK(DeleteByKey(table, key));
    t[col] = value;
    return Insert(table, t);
  }
  PDT_ASSIGN_OR_RETURN(Rid rid, FindRidByKey(*v, key));
  PDT_RETURN_NOT_OK(v->trans->AddModify(rid, col, value));
  WalRecord r;
  r.type = WalRecordType::kModify;
  r.table = table;
  r.key = key;
  r.column = col;
  r.value = value;
  redo_.push_back(std::move(r));
  return Status::OK();
}

StatusOr<Tuple> MultiTransaction::GetByKey(
    const std::string& table, const std::vector<Value>& key) const {
  PDT_ASSIGN_OR_RETURN(TableView * v, View(table));
  PDT_ASSIGN_OR_RETURN(Rid rid, FindRidByKey(*v, key));
  return internal::LayeredTuple(v->table->store(), Layers(*v), rid);
}

std::unique_ptr<BatchSource> MultiTransaction::Scan(
    const std::string& table, std::vector<ColumnId> projection,
    const KeyBounds* bounds, const ScanOptions& scan_opts) const {
  auto view = View(table);
  if (!view.ok()) return nullptr;
  TableView* v = *view;
  std::vector<SidRange> ranges;
  if (bounds != nullptr) {
    ranges = v->table->sparse_index().LookupRange(bounds->lo, bounds->hi);
  }
  return internal::LayeredScan(v->table->store(), Layers(*v),
                               std::move(projection), std::move(ranges),
                               scan_opts);
}

StatusOr<uint64_t> MultiTransaction::RowCount(
    const std::string& table) const {
  PDT_ASSIGN_OR_RETURN(TableView * v, View(table));
  return internal::LayeredRowCount(v->table->store().num_rows(), Layers(*v));
}

Status MultiTransaction::Commit() {
  if (finished_) return Status::InvalidArgument("transaction finished");
  return mgr_->CommitLocked(this);
}

void MultiTransaction::Abort() {
  if (finished_) return;
  std::lock_guard<std::mutex> lock(mgr_->mu_);
  mgr_->FinishLocked(this);
  ++mgr_->aborted_count_;
  if (mgr_->wal_ != nullptr) mgr_->wal_->LogAbort(id_);
}

// ---------------------------------------------------------------------
// MultiTxnManager.
// ---------------------------------------------------------------------

MultiTxnManager::MultiTxnManager(std::vector<Table*> tables, Wal* wal,
                                 TxnManagerOptions opts)
    : opts_(opts), wal_(wal) {
  for (Table* t : tables) {
    assert(t->pdt() != nullptr && "multi-table txns require PDT tables");
    // A table is driven by exactly one manager: this one claims the
    // driver slot, so no per-table TxnManager (whose background merge
    // would ReplacePdt under a different lock) can coexist with the
    // in-place PDT mutation CommitLocked performs under mu_.
    bool claimed = t->AcquireTxnDriver();
    assert(claimed &&
           "table is already driven by another transaction manager");
    if (claimed) claimed_.push_back(t);
    TableState st;
    st.table = t;
    st.write = std::make_unique<Pdt>(t->shared_schema(), t->options().pdt);
    state_.emplace(t->name(), std::move(st));
  }
}

MultiTxnManager::~MultiTxnManager() {
  for (Table* t : claimed_) t->ReleaseTxnDriver();
}

std::unique_ptr<MultiTransaction> MultiTxnManager::Begin() {
  std::lock_guard<std::mutex> lock(mu_);
  ++active_;
  return std::unique_ptr<MultiTransaction>(
      new MultiTransaction(this, next_txn_id_++, clock_));
}

void MultiTxnManager::FinishLocked(MultiTransaction* txn) {
  for (auto& z : tz_) {
    if (txn->start_time_ < z.commit_time) --z.refcnt;
  }
  tz_.erase(std::remove_if(
                tz_.begin(), tz_.end(),
                [](const CommittedTxn& z) { return z.refcnt <= 0; }),
            tz_.end());
  --active_;
  txn->finished_ = true;
}

Status MultiTxnManager::CommitLocked(MultiTransaction* txn) {
  std::lock_guard<std::mutex> lock(mu_);
  Status conflict = Status::OK();
  for (auto& z : tz_) {
    if (txn->start_time_ >= z.commit_time) continue;
    if (!conflict.ok()) continue;
    // Serialize per overlapping table; any conflict aborts everything.
    for (auto& [name, view] : txn->views_) {
      auto zit = z.pdts.find(name);
      if (zit == z.pdts.end()) continue;
      Status st = view.trans->SerializeAgainst(*zit->second);
      if (!st.ok()) {
        if (st.code() != StatusCode::kConflict) {
          FinishLocked(txn);
          return st;
        }
        conflict = st;
        break;
      }
    }
  }
  if (!conflict.ok()) {
    FinishLocked(txn);
    ++aborted_count_;
    if (wal_ != nullptr) wal_->LogAbort(txn->id_);
    return conflict;
  }
  if (wal_ != nullptr) {
    wal_->LogBegin(txn->id_);
    for (WalRecord& r : txn->redo_) {
      r.txn_id = txn->id_;
      wal_->Append(r);
    }
    wal_->LogCommit(txn->id_);
  }
  // Atomic visibility: propagate every touched table's Trans-PDT into
  // its master Write-PDT under this one lock.
  for (auto& [name, view] : txn->views_) {
    if (view.trans->Empty()) continue;
    PDT_RETURN_NOT_OK(state_.at(name).write->Propagate(*view.trans));
  }
  ++clock_;
  ++committed_count_;
  uint64_t commit_time = clock_;
  FinishLocked(txn);
  int refs = static_cast<int>(active_);
  if (refs > 0) {
    CommittedTxn entry;
    entry.commit_time = commit_time;
    entry.refcnt = refs;
    for (auto& [name, view] : txn->views_) {
      if (view.trans->Empty()) continue;
      entry.pdts.emplace(name, std::shared_ptr<Pdt>(view.trans.release()));
    }
    if (!entry.pdts.empty()) tz_.push_back(std::move(entry));
  }
  // Opportunistic Write->Read migration at quiet points.
  if (active_ == 0) {
    for (auto& [name, st] : state_) {
      if (st.write->EntryCount() > opts_.write_pdt_max_entries) {
        PDT_RETURN_NOT_OK(st.table->pdt()->Propagate(*st.write));
        st.write->Clear();
        st.write_snapshot.reset();
        st.write_snapshot_time = 0;
      }
    }
  }
  return Status::OK();
}

Status MultiTxnManager::PropagateAndMaybeCheckpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_ > 0) {
    return Status::InvalidArgument(
        "cannot propagate/checkpoint with active transactions");
  }
  for (auto& [name, st] : state_) {
    if (!st.write->Empty()) {
      PDT_RETURN_NOT_OK(st.table->pdt()->Propagate(*st.write));
      st.write->Clear();
      st.write_snapshot.reset();
      st.write_snapshot_time = 0;
    }
    if (st.table->pdt()->EntryCount() > opts_.read_pdt_max_entries) {
      PDT_RETURN_NOT_OK(st.table->Checkpoint());
      if (wal_ != nullptr) wal_->LogCheckpoint(name);
    }
  }
  return Status::OK();
}

Status MultiTxnManager::Recover(const Wal& wal) {
  std::map<uint64_t, std::vector<WalRecord>> pending;
  return wal.Replay([&](const WalRecord& r) -> Status {
    switch (r.type) {
      case WalRecordType::kBegin:
        pending[r.txn_id] = {};
        break;
      case WalRecordType::kInsert:
      case WalRecordType::kDelete:
      case WalRecordType::kModify:
        pending[r.txn_id].push_back(r);
        break;
      case WalRecordType::kAbort:
        pending.erase(r.txn_id);
        break;
      case WalRecordType::kCommit: {
        auto it = pending.find(r.txn_id);
        if (it == pending.end()) break;
        auto txn = Begin();
        for (const WalRecord& op : it->second) {
          Status st;
          switch (op.type) {
            case WalRecordType::kInsert:
              st = txn->Insert(op.table, op.tuple);
              break;
            case WalRecordType::kDelete:
              st = txn->DeleteByKey(op.table, op.key);
              break;
            case WalRecordType::kModify:
              st = txn->ModifyByKey(op.table, op.key, op.column, op.value);
              break;
            default:
              break;
          }
          if (!st.ok()) return st;
        }
        PDT_RETURN_NOT_OK(txn->Commit());
        pending.erase(it);
        break;
      }
      case WalRecordType::kCheckpoint:
        break;
    }
    return Status::OK();
  });
}

}  // namespace pdtstore

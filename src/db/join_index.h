// Join index maintained under PDT updates — the paper's first "future
// work" item ("keeping join indices up-to-date with PDTs", Sec. 6).
//
// A join index materializes, for every fact-table row, the position of
// its dimension-table match, so foreign-key joins become positional
// lookups instead of value joins. The problem under updates is that
// positions shift; the PDT's stable/current position split solves it:
//
//   * The index itself is stored in the *SID domain* of both tables
//     (fact SID -> dim SID), which updates never disturb — exactly the
//     property that keeps sparse indexes "stale but valid" (Sec. 2).
//   * At lookup time the two PDTs translate: fact RID -> fact SID
//     (LookupRid), then dim SID -> dim RID (SidToRid).
//   * Fact tuples inserted after the build have no stable SID; they are
//     resolved once by value against the dimension and memoized in a
//     small delta map keyed by insert-space offset.
//
// The index stays valid until either table is checkpointed (SIDs are
// renumbered then); rebuild it alongside, like any derived structure.
#ifndef PDTSTORE_DB_JOIN_INDEX_H_
#define PDTSTORE_DB_JOIN_INDEX_H_

#include <unordered_map>
#include <vector>

#include "db/table.h"

namespace pdtstore {

/// A positional FK join index from a fact table onto a dimension table
/// with a single-column sort key.
class JoinIndex {
 public:
  /// Builds from the *stable* images: for every stable fact row, the
  /// SID of the dimension row whose sort key equals the fact's `fk_col`
  /// value. Fails if a stable fact row dangles.
  static StatusOr<JoinIndex> Build(const Table* fact, const Table* dim,
                                   ColumnId fk_col);

  /// Current dimension RID joined to the fact tuple at `fact_rid`.
  /// NotFound if the dimension row was deleted (dangling) or the fact
  /// insert's key has no dimension match.
  StatusOr<Rid> DimRidForFactRid(Rid fact_rid) const;

  /// Number of memoized post-build fact inserts.
  size_t delta_entries() const { return insert_cache_.size(); }
  size_t stable_entries() const { return dim_sids_.size(); }

 private:
  JoinIndex(const Table* fact, const Table* dim, ColumnId fk_col)
      : fact_(fact), dim_(dim), fk_col_(fk_col) {}

  // Value-based resolution of a key to a dim SID (build + insert path).
  StatusOr<Sid> ResolveDimSid(const Value& key) const;

  const Table* fact_;
  const Table* dim_;
  ColumnId fk_col_;
  std::vector<Sid> dim_sids_;  // indexed by fact SID
  // Fact inserts resolved lazily: insert-space offset -> dim SID.
  mutable std::unordered_map<uint64_t, Sid> insert_cache_;
};

}  // namespace pdtstore

#endif  // PDTSTORE_DB_JOIN_INDEX_H_

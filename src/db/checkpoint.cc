#include "db/checkpoint.h"

namespace pdtstore {

bool ShouldCheckpoint(const Table& table, const CheckpointPolicy& policy) {
  size_t updates = 0;
  if (const Pdt* pdt = table.pdt()) {
    updates = pdt->EntryCount();
  } else if (const Vdt* vdt = table.vdt()) {
    updates = vdt->InsertCount() + vdt->DeleteCount();
  }
  if (policy.max_delta_updates > 0 && updates > policy.max_delta_updates) {
    return true;
  }
  if (policy.max_delta_bytes > 0 &&
      table.DeltaMemoryBytes() > policy.max_delta_bytes) {
    return true;
  }
  if (policy.max_delta_fraction > 0.0 && table.store().num_rows() > 0) {
    double frac = static_cast<double>(updates) /
                  static_cast<double>(table.store().num_rows());
    if (frac > policy.max_delta_fraction) return true;
  }
  return false;
}

StatusOr<bool> MaybeCheckpoint(Table* table, const CheckpointPolicy& policy) {
  if (!ShouldCheckpoint(*table, policy)) return false;
  PDT_RETURN_NOT_OK(table->Checkpoint());
  return true;
}

}  // namespace pdtstore

// Concurrent write path: the same multi-writer commit workload against
// the single-lock baseline (every committer runs the full Algorithm 9 —
// conflict check, WAL encode + append, Write-PDT fold — under the
// manager lock) and the delta-chain path (writers pre-encode WAL frames
// and publish lock-free; one fold leader commits the batch under a short
// critical section). Reports commits/sec, p99 commit latency, and the
// time commit work actually held the lock:
//
//   bench_write_path [--txns=N] [--ops=K] [--writers=1,2,4,8] [--json=PATH]
//
// On a single core the throughput gap narrows (there is no parallelism
// to reclaim), but lock_us_per_commit still falls: the per-commit WAL
// encoding has moved outside the critical section, which is the quantity
// the delta chain exists to shrink.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "txn/txn_manager.h"
#include "util/file.h"
#include "util/stopwatch.h"

namespace pdtstore {
namespace bench {
namespace {

std::shared_ptr<const Schema> BenchSchema() {
  auto s = Schema::Make({{"k", TypeId::kInt64}, {"v", TypeId::kInt64}}, {0});
  return std::make_shared<const Schema>(std::move(*s));
}

struct RunResult {
  double commits_per_sec = 0;
  double p99_commit_ms = 0;
  double lock_us_per_commit = 0;
  double syncs_per_txn = 0;
  double wall_ms = 0;
};

// Runs `total_txns` transactions of `ops_per_txn` inserts each across
// `writers` threads against a fresh table + WAL segment, then verifies
// no committed key was lost.
RunResult RunWorkload(bool serial_commit, int writers, int total_txns,
                      int ops_per_txn, const std::string& wal_path) {
  Table table("bench", BenchSchema(), TableOptions{});
  Wal wal;
  TxnManagerOptions opts;
  opts.group_commit = true;
  opts.serial_commit = serial_commit;
  TxnManager mgr(&table, &wal, opts);
  auto writer = WalWriter::Open(FileSystem::Default(), wal_path,
                                /*truncate=*/true);
  if (!writer.ok()) {
    std::fprintf(stderr, "open %s: %s\n", wal_path.c_str(),
                 writer.status().ToString().c_str());
    std::abort();
  }
  mgr.SetWalWriter(writer->get());

  const int per_thread = total_txns / writers;
  std::atomic<int> failures{0};
  std::vector<std::vector<double>> latencies(writers);
  Stopwatch sw;
  std::vector<std::thread> threads;
  threads.reserve(writers);
  for (int t = 0; t < writers; ++t) {
    threads.emplace_back([&, t] {
      latencies[t].reserve(per_thread);
      for (int i = 0; i < per_thread; ++i) {
        auto txn = mgr.Begin();
        // Disjoint keys per worker: no conflicts, so every commit pays
        // exactly the write-path cost being measured.
        const int64_t base =
            (static_cast<int64_t>(t) * per_thread + i) * ops_per_txn;
        bool ok = true;
        for (int k = 0; k < ops_per_txn && ok; ++k) {
          ok = txn->Insert({base + k, base + k}).ok();
        }
        const auto t0 = std::chrono::steady_clock::now();
        if (!ok || !txn->Commit().ok()) {
          failures.fetch_add(1);
          continue;
        }
        latencies[t].push_back(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count());
      }
    });
  }
  for (auto& w : threads) w.join();
  const double secs = sw.ElapsedSeconds();
  if (failures.load() != 0) {
    std::fprintf(stderr, "workload had %d failed commits\n",
                 failures.load());
    std::abort();
  }
  const int committed = per_thread * writers;

  // Key-loss check: every committed insert must be visible through a
  // fresh snapshot (which sees Read ▷ pending ▷ Write even while a
  // background merge is mid-flight).
  {
    auto check = mgr.Begin();
    const uint64_t expect =
        static_cast<uint64_t>(committed) * static_cast<uint64_t>(ops_per_txn);
    if (check->RowCount() != expect) {
      std::fprintf(stderr, "key loss: expected %llu rows, found %llu\n",
                   static_cast<unsigned long long>(expect),
                   static_cast<unsigned long long>(check->RowCount()));
      std::abort();
    }
    check->Abort();
  }

  std::vector<double> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  const TxnManagerStats stats = mgr.GetStats();
  RunResult r;
  r.wall_ms = secs * 1e3;
  r.commits_per_sec = committed / secs;
  r.p99_commit_ms =
      all.empty() ? 0.0
                  : all[std::min(all.size() - 1,
                                 static_cast<size_t>(
                                     static_cast<double>(all.size()) * 0.99))];
  r.lock_us_per_commit =
      static_cast<double>(stats.commit_lock_ns) / 1e3 / committed;
  r.syncs_per_txn = static_cast<double>(stats.wal_syncs) / committed;
  return r;
}

int Main(int argc, char** argv) {
  const int total_txns = std::stoi(FlagValue(argc, argv, "txns", "2000"));
  const int ops_per_txn = std::stoi(FlagValue(argc, argv, "ops", "4"));
  const std::string writers_flag =
      FlagValue(argc, argv, "writers", "1,2,4,8");
  const std::string json_path = FlagValue(argc, argv, "json", "");

  std::vector<int> writer_counts;
  for (size_t pos = 0; pos < writers_flag.size();) {
    size_t comma = writers_flag.find(',', pos);
    if (comma == std::string::npos) comma = writers_flag.size();
    writer_counts.push_back(
        std::stoi(writers_flag.substr(pos, comma - pos)));
    pos = comma + 1;
  }

  const std::string dir =
      (std::filesystem::temp_directory_path() / "pdt_bench_write").string();
  std::filesystem::create_directories(dir);

  JsonResultWriter json;
  std::printf("%-24s %8s %12s %10s %14s %10s\n", "mode", "writers",
              "commits/sec", "p99 ms", "lock us/commit", "syncs/txn");
  for (int writers : writer_counts) {
    for (bool serial : {true, false}) {
      const std::string mode = serial ? "commit_single_lock"
                                      : "commit_delta_chain";
      const std::string wal_path = dir + "/" + mode + ".wal";
      // Warm-up run settles file creation + allocator noise, then the
      // measured run.
      (void)RunWorkload(serial, writers, total_txns / 4 + writers,
                        ops_per_txn, wal_path);
      RunResult r = RunWorkload(serial, writers, total_txns, ops_per_txn,
                                wal_path);
      std::printf("%-24s %8d %12.0f %10.3f %14.2f %10.3f\n", mode.c_str(),
                  writers, r.commits_per_sec, r.p99_commit_ms,
                  r.lock_us_per_commit, r.syncs_per_txn);
      const std::string bench = mode + "_w" + std::to_string(writers);
      json.Metric(bench, "commits_per_sec", r.commits_per_sec);
      json.Metric(bench, "p99_commit_ms", r.p99_commit_ms);
      json.Metric(bench, "lock_us_per_commit", r.lock_us_per_commit);
      json.Metric(bench, "syncs_per_txn", r.syncs_per_txn);
      json.Metric(bench, "wall_ms", r.wall_ms);
    }
  }
  std::filesystem::remove_all(dir);

  if (!json_path.empty()) {
    if (!json.WriteFile(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pdtstore

int main(int argc, char** argv) {
  return pdtstore::bench::Main(argc, argv);
}

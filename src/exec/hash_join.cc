#include "exec/hash_join.h"

#include "exec/operator.h"

namespace pdtstore {

namespace {
void EncodeKey(const Batch& b, size_t row, const std::vector<size_t>& cols,
               std::string* out) {
  out->clear();
  for (size_t c : cols) {
    const ColumnVector& col = b.column(c);
    switch (col.type()) {
      case TypeId::kInt64: {
        int64_t v = col.ints()[row];
        out->append(reinterpret_cast<const char*>(&v), 8);
        break;
      }
      case TypeId::kDouble: {
        double v = col.doubles()[row];
        out->append(reinterpret_cast<const char*>(&v), 8);
        break;
      }
      case TypeId::kString: {
        const std::string& s = col.strings()[row];
        uint32_t len = static_cast<uint32_t>(s.size());
        out->append(reinterpret_cast<const char*>(&len), 4);
        out->append(s);
        break;
      }
    }
  }
}
}  // namespace

Status HashJoinNode::BuildTable() {
  PDT_ASSIGN_OR_RETURN(build_rows_, MaterializeAll(build_.get()));
  std::string key;
  for (size_t row = 0; row < build_rows_.num_rows(); ++row) {
    EncodeKey(build_rows_, row, build_keys_, &key);
    table_.emplace(key, row);
  }
  built_ = true;
  return Status::OK();
}

StatusOr<bool> HashJoinNode::Next(Batch* out, size_t max_rows) {
  if (!built_) {
    PDT_RETURN_NOT_OK(BuildTable());
  }
  Batch in;
  std::string key;
  while (true) {
    PDT_ASSIGN_OR_RETURN(bool more, probe_->Next(&in, max_rows));
    if (!more) return false;
    *out = Batch();
    std::vector<ColumnId> ids;
    for (size_t c = 0; c < in.num_columns(); ++c) {
      ids.push_back(static_cast<ColumnId>(c));
      out->columns().emplace_back(in.column(c).type());
    }
    if (kind_ == JoinKind::kInner) {
      for (size_t c = 0; c < build_rows_.num_columns(); ++c) {
        ids.push_back(static_cast<ColumnId>(in.num_columns() + c));
        out->columns().emplace_back(build_rows_.column(c).type());
      }
    }
    out->set_column_ids(std::move(ids));
    for (size_t row = 0; row < in.num_rows(); ++row) {
      EncodeKey(in, row, probe_keys_, &key);
      auto [lo, hi] = table_.equal_range(key);
      if (kind_ == JoinKind::kLeftSemi) {
        if (lo != hi) out->AppendRow(in, row);
        continue;
      }
      if (kind_ == JoinKind::kLeftAnti) {
        if (lo == hi) out->AppendRow(in, row);
        continue;
      }
      for (auto it = lo; it != hi; ++it) {
        for (size_t c = 0; c < in.num_columns(); ++c) {
          out->column(c).AppendFrom(in.column(c), row);
        }
        for (size_t c = 0; c < build_rows_.num_columns(); ++c) {
          out->column(in.num_columns() + c)
              .AppendFrom(build_rows_.column(c), it->second);
        }
      }
    }
    if (out->num_rows() > 0) return true;
  }
}

}  // namespace pdtstore

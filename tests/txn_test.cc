// Transaction-manager tests: snapshot isolation over the three PDT
// layers, optimistic conflict detection (Alg. 9), the paper's Fig. 15
// three-transaction timeline, Write->Read propagation, and WAL recovery.
#include "txn/txn_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "test_util.h"
#include "util/random.h"

namespace pdtstore {
namespace {

using testutil::InventoryRows;
using testutil::InventorySchema;

std::vector<Tuple> TxnScan(const Transaction& txn, const Schema& schema) {
  std::vector<ColumnId> all(schema.num_columns());
  for (ColumnId i = 0; i < all.size(); ++i) all[i] = i;
  auto src = txn.Scan(all);
  auto rows = CollectRows(src.get());
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  return rows.ok() ? *rows : std::vector<Tuple>{};
}

class TxnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = InventorySchema();
    table_ = std::make_unique<Table>("inventory", schema_, TableOptions{});
    ASSERT_TRUE(table_->Load(InventoryRows()).ok());
    mgr_ = std::make_unique<TxnManager>(table_.get(), &wal_);
  }
  std::shared_ptr<const Schema> schema_;
  std::unique_ptr<Table> table_;
  Wal wal_;
  std::unique_ptr<TxnManager> mgr_;
};

TEST_F(TxnTest, OwnUpdatesVisibleBeforeCommit) {
  auto txn = mgr_->Begin();
  ASSERT_TRUE(txn->Insert({"Berlin", "table", "Y", 10}).ok());
  ASSERT_TRUE(
      txn->ModifyByKey({Value("London"), Value("stool")}, 3, Value(9)).ok());
  auto rows = TxnScan(*txn, *schema_);
  EXPECT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows.front()[0], Value("Berlin"));
  auto got = txn->GetByKey({Value("London"), Value("stool")});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)[3], Value(9));
  ASSERT_TRUE(txn->Commit().ok());
}

TEST_F(TxnTest, SnapshotIsolationHidesConcurrentCommit) {
  auto reader = mgr_->Begin();
  auto writer = mgr_->Begin();
  ASSERT_TRUE(writer->Insert({"Berlin", "table", "Y", 10}).ok());
  ASSERT_TRUE(writer->Commit().ok());
  // The reader's snapshot predates the commit.
  EXPECT_EQ(TxnScan(*reader, *schema_).size(), 5u);
  ASSERT_TRUE(reader->Commit().ok());
  // A fresh transaction sees it.
  auto later = mgr_->Begin();
  EXPECT_EQ(TxnScan(*later, *schema_).size(), 6u);
}

TEST_F(TxnTest, WriteWriteConflictAborts) {
  auto a = mgr_->Begin();
  auto b = mgr_->Begin();
  ASSERT_TRUE(
      a->ModifyByKey({Value("Paris"), Value("rug")}, 3, Value(2)).ok());
  ASSERT_TRUE(
      b->ModifyByKey({Value("Paris"), Value("rug")}, 3, Value(3)).ok());
  ASSERT_TRUE(a->Commit().ok());
  Status st = b->Commit();
  EXPECT_EQ(st.code(), StatusCode::kConflict) << st.ToString();
  EXPECT_EQ(mgr_->aborted_count(), 1u);
  // a's value won.
  auto txn = mgr_->Begin();
  auto got = txn->GetByKey({Value("Paris"), Value("rug")});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)[3], Value(2));
}

TEST_F(TxnTest, DifferentColumnModifiesReconcile) {
  auto a = mgr_->Begin();
  auto b = mgr_->Begin();
  ASSERT_TRUE(
      a->ModifyByKey({Value("Paris"), Value("rug")}, 2, Value("Y")).ok());
  ASSERT_TRUE(
      b->ModifyByKey({Value("Paris"), Value("rug")}, 3, Value(3)).ok());
  ASSERT_TRUE(a->Commit().ok());
  ASSERT_TRUE(b->Commit().ok());
  auto txn = mgr_->Begin();
  auto got = txn->GetByKey({Value("Paris"), Value("rug")});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)[2], Value("Y"));
  EXPECT_EQ((*got)[3], Value(3));
}

TEST_F(TxnTest, InsertInsertSameKeyConflicts) {
  auto a = mgr_->Begin();
  auto b = mgr_->Begin();
  ASSERT_TRUE(a->Insert({"Berlin", "table", "Y", 10}).ok());
  ASSERT_TRUE(b->Insert({"Berlin", "table", "Y", 99}).ok());
  ASSERT_TRUE(a->Commit().ok());
  EXPECT_EQ(b->Commit().code(), StatusCode::kConflict);
}

TEST_F(TxnTest, AbortDiscardsUpdates) {
  auto a = mgr_->Begin();
  ASSERT_TRUE(a->Insert({"Berlin", "table", "Y", 10}).ok());
  a->Abort();
  auto txn = mgr_->Begin();
  EXPECT_EQ(TxnScan(*txn, *schema_).size(), 5u);
}

TEST_F(TxnTest, Figure15Timeline) {
  // Fig. 15: a and b start from the same snapshot; b commits first; c
  // starts after b's commit; a commits (serialized against b); c commits
  // (serialized against a, which is still cached in TZ).
  auto a = mgr_->Begin();
  auto b = mgr_->Begin();
  ASSERT_TRUE(b->Insert({"Berlin", "cloth", "Y", 5}).ok());
  ASSERT_TRUE(b->Commit().ok());  // t2
  auto c = mgr_->Begin();
  ASSERT_TRUE(c->ModifyByKey({Value("London"), Value("table")}, 3,
                             Value(21)).ok());
  ASSERT_TRUE(
      a->ModifyByKey({Value("Paris"), Value("stool")}, 3, Value(6)).ok());
  ASSERT_TRUE(a->Commit().ok());  // t3: serialize vs b, no conflict
  ASSERT_TRUE(c->Commit().ok());  // t4: serialize vs a' (aligned)
  auto final_txn = mgr_->Begin();
  auto rows = TxnScan(*final_txn, *schema_);
  EXPECT_EQ(rows.size(), 6u);
  auto cloth = final_txn->GetByKey({Value("Berlin"), Value("cloth")});
  auto ltable = final_txn->GetByKey({Value("London"), Value("table")});
  auto pstool = final_txn->GetByKey({Value("Paris"), Value("stool")});
  ASSERT_TRUE(cloth.ok() && ltable.ok() && pstool.ok());
  EXPECT_EQ((*ltable)[3], Value(21));
  EXPECT_EQ((*pstool)[3], Value(6));
}

TEST_F(TxnTest, WritePdtPropagatesToReadPdtAtQuietPoint) {
  mgr_.reset();  // a table has exactly one driver at a time
  TxnManagerOptions opts;
  opts.write_pdt_max_entries = 2;  // force frequent propagation
  auto mgr = std::make_unique<TxnManager>(table_.get(), nullptr, opts);
  for (int i = 0; i < 10; ++i) {
    auto txn = mgr->Begin();
    ASSERT_TRUE(
        txn->Insert({"Z" + std::to_string(i), "p", "Y", i}).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  // Most updates should have migrated into the Read-PDT (table's PDT).
  EXPECT_GT(table_->pdt()->EntryCount(), 0u);
  auto txn = mgr->Begin();
  EXPECT_EQ(TxnScan(*txn, *schema_).size(), 15u);
}

TEST_F(TxnTest, ExplicitPropagateAndCheckpoint) {
  {
    auto txn = mgr_->Begin();
    ASSERT_TRUE(txn->Insert({"Berlin", "cloth", "Y", 5}).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  TxnManagerOptions opts;
  opts.read_pdt_max_entries = 0;  // always checkpoint
  // A manager with an active transaction refuses.
  auto held = mgr_->Begin();
  EXPECT_FALSE(mgr_->PropagateAndMaybeCheckpoint().ok());
  ASSERT_TRUE(held->Commit().ok());
  ASSERT_TRUE(mgr_->PropagateAndMaybeCheckpoint().ok());
  EXPECT_TRUE(mgr_->write_pdt().Empty());
}

TEST_F(TxnTest, WalRecoveryReproducesCommittedState) {
  {
    auto t1 = mgr_->Begin();
    ASSERT_TRUE(t1->Insert({"Berlin", "cloth", "Y", 5}).ok());
    ASSERT_TRUE(t1->Commit().ok());
    auto t2 = mgr_->Begin();
    ASSERT_TRUE(
        t2->ModifyByKey({Value("Paris"), Value("rug")}, 3, Value(7)).ok());
    ASSERT_TRUE(t2->DeleteByKey({Value("London"), Value("table")}).ok());
    ASSERT_TRUE(t2->Commit().ok());
    auto t3 = mgr_->Begin();
    ASSERT_TRUE(t3->Insert({"Oslo", "bench", "N", 1}).ok());
    t3->Abort();  // must not reappear after recovery
  }
  auto final_txn = mgr_->Begin();
  auto expected = TxnScan(*final_txn, *schema_);
  ASSERT_TRUE(final_txn->Commit().ok());

  // Round-trip the WAL through a file, then recover into a fresh table.
  std::string path = ::testing::TempDir() + "/pdtstore_wal_test.bin";
  ASSERT_TRUE(wal_.WriteToFile(path).ok());
  Wal restored;
  ASSERT_TRUE(restored.LoadFromFile(path).ok());
  EXPECT_EQ(restored.SizeBytes(), wal_.SizeBytes());

  Table fresh("inventory", schema_, TableOptions{});
  ASSERT_TRUE(fresh.Load(InventoryRows()).ok());
  TxnManager fresh_mgr(&fresh, nullptr);
  ASSERT_TRUE(fresh_mgr.Recover(restored).ok());
  auto check = fresh_mgr.Begin();
  EXPECT_EQ(TxnScan(*check, *schema_), expected);
}

TEST_F(TxnTest, RecoverIsIdempotent) {
  // Regression: a second Recover on the same manager must refuse rather
  // than double-apply every committed update.
  {
    auto t = mgr_->Begin();
    ASSERT_TRUE(t->Insert({"Berlin", "cloth", "Y", 5}).ok());
    ASSERT_TRUE(t->Commit().ok());
  }
  Table fresh("inventory", schema_, TableOptions{});
  ASSERT_TRUE(fresh.Load(InventoryRows()).ok());
  TxnManager fresh_mgr(&fresh, nullptr);
  ASSERT_TRUE(fresh_mgr.Recover(wal_).ok());
  Status again = fresh_mgr.Recover(wal_);
  EXPECT_EQ(again.code(), StatusCode::kInvalidArgument) << again.ToString();
  auto check = fresh_mgr.Begin();
  EXPECT_EQ(TxnScan(*check, *schema_).size(), 6u);  // applied exactly once
}

TEST_F(TxnTest, RecoverRefusesManagerWithHistory) {
  // Recovery only makes sense into a pristine manager: one that already
  // processed commits would re-apply them on top of live state.
  Wal other;
  other.LogBegin(1);
  other.LogInsert(1, "inventory", {"Oslo", "bench", "N", 1});
  other.LogCommit(1);
  {
    auto t = mgr_->Begin();
    ASSERT_TRUE(t->Insert({"Berlin", "cloth", "Y", 5}).ok());
    ASSERT_TRUE(t->Commit().ok());
  }
  Status st = mgr_->Recover(other);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st.ToString();
  // Recovering a manager from its own attached WAL is always refused —
  // replaying would append the replayed commits back onto the log.
  Table fresh("inventory", schema_, TableOptions{});
  ASSERT_TRUE(fresh.Load(InventoryRows()).ok());
  TxnManager self_mgr(&fresh, &wal_);
  EXPECT_EQ(self_mgr.Recover(wal_).code(), StatusCode::kInvalidArgument);
}

TEST_F(TxnTest, RecoveryHandlesInterleavedAbortAndCommit) {
  // Interleaved begin/abort/commit markers across transactions: only
  // the committed transactions' effects may surface after recovery.
  Wal log;
  log.LogBegin(1);
  log.LogBegin(2);
  log.LogInsert(1, "inventory", {"Oslo", "bench", "N", 1});
  log.LogInsert(2, "inventory", {"Bergen", "rack", "Y", 3});
  log.LogBegin(3);
  log.LogInsert(3, "inventory", {"Tromso", "bin", "N", 2});
  log.LogCommit(2);
  log.LogAbort(1);
  log.LogCheckpoint("inventory");  // informational; replay skips it
  log.LogCommit(3);
  // Txn 4 began but neither committed nor aborted (in-flight at crash):
  // its updates must be dropped.
  log.LogBegin(4);
  log.LogInsert(4, "inventory", {"Vardo", "box", "N", 9});

  Table fresh("inventory", schema_, TableOptions{});
  ASSERT_TRUE(fresh.Load(InventoryRows()).ok());
  TxnManager fresh_mgr(&fresh, nullptr);
  ASSERT_TRUE(fresh_mgr.Recover(log).ok());
  auto check = fresh_mgr.Begin();
  auto rows = TxnScan(*check, *schema_);
  EXPECT_EQ(rows.size(), 7u);  // 5 base + txns 2 and 3
  for (const Tuple& r : rows) {
    EXPECT_NE(r[0], Value("Oslo"));   // aborted
    EXPECT_NE(r[0], Value("Vardo"));  // in-flight, never committed
  }
}

TEST_F(TxnTest, RecoveryIgnoresOtherTablesRecords) {
  // Several tables share one log; replay into this manager must apply
  // only the records addressed to its table.
  Wal log;
  log.LogBegin(1);
  log.LogInsert(1, "inventory", {"Oslo", "bench", "N", 1});
  log.LogInsert(1, "orders", {"not-even-the-right-schema"});
  log.LogCommit(1);

  Table fresh("inventory", schema_, TableOptions{});
  ASSERT_TRUE(fresh.Load(InventoryRows()).ok());
  TxnManager fresh_mgr(&fresh, nullptr);
  ASSERT_TRUE(fresh_mgr.Recover(log).ok());
  auto check = fresh_mgr.Begin();
  EXPECT_EQ(TxnScan(*check, *schema_).size(), 6u);
}

TEST_F(TxnTest, ManyConcurrentTransactionsRandomized) {
  // Interleaved transactions on disjoint keys must all commit and the
  // result must match a serial replay.
  Random rng(99);
  std::vector<std::unique_ptr<Transaction>> txns;
  for (int i = 0; i < 8; ++i) txns.push_back(mgr_->Begin());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        txns[i]->Insert({"T" + std::to_string(i), "p", "Y", i}).ok());
  }
  // Commit in shuffled order.
  std::vector<int> order = {3, 1, 7, 0, 5, 2, 6, 4};
  for (int i : order) {
    ASSERT_TRUE(txns[i]->Commit().ok()) << "txn " << i;
  }
  auto txn = mgr_->Begin();
  EXPECT_EQ(TxnScan(*txn, *schema_).size(), 13u);
  EXPECT_EQ(mgr_->committed_count(), 8u);
}


TEST_F(TxnTest, QueryPdtShieldsScanFromOwnUpdates) {
  // Footnote 5: a query that must not see its own changes (Halloween
  // protection) routes updates into a Query-PDT while scanning the
  // unchanged three-layer snapshot.
  auto txn = mgr_->Begin();
  ASSERT_TRUE(txn->BeginQueryPdt().ok());
  // "Query": scan all rows, inserting a shadow row for each one seen.
  auto rows_before = TxnScan(*txn, *schema_);
  for (const auto& t : rows_before) {
    Tuple shadow = t;
    shadow[1] = Value(t[1].AsString() + "-copy");
    ASSERT_TRUE(txn->Insert(shadow).ok());
    // The protected scan still sees only the original 5 rows, so the
    // loop cannot feed on its own output.
    EXPECT_EQ(TxnScan(*txn, *schema_).size(), 5u);
  }
  // Commit is refused while the query is open.
  EXPECT_FALSE(txn->Commit().ok());
  ASSERT_TRUE(txn->EndQueryPdt().ok());
  // Now the updates are in the Trans-PDT and visible.
  EXPECT_EQ(TxnScan(*txn, *schema_).size(), 10u);
  ASSERT_TRUE(txn->Commit().ok());
  auto check = mgr_->Begin();
  EXPECT_EQ(TxnScan(*check, *schema_).size(), 10u);
}

TEST_F(TxnTest, QueryPdtLifecycleErrors) {
  auto txn = mgr_->Begin();
  EXPECT_FALSE(txn->EndQueryPdt().ok());  // none active
  ASSERT_TRUE(txn->BeginQueryPdt().ok());
  EXPECT_FALSE(txn->BeginQueryPdt().ok());  // double begin
  ASSERT_TRUE(txn->EndQueryPdt().ok());
  ASSERT_TRUE(txn->Commit().ok());
}

TEST_F(TxnTest, QueryPdtUpdatesCompose) {
  // Mixed: some updates inside a query context, some outside; the final
  // image must reflect all of them in order.
  auto txn = mgr_->Begin();
  ASSERT_TRUE(
      txn->ModifyByKey({Value("London"), Value("chair")}, 3, Value(1)).ok());
  ASSERT_TRUE(txn->BeginQueryPdt().ok());
  ASSERT_TRUE(
      txn->ModifyByKey({Value("London"), Value("chair")}, 3, Value(2)).ok());
  ASSERT_TRUE(txn->DeleteByKey({Value("Paris"), Value("rug")}).ok());
  ASSERT_TRUE(txn->EndQueryPdt().ok());
  ASSERT_TRUE(txn->Commit().ok());
  auto check = mgr_->Begin();
  auto chair = check->GetByKey({Value("London"), Value("chair")});
  ASSERT_TRUE(chair.ok());
  EXPECT_EQ((*chair)[3], Value(2));
  EXPECT_FALSE(check->GetByKey({Value("Paris"), Value("rug")}).ok());
}

// ---------------------------------------------------------------------
// Concurrent write path: delta publication, batched fold, background
// Write->Read propagation.
// ---------------------------------------------------------------------

TEST_F(TxnTest, PublishedBatchFoldsUnderOneLeader) {
  // Two transactions publish lock-free; the first AwaitCommit becomes
  // the fold leader and decides BOTH records in one batch.
  auto a = mgr_->Begin();
  auto b = mgr_->Begin();
  ASSERT_TRUE(a->Insert({"Berlin", "table", "Y", 10}).ok());
  ASSERT_TRUE(b->Insert({"Berlin", "cloth", "Y", 5}).ok());
  ASSERT_TRUE(a->Publish().ok());
  ASSERT_TRUE(b->Publish().ok());
  EXPECT_EQ(mgr_->GetStats().pending_deltas, 2u);
  // After Publish the transaction is sealed: reads fail loudly instead
  // of silently returning nothing, and RowCount is frozen at Publish.
  EXPECT_FALSE(a->Insert({"X", "x", "N", 1}).ok());
  auto sealed = a->Scan({0});
  ASSERT_NE(sealed, nullptr);
  Batch scratch;
  auto next = sealed->Next(&scratch, 1024);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(a->RowCount(), 6u);  // 5 seed rows + a's insert, cached
  ASSERT_TRUE(a->AwaitCommit().ok());
  TxnManagerStats s = mgr_->GetStats();
  EXPECT_EQ(s.pending_deltas, 0u);
  EXPECT_EQ(s.fold_batches, 1u);
  EXPECT_EQ(s.folded_records, 2u);
  EXPECT_TRUE(s.last_merge_error.ok()) << s.last_merge_error.ToString();
  // b's verdict was decided by a's fold; AwaitCommit just reads it.
  ASSERT_TRUE(b->AwaitCommit().ok());
  EXPECT_EQ(mgr_->committed_count(), 2u);
  auto check = mgr_->Begin();
  EXPECT_EQ(TxnScan(*check, *schema_).size(), 7u);
}

TEST_F(TxnTest, ConflictDecidedAcrossFoldBoundary) {
  // Both sides of a write-write conflict publish before either folds:
  // the leader commits the first record and aborts the second, in
  // publication order.
  auto a = mgr_->Begin();
  auto b = mgr_->Begin();
  ASSERT_TRUE(
      a->ModifyByKey({Value("Paris"), Value("rug")}, 3, Value(2)).ok());
  ASSERT_TRUE(
      b->ModifyByKey({Value("Paris"), Value("rug")}, 3, Value(3)).ok());
  ASSERT_TRUE(a->Publish().ok());
  ASSERT_TRUE(b->Publish().ok());
  ASSERT_TRUE(a->AwaitCommit().ok());
  EXPECT_EQ(b->AwaitCommit().code(), StatusCode::kConflict);
  EXPECT_EQ(mgr_->aborted_count(), 1u);
  auto check = mgr_->Begin();
  auto got = check->GetByKey({Value("Paris"), Value("rug")});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)[3], Value(2));
}

TEST_F(TxnTest, AbortUnlinksPublishedRecordBeforeFold) {
  // A published-but-unfolded record withdraws cleanly: the neighbours
  // it was chained with still commit.
  auto a = mgr_->Begin();
  auto b = mgr_->Begin();
  auto c = mgr_->Begin();
  ASSERT_TRUE(a->Insert({"A1", "p", "Y", 1}).ok());
  ASSERT_TRUE(b->Insert({"B1", "p", "Y", 2}).ok());
  ASSERT_TRUE(c->Insert({"C1", "p", "Y", 3}).ok());
  ASSERT_TRUE(a->Publish().ok());
  ASSERT_TRUE(b->Publish().ok());
  ASSERT_TRUE(c->Publish().ok());
  b->Abort();  // unlink from the middle of the chain
  EXPECT_TRUE(b->finished());
  EXPECT_EQ(mgr_->GetStats().pending_deltas, 2u);
  ASSERT_TRUE(a->AwaitCommit().ok());
  ASSERT_TRUE(c->AwaitCommit().ok());
  EXPECT_EQ(mgr_->committed_count(), 2u);
  EXPECT_EQ(mgr_->aborted_count(), 1u);
  auto check = mgr_->Begin();
  auto rows = TxnScan(*check, *schema_);
  EXPECT_EQ(rows.size(), 7u);
  EXPECT_FALSE(check->GetByKey({Value("B1"), Value("p")}).ok());
}

TEST_F(TxnTest, AbortAfterFoldIsANoOp) {
  // If a fold already committed the record, the commit stands: Abort
  // afterwards must not undo it or double-release TZ references.
  auto a = mgr_->Begin();
  auto b = mgr_->Begin();
  ASSERT_TRUE(a->Insert({"A2", "p", "Y", 1}).ok());
  ASSERT_TRUE(b->Insert({"B2", "p", "Y", 2}).ok());
  ASSERT_TRUE(a->Publish().ok());
  ASSERT_TRUE(b->Publish().ok());
  ASSERT_TRUE(a->AwaitCommit().ok());  // folds b's record too
  b->Abort();                          // verdict already committed
  EXPECT_TRUE(b->finished());
  EXPECT_EQ(mgr_->committed_count(), 2u);
  EXPECT_EQ(mgr_->aborted_count(), 0u);
  auto check = mgr_->Begin();
  EXPECT_TRUE(check->GetByKey({Value("B2"), Value("p")}).ok());
}

TEST_F(TxnTest, SerialCommitModeMatchesDeltaChain) {
  // The single-lock ablation baseline produces the same state and WAL
  // byte sequence as the delta chain for a serial workload.
  Wal serial_wal;
  Table serial_table("inventory", schema_, TableOptions{});
  ASSERT_TRUE(serial_table.Load(InventoryRows()).ok());
  TxnManagerOptions opts;
  opts.serial_commit = true;
  TxnManager serial_mgr(&serial_table, &serial_wal, opts);
  for (int i = 0; i < 4; ++i) {
    auto chain_txn = mgr_->Begin();
    auto serial_txn = serial_mgr.Begin();
    Tuple row = {"S" + std::to_string(i), "p", "Y", i};
    ASSERT_TRUE(chain_txn->Insert(row).ok());
    ASSERT_TRUE(serial_txn->Insert(row).ok());
    ASSERT_TRUE(chain_txn->Commit().ok());
    ASSERT_TRUE(serial_txn->Commit().ok());
  }
  auto a = mgr_->Begin();
  auto b = serial_mgr.Begin();
  EXPECT_EQ(TxnScan(*a, *schema_), TxnScan(*b, *schema_));
  EXPECT_EQ(wal_.RecordCount(), serial_wal.RecordCount());
  EXPECT_EQ(wal_.SizeBytes(), serial_wal.SizeBytes());
}

TEST_F(TxnTest, BackgroundMergeKeepsReaderSnapshotStable) {
  // A long-running reader pins its snapshot while commits overflow the
  // Write-PDT; the merge must run in the background (the reader keeps
  // the Read-PDT pinned) and the reader's view must not change.
  mgr_.reset();  // a table has exactly one driver at a time
  TxnManagerOptions opts;
  opts.write_pdt_max_entries = 2;  // overflow quickly
  opts.merge_chunk_entries = 1;    // force many incremental steps
  auto mgr = std::make_unique<TxnManager>(table_.get(), nullptr, opts);
  auto reader = mgr->Begin();
  EXPECT_EQ(TxnScan(*reader, *schema_).size(), 5u);
  for (int i = 0; i < 12; ++i) {
    auto txn = mgr->Begin();
    ASSERT_TRUE(txn->Insert({"M" + std::to_string(i), "p", "Y", i}).ok());
    ASSERT_TRUE(txn->Commit().ok());
    // The reader's snapshot stays at 5 rows throughout.
    EXPECT_EQ(TxnScan(*reader, *schema_).size(), 5u);
  }
  // At least one background merge must have been scheduled (the reader
  // kept every commit away from the inline quiet-point path).
  for (int spins = 0; spins < 1000; ++spins) {
    TxnManagerStats s = mgr->GetStats();
    if (!s.merge_inflight && s.background_merges > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  TxnManagerStats stats = mgr->GetStats();
  EXPECT_GT(stats.background_merges, 0u);
  EXPECT_EQ(TxnScan(*reader, *schema_).size(), 5u);
  ASSERT_TRUE(reader->Commit().ok());
  // New snapshots see everything, through whatever layer stack the
  // merge left behind.
  auto check = mgr->Begin();
  EXPECT_EQ(TxnScan(*check, *schema_).size(), 17u);
  ASSERT_TRUE(check->Commit().ok());
  // Quiesce and verify the layers collapsed into the Read-PDT.
  ASSERT_TRUE(mgr->PropagateAndMaybeCheckpoint().ok());
  EXPECT_EQ(mgr->GetStats().merge_pending_entries, 0u);
  auto after = mgr->Begin();
  EXPECT_EQ(TxnScan(*after, *schema_).size(), 17u);
}

TEST_F(TxnTest, RecoveryReplaysInterleavedGroupCommitBatches) {
  // Concurrent writers publish into shared fold batches (group commit);
  // the WAL those folds wrote must replay to exactly the same state.
  constexpr int kWriters = 4;
  constexpr int kTxnsPerWriter = 16;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kTxnsPerWriter; ++i) {
        auto txn = mgr_->Begin();
        const std::string key =
            "W" + std::to_string(w) + "_" + std::to_string(i);
        if (!txn->Insert({key, "p", "Y", w * 100 + i}).ok() ||
            !txn->Commit().ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);
  ASSERT_EQ(mgr_->committed_count(),
            static_cast<uint64_t>(kWriters * kTxnsPerWriter));
  // Replay the interleaved log into a fresh table.
  Table fresh("inventory", schema_, TableOptions{});
  ASSERT_TRUE(fresh.Load(InventoryRows()).ok());
  TxnManager fresh_mgr(&fresh, nullptr);
  ASSERT_TRUE(fresh_mgr.Recover(wal_).ok());
  auto replayed = fresh_mgr.Begin();
  auto original = mgr_->Begin();
  EXPECT_EQ(TxnScan(*replayed, *schema_), TxnScan(*original, *schema_));
}

}  // namespace
}  // namespace pdtstore

// Parallel pipeline equivalence: operator fragments (filter, project,
// join probe) and breaker sinks (partial aggregation, join build)
// running inside the morsel workers must produce the same results as the
// serial operator tree — identical multisets at any thread count,
// identical sequences through the ordered exchange — across hostile PDT
// delta states, the VDT backend, 3-layer transaction snapshots, and
// concurrent queries sharing the process-wide pool.
//
// Aggregates here run over integer values, so double accumulators are
// exact and order-independent: comparisons are exact, not tolerance-based.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "db/table.h"
#include "exec/filter.h"
#include "exec/hash_agg.h"
#include "exec/hash_join.h"
#include "exec/pipeline.h"
#include "test_util.h"
#include "txn/txn_manager.h"
#include "util/random.h"

namespace pdtstore {
namespace {

using testutil::AllColumns;

std::shared_ptr<const Schema> IntSchema() {
  auto s = Schema::Make({{"k", TypeId::kInt64}, {"v", TypeId::kInt64}}, {0});
  return std::make_shared<const Schema>(std::move(*s));
}

std::vector<Tuple> IntRows(int n, int64_t gap = 100) {
  std::vector<Tuple> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back({static_cast<int64_t>(i) * gap, int64_t{i}});
  }
  return rows;
}

// Builds a PDT- or VDT-backed table with `n` rows in small chunks (many
// morsel boundaries) and applies `ops` random mixed updates.
std::unique_ptr<Table> BuildUpdatedTable(DeltaBackend backend, int n,
                                         int ops, uint64_t seed) {
  TableOptions opts;
  opts.backend = backend;
  opts.store.chunk_rows = 64;
  auto table = std::make_unique<Table>("t", IntSchema(), opts);
  EXPECT_TRUE(table->Load(IntRows(n)).ok());
  Random rng(seed);
  for (int i = 0; i < ops; ++i) {
    double d = rng.NextDouble();
    if (d < 0.4) {
      (void)table->Insert({rng.UniformRange(0, n * 100), int64_t{i}});
    } else if (d < 0.7) {
      (void)table->DeleteByKey(
          {Value(static_cast<int64_t>(rng.Uniform(n)) * 100)});
    } else {
      (void)table->ModifyByKey(
          {Value(static_cast<int64_t>(rng.Uniform(n)) * 100)}, 1,
          Value(int64_t{i}));
    }
  }
  return table;
}

void SortRows(std::vector<Tuple>* rows) {
  std::sort(rows->begin(), rows->end(),
            [](const Tuple& a, const Tuple& b) {
              return CompareTuples(a, b) < 0;
            });
}

std::vector<Tuple> Collect(std::unique_ptr<BatchSource> src) {
  auto rows = CollectRows(src.get());
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  return rows.ok() ? *rows : std::vector<Tuple>{};
}

ScanOptions PipeOpts(int threads, size_t morsel_rows = 64) {
  ScanOptions so;
  so.num_threads = threads;
  so.ordered = false;
  so.morsel_rows = morsel_rows;
  return so;
}

// Keeps every row whose payload (column 1) is even.
VecPredicate EvenPayload() {
  return [](const Batch& b, KeepBitmap* keep) {
    const auto& v = b.column(1).ints();
    keep->FillFrom([&](size_t i) { return v[i] % 2 == 0; });
  };
}

// key mod 7 as the group column, payload passthrough.
std::vector<ColumnExpr> GroupExprs() {
  return {[](const Batch& b) {
            ColumnVector out(TypeId::kInt64);
            const auto& k = b.column(0).ints();
            out.ints().resize(k.size());
            for (size_t i = 0; i < k.size(); ++i) {
              out.ints()[i] = k[i] % 7;
            }
            return out;
          },
          ColumnRef(1)};
}

std::vector<AggSpec> AllAggKinds() {
  return {{AggKind::kSum, 1},
          {AggKind::kCount, 0},
          {AggKind::kMin, 1},
          {AggKind::kMax, 1},
          {AggKind::kAvg, 1}};
}

TEST(AutoMorselRowsTest, ClampsAlignsAndShrinksWithDensity) {
  // No delta, huge table: the 64K default, a chunk multiple.
  size_t base = AutoMorselRows(16384, 100'000'000, 0, 4);
  EXPECT_EQ(base, kDefaultMorselRows);
  EXPECT_EQ(base % 16384, 0u);
  // Small table: fine enough for ~4 morsels per worker.
  size_t balanced = AutoMorselRows(64, 100'000, 0, 4);
  EXPECT_LE(balanced, 100'000u / 16 + 64);
  EXPECT_GE(balanced, 64u);
  // Dense delta shrinks morsels; never below one chunk.
  size_t dense = AutoMorselRows(64, 100'000'000, 50'000'000, 4);
  EXPECT_LT(dense, base);
  EXPECT_GE(dense, 64u);
  size_t degenerate = AutoMorselRows(4096, 1000, 1'000'000, 4);
  EXPECT_EQ(degenerate, 4096u);  // floor: one chunk
  // Zero chunk size falls back to the default granularity.
  EXPECT_EQ(AutoMorselRows(0, 10'000'000'000ull, 0, 1), kDefaultMorselRows);
}

TEST(PipelineTest, FilterProjectAggMatchesSerialAcrossThreadCounts) {
  auto table = BuildUpdatedTable(DeltaBackend::kPdt, 2000, 800, 17);
  auto cols = AllColumns(table->schema());
  // Serial reference: FilterNode -> ProjectNode -> HashAggNode.
  auto serial = Collect(std::make_unique<HashAggNode>(
      std::make_unique<ProjectNode>(
          std::make_unique<FilterNode>(table->Scan(cols), EvenPayload()),
          GroupExprs()),
      std::vector<size_t>{0}, AllAggKinds()));
  SortRows(&serial);
  ASSERT_FALSE(serial.empty());
  for (int threads : {1, 2, 4, 8}) {
    Pipeline pipe(table->PlanMorsels(cols, nullptr, PipeOpts(threads)));
    pipe.Filter(EvenPayload()).Project(GroupExprs());
    auto rows = Collect(
        std::move(pipe).Aggregate({0}, AllAggKinds()));
    SortRows(&rows);
    EXPECT_EQ(rows, serial) << threads << " threads";
  }
}

TEST(PipelineTest, GlobalAggregationIncludingEmptyInput) {
  auto table = BuildUpdatedTable(DeltaBackend::kPdt, 500, 200, 19);
  auto cols = AllColumns(table->schema());
  auto serial = Collect(std::make_unique<HashAggNode>(
      std::make_unique<FilterNode>(table->Scan(cols), EvenPayload()),
      std::vector<size_t>{},
      std::vector<AggSpec>{{AggKind::kSum, 1}, {AggKind::kCount, 0}}));
  ASSERT_EQ(serial.size(), 1u);
  for (int threads : {2, 8}) {
    Pipeline pipe(table->PlanMorsels(cols, nullptr, PipeOpts(threads)));
    pipe.Filter(EvenPayload());
    auto rows = Collect(std::move(pipe).Aggregate(
        {}, {{AggKind::kSum, 1}, {AggKind::kCount, 0}}));
    EXPECT_EQ(rows, serial) << threads << " threads";

    // A predicate nothing survives: the parallel global aggregation must
    // still emit the single all-zero row the serial engine emits.
    Pipeline empty(table->PlanMorsels(cols, nullptr, PipeOpts(threads)));
    empty.Filter([](const Batch& b, KeepBitmap* keep) {
      (void)b;
      (void)keep;  // arrives all-zero: keep nothing
    });
    auto zero = Collect(std::move(empty).Aggregate(
        {}, {{AggKind::kSum, 1}, {AggKind::kCount, 0}}));
    ASSERT_EQ(zero.size(), 1u);
    EXPECT_EQ(zero[0], (Tuple{Value(0.0), Value(int64_t{0})}));
  }
}

TEST(PipelineTest, OrderedExchangeFragmentKeepsSerialSequence) {
  auto table = BuildUpdatedTable(DeltaBackend::kPdt, 1500, 600, 23);
  auto cols = AllColumns(table->schema());
  auto serial = Collect(std::make_unique<FilterNode>(table->Scan(cols),
                                                     EvenPayload()));
  for (int threads : {2, 4, 8}) {
    ScanOptions so = PipeOpts(threads);
    so.ordered = true;  // fragment outputs in exact serial sequence
    Pipeline pipe(table->PlanMorsels(cols, nullptr, so));
    pipe.Filter(EvenPayload());
    EXPECT_EQ(Collect(std::move(pipe).Exchange()), serial)
        << threads << " threads";
  }
}

TEST(PipelineTest, UnorderedExchangeFragmentMatchesMultiset) {
  auto table = BuildUpdatedTable(DeltaBackend::kPdt, 1500, 600, 27);
  auto cols = AllColumns(table->schema());
  auto serial = Collect(std::make_unique<FilterNode>(table->Scan(cols),
                                                     EvenPayload()));
  SortRows(&serial);
  for (int threads : {2, 8}) {
    Pipeline pipe(table->PlanMorsels(cols, nullptr, PipeOpts(threads)));
    pipe.Filter(EvenPayload());
    auto rows = Collect(std::move(pipe).Exchange());
    SortRows(&rows);
    EXPECT_EQ(rows, serial) << threads << " threads";
  }
}

TEST(PipelineTest, BuildProbeJoinMatchesSerialAllKinds) {
  auto probe_table = BuildUpdatedTable(DeltaBackend::kPdt, 2000, 700, 31);
  auto build_table = BuildUpdatedTable(DeltaBackend::kPdt, 400, 300, 37);
  auto pcols = AllColumns(probe_table->schema());
  auto bcols = AllColumns(build_table->schema());
  // Join probe payload-mod against build payload-mod (plenty of matches
  // and duplicate build keys).
  auto mod_exprs = [] {
    return std::vector<ColumnExpr>{[](const Batch& b) {
                                     ColumnVector out(TypeId::kInt64);
                                     const auto& v = b.column(1).ints();
                                     out.ints().resize(v.size());
                                     for (size_t i = 0; i < v.size(); ++i) {
                                       out.ints()[i] = v[i] % 97;
                                     }
                                     return out;
                                   },
                                   ColumnRef(0)};
  };
  for (JoinKind kind :
       {JoinKind::kInner, JoinKind::kLeftSemi, JoinKind::kLeftAnti}) {
    auto serial = Collect(std::make_unique<HashJoinNode>(
        std::make_unique<ProjectNode>(probe_table->Scan(pcols), mod_exprs()),
        std::make_unique<ProjectNode>(
            std::make_unique<FilterNode>(build_table->Scan(bcols),
                                         EvenPayload()),
            mod_exprs()),
        std::vector<size_t>{0}, std::vector<size_t>{0}, kind));
    SortRows(&serial);
    for (int threads : {2, 4, 8}) {
      auto build_pipe = std::make_unique<Pipeline>(
          build_table->PlanMorsels(bcols, nullptr, PipeOpts(threads)));
      build_pipe->Filter(EvenPayload()).Project(mod_exprs());
      auto handle =
          Pipeline::IntoJoinBuild(std::move(build_pipe), {0});
      Pipeline probe_pipe(
          probe_table->PlanMorsels(pcols, nullptr, PipeOpts(threads)));
      probe_pipe.Project(mod_exprs()).Probe(handle, {0}, kind);
      auto rows = Collect(std::move(probe_pipe).Exchange());
      SortRows(&rows);
      EXPECT_EQ(rows, serial)
          << threads << " threads, kind " << static_cast<int>(kind);
    }
  }
}

TEST(PipelineTest, HostilePdtStatesFromStressPatterns) {
  // The pdt_stress patterns, through the Table API: ghost chains
  // spanning whole morsels, inserts into ghosts, modify churn.
  TableOptions topts;
  topts.store.chunk_rows = 64;
  topts.pdt.fanout = 4;
  auto table = std::make_unique<Table>("t", IntSchema(), topts);
  ASSERT_TRUE(table->Load(IntRows(600, 10)).ok());
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(table->DeleteAt(100).ok());
  }
  for (int64_t k : {1005, 2501, 3999, 1001, 4995}) {
    ASSERT_TRUE(table->Insert({k, k}).ok());
  }
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(table->Insert({int64_t{6001 + i}, int64_t{i}}).ok());
    ASSERT_TRUE(table->ModifyAt(i % 100, 1, Value(int64_t{i})).ok());
  }
  auto cols = AllColumns(table->schema());
  auto serial = Collect(std::make_unique<HashAggNode>(
      std::make_unique<FilterNode>(table->Scan(cols), EvenPayload()),
      std::vector<size_t>{0},
      std::vector<AggSpec>{{AggKind::kSum, 1}, {AggKind::kCount, 0}}));
  SortRows(&serial);
  for (int threads : {2, 4, 8}) {
    Pipeline pipe(table->PlanMorsels(cols, nullptr, PipeOpts(threads)));
    pipe.Filter(EvenPayload());
    auto rows = Collect(std::move(pipe).Aggregate(
        {0}, {{AggKind::kSum, 1}, {AggKind::kCount, 0}}));
    SortRows(&rows);
    EXPECT_EQ(rows, serial) << threads << " threads";
  }
}

TEST(PipelineTest, VdtBackendFragmentsMatchSerial) {
  auto table = BuildUpdatedTable(DeltaBackend::kVdt, 2000, 800, 41);
  auto cols = AllColumns(table->schema());
  auto serial = Collect(std::make_unique<HashAggNode>(
      std::make_unique<FilterNode>(table->Scan(cols), EvenPayload()),
      std::vector<size_t>{0},
      std::vector<AggSpec>{{AggKind::kSum, 1}, {AggKind::kCount, 0}}));
  SortRows(&serial);
  for (int threads : {2, 8}) {
    Pipeline pipe(table->PlanMorsels(cols, nullptr, PipeOpts(threads)));
    pipe.Filter(EvenPayload());
    auto rows = Collect(std::move(pipe).Aggregate(
        {0}, {{AggKind::kSum, 1}, {AggKind::kCount, 0}}));
    SortRows(&rows);
    EXPECT_EQ(rows, serial) << threads << " threads";
  }
}

TEST(PipelineTest, TxnSnapshotStackFragmentsMatchSerial) {
  // Three-layer stack: Read-PDT (propagated commits), Write-PDT
  // snapshot and an uncommitted Trans-PDT, with fragments running on
  // worker threads over the immutable snapshot.
  TableOptions topts;
  topts.store.chunk_rows = 64;
  auto table = std::make_unique<Table>("t", IntSchema(), topts);
  ASSERT_TRUE(table->Load(IntRows(1000)).ok());
  TxnManager mgr(table.get());
  {
    auto setup = mgr.Begin();
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(setup->Insert({int64_t{i * 100 + 7}, int64_t{i}}).ok());
    }
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(
          setup->DeleteByKey({Value(static_cast<int64_t>(i) * 300)}).ok());
    }
    ASSERT_TRUE(setup->Commit().ok());
  }
  auto txn = mgr.Begin();
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(txn->Insert({int64_t{i * 100 + 13}, int64_t{i}}).ok());
    ASSERT_TRUE(
        txn->ModifyByKey({Value(static_cast<int64_t>(i + 200) * 100)}, 1,
                         Value(int64_t{-i}))
            .ok());
  }
  auto cols = AllColumns(table->schema());
  auto serial = Collect(std::make_unique<HashAggNode>(
      std::make_unique<FilterNode>(txn->Scan(cols), EvenPayload()),
      std::vector<size_t>{0},
      std::vector<AggSpec>{{AggKind::kSum, 1}, {AggKind::kCount, 0}}));
  SortRows(&serial);
  for (int threads : {2, 4, 8}) {
    Pipeline pipe(txn->PlanMorsels(cols, nullptr, PipeOpts(threads)));
    pipe.Filter(EvenPayload());
    auto rows = Collect(std::move(pipe).Aggregate(
        {0}, {{AggKind::kSum, 1}, {AggKind::kCount, 0}}));
    SortRows(&rows);
    EXPECT_EQ(rows, serial) << threads << " threads";
  }
  ASSERT_TRUE(txn->Commit().ok());
}

TEST(PipelineTest, ConcurrentQueriesShareProcessPool) {
  // Several queries run in parallel from distinct consumer threads, all
  // drawing workers from the shared pool; each must match the serial
  // reference regardless of pool contention (the consumer-help path
  // guarantees progress even when all pool workers are taken).
  auto table = BuildUpdatedTable(DeltaBackend::kPdt, 3000, 900, 43);
  auto cols = AllColumns(table->schema());
  auto serial = Collect(std::make_unique<HashAggNode>(
      std::make_unique<FilterNode>(table->Scan(cols), EvenPayload()),
      std::vector<size_t>{0},
      std::vector<AggSpec>{{AggKind::kSum, 1}, {AggKind::kCount, 0}}));
  SortRows(&serial);
  constexpr int kThreads = 4;
  constexpr int kIters = 3;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> runners;
  for (int r = 0; r < kThreads; ++r) {
    runners.emplace_back([&, r] {
      for (int it = 0; it < kIters; ++it) {
        Pipeline pipe(table->PlanMorsels(
            cols, nullptr, PipeOpts(2 + (r + it) % 3)));
        pipe.Filter(EvenPayload());
        auto src = std::move(pipe).Aggregate(
            {0}, {{AggKind::kSum, 1}, {AggKind::kCount, 0}});
        auto rows = CollectRows(src.get());
        if (!rows.ok()) {
          ++mismatches;
          continue;
        }
        SortRows(&*rows);
        if (*rows != serial) ++mismatches;
      }
    });
  }
  for (auto& th : runners) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(PipelineTest, AbandonedPipelineExchangeShutsDownCleanly) {
  auto table = BuildUpdatedTable(DeltaBackend::kPdt, 2000, 400, 53);
  Pipeline pipe(table->PlanMorsels(AllColumns(table->schema()), nullptr,
                                   PipeOpts(4)));
  pipe.Filter(EvenPayload());
  auto src = std::move(pipe).Exchange();
  Batch batch;
  auto more = src->Next(&batch, 128);  // start workers, pull one batch
  ASSERT_TRUE(more.ok());
  ASSERT_TRUE(*more);
  src.reset();  // must abort + detach without deadlock or use-after-free
}

TEST(PipelineTest, SerialSingleThreadPlanIsServedSerially) {
  // num_threads == 1 must not build an exchange at all: the plan carries
  // the serial source and the fragment chain runs on the caller.
  auto table = BuildUpdatedTable(DeltaBackend::kPdt, 500, 200, 59);
  auto cols = AllColumns(table->schema());
  MorselPlan plan = table->PlanMorsels(cols, nullptr, PipeOpts(1));
  EXPECT_NE(plan.serial, nullptr);
  EXPECT_TRUE(plan.morsels.empty());
  Pipeline pipe(std::move(plan));
  pipe.Filter(EvenPayload());
  auto rows = Collect(std::move(pipe).Exchange());
  auto serial = Collect(std::make_unique<FilterNode>(table->Scan(cols),
                                                     EvenPayload()));
  EXPECT_EQ(rows, serial);  // exact sequence: same code path
}

}  // namespace
}  // namespace pdtstore

#include "exec/parallel_scan.h"

#include <algorithm>
#include <cassert>

#include "exec/pipeline.h"
#include "exec/shared_scan.h"
#include "util/mem_budget.h"

namespace pdtstore {

size_t AutoMorselRows(size_t chunk_rows, uint64_t scan_sids,
                      size_t delta_entries, int num_threads) {
  if (chunk_rows == 0 || chunk_rows > kDefaultMorselRows) {
    chunk_rows = kDefaultMorselRows;
  }
  if (num_threads <= 0) num_threads = ThreadPool::DefaultThreads();
  size_t rows = kDefaultMorselRows;
  // Load balancing: aim for at least ~4 morsels per worker so a slow
  // (update-dense) morsel can be compensated by idle workers claiming
  // the rest.
  if (scan_sids > 0) {
    size_t balanced = static_cast<size_t>(
        scan_sids / (4 * static_cast<uint64_t>(num_threads)) + 1);
    rows = std::min(rows, balanced);
  }
  // Density: bound the expected delta entries per morsel (~4K) so the
  // per-morsel merge cost stays comparable across a skewed PDT.
  if (delta_entries > 0 && scan_sids > 0) {
    double per_sid =
        static_cast<double>(delta_entries) / static_cast<double>(scan_sids);
    if (per_sid > 0) {
      size_t dense = static_cast<size_t>(4096.0 / per_sid) + 1;
      rows = std::min(rows, dense);
    }
  }
  // Chunk alignment: a morsel should cover whole decoded chunks (the
  // unit of I/O and of zone-map pruning) whenever it spans at least one.
  const size_t floor_rows = std::min(chunk_rows, kDefaultMorselRows);
  if (rows >= chunk_rows) {
    rows -= rows % chunk_rows;
  }
  return std::max(rows, floor_rows);
}

std::vector<SidRange> SplitIntoMorsels(const std::vector<SidRange>& ranges,
                                       size_t morsel_rows) {
  if (morsel_rows == 0) morsel_rows = kDefaultMorselRows;
  std::vector<SidRange> morsels;
  for (size_t i = 0; i < ranges.size(); ++i) {
    assert(i == 0 || ranges[i - 1].end <= ranges[i].begin);
    morsels.reserve(morsels.size() +
                    static_cast<size_t>(ranges[i].end - ranges[i].begin) /
                        morsel_rows + 1);
    for (Sid b = ranges[i].begin; b < ranges[i].end; b += morsel_rows) {
      morsels.push_back(SidRange{b, std::min<Sid>(b + morsel_rows,
                                                  ranges[i].end)});
    }
  }
  return morsels;
}

bool ResolveMorselPlan(std::vector<SidRange>* ranges, uint64_t table_rows,
                       size_t chunk_rows, size_t delta_entries,
                       MorselPlan* plan) {
  if (plan->options.num_threads <= 0) {
    plan->options.num_threads = ThreadPool::DefaultThreads();
  }
  if (plan->options.num_threads <= 1) {
    plan->options.num_threads = 1;
    // A serial query opting into shared scans still takes the morsel
    // path: the morsel geometry is what makes its scan attachable to
    // (or shareable with) concurrent queries. The serial-identity
    // promise only applies when shared_scan is unset.
    if (!plan->options.shared_scan) return false;
  }
  if (ranges->empty()) ranges->push_back(SidRange{0, table_rows});
  if (plan->options.morsel_rows == 0) {
    uint64_t span = 0;
    for (const SidRange& r : *ranges) span += r.end - r.begin;
    plan->options.morsel_rows = AutoMorselRows(
        chunk_rows, span, delta_entries, plan->options.num_threads);
  }
  plan->morsels = SplitIntoMorsels(*ranges, plan->options.morsel_rows);
  if (plan->morsels.empty()) {
    // No stable rows to scan (empty table, or zone pruning dropped
    // everything): keep one empty morsel at the end position so
    // trailing/pending inserts still have a final morsel to ride with.
    const Sid end = ranges->empty() ? 0 : ranges->back().end;
    plan->morsels.push_back(SidRange{end, end});
  }
  return true;
}

// ---------------------------------------------------------------------
// ParallelScanSource.
// ---------------------------------------------------------------------

ParallelScanSource::ParallelScanSource(
    std::vector<SidRange> morsels, MorselSourceFactory factory,
    ScanOptions options, bool renumber_rids,
    std::vector<std::unique_ptr<PipelineOp>> ops)
    : sh_(std::make_shared<Shared>()),
      renumber_rids_(renumber_rids && ops.empty()) {
  sh_->morsels = std::move(morsels);
  sh_->factory = std::move(factory);
  sh_->ops = std::move(ops);
  sh_->opts = options;
  if (sh_->opts.num_threads <= 0) {
    sh_->opts.num_threads = ThreadPool::DefaultThreads();
  }
  if (sh_->opts.batch_rows == 0) sh_->opts.batch_rows = kDefaultBatchSize;
  sh_->num_workers = std::min<size_t>(
      static_cast<size_t>(sh_->opts.num_threads), sh_->morsels.size());
  sh_->inflight_window =
      std::max<size_t>(2 * sh_->num_workers, sh_->num_workers + 1);
  sh_->queue_cap = std::max<size_t>(4 * sh_->num_workers, 2);
  sh_->states.resize(sh_->morsels.size());
}

ParallelScanSource::~ParallelScanSource() {
  std::unique_lock<std::mutex> lock(sh_->mu);
  sh_->abort = true;
  sh_->producer_cv.notify_all();
  sh_->consumer_cv.notify_all();
  // Wait only for workers that already started (they may be touching the
  // factory's underlying table). Queued tasks own the Shared state via
  // shared_ptr and exit on their start check whenever the pool runs them.
  sh_->consumer_cv.wait(lock, [this] { return sh_->active_workers == 0; });
}

void ParallelScanSource::Start() {
  started_ = true;
  for (const auto& op : sh_->ops) {
    Status st = op->Prepare();
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(sh_->mu);
      if (sh_->error.ok()) sh_->error = st;
      sh_->abort = true;
      return;
    }
  }
  std::shared_ptr<Shared> sh = sh_;
  // Tag the tasks with the query's scheduling token so the pool's
  // round-robin rotation keeps concurrent queries' scans fair.
  const uint64_t token = CurrentQueryToken();
  for (size_t i = 0; i < sh_->num_workers; ++i) {
    ThreadPool::Global().Submit(token, [sh] { sh->RunWorker(); });
  }
}

void ParallelScanSource::Shared::GrabRecycledBatch(Batch* b) {
  std::lock_guard<std::mutex> lock(mu);
  if (!freelist.empty()) {
    *b = std::move(freelist.back());
    freelist.pop_back();
  }
}

void ParallelScanSource::Shared::RunWorker() {
  {
    std::lock_guard<std::mutex> lock(mu);
    if (abort) return;  // scan already over: don't touch the factory
    ++active_workers;
  }
  std::vector<std::unique_ptr<PipelineOpState>> op_states;
  op_states.reserve(ops.size());
  for (const auto& op : ops) op_states.push_back(op->MakeState());
  while (true) {
    size_t m;
    {
      std::unique_lock<std::mutex> lock(mu);
      if (opts.ordered) {
        // Window gate: never run ahead of the consumer by more than
        // inflight_window morsels, bounding buffered output. The head
        // morsel is always inside the window, so the scan cannot wedge.
        producer_cv.wait(lock, [this] {
          return abort || next_morsel >= morsels.size() ||
                 next_morsel < head + inflight_window;
        });
      }
      if (abort || next_morsel >= morsels.size()) break;
      m = next_morsel++;
    }
    if (!ProcessMorsel(m, &op_states, /*helper=*/false)) break;
  }
  std::lock_guard<std::mutex> lock(mu);
  if (--active_workers == 0) consumer_cv.notify_all();
}

bool ParallelScanSource::Shared::ProcessMorsel(
    size_t m, std::vector<std::unique_ptr<PipelineOpState>>* op_states,
    bool helper) {
  std::unique_ptr<BatchSource> src =
      factory(m, morsels[m], m + 1 == morsels.size());
  Batch local;
  while (true) {
    GrabRecycledBatch(&local);
    StatusOr<bool> more = src->Next(&local, opts.batch_rows);
    Status op_status = Status::OK();
    bool produced = false;
    if (more.ok() && *more) {
      // Run the pipeline fragment on this worker, outside the lock.
      for (size_t i = 0; i < ops.size() && op_status.ok(); ++i) {
        op_status = ops[i]->Execute(&local, (*op_states)[i].get());
      }
      produced = op_status.ok() && local.num_rows() > 0;
    }
    std::unique_lock<std::mutex> lock(mu);
    if (abort) return false;
    if (!more.ok() || !op_status.ok()) {
      if (error.ok()) error = more.ok() ? op_status : more.status();
      abort = true;
      producer_cv.notify_all();
      consumer_cv.notify_all();
      return false;
    }
    if (!*more) {
      if (opts.ordered) states[m].done = true;
      ++morsels_done;
      consumer_cv.notify_all();
      return true;
    }
    if (!produced) continue;  // fragment filtered the whole batch out
    if (opts.ordered) {
      states[m].batches.push_back(std::move(local));
    } else {
      if (!helper) {
        // Backpressure. The helper is the consumer itself, about to
        // drain — it may exceed the cap rather than deadlock on it.
        producer_cv.wait(lock, [this] {
          return abort || ready.size() < queue_cap;
        });
        if (abort) return false;
      }
      ready.push_back(std::move(local));
    }
    consumer_cv.notify_one();
    local = Batch();
  }
}

bool ParallelScanSource::EmitPendingSlice(Batch* out, size_t max_rows) {
  const size_t take =
      std::min(max_rows, pending_.num_rows() - pending_off_);
  out->ResetLike(pending_);
  out->set_start_rid(pending_.start_rid() + pending_off_);
  for (size_t i = 0; i < pending_.num_columns(); ++i) {
    out->column(i).AppendRange(pending_.column(i), pending_off_,
                               pending_off_ + take);
  }
  pending_off_ += take;
  rows_emitted_ += take;
  if (pending_off_ >= pending_.num_rows()) {
    spent_.push_back(std::move(pending_));
    pending_ = Batch();
    pending_off_ = 0;
  }
  return true;
}

StatusOr<bool> ParallelScanSource::Refill() {
  Shared& s = *sh_;
  std::unique_lock<std::mutex> lock(s.mu);
  // Return consumed batch storage to the workers in bulk.
  for (Batch& b : spent_) {
    if (s.freelist.size() >= 2 * s.num_workers + 2) break;
    s.freelist.push_back(std::move(b));
  }
  spent_.clear();
  while (true) {
    if (!s.error.ok()) return s.error;
    size_t claim = s.morsels.size();  // sentinel: nothing to help with
    if (s.opts.ordered) {
      if (s.head >= s.morsels.size()) return false;
      MorselState& st = s.states[s.head];
      if (!st.batches.empty()) {
        drained_.swap(st.batches);  // take everything the head has
        return true;
      }
      if (st.done) {
        ++s.head;
        s.producer_cv.notify_all();  // claim window moved
        continue;
      }
      // Nothing at the head: claim the next unclaimed morsel (within
      // the buffering window) and process it on this thread, so the
      // scan progresses even when the shared pool is busy elsewhere.
      if (s.next_morsel < s.morsels.size() &&
          s.next_morsel < s.head + s.inflight_window) {
        claim = s.next_morsel++;
      }
    } else {
      if (!s.ready.empty()) {
        drained_.swap(s.ready);
        s.producer_cv.notify_all();  // queue has room
        return true;
      }
      if (s.morsels_done >= s.morsels.size()) return false;
      if (s.next_morsel < s.morsels.size()) claim = s.next_morsel++;
    }
    if (claim < s.morsels.size()) {
      if (help_states_.empty() && !s.ops.empty()) {
        help_states_.reserve(s.ops.size());
        for (const auto& op : s.ops) help_states_.push_back(op->MakeState());
      }
      lock.unlock();
      s.ProcessMorsel(claim, &help_states_, /*helper=*/true);
      lock.lock();
      continue;  // re-evaluate (the morsel's output, an error, ...)
    }
    s.consumer_cv.wait(lock);
  }
}

StatusOr<bool> ParallelScanSource::Next(Batch* out, size_t max_rows) {
  if (!started_) Start();
  if (max_rows == 0) max_rows = kDefaultBatchSize;
  if (pending_off_ < pending_.num_rows()) {
    return EmitPendingSlice(out, max_rows);
  }
  if (drained_.empty()) {
    PDT_ASSIGN_OR_RETURN(bool more, Refill());
    if (!more) return false;
  }
  Batch got = std::move(drained_.front());
  drained_.pop_front();

  if (renumber_rids_) got.set_start_rid(rows_emitted_);
  if (got.num_rows() <= max_rows) {
    spent_.push_back(std::move(*out));  // recycle the consumer's storage
    *out = std::move(got);
    rows_emitted_ += out->num_rows();
    return true;
  }
  // Worker batch exceeds the consumer's budget: serve it in slices.
  pending_ = std::move(got);
  pending_off_ = 0;
  return EmitPendingSlice(out, max_rows);
}

std::unique_ptr<BatchSource> MakeScanSource(MorselPlan plan) {
  if (plan.serial != nullptr) return std::move(plan.serial);
  if (plan.shared != nullptr && !plan.options.ordered) {
    // Ride the shared merge stream. Ordered consumers never share: the
    // stream delivers morsels in a per-consumer rotated order.
    return MakeSharedScanSource(std::move(plan.shared));
  }
  return std::make_unique<ParallelScanSource>(
      std::move(plan.morsels), std::move(plan.factory), plan.options,
      plan.renumber_rids);
}

}  // namespace pdtstore

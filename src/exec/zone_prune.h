// Zone-map chunk pruning for morsel planning: drops whole chunk ranges
// the per-chunk min/max metadata proves cannot satisfy a scan's
// ZoneFilter hints, so dead chunks are never fetched (or decoded)
// at all. Pruned chunks are charged to the BufferPool's skip counters,
// making the saved I/O visible in IoStats.
//
// Soundness with differential updates: a PDT layer patches stable rows
// positionally, so a chunk may only be dropped when *no* layer entry
// (insert / delete / modify) maps into its SID range — a modify could
// rewrite the very column the zone map excludes, and an insert is a new
// tuple the zone map knows nothing about. The check walks the layer
// stack bottom-up, shifting the range into each layer's domain by the
// prefix delta of the layers below (the same positional algebra as
// MakeMorselMergeScan). The scan's final segment additionally guards
// its end position: inserts parked there (sid == scan end; the table
// end for unbounded scans) ride as the final morsel's trailing run, so
// an entry at that position blocks pruning the segment. VDT scans pass
// an empty layer list — the VDT keys whole tuples (inserts carry full
// rows, deletes are harmless no-match markers) and its insert drain is
// key-fenced, independent of stable coverage, so only the zone test
// applies.
#ifndef PDTSTORE_EXEC_ZONE_PRUNE_H_
#define PDTSTORE_EXEC_ZONE_PRUNE_H_

#include <vector>

#include "exec/parallel_scan.h"
#include "pdt/pdt.h"
#include "storage/column_store.h"

namespace pdtstore {

/// Removes from `ranges` every chunk-aligned piece whose zone map
/// disproves all rows against `filters` and which no `layers` entry
/// touches. `ranges` follows the scan convention (empty = whole table);
/// the result is never empty — if everything is pruned it is a single
/// empty range at the scan's original end position, which scans no
/// stable rows but still anchors trailing-insert emission and stays
/// clear of the "empty means whole table" convention. Skipped chunks are counted into the store's
/// BufferPool skip stats with the disk bytes of the `projection`
/// columns that were never fetched. With no filters, returns `ranges`
/// unchanged.
std::vector<SidRange> PruneRangesWithZoneMaps(
    const ColumnStore& store, const std::vector<const Pdt*>& layers,
    std::vector<SidRange> ranges, const std::vector<ZoneFilter>& filters,
    const std::vector<ColumnId>& projection);

}  // namespace pdtstore

#endif  // PDTSTORE_EXEC_ZONE_PRUNE_H_

// Differential fuzzing of the parallel pipeline engine: every seeded
// iteration builds a random table (random size / chunking / backend),
// applies a random PDT/VDT update workload (sometimes through a
// multi-layer transaction stack), draws a random plan (filter / project
// / partitioned join / aggregation / sort / exchange), and runs it as
// the serial operator tree and as 2/4/8-thread pipelines. Results must
// agree: the exact serial sequence where the engine promises it
// (ordered exchange, deterministic sort), the multiset everywhere else.
//
// Knobs (environment):
//   PDT_FUZZ_SEED   base seed (default 20260731)
//   PDT_FUZZ_ITERS  iterations (default 40; the TSan CI job runs 200+)
//
// A failure prints the iteration's seed; rerun exactly that case with
//   PDT_FUZZ_SEED=<seed> PDT_FUZZ_ITERS=1 ./differential_fuzz_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "fuzz_util.h"

namespace pdtstore {
namespace {

using testutil::FuzzPlanResult;
using testutil::FuzzSource;
using testutil::MakeFuzzSource;
using testutil::MakeFuzzTable;
using testutil::RunFuzzPlan;
using testutil::SortTuples;

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

// One full iteration from one seed. Returns false (with a recorded
// failure) if any thread count disagreed with the serial tree.
void RunIteration(uint64_t seed) {
  Random rng(seed);
  FuzzSource src = MakeFuzzSource(&rng);
  ASSERT_NE(src.table, nullptr);
  // Join build side: a second, smaller table (no txn stack).
  std::unique_ptr<Table> build =
      MakeFuzzTable(&rng, DeltaBackend::kPdt, 60, 250);
  ASSERT_NE(build, nullptr);

  // Several plans per table amortize the build cost; each plan seed is
  // derived, so a plan failure still reproduces from the iteration seed.
  const int plans = 3;
  for (int p = 0; p < plans; ++p) {
    const uint64_t plan_seed = seed ^ (0x9E3779B97F4A7C15ULL * (p + 1));
    FuzzPlanResult ref = RunFuzzPlan(plan_seed, src, build.get(), 1);
    ASSERT_TRUE(ref.status.ok()) << ref.status.ToString();
    std::vector<Tuple> ref_sorted = ref.rows;
    SortTuples(&ref_sorted);
    for (int threads : {2, 4, 8}) {
      FuzzPlanResult got = RunFuzzPlan(plan_seed, src, build.get(), threads);
      ASSERT_TRUE(got.status.ok())
          << got.status.ToString() << " (plan " << p << ", " << threads
          << " threads)";
      if (got.exact) {
        EXPECT_EQ(got.rows, ref.rows)
            << "exact-sequence mismatch, plan " << p << ", " << threads
            << " threads";
      }
      std::vector<Tuple> got_sorted = std::move(got.rows);
      SortTuples(&got_sorted);
      EXPECT_EQ(got_sorted, ref_sorted)
          << "multiset mismatch, plan " << p << ", " << threads
          << " threads";
      if (::testing::Test::HasFailure()) return;
    }
  }
}

TEST(DifferentialFuzz, SerialAndParallelPlansAgree) {
  const uint64_t base = EnvOr("PDT_FUZZ_SEED", 20260731);
  const uint64_t iters = EnvOr("PDT_FUZZ_ITERS", 40);
  for (uint64_t i = 0; i < iters; ++i) {
    const uint64_t seed = base + i;
    SCOPED_TRACE("repro: PDT_FUZZ_SEED=" + std::to_string(seed) +
                 " PDT_FUZZ_ITERS=1 ./differential_fuzz_test");
    RunIteration(seed);
    if (::testing::Test::HasFailure()) {
      FAIL() << "differential fuzz failed at seed " << seed
             << " — repro: PDT_FUZZ_SEED=" << seed
             << " PDT_FUZZ_ITERS=1 ./differential_fuzz_test";
    }
  }
}

}  // namespace
}  // namespace pdtstore

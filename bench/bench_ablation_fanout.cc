// Ablation: PDT fan-out. The paper fixes F=8 ("leaf nodes are 128 bytes
// wide, aligned with two CPU cache lines"); this sweep shows the
// update/lookup cost across fan-outs 4..32 to justify the choice.
#include <benchmark/benchmark.h>

#include "columnstore/schema.h"
#include "pdt/pdt.h"
#include "util/random.h"

namespace pdtstore {
namespace {

std::shared_ptr<const Schema> BenchSchema() {
  auto s = Schema::Make({{"k", TypeId::kInt64}, {"v", TypeId::kInt64}}, {0});
  return std::make_shared<const Schema>(std::move(*s));
}

void BM_PdtInsert(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  const size_t preload = static_cast<size_t>(state.range(1));
  auto schema = BenchSchema();
  // Preload once; the PDT keeps growing across iterations, which only
  // strengthens the logarithmic-cost claim being measured.
  Pdt pdt(schema, PdtOptions{.fanout = fanout});
  Random rng(5);
  size_t n = 0;
  for (; n < preload; ++n) {
    Rid rid = rng.Uniform(n + 1);
    Sid sid = pdt.SKRidToSid({Value(static_cast<int64_t>(rid))}, rid);
    (void)pdt.AddInsert(sid, rid, {static_cast<int64_t>(rid), int64_t{0}});
  }
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      Rid rid = rng.Uniform(++n);
      Sid sid = pdt.SKRidToSid({Value(static_cast<int64_t>(rid))}, rid);
      benchmark::DoNotOptimize(
          pdt.AddInsert(sid, rid, {static_cast<int64_t>(rid), int64_t{0}}));
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_PdtInsert)
    ->ArgsProduct({{4, 8, 16, 32}, {10000, 100000}})
    ->Unit(benchmark::kMicrosecond);

void BM_PdtLookupRid(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  const size_t preload = static_cast<size_t>(state.range(1));
  auto schema = BenchSchema();
  Pdt pdt(schema, PdtOptions{.fanout = fanout});
  Random rng(5);
  for (size_t i = 0; i < preload; ++i) {
    Rid rid = rng.Uniform(i + 1);
    Sid sid = pdt.SKRidToSid({Value(static_cast<int64_t>(rid))}, rid);
    (void)pdt.AddInsert(sid, rid, {static_cast<int64_t>(rid), int64_t{0}});
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pdt.LookupRid(rng.Uniform(preload)));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PdtLookupRid)
    ->ArgsProduct({{4, 8, 16, 32}, {10000, 100000}})
    ->Unit(benchmark::kNanosecond);

}  // namespace
}  // namespace pdtstore

BENCHMARK_MAIN();

#!/usr/bin/env bash
# Tier-1 verification + benchmark smoke test. Runnable locally or from CI:
#   scripts/ci.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

echo "== configure =="
cmake -B "$BUILD_DIR" -S .

echo "== build =="
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "== test =="
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$(nproc)")

echo "== bench smoke (tiny sizes) =="
"$BUILD_DIR/bench_exec_kernels" --rows=20000 --reps=1 \
    --json="$BUILD_DIR/BENCH_exec_smoke.json"
"$BUILD_DIR/bench_fig17_mergescan_scaling" --sizes=20000 --rates=0,1 \
    --json="$BUILD_DIR/BENCH_fig17_smoke.json"

echo "CI OK"

// CRC32C (Castagnoli): the checksum guarding every durable artifact —
// WAL frames, the checkpoint MANIFEST and table image files. Software
// slicing-by-8 implementation; the polynomial matches SSE4.2's crc32
// instruction so a hardware path can be swapped in without changing any
// on-disk byte.
#ifndef PDTSTORE_UTIL_CRC32C_H_
#define PDTSTORE_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace pdtstore {

/// Extends `crc` (the value returned by a previous call, or 0 for the
/// first chunk) over `data[0, n)`.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// CRC32C of one contiguous buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace pdtstore

#endif  // PDTSTORE_UTIL_CRC32C_H_

// Checkpoint policy (Sec. 2, "Checkpointing"): detect when the delta
// exceeds a threshold and rebuild the stable image. The policy is
// deliberately the paper's "simplest one"; the mechanism lives in
// Table::Checkpoint().
#ifndef PDTSTORE_DB_CHECKPOINT_H_
#define PDTSTORE_DB_CHECKPOINT_H_

#include "db/table.h"

namespace pdtstore {

/// Threshold-based checkpoint trigger.
struct CheckpointPolicy {
  /// Checkpoint when the delta's heap footprint exceeds this (0 = never).
  size_t max_delta_bytes = 64 << 20;
  /// ...or when it buffers this many updates (0 = never).
  size_t max_delta_updates = 1 << 20;
  /// ...or when the delta exceeds this fraction of the stable row count
  /// (0 = disabled).
  double max_delta_fraction = 0.0;
};

/// True if `table`'s delta has outgrown the policy.
bool ShouldCheckpoint(const Table& table, const CheckpointPolicy& policy);

/// Checkpoints if the policy says so; returns whether it did.
StatusOr<bool> MaybeCheckpoint(Table* table, const CheckpointPolicy& policy);

}  // namespace pdtstore

#endif  // PDTSTORE_DB_CHECKPOINT_H_

// Storage-layer tests: chunk build/decode with zone maps, buffer-pool
// caching / eviction / I/O accounting, and ColumnStore bulk load, random
// access and disk-byte reporting.
#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/chunk.h"
#include "storage/column_store.h"
#include "test_util.h"
#include "util/random.h"

namespace pdtstore {
namespace {

using testutil::InventoryRows;
using testutil::InventorySchema;

TEST(ChunkTest, BuildComputesZoneMap) {
  ColumnVector col(TypeId::kInt64);
  col.ints() = {5, 1, 9, 3};
  auto chunk = BuildChunk(col, 100, /*compression=*/true);
  ASSERT_TRUE(chunk.ok());
  EXPECT_EQ(chunk->start_sid, 100u);
  EXPECT_EQ(chunk->row_count, 4u);
  EXPECT_EQ(chunk->min_value, Value(1));
  EXPECT_EQ(chunk->max_value, Value(9));
  ColumnVector decoded;
  ASSERT_TRUE(DecodeChunk(*chunk, &decoded).ok());
  EXPECT_EQ(decoded.ints(), col.ints());
}

TEST(ChunkTest, EmptyChunkRejected) {
  ColumnVector col(TypeId::kInt64);
  EXPECT_FALSE(BuildChunk(col, 0, true).ok());
}

TEST(BufferPoolTest, HitMissAccounting) {
  ColumnVector col(TypeId::kInt64);
  for (int i = 0; i < 100; ++i) col.ints().push_back(i);
  auto chunk = BuildChunk(col, 0, false);
  ASSERT_TRUE(chunk.ok());
  BufferPool pool;
  auto first = pool.Fetch(1, *chunk);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(pool.stats().chunks_read, 1u);
  EXPECT_EQ(pool.stats().bytes_read, chunk->DiskBytes());
  EXPECT_EQ(pool.stats().hits, 0u);
  auto second = pool.Fetch(1, *chunk);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(pool.stats().chunks_read, 1u);  // cached
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(first->get(), second->get());  // same decoded object
  // EvictAll forces a re-read.
  pool.EvictAll();
  auto third = pool.Fetch(1, *chunk);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(pool.stats().chunks_read, 2u);
}

TEST(BufferPoolTest, LruEvictionUnderCapacity) {
  ColumnVector col(TypeId::kInt64);
  for (int i = 0; i < 1000; ++i) col.ints().push_back(i);
  auto chunk = BuildChunk(col, 0, false);
  ASSERT_TRUE(chunk.ok());
  // Capacity for ~2 decoded chunks (8KB each).
  BufferPool pool(20000);
  for (uint64_t key = 0; key < 10; ++key) {
    ASSERT_TRUE(pool.Fetch(key, *chunk).ok());
  }
  EXPECT_LE(pool.cached_bytes(), 20000u);
  EXPECT_LT(pool.cached_chunks(), 10u);
  // Most-recent key is still cached.
  uint64_t reads_before = pool.stats().chunks_read;
  ASSERT_TRUE(pool.Fetch(9, *chunk).ok());
  EXPECT_EQ(pool.stats().chunks_read, reads_before);
}

TEST(ColumnStoreTest, BulkLoadValidation) {
  auto schema = InventorySchema();
  ColumnStore store(*schema, {}, nullptr);
  // Out-of-order rows rejected.
  EXPECT_FALSE(store
                   .BulkLoad({{"Z", "z", "N", 1}, {"A", "a", "N", 2}})
                   .ok());
  // Duplicate keys rejected (SK is a key).
  ColumnStore store2(*schema, {}, nullptr);
  EXPECT_FALSE(store2
                   .BulkLoad({{"A", "a", "N", 1}, {"A", "a", "N", 2}})
                   .ok());
  // Double load rejected.
  ColumnStore store3(*schema, {}, nullptr);
  ASSERT_TRUE(store3.BulkLoad(InventoryRows()).ok());
  EXPECT_FALSE(store3.BulkLoad(InventoryRows()).ok());
}

TEST(ColumnStoreTest, ChunkingAndRandomAccess) {
  auto schema_or = Schema::Make(
      {{"k", TypeId::kInt64}, {"v", TypeId::kString}}, {0});
  auto schema = std::make_shared<const Schema>(std::move(*schema_or));
  ColumnStoreOptions opts;
  opts.chunk_rows = 10;
  ColumnStore store(*schema, opts, nullptr);
  std::vector<Tuple> rows;
  for (int i = 0; i < 95; ++i) {
    rows.push_back({int64_t{i}, "v" + std::to_string(i)});
  }
  ASSERT_TRUE(store.BulkLoad(rows).ok());
  EXPECT_EQ(store.num_rows(), 95u);
  EXPECT_EQ(store.num_chunks(), 10u);  // 9 full + 1 partial
  auto [b0, e0] = store.ChunkSidRange(0);
  EXPECT_EQ(b0, 0u);
  EXPECT_EQ(e0, 10u);
  auto [b9, e9] = store.ChunkSidRange(9);
  EXPECT_EQ(b9, 90u);
  EXPECT_EQ(e9, 95u);
  EXPECT_EQ(store.ChunkIndexForSid(0), 0u);
  EXPECT_EQ(store.ChunkIndexForSid(9), 0u);
  EXPECT_EQ(store.ChunkIndexForSid(10), 1u);
  EXPECT_EQ(store.ChunkIndexForSid(94), 9u);
  for (Sid sid : {Sid{0}, Sid{17}, Sid{94}}) {
    auto t = store.GetTuple(sid);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ((*t)[0], Value(static_cast<int64_t>(sid)));
    EXPECT_EQ((*t)[1], Value("v" + std::to_string(sid)));
  }
  EXPECT_FALSE(store.GetValue(0, 95).ok());
  EXPECT_GT(store.DiskBytes(), 0u);
  EXPECT_EQ(store.DiskBytes(),
            store.DiskBytesForColumn(0) + store.DiskBytesForColumn(1));
}

TEST(ColumnStoreTest, CompressionShrinksSortedKeys) {
  auto schema_or = Schema::Make(
      {{"k", TypeId::kInt64}, {"v", TypeId::kInt64}}, {0});
  auto schema = std::make_shared<const Schema>(std::move(*schema_or));
  std::vector<Tuple> rows;
  Random rng(3);
  for (int i = 0; i < 20000; ++i) {
    rows.push_back({int64_t{i}, static_cast<int64_t>(rng.Next())});
  }
  ColumnStoreOptions on, off;
  on.compression = true;
  off.compression = false;
  ColumnStore compressed(*schema, on, nullptr);
  ColumnStore plain(*schema, off, nullptr);
  ASSERT_TRUE(compressed.BulkLoad(rows).ok());
  ASSERT_TRUE(plain.BulkLoad(rows).ok());
  // The sorted key column compresses dramatically (delta-varint)...
  EXPECT_LT(compressed.DiskBytesForColumn(0) * 4,
            plain.DiskBytesForColumn(0));
  // ...while random payloads do not.
  EXPECT_EQ(compressed.DiskBytesForColumn(1), plain.DiskBytesForColumn(1));
}

TEST(ColumnStoreTest, GetSortKeyMatchesTuple) {
  auto schema = InventorySchema();
  ColumnStore store(*schema, {}, nullptr);
  ASSERT_TRUE(store.BulkLoad(InventoryRows()).ok());
  auto key = store.GetSortKey(3);
  ASSERT_TRUE(key.ok());
  EXPECT_EQ((*key)[0], Value("Paris"));
  EXPECT_EQ((*key)[1], Value("rug"));
}

}  // namespace
}  // namespace pdtstore

// Update-entry representation shared by the PDT tree, the flat reference
// implementation, and the Serialize/Propagate algorithms.
//
// Mirrors the paper's leaf triplet (Sec. 3.1): a SID, a 16-bit type that is
// either INS (65535), DEL (65534) or the modified column number, and a
// value-space offset. (The paper packs type+offset into one 64-bit word;
// we keep separate fields for clarity — the memory layout of the tree
// nodes, not of this POD, is what the experiments exercise.)
#ifndef PDTSTORE_PDT_UPDATE_ENTRY_H_
#define PDTSTORE_PDT_UPDATE_ENTRY_H_

#include <cstdint>
#include <string>

#include "columnstore/types.h"

namespace pdtstore {

/// Update type tag: INS, DEL, or the column number of a modify.
constexpr uint16_t kTypeIns = 0xFFFF;
constexpr uint16_t kTypeDel = 0xFFFE;
/// Largest column number representable in the 16-bit type field ("an
/// ultra-wide 65534 column table fits two bytes" — Sec. 3.1).
constexpr uint32_t kMaxTableColumns = 0xFFFE;

/// True if `type` tags a modify of column `type`.
inline bool IsModifyType(uint16_t type) { return type < kTypeDel; }

/// RID-shift contribution of an update: +1 for INS, -1 for DEL, 0 for MOD.
inline int64_t DeltaOf(uint16_t type) {
  if (type == kTypeIns) return 1;
  if (type == kTypeDel) return -1;
  return 0;
}

/// One differential update: "apply `type` at stable position `sid`, with
/// payload at value-space offset `value`".
struct UpdateEntry {
  Sid sid = 0;
  uint16_t type = 0;
  uint64_t value = 0;

  bool operator==(const UpdateEntry&) const = default;
};

/// Debug rendering, e.g. "INS@5->3" or "mod(c2)@7->0".
std::string UpdateEntryToString(const UpdateEntry& e);

}  // namespace pdtstore

#endif  // PDTSTORE_PDT_UPDATE_ENTRY_H_

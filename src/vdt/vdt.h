// The Value-based Delta Tree (VDT) — the paper's baseline (Sec. 2,
// "VDTs"): the MonetDB-style differential scheme with an insert table
// holding all inserted *and modified* tuples (all columns) and a deletion
// table holding the sort-key values of deleted-or-modified stable tuples,
// both kept organized in SK order (here: ordered maps standing in for the
// paper's RAM-friendly B-trees).
//
// Its read path (VdtMergeScan) must merge by *value*: every scan reads
// the SK columns — even when the query does not — and performs per-row
// key comparisons. That contrast is exactly what Figures 17-19 measure.
#ifndef PDTSTORE_VDT_VDT_H_
#define PDTSTORE_VDT_VDT_H_

#include <map>
#include <memory>
#include <vector>

#include "columnstore/schema.h"
#include "util/status.h"

namespace pdtstore {

/// Lexicographic ordering of SK value vectors.
struct SortKeyLess {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    return CompareTuples(a, b) < 0;
  }
};

/// One VDT differential layer.
class Vdt {
 public:
  using InsertMap = std::map<std::vector<Value>, Tuple, SortKeyLess>;
  using DeleteSet = std::map<std::vector<Value>, bool, SortKeyLess>;

  explicit Vdt(std::shared_ptr<const Schema> schema)
      : schema_(std::move(schema)) {}

  const Schema& schema() const { return *schema_; }

  /// Records the insertion of a new tuple.
  Status AddInsert(const Tuple& tuple);

  /// Records the deletion of the tuple with key `sk`. `was_stable` tells
  /// whether the key exists in the stable image (then a deletion marker
  /// is needed); deleting a purely-inserted tuple just erases it.
  Status AddDelete(const std::vector<Value>& sk, bool was_stable);

  /// Records a modify: the *full* updated tuple enters the insert table
  /// and, if the original is stable, its key enters the deletion table.
  Status AddModify(const Tuple& new_tuple, bool was_stable);

  const InsertMap& inserts() const { return ins_; }
  const DeleteSet& deletes() const { return del_; }

  /// Tuple recorded under `sk` in the insert table, if any.
  const Tuple* FindInsert(const std::vector<Value>& sk) const;
  /// True if `sk` is marked deleted/superseded.
  bool IsDeleted(const std::vector<Value>& sk) const;

  /// Net change in visible row count.
  int64_t TotalDelta() const {
    return static_cast<int64_t>(ins_.size()) -
           static_cast<int64_t>(del_.size());
  }

  size_t InsertCount() const { return ins_.size(); }
  size_t DeleteCount() const { return del_.size(); }
  bool Empty() const { return ins_.empty() && del_.empty(); }

  /// Approximate heap footprint.
  size_t MemoryBytes() const;

  void Clear() {
    ins_.clear();
    del_.clear();
  }

 private:
  std::shared_ptr<const Schema> schema_;
  InsertMap ins_;
  DeleteSet del_;
};

}  // namespace pdtstore

#endif  // PDTSTORE_VDT_VDT_H_

// Sparse-index tests, including the paper's staleness property: because
// PDT SIDs respect ghost tuples, a zone-map built on TABLE0 keeps
// returning correct (superset) SID ranges after arbitrary PDT updates.
#include "storage/sparse_index.h"

#include <gtest/gtest.h>

#include "pdt/merge_scan.h"
#include "test_util.h"
#include "util/random.h"

namespace pdtstore {
namespace {

using testutil::BuildStore;
using testutil::ModelTable;

std::shared_ptr<const Schema> IntSchema() {
  auto s = Schema::Make({{"k", TypeId::kInt64}, {"v", TypeId::kInt64}}, {0});
  return std::make_shared<const Schema>(std::move(*s));
}

std::vector<Tuple> IntRows(int n, int64_t gap = 10) {
  std::vector<Tuple> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back({static_cast<int64_t>(i) * gap, int64_t{i}});
  }
  return rows;
}

TEST(SparseIndexTest, BuildAndLookup) {
  auto schema = IntSchema();
  auto store = BuildStore(schema, IntRows(100), {.chunk_rows = 10});
  auto index = SparseIndex::Build(*store);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->entries().size(), 10u);
  // Keys 0..990 in chunks of 10 keys (gap 10): key 345 is in chunk 3.
  auto ranges = index->LookupRange({Value(340)}, {Value(350)});
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].begin, 30u);
  EXPECT_EQ(ranges[0].end, 40u);
  // Range spanning a chunk boundary coalesces: keys 95..205 touch chunks
  // 1 (100..190) and 2 (200..290); chunk 0's max key 90 < 95 excludes it.
  ranges = index->LookupRange({Value(95)}, {Value(205)});
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].begin, 10u);
  EXPECT_EQ(ranges[0].end, 30u);
  // Unbounded sides.
  ranges = index->LookupRange({}, {Value(15)});
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].begin, 0u);
  ranges = index->LookupRange({Value(985)}, {});
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].end, 100u);
  // Out of domain: empty.
  EXPECT_TRUE(index->LookupRange({Value(99999)}, {Value(999999)}).empty());
}

TEST(SparseIndexTest, LowerBoundSid) {
  auto schema = IntSchema();
  auto store = BuildStore(schema, IntRows(100), {.chunk_rows = 10});
  auto index = SparseIndex::Build(*store);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->LowerBoundSid({Value(0)}), 0u);
  EXPECT_EQ(index->LowerBoundSid({Value(101)}), 10u);  // chunk granularity
  EXPECT_EQ(index->LowerBoundSid({Value(99999)}), 100u);
}

TEST(SparseIndexTest, CompoundKeyPrefixLookup) {
  auto schema = testutil::InventorySchema();
  auto store = BuildStore(schema, testutil::InventoryRows(),
                          {.chunk_rows = 2});
  auto index = SparseIndex::Build(*store);
  ASSERT_TRUE(index.ok());
  auto ranges = index->LookupRange({Value("Paris")}, {Value("Paris")});
  ASSERT_FALSE(ranges.empty());
  // All Paris rows (sids 3, 4) are covered.
  EXPECT_LE(ranges.front().begin, 3u);
  EXPECT_GE(ranges.back().end, 5u);
}

// The "Respecting Deletes" property as a randomized invariant: after any
// update mix, a range scan restricted by the *stale* index returns
// exactly the rows a full-scan-and-filter returns.
class StaleIndexPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StaleIndexPropertyTest, StaleRangesRemainCorrect) {
  auto schema = IntSchema();
  auto base = IntRows(500, 10);
  auto store = BuildStore(schema, base, {.chunk_rows = 32});
  auto index = SparseIndex::Build(*store);
  ASSERT_TRUE(index.ok());
  ModelTable model(schema, base);
  Random rng(GetParam());
  for (int op = 0; op < 300; ++op) {
    double dice = rng.NextDouble();
    if (dice < 0.45 || model.size() == 0) {
      (void)model.Insert({rng.UniformRange(0, 5555), int64_t{op}});
    } else if (dice < 0.75) {
      ASSERT_TRUE(model.DeleteAt(rng.Uniform(model.size())).ok());
    } else {
      ASSERT_TRUE(
          model.ModifyAt(rng.Uniform(model.size()), 1, Value(op)).ok());
    }
  }
  for (int trial = 0; trial < 20; ++trial) {
    int64_t lo = rng.UniformRange(0, 5000);
    int64_t hi = lo + rng.UniformRange(0, 1500);
    // Restricted scan through the stale index...
    auto ranges = index->LookupRange({Value(lo)}, {Value(hi)});
    auto scan = MakeMergeScan(*store, {model.pdt()}, {0, 1}, ranges);
    auto got = CollectRows(scan.get());
    ASSERT_TRUE(got.ok());
    std::vector<Tuple> got_filtered;
    for (const auto& t : *got) {
      if (t[0].AsInt64() >= lo && t[0].AsInt64() <= hi) {
        got_filtered.push_back(t);
      }
    }
    // ...must equal the model rows in range.
    std::vector<Tuple> expected;
    for (const auto& t : model.rows()) {
      if (t[0].AsInt64() >= lo && t[0].AsInt64() <= hi) {
        expected.push_back(t);
      }
    }
    EXPECT_EQ(got_filtered, expected)
        << "range [" << lo << "," << hi << "] trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StaleIndexPropertyTest,
                         ::testing::Values(41, 42, 43, 44));

}  // namespace
}  // namespace pdtstore

// A small fixed-size worker pool plus a dynamic ParallelFor, the execution
// substrate of the morsel-driven parallel scan (exec/parallel_scan.h).
// Deliberately work-stealing-free: scan morsels are claimed from a shared
// atomic queue, so a plain task pool with dynamic (counter-based) index
// claiming already load-balances skewed morsels.
//
// Fairness: tasks are submitted under a query token (0 = the default /
// system lane). Each token gets its own FIFO lane and the workers claim
// lanes round-robin, so a query that fans out a 100-deep backlog cannot
// starve a query admitted earlier — the earlier query's lane is visited
// once per rotation no matter how deep any other lane is. Within one
// lane, order stays FIFO (the old single-queue behavior; a single-token
// workload is scheduled exactly as before). Claimed tasks are never
// preempted: fairness bounds queue wait, not the runtime of tasks
// already on a worker — admission control (exec/workload.h) bounds how
// many queries can occupy workers at once.
#ifndef PDTSTORE_UTIL_THREAD_POOL_H_
#define PDTSTORE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace pdtstore {

/// Fixed set of worker threads executing submitted tasks FIFO per token,
/// round-robin across tokens. The destructor drains all submitted tasks
/// before joining, so long-running tasks must observe their own
/// cancellation flag (as the parallel scan's workers do via its abort
/// flag).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  /// Enqueues `fn` on the default lane (token 0).
  void Submit(std::function<void()> fn) { Submit(0, std::move(fn)); }

  /// Enqueues `fn` on `token`'s FIFO lane.
  void Submit(uint64_t token, std::function<void()> fn);

  /// Enqueues `n` copies of `fn` under one lock acquisition and a
  /// single wake-all — the fan-out path of pipeline runners and
  /// ParallelFor, which otherwise pay one lock + notify per helper.
  void SubmitMany(size_t n, const std::function<void()>& fn) {
    SubmitMany(0, n, fn);
  }
  void SubmitMany(uint64_t token, size_t n,
                  const std::function<void()>& fn);

  /// Blocks until every submitted task has finished.
  void WaitIdle();

  /// Hardware concurrency, with a floor of 1 (hardware_concurrency() may
  /// report 0 on exotic platforms).
  static int DefaultThreads();

  /// The process-wide worker pool shared by every parallel scan and
  /// pipeline (lazily constructed, sized to the hardware). Scans no
  /// longer spawn a private pool: `ScanOptions::num_threads` caps how
  /// many of these workers one query fragment occupies, so concurrent
  /// queries share the same threads. Submitted tasks must tolerate
  /// running arbitrarily late (lanes rotate across all queries) and
  /// must observe their own cancellation flags; progress-critical work
  /// additionally runs on the submitting thread (see the consumer-help
  /// loop in exec/parallel_scan.cc), so a busy pool degrades throughput,
  /// never liveness.
  static ThreadPool& Global();

 private:
  void WorkerLoop();
  // Appends to a token's lane, registering the token in the rotation if
  // its lane was empty. Caller holds mu_.
  void EnqueueLocked(uint64_t token, std::function<void()> fn);
  // Pops the next task round-robin. Caller holds mu_ and pending_ > 0.
  std::function<void()> ClaimLocked();

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: task or shutdown
  std::condition_variable idle_cv_;   // signals WaitIdle: all drained
  std::unordered_map<uint64_t, std::deque<std::function<void()>>> lanes_;
  std::deque<uint64_t> rotation_;     // tokens with non-empty lanes
  size_t pending_ = 0;                // total queued tasks across lanes
  size_t running_ = 0;
  bool shutdown_ = false;
};

/// Applies `fn` to every index in [begin, end) using up to `num_threads`
/// workers (<= 0: DefaultThreads()) drawn from the shared global pool,
/// with the calling thread participating — every index completes even if
/// the pool is fully occupied by other queries. Indices are claimed
/// dynamically from a shared atomic counter, so unevenly-sized work items
/// still balance. Runs inline when one worker suffices. Helper tasks are
/// submitted under the calling thread's query token (util/mem_budget.h),
/// so a query's ParallelFor waits in that query's fairness lane. `fn`
/// must be thread-safe.
void ParallelFor(int num_threads, size_t begin, size_t end,
                 const std::function<void(size_t)>& fn);

}  // namespace pdtstore

#endif  // PDTSTORE_UTIL_THREAD_POOL_H_

// The 22 TPC-H query kernels of the paper's evaluation (Sec. 4). Each
// kernel reproduces the corresponding query's scan footprint over the
// *updated* tables (lineitem, orders) — the quantity the experiment
// measures — with dimension joins against the generated dimension tables
// and TPC-H's predicates/aggregations expressed through the vectorized
// executor. Queries 2, 11 and 16 touch no updated table (the paper's
// footnote 6: their results do not differ between runs).
#ifndef PDTSTORE_TPCH_QUERIES_H_
#define PDTSTORE_TPCH_QUERIES_H_

#include "tpch/tpch_gen.h"

namespace pdtstore {
namespace tpch {

/// Result digest of one query: row count of the final operator plus a
/// numeric checksum, used to verify that PDT / VDT / no-update runs agree
/// with each other where they must.
struct QueryResult {
  size_t rows = 0;
  double checksum = 0.0;
};

/// Query execution knobs. The default (1 thread) builds the unchanged
/// serial operator tree; more threads run each query's scan fragments
/// (scan -> filter -> project -> join probe -> partial agg / build) as
/// parallel pipelines inside the morsel workers (exec/pipeline.h), with
/// order-insensitive delivery — the result multiset is identical, group
/// order and floating-point summation order are not.
struct QueryOptions {
  int num_threads = 1;
  /// Morsel granularity; 0 auto-tunes (AutoMorselRows).
  size_t morsel_rows = 0;
};

/// Runs query `q` (1-22). InvalidArgument for unknown numbers.
StatusOr<QueryResult> RunTpchQuery(int q, const TpchTables& tables,
                                   const QueryOptions& opts = {});

/// True if query `q` scans lineitem or orders.
bool QueryTouchesUpdatedTables(int q);

}  // namespace tpch
}  // namespace pdtstore

#endif  // PDTSTORE_TPCH_QUERIES_H_

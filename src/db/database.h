// Database: a catalog of updatable tables sharing one buffer pool, plus
// global I/O accounting used by the benchmarks' cold/hot protocol.
//
// A Database is either in-memory (the default constructor) or persistent
// (Open(dir)): persistent databases keep a group-commit WAL segment plus
// a checksummed MANIFEST + per-table stable images in their directory,
// and recover the committed state on reopen. The durability protocol:
//
//   commit   — redo frames appended to the shared WAL; the commit is
//              acknowledged only after the frames are fsynced (group
//              commit batches concurrent committers into one fsync)
//   Save     — checkpoint: write fresh table images (temp + rename),
//              create the next epoch's empty WAL segment, then atomically
//              rename the new MANIFEST over the old one — the commit
//              point — and only then truncate the old WAL
//   Open     — load the images the MANIFEST names, replay the committed
//              WAL suffix (torn tail truncated, mid-log corruption
//              reported), and continue appending to the live segment
//
// If recovery finds state it cannot trust (corrupt manifest, image or
// mid-log WAL damage) the database degrades to read-only and surfaces
// the cause via recovery_status() instead of crashing or guessing.
#ifndef PDTSTORE_DB_DATABASE_H_
#define PDTSTORE_DB_DATABASE_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>

#include "db/checkpoint.h"
#include "db/table.h"
#include "txn/txn_manager.h"

namespace pdtstore {

/// Database-wide configuration.
struct DatabaseOptions {
  /// Decoded-chunk cache capacity; 0 = unbounded.
  size_t buffer_pool_bytes = 0;
  /// Defaults applied to tables created without explicit options.
  TableOptions table_defaults;
  /// Defaults for the per-table transaction managers handed out by
  /// Txn() (group_commit toggles the WAL flush strategy).
  TxnManagerOptions txn_defaults;
  /// File system for persistence; null = the real POSIX one. Tests pass
  /// a FaultInjectingFs here.
  FileSystem* fs = nullptr;
};

/// A small embedded column-store database.
class Database {
 public:
  explicit Database(DatabaseOptions options = {});

  /// Opens (or creates) a persistent database in `dir`: loads the
  /// manifest and table images, replays the committed WAL suffix and
  /// attaches the group-commit writer. Always returns a usable Database
  /// unless the directory itself is unusable; unrecoverable contents
  /// degrade it to read-only with the cause in recovery_status().
  static StatusOr<std::unique_ptr<Database>> Open(const std::string& dir,
                                                  DatabaseOptions options = {});

  /// Durable checkpoint: writes every table's stable image and commits
  /// them with an atomic manifest swap; the WAL is truncated only after
  /// the swap. On a crash anywhere inside Save, reopen sees either the
  /// old checkpoint + old WAL or the new checkpoint — never a mixture.
  Status Save();

  /// Creates an (unloaded) table; fails on duplicate name. On a
  /// persistent database the creation is durable (manifest rewrite)
  /// before this returns.
  StatusOr<Table*> CreateTable(const std::string& name,
                               std::shared_ptr<const Schema> schema);
  StatusOr<Table*> CreateTable(const std::string& name,
                               std::shared_ptr<const Schema> schema,
                               TableOptions options);

  /// Looks a table up by name.
  StatusOr<Table*> GetTable(const std::string& name) const;

  /// Drops a table. (Persistent databases refuse while read-only; the
  /// drop is made durable by the next Save.)
  Status DropTable(const std::string& name);

  /// The transaction manager for `name` (created on first use). On a
  /// persistent database its commits are durable through the shared
  /// WAL; all managers share one transaction-id space.
  StatusOr<TxnManager*> Txn(const std::string& name);

  /// The transaction manager for `name` if one was already created by
  /// Txn(); null otherwise. Read-only lookup for observability (the
  /// shell's `.stats`) — never instantiates a manager as a side effect.
  TxnManager* FindTxn(const std::string& name) const;

  bool persistent() const { return !dir_.empty(); }
  /// True when recovery degraded the database (see recovery_status()).
  bool read_only() const { return read_only_; }
  /// Why the database is read-only; OK when it is healthy.
  const Status& recovery_status() const { return recovery_status_; }
  Wal* wal() { return wal_.get(); }

  BufferPool* buffer_pool() const { return pool_.get(); }
  /// Snapshot of the pool's I/O counters (safe mid-scan; see BufferPool).
  IoStats io_stats() const { return pool_->stats(); }
  void ResetIoStats() { pool_->ResetStats(); }
  /// Empties the decoded-chunk cache: the next scans run "cold".
  void DropCaches() { pool_->EvictAll(); }

  const DatabaseOptions& options() const { return options_; }
  std::vector<std::string> TableNames() const;

 private:
  // Marks the database read-only with `why` (first cause wins).
  void Degrade(const Status& why);
  // Replays the recovered WAL into `table` through a throwaway manager.
  Status ReplayInto(Table* table);
  std::string PathOf(const std::string& file) const { return dir_ + "/" + file; }
  static std::string WalFileName(uint64_t epoch);

  DatabaseOptions options_;
  std::shared_ptr<BufferPool> pool_;
  std::map<std::string, std::unique_ptr<Table>> tables_;

  // Persistence state (unset for in-memory databases).
  std::string dir_;
  FileSystem* fs_ = nullptr;
  Manifest manifest_;  ///< the current durable root (mirrors MANIFEST)
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<WalWriter> wal_writer_;
  std::map<std::string, std::unique_ptr<TxnManager>> managers_;
  std::atomic<uint64_t> txn_ids_{0};  ///< shared id space for all managers
  bool read_only_ = false;
  Status recovery_status_ = Status::OK();
};

}  // namespace pdtstore

#endif  // PDTSTORE_DB_DATABASE_H_

#include "exec/filter.h"

namespace pdtstore {

StatusOr<bool> FilterNode::Next(Batch* out, size_t max_rows) {
  Batch in;
  while (true) {
    PDT_ASSIGN_OR_RETURN(bool more, input_->Next(&in, max_rows));
    if (!more) return false;
    keep_.assign(in.num_rows(), 0);
    predicate_(in, &keep_);
    // Compact survivors column-wise: one typed kernel per column rather
    // than a type dispatch per surviving value.
    out->ResetLike(in);
    out->set_start_rid(in.start_rid());
    out->AppendFiltered(in, keep_.data());
    if (out->num_rows() > 0) return true;
    // Entirely filtered out: pull the next input batch.
  }
}

VecPredicate Int64Between(size_t idx, int64_t lo, int64_t hi) {
  return [idx, lo, hi](const Batch& b, std::vector<uint8_t>* keep) {
    const auto& v = b.column(idx).ints();
    for (size_t i = 0; i < v.size(); ++i) {
      (*keep)[i] = (v[i] >= lo && v[i] <= hi) ? 1 : 0;
    }
  };
}

VecPredicate DoubleInRange(size_t idx, double lo, double hi) {
  return [idx, lo, hi](const Batch& b, std::vector<uint8_t>* keep) {
    const auto& v = b.column(idx).doubles();
    for (size_t i = 0; i < v.size(); ++i) {
      (*keep)[i] = (v[i] >= lo && v[i] < hi) ? 1 : 0;
    }
  };
}

VecPredicate StringEquals(size_t idx, std::string s) {
  return [idx, s = std::move(s)](const Batch& b,
                                 std::vector<uint8_t>* keep) {
    const auto& v = b.column(idx).strings();
    for (size_t i = 0; i < v.size(); ++i) {
      (*keep)[i] = (v[i] == s) ? 1 : 0;
    }
  };
}

VecPredicate And(std::vector<VecPredicate> preds) {
  return [preds = std::move(preds)](const Batch& b,
                                    std::vector<uint8_t>* keep) {
    std::vector<uint8_t> acc(b.num_rows(), 1);
    std::vector<uint8_t> tmp;
    for (const auto& p : preds) {
      tmp.assign(b.num_rows(), 0);
      p(b, &tmp);
      for (size_t i = 0; i < acc.size(); ++i) acc[i] &= tmp[i];
    }
    *keep = std::move(acc);
  };
}

}  // namespace pdtstore

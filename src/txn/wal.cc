#include "txn/wal.h"

#include <cstdio>
#include <cstring>

#include "storage/encoding.h"

namespace pdtstore {

namespace {

void PutValue(std::string* out, const Value& v) {
  out->push_back(static_cast<char>(v.type()));
  switch (v.type()) {
    case TypeId::kInt64:
      PutVarint64(out, ZigZagEncode(v.AsInt64()));
      break;
    case TypeId::kDouble: {
      uint64_t bits;
      double d = v.AsDouble();
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, 8);
      PutVarint64(out, bits);
      break;
    }
    case TypeId::kString:
      PutVarint64(out, v.AsString().size());
      out->append(v.AsString());
      break;
  }
}

Status GetValue(const std::string& in, size_t* pos, Value* v) {
  if (*pos >= in.size()) return Status::Corruption("truncated WAL value");
  TypeId type = static_cast<TypeId>(in[*pos]);
  ++*pos;
  uint64_t raw;
  PDT_RETURN_NOT_OK(GetVarint64(in, pos, &raw));
  switch (type) {
    case TypeId::kInt64:
      *v = Value(ZigZagDecode(raw));
      return Status::OK();
    case TypeId::kDouble: {
      double d;
      std::memcpy(&d, &raw, 8);
      *v = Value(d);
      return Status::OK();
    }
    case TypeId::kString: {
      if (*pos + raw > in.size()) {
        return Status::Corruption("truncated WAL string");
      }
      *v = Value(in.substr(*pos, raw));
      *pos += raw;
      return Status::OK();
    }
  }
  return Status::Corruption("bad WAL value type");
}

void PutValues(std::string* out, const std::vector<Value>& vs) {
  PutVarint64(out, vs.size());
  for (const Value& v : vs) PutValue(out, v);
}

Status GetValues(const std::string& in, size_t* pos, std::vector<Value>* vs) {
  uint64_t n;
  PDT_RETURN_NOT_OK(GetVarint64(in, pos, &n));
  vs->clear();
  vs->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Value v;
    PDT_RETURN_NOT_OK(GetValue(in, pos, &v));
    vs->push_back(std::move(v));
  }
  return Status::OK();
}

}  // namespace

uint64_t Wal::Append(const WalRecord& record) {
  uint64_t lsn = buffer_.size();
  buffer_.push_back(static_cast<char>(record.type));
  PutVarint64(&buffer_, record.txn_id);
  PutVarint64(&buffer_, record.table.size());
  buffer_.append(record.table);
  switch (record.type) {
    case WalRecordType::kInsert:
      PutValues(&buffer_, record.tuple);
      break;
    case WalRecordType::kDelete:
      PutValues(&buffer_, record.key);
      break;
    case WalRecordType::kModify:
      PutValues(&buffer_, record.key);
      PutVarint64(&buffer_, record.column);
      PutValue(&buffer_, record.value);
      break;
    default:
      break;
  }
  ++record_count_;
  return lsn;
}

uint64_t Wal::LogBegin(uint64_t txn_id) {
  WalRecord r;
  r.type = WalRecordType::kBegin;
  r.txn_id = txn_id;
  return Append(r);
}

uint64_t Wal::LogInsert(uint64_t txn_id, const std::string& table,
                        const Tuple& tuple) {
  WalRecord r;
  r.type = WalRecordType::kInsert;
  r.txn_id = txn_id;
  r.table = table;
  r.tuple = tuple;
  return Append(r);
}

uint64_t Wal::LogDelete(uint64_t txn_id, const std::string& table,
                        const std::vector<Value>& key) {
  WalRecord r;
  r.type = WalRecordType::kDelete;
  r.txn_id = txn_id;
  r.table = table;
  r.key = key;
  return Append(r);
}

uint64_t Wal::LogModify(uint64_t txn_id, const std::string& table,
                        const std::vector<Value>& key, ColumnId col,
                        const Value& v) {
  WalRecord r;
  r.type = WalRecordType::kModify;
  r.txn_id = txn_id;
  r.table = table;
  r.key = key;
  r.column = col;
  r.value = v;
  return Append(r);
}

uint64_t Wal::LogCommit(uint64_t txn_id) {
  WalRecord r;
  r.type = WalRecordType::kCommit;
  r.txn_id = txn_id;
  return Append(r);
}

uint64_t Wal::LogAbort(uint64_t txn_id) {
  WalRecord r;
  r.type = WalRecordType::kAbort;
  r.txn_id = txn_id;
  return Append(r);
}

uint64_t Wal::LogCheckpoint(const std::string& table) {
  WalRecord r;
  r.type = WalRecordType::kCheckpoint;
  r.table = table;
  return Append(r);
}

Status Wal::Replay(const std::function<Status(const WalRecord&)>& fn) const {
  size_t pos = 0;
  while (pos < buffer_.size()) {
    WalRecord r;
    r.type = static_cast<WalRecordType>(buffer_[pos]);
    ++pos;
    PDT_RETURN_NOT_OK(GetVarint64(buffer_, &pos, &r.txn_id));
    uint64_t tlen;
    PDT_RETURN_NOT_OK(GetVarint64(buffer_, &pos, &tlen));
    if (pos + tlen > buffer_.size()) {
      return Status::Corruption("truncated WAL table name");
    }
    r.table = buffer_.substr(pos, tlen);
    pos += tlen;
    switch (r.type) {
      case WalRecordType::kInsert:
        PDT_RETURN_NOT_OK(GetValues(buffer_, &pos, &r.tuple));
        break;
      case WalRecordType::kDelete:
        PDT_RETURN_NOT_OK(GetValues(buffer_, &pos, &r.key));
        break;
      case WalRecordType::kModify: {
        PDT_RETURN_NOT_OK(GetValues(buffer_, &pos, &r.key));
        uint64_t col;
        PDT_RETURN_NOT_OK(GetVarint64(buffer_, &pos, &col));
        r.column = static_cast<ColumnId>(col);
        PDT_RETURN_NOT_OK(GetValue(buffer_, &pos, &r.value));
        break;
      }
      case WalRecordType::kBegin:
      case WalRecordType::kCommit:
      case WalRecordType::kAbort:
      case WalRecordType::kCheckpoint:
        break;
      default:
        return Status::Corruption("bad WAL record type");
    }
    PDT_RETURN_NOT_OK(fn(r));
  }
  return Status::OK();
}

void Wal::Truncate() {
  buffer_.clear();
  record_count_ = 0;
}

Status Wal::WriteToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  size_t n = std::fwrite(buffer_.data(), 1, buffer_.size(), f);
  std::fclose(f);
  if (n != buffer_.size()) return Status::IOError("short WAL write");
  return Status::OK();
}

Status Wal::LoadFromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  buffer_.resize(static_cast<size_t>(size));
  size_t n = std::fread(buffer_.data(), 1, buffer_.size(), f);
  std::fclose(f);
  if (n != buffer_.size()) return Status::IOError("short WAL read");
  // Recount records.
  record_count_ = 0;
  return Replay([this](const WalRecord&) {
    ++record_count_;
    return Status::OK();
  });
}

}  // namespace pdtstore

#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace pdtstore {

int ThreadPool::DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
    }
  }
}

void ParallelFor(int num_threads, size_t begin, size_t end,
                 const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  const size_t n = end - begin;
  size_t workers = num_threads <= 0
                       ? static_cast<size_t>(ThreadPool::DefaultThreads())
                       : static_cast<size_t>(num_threads);
  workers = std::min(workers, n);
  if (workers <= 1) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{begin};
  ThreadPool pool(static_cast<int>(workers));
  for (size_t t = 0; t < workers; ++t) {
    pool.Submit([&next, end, &fn] {
      for (size_t i; (i = next.fetch_add(1, std::memory_order_relaxed)) < end;) {
        fn(i);
      }
    });
  }
  pool.WaitIdle();
}

}  // namespace pdtstore

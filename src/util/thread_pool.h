// A small fixed-size worker pool plus a dynamic ParallelFor, the execution
// substrate of the morsel-driven parallel scan (exec/parallel_scan.h).
// Deliberately work-stealing-free: scan morsels are claimed from a shared
// atomic queue, so a plain task pool with dynamic (counter-based) index
// claiming already load-balances skewed morsels.
#ifndef PDTSTORE_UTIL_THREAD_POOL_H_
#define PDTSTORE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pdtstore {

/// Fixed set of worker threads executing submitted tasks FIFO. The
/// destructor drains all submitted tasks before joining, so long-running
/// tasks must observe their own cancellation flag (as the parallel scan's
/// workers do via its abort flag).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  /// Enqueues `fn` for execution on some worker.
  void Submit(std::function<void()> fn);

  /// Enqueues `n` copies of `fn` under one lock acquisition and a
  /// single wake-all — the fan-out path of pipeline runners and
  /// ParallelFor, which otherwise pay one lock + notify per helper.
  void SubmitMany(size_t n, const std::function<void()>& fn);

  /// Blocks until every submitted task has finished.
  void WaitIdle();

  /// Hardware concurrency, with a floor of 1 (hardware_concurrency() may
  /// report 0 on exotic platforms).
  static int DefaultThreads();

  /// The process-wide worker pool shared by every parallel scan and
  /// pipeline (lazily constructed, sized to the hardware). Scans no
  /// longer spawn a private pool: `ScanOptions::num_threads` caps how
  /// many of these workers one query fragment occupies, so concurrent
  /// queries share the same threads. Submitted tasks must tolerate
  /// running arbitrarily late (workers are FIFO across all queries) and
  /// must observe their own cancellation flags; progress-critical work
  /// additionally runs on the submitting thread (see the consumer-help
  /// loop in exec/parallel_scan.cc), so a busy pool degrades throughput,
  /// never liveness.
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: task or shutdown
  std::condition_variable idle_cv_;   // signals WaitIdle: all drained
  std::deque<std::function<void()>> queue_;
  size_t running_ = 0;
  bool shutdown_ = false;
};

/// Applies `fn` to every index in [begin, end) using up to `num_threads`
/// workers (<= 0: DefaultThreads()) drawn from the shared global pool,
/// with the calling thread participating — every index completes even if
/// the pool is fully occupied by other queries. Indices are claimed
/// dynamically from a shared atomic counter, so unevenly-sized work items
/// still balance. Runs inline when one worker suffices. `fn` must be
/// thread-safe.
void ParallelFor(int num_threads, size_t begin, size_t end,
                 const std::function<void(size_t)>& fn);

}  // namespace pdtstore

#endif  // PDTSTORE_UTIL_THREAD_POOL_H_

// Transactions example: the paper's Figure 15 timeline with three
// concurrent transactions under snapshot isolation, a write-write
// conflict abort, and WAL-based recovery.
//
//   $ ./example_transactions
#include <cstdio>

#include "txn/txn_manager.h"

using namespace pdtstore;

namespace {
uint64_t CountRows(Transaction& txn) { return txn.RowCount(); }
}  // namespace

int main() {
  auto schema_or = Schema::Make(
      {{"account", TypeId::kString}, {"balance", TypeId::kInt64}}, {0});
  auto schema = std::make_shared<const Schema>(std::move(*schema_or));
  Table accounts("accounts", schema, TableOptions{});
  (void)accounts.Load({{"alice", 100}, {"bob", 200}, {"carol", 300}});
  Wal wal;
  TxnManager mgr(&accounts, &wal);

  // --- Figure 15's timeline ---------------------------------------
  std::printf("Figure 15 timeline: a and b share a snapshot; b commits "
              "first; c starts after b.\n");
  auto a = mgr.Begin();  // t1a
  auto b = mgr.Begin();  // t1b (shares a's Write-PDT snapshot)
  (void)b->Insert({"dave", 50});
  Status st = b->Commit();  // t2: propagates directly
  std::printf("  b commits insert(dave): %s\n", st.ToString().c_str());
  auto c = mgr.Begin();  // t2c: sees dave
  std::printf("  c sees %llu accounts (a still sees %llu)\n",
              static_cast<unsigned long long>(CountRows(*c)),
              static_cast<unsigned long long>(CountRows(*a)));
  (void)a->ModifyByKey({Value("alice")}, 1, Value(90));
  st = a->Commit();  // t3: Serialize(a, b') finds no conflict
  std::printf("  a commits modify(alice): %s\n", st.ToString().c_str());
  (void)c->ModifyByKey({Value("bob")}, 1, Value(210));
  st = c->Commit();  // t4: Serialize(c, a') — disjoint, fine
  std::printf("  c commits modify(bob):   %s\n", st.ToString().c_str());

  // --- write-write conflict ---------------------------------------
  std::printf("\nOptimistic conflict detection:\n");
  auto t1 = mgr.Begin();
  auto t2 = mgr.Begin();
  (void)t1->ModifyByKey({Value("carol")}, 1, Value(301));
  (void)t2->ModifyByKey({Value("carol")}, 1, Value(302));
  std::printf("  t1 commit: %s\n", t1->Commit().ToString().c_str());
  std::printf("  t2 commit: %s  (second writer aborts)\n",
              t2->Commit().ToString().c_str());

  // --- recovery ----------------------------------------------------
  std::printf("\nWAL recovery into a fresh table:\n");
  Table recovered("accounts", schema, TableOptions{});
  (void)recovered.Load({{"alice", 100}, {"bob", 200}, {"carol", 300}});
  TxnManager fresh_mgr(&recovered, nullptr);
  st = fresh_mgr.Recover(wal);
  std::printf("  recover: %s\n", st.ToString().c_str());
  auto check = fresh_mgr.Begin();
  for (const char* who : {"alice", "bob", "carol", "dave"}) {
    auto t = check->GetByKey({Value(who)});
    if (t.ok()) {
      std::printf("  %-6s balance %lld\n", who,
                  static_cast<long long>((*t)[1].AsInt64()));
    }
  }
  std::printf("  committed=%llu aborted=%llu\n",
              static_cast<unsigned long long>(mgr.committed_count()),
              static_cast<unsigned long long>(mgr.aborted_count()));
  return 0;
}

// Status / StatusOr: exception-free error handling, in the style of
// Abseil/Arrow/RocksDB. All fallible public APIs in this library return
// Status or StatusOr<T>.
#ifndef PDTSTORE_UTIL_STATUS_H_
#define PDTSTORE_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace pdtstore {

/// Error classification for Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kConflict,       ///< write-write transaction conflict (Serialize failure)
  kIOError,        ///< simulated or real I/O failure (WAL, chunk store)
  kCorruption,     ///< internal invariant violated in persistent state
  kNotImplemented,
  kInternal,
  kResourceExhausted,  ///< memory budget / admission queue / pool cap hit
};

/// Human-readable name of a StatusCode (e.g. "Conflict").
const char* StatusCodeToString(StatusCode code);

/// A success-or-error result, carrying a code and a message on failure.
///
/// The library never throws; every operation that can fail returns Status
/// (or StatusOr<T> when it also produces a value).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// A Status plus a value of type T on success.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value: success.
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  /// Implicit from non-OK status: failure. Asserts the status is not OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status to the caller.
#define PDT_RETURN_NOT_OK(expr)            \
  do {                                     \
    ::pdtstore::Status _st = (expr);       \
    if (!_st.ok()) return _st;             \
  } while (0)

/// Evaluates a StatusOr expression, propagating failure, else binding
/// the value to `lhs`.
#define PDT_ASSIGN_OR_RETURN_IMPL(var, lhs, expr) \
  auto var = (expr);                              \
  if (!var.ok()) return var.status();             \
  lhs = std::move(var).value();

#define PDT_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define PDT_ASSIGN_OR_RETURN_NAME(x, y) PDT_ASSIGN_OR_RETURN_CONCAT(x, y)
#define PDT_ASSIGN_OR_RETURN(lhs, expr) \
  PDT_ASSIGN_OR_RETURN_IMPL(            \
      PDT_ASSIGN_OR_RETURN_NAME(_statusor_, __LINE__), lhs, expr)

}  // namespace pdtstore

#endif  // PDTSTORE_UTIL_STATUS_H_

#!/usr/bin/env bash
# Tier-1 verification + benchmark smoke test. Runnable locally or from CI:
#   scripts/ci.sh [build-dir]
# Set PDTSTORE_SKIP_TSAN=1 to skip the ThreadSanitizer stage (e.g. on
# toolchains without TSan).
set -euo pipefail

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

echo "== configure =="
cmake -B "$BUILD_DIR" -S .

echo "== build =="
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "== test =="
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$(nproc)")

echo "== bench smoke (tiny sizes) =="
"$BUILD_DIR/bench_exec_kernels" --rows=20000 --reps=1 \
    --json="$BUILD_DIR/BENCH_exec_smoke.json"
"$BUILD_DIR/bench_fig17_mergescan_scaling" --sizes=20000 --rates=0,1 \
    --threads=1,2,4 --json="$BUILD_DIR/BENCH_fig17_smoke.json"
"$BUILD_DIR/bench_fig19_tpch" --sf=0.01 --config=uncompressed \
    --threads=1,2 --json="$BUILD_DIR/BENCH_fig19_smoke.json"

if [[ "${PDTSTORE_SKIP_TSAN:-0}" != "1" ]]; then
  echo "== tsan build + parallel scan/pipeline tests =="
  # ThreadSanitizer over the morsel-driven parallel scan and the
  # pipeline layer on top of it: the subsystems with cross-thread shared
  # state (exchange queues, the shared process pool, partial-agg merges,
  # the published join table, buffer pool, shared read-only PDT layers).
  TSAN_DIR="${BUILD_DIR}-tsan"
  cmake -B "$TSAN_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-fsanitize=thread" \
      -DPDTSTORE_BUILD_BENCHES=OFF -DPDTSTORE_BUILD_EXAMPLES=OFF
  cmake --build "$TSAN_DIR" -j "$(nproc)" \
      --target parallel_scan_test pipeline_test
  (cd "$TSAN_DIR" && \
      ctest --output-on-failure -R "parallel_scan_test|pipeline_test")
fi

echo "CI OK"

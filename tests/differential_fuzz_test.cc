// Differential fuzzing of the parallel pipeline engine: every seeded
// iteration builds a random table (random size / chunking / backend /
// per-column encoding mix), applies a random PDT/VDT update workload
// (sometimes through a multi-layer transaction stack), draws a random
// plan (filter / project / partitioned join / aggregation / sort /
// exchange), and runs it four ways: the serial operator tree and
// 2/4/8-thread pipelines over the compressed-execution table, plus a
// serial reference over a byte-identical decoded twin (encoded_exec
// off, zone-pruning hints off) built from a copy of the same Random.
// Results must agree: the exact serial sequence where the engine
// promises it (ordered exchange, deterministic sort), the multiset
// everywhere else. Because the decoded reference never sees borrowed
// spans, dictionary codes, RLE run predicates, or chunk pruning, any
// compressed-execution divergence shows up as a mismatch.
//
// Knobs (environment):
//   PDT_FUZZ_SEED   base seed (default 20260731)
//   PDT_FUZZ_ITERS  iterations (default 40; the TSan CI job runs 200+)
//
// A failure prints the iteration's seed; rerun exactly that case with
//   PDT_FUZZ_SEED=<seed> PDT_FUZZ_ITERS=1 ./differential_fuzz_test
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "fuzz_util.h"
#include "txn/multi_txn.h"
#include "txn/txn_manager.h"

namespace pdtstore {
namespace {

using testutil::FuzzPlanResult;
using testutil::FuzzSource;
using testutil::MakeFuzzSource;
using testutil::MakeFuzzTable;
using testutil::RunFuzzPlan;
using testutil::SortTuples;

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

// One full iteration from one seed. Returns false (with a recorded
// failure) if any thread count disagreed with the serial tree.
void RunIteration(uint64_t seed) {
  // Two identical decision streams: `rng` drives the compressed-
  // execution source, `rng_dec` its decoded twin. Random is a small
  // value type, so the copy freezes the stream and both builds make
  // exactly the same table / workload / txn choices — only the storage
  // representation differs.
  Random rng(seed);
  Random rng_dec = rng;
  FuzzSource src = MakeFuzzSource(&rng, /*encoded_exec=*/true);
  FuzzSource dec = MakeFuzzSource(&rng_dec, /*encoded_exec=*/false);
  ASSERT_NE(src.table, nullptr);
  ASSERT_NE(dec.table, nullptr);
  // Join build side: a second, smaller table (no txn stack).
  std::unique_ptr<Table> build =
      MakeFuzzTable(&rng, DeltaBackend::kPdt, 60, 250, /*encoded_exec=*/true);
  std::unique_ptr<Table> build_dec = MakeFuzzTable(
      &rng_dec, DeltaBackend::kPdt, 60, 250, /*encoded_exec=*/false);
  ASSERT_NE(build, nullptr);
  ASSERT_NE(build_dec, nullptr);

  // Several plans per table amortize the build cost; each plan seed is
  // derived, so a plan failure still reproduces from the iteration seed.
  const int plans = 3;
  for (int p = 0; p < plans; ++p) {
    const uint64_t plan_seed = seed ^ (0x9E3779B97F4A7C15ULL * (p + 1));
    // Reference: serial tree over the decoded twin, pruning hints off —
    // the plain row-at-a-time semantics everything else must match.
    FuzzPlanResult ref = RunFuzzPlan(plan_seed, dec, build_dec.get(), 1,
                                     /*zone_hints=*/false);
    ASSERT_TRUE(ref.status.ok()) << ref.status.ToString();
    std::vector<Tuple> ref_sorted = ref.rows;
    SortTuples(&ref_sorted);

    // Serial over the encoded source must reproduce the decoded serial
    // sequence exactly: same plan, same row order, different
    // representation (and possibly pruned chunks).
    FuzzPlanResult enc = RunFuzzPlan(plan_seed, src, build.get(), 1);
    ASSERT_TRUE(enc.status.ok())
        << enc.status.ToString() << " (plan " << p << ", encoded serial)";
    EXPECT_EQ(enc.rows, ref.rows)
        << "encoded vs decoded serial mismatch, plan " << p;
    if (::testing::Test::HasFailure()) return;

    for (int threads : {2, 4, 8}) {
      FuzzPlanResult got = RunFuzzPlan(plan_seed, src, build.get(), threads);
      ASSERT_TRUE(got.status.ok())
          << got.status.ToString() << " (plan " << p << ", " << threads
          << " threads)";
      if (got.exact) {
        EXPECT_EQ(got.rows, ref.rows)
            << "exact-sequence mismatch, plan " << p << ", " << threads
            << " threads";
      }
      std::vector<Tuple> got_sorted = std::move(got.rows);
      SortTuples(&got_sorted);
      EXPECT_EQ(got_sorted, ref_sorted)
          << "multiset mismatch, plan " << p << ", " << threads
          << " threads";
      if (::testing::Test::HasFailure()) return;
    }
  }
}

TEST(DifferentialFuzz, SerialAndParallelPlansAgree) {
  const uint64_t base = EnvOr("PDT_FUZZ_SEED", 20260731);
  const uint64_t iters = EnvOr("PDT_FUZZ_ITERS", 40);
  for (uint64_t i = 0; i < iters; ++i) {
    const uint64_t seed = base + i;
    SCOPED_TRACE("repro: PDT_FUZZ_SEED=" + std::to_string(seed) +
                 " PDT_FUZZ_ITERS=1 ./differential_fuzz_test");
    RunIteration(seed);
    if (::testing::Test::HasFailure()) {
      FAIL() << "differential fuzz failed at seed " << seed
             << " — repro: PDT_FUZZ_SEED=" << seed
             << " PDT_FUZZ_ITERS=1 ./differential_fuzz_test";
    }
  }
}

// ---------------------------------------------------------------------
// Concurrent write path: N writer threads publish seeded update batches
// lock-free while reader threads scan pinned snapshots. The WAL is the
// committed sequence in fold order, so replaying it serially into a
// fresh table must reproduce the concurrent final state exactly — any
// lost delta record, mis-ordered fold, or torn snapshot diverges.

std::shared_ptr<const Schema> WriteFuzzSchema() {
  auto s = Schema::Make({{"k", TypeId::kInt64}, {"v", TypeId::kInt64}}, {0});
  return std::make_shared<const Schema>(std::move(*s));
}

std::vector<Tuple> SnapshotRows(const Transaction& txn) {
  auto src = txn.Scan({0, 1});
  auto rows = CollectRows(src.get());
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  return rows.ok() ? *rows : std::vector<Tuple>{};
}

void RunConcurrentWriteIteration(uint64_t seed) {
  Random rng(seed);
  const int writers = 2 + static_cast<int>(rng.Uniform(3));       // 2..4
  const int txns_per_writer = 4 + static_cast<int>(rng.Uniform(5));
  const int64_t init_rows = 20 + static_cast<int64_t>(rng.Uniform(40));
  const int64_t key_domain = init_rows * 2;  // evens exist, odds do not

  // Initial load: every even key in the domain, so deletes/modifies on
  // random keys hit about half the time and conflict across writers.
  std::vector<Tuple> init;
  init.reserve(init_rows);
  for (int64_t i = 0; i < init_rows; ++i) init.push_back({i * 2, i});

  TxnManagerOptions opts;
  opts.group_commit = true;
  // Small Write-PDT cap + tiny merge chunks: background merges fire
  // mid-workload, so readers cross the four-layer snapshot stack.
  opts.write_pdt_max_entries = 4 + rng.Uniform(28);
  opts.merge_chunk_entries = 1 + rng.Uniform(8);

  Table table("fuzz_write", WriteFuzzSchema(), TableOptions{});
  ASSERT_TRUE(table.Load(init).ok());
  Wal wal;
  TxnManager mgr(&table, &wal, opts);

  std::atomic<bool> done{false};
  std::atomic<int> committed{0};

  std::vector<std::thread> threads;
  threads.reserve(writers + 1);
  for (int t = 0; t < writers; ++t) {
    threads.emplace_back([&, t] {
      Random wr(seed ^ (0xA24BAED4963EE407ULL * (t + 1)));
      // Fresh-insert keys are disjoint per writer; deletes/modifies
      // target the shared domain, so first-committer-wins conflicts
      // abort some transactions (the WAL then omits them).
      int64_t next_key = 1'000'000 + static_cast<int64_t>(t) * 100'000;
      for (int i = 0; i < txns_per_writer; ++i) {
        auto txn = mgr.Begin();
        const int ops = 1 + static_cast<int>(wr.Uniform(4));
        for (int k = 0; k < ops; ++k) {
          switch (wr.Uniform(3)) {
            case 0:
              ASSERT_TRUE(txn->Insert({next_key, next_key}).ok());
              ++next_key;
              break;
            case 1:
              // Missing key (odd) or already-deleted -> NotFound; skip.
              (void)txn->DeleteByKey(
                  {Value(static_cast<int64_t>(wr.Uniform(key_domain)))});
              break;
            default:
              (void)txn->ModifyByKey(
                  {Value(static_cast<int64_t>(wr.Uniform(key_domain)))}, 1,
                  Value(static_cast<int64_t>(wr.Uniform(1 << 20))));
              break;
          }
        }
        switch (wr.Uniform(10)) {
          case 0:
            txn->Abort();
            break;
          case 1:
            // Abort after lock-free publication: the record must be
            // unlinked from the chain (or already folded; either way
            // the WAL stays the ground truth).
            (void)txn->Publish();
            txn->Abort();
            break;
          default: {
            Status st = wr.Uniform(2) == 0
                            ? txn->Commit()
                            : [&] {
                                Status p = txn->Publish();
                                return p.ok() ? txn->AwaitCommit() : p;
                              }();
            if (st.ok()) committed.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  // Reader: each snapshot must be internally consistent (RowCount and
  // two scans agree) no matter how folds/merges land around it.
  threads.emplace_back([&] {
    while (!done.load(std::memory_order_acquire)) {
      auto r = mgr.Begin();
      const uint64_t n = r->RowCount();
      std::vector<Tuple> a = SnapshotRows(*r);
      std::vector<Tuple> b = SnapshotRows(*r);
      EXPECT_EQ(a.size(), n);
      EXPECT_EQ(a, b);
      r->Abort();
      if (::testing::Test::HasFailure()) return;
    }
  });
  for (int t = 0; t < writers; ++t) threads[t].join();
  done.store(true, std::memory_order_release);
  threads.back().join();
  if (::testing::Test::HasFailure()) return;

  // Serial replay of the committed sequence: recover the WAL into a
  // fresh copy of the initial table and compare final states.
  std::vector<Tuple> final_rows;
  {
    auto check = mgr.Begin();
    final_rows = SnapshotRows(*check);
    check->Abort();
  }
  Table replay("fuzz_write", WriteFuzzSchema(), TableOptions{});
  ASSERT_TRUE(replay.Load(init).ok());
  Wal replay_wal;
  TxnManager replay_mgr(&replay, &replay_wal);
  ASSERT_TRUE(replay_mgr.Recover(wal).ok());
  std::vector<Tuple> replay_rows;
  {
    auto check = replay_mgr.Begin();
    replay_rows = SnapshotRows(*check);
    check->Abort();
  }
  EXPECT_EQ(final_rows, replay_rows)
      << "concurrent final state diverges from serial WAL replay ("
      << committed.load() << " committed txns)";
}

TEST(DifferentialFuzz, ConcurrentWritersMatchSerialReplay) {
  const uint64_t base = EnvOr("PDT_FUZZ_SEED", 20260731);
  const uint64_t iters = EnvOr("PDT_FUZZ_ITERS", 40);
  for (uint64_t i = 0; i < iters; ++i) {
    const uint64_t seed = base + i;
    SCOPED_TRACE("repro: PDT_FUZZ_SEED=" + std::to_string(seed) +
                 " PDT_FUZZ_ITERS=1 ./differential_fuzz_test"
                 " --gtest_filter='*ConcurrentWriters*'");
    RunConcurrentWriteIteration(seed);
    if (::testing::Test::HasFailure()) {
      FAIL() << "concurrent write fuzz failed at seed " << seed;
    }
  }
}

// ---------------------------------------------------------------------
// Multi-table writer mode: N threads drive cross-table transactions
// (parent row + child rows inserted or deleted together) through one
// MultiTxnManager while a reader checks referential integrity on every
// snapshot — an orphaned child row means a transaction tore. The WAL is
// the committed sequence in fold order; replaying it serially into
// fresh tables must reproduce both final states exactly.

std::shared_ptr<const Schema> ParentFuzzSchema() {
  auto s = Schema::Make({{"k", TypeId::kInt64}, {"v", TypeId::kInt64}}, {0});
  return std::make_shared<const Schema>(std::move(*s));
}

std::shared_ptr<const Schema> ChildFuzzSchema() {
  auto s = Schema::Make({{"k", TypeId::kInt64},
                         {"line", TypeId::kInt64},
                         {"q", TypeId::kInt64}},
                        {0, 1});
  return std::make_shared<const Schema>(std::move(*s));
}

std::vector<Tuple> MultiSnapshotRows(const MultiTransaction& txn,
                                     const std::string& table,
                                     std::vector<ColumnId> proj) {
  auto src = txn.Scan(table, std::move(proj));
  auto rows = CollectRows(src.get());
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  return rows.ok() ? *rows : std::vector<Tuple>{};
}

void RunMultiTableWriteIteration(uint64_t seed) {
  Random rng(seed);
  const int writers = 2 + static_cast<int>(rng.Uniform(3));  // 2..4
  const int txns_per_writer = 4 + static_cast<int>(rng.Uniform(5));
  const int64_t init_parents = 16 + static_cast<int64_t>(rng.Uniform(24));
  const int64_t key_domain = init_parents * 2;  // evens exist

  std::vector<Tuple> parent_init;
  std::vector<Tuple> child_init;
  for (int64_t i = 0; i < init_parents; ++i) {
    parent_init.push_back({i * 2, i});
    child_init.push_back({i * 2, 0, i});
    child_init.push_back({i * 2, 1, i + 1});
  }

  TxnManagerOptions opts;
  opts.group_commit = true;
  opts.write_pdt_max_entries = 4 + rng.Uniform(28);
  opts.merge_chunk_entries = 1 + rng.Uniform(8);

  Table parent("parent", ParentFuzzSchema(), TableOptions{});
  Table child("child", ChildFuzzSchema(), TableOptions{});
  ASSERT_TRUE(parent.Load(parent_init).ok());
  ASSERT_TRUE(child.Load(child_init).ok());
  Wal wal;
  MultiTxnManager mgr({&parent, &child}, &wal, opts);

  std::atomic<bool> done{false};
  std::atomic<int> committed{0};

  std::vector<std::thread> threads;
  threads.reserve(writers + 1);
  for (int t = 0; t < writers; ++t) {
    threads.emplace_back([&, t] {
      Random wr(seed ^ (0xA24BAED4963EE407ULL * (t + 1)));
      int64_t next_key = 1'000'001 + static_cast<int64_t>(t) * 100'000;
      for (int i = 0; i < txns_per_writer; ++i) {
        auto txn = mgr.Begin();
        const int ops = 1 + static_cast<int>(wr.Uniform(3));
        for (int k = 0; k < ops; ++k) {
          if (wr.Uniform(2) == 0) {
            // Insert a fresh parent with 1..3 child lines, atomically.
            const int64_t key = next_key++;
            ASSERT_TRUE(txn->Insert("parent", {key, key}).ok());
            const int lines = 1 + static_cast<int>(wr.Uniform(3));
            for (int l = 0; l < lines; ++l) {
              ASSERT_TRUE(txn->Insert("child", {key, l, key + l}).ok());
            }
          } else {
            // Cascade-delete a random key: parent plus every line it
            // could have (missing lines are NotFound skips), so a
            // committed delete can never strand a child row.
            const int64_t key =
                static_cast<int64_t>(wr.Uniform(key_domain));
            Status st = txn->DeleteByKey("parent", {Value(key)});
            if (!st.ok()) continue;  // missing or already gone
            for (int64_t l = 0; l < 3; ++l) {
              (void)txn->DeleteByKey("child", {Value(key), Value(l)});
            }
          }
        }
        switch (wr.Uniform(10)) {
          case 0:
            txn->Abort();
            break;
          case 1:
            (void)txn->Publish();  // then withdraw from the chain
            txn->Abort();
            break;
          default: {
            Status st = wr.Uniform(2) == 0
                            ? txn->Commit()
                            : [&] {
                                Status p = txn->Publish();
                                return p.ok() ? txn->AwaitCommit() : p;
                              }();
            if (st.ok()) committed.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  // Reader: every snapshot must be internally consistent AND
  // referentially intact across the two tables.
  threads.emplace_back([&] {
    while (!done.load(std::memory_order_acquire)) {
      auto r = mgr.Begin();
      std::vector<Tuple> parents = MultiSnapshotRows(*r, "parent", {0, 1});
      std::vector<Tuple> children =
          MultiSnapshotRows(*r, "child", {0, 1, 2});
      std::set<int64_t> parent_keys;
      for (const Tuple& row : parents) {
        parent_keys.insert(row[0].AsInt64());
      }
      for (const Tuple& row : children) {
        EXPECT_TRUE(parent_keys.count(row[0].AsInt64()))
            << "orphan child of parent " << row[0].AsInt64()
            << " (torn cross-table transaction)";
      }
      auto n = r->RowCount("parent");
      ASSERT_TRUE(n.ok());
      EXPECT_EQ(parents.size(), *n);
      r->Abort();
      if (::testing::Test::HasFailure()) return;
    }
  });
  for (int t = 0; t < writers; ++t) threads[t].join();
  done.store(true, std::memory_order_release);
  threads.back().join();
  if (::testing::Test::HasFailure()) return;

  // Serial replay into fresh tables must reproduce both final states.
  std::vector<Tuple> parent_final, child_final;
  {
    auto check = mgr.Begin();
    parent_final = MultiSnapshotRows(*check, "parent", {0, 1});
    child_final = MultiSnapshotRows(*check, "child", {0, 1, 2});
    check->Abort();
  }
  Table parent2("parent", ParentFuzzSchema(), TableOptions{});
  Table child2("child", ChildFuzzSchema(), TableOptions{});
  ASSERT_TRUE(parent2.Load(parent_init).ok());
  ASSERT_TRUE(child2.Load(child_init).ok());
  MultiTxnManager replay_mgr({&parent2, &child2}, nullptr);
  ASSERT_TRUE(replay_mgr.Recover(wal).ok());
  {
    auto check = replay_mgr.Begin();
    EXPECT_EQ(parent_final, MultiSnapshotRows(*check, "parent", {0, 1}))
        << "parent diverges from serial WAL replay (" << committed.load()
        << " committed txns)";
    EXPECT_EQ(child_final, MultiSnapshotRows(*check, "child", {0, 1, 2}))
        << "child diverges from serial WAL replay";
    check->Abort();
  }
}

// ---------------------------------------------------------------------
// Shared-scan mode: two queries with identical scan geometry (the
// sharing key: table, snapshot, projection, morsel/batch rows) but
// private seeded predicates and sort keys run co-scheduled with
// shared_scan on — riding one merge stream, with late attachment,
// straggler shedding and consumer helping all in play — and each result
// must be byte-identical to the same plan run isolated (shared off).
// Sort-terminal plans make "byte-identical" meaningful: the sort's
// sequence tags carry true morsel indices, so the rotated order shared
// delivery produces cannot perturb the output. Thread counts cycle
// through 1/2/4/8 across iterations (1 still takes the morsel path:
// shared_scan opts out of the serial-identity fallback).

struct SharedPlanSpec {
  ScanOptions geometry;  // identical across the pair (the hub key)
  uint64_t plan_seed;    // private predicate / sort decisions
};

std::vector<Tuple> RunSharedScanPlan(Table* table,
                                     const SharedPlanSpec& spec,
                                     bool shared, Status* status) {
  using testutil::fuzz_internal::RandomPredicate;
  Random rng(spec.plan_seed);
  ScanOptions so = spec.geometry;
  so.shared_scan = shared;
  Pipeline pipe(table->PlanMorsels({0, 1, 2, 3}, nullptr, so));
  const uint64_t nfilters = rng.Uniform(3);  // 0..2 private predicates
  for (uint64_t f = 0; f < nfilters; ++f) {
    pipe.Filter(RandomPredicate(&rng));
  }
  std::vector<SortKey> keys{{rng.Uniform(2) == 0 ? 1u : 0u,
                             rng.Bernoulli(0.5)}};
  if (rng.Bernoulli(0.4)) keys.push_back({2, rng.Bernoulli(0.5)});
  const size_t limit = rng.Bernoulli(0.3) ? 1 + rng.Uniform(40) : 0;
  auto out = std::move(pipe).IntoSortBuild(keys, limit);
  auto rows = CollectRows(out.get());
  if (!rows.ok()) {
    *status = rows.status();
    return {};
  }
  *status = Status::OK();
  return std::move(*rows);
}

void RunSharedScanIteration(uint64_t seed, int threads) {
  Random rng(seed);
  std::unique_ptr<Table> table =
      MakeFuzzTable(&rng, DeltaBackend::kPdt, 300, 900);
  ASSERT_NE(table, nullptr);

  ScanOptions geometry;
  geometry.num_threads = threads;
  const size_t morsel_choices[] = {0, 48, 64, 100, 256};
  geometry.morsel_rows = morsel_choices[rng.Uniform(5)];
  geometry.ordered = false;  // ordered consumers never share

  SharedPlanSpec a{geometry, seed ^ 0x9E3779B97F4A7C15ULL};
  SharedPlanSpec b{geometry, seed ^ 0xC2B2AE3D27D4EB4FULL};

  // Isolated references: same plans, sharing off.
  Status st;
  std::vector<Tuple> ref_a = RunSharedScanPlan(table.get(), a, false, &st);
  ASSERT_TRUE(st.ok()) << st.ToString();
  std::vector<Tuple> ref_b = RunSharedScanPlan(table.get(), b, false, &st);
  ASSERT_TRUE(st.ok()) << st.ToString();

  // Co-scheduled pair: both attach through the hub. Depending on
  // timing the second query rides the first's stream mid-flight, or
  // starts a fresh one — every interleaving must be exact.
  Status st_a, st_b;
  std::vector<Tuple> got_a, got_b;
  std::thread rider([&] {
    got_b = RunSharedScanPlan(table.get(), b, true, &st_b);
  });
  got_a = RunSharedScanPlan(table.get(), a, true, &st_a);
  rider.join();
  ASSERT_TRUE(st_a.ok()) << st_a.ToString();
  ASSERT_TRUE(st_b.ok()) << st_b.ToString();
  EXPECT_EQ(got_a, ref_a)
      << "shared-scan rider A diverged from its isolated run at "
      << threads << " threads";
  EXPECT_EQ(got_b, ref_b)
      << "shared-scan rider B diverged from its isolated run at "
      << threads << " threads";
}

TEST(DifferentialFuzz, SharedScansMatchIsolatedRuns) {
  const uint64_t base = EnvOr("PDT_FUZZ_SEED", 20260731);
  const uint64_t iters = EnvOr("PDT_FUZZ_ITERS", 40);
  const int thread_cycle[] = {1, 2, 4, 8};
  for (uint64_t i = 0; i < iters; ++i) {
    const uint64_t seed = base + i;
    const int threads = thread_cycle[i % 4];
    SCOPED_TRACE("repro: PDT_FUZZ_SEED=" + std::to_string(seed) +
                 " PDT_FUZZ_ITERS=1 ./differential_fuzz_test"
                 " --gtest_filter='*SharedScans*'");
    RunSharedScanIteration(seed, threads);
    if (::testing::Test::HasFailure()) {
      FAIL() << "shared-scan fuzz failed at seed " << seed << " ("
             << threads << " threads)";
    }
  }
}

TEST(DifferentialFuzz, MultiTableWritersMatchSerialReplay) {
  const uint64_t base = EnvOr("PDT_FUZZ_SEED", 20260731);
  const uint64_t iters = EnvOr("PDT_FUZZ_ITERS", 40);
  for (uint64_t i = 0; i < iters; ++i) {
    const uint64_t seed = base + i;
    SCOPED_TRACE("repro: PDT_FUZZ_SEED=" + std::to_string(seed) +
                 " PDT_FUZZ_ITERS=1 ./differential_fuzz_test"
                 " --gtest_filter='*MultiTableWriters*'");
    RunMultiTableWriteIteration(seed);
    if (::testing::Test::HasFailure()) {
      FAIL() << "multi-table write fuzz failed at seed " << seed;
    }
  }
}

}  // namespace
}  // namespace pdtstore

#include "db/database.h"

#include <cinttypes>
#include <cstdio>

#include "util/thread_pool.h"

namespace pdtstore {

Database::Database(DatabaseOptions options)
    : options_(options),
      pool_(std::make_shared<BufferPool>(options.buffer_pool_bytes)) {}

std::string Database::WalFileName(uint64_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal.%06" PRIu64, epoch);
  return buf;
}

void Database::Degrade(const Status& why) {
  if (read_only_) return;  // first cause wins
  read_only_ = true;
  recovery_status_ = why;
  for (auto& [name, table] : tables_) table->SetReadOnly();
}

Status Database::ReplayInto(Table* table) {
  // A throwaway manager with NO wal attached: replaying through a
  // manager wired to the WAL being replayed would append each replayed
  // commit back onto it.
  TxnManagerOptions opts = options_.txn_defaults;
  opts.txn_id_counter = nullptr;
  TxnManager recovery_mgr(table, /*wal=*/nullptr, opts);
  PDT_RETURN_NOT_OK(recovery_mgr.Recover(*wal_));
  // Fold the recovered Write-PDT into the table before the manager dies.
  return recovery_mgr.PropagateAndMaybeCheckpoint();
}

StatusOr<std::unique_ptr<Database>> Database::Open(const std::string& dir,
                                                   DatabaseOptions options) {
  FileSystem* fs = options.fs != nullptr ? options.fs : FileSystem::Default();
  auto db = std::make_unique<Database>(options);
  db->dir_ = dir;
  db->fs_ = fs;
  db->wal_ = std::make_unique<Wal>();
  PDT_RETURN_NOT_OK(fs->CreateDir(dir));

  auto manifest = ReadManifest(fs, dir);
  if (!manifest.ok() &&
      manifest.status().code() == StatusCode::kNotFound) {
    // Fresh directory: establish the root pointer before doing anything
    // else, so a half-created database is still a valid (empty) one.
    db->manifest_.epoch = 0;
    db->manifest_.wal_file = WalFileName(0);
    PDT_RETURN_NOT_OK(WriteManifest(fs, dir, db->manifest_));
  } else if (!manifest.ok()) {
    // The root pointer itself is untrustworthy: nothing can be loaded.
    db->Degrade(manifest.status());
    return db;
  } else {
    db->manifest_ = std::move(*manifest);
    for (const ManifestTable& t : db->manifest_.tables) {
      auto schema = Schema::Make(t.columns, t.sort_key);
      if (!schema.ok()) {
        db->Degrade(schema.status());
        return db;
      }
      TableOptions topts = options.table_defaults;
      topts.backend = t.backend;
      topts.store.chunk_rows = static_cast<size_t>(t.chunk_rows);
      topts.store.compression = t.compression;
      auto table = std::make_unique<Table>(
          t.name, std::make_shared<const Schema>(std::move(*schema)), topts,
          db->pool_);
      if (!t.image_file.empty()) {
        Status st =
            LoadTableImage(fs, db->PathOf(t.image_file), table.get());
        if (st.ok() && table->store().num_rows() != t.row_count) {
          st = Status::Corruption("table image row count mismatch for " +
                                  t.name);
        }
        if (!st.ok()) {
          db->tables_[t.name] = std::move(table);
          db->Degrade(st);
          return db;
        }
      }
      db->tables_[t.name] = std::move(table);
    }
  }

  // A manifest from epoch > 0 was written by Save(), which creates and
  // fsyncs the segment *and its directory entry* before the manifest
  // rename commits. If that segment is now missing, directory state from
  // before the checkpoint leaked through the crash (or someone deleted
  // the log): treating it as an empty log would silently drop every
  // commit since the checkpoint, so refuse instead. Epoch 0 is exempt —
  // a fresh database writes its manifest before the segment exists.
  const std::string wal_path = db->PathOf(db->manifest_.wal_file);
  if (db->manifest_.epoch > 0) {
    auto wal_exists = fs->FileExists(wal_path);
    if (!wal_exists.ok()) {
      db->Degrade(wal_exists.status());
      return db;
    }
    if (!*wal_exists) {
      db->Degrade(Status::Corruption("manifest epoch " +
                                     std::to_string(db->manifest_.epoch) +
                                     " names missing WAL segment " +
                                     db->manifest_.wal_file));
      return db;
    }
  }
  // Recover the WAL: accept the committed prefix, truncate a torn tail,
  // refuse mid-log corruption.
  auto stats = db->wal_->RecoverFrom(fs, wal_path);
  if (!stats.ok()) {
    db->Degrade(stats.status());
    return db;
  }
  // Replay the committed transactions into each table.
  if (db->wal_->RecordCount() > 0) {
    for (auto& [name, table] : db->tables_) {
      Status st = db->ReplayInto(table.get());
      if (!st.ok()) {
        db->Degrade(st);
        return db;
      }
    }
  }
  // Attach the durable sink; new commits append after the replayed
  // frames in the same segment. Opening may have just created the
  // epoch-0 segment, so pin its directory entry down too.
  auto writer = WalWriter::Open(fs, wal_path, false);
  if (!writer.ok()) {
    db->Degrade(writer.status());
    return db;
  }
  Status dir_st = fs->SyncDir(dir);
  if (!dir_st.ok()) {
    db->Degrade(dir_st);
    return db;
  }
  db->wal_writer_ = std::move(*writer);
  db->wal_->SetWriter(db->wal_writer_.get());
  db->wal_->MarkAllFlushed();
  return db;
}

Status Database::Save() {
  if (!persistent()) {
    return Status::InvalidArgument("Save() requires a database dir");
  }
  if (read_only_) return recovery_status_;
  // Deliberately no wal_->health() check: a poisoned log means some
  // acknowledgements could not be issued, but the updates themselves are
  // applied in memory. Save writes fresh files and commits them with the
  // manifest rename, so a successful Save re-establishes durability —
  // any applied-but-unacknowledged commit then survives reopen, which is
  // the commit-prefix contract's "ack lost" case (a commit may prove
  // durable even though its caller saw an error).
  // Quiesce: fold every Write-PDT into its table (refuses if any
  // transactions are still active).
  for (auto& [name, mgr] : managers_) {
    PDT_RETURN_NOT_OK(mgr->PropagateAndMaybeCheckpoint());
  }
  Manifest next;
  next.epoch = manifest_.epoch + 1;
  next.wal_file = WalFileName(next.epoch);
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), ".img.%06" PRIu64, next.epoch);
  for (auto& [name, table] : tables_) {
    // Absorb the delta into the stable image, then write it out. Images
    // get fresh epoch-stamped names: an old image is never overwritten,
    // so a crash below leaves the previous checkpoint intact.
    PDT_RETURN_NOT_OK(table->Checkpoint(ThreadPool::DefaultThreads()));
    ManifestTable t;
    t.name = name;
    t.backend = table->options().backend;
    t.columns = table->schema().columns();
    t.sort_key = table->schema().sort_key();
    t.chunk_rows = table->options().store.chunk_rows;
    t.compression = table->options().store.compression;
    t.row_count = table->store().num_rows();
    if (t.row_count > 0) {
      t.image_file = name + suffix;
      PDT_RETURN_NOT_OK(
          SaveTableImage(fs_, PathOf(t.image_file), *table));
    }
    next.tables.push_back(std::move(t));
  }
  // Create the next epoch's (empty) WAL segment before the manifest can
  // point at it.
  PDT_ASSIGN_OR_RETURN(auto new_writer,
                       WalWriter::Open(fs_, PathOf(next.wal_file), true));
  PDT_RETURN_NOT_OK(new_writer->Sync());
  // The new segment's directory entry must be durable BEFORE the
  // manifest can name it — otherwise a crash after the manifest rename
  // could recover an epoch whose WAL vanished with the unsynced entry.
  PDT_RETURN_NOT_OK(fs_->SyncDir(dir_));
  // THE COMMIT POINT: after this rename the new checkpoint is the
  // database; before it, the old manifest + old WAL still are.
  PDT_RETURN_NOT_OK(WriteManifest(fs_, dir_, next));
  // Only now is it safe to drop the log the images absorbed.
  Manifest old = std::move(manifest_);
  manifest_ = std::move(next);
  wal_->Truncate();
  wal_writer_ = std::move(new_writer);
  wal_->SetWriter(wal_writer_.get());
  for (auto& [name, mgr] : managers_) {
    mgr->SetWalWriter(wal_writer_.get());
  }
  // Best-effort cleanup of the previous epoch's files; leftovers are
  // unreferenced and harmless.
  (void)fs_->DeleteFile(PathOf(old.wal_file));
  for (const ManifestTable& t : old.tables) {
    if (!t.image_file.empty()) (void)fs_->DeleteFile(PathOf(t.image_file));
  }
  return Status::OK();
}

StatusOr<Table*> Database::CreateTable(const std::string& name,
                                       std::shared_ptr<const Schema> schema) {
  return CreateTable(name, std::move(schema), options_.table_defaults);
}

StatusOr<Table*> Database::CreateTable(const std::string& name,
                                       std::shared_ptr<const Schema> schema,
                                       TableOptions options) {
  if (read_only_) {
    return Status::InvalidArgument("database is read-only: " +
                                   recovery_status_.message());
  }
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table exists: " + name);
  }
  auto table =
      std::make_unique<Table>(name, std::move(schema), options, pool_);
  Table* ptr = table.get();
  tables_[name] = std::move(table);
  if (persistent()) {
    // Make the DDL durable: re-point the manifest at the same epoch's
    // files plus the new (empty) table.
    ManifestTable t;
    t.name = name;
    t.backend = options.backend;
    t.columns = ptr->schema().columns();
    t.sort_key = ptr->schema().sort_key();
    t.chunk_rows = options.store.chunk_rows;
    t.compression = options.store.compression;
    Manifest next = manifest_;
    next.tables.push_back(std::move(t));
    Status st = WriteManifest(fs_, dir_, next);
    if (!st.ok()) {
      tables_.erase(name);
      return st;
    }
    manifest_ = std::move(next);
  }
  return ptr;
}

StatusOr<Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table " + name);
  return it->second.get();
}

Status Database::DropTable(const std::string& name) {
  if (read_only_) {
    return Status::InvalidArgument("database is read-only: " +
                                   recovery_status_.message());
  }
  if (tables_.erase(name) == 0) return Status::NotFound("no table " + name);
  managers_.erase(name);
  return Status::OK();
}

StatusOr<TxnManager*> Database::Txn(const std::string& name) {
  if (read_only_) {
    return Status::InvalidArgument("database is read-only: " +
                                   recovery_status_.message());
  }
  auto it = managers_.find(name);
  if (it != managers_.end()) return it->second.get();
  PDT_ASSIGN_OR_RETURN(Table * table, GetTable(name));
  if (table->pdt() == nullptr) {
    return Status::InvalidArgument(
        "transactions require the PDT backend: " + name);
  }
  TxnManagerOptions opts = options_.txn_defaults;
  opts.txn_id_counter = &txn_ids_;  // shared id space across tables
  if (wal_ == nullptr) wal_ = std::make_unique<Wal>();
  auto mgr = std::make_unique<TxnManager>(table, wal_.get(), opts);
  if (wal_writer_ != nullptr) mgr->SetWalWriter(wal_writer_.get());
  TxnManager* ptr = mgr.get();
  managers_[name] = std::move(mgr);
  return ptr;
}

TxnManager* Database::FindTxn(const std::string& name) const {
  auto it = managers_.find(name);
  return it != managers_.end() ? it->second.get() : nullptr;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, unused] : tables_) names.push_back(name);
  return names;
}

}  // namespace pdtstore

#include "util/random.h"

namespace pdtstore {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to expand the seed into generator state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Random::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }

int64_t Random::UniformRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
}

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Random::Bernoulli(double p) { return NextDouble() < p; }

std::string Random::NextString(size_t length) {
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(static_cast<char>('a' + Uniform(26)));
  }
  return out;
}

uint64_t Random::Skewed(uint64_t n) {
  // Halve the range a geometric number of times: small values more likely.
  uint64_t range = n;
  while (range > 1 && Bernoulli(0.5)) range /= 2;
  return Uniform(range == 0 ? 1 : range);
}

}  // namespace pdtstore

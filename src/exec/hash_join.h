// HashJoinNode: in-memory equi-join. The build side is fully materialized
// into a hash table; probe batches stream through. Inner or left-semi.
#ifndef PDTSTORE_EXEC_HASH_JOIN_H_
#define PDTSTORE_EXEC_HASH_JOIN_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "columnstore/batch.h"

namespace pdtstore {

/// Join flavor.
enum class JoinKind { kInner, kLeftSemi, kLeftAnti };

/// Equi-join on (probe_keys[i] == build_keys[i]). Output columns: all
/// probe columns, then (inner only) all build columns.
class HashJoinNode : public BatchSource {
 public:
  HashJoinNode(std::unique_ptr<BatchSource> probe,
               std::unique_ptr<BatchSource> build,
               std::vector<size_t> probe_keys,
               std::vector<size_t> build_keys,
               JoinKind kind = JoinKind::kInner)
      : probe_(std::move(probe)),
        build_(std::move(build)),
        probe_keys_(std::move(probe_keys)),
        build_keys_(std::move(build_keys)),
        kind_(kind) {}

  StatusOr<bool> Next(Batch* out, size_t max_rows) override;

 private:
  Status BuildTable();

  std::unique_ptr<BatchSource> probe_;
  std::unique_ptr<BatchSource> build_;
  std::vector<size_t> probe_keys_;
  std::vector<size_t> build_keys_;
  JoinKind kind_;
  bool built_ = false;
  Batch build_rows_;
  std::unordered_multimap<std::string, size_t> table_;
};

}  // namespace pdtstore

#endif  // PDTSTORE_EXEC_HASH_JOIN_H_

// MergeScan operator tests: stable scan ranges, positional merging edge
// cases (batch-size sweeps, range gaps with re-seek, trailing inserts,
// ghost runs), stacked layers, and RID continuity of emitted batches.
#include "pdt/merge_scan.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace pdtstore {
namespace {

using testutil::BuildStore;
using testutil::ModelTable;

std::shared_ptr<const Schema> IntSchema() {
  auto s = Schema::Make({{"k", TypeId::kInt64}, {"v", TypeId::kInt64}}, {0});
  return std::make_shared<const Schema>(std::move(*s));
}

std::vector<Tuple> IntRows(int n, int64_t gap = 10) {
  std::vector<Tuple> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back({static_cast<int64_t>(i) * gap, int64_t{i}});
  }
  return rows;
}

TEST(StableScanTest, FullScanEmitsChunkAlignedBatches) {
  auto schema = IntSchema();
  auto store = BuildStore(schema, IntRows(50), {.chunk_rows = 8});
  StableScanSource scan(store.get(), {0, 1});
  Batch batch;
  Sid expected_start = 0;
  size_t total = 0;
  while (true) {
    auto more = scan.Next(&batch, 1024);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    EXPECT_EQ(batch.start_rid(), expected_start);
    expected_start += batch.num_rows();
    total += batch.num_rows();
    EXPECT_LE(batch.num_rows(), 8u);  // chunk-bounded
  }
  EXPECT_EQ(total, 50u);
}

TEST(StableScanTest, MultiRangeScanSkipsGaps) {
  auto schema = IntSchema();
  auto store = BuildStore(schema, IntRows(50), {.chunk_rows = 8});
  StableScanSource scan(store.get(), {0}, {{5, 10}, {20, 23}, {49, 50}});
  auto rows = CollectRows(&scan);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 9u);
  EXPECT_EQ((*rows)[0][0], Value(50));    // sid 5
  EXPECT_EQ((*rows)[5][0], Value(200));   // sid 20
  EXPECT_EQ((*rows)[8][0], Value(490));   // sid 49
}

TEST(StableScanTest, EmptyTableIsEmptyStream) {
  auto schema = IntSchema();
  auto store = BuildStore(schema, {});
  StableScanSource scan(store.get(), {0});
  Batch batch;
  auto more = scan.Next(&batch, 16);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);
}

class BatchSizeSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BatchSizeSweepTest, MergeIsBatchSizeInvariant) {
  auto schema = IntSchema();
  auto base = IntRows(200);
  auto store = BuildStore(schema, base, {.chunk_rows = 16});
  ModelTable model(schema, base);
  Random rng(77);
  for (int i = 0; i < 150; ++i) {
    double d = rng.NextDouble();
    if (d < 0.4) {
      (void)model.Insert({rng.UniformRange(0, 2500), int64_t{i}});
    } else if (d < 0.7 && model.size() > 0) {
      (void)model.DeleteAt(rng.Uniform(model.size()));
    } else if (model.size() > 0) {
      (void)model.ModifyAt(rng.Uniform(model.size()), 1, Value(i));
    }
  }
  auto scan = MakeMergeScan(*store, {model.pdt()}, {0, 1});
  auto rows = CollectRows(scan.get(), GetParam());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, model.rows());
}

INSTANTIATE_TEST_SUITE_P(Sizes, BatchSizeSweepTest,
                         ::testing::Values(1, 2, 3, 7, 16, 64, 1024));

TEST(MergeScanTest, EmittedRidsAreContinuous) {
  auto schema = IntSchema();
  auto base = IntRows(100);
  auto store = BuildStore(schema, base, {.chunk_rows = 16});
  ModelTable model(schema, base);
  ASSERT_TRUE(model.Insert({15, 100}).ok());
  ASSERT_TRUE(model.DeleteAt(40).ok());
  ASSERT_TRUE(model.ModifyAt(60, 1, Value(999)).ok());
  auto scan = MakeMergeScan(*store, {model.pdt()}, {0, 1});
  Batch batch;
  Rid expected = 0;
  while (true) {
    auto more = scan->Next(&batch, 13);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    EXPECT_EQ(batch.start_rid(), expected);
    expected += batch.num_rows();
  }
  EXPECT_EQ(expected, model.size());
}

TEST(MergeScanTest, RangeScanWithReSeekAppliesOnlyInRangeUpdates) {
  auto schema = IntSchema();
  auto base = IntRows(100);
  auto store = BuildStore(schema, base, {.chunk_rows = 10});
  ModelTable model(schema, base);
  // Updates scattered across the key space.
  ASSERT_TRUE(model.Insert({15, 100}).ok());   // in range 1 (sids 0..20)
  ASSERT_TRUE(model.Insert({555, 101}).ok());  // in gap (sid ~55)
  ASSERT_TRUE(model.DeleteAt(71).ok());        // rid of key 690-ish
  // Scan sids [0,20) and [60,100).
  auto scan =
      MakeMergeScan(*store, {model.pdt()}, {0, 1}, {{0, 20}, {60, 100}});
  auto rows = CollectRows(scan.get());
  ASSERT_TRUE(rows.ok());
  // Expected: merged rows whose underlying position is in the ranges.
  // Build by filtering the model on key ranges the sids represent.
  std::vector<Tuple> expected;
  for (const auto& t : model.rows()) {
    int64_t k = t[0].AsInt64();
    if (k < 200 || (k >= 600 && k < 1000)) expected.push_back(t);
  }
  EXPECT_EQ(*rows, expected);
  // The gap insert (key 555) must not appear.
  for (const auto& t : *rows) EXPECT_NE(t[0], Value(555));
}

TEST(MergeScanTest, GhostRunAcrossChunkBoundary) {
  auto schema = IntSchema();
  auto base = IntRows(64);
  auto store = BuildStore(schema, base, {.chunk_rows = 8});
  ModelTable model(schema, base);
  // Delete a run straddling chunk boundaries (sids 5..18).
  for (int i = 0; i < 14; ++i) {
    ASSERT_TRUE(model.DeleteAt(5).ok());
  }
  EXPECT_EQ(testutil::MergedRows(*store, {model.pdt()}, {}, 4),
            model.rows());
}

TEST(MergeScanTest, ThreeLayerStack) {
  auto schema = IntSchema();
  auto base = IntRows(60);
  auto store = BuildStore(schema, base, {.chunk_rows = 16});
  // Layer 1 (Read): inserts + deletes.
  ModelTable l1(schema, base);
  ASSERT_TRUE(l1.Insert({15, 1}).ok());
  ASSERT_TRUE(l1.DeleteAt(30).ok());
  // Layer 2 (Write): updates against l1's image.
  ModelTable l2(schema, l1.rows());
  ASSERT_TRUE(l2.ModifyAt(0, 1, Value(-2)).ok());
  ASSERT_TRUE(l2.Insert({25, 2}).ok());
  // Layer 3 (Trans): updates against l2's image.
  ModelTable l3(schema, l2.rows());
  ASSERT_TRUE(l3.DeleteAt(2).ok());
  ASSERT_TRUE(l3.Insert({35, 3}).ok());
  EXPECT_EQ(
      testutil::MergedRows(*store, {l1.pdt(), l2.pdt(), l3.pdt()}, {}, 7),
      l3.rows());
}

TEST(MergeScanTest, AllRowsDeleted) {
  auto schema = IntSchema();
  auto base = IntRows(20);
  auto store = BuildStore(schema, base, {.chunk_rows = 4});
  ModelTable model(schema, base);
  while (model.size() > 0) {
    ASSERT_TRUE(model.DeleteAt(0).ok());
  }
  EXPECT_TRUE(testutil::MergedRows(*store, {model.pdt()}).empty());
  // And re-inserting into the fully-deleted table works.
  ASSERT_TRUE(model.Insert({55, 1}).ok());
  EXPECT_EQ(testutil::MergedRows(*store, {model.pdt()}), model.rows());
}


// Randomized stacked merging: K layers of random updates, each built on
// the previous image, merged in one pass — and equivalently collapsed by
// Propagate in every possible grouping.
class StackedLayersRandomTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(StackedLayersRandomTest, StackEqualsFinalImage) {
  auto [num_layers, seed] = GetParam();
  auto schema = IntSchema();
  auto base = IntRows(120);
  auto store = BuildStore(schema, base, {.chunk_rows = 16});
  Random rng(seed);

  std::vector<std::unique_ptr<ModelTable>> layers;
  std::vector<Tuple> image = base;
  for (int l = 0; l < num_layers; ++l) {
    layers.push_back(std::make_unique<ModelTable>(schema, image));
    ModelTable* m = layers.back().get();
    for (int op = 0; op < 60; ++op) {
      double d = rng.NextDouble();
      if (d < 0.4 || m->size() == 0) {
        (void)m->Insert(
            {rng.UniformRange(0, 4000), int64_t{l * 1000 + op}});
      } else if (d < 0.7) {
        ASSERT_TRUE(m->DeleteAt(rng.Uniform(m->size())).ok());
      } else {
        ASSERT_TRUE(
            m->ModifyAt(rng.Uniform(m->size()), 1, Value(int64_t{op})).ok());
      }
    }
    image = m->rows();
  }

  std::vector<const Pdt*> stack;
  for (auto& m : layers) stack.push_back(m->pdt());
  EXPECT_EQ(testutil::MergedRows(*store, stack, {}, 13), image);

  // Collapse the stack bottom-up with Propagate; the single merged PDT
  // must produce the same image.
  auto collapsed = layers[0]->pdt()->Clone();
  for (int l = 1; l < num_layers; ++l) {
    ASSERT_TRUE(collapsed->Propagate(*layers[l]->pdt()).ok()) << l;
  }
  ASSERT_TRUE(collapsed->CheckInvariants().ok())
      << collapsed->CheckInvariants().ToString();
  EXPECT_EQ(testutil::MergedRows(*store, {collapsed.get()}), image);
}

INSTANTIATE_TEST_SUITE_P(
    Stacks, StackedLayersRandomTest,
    ::testing::Combine(::testing::Values(2, 3, 4, 5),
                       ::testing::Values(301, 302, 303)));

}  // namespace
}  // namespace pdtstore

// HashJoinNode: in-memory equi-join. The build side is fully materialized
// into a hash table keyed by a combined 64-bit key hash (verify-on-
// collision against the materialized build columns); probe batches are
// hashed with one bulk HashColumn pass per key column and matches are
// compacted with selection-vector gathers. Inner or left-semi/anti.
//
// The build side is factored into an immutable JoinTable behind a
// JoinBuildHandle (the publish barrier): the parallel pipeline
// (exec/pipeline.h) builds it with per-worker collection and probes it
// from many workers lock-free, while the serial HashJoinNode keeps its
// pre-pipeline behavior through the same structures.
#ifndef PDTSTORE_EXEC_HASH_JOIN_H_
#define PDTSTORE_EXEC_HASH_JOIN_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "columnstore/batch.h"

namespace pdtstore {

/// Join flavor.
enum class JoinKind { kInner, kLeftSemi, kLeftAnti };

/// The materialized build side of a hash join: build rows plus a bucket
/// table keyed by the combined key hash. Immutable once built, so probe
/// workers share it without locks.
struct JoinTable {
  Batch rows;
  std::vector<size_t> key_cols;
  /// Combined key hash -> build rows with that hash, in build order.
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;

  static JoinTable Build(Batch build_rows, std::vector<size_t> keys);

  /// Typed key equality between a probe row and a build row (the
  /// verify-on-collision step).
  bool KeysEqual(const std::vector<size_t>& probe_keys, const Batch& probe,
                 size_t probe_row, size_t build_row) const;
};

/// Per-thread probe scratch (allocation-free steady state).
struct JoinProbeScratch {
  std::vector<uint64_t> hashes;
  SelVector probe_sel;
  SelVector build_sel;
  std::vector<uint8_t> keep;
  Batch out_proto;  // output layout, built once, reused via ResetLike
  bool proto_init = false;
};

/// Probes `in` against `table`, filling `*out` (reset to the output
/// layout): inner gathers probe then build columns; semi/anti compact
/// surviving probe rows. Thread-safe across distinct scratch objects.
void ProbeJoinBatch(const JoinTable& table,
                    const std::vector<size_t>& probe_keys, JoinKind kind,
                    const Batch& in, Batch* out, JoinProbeScratch* scratch);

/// Deferred join build side: resolves to an immutable JoinTable on first
/// use and caches it — the pipeline's build barrier. Resolution happens
/// on the probing consumer's thread before probe workers start (see
/// PipelineOp::Prepare); the handle itself is not thread-safe, sharing
/// one across concurrently-starting probes requires external order.
class JoinBuildHandle {
 public:
  /// Build side drained from a serial source (MaterializeAll).
  JoinBuildHandle(std::unique_ptr<BatchSource> build_source,
                  std::vector<size_t> build_keys);
  /// Build side produced by an arbitrary producer (the parallel build
  /// pipeline; see Pipeline::IntoJoinBuild).
  JoinBuildHandle(std::function<StatusOr<Batch>()> producer,
                  std::vector<size_t> build_keys);

  /// Runs the build on first call; later calls return the cached table
  /// (or the cached failure).
  StatusOr<const JoinTable*> Resolve();

 private:
  std::function<StatusOr<Batch>()> producer_;
  std::vector<size_t> build_keys_;
  bool resolved_ = false;
  Status error_ = Status::OK();
  JoinTable table_;
};

/// Equi-join on (probe_keys[i] == build_keys[i]). Output columns: all
/// probe columns, then (inner only) all build columns. Duplicate build
/// matches are emitted in build-row order.
class HashJoinNode : public BatchSource {
 public:
  HashJoinNode(std::unique_ptr<BatchSource> probe,
               std::unique_ptr<BatchSource> build,
               std::vector<size_t> probe_keys,
               std::vector<size_t> build_keys,
               JoinKind kind = JoinKind::kInner);

  /// Probe against a deferred (possibly pipeline-built) build side.
  HashJoinNode(std::unique_ptr<BatchSource> probe,
               std::shared_ptr<JoinBuildHandle> build,
               std::vector<size_t> probe_keys,
               JoinKind kind = JoinKind::kInner);

  StatusOr<bool> Next(Batch* out, size_t max_rows) override;

 private:
  std::unique_ptr<BatchSource> probe_;
  std::shared_ptr<JoinBuildHandle> build_;
  std::vector<size_t> probe_keys_;
  JoinKind kind_;
  const JoinTable* table_ = nullptr;  // resolved on first Next
  JoinProbeScratch scratch_;
};

}  // namespace pdtstore

#endif  // PDTSTORE_EXEC_HASH_JOIN_H_
